// Command perfgate is the CI performance-regression gate: it diffs a
// freshly generated metrics snapshot against the committed baseline and
// exits non-zero on regression, turning the repo's benchmark JSONs from
// documentation into an enforced contract.
//
// Usage:
//
//	go run ./cmd/ssabench -table 2 -metrics-out /tmp/current.json
//	go run ./cmd/perfgate -current /tmp/current.json
//
// The contract (metrics.Gate): every baseline counter and histogram
// observation count must match exactly — the headline perf claims of
// this repo are deterministic counter deltas (interference kill-query
// volume, liveness build-vs-revalidate splits, move counts via the
// pass-counter mirror), so any drift is a behavior change that must be
// re-baselined deliberately, not absorbed silently. Histograms marked
// deterministic (the MAXLIVE distribution) must match sum/min/max too.
// Total wall time across *_wall_ns histograms may regress up to
// -wall-tolerance, and is compared only when the baseline was recorded
// on the same host (or -force-wall is given) — cross-host wall numbers
// are noise, and the gate says so in a note instead of failing.
//
// Metrics present only in the current snapshot are fine: the snapshot
// schema is append-only, so new instrumentation never invalidates an
// old baseline.
//
// To regenerate the baseline after an intentional perf change:
//
//	go run ./cmd/ssabench -table 2 -verify -metrics-out BENCH_metrics_baseline.json
package main

import (
	"flag"
	"fmt"
	"os"

	"outofssa/internal/obs/metrics"
)

func main() {
	baseline := flag.String("baseline", "BENCH_metrics_baseline.json", "committed baseline snapshot `file`")
	current := flag.String("current", "", "current snapshot `file` (from ssabench -metrics-out); required")
	wallTol := flag.Float64("wall-tolerance", 0.30, "allowed relative wall-time regression (0.30 = +30%); negative disables the wall check")
	forceWall := flag.Bool("force-wall", false, "compare wall time even when baseline and current hosts differ")
	flag.Parse()

	if *current == "" {
		fmt.Fprintln(os.Stderr, "perfgate: -current is required (generate one with ssabench -metrics-out)")
		os.Exit(2)
	}
	base, err := metrics.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfgate:", err)
		os.Exit(2)
	}
	cur, err := metrics.ReadFile(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfgate:", err)
		os.Exit(2)
	}

	problems, notes := metrics.Gate(base, cur, metrics.GateOptions{
		WallTolerance: *wallTol,
		ForceWall:     *forceWall,
	})
	for _, n := range notes {
		fmt.Println("note:", n)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Println("FAIL:", p)
		}
		fmt.Printf("perfgate: %d regression(s) against %s\n", len(problems), *baseline)
		os.Exit(1)
	}
	fmt.Printf("perfgate: ok — %d counters, %d histograms match %s\n",
		len(base.Counters), len(base.Histograms), *baseline)
}
