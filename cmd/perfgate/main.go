// Command perfgate is the CI performance-regression gate: it diffs a
// freshly generated metrics snapshot against the committed baseline and
// exits non-zero on regression, turning the repo's benchmark JSONs from
// documentation into an enforced contract.
//
// Usage:
//
//	go run ./cmd/ssabench -table 2 -metrics-out /tmp/current.json
//	go run ./cmd/perfgate -current /tmp/current.json
//
// The contract (metrics.Gate): every baseline counter and histogram
// observation count must match exactly — the headline perf claims of
// this repo are deterministic counter deltas (interference kill-query
// volume, liveness build-vs-revalidate splits, move counts via the
// pass-counter mirror), so any drift is a behavior change that must be
// re-baselined deliberately, not absorbed silently. Histograms marked
// deterministic (the MAXLIVE distribution) must match sum/min/max too.
// Total wall time across *_wall_ns histograms may regress up to
// -wall-tolerance, and is compared only when the baseline was recorded
// on the same host (or -force-wall is given) — cross-host wall numbers
// are noise, and the gate says so in a note instead of failing.
//
// Metrics present only in the current snapshot are fine: the snapshot
// schema is append-only, so new instrumentation never invalidates an
// old baseline.
//
// To regenerate the baseline after an intentional perf change:
//
//	go run ./cmd/ssabench -table 2 -verify -metrics-out BENCH_metrics_baseline.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"outofssa/internal/obs/metrics"
)

func main() {
	baseline := flag.String("baseline", "BENCH_metrics_baseline.json", "committed baseline snapshot `file`; empty skips the baseline diff")
	current := flag.String("current", "", "current snapshot `file` (from ssabench -metrics-out or laocd /metrics.json); required")
	wallTol := flag.Float64("wall-tolerance", 0.30, "allowed relative wall-time regression (0.30 = +30%); negative disables the wall check")
	forceWall := flag.Bool("force-wall", false, "compare wall time even when baseline and current hosts differ")
	assert := flag.String("assert", "", "comma-separated counter `invariants` on the current snapshot, e.g. 'laocd_requests_total>=30,laocd_shed_total==0'; families are summed across labels")
	flag.Parse()

	if *current == "" {
		fmt.Fprintln(os.Stderr, "perfgate: -current is required (generate one with ssabench -metrics-out)")
		os.Exit(2)
	}
	cur, err := metrics.ReadFile(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfgate:", err)
		os.Exit(2)
	}

	if *assert != "" {
		failures := runAsserts(cur, *assert)
		for _, f := range failures {
			fmt.Println("FAIL:", f)
		}
		if len(failures) > 0 {
			fmt.Printf("perfgate: %d assertion failure(s) on %s\n", len(failures), *current)
			os.Exit(1)
		}
		fmt.Printf("perfgate: assertions ok on %s\n", *current)
		if *baseline == "" {
			return
		}
	}
	if *baseline == "" {
		fmt.Fprintln(os.Stderr, "perfgate: nothing to do (-baseline empty and no -assert)")
		os.Exit(2)
	}
	base, err := metrics.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfgate:", err)
		os.Exit(2)
	}

	problems, notes := metrics.Gate(base, cur, metrics.GateOptions{
		WallTolerance: *wallTol,
		ForceWall:     *forceWall,
	})
	for _, n := range notes {
		fmt.Println("note:", n)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Println("FAIL:", p)
		}
		fmt.Printf("perfgate: %d regression(s) against %s\n", len(problems), *baseline)
		os.Exit(1)
	}
	fmt.Printf("perfgate: ok — %d counters, %d histograms match %s\n",
		len(base.Counters), len(base.Histograms), *baseline)
}

// runAsserts evaluates a comma-separated list of counter invariants
// ("name>=N", also ==, !=, <=, >, <) against the snapshot. A name
// refers to the whole family: values are summed across label sets, so
// laocd_requests_total>=30 covers every kind label at once. A missing
// family has value 0 — absence is assertable (laocd_worker_panics_total==0
// holds on a snapshot that never registered the counter).
func runAsserts(snap *metrics.FileSnapshot, spec string) []string {
	sums := map[string]int64{}
	for _, c := range snap.Counters {
		sums[c.Name] += c.Value
	}
	var failures []string
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, op, want, err := parseAssert(clause)
		if err != nil {
			failures = append(failures, err.Error())
			continue
		}
		got := sums[name]
		ok := false
		switch op {
		case ">=":
			ok = got >= want
		case "<=":
			ok = got <= want
		case "==":
			ok = got == want
		case "!=":
			ok = got != want
		case ">":
			ok = got > want
		case "<":
			ok = got < want
		}
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: got %d, want %s%d", name, got, op, want))
		}
	}
	return failures
}

func parseAssert(clause string) (name, op string, want int64, err error) {
	// Two-char operators first so ">=" doesn't parse as ">" with a
	// value of "=N".
	for _, o := range []string{">=", "<=", "==", "!="} {
		if i := strings.Index(clause, o); i > 0 {
			name, op = strings.TrimSpace(clause[:i]), o
			want, err = strconv.ParseInt(strings.TrimSpace(clause[i+len(o):]), 10, 64)
			if err != nil {
				err = fmt.Errorf("bad assertion %q: %v", clause, err)
			}
			return
		}
	}
	for _, o := range []string{">", "<"} {
		if i := strings.Index(clause, o); i > 0 {
			name, op = strings.TrimSpace(clause[:i]), o
			want, err = strconv.ParseInt(strings.TrimSpace(clause[i+1:]), 10, 64)
			if err != nil {
				err = fmt.Errorf("bad assertion %q: %v", clause, err)
			}
			return
		}
	}
	return "", "", 0, fmt.Errorf("bad assertion %q: want name<op>value with op in >= <= == != > <", clause)
}
