// Command laoc is a miniature Linear Assembly Optimizer driver: it
// parses LAI text, converts to pruned SSA, optimizes, translates out of
// SSA with a selectable algorithm, and prints the final code and move
// statistics.
//
// Usage:
//
//	laoc [-exp Lphi,ABI+C] [-dump-ssa] [-run a,b,c] [-trace] [-trace-json FILE] file.lai
//	laoc -list-exps
//
// With no file, laoc reads LAI from standard input. With -run, laoc
// interprets the function before and after the pipeline and exits
// non-zero if the results differ, so CI can gate on semantic
// preservation. -trace prints a per-pass wall-time/allocation/IR-delta
// table for every function; -trace-json streams the same events as
// JSONL for machine diffing (see DESIGN.md for the schema).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"outofssa/internal/ir"
	"outofssa/internal/lai"
	"outofssa/internal/obs"
	"outofssa/internal/pipeline"
	"outofssa/internal/ssa"
)

func main() {
	exp := flag.String("exp", pipeline.ExpLphiABIC, "experiment configuration (see -list-exps)")
	listExps := flag.Bool("list-exps", false, "list experiment configurations and exit")
	dumpSSA := flag.Bool("dump-ssa", false, "also print the pinned SSA form")
	runArgs := flag.String("run", "", "comma-separated integer arguments: interpret the result")
	trace := flag.Bool("trace", false, "print a per-pass trace table for every function")
	traceVerbose := flag.Bool("trace-counters", false, "with -trace, also print per-pass counters")
	traceJSON := flag.String("trace-json", "", "write per-pass trace events as JSONL to `file`")
	flag.Parse()

	if *listExps {
		var names []string
		for n := range pipeline.Configs {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}

	conf, ok := pipeline.Configs[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "laoc: unknown experiment %q (see -list-exps)\n", *exp)
		os.Exit(2)
	}

	var tracers []obs.Tracer
	if *trace {
		s := obs.NewSummary(os.Stdout)
		s.Verbose = *traceVerbose
		tracers = append(tracers, s)
	}
	if *traceJSON != "" {
		w, err := os.Create(*traceJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, "laoc:", err)
			os.Exit(1)
		}
		defer w.Close()
		tracers = append(tracers, obs.NewJSONL(w))
	}
	tracer := obs.Multi(tracers...)

	var src []byte
	var err error
	if flag.NArg() >= 1 {
		src, err = os.ReadFile(flag.Arg(0))
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "laoc:", err)
		os.Exit(1)
	}

	funcs, err := lai.ParseFile(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "laoc:", err)
		os.Exit(1)
	}

	var args []int64
	if *runArgs != "" {
		for _, tok := range strings.Split(*runArgs, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(tok), 0, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "laoc: bad -run argument %q\n", tok)
				os.Exit(2)
			}
			args = append(args, v)
		}
	}

	mismatched := false
	for _, f := range funcs {
		var before *ir.ExecResult
		if *runArgs != "" {
			before, err = ir.Exec(f.Clone(), args, 1_000_000)
			if err != nil {
				fmt.Fprintf(os.Stderr, "laoc: %s: pre-pipeline execution: %v\n", f.Name, err)
				os.Exit(1)
			}
		}

		if *dumpSSA {
			g := f.Clone()
			ssa.Build(g)
			fmt.Printf("; ---- %s: pruned SSA ----\n%s\n", g.Name, g)
		}

		res, err := pipeline.RunTraced(f, conf, *exp, tracer)
		if err != nil {
			fmt.Fprintf(os.Stderr, "laoc: %s: %v\n", f.Name, err)
			os.Exit(1)
		}
		fmt.Printf("; ---- %s: final code (%s) ----\n%s", f.Name, *exp, f)
		fmt.Printf("; moves=%d weighted=%d instrs=%d\n", res.Moves, res.WeightedMoves, res.Instrs)
		if res.Leung != nil {
			fmt.Printf("; out-of-pinned-SSA: %d phi move slots, %d pin moves, %d repairs\n",
				res.Leung.PhiMoves, res.Leung.PinMoves, res.Leung.Repairs)
		}
		if res.Coalesce != nil {
			fmt.Printf("; pinning-phi: gain %d of %d slots\n", res.Coalesce.Gain, res.Coalesce.PhiSlots)
		}
		if before != nil {
			after, err := ir.Exec(f, args, 2_000_000)
			if err != nil {
				fmt.Fprintf(os.Stderr, "laoc: %s: post-pipeline execution: %v\n", f.Name, err)
				os.Exit(1)
			}
			status := "MATCH"
			if !before.Equal(after) {
				status = "MISMATCH"
				mismatched = true
			}
			fmt.Printf("; run(%v) = %v [%s]\n", args, after.Outputs, status)
		}
		fmt.Println()
	}
	if mismatched {
		fmt.Fprintln(os.Stderr, "laoc: semantic mismatch between pre- and post-pipeline execution")
		os.Exit(1)
	}
}
