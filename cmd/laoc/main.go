// Command laoc is a miniature Linear Assembly Optimizer driver: it
// parses LAI text, converts to pruned SSA, optimizes, translates out of
// SSA with a selectable algorithm, and prints the final code and move
// statistics.
//
// Usage:
//
//	laoc [-exp Lphi,ABI+C] [-verify] [-fallback] [-dump-ssa] [-run a,b,c] [-trace] [-trace-json FILE] [-metrics-addr HOST:PORT] file.lai
//	laoc -list-exps
//
// With no file, laoc reads LAI from standard input. With -run, laoc
// interprets the function before and after the pipeline and exits
// non-zero if the results differ, so CI can gate on semantic
// preservation. -trace prints a per-pass wall-time/allocation/IR-delta
// table for every function; -trace-json streams the same events as
// JSONL for machine diffing (see DESIGN.md for the schema).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"outofssa/internal/ir"
	"outofssa/internal/lai"
	"outofssa/internal/obs"
	"outofssa/internal/obs/metrics"
	"outofssa/internal/pipeline"
	"outofssa/internal/ssa"
)

func main() {
	exp := flag.String("exp", pipeline.ExpLphiABIC, "experiment configuration (see -list-exps)")
	listExps := flag.Bool("list-exps", false, "list experiment configurations and exit")
	dumpSSA := flag.Bool("dump-ssa", false, "also print the pinned SSA form")
	runArgs := flag.String("run", "", "comma-separated integer arguments: interpret the result")
	trace := flag.Bool("trace", false, "print a per-pass trace table for every function")
	traceVerbose := flag.Bool("trace-counters", false, "with -trace, also print per-pass counters")
	traceJSON := flag.String("trace-json", "", "write per-pass trace events as JSONL to `file`")
	verifyMode := flag.Bool("verify", false, "checked mode: re-verify IR invariants after every pass")
	fallback := flag.Bool("fallback", false, "on a pass failure, fall back to the naive translation instead of aborting")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics (Prometheus text), /metrics.json and /debug/pprof on `host:port` while compiling, and route run metrics through the registry")
	flag.Parse()

	if *listExps {
		for _, n := range pipeline.Presets() {
			fmt.Println(n)
		}
		return
	}

	conf, err := pipeline.Preset(*exp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "laoc: %v (see -list-exps)\n", err)
		os.Exit(2)
	}
	conf.Verify = *verifyMode
	conf.Fallback = *fallback

	var tracers []obs.Tracer
	if *trace {
		s := obs.NewSummary(os.Stdout)
		s.Verbose = *traceVerbose
		tracers = append(tracers, s)
	}
	if *traceJSON != "" {
		w, err := os.Create(*traceJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, "laoc:", err)
			os.Exit(1)
		}
		defer w.Close()
		tracers = append(tracers, obs.NewJSONL(w))
	}
	tracer := obs.Multi(tracers...)

	// -metrics-addr turns the driver into a scrapable process: per-pass
	// histograms and counters accumulate on the default registry and are
	// served live, alongside the pprof endpoints, until exit. reg stays
	// nil otherwise, keeping the pipeline's zero-allocation fast path.
	var reg *metrics.Registry
	if *metricsAddr != "" {
		reg = metrics.Default
		addr, stop, err := metrics.Serve(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "laoc:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "laoc: serving metrics on http://%s/metrics\n", addr)
		defer stop()
	}

	var src []byte
	if flag.NArg() >= 1 {
		src, err = os.ReadFile(flag.Arg(0))
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "laoc:", err)
		os.Exit(1)
	}

	funcs, err := lai.ParseFile(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "laoc:", err)
		os.Exit(1)
	}

	var args []int64
	if *runArgs != "" {
		for _, tok := range strings.Split(*runArgs, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(tok), 0, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "laoc: bad -run argument %q\n", tok)
				os.Exit(2)
			}
			args = append(args, v)
		}
	}

	mismatched := false
	for _, f := range funcs {
		var before *ir.ExecResult
		if *runArgs != "" {
			before, err = ir.Exec(f.Clone(), args, 1_000_000)
			if errors.Is(err, ir.ErrStepBudget) {
				// No verdict is possible: the reference itself does not
				// finish. Warn and translate without the semantic gate.
				fmt.Fprintf(os.Stderr, "laoc: %s: pre-pipeline execution exceeded the step budget; skipping -run comparison\n", f.Name)
				before, err = nil, nil
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "laoc: %s: pre-pipeline execution: %v\n", f.Name, err)
				os.Exit(1)
			}
		}

		if *dumpSSA {
			g := f.Clone()
			if _, err := ssa.Build(g); err != nil {
				fmt.Fprintf(os.Stderr, "laoc: %s: %v\n", g.Name, err)
				os.Exit(1)
			}
			fmt.Printf("; ---- %s: pruned SSA ----\n%s\n", g.Name, g)
		}

		res, err := pipeline.Run(f, conf, pipeline.WithExperiment(*exp), pipeline.WithTracer(tracer), pipeline.WithMetrics(reg))
		if err != nil {
			var pe *pipeline.PassError
			if errors.As(err, &pe) {
				fmt.Fprintf(os.Stderr, "laoc: %s: pass %q failed: %v\n", f.Name, pe.Pass, pe.Cause)
				fmt.Fprintf(os.Stderr, "laoc: %s: IR at failure: %d instrs, %d blocks, %d phis, %d pins\n",
					f.Name, pe.Snapshot.Instrs, pe.Snapshot.Blocks, pe.Snapshot.Phis, pe.Snapshot.Pins)
			} else {
				fmt.Fprintf(os.Stderr, "laoc: %s: %v\n", f.Name, err)
			}
			os.Exit(1)
		}
		if res.FellBack {
			fmt.Fprintf(os.Stderr, "laoc: %s: fell back to the naive translation after: %v\n",
				f.Name, res.FallbackFrom)
		}
		fmt.Printf("; ---- %s: final code (%s) ----\n%s", f.Name, *exp, f)
		fmt.Printf("; moves=%d weighted=%d instrs=%d\n", res.Moves, res.WeightedMoves, res.Instrs)
		if res.Leung != nil {
			fmt.Printf("; out-of-pinned-SSA: %d phi move slots, %d pin moves, %d repairs\n",
				res.Leung.PhiMoves, res.Leung.PinMoves, res.Leung.Repairs)
		}
		if res.Coalesce != nil {
			fmt.Printf("; pinning-phi: gain %d of %d slots\n", res.Coalesce.Gain, res.Coalesce.PhiSlots)
		}
		if before != nil {
			// Double the reference budget: the translated code executes
			// extra copies, so a budget overrun here (when the reference
			// finished) means the pipeline broke termination — NONTERM, a
			// mismatch, not a hard driver error.
			after, err := ir.Exec(f, args, 2_000_000)
			if errors.Is(err, ir.ErrStepBudget) {
				mismatched = true
				fmt.Printf("; run(%v) = ? [NONTERM]\n", args)
			} else if err != nil {
				fmt.Fprintf(os.Stderr, "laoc: %s: post-pipeline execution: %v\n", f.Name, err)
				os.Exit(1)
			} else {
				status := "MATCH"
				if !before.Equal(after) {
					status = "MISMATCH"
					mismatched = true
				}
				fmt.Printf("; run(%v) = %v [%s]\n", args, after.Outputs, status)
			}
		}
		fmt.Println()
	}
	if mismatched {
		fmt.Fprintln(os.Stderr, "laoc: semantic mismatch between pre- and post-pipeline execution")
		os.Exit(1)
	}
}
