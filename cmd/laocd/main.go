// Command laocd is the out-of-SSA translation daemon: the long-running
// compilation service the ROADMAP promised on top of the repo's
// checked pipeline, worker pool and metrics registry. It accepts LAI
// source or laoc-ir-v1 documents over HTTP and answers with the
// translated function — see internal/server for the robustness layer
// (deadlines, admission control, circuit breaker, checksummed result
// cache) and README "Running as a service" for the endpoints.
//
// Server mode (the default):
//
//	laocd -addr :8023
//	curl -s localhost:8023/compile -d '{"lai":".func f\n.input A:R0\nentry:\n    add B, A, A\n    ret B\n.endfunc\n"}'
//
// SIGTERM/SIGINT drain gracefully: admission stops (503), accepted
// requests finish, then the process exits 0.
//
// Client mode (-drive) turns the binary into its own load generator,
// posting a deterministic mixed workload against a running instance
// and printing the classified report as JSON — the CI smoke job uses
// it. Fault and deadline sprinkles need the target to run
// -allow-debug.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"outofssa/internal/obs/metrics"
	"outofssa/internal/pipeline"
	"outofssa/internal/server"
	"outofssa/internal/workload"
)

func main() {
	var (
		addr         = flag.String("addr", ":8023", "listen `address`")
		workers      = flag.Int("workers", 4, "compile worker pool size")
		queue        = flag.Int("queue", 64, "admission queue depth (full queue sheds 429)")
		deadline     = flag.Duration("deadline", 2*time.Second, "default per-request deadline")
		maxDeadline  = flag.Duration("max-deadline", 10*time.Second, "upper clamp on requested deadlines")
		exp          = flag.String("exp", pipeline.ExpLphiABIC, "pipeline experiment preset requests compile under")
		cacheEntries = flag.Int("cache-entries", 1024, "result cache capacity")
		brThreshold  = flag.Int("breaker-threshold", 5, "verifier failures within the window that trip a class")
		brWindow     = flag.Duration("breaker-window", 30*time.Second, "breaker failure-count window")
		brCooldown   = flag.Duration("breaker-cooldown", 5*time.Second, "breaker open time before a half-open probe")
		allowDebug   = flag.Bool("allow-debug", false, "accept request debug blocks (injected sleeps/panics) — test rigs only")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight requests on shutdown")
		cacheDir     = flag.String("cache-dir", "", "persist the caches in this `directory` and warm-start from it (empty disables)")
		cacheFsync   = flag.String("cache-fsync", "never", "cache store durability: never, interval or always")
		cacheMax     = flag.Int64("cache-max-bytes", 64<<20, "cache store on-disk size cap before compaction (negative disables)")

		drive          = flag.String("drive", "", "client mode: drive the laocd at this base `URL` instead of serving")
		driveN         = flag.Int("n", 200, "client mode: number of requests")
		driveC         = flag.Int("c", 8, "client mode: concurrency")
		driveSeed      = flag.Int64("seed", 1, "client mode: synthetic workload seed")
		driveDistinct  = flag.Int("distinct", 0, "client mode: distinct function pool size; 0 makes every request distinct (pool < n exercises the service's caches at scale)")
		driveDeadline  = flag.Int("deadline-ms", 2000, "client mode: per-request deadline")
		faultEvery     = flag.Int("fault-every", 0, "client mode: inject a pass panic every Nth request (needs -allow-debug server)")
		malformedEvery = flag.Int("malformed-every", 0, "client mode: send a malformed body every Nth request")
		deadlineEvery  = flag.Int("deadline-every", 0, "client mode: send a deadline-exceeding request every Nth request (needs -allow-debug server)")
	)
	flag.Parse()

	if *drive != "" {
		os.Exit(driveMain(*drive, *driveN, *driveC, *driveDistinct, *driveSeed, *driveDeadline, *faultEvery, *malformedEvery, *deadlineEvery))
	}

	s, err := server.New(server.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		DefaultDeadline:  *deadline,
		MaxDeadline:      *maxDeadline,
		Experiment:       *exp,
		CacheEntries:     *cacheEntries,
		BreakerThreshold: *brThreshold,
		BreakerWindow:    *brWindow,
		BreakerCooldown:  *brCooldown,
		Metrics:          metrics.Default,
		AllowDebug:       *allowDebug,
		CacheDir:         *cacheDir,
		StoreMaxBytes:    *cacheMax,
		StoreFsync:       *cacheFsync,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "laocd:", err)
		os.Exit(2)
	}
	s.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "laocd:", err)
		os.Exit(2)
	}
	hs := &http.Server{Handler: s.Handler()}
	go func() {
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "laocd: serve:", err)
			os.Exit(2)
		}
	}()
	fmt.Printf("laocd: serving on %s (exp=%s workers=%d queue=%d)\n", ln.Addr(), *exp, *workers, *queue)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	sig := <-sigc
	fmt.Printf("laocd: %v, draining\n", sig)

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "laocd: drain:", err)
		hs.Close()
		os.Exit(1)
	}
	hs.Close()
	fmt.Println("laocd: drained, bye")
}

// driveMain is client mode: generate, post, classify, report.
func driveMain(baseURL string, n, c, distinct int, seed int64, deadlineMS, faultEvery, malformedEvery, deadlineEvery int) int {
	funcs := workload.SynthPool(n, distinct, seed)
	reqs, err := workload.MixedRequests(funcs, deadlineMS, faultEvery, malformedEvery, deadlineEvery)
	if err != nil {
		fmt.Fprintln(os.Stderr, "laocd: drive:", err)
		return 2
	}
	rep := workload.Drive(baseURL, reqs, workload.DriveOptions{Concurrency: c}, nil, nil)
	fmt.Println(rep.String())
	if rep.Transport != 0 || rep.Other != 0 {
		fmt.Fprintf(os.Stderr, "laocd: drive: %d transport failures, %d unexpected statuses\n", rep.Transport, rep.Other)
		return 1
	}
	return 0
}
