// Command ssabench regenerates the evaluation tables of Rastello, de
// Ferrière and Guillon, "Optimizing Translation Out of SSA Using
// Renaming Constraints" (CGO 2004) over this repository's workload
// suites.
//
// Usage:
//
//	ssabench              # all tables
//	ssabench -table 3     # one table
//	ssabench -parallel 8  # run pipeline jobs on 8 workers (same output)
//	ssabench -verify      # all tables, re-verifying IR after every pass
//	ssabench -list        # list suites and sizes
//
// ssabench doubles as the profiling harness for the pipeline:
//
//	ssabench -trace-json trace.jsonl     # per-pass events for every run
//	ssabench -cpuprofile cpu.pprof       # CPU profile of the regeneration
//	ssabench -memprofile mem.pprof       # heap profile at exit
//
// The JSONL event schema is documented in DESIGN.md; `go tool pprof`
// reads the profiles.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"outofssa/internal/analysis"
	"outofssa/internal/obs"
	"outofssa/internal/ssa"
	"outofssa/internal/stats"
	"outofssa/internal/workload"
)

func main() {
	table := flag.Int("table", 0, "table to regenerate (1-5); 0 means all")
	list := flag.Bool("list", false, "list the workload suites and exit")
	verifyMode := flag.Bool("verify", false, "checked mode: re-verify IR invariants after every pass of every run")
	parallel := flag.Int("parallel", 1, "worker pool size for pipeline runs; 0 means GOMAXPROCS (output is identical at any setting)")
	cacheStats := flag.Bool("cache-stats", false, "print analysis cache counters (requests/computes/reuses) to stderr at exit")
	traceJSON := flag.String("trace-json", "", "write per-pass trace events as JSONL to `file`")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to `file`")
	memprofile := flag.String("memprofile", "", "write a heap profile to `file` at exit")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "ssabench:", err)
		os.Exit(1)
	}
	stats.Checked = *verifyMode
	stats.Parallel = *parallel

	if *list {
		for _, s := range workload.All() {
			// φ counts require SSA form; the suites are built fresh for
			// this listing, so converting them in place is fine.
			instrs := s.NumInstrs()
			phis := 0
			for _, f := range s.Funcs {
				ssa.MustBuild(f)
				phis += f.CountPhis()
			}
			fmt.Printf("%-12s %4d functions, %6d instructions, %5d phis\n",
				s.Name, len(s.Funcs), instrs, phis)
		}
		return
	}

	if *cpuprofile != "" {
		w, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		defer w.Close()
		if err := pprof.StartCPUProfile(w); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			w, err := os.Create(*memprofile)
			if err != nil {
				fail(err)
			}
			defer w.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(w); err != nil {
				fail(err)
			}
		}()
	}

	if *cacheStats {
		defer func() {
			cs := analysis.Stats()
			fmt.Fprintf(os.Stderr, "analysis cache: liveness %d requests, %d computes, %d reused; dominators %d requests, %d computes, %d reused\n",
				cs.LivenessRequests, cs.LivenessComputes, cs.LivenessReused,
				cs.DominatorsRequests, cs.DominatorsComputes, cs.DominatorsReused)
		}()
	}

	var tracer obs.Tracer
	if *traceJSON != "" {
		w, err := os.Create(*traceJSON)
		if err != nil {
			fail(err)
		}
		defer w.Close()
		tracer = obs.NewJSONL(w)
	}

	run := func(fn func(obs.Tracer) (*stats.Table, error)) {
		t, err := fn(tracer)
		if err != nil {
			fail(err)
		}
		fmt.Println(t)
	}

	switch *table {
	case 0:
		fmt.Println(stats.Table1())
		ts, err := stats.AllTablesTraced(tracer)
		if err != nil {
			fail(err)
		}
		for _, t := range ts {
			fmt.Println(t)
		}
	case 1:
		fmt.Println(stats.Table1())
	case 2:
		run(stats.Table2Traced)
	case 3:
		run(stats.Table3Traced)
	case 4:
		run(stats.Table4Traced)
	case 5:
		run(stats.Table5Traced)
	default:
		fmt.Fprintf(os.Stderr, "ssabench: no table %d (have 1-5)\n", *table)
		os.Exit(2)
	}
}
