// Command ssabench regenerates the evaluation tables of Rastello, de
// Ferrière and Guillon, "Optimizing Translation Out of SSA Using
// Renaming Constraints" (CGO 2004) over this repository's workload
// suites.
//
// Usage:
//
//	ssabench            # all tables
//	ssabench -table 3   # one table
//	ssabench -list      # list suites and sizes
package main

import (
	"flag"
	"fmt"
	"os"

	"outofssa/internal/stats"
	"outofssa/internal/workload"
)

func main() {
	table := flag.Int("table", 0, "table to regenerate (1-5); 0 means all")
	list := flag.Bool("list", false, "list the workload suites and exit")
	flag.Parse()

	if *list {
		for _, s := range workload.All() {
			fmt.Printf("%-12s %4d functions, %6d instructions\n",
				s.Name, len(s.Funcs), s.NumInstrs())
		}
		return
	}

	run := func(fn func() (*stats.Table, error)) {
		t, err := fn()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ssabench:", err)
			os.Exit(1)
		}
		fmt.Println(t)
	}

	switch *table {
	case 0:
		fmt.Println(stats.Table1())
		ts, err := stats.AllTables()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ssabench:", err)
			os.Exit(1)
		}
		for _, t := range ts {
			fmt.Println(t)
		}
	case 1:
		fmt.Println(stats.Table1())
	case 2:
		run(stats.Table2)
	case 3:
		run(stats.Table3)
	case 4:
		run(stats.Table4)
	case 5:
		run(stats.Table5)
	default:
		fmt.Fprintf(os.Stderr, "ssabench: no table %d (have 1-5)\n", *table)
		os.Exit(2)
	}
}
