// Command ssabench regenerates the evaluation tables of Rastello, de
// Ferrière and Guillon, "Optimizing Translation Out of SSA Using
// Renaming Constraints" (CGO 2004) over this repository's workload
// suites.
//
// Usage:
//
//	ssabench              # all tables
//	ssabench -table 3     # one table
//	ssabench -parallel 8  # run pipeline jobs on 8 workers (same output)
//	ssabench -verify      # all tables, re-verifying IR after every pass
//	ssabench -list        # list suites and sizes
//
// ssabench doubles as the profiling harness for the pipeline:
//
//	ssabench -trace-json trace.jsonl     # per-pass events for every run
//	ssabench -cpuprofile cpu.pprof       # CPU profile of the regeneration
//	ssabench -memprofile mem.pprof       # heap profile at exit
//	ssabench -trace-counters             # summed per-pass counters at exit
//	ssabench -metrics-out metrics.json   # registry snapshot (counters,
//	                                     # histograms, host stamp) at exit —
//	                                     # the format cmd/perfgate compares
//	ssabench -metrics-addr localhost:0   # serve /metrics (Prometheus text)
//	                                     # and /debug/pprof while running
//
// and as the harness for the resource-interference engines:
//
//	ssabench -interference-engine=pairwise   # force the O(k²) oracle engine
//	ssabench -bench-interference             # time both engines on a table
//	                                         # workload and check the outputs
//	                                         # are byte-identical
//
// and for the liveness engines:
//
//	ssabench -liveness-engine=iterative      # force the fixed-point oracle
//	ssabench -bench-liveness                 # time both liveness engines on a
//	                                         # table workload, check the
//	                                         # outputs byte-identical, and
//	                                         # report query/recompute counters
//
// The JSONL event schema is documented in DESIGN.md; `go tool pprof`
// reads the profiles.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"outofssa/internal/analysis"
	"outofssa/internal/interference"
	"outofssa/internal/liveness"
	"outofssa/internal/obs"
	"outofssa/internal/obs/metrics"
	"outofssa/internal/pipeline"
	"outofssa/internal/ssa"
	"outofssa/internal/stats"
	"outofssa/internal/workload"
)

func main() {
	table := flag.Int("table", 0, "table to regenerate (1-5); 0 means all")
	list := flag.Bool("list", false, "list the workload suites and exit")
	verifyMode := flag.Bool("verify", false, "checked mode: re-verify IR invariants after every pass of every run")
	parallel := flag.Int("parallel", 1, "worker pool size for pipeline runs; 0 means GOMAXPROCS (output is identical at any setting)")
	cacheStats := flag.Bool("cache-stats", false, "print analysis cache counters (requests/computes/reuses) to stderr at exit")
	traceJSON := flag.String("trace-json", "", "write per-pass trace events as JSONL to `file`")
	traceCounters := flag.Bool("trace-counters", false, "print per-pass counters (interference query volume, memo hits, merges) summed over every run to stderr at exit")
	engineName := flag.String("interference-engine", "", "resource-interference engine: dominance (default) or pairwise (the O(k²) oracle)")
	benchInterference := flag.Bool("bench-interference", false, "time the selected table workload (default: table 2) under both interference engines, check byte-identical output, and report the speedup")
	livenessEngineName := flag.String("liveness-engine", "", "liveness engine: query (default) or iterative (the fixed-point oracle)")
	benchLiveness := flag.Bool("bench-liveness", false, "time the selected table workload (default: table 2) under both liveness engines, check byte-identical output, and report the speedup plus query/recompute counters")
	benchThroughput := flag.Bool("bench-throughput", false, "measure whole-pipeline functions/sec at parallel=1/2/4/8 over a mixed compile+analyze workload and record it with the copy-on-write counter deltas")
	throughputOut := flag.String("throughput-out", "BENCH_throughput.json", "write the -bench-throughput report to `file`")
	benchPersist := flag.Bool("bench-persist", false, "measure the b1-vs-v2 wire codec over the Table 2 corpus and a laocd cold-vs-warm restart cycle on a persistent cache store")
	persistOut := flag.String("persist-out", "BENCH_persist.json", "write the -bench-persist report to `file`")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to `file`")
	memprofile := flag.String("memprofile", "", "write a heap profile to `file` at exit")
	metricsOut := flag.String("metrics-out", "", "write a JSON metrics snapshot (counters, histograms, host stamp) to `file` at exit; cmd/perfgate compares these")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics (Prometheus text), /metrics.json and /debug/pprof on `host:port` while the run is in flight")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "ssabench:", err)
		os.Exit(1)
	}
	stats.Checked = *verifyMode
	stats.Parallel = *parallel

	// An interrupt cancels the table batches: queued jobs are skipped,
	// in-flight ones stop at the next pass boundary, and the driver
	// exits with the cancellation error instead of finishing all tables
	// on a worker pool nobody is waiting for.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	stats.Context = ctx

	switch *engineName {
	case "":
	case "dominance":
		interference.DefaultEngine = interference.EngineDominance
	case "pairwise":
		interference.DefaultEngine = interference.EnginePairwise
	default:
		fail(fmt.Errorf("unknown -interference-engine %q (have: dominance, pairwise)", *engineName))
	}

	switch *livenessEngineName {
	case "":
	case "query":
		liveness.DefaultEngine = liveness.EngineQuery
	case "iterative":
		liveness.DefaultEngine = liveness.EngineIterative
	default:
		fail(fmt.Errorf("unknown -liveness-engine %q (have: query, iterative)", *livenessEngineName))
	}

	if *list {
		for _, s := range workload.All() {
			// φ counts require SSA form; the suites are built fresh for
			// this listing, so converting them in place is fine.
			instrs := s.NumInstrs()
			phis := 0
			for _, f := range s.Funcs {
				ssa.MustBuild(f)
				phis += f.CountPhis()
			}
			fmt.Printf("%-12s %4d functions, %6d instructions, %5d phis\n",
				s.Name, len(s.Funcs), instrs, phis)
		}
		return
	}

	if *cpuprofile != "" {
		w, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		defer w.Close()
		if err := pprof.StartCPUProfile(w); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			w, err := os.Create(*memprofile)
			if err != nil {
				fail(err)
			}
			defer w.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(w); err != nil {
				fail(err)
			}
		}()
	}

	if *cacheStats {
		defer func() {
			cs := analysis.Stats()
			fmt.Fprintf(os.Stderr, "analysis cache: liveness %d requests, %d computes, %d reused; dominators %d requests, %d computes, %d reused\n",
				cs.LivenessRequests, cs.LivenessComputes, cs.LivenessReused,
				cs.DominatorsRequests, cs.DominatorsComputes, cs.DominatorsReused)
			fmt.Fprintf(os.Stderr, "liveness engine: %d full builds, %d revalidations (%d var walks kept, %d invalidated)\n",
				cs.LivenessFullBuilds, cs.LivenessRevalidations,
				cs.LivenessVarsKept, cs.LivenessVarsInvalidated)
		}()
	}

	var tracer obs.Tracer
	if *traceJSON != "" {
		w, err := os.Create(*traceJSON)
		if err != nil {
			fail(err)
		}
		defer w.Close()
		tracer = obs.NewJSONL(w)
	}
	if *traceCounters {
		cs := newCounterSum()
		defer cs.dump(os.Stderr)
		tracer = obs.Multi(tracer, cs)
	}

	if *metricsOut != "" || *metricsAddr != "" {
		// Route every table batch through the process-wide registry (the
		// analysis-cache counters land there unconditionally).
		stats.Metrics = metrics.Default
		if *metricsAddr != "" {
			addr, stop, err := metrics.Serve(*metricsAddr, metrics.Default)
			if err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "ssabench: serving metrics on http://%s/metrics\n", addr)
			defer stop()
		}
		if *verifyMode && !*benchInterference && !*benchLiveness && !*benchThroughput && !*benchPersist {
			// Checked mode: cross-reference the registry's pass-counter
			// mirror against an independent shadow sum of the trace-event
			// counters. Any skew — a counter bumped without its event, or
			// vice versa — is a hard failure (the faultinject MetricsSkew
			// class exists to prove this trips). Runs after the snapshot
			// defer below, so the snapshot is written either way.
			shadow := newCounterSum()
			tracer = obs.Multi(tracer, shadow)
			defer func() {
				snap := metrics.Default.Snapshot()
				if err := metrics.SelfCheckPassCounters(snap, pipeline.MetricPassCounters, shadow.sums); err != nil {
					fmt.Fprintln(os.Stderr, "ssabench: metrics self-check:", err)
					os.Exit(1)
				}
				fmt.Fprintln(os.Stderr, "ssabench: metrics self-check: registry pass counters match trace totals")
			}()
		}
		if *metricsOut != "" {
			out := *metricsOut
			defer func() {
				w, err := os.Create(out)
				if err != nil {
					fail(err)
				}
				defer w.Close()
				if err := metrics.WriteJSON(w, metrics.Default.Snapshot(), obs.HostInfo()); err != nil {
					fail(err)
				}
			}()
		}
	}

	if *benchThroughput {
		if err := runBenchThroughput(*throughputOut); err != nil {
			fail(err)
		}
		return
	}
	if *benchPersist {
		if err := runBenchPersist(*persistOut); err != nil {
			fail(err)
		}
		return
	}
	if *benchInterference {
		if err := runBenchInterference(*table); err != nil {
			fail(err)
		}
		return
	}
	if *benchLiveness {
		if err := runBenchLiveness(*table); err != nil {
			fail(err)
		}
		return
	}

	run := func(fn func(obs.Tracer) (*stats.Table, error)) {
		t, err := fn(tracer)
		if err != nil {
			fail(err)
		}
		fmt.Println(t)
	}

	switch *table {
	case 0:
		fmt.Println(stats.Table1())
		ts, err := stats.AllTablesTraced(tracer)
		if err != nil {
			fail(err)
		}
		for _, t := range ts {
			fmt.Println(t)
		}
	case 1:
		fmt.Println(stats.Table1())
	case 2:
		run(stats.Table2Traced)
	case 3:
		run(stats.Table3Traced)
	case 4:
		run(stats.Table4Traced)
	case 5:
		run(stats.Table5Traced)
	default:
		fmt.Fprintf(os.Stderr, "ssabench: no table %d (have 1-5)\n", *table)
		os.Exit(2)
	}
}

// counterSum is a Tracer that accumulates every per-pass counter across
// all runs, giving a whole-workload view of the interference query
// volume (the per-event values are in the JSONL trace).
type counterSum struct{ sums map[string]int64 }

func newCounterSum() *counterSum { return &counterSum{sums: make(map[string]int64)} }

func (c *counterSum) RunStart(string, string, obs.IRStat)      {}
func (c *counterSum) PassStart(string, string, string)         {}
func (c *counterSum) RunEnd(string, string, obs.IRStat, int64) {}
func (c *counterSum) PassEnd(ev *obs.Event) {
	for k, v := range ev.Counters {
		c.sums[k] += v
	}
}

func (c *counterSum) dump(w io.Writer) {
	for _, k := range obs.SortedKeys(c.sums) {
		fmt.Fprintf(w, "counter %-55s %12d\n", k, c.sums[k])
	}
}

// sumSuffix totals the counters whose key ends in suffix — e.g. every
// pass's ".Interference.KillQueries".
func (c *counterSum) sumSuffix(suffix string) int64 {
	var t int64
	for k, v := range c.sums {
		if strings.HasSuffix(k, suffix) {
			t += v
		}
	}
	return t
}

// tableRunners maps table numbers to their traced regenerators (Table 1
// is a static workload census — no pipeline runs, nothing to time).
var tableRunners = map[int]func(obs.Tracer) (*stats.Table, error){
	2: stats.Table2Traced,
	3: stats.Table3Traced,
	4: stats.Table4Traced,
	5: stats.Table5Traced,
}

// runBenchInterference times the selected table workload under the
// pairwise oracle engine and the dominance sweep engine, requires their
// table outputs to be byte-identical (exit 1 otherwise — this is the
// correctness gate the CI bench-smoke job relies on), and reports the
// wall-clock ratio plus the interference counter totals per engine.
func runBenchInterference(table int) error {
	if table == 0 {
		table = 2
	}
	run, ok := tableRunners[table]
	if !ok {
		return fmt.Errorf("-bench-interference needs a pipeline table (2-5), got %d", table)
	}
	fmt.Printf("host: %s\n", obs.HostInfo())
	const reps = 3
	type result struct {
		best   time.Duration
		all    []time.Duration
		output string
		cs     *counterSum
	}
	prev := interference.DefaultEngine
	defer func() { interference.DefaultEngine = prev }()

	engines := []interference.Engine{interference.EnginePairwise, interference.EngineDominance}
	results := make(map[interference.Engine]*result, len(engines))
	for _, e := range engines {
		interference.DefaultEngine = e
		r := &result{}
		for i := 0; i < reps; i++ {
			cs := newCounterSum()
			start := time.Now()
			t, err := run(cs)
			d := time.Since(start)
			if err != nil {
				return fmt.Errorf("engine %s: %v", e, err)
			}
			r.all = append(r.all, d)
			if r.best == 0 || d < r.best {
				r.best = d
			}
			if i == 0 {
				r.output, r.cs = t.String(), cs
			} else if t.String() != r.output {
				return fmt.Errorf("engine %s: table %d output differs between repetitions", e, table)
			}
		}
		results[e] = r
		fmt.Printf("engine %-9s table %d: best %v of", e, table, r.best.Round(time.Millisecond))
		for _, d := range r.all {
			fmt.Printf(" %v", d.Round(time.Millisecond))
		}
		fmt.Println()
		for _, suffix := range []string{
			"Interference.KillQueries", "Interference.ResourceKilled",
			"Interference.ResourceInterfere", "Interference.KilledMemoHits",
			"Interference.InterfereMemoHits",
		} {
			fmt.Printf("  %-32s %12d\n", suffix, r.cs.sumSuffix(suffix))
		}
	}

	rp, rd := results[interference.EnginePairwise], results[interference.EngineDominance]
	if rp.output != rd.output {
		return fmt.Errorf("table %d output DIVERGES between engines — correctness bug", table)
	}
	fmt.Printf("outputs: byte-identical\nspeedup (pairwise/dominance, best-of-%d wall): %.2fx\n",
		reps, float64(rp.best)/float64(rd.best))
	return nil
}

// runBenchLiveness times the selected table workload under the
// iterative fixed-point engine and the query engine, requires their
// table outputs to be byte-identical (the CI engine-agreement gate),
// and reports the wall-clock ratio, the per-pass liveness query
// counters, and the analysis-cache build/revalidation deltas per
// engine.
func runBenchLiveness(table int) error {
	if table == 0 {
		table = 2
	}
	run, ok := tableRunners[table]
	if !ok {
		return fmt.Errorf("-bench-liveness needs a pipeline table (2-5), got %d", table)
	}
	fmt.Printf("host: %s\n", obs.HostInfo())
	// Five repetitions, engines interleaved (iterative, query,
	// iterative, ...) with a forced GC before each timed sample: the
	// engines differ by a few percent of the whole-pipeline wall, so
	// back-to-back per-engine batches would fold machine drift and
	// leftover heap into the comparison.
	const reps = 5
	type result struct {
		best   time.Duration
		all    []time.Duration
		output string
		cs     *counterSum
		// Analysis-cache deltas of the first repetition: how many times
		// a liveness request rebuilt the whole Info vs revalidated it.
		computes, fullBuilds, revals, kept, dropped uint64
	}
	prev := liveness.DefaultEngine
	defer func() { liveness.DefaultEngine = prev }()

	engines := []liveness.Engine{liveness.EngineIterative, liveness.EngineQuery}
	results := make(map[liveness.Engine]*result, len(engines))
	for _, e := range engines {
		results[e] = &result{}
	}
	for i := 0; i < reps; i++ {
		for _, e := range engines {
			liveness.DefaultEngine = e
			r := results[e]
			cs := newCounterSum()
			before := analysis.Stats()
			runtime.GC()
			start := time.Now()
			t, err := run(cs)
			d := time.Since(start)
			if err != nil {
				return fmt.Errorf("engine %s: %v", e, err)
			}
			r.all = append(r.all, d)
			if r.best == 0 || d < r.best {
				r.best = d
			}
			if i == 0 {
				after := analysis.Stats()
				r.output, r.cs = t.String(), cs
				r.computes = after.LivenessComputes - before.LivenessComputes
				r.fullBuilds = after.LivenessFullBuilds - before.LivenessFullBuilds
				r.revals = after.LivenessRevalidations - before.LivenessRevalidations
				r.kept = after.LivenessVarsKept - before.LivenessVarsKept
				r.dropped = after.LivenessVarsInvalidated - before.LivenessVarsInvalidated
			} else if t.String() != r.output {
				return fmt.Errorf("engine %s: table %d output differs between repetitions", e, table)
			}
		}
	}
	for _, e := range engines {
		r := results[e]
		fmt.Printf("engine %-9s table %d: best %v of", e, table, r.best.Round(time.Millisecond))
		for _, d := range r.all {
			fmt.Printf(" %v", d.Round(time.Millisecond))
		}
		fmt.Println()
		fmt.Printf("  %-32s %12d\n  %-32s %12d (%d var walks kept, %d invalidated)\n",
			"liveness full Info builds", r.fullBuilds,
			"liveness revalidations", r.revals, r.kept, r.dropped)
		for _, suffix := range []string{
			"Interference.LiveQueryHits", "Interference.LiveQueryMisses",
			"Interference.LiveVarRecomputes",
		} {
			fmt.Printf("  %-32s %12d\n", suffix, r.cs.sumSuffix(suffix))
		}
	}

	ri, rq := results[liveness.EngineIterative], results[liveness.EngineQuery]
	if ri.output != rq.output {
		return fmt.Errorf("table %d output DIVERGES between liveness engines — correctness bug", table)
	}
	if ri.computes > 0 && rq.fullBuilds > 0 {
		fmt.Printf("full-Info recomputations: %d iterative -> %d query (%.1f%% reduction)\n",
			ri.computes, rq.fullBuilds,
			100*(1-float64(rq.fullBuilds)/float64(ri.computes)))
	}
	fmt.Printf("outputs: byte-identical\nspeedup (iterative/query, best-of-%d wall): %.2fx\n",
		reps, float64(ri.best)/float64(rq.best))
	return nil
}
