// The -bench-persist harness: the evidence behind the binary wire
// codec and the persistent warm-start cache.
//
// Two sections:
//
//   - Codec: encode and decode the full Table 2 corpus (every workload
//     suite function) under the v2 JSON and b1 binary schemas, best of
//     several passes. The headline is the decode speedup — the decode
//     path is what both the server's IR mode and the warm scan pay on
//     every record — and the acceptance bar is b1 decode ≥ 3× v2.
//   - Restart: an in-process laocd (real HTTP loopback) with -cache-dir
//     compiles a pooled request stream cold, drains, restarts on the
//     same directory, and answers the identical stream warm. Reported:
//     hit rates, warm-loaded record counts, p50 request latency, and a
//     byte-identity check between the cold and warm responses.
//
// Wall-clock numbers (MB/s, p50) are host-dependent; the hit rates,
// record counts and the byte-identity verdict are deterministic and
// are the claims CI-grade comparisons should use. On a single-core
// host the latency columns reflect time-slicing, not service capacity.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"outofssa/internal/ir"
	"outofssa/internal/obs"
	"outofssa/internal/obs/metrics"
	"outofssa/internal/server"
	"outofssa/internal/workload"
)

const (
	persistCodecReps = 8
	persistRequests  = 400
	persistDistinct  = 100
	persistSeed      = 2024
)

type persistReport struct {
	Description string         `json:"description"`
	Date        string         `json:"date"`
	Host        obs.Host       `json:"host"`
	GOMAXPROCS  int            `json:"gomaxprocs"`
	Cores       int            `json:"cores"`
	Caveat      string         `json:"caveat,omitempty"`
	Codec       codecSection   `json:"codec"`
	Restart     restartSection `json:"restart"`
}

type codecSection struct {
	Functions         int         `json:"functions"`
	Passes            int         `json:"passes_best_of"`
	Schemas           []codecPass `json:"schemas"`
	DecodeSpeedupB1   float64     `json:"decode_speedup_b1_over_v2"`
	EncodeSpeedupB1   float64     `json:"encode_speedup_b1_over_v2"`
	SizeRatioB1OverV2 float64     `json:"size_ratio_b1_over_v2"`
	Note              string      `json:"note"`
}

type codecPass struct {
	Schema         string  `json:"schema"`
	CorpusBytes    int64   `json:"corpus_bytes"`
	EncodeNS       int64   `json:"encode_ns_per_corpus"`
	DecodeNS       int64   `json:"decode_ns_per_corpus"`
	EncodeMBPerSec float64 `json:"encode_mb_per_sec"`
	DecodeMBPerSec float64 `json:"decode_mb_per_sec"`
}

type restartSection struct {
	Requests      int          `json:"requests"`
	Distinct      int          `json:"distinct_functions"`
	Cold          restartPhase `json:"cold"`
	Warm          restartPhase `json:"warm"`
	WarmRecords   int64        `json:"warm_loaded_records"`
	WarmSkipped   int64        `json:"warm_skipped_records"`
	StoreCorrupt  int64        `json:"store_corrupt_records"`
	ByteIdentical bool         `json:"cold_warm_byte_identical"`
	Note          string       `json:"note"`
}

type restartPhase struct {
	OK           int     `json:"ok"`
	HitRate      float64 `json:"result_cache_hit_rate"`
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	DecodeMisses int64   `json:"decode_misses"`
	Poison       int64   `json:"cache_poison"`
	P50RequestNS int64   `json:"p50_request_ns"`
}

// benchCodec times whole-corpus encode/decode passes per schema,
// keeping the best (minimum) wall time of persistCodecReps passes.
func benchCodec() (codecSection, error) {
	var funcs []*ir.Func
	for _, s := range workload.All() {
		funcs = append(funcs, s.Funcs...)
	}
	type schema struct {
		name   string
		encode func(*ir.Func) ([]byte, error)
	}
	schemas := []schema{
		{ir.WireSchemaV2, ir.Marshal},
		{ir.WireSchemaB1, ir.MarshalBinary},
	}
	sec := codecSection{
		Functions: len(funcs),
		Passes:    persistCodecReps,
		Note:      "Whole-corpus passes over every workload suite function; best-of wall times. decode_speedup is the acceptance headline: the decode path is what the server's IR mode and the warm scan pay per record.",
	}
	for _, sc := range schemas {
		docs := make([][]byte, len(funcs))
		var corpus int64
		for i, f := range funcs {
			d, err := sc.encode(f)
			if err != nil {
				return sec, fmt.Errorf("%s encode %s: %w", sc.name, f.Name, err)
			}
			docs[i] = d
			corpus += int64(len(d))
		}
		best := func(pass func() error) (int64, error) {
			bestNS := int64(0)
			for r := 0; r < persistCodecReps; r++ {
				start := time.Now()
				if err := pass(); err != nil {
					return 0, err
				}
				if ns := time.Since(start).Nanoseconds(); bestNS == 0 || ns < bestNS {
					bestNS = ns
				}
			}
			return bestNS, nil
		}
		encNS, err := best(func() error {
			for _, f := range funcs {
				if _, err := sc.encode(f); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return sec, err
		}
		decNS, err := best(func() error {
			for _, d := range docs {
				if _, err := ir.Unmarshal(d); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return sec, err
		}
		mbps := func(ns int64) float64 {
			return float64(corpus) / 1e6 / (float64(ns) / 1e9)
		}
		sec.Schemas = append(sec.Schemas, codecPass{
			Schema:         sc.name,
			CorpusBytes:    corpus,
			EncodeNS:       encNS,
			DecodeNS:       decNS,
			EncodeMBPerSec: mbps(encNS),
			DecodeMBPerSec: mbps(decNS),
		})
	}
	v2, b1 := sec.Schemas[0], sec.Schemas[1]
	sec.DecodeSpeedupB1 = float64(v2.DecodeNS) / float64(b1.DecodeNS)
	sec.EncodeSpeedupB1 = float64(v2.EncodeNS) / float64(b1.EncodeNS)
	sec.SizeRatioB1OverV2 = float64(b1.CorpusBytes) / float64(v2.CorpusBytes)
	return sec, nil
}

// runRestartPhase drives the request stream against a fresh server on
// dir and tears the server down (drained, store flushed).
func runRestartPhase(dir string, reqs []workload.ClientRequest, outputs []string) (restartPhase, *metrics.Registry, error) {
	reg := metrics.New()
	s, err := server.New(server.Config{
		Workers:         4,
		QueueDepth:      256,
		DefaultDeadline: 30 * time.Second,
		MaxDeadline:     30 * time.Second,
		CacheEntries:    4 * persistDistinct,
		Metrics:         reg,
		CacheDir:        dir,
	})
	if err != nil {
		return restartPhase{}, nil, err
	}
	s.Start()
	hs := httptest.NewServer(s.Handler())
	rep := workload.Drive(hs.URL, reqs, workload.DriveOptions{Concurrency: 8}, nil, outputs)
	hs.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		return restartPhase{}, nil, fmt.Errorf("drain: %w", err)
	}
	if rep.OK != len(reqs) {
		return restartPhase{}, nil, fmt.Errorf("restart phase: %d/%d OK (%s)", rep.OK, len(reqs), rep.String())
	}
	ph := restartPhase{
		OK:           rep.OK,
		HitRate:      float64(rep.Cached) / float64(rep.OK),
		CacheHits:    regCounter(reg, "laocd_cache_hits_total"),
		CacheMisses:  regCounter(reg, "laocd_cache_misses_total"),
		DecodeMisses: regCounter(reg, "laocd_decode_misses_total"),
		Poison:       regCounter(reg, "laocd_cache_poison_total"),
		P50RequestNS: histQuantile(reg, "laocd_request_wall_ns", 0.5),
	}
	return ph, reg, nil
}

func regCounter(reg *metrics.Registry, name string) int64 {
	var total int64
	for _, c := range reg.Snapshot().Counters {
		if c.Name == name {
			total += c.Value
		}
	}
	return total
}

func histQuantile(reg *metrics.Registry, name string, q float64) int64 {
	for _, h := range reg.Snapshot().Histograms {
		if h.Name == name {
			return h.Quantile(q)
		}
	}
	return 0
}

// benchRestart runs the cold → drain → restart → warm cycle.
func benchRestart() (restartSection, error) {
	dir, err := os.MkdirTemp("", "laoc-persist-bench-")
	if err != nil {
		return restartSection{}, err
	}
	defer os.RemoveAll(dir)

	funcs := workload.SynthPool(persistRequests, persistDistinct, persistSeed)
	reqs, err := workload.PooledRequests(funcs, persistRequests, 30_000)
	if err != nil {
		return restartSection{}, err
	}
	coldOut := make([]string, len(reqs))
	cold, _, err := runRestartPhase(dir, reqs, coldOut)
	if err != nil {
		return restartSection{}, err
	}
	warmOut := make([]string, len(reqs))
	warm, warmReg, err := runRestartPhase(dir, reqs, warmOut)
	if err != nil {
		return restartSection{}, err
	}
	identical := true
	for i := range coldOut {
		if coldOut[i] != warmOut[i] {
			identical = false
			break
		}
	}
	return restartSection{
		Requests:      persistRequests,
		Distinct:      persistDistinct,
		Cold:          cold,
		Warm:          warm,
		WarmRecords:   regCounter(warmReg, "laocd_store_warm_total"),
		WarmSkipped:   regCounter(warmReg, "laocd_store_warm_skipped_total"),
		StoreCorrupt:  regCounter(warmReg, "laocd_store_corrupt_total"),
		ByteIdentical: identical,
		Note:          "Cold: empty directory, every distinct function compiles once. Warm: same directory after a clean drain — the store replays one result and one decode record per distinct function, so the warm pass must serve every request from the verified cache (hit rate 1.0, zero decode misses). Byte identity compares all per-request outputs across the restart.",
	}, nil
}

// runBenchPersist is the -bench-persist entry point.
func runBenchPersist(out string) error {
	rep := persistReport{
		Description: "Binary arena wire codec (laoc-ir-b1) vs v2 JSON over the Table 2 corpus, and a laocd cold-vs-warm restart cycle on a persistent cache store.",
		Date:        time.Now().UTC().Format("2006-01-02"),
		Host:        obs.HostInfo(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Cores:       runtime.NumCPU(),
	}
	if rep.Cores < 2 {
		rep.Caveat = "Single-core host: MB/s and p50 figures time-slice one CPU and understate multi-core capacity. The hit rates, record counts, byte-identity verdict and the codec speedup ratios (same host both sides) are the portable claims."
	}

	codec, err := benchCodec()
	if err != nil {
		return err
	}
	rep.Codec = codec
	for _, sc := range codec.Schemas {
		fmt.Printf("codec %s: corpus %.1f KB, encode %6.1f MB/s, decode %6.1f MB/s\n",
			sc.Schema, float64(sc.CorpusBytes)/1e3, sc.EncodeMBPerSec, sc.DecodeMBPerSec)
	}
	fmt.Printf("codec: b1 decode speedup %.2fx over v2 (encode %.2fx, size ratio %.2f)\n",
		codec.DecodeSpeedupB1, codec.EncodeSpeedupB1, codec.SizeRatioB1OverV2)

	restart, err := benchRestart()
	if err != nil {
		return err
	}
	rep.Restart = restart
	fmt.Printf("restart: cold hit rate %.3f (p50 %v), warm hit rate %.3f (p50 %v), %d warm records, byte-identical=%v\n",
		restart.Cold.HitRate, time.Duration(restart.Cold.P50RequestNS),
		restart.Warm.HitRate, time.Duration(restart.Warm.P50RequestNS),
		restart.WarmRecords, restart.ByteIdentical)
	if !restart.ByteIdentical {
		return fmt.Errorf("bench-persist: warm responses differ from cold responses")
	}
	if restart.Warm.HitRate != 1.0 || restart.Warm.DecodeMisses != 0 {
		return fmt.Errorf("bench-persist: warm pass not fully served from cache (hit rate %.3f, %d decode misses)",
			restart.Warm.HitRate, restart.Warm.DecodeMisses)
	}
	if codec.DecodeSpeedupB1 < 3 {
		return fmt.Errorf("bench-persist: b1 decode speedup %.2fx below the 3x acceptance bar", codec.DecodeSpeedupB1)
	}

	w, err := os.Create(out)
	if err != nil {
		return err
	}
	defer w.Close()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
