package main

import (
	"bytes"
	"strings"
	"testing"

	"outofssa/internal/pipeline"
	"outofssa/internal/testprog"
)

// TestCounterDumpDeterministic pins the emission-order contract for
// every counter-map dump: identical workloads must produce
// byte-identical output across repeated runs, regardless of Go's map
// iteration order. This is what makes -trace-counters output diffable
// between CI runs.
func TestCounterDumpDeterministic(t *testing.T) {
	run := func() []byte {
		cs := newCounterSum()
		conf, err := pipeline.Preset(pipeline.ExpLphiABIC)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range testprog.All() {
			if _, err := pipeline.Run(f, conf,
				pipeline.WithExperiment(pipeline.ExpLphiABIC), pipeline.WithTracer(cs)); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		cs.dump(&buf)
		return buf.Bytes()
	}
	first := run()
	if len(first) == 0 {
		t.Fatal("dump produced no counters")
	}
	for i := 0; i < 5; i++ {
		if got := run(); !bytes.Equal(first, got) {
			t.Fatalf("run %d dump differs from first:\n--- first ---\n%s--- got ---\n%s", i+2, first, got)
		}
	}
	// Sorted-order spot check: the dump must be line-sorted by key.
	lines := strings.Split(strings.TrimRight(string(first), "\n"), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i-1] > lines[i] {
			t.Fatalf("dump not sorted at line %d:\n%s\n%s", i, lines[i-1], lines[i])
		}
	}
}
