// The -bench-throughput harness: whole-pipeline functions/sec at
// parallel = 1/2/4/8 over a mixed compile + analyze workload, plus the
// deterministic copy-on-write counter deltas that are the meaningful
// scaling evidence on a host without spare cores.
//
// The workload has two phases per parallelism level:
//
//   - Compile: the Table 2 job matrix (every workload function × the
//     three Table 2 experiment configurations), each job snapshotting
//     its function from a frozen per-suite master and running the full
//     pipeline. Every job mutates, so every job materializes private
//     slabs — this phase measures the mutating path.
//   - Analyze: read-only jobs over SSA-form masters — IR verification,
//     liveness + MAXLIVE, move/φ censuses — each on its own snapshot.
//     No job mutates, so no job copies a slab — this phase measures the
//     zero-copy read path the snapshot design exists for.
//
// Functions/sec is wall-clock and therefore host-dependent; the
// counter-derived claims (snapshots taken vs copies materialized,
// allocations per job vs the clone baseline) are deterministic and are
// what CI asserts on.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"outofssa/internal/analysis"
	"outofssa/internal/ir"
	"outofssa/internal/liveness"
	"outofssa/internal/obs"
	"outofssa/internal/pipeline"
	"outofssa/internal/ssa"
	"outofssa/internal/verify"
	"outofssa/internal/workload"
)

// analyzeRepsPerFunc is how many read-only analysis jobs the harness
// runs per master function. Four reads per compile job keeps the mix
// read-heavy (the batch-service shape: most requests hit caches or ask
// analysis questions), which is what makes the copies-materialized /
// snapshots-taken ratio a meaningful headline (< 0.5 by construction,
// ~0.2 measured).
const analyzeRepsPerFunc = 12

// throughputLevels are the worker-pool sizes measured.
var throughputLevels = []int{1, 2, 4, 8}

// throughputReport is the BENCH_throughput.json schema.
type throughputReport struct {
	Description string            `json:"description"`
	Date        string            `json:"date"`
	Host        obs.Host          `json:"host"`
	GOMAXPROCS  int               `json:"gomaxprocs"`
	Cores       int               `json:"cores"`
	Caveat      string            `json:"caveat,omitempty"`
	Workload    throughputLoad    `json:"workload"`
	Levels      []throughputLevel `json:"levels"`
	COW         cowCounters       `json:"cow_counters"`
	AllocsPerJob allocComparison  `json:"allocs_per_compile_job"`
}

type throughputLoad struct {
	CompileJobs int `json:"compile_jobs"`
	AnalyzeJobs int `json:"analyze_jobs"`
	Functions   int `json:"functions"`
	Configs     int `json:"configs"`
}

type throughputLevel struct {
	Parallel          int     `json:"parallel"`
	CompileWallNS     int64   `json:"compile_wall_ns"`
	AnalyzeWallNS     int64   `json:"analyze_wall_ns"`
	CompileFuncsPerSec float64 `json:"compile_funcs_per_sec"`
	AnalyzeFuncsPerSec float64 `json:"analyze_funcs_per_sec"`
	TotalFuncsPerSec   float64 `json:"total_funcs_per_sec"`
	ScalingEfficiency  float64 `json:"scaling_efficiency"`
}

type cowCounters struct {
	Snapshots           int64   `json:"snapshots_total"`
	Materializations    int64   `json:"copies_materialized_total"`
	SlabCopies          int64   `json:"slab_copies_total"`
	Adoptions           int64   `json:"adoptions_total"`
	MaterializedRatio   float64 `json:"copies_materialized_ratio"`
	Note                string  `json:"note"`
}

type allocComparison struct {
	Snapshot          float64 `json:"snapshot_build"`
	Clone             float64 `json:"clone_build"`
	SnapshotBuildOnly float64 `json:"snapshot_build_step_only"`
	CloneBuildOnly    float64 `json:"clone_build_step_only"`
	Note              string  `json:"note"`
}

// throughputMasters builds the two frozen master sets the phases
// snapshot from: the raw (pre-SSA) compile masters and the SSA-form
// analyze masters.
func throughputMasters() (compile, analyze []*ir.Func) {
	for _, s := range workload.All() {
		for _, f := range s.Funcs {
			f.Freeze()
			compile = append(compile, f)
		}
	}
	for _, s := range workload.All() {
		for _, f := range s.Funcs {
			ssa.MustBuild(f)
			f.Freeze()
			analyze = append(analyze, f)
		}
	}
	return compile, analyze
}

// table2Configs resolves the Table 2 experiment matrix.
func table2Configs() ([]pipeline.Config, []string, error) {
	names := []string{pipeline.ExpLphiC, pipeline.ExpC2, pipeline.ExpSphiC}
	confs := make([]pipeline.Config, len(names))
	for i, n := range names {
		c, err := pipeline.Preset(n)
		if err != nil {
			return nil, nil, err
		}
		confs[i] = c
	}
	return confs, names, nil
}

// runCompilePhase executes the Table 2 job matrix at the given
// parallelism and returns the wall time.
func runCompilePhase(masters []*ir.Func, confs []pipeline.Config, names []string, parallel int) (time.Duration, error) {
	jobs := make([]pipeline.Job, 0, len(masters)*len(confs))
	for ci := range confs {
		for _, f := range masters {
			f := f
			jobs = append(jobs, pipeline.Job{
				Build:      func() *ir.Func { return f.Snapshot() },
				Config:     confs[ci],
				Experiment: names[ci],
			})
		}
	}
	start := time.Now()
	results := pipeline.RunBatch(jobs, pipeline.WithParallelism(parallel))
	wall := time.Since(start)
	for i := range results {
		if results[i].Err != nil {
			return 0, fmt.Errorf("compile job %d: %v", i, results[i].Err)
		}
	}
	return wall, nil
}

// runAnalyzePhase fans read-only analysis jobs over the SSA masters:
// each job snapshots one master, verifies it, answers liveness and
// census queries, and releases the snapshot. Work is claimed from one
// atomic cursor at whole-job granularity — the shared-nothing shape of
// the batch driver, without pipeline mutation.
func runAnalyzePhase(masters []*ir.Func, parallel int) (time.Duration, error) {
	type job struct{ master *ir.Func }
	jobs := make([]job, 0, len(masters)*analyzeRepsPerFunc)
	for rep := 0; rep < analyzeRepsPerFunc; rep++ {
		for _, f := range masters {
			jobs = append(jobs, job{master: f})
		}
	}
	var cursor atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := cursor.Add(1) - 1
				if int(i) >= len(jobs) {
					return
				}
				snap := jobs[i].master.Snapshot()
				if err := verify.Func(snap, verify.StageSSA); err != nil {
					firstErr.CompareAndSwap(nil, fmt.Errorf("analyze job %d: %v", i, err))
					return
				}
				live := analysis.Liveness(snap)
				_ = liveness.MaxLive(snap, live)
				_ = snap.CountMoves()
				_ = snap.CountPhis()
				snap.Release()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return 0, err
	}
	return wall, nil
}

// measureAllocsPerJob runs one serial compile pass each with
// snapshot-built and clone-built jobs and reports heap allocations per
// job, the direct before/after of the tentpole.
func measureAllocsPerJob(masters []*ir.Func, confs []pipeline.Config, names []string) (snapshot, clone float64, err error) {
	measure := func(build func(f *ir.Func) func() *ir.Func) (float64, error) {
		jobs := make([]pipeline.Job, 0, len(masters)*len(confs))
		for ci := range confs {
			for _, f := range masters {
				jobs = append(jobs, pipeline.Job{Build: build(f), Config: confs[ci], Experiment: names[ci]})
			}
		}
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		results := pipeline.RunBatch(jobs, pipeline.WithParallelism(1))
		runtime.ReadMemStats(&ms1)
		for i := range results {
			if results[i].Err != nil {
				return 0, fmt.Errorf("alloc-measure job %d: %v", i, results[i].Err)
			}
		}
		return float64(ms1.Mallocs-ms0.Mallocs) / float64(len(jobs)), nil
	}
	snapshot, err = measure(func(f *ir.Func) func() *ir.Func {
		return func() *ir.Func { return f.Snapshot() }
	})
	if err != nil {
		return 0, 0, err
	}
	clone, err = measure(func(f *ir.Func) func() *ir.Func {
		return func() *ir.Func { return f.Clone() }
	})
	if err != nil {
		return 0, 0, err
	}
	return snapshot, clone, nil
}

// runBenchThroughput is the -bench-throughput entry point.
func runBenchThroughput(out string) error {
	confs, names, err := table2Configs()
	if err != nil {
		return err
	}
	compileMasters, analyzeMasters := throughputMasters()

	rep := throughputReport{
		Description: "Shared-nothing batch throughput: whole-pipeline functions/sec at parallel=1/2/4/8 over a mixed compile (Table 2 job matrix, mutating) + analyze (read-only verification/liveness/census on snapshots) workload, with the deterministic copy-on-write counters.",
		Date:        time.Now().UTC().Format("2006-01-02"),
		Host:        obs.HostInfo(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Cores:       runtime.NumCPU(),
		Workload: throughputLoad{
			CompileJobs: len(compileMasters) * len(confs),
			AnalyzeJobs: len(analyzeMasters) * analyzeRepsPerFunc,
			Functions:   len(compileMasters),
			Configs:     len(confs),
		},
	}
	if rep.Cores < 2 {
		rep.Caveat = "Single-core host: workers time-slice one CPU, so functions/sec cannot scale with parallelism here and efficiency at parallel>=2 reflects pure scheduling overhead. The deterministic cow_counters and allocs_per_compile_job sections are host-independent; re-run on a multi-core host for wall-clock scaling."
	}

	// Warm-up pass: grow the heap and touch every master once so the
	// parallel=1 baseline is not penalized by first-run effects (which
	// would otherwise masquerade as scaling on a time-sliced host).
	if _, err := runCompilePhase(compileMasters, confs, names, 1); err != nil {
		return err
	}
	if _, err := runAnalyzePhase(analyzeMasters, 1); err != nil {
		return err
	}

	cowBefore := ir.Stats()
	var base float64
	for _, p := range throughputLevels {
		cw, err := runCompilePhase(compileMasters, confs, names, p)
		if err != nil {
			return err
		}
		aw, err := runAnalyzePhase(analyzeMasters, p)
		if err != nil {
			return err
		}
		lv := throughputLevel{
			Parallel:           p,
			CompileWallNS:      cw.Nanoseconds(),
			AnalyzeWallNS:      aw.Nanoseconds(),
			CompileFuncsPerSec: float64(rep.Workload.CompileJobs) / cw.Seconds(),
			AnalyzeFuncsPerSec: float64(rep.Workload.AnalyzeJobs) / aw.Seconds(),
		}
		total := float64(rep.Workload.CompileJobs+rep.Workload.AnalyzeJobs) / (cw + aw).Seconds()
		lv.TotalFuncsPerSec = total
		if p == 1 {
			base = total
		}
		lv.ScalingEfficiency = total / (float64(p) * base)
		rep.Levels = append(rep.Levels, lv)
		fmt.Printf("parallel=%d: compile %6.0f funcs/s (%v), analyze %6.0f funcs/s (%v), total %6.0f funcs/s, efficiency %.2f\n",
			p, lv.CompileFuncsPerSec, cw.Round(time.Millisecond),
			lv.AnalyzeFuncsPerSec, aw.Round(time.Millisecond),
			lv.TotalFuncsPerSec, lv.ScalingEfficiency)
	}
	cowAfter := ir.Stats()

	snaps := cowAfter.Snapshots - cowBefore.Snapshots
	mats := cowAfter.COWMaterializations - cowBefore.COWMaterializations
	rep.COW = cowCounters{
		Snapshots:         snaps,
		Materializations:  mats,
		SlabCopies:        cowAfter.COWSlabCopies - cowBefore.COWSlabCopies,
		Adoptions:         cowAfter.COWAdoptions - cowBefore.COWAdoptions,
		MaterializedRatio: float64(mats) / float64(snaps),
		Note:              "Deterministic: identical at any parallelism and on any host. Every compile job materializes (the pipeline mutates); no analyze job does (reads never copy a slab). The ratio is the fraction of snapshots that ever paid for a copy.",
	}

	snapAllocs, cloneAllocs, err := measureAllocsPerJob(compileMasters, confs, names)
	if err != nil {
		return err
	}
	big := compileMasters[0]
	for _, f := range compileMasters {
		if len(f.Blocks()) > len(big.Blocks()) {
			big = f
		}
	}
	rep.AllocsPerJob = allocComparison{
		Snapshot:          snapAllocs,
		Clone:             cloneAllocs,
		SnapshotBuildOnly: testing.AllocsPerRun(50, func() { _ = big.Snapshot() }),
		CloneBuildOnly:    testing.AllocsPerRun(50, func() { _ = big.Clone() }),
		Note:              "snapshot_build/clone_build: heap allocations per compile job (Mallocs delta / jobs, serial, full pipeline included). *_build_step_only: allocations of the job-construction step alone on the largest workload function — the cost the copy-on-write build defers; the full-pipeline figures converge because pipeline passes dominate and every Table 2 job mutates.",
	}
	fmt.Printf("cow: %d snapshots, %d materialized (ratio %.3f), %d slab copies, %d adoptions\n",
		snaps, mats, rep.COW.MaterializedRatio, rep.COW.SlabCopies, rep.COW.Adoptions)
	fmt.Printf("allocs/compile job: %.0f snapshot-built vs %.0f clone-built\n", snapAllocs, cloneAllocs)

	w, err := os.Create(out)
	if err != nil {
		return err
	}
	defer w.Close()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
