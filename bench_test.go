// Benchmarks regenerating the paper's evaluation (Tables 2-5) and
// measuring the compile-time cost of the passes — including the paper's
// compile-time argument: coalescing at SSA level is cheaper than feeding
// thousands of naive moves to a repeated register coalescer, and the
// optimistic interference variant trades a few moves for analysis speed.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// Each BenchmarkTableN/<suite> iteration runs every experiment of that
// table over the whole suite; the resulting move counts are reported as
// custom metrics (moves/<experiment>), so `-bench Table` regenerates the
// paper's numbers while timing them.
package outofssa_test

import (
	"fmt"
	"runtime"
	"testing"

	"outofssa/internal/cfg"
	"outofssa/internal/coalesce"
	"outofssa/internal/interference"
	"outofssa/internal/ir"
	"outofssa/internal/liveness"
	"outofssa/internal/outofssa/leung"
	"outofssa/internal/pin"
	"outofssa/internal/pipeline"
	"outofssa/internal/regalloc"
	"outofssa/internal/ssa"
	"outofssa/internal/stats"
	"outofssa/internal/workload"
)

var suiteBuilders = map[string]func() *workload.Suite{
	"VALcc1":     workload.VALcc1,
	"VALcc2":     workload.VALcc2,
	"example1-8": workload.Examples,
	"LAI_Large":  workload.LAILarge,
	"SPECint":    workload.SPECint,
}

var suiteOrder = []string{"VALcc1", "VALcc2", "example1-8", "LAI_Large", "SPECint"}

// runTable executes the experiments over the suite once and returns
// total moves per experiment.
func runTable(b *testing.B, build func() *workload.Suite, exps []string, weighted bool) map[string]int64 {
	b.Helper()
	out := make(map[string]int64)
	for _, e := range exps {
		s := build()
		var total int64
		for _, f := range s.Funcs {
			r, err := pipeline.Run(f, pipeline.Configs[e])
			if err != nil {
				b.Fatalf("%s/%s: %v", s.Name, e, err)
			}
			if weighted {
				total += r.WeightedMoves
			} else {
				total += int64(r.Moves)
			}
		}
		out[e] = total
	}
	return out
}

func benchTable(b *testing.B, exps []string, weighted bool) {
	for _, name := range suiteOrder {
		build := suiteBuilders[name]
		b.Run(name, func(b *testing.B) {
			var last map[string]int64
			for i := 0; i < b.N; i++ {
				last = runTable(b, build, exps, weighted)
			}
			for _, e := range exps {
				b.ReportMetric(float64(last[e]), "moves/"+e)
			}
		})
	}
}

// BenchmarkAllTables regenerates Tables 2-5 through the parallel batch
// driver (stats.Parallel -> pipeline.RunBatch) at increasing worker
// counts. The output is identical at every setting — the series
// measures pure wall-clock scaling of the driver; BENCH_parallel.json
// records a committed run of it.
func BenchmarkAllTables(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallel=%d", workers), func(b *testing.B) {
			prev := stats.Parallel
			stats.Parallel = workers
			defer func() { stats.Parallel = prev }()
			for i := 0; i < b.N; i++ {
				if _, err := stats.AllTables(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2 regenerates "move instruction count with no ABI
// constraint": Lφ+C vs C vs Sφ+C.
func BenchmarkTable2(b *testing.B) {
	benchTable(b, []string{pipeline.ExpLphiC, pipeline.ExpC2, pipeline.ExpSphiC}, false)
}

// BenchmarkTable3 regenerates "move instruction count with renaming
// constraints": Lφ,ABI+C vs Sφ+LABI+C vs LABI+C vs C.
func BenchmarkTable3(b *testing.B) {
	benchTable(b, []string{pipeline.ExpLphiABIC, pipeline.ExpSphiLABIC,
		pipeline.ExpLABIC, pipeline.ExpC3}, false)
}

// BenchmarkTable4 regenerates the order-of-magnitude table (no
// aggressive coalescing post-pass).
func BenchmarkTable4(b *testing.B) {
	benchTable(b, []string{pipeline.ExpLphiABI, pipeline.ExpSphi, pipeline.ExpLABI}, false)
}

// BenchmarkTable5 regenerates the weighted variant comparison: base,
// depth, optimistic, pessimistic.
func BenchmarkTable5(b *testing.B) {
	variants := []struct {
		name string
		opt  coalesce.Options
	}{
		{"base", coalesce.Options{}},
		{"depth", coalesce.Options{DepthConstraint: true}},
		{"opt", coalesce.Options{Mode: interference.Optimistic}},
		{"pess", coalesce.Options{Mode: interference.Pessimistic}},
	}
	for _, name := range suiteOrder {
		build := suiteBuilders[name]
		b.Run(name, func(b *testing.B) {
			last := make(map[string]int64)
			for i := 0; i < b.N; i++ {
				for _, v := range variants {
					conf := pipeline.Configs[pipeline.ExpLphiABIC]
					conf.Coalesce = v.opt
					s := build()
					var total int64
					for _, f := range s.Funcs {
						r, err := pipeline.Run(f, conf)
						if err != nil {
							b.Fatal(err)
						}
						total += r.WeightedMoves
					}
					last[v.name] = total
				}
			}
			for _, v := range variants {
				b.ReportMetric(float64(last[v.name]), "wmoves/"+v.name)
			}
		})
	}
}

// ---- pass-level performance benchmarks ----

// ssaSuite builds a suite and converts every function to pinned SSA,
// ready for destruction benchmarks.
func ssaSuite(b *testing.B, name string, abi bool) []*ir.Func {
	b.Helper()
	s := suiteBuilders[name]()
	for _, f := range s.Funcs {
		info := ssa.MustBuild(f)
		pin.CollectSP(f, info)
		if abi {
			pin.CollectABI(f)
		}
	}
	return s.Funcs
}

func BenchmarkSSABuild(b *testing.B) {
	for _, name := range []string{"VALcc1", "LAI_Large", "SPECint"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := suiteBuilders[name]()
				for _, f := range s.Funcs {
					ssa.Build(f)
				}
			}
		})
	}
}

func BenchmarkLeungTranslate(b *testing.B) {
	for _, name := range []string{"VALcc1", "LAI_Large", "SPECint"} {
		b.Run(name, func(b *testing.B) {
			b.StopTimer()
			for i := 0; i < b.N; i++ {
				funcs := ssaSuite(b, name, true)
				b.StartTimer()
				for _, f := range funcs {
					if _, err := leung.Translate(f); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
			}
		})
	}
}

func BenchmarkProgramPinning(b *testing.B) {
	for _, name := range []string{"VALcc1", "LAI_Large", "SPECint"} {
		b.Run(name, func(b *testing.B) {
			b.StopTimer()
			for i := 0; i < b.N; i++ {
				funcs := ssaSuite(b, name, true)
				b.StartTimer()
				for _, f := range funcs {
					if _, err := coalesce.ProgramPinning(f, coalesce.Options{}); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
			}
		})
	}
}

// BenchmarkCoalescingWork compares the paper's compile-time argument
// [CC3]: the number of moves the post-pass coalescer must chew through
// with and without SSA-level handling (its cost is proportional to the
// move count).
func BenchmarkCoalescingWork(b *testing.B) {
	for _, name := range []string{"VALcc1", "SPECint"} {
		b.Run(name+"/afterPinned", func(b *testing.B) {
			b.StopTimer()
			for i := 0; i < b.N; i++ {
				funcs := ssaSuite(b, name, true)
				moves := 0
				for _, f := range funcs {
					if _, err := coalesce.ProgramPinning(f, coalesce.Options{}); err != nil {
						b.Fatal(err)
					}
					if _, err := leung.Translate(f); err != nil {
						b.Fatal(err)
					}
					moves += f.CountMoves()
				}
				b.StartTimer()
				for _, f := range funcs {
					regalloc.AggressiveCoalesce(f)
				}
				b.StopTimer()
				b.ReportMetric(float64(moves), "moves-in")
			}
		})
		b.Run(name+"/afterNaive", func(b *testing.B) {
			b.StopTimer()
			for i := 0; i < b.N; i++ {
				s := suiteBuilders[name]()
				moves := 0
				for _, f := range s.Funcs {
					if _, err := pipeline.Run(f, pipeline.Config{NaiveOut: true, NaiveABI: true}); err != nil {
						b.Fatal(err)
					}
					moves += f.CountMoves()
				}
				b.StartTimer()
				for _, f := range s.Funcs {
					regalloc.AggressiveCoalesce(f)
				}
				b.StopTimer()
				b.ReportMetric(float64(moves), "moves-in")
			}
		})
	}
}

// BenchmarkAblations compares the full paper pipeline against the
// extension variants: the [LIM2] definition pre-pinning pass and the
// ψ-SSA if-conversion path (§5). Reported metrics are final move counts.
func BenchmarkAblations(b *testing.B) {
	exps := []string{pipeline.ExpLphiABIC, pipeline.ExpPrePin, pipeline.ExpPsi}
	for _, name := range []string{"VALcc1", "VALcc2", "LAI_Large"} {
		build := suiteBuilders[name]
		b.Run(name, func(b *testing.B) {
			var last map[string]int64
			for i := 0; i < b.N; i++ {
				last = runTable(b, build, exps, false)
			}
			for _, e := range exps {
				b.ReportMetric(float64(last[e]), "moves/"+e)
			}
		})
	}
}

// BenchmarkPrePinWork measures the compile-time effect of the [LIM2]
// pre-pass: the number of moves entering the "+C" coalescer with and
// without it (Table-4 style, no post-pass).
func BenchmarkPrePinWork(b *testing.B) {
	confs := map[string]pipeline.Config{
		"without": {Optimize: true, ABI: true, PhiCoalesce: true},
		"with":    {Optimize: true, ABI: true, PrePin: true, PhiCoalesce: true},
	}
	for _, which := range []string{"without", "with"} {
		b.Run(which, func(b *testing.B) {
			var moves int64
			for i := 0; i < b.N; i++ {
				moves = 0
				for _, name := range []string{"VALcc1", "VALcc2"} {
					s := suiteBuilders[name]()
					for _, f := range s.Funcs {
						r, err := pipeline.Run(f, confs[which])
						if err != nil {
							b.Fatal(err)
						}
						moves += int64(r.Moves)
					}
				}
			}
			b.ReportMetric(float64(moves), "moves-pre-C")
		})
	}
}

// BenchmarkRegisterPressure measures the [LIM4] interplay: spills and
// colors needed by the graph-coloring allocator (12-register pool) on
// code produced with SSA-level coalescing versus the naive composition.
func BenchmarkRegisterPressure(b *testing.B) {
	confs := []struct {
		name string
		conf pipeline.Config
	}{
		{"pinned", pipeline.Configs[pipeline.ExpLphiABIC]},
		{"naive", pipeline.Configs[pipeline.ExpC3]},
	}
	for _, c := range confs {
		b.Run(c.name, func(b *testing.B) {
			var spills, colors int
			for i := 0; i < b.N; i++ {
				spills, colors = 0, 0
				for _, sn := range []string{"VALcc1", "VALcc2"} {
					s := suiteBuilders[sn]()
					for _, f := range s.Funcs {
						if _, err := pipeline.Run(f, c.conf); err != nil {
							b.Fatal(err)
						}
						st, err := regalloc.AllocateLimited(f, 12)
						if err != nil {
							b.Fatal(err)
						}
						spills += st.Spills
						if st.ColorsUsed > colors {
							colors = st.ColorsUsed
						}
					}
				}
			}
			b.ReportMetric(float64(spills), "spills")
			b.ReportMetric(float64(colors), "max-colors")
		})
	}
}

// benchEngines is the subbenchmark axis of the resource-engine
// comparison: the O(k²) pairwise oracle versus the dominance-ordered
// sweep (both produce identical verdicts; engines_test.go proves it).
var benchEngines = []interference.Engine{interference.EnginePairwise, interference.EngineDominance}

// BenchmarkInterferenceQueries isolates the resource-level query engines
// on the raw Resource_killed / Resource_interfere workload: for every
// function of the suite, a fresh ResourceGraph (empty memos) answers
// KilledSet for every resource root plus Interfere over a root-pair
// sample. This is the hot path Program_pinning and the Leung mark phase
// sit on; BENCH_interference.json records a committed run.
func BenchmarkInterferenceQueries(b *testing.B) {
	for _, engine := range benchEngines {
		for _, name := range []string{"VALcc1", "LAI_Large", "SPECint"} {
			b.Run(fmt.Sprintf("%s/%s", engine, name), func(b *testing.B) {
				b.StopTimer()
				funcs := ssaSuite(b, name, true)
				type prep struct {
					an    *interference.Analysis
					res   *pin.Resources
					roots []ir.ValueID
				}
				var ps []prep
				for _, f := range funcs {
					cfg.SplitCriticalEdges(f)
					res, err := pin.NewResources(f)
					if err != nil {
						b.Fatal(err)
					}
					an := interference.New(f, liveness.Compute(f), cfg.Dominators(f), interference.Exact)
					seen := make(map[ir.ValueID]bool)
					var roots []ir.ValueID
					for id := 0; id < f.NumValues(); id++ {
						if r := res.Find(ir.ValueID(id)); !seen[r] {
							seen[r] = true
							roots = append(roots, r)
						}
					}
					ps = append(ps, prep{an, res, roots})
				}
				b.StartTimer()
				verdicts := 0
				for i := 0; i < b.N; i++ {
					for _, p := range ps {
						g := interference.NewResourceGraph(p.an, p.res)
						g.Engine = engine
						for _, r := range p.roots {
							verdicts += g.KilledSet(r).Len()
						}
						step := len(p.roots)/48 + 1
						for x := 0; x < len(p.roots); x += step {
							for y := x + 1; y < len(p.roots); y += step {
								if g.Interfere(p.roots[x], p.roots[y]) {
									verdicts++
								}
							}
						}
					}
				}
				if verdicts < 0 {
					b.Fatal("impossible")
				}
			})
		}
	}
}

// BenchmarkInterferencePinning measures the end-to-end effect of the
// engine on the two passes that consume it: Program_pinning (φ-affinity
// coalescing, Algorithm 3) followed by the Leung out-of-pinned-SSA
// translation.
func BenchmarkInterferencePinning(b *testing.B) {
	for _, engine := range benchEngines {
		for _, name := range []string{"VALcc1", "LAI_Large", "SPECint"} {
			b.Run(fmt.Sprintf("%s/%s", engine, name), func(b *testing.B) {
				prev := interference.DefaultEngine
				interference.DefaultEngine = engine
				defer func() { interference.DefaultEngine = prev }()
				b.StopTimer()
				for i := 0; i < b.N; i++ {
					funcs := ssaSuite(b, name, true)
					b.StartTimer()
					for _, f := range funcs {
						if _, err := coalesce.ProgramPinning(f, coalesce.Options{}); err != nil {
							b.Fatal(err)
						}
						if _, err := leung.Translate(f); err != nil {
							b.Fatal(err)
						}
					}
					b.StopTimer()
				}
			})
		}
	}
}

// BenchmarkInterferenceModes measures the analysis-cost side of the
// Table 5 ablation: exact per-point liveness versus the optimistic and
// pessimistic block-level approximations (Algorithm 4).
func BenchmarkInterferenceModes(b *testing.B) {
	for _, mode := range []interference.Mode{
		interference.Exact, interference.Optimistic, interference.Pessimistic,
	} {
		b.Run(fmt.Sprint(mode), func(b *testing.B) {
			b.StopTimer()
			funcs := ssaSuite(b, "SPECint", true)
			type prep struct {
				f    *ir.Func
				an   *interference.Analysis
				vals []ir.ValueID
			}
			var ps []prep
			for _, f := range funcs {
				live := liveness.Compute(f)
				an := interference.New(f, live, cfg.Dominators(f), mode)
				var vals []ir.ValueID
				for id := 0; id < f.NumValues(); id++ {
					if v := ir.ValueID(id); !f.IsPhys(v) {
						vals = append(vals, v)
					}
				}
				ps = append(ps, prep{f, an, vals})
			}
			b.StartTimer()
			for i := 0; i < b.N; i++ {
				kills := 0
				for _, p := range ps {
					step := len(p.vals)/64 + 1
					for x := 0; x < len(p.vals); x += step {
						for y := 0; y < len(p.vals); y += step {
							if p.an.Kills(p.vals[x], p.vals[y]) {
								kills++
							}
						}
					}
				}
				if kills < 0 {
					b.Fatal("impossible")
				}
			}
		})
	}
}

// BenchmarkLivenessEngines measures building the liveness analysis and
// answering the pinning-style query mix — every φ argument probed for
// liveness at its predecessor's exit, the Class-2 pattern that
// dominates Variable_kills — under the iterative fixed point and the
// per-variable query engine. The dominator trees are prebuilt: in the
// pipeline they come from the analysis cache (78% reuse on Table 2), so
// their cost is not attributable to the liveness engine.
func BenchmarkLivenessEngines(b *testing.B) {
	for _, engine := range []liveness.Engine{liveness.EngineIterative, liveness.EngineQuery} {
		for _, name := range []string{"VALcc1", "LAI_Large", "SPECint"} {
			b.Run(fmt.Sprintf("%s/%s", engine, name), func(b *testing.B) {
				b.StopTimer()
				funcs := ssaSuite(b, name, true)
				doms := make([]*cfg.DomTree, len(funcs))
				for i, f := range funcs {
					doms[i] = cfg.Dominators(f)
				}
				b.StartTimer()
				hits := 0
				for i := 0; i < b.N; i++ {
					for fi, f := range funcs {
						var l *liveness.Info
						if engine == liveness.EngineQuery {
							l = liveness.NewQuery(f, doms[fi])
						} else {
							l = liveness.Compute(f)
						}
						for _, blk := range f.Blocks() {
							for _, phi := range blk.Phis() {
								for pi, u := range phi.Uses() {
									if pi < blk.NumPreds() && l.LiveOut(u.Val, blk.Pred(pi)) {
										hits++
									}
								}
							}
						}
					}
				}
				if hits < 0 {
					b.Fatal("impossible")
				}
			})
		}
	}
}

// ---- SoA arena benchmarks (DESIGN.md §12) ----

// sinkFunc keeps the cloned function observable so the compiler cannot
// elide the Clone call.
var sinkFunc *ir.Func

// BenchmarkClone measures ir.Func.Clone over the pinned-SSA suites.
// With the SoA arenas a clone is a handful of slab memcpys; allocs/op
// stays O(arena chunks) per function (pinned by ir.TestCloneAllocs),
// independent of instruction count.
func BenchmarkClone(b *testing.B) {
	for _, name := range []string{"VALcc1", "LAI_Large", "SPECint"} {
		b.Run(name, func(b *testing.B) {
			funcs := ssaSuite(b, name, true)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, f := range funcs {
					sinkFunc = f.Clone()
				}
			}
		})
	}
}

// BenchmarkSnapshot measures ir.Func.Snapshot over the same suites as
// BenchmarkClone. A snapshot copies only the chunk spines up front and
// defers every slab copy until a mutation faults it, so allocs/op sits
// strictly below Clone's and ns/op below a clone of the same function —
// the per-job saving the batch driver banks for read-heavy work.
func BenchmarkSnapshot(b *testing.B) {
	for _, name := range []string{"VALcc1", "LAI_Large", "SPECint"} {
		b.Run(name, func(b *testing.B) {
			funcs := ssaSuite(b, name, true)
			for _, f := range funcs {
				f.Freeze()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, f := range funcs {
					sinkFunc = f.Snapshot()
					sinkFunc.Release()
				}
			}
		})
	}
}

// BenchmarkBatchThroughput measures whole-pipeline functions/sec
// through the shared-nothing batch driver with copy-on-write job
// builds: the Table 2 job matrix over the full workload, snapshotting
// every job from a frozen master. funcs/sec is reported as a custom
// metric; `ssabench -bench-throughput` records a committed run of the
// same shape (plus the read-only analyze phase) in
// BENCH_throughput.json.
func BenchmarkBatchThroughput(b *testing.B) {
	exps := []string{pipeline.ExpLphiC, pipeline.ExpC2, pipeline.ExpSphiC}
	var masters []*ir.Func
	for _, build := range suiteBuilders {
		for _, f := range build().Funcs {
			f.Freeze()
			masters = append(masters, f)
		}
	}
	jobs := make([]pipeline.Job, 0, len(masters)*len(exps))
	for _, e := range exps {
		for _, f := range masters {
			f := f
			jobs = append(jobs, pipeline.Job{
				Build:      func() *ir.Func { return f.Snapshot() },
				Config:     pipeline.Configs[e],
				Experiment: e,
			})
		}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallel=%d", workers), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results := pipeline.RunBatch(jobs, pipeline.WithParallelism(workers))
				for j := range results {
					if results[j].Err != nil {
						b.Fatal(results[j].Err)
					}
				}
			}
			b.StopTimer()
			secs := b.Elapsed().Seconds()
			if secs > 0 {
				b.ReportMetric(float64(len(jobs)*b.N)/secs, "funcs/sec")
			}
		})
	}
}

// BenchmarkGCScanIR measures the garbage collector's cost of a resident
// population of IR functions: it parks a few hundred clones on the heap
// and times full GC cycles over them. The SoA layout keeps values,
// operands and code in flat slabs whose only pointers are value names
// and chunk back-references, so scan work tracks the chunk count rather
// than the instruction count — the GC-pressure half of the re-platform
// argument alongside BenchmarkClone's alloc count.
func BenchmarkGCScanIR(b *testing.B) {
	funcs := ssaSuite(b, "SPECint", true)
	resident := make([]*ir.Func, 0, 256)
	for len(resident) < 256 {
		for _, f := range funcs {
			resident = append(resident, f.Clone())
		}
	}
	runtime.GC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runtime.GC()
	}
	b.StopTimer()
	runtime.KeepAlive(resident)
}
