package pipeline_test

import (
	"testing"

	"outofssa/internal/ir"
	"outofssa/internal/pipeline"
	"outofssa/internal/testprog"
)

// TestDeepSeedSweep widens the differential corpus beyond the quick
// loops: larger generator options and a longer seed range, skipped under
// -short. Every configuration must keep observable behaviour on every
// program.
func TestDeepSeedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("deep sweep skipped in -short mode")
	}
	opts := []testprog.RandOptions{
		testprog.DefaultRandOptions(),
		{MaxDepth: 5, Vars: 5, StmtsPerBlock: 5, Calls: true, Stack: true},
		{MaxDepth: 2, Vars: 12, StmtsPerBlock: 8, Calls: true, Stack: false},
		{MaxDepth: 4, Vars: 4, StmtsPerBlock: 3, Calls: false, Stack: true},
	}
	for oi, opt := range opts {
		for seed := int64(100); seed < 140; seed++ {
			ref := testprog.Rand(seed, opt)
			args := []int64{seed, seed % 9, 7}
			want, err := ir.Exec(ref, args, 1_000_000)
			if err != nil {
				t.Fatal(err)
			}
			for name, conf := range pipeline.Configs {
				f := testprog.Rand(seed, opt)
				if _, err := pipeline.Run(f, conf); err != nil {
					t.Fatalf("opt %d seed %d %s: %v", oi, seed, name, err)
				}
				got, err := ir.Exec(f, args, 3_000_000)
				if err != nil {
					t.Fatalf("opt %d seed %d %s: %v", oi, seed, name, err)
				}
				if !want.Equal(got) {
					t.Fatalf("opt %d seed %d: %s changed behaviour\n%s", oi, seed, name, f)
				}
			}
		}
	}
}
