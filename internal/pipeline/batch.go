// Parallel batch driver: run many independent pipeline jobs across
// shared-nothing shards. The unit of parallelism is one function run —
// each job builds (typically snapshots) its own *ir.Func inside the
// worker that executes it, so no IR, analysis memo, or Result is ever
// shared between goroutines. Only the package-level analysis cache
// counters are touched concurrently, and those are atomic.
//
// Sharding: the job list is split into one contiguous range per
// worker, each with its own claim cursor and its own staging area for
// deterministic metrics. A worker drains its own shard first — during
// that phase the only cross-shard memory traffic is the occasional
// cursor read by an idle worker — and only then steals, at whole-job
// granularity, from the shard with the most work left. No partial
// job, scratch buffer, or IR pointer ever crosses a shard boundary:
// stolen work is re-built from the job's own Build closure inside the
// stealing worker.
//
// Determinism: results come back indexed by job, and when a batch
// tracer is attached each job records its event stream privately into
// an obs.Recorder; the recordings are replayed into the batch tracer in
// job order after all workers finish. Shard-staged metrics flush in
// shard order. The merged stream is therefore byte-identical to a
// serial run of the same jobs, whatever the worker interleaving was.
package pipeline

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"outofssa/internal/ir"
	"outofssa/internal/obs"
	"outofssa/internal/obs/metrics"
)

// Job is one unit of batch work: a function to build and the
// configuration to run it under.
type Job struct {
	// Build returns the function to translate. It is called exactly
	// once, inside the worker that executes the job, so expensive builds
	// (or Clones of a shared master) are themselves parallelized. The
	// returned function must not be shared with any other job.
	Build func() *ir.Func
	// Config selects the passes, as in Run.
	Config Config
	// Experiment labels trace events, as in WithExperiment.
	Experiment string
}

// JobResult is the outcome of one Job, in the same order RunBatch
// received the jobs.
type JobResult struct {
	// Func is the function the job built and the pipeline mutated.
	Func *ir.Func
	// Result and Err are Run's return values for the job.
	Result *Result
	Err    error
}

// BatchOption configures RunBatch.
type BatchOption func(*batchConfig)

type batchConfig struct {
	parallelism int
	tracer      obs.Tracer
	metrics     *metrics.Registry
}

// WithParallelism bounds the worker pool at n goroutines. n <= 0 (and
// the default) means runtime.GOMAXPROCS(0). n == 1 runs the jobs
// serially on the calling goroutine.
func WithParallelism(n int) BatchOption {
	return func(bc *batchConfig) { bc.parallelism = n }
}

// WithBatchTracer attaches tr to every job in the batch. The tracer
// itself is never called concurrently: workers record privately and the
// recordings are replayed into tr in job order once the batch is done,
// so tr needs no synchronization and sees a deterministic stream.
func WithBatchTracer(tr obs.Tracer) BatchOption {
	return func(bc *batchConfig) { bc.tracer = tr }
}

// WithBatchMetrics attaches reg to every job (as WithMetrics does for
// one run) and additionally maintains the batch-level metrics: queue
// depth, jobs in flight, completed jobs, and the per-job wall-time
// histogram. All updates are atomic cell writes, so unlike the tracer
// no recording/replay indirection is needed — counter totals are
// deterministic at any parallelism because atomic adds commute, while
// gauges and wall histograms legitimately reflect the actual schedule.
func WithBatchMetrics(reg *metrics.Registry) BatchOption {
	return func(bc *batchConfig) { bc.metrics = reg; registerHelp(reg) }
}

// batchMetrics holds the pre-looked-up instrument handles so workers
// never touch the registry lock.
type batchMetrics struct {
	reg      *metrics.Registry
	queue    *metrics.Gauge
	inflight *metrics.Gauge
	jobs     *metrics.Counter
	jobWall  *metrics.Histogram
}

func newBatchMetrics(reg *metrics.Registry, queued int) *batchMetrics {
	bm := &batchMetrics{
		reg:      reg,
		queue:    reg.Gauge(MetricBatchQueueDepth),
		inflight: reg.Gauge(MetricBatchInflight),
		jobs:     reg.Counter(MetricBatchJobs),
		jobWall:  reg.Histogram(MetricBatchJobWallNS),
	}
	bm.queue.Add(int64(queued))
	return bm
}

// RunBatch executes every job and returns their results in job order.
// Failures are per-job: one job's error (or contained panic, under
// Config.Verify/Fallback as usual) lands in its JobResult and the rest
// of the batch still runs.
func RunBatch(jobs []Job, opts ...BatchOption) []JobResult {
	return RunBatchCtx(context.Background(), jobs, opts...)
}

// RunBatchCtx is RunBatch under a cancellation context. Once ctx is
// done, jobs not yet claimed by a worker are stamped with ctx.Err()
// instead of running, and in-flight jobs stop at their next pass
// boundary with a *PassError wrapping ctx.Err() — so a dead client (or
// an interrupted CLI) stops burning the worker pool instead of
// finishing the whole batch. Results still come back in job order; a
// context that never fires makes RunBatchCtx behave exactly like
// RunBatch, including the byte-identical trace replay.
func RunBatchCtx(ctx context.Context, jobs []Job, opts ...BatchOption) []JobResult {
	var bc batchConfig
	for _, o := range opts {
		o(&bc)
	}
	if ctx == context.Background() {
		ctx = nil // keep the pipeline's uncancellable fast path
	}
	workers := bc.parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]JobResult, len(jobs))
	var bm *batchMetrics
	if bc.metrics != nil {
		bm = newBatchMetrics(bc.metrics, len(jobs))
	}

	if workers <= 1 {
		// Serial fast path: trace straight into the batch tracer — the
		// job-order stream the parallel path reconstructs by replay.
		for i := range jobs {
			runJob(ctx, &jobs[i], &results[i], bc.tracer, bm, nil)
		}
		return results
	}

	// Per-job private recorders, replayed in order below. Only allocated
	// when a tracer is attached.
	var recs []*obs.Recorder
	if bc.tracer != nil {
		recs = make([]*obs.Recorder, len(jobs))
		for i := range recs {
			recs[i] = &obs.Recorder{}
		}
	}

	// One shard per worker: a contiguous job range with a private claim
	// cursor and private metrics staging. The padding keeps each shard's
	// cursor on its own cache line so claim traffic never false-shares.
	shards := make([]batchShard, workers)
	for s := range shards {
		shards[s].lo = int64(s * len(jobs) / workers)
		shards[s].hi = int64((s + 1) * len(jobs) / workers)
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			own := &shards[w]
			for {
				i, sh := own.claim()
				if sh == nil {
					// Own shard drained: steal a whole job from the most
					// loaded other shard. Stealing re-claims through the
					// victim's cursor, so a job still runs exactly once and
					// entirely inside one worker.
					i, sh = stealJob(shards, w)
				}
				if sh == nil {
					return
				}
				// The nil-interface pitfall: assigning a nil *Recorder to
				// an obs.Tracer variable would make it non-nil and disable
				// the pipeline's untraced fast path, so the tracer is only
				// bound when recording is on.
				var tr obs.Tracer
				if recs != nil {
					tr = recs[i]
				}
				runJob(ctx, &jobs[i], &results[i], tr, bm, &own.stage)
			}
		}(w)
	}
	wg.Wait()

	for _, rec := range recs {
		rec.Replay(bc.tracer)
	}
	if bm != nil {
		// Flush the shard-staged deterministic metrics in shard order, so
		// the registry sees one well-defined sequence of updates whatever
		// the worker interleaving was.
		for s := range shards {
			shards[s].stage.flush(bm)
		}
	}
	return results
}

// batchShard is one worker's contiguous slice of the batch: a claim
// cursor over [lo, hi) plus the worker-private metrics staging. The
// cursor is atomic because idle workers steal through it; everything
// else is single-owner.
type batchShard struct {
	lo, hi int64
	next   atomic.Int64
	stage  shardStage
	// Pad to a cache line so neighbouring shards' cursors do not
	// false-share under cross-shard steal probing.
	_ [64]byte
}

// claim takes the next unrun job of the shard, returning (index, shard)
// or (0, nil) when the shard is drained.
func (sh *batchShard) claim() (int, *batchShard) {
	for {
		n := sh.next.Load()
		i := sh.lo + n
		if i >= sh.hi {
			return 0, nil
		}
		if sh.next.CompareAndSwap(n, n+1) {
			return int(i), sh
		}
	}
}

// stealJob claims one job from the other shard with the most unclaimed
// work (ties go to the lowest shard index, keeping the choice
// deterministic for a given cursor state). Returns (0, nil) when every
// shard is drained.
func stealJob(shards []batchShard, self int) (int, *batchShard) {
	for {
		victim := -1
		var most int64
		for s := range shards {
			if s == self {
				continue
			}
			sh := &shards[s]
			if left := (sh.hi - sh.lo) - sh.next.Load(); left > most {
				most, victim = left, s
			}
		}
		if victim < 0 {
			return 0, nil
		}
		if i, sh := shards[victim].claim(); sh != nil {
			return i, sh
		}
		// Lost the race for the victim's last job; rescan.
	}
}

// shardStage accumulates the deterministic per-job metrics of one
// shard — completed-job count and wall-time observations — privately,
// to be flushed into the shared registry in shard order after the
// batch completes. Gauges (queue depth, in-flight) stay live atomics:
// they describe the actual schedule and have no deterministic serial
// equivalent.
type shardStage struct {
	completed int64
	walls     []int64
}

func (st *shardStage) flush(bm *batchMetrics) {
	for _, w := range st.walls {
		bm.jobWall.Observe(w)
	}
	if st.completed > 0 {
		bm.jobs.Add(st.completed)
	}
	st.walls = st.walls[:0]
	st.completed = 0
}

func runJob(ctx context.Context, j *Job, out *JobResult, tr obs.Tracer, bm *batchMetrics, stage *shardStage) {
	if ctx != nil && ctx.Err() != nil {
		// Load shedding for batches: a canceled batch stamps the jobs it
		// never started instead of building and running them.
		out.Err = ctx.Err()
		if bm != nil {
			bm.queue.Dec()
		}
		return
	}
	if bm == nil {
		f := j.Build()
		out.Func = f
		out.Result, out.Err = Run(f, j.Config, WithExperiment(j.Experiment), WithTracer(tr), WithContext(ctx))
		return
	}
	bm.queue.Dec()
	bm.inflight.Inc()
	t0 := time.Now()
	f := j.Build()
	out.Func = f
	out.Result, out.Err = Run(f, j.Config,
		WithExperiment(j.Experiment), WithTracer(tr), WithMetrics(bm.reg), WithContext(ctx))
	wall := time.Since(t0).Nanoseconds()
	bm.inflight.Dec()
	if stage != nil {
		stage.walls = append(stage.walls, wall)
		stage.completed++
		return
	}
	bm.jobWall.Observe(wall)
	bm.jobs.Inc()
}
