package pipeline_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"outofssa/internal/ir"
	"outofssa/internal/pipeline"
	"outofssa/internal/testprog"
)

func ctxTestFunc(seed int64) *ir.Func {
	return testprog.Rand(seed, testprog.DefaultRandOptions())
}

func ctxTestConfig(t *testing.T) pipeline.Config {
	t.Helper()
	conf, err := pipeline.Preset(pipeline.ExpLphiABIC)
	if err != nil {
		t.Fatal(err)
	}
	return conf
}

// TestRunContextCanceled: a context canceled before the run starts
// aborts at the first pass boundary with a *PassError wrapping
// context.Canceled.
func TestRunContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := pipeline.Run(ctxTestFunc(1), ctxTestConfig(t), pipeline.WithContext(ctx))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled through the error chain, got %v", err)
	}
	var pe *pipeline.PassError
	if !errors.As(err, &pe) {
		t.Fatalf("want a *PassError naming the aborted pass, got %T: %v", err, err)
	}
}

// TestRunContextDeadlineWithFallback: an expired deadline is terminal —
// the fallback observes the same context, so Run reports the deadline
// instead of producing a translation nobody is waiting for.
func TestRunContextDeadlineWithFallback(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	conf := ctxTestConfig(t)
	conf.Verify = true
	conf.Fallback = true
	_, err := pipeline.Run(ctxTestFunc(2), conf, pipeline.WithContext(ctx))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded through the error chain, got %v", err)
	}
}

// TestRunContextMidRunCancel cancels from inside the pipeline (via the
// fault hook, after the first pass) and checks the run stops at the
// next pass boundary rather than completing.
func TestRunContextMidRunCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	conf := ctxTestConfig(t)
	var hooked atomic.Int32
	conf.FaultHook = func(pass string, f *ir.Func) {
		if hooked.Add(1) == 1 {
			cancel()
		}
	}
	_, err := pipeline.Run(ctxTestFunc(3), conf, pipeline.WithContext(ctx))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled after mid-run cancel, got %v", err)
	}
	if n := hooked.Load(); n != 1 {
		t.Fatalf("want exactly one pass to run after the cancel point, hook ran %d times", n)
	}
}

// TestFaultHookPanicContained: a panic raised in the fault hook (the
// model of a buggy pass) is contained like a pass-body panic.
func TestFaultHookPanicContained(t *testing.T) {
	conf := ctxTestConfig(t)
	conf.FaultHook = func(pass string, f *ir.Func) {
		if pass == "pinning-phi" {
			panic("injected hook panic")
		}
	}
	_, err := pipeline.Run(ctxTestFunc(4), conf)
	var pa *pipeline.PanicError
	if !errors.As(err, &pa) {
		t.Fatalf("want a contained *PanicError, got %T: %v", err, err)
	}
	var pe *pipeline.PassError
	if !errors.As(err, &pe) || pe.Pass != "pinning-phi" {
		t.Fatalf("want the PassError to name pinning-phi, got %v", err)
	}

	// And with Fallback, the same panic is absorbed into a naive
	// translation instead of failing the run.
	conf.Verify = true
	conf.Fallback = true
	res, err := pipeline.Run(ctxTestFunc(4), conf)
	if err != nil {
		t.Fatalf("fallback after hook panic: %v", err)
	}
	if !res.FellBack {
		t.Fatal("want FellBack after a contained hook panic")
	}
}

// TestWithExecBudget: a one-step budget starves the fallback
// cross-check's reference interpretation into ir.ErrStepBudget on
// every argument vector — "no verdict", not a failure — so the
// fallback still completes. This is the deadline-to-step-budget
// hookup the compile service uses.
func TestWithExecBudget(t *testing.T) {
	conf := ctxTestConfig(t)
	conf.Verify = true
	conf.Fallback = true
	conf.FaultHook = func(pass string, f *ir.Func) {
		if pass == "pinning-phi" {
			panic("force the fallback path")
		}
	}
	res, err := pipeline.Run(ctxTestFunc(5), conf, pipeline.WithExecBudget(1))
	if err != nil {
		t.Fatalf("fallback under a 1-step exec budget: %v", err)
	}
	if !res.FellBack {
		t.Fatal("want FellBack after the forced pass failure")
	}
}

// TestRunBatchCtxCancel: cancelling a batch stamps unstarted jobs with
// ctx.Err() instead of running them.
func TestRunBatchCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	conf := ctxTestConfig(t)
	var done atomic.Int32
	conf.FaultHook = func(pass string, f *ir.Func) {
		if pass == "out-of-pinned-ssa" && done.Add(1) == 3 {
			cancel()
		}
	}
	jobs := make([]pipeline.Job, 64)
	for i := range jobs {
		seed := int64(i)
		jobs[i] = pipeline.Job{
			Build:      func() *ir.Func { return ctxTestFunc(seed) },
			Config:     conf,
			Experiment: pipeline.ExpLphiABIC,
		}
	}
	results := pipeline.RunBatchCtx(ctx, jobs, pipeline.WithParallelism(2))
	var ok, canceled int
	for i := range results {
		switch {
		case results[i].Err == nil:
			ok++
		case errors.Is(results[i].Err, context.Canceled):
			canceled++
		default:
			t.Fatalf("job %d: unexpected error %v", i, results[i].Err)
		}
	}
	if ok == 0 || canceled == 0 {
		t.Fatalf("want a mix of completed and canceled jobs, got ok=%d canceled=%d", ok, canceled)
	}
	if ok+canceled != len(jobs) {
		t.Fatalf("results unaccounted for: ok=%d canceled=%d of %d", ok, canceled, len(jobs))
	}
}

// TestRunBatchCtxBackground: RunBatchCtx with a background context is
// RunBatch — identical results, no cancellation machinery engaged.
func TestRunBatchCtxBackground(t *testing.T) {
	conf := ctxTestConfig(t)
	mk := func() []pipeline.Job {
		jobs := make([]pipeline.Job, 8)
		for i := range jobs {
			seed := int64(i)
			jobs[i] = pipeline.Job{
				Build:      func() *ir.Func { return ctxTestFunc(seed) },
				Config:     conf,
				Experiment: pipeline.ExpLphiABIC,
			}
		}
		return jobs
	}
	a := pipeline.RunBatch(mk(), pipeline.WithParallelism(4))
	b := pipeline.RunBatchCtx(context.Background(), mk(), pipeline.WithParallelism(4))
	for i := range a {
		if a[i].Err != nil || b[i].Err != nil {
			t.Fatalf("job %d: errors %v / %v", i, a[i].Err, b[i].Err)
		}
		if a[i].Func.String() != b[i].Func.String() {
			t.Fatalf("job %d: RunBatch and RunBatchCtx disagree", i)
		}
	}
}
