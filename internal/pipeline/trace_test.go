package pipeline_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"outofssa/internal/ir"
	"outofssa/internal/obs"
	"outofssa/internal/pipeline"
	"outofssa/internal/testprog"
)

// expectedPasses mirrors the pass-selection rules of the runner: the
// trace of a run must contain exactly these passes, in this order.
func expectedPasses(conf pipeline.Config) []string {
	var want []string
	add := func(on bool, name string) {
		if on {
			want = append(want, name)
		}
	}
	add(!conf.ABI, "strip-pins")
	add(conf.Optimize, "ssaopt")
	add(conf.Psi, "psi")
	add(conf.Sreedhar, "sreedhar")
	add(true, "pinning-sp")
	add(conf.ABI, "pinning-abi")
	add(conf.Sreedhar, "pinning-cssa")
	add(conf.PrePin, "pre-pin")
	add(conf.PhiCoalesce, "pinning-phi")
	if conf.NaiveOut {
		want = append(want, "out-naive")
	} else {
		want = append(want, "out-of-pinned-ssa")
	}
	add(conf.NaiveABI, "naive-abi")
	add(conf.Chaitin, "chaitin")
	return want
}

// TestTraceWellFormed runs every experiment configuration of Table 1
// under a recording tracer and checks the event stream invariants:
// paired start/end per pass, pass names unique within a run and exactly
// the enabled phases in order, monotonically increasing sequence
// numbers, and non-negative measurements.
func TestTraceWellFormed(t *testing.T) {
	for _, name := range expNames() {
		conf := pipeline.Configs[name]
		for _, mk := range []func() *ir.Func{testprog.Diamond, testprog.SwapLoop} {
			f := mk()
			rec := &obs.Recorder{}
			if _, err := pipeline.Run(f, conf, pipeline.WithExperiment(name), pipeline.WithTracer(rec)); err != nil {
				t.Fatalf("%s/%s: %v", name, f.Name, err)
			}
			if len(rec.Runs) != 1 {
				t.Fatalf("%s/%s: %d recorded runs, want 1", name, f.Name, len(rec.Runs))
			}
			run := rec.Runs[0]
			if !run.Ended {
				t.Fatalf("%s/%s: RunEnd never fired", name, f.Name)
			}
			if run.Func != f.Name || run.Config != name {
				t.Fatalf("%s/%s: run labelled %q/%q", name, f.Name, run.Func, run.Config)
			}
			want := expectedPasses(conf)
			if len(run.Started) != len(run.Events) {
				t.Fatalf("%s/%s: %d PassStart vs %d PassEnd", name, f.Name,
					len(run.Started), len(run.Events))
			}
			if len(run.Events) != len(want) {
				t.Fatalf("%s/%s: traced %d passes, want %d (%v)", name, f.Name,
					len(run.Events), len(want), want)
			}
			seen := make(map[string]bool)
			for i, ev := range run.Events {
				if run.Started[i] != ev.Pass {
					t.Fatalf("%s/%s: start/end mismatch at %d: %q vs %q",
						name, f.Name, i, run.Started[i], ev.Pass)
				}
				if ev.Pass != want[i] {
					t.Fatalf("%s/%s: pass %d is %q, want %q", name, f.Name, i, ev.Pass, want[i])
				}
				if seen[ev.Pass] {
					t.Fatalf("%s/%s: duplicate pass name %q", name, f.Name, ev.Pass)
				}
				seen[ev.Pass] = true
				if ev.Seq != i {
					t.Fatalf("%s/%s: pass %q seq %d, want %d", name, f.Name, ev.Pass, ev.Seq, i)
				}
				if ev.Func != f.Name || ev.Config != name {
					t.Fatalf("%s/%s: event labelled %q/%q", name, f.Name, ev.Func, ev.Config)
				}
				if ev.WallNS < 0 {
					t.Fatalf("%s/%s: %s: negative wall time %d", name, f.Name, ev.Pass, ev.WallNS)
				}
				for which, st := range map[string]obs.IRStat{"before": ev.Before, "after": ev.After} {
					if st.Moves < 0 || st.WeightedMoves < 0 || st.Instrs < 0 ||
						st.Phis < 0 || st.Pins < 0 || st.Blocks <= 0 || st.Values < 0 {
						t.Fatalf("%s/%s: %s: bad %s snapshot %+v", name, f.Name, ev.Pass, which, st)
					}
				}
				// Nothing runs between passes: each pass must pick up the
				// IR exactly where the previous one left it.
				if i > 0 && ev.Before != run.Events[i-1].After {
					t.Fatalf("%s/%s: %s: before-snapshot %+v != previous after %+v",
						name, f.Name, ev.Pass, ev.Before, run.Events[i-1].After)
				}
			}
			last := run.Events[len(run.Events)-1]
			if last.After.Phis != 0 {
				t.Fatalf("%s/%s: %d φs survived the traced pipeline", name, f.Name, last.After.Phis)
			}
		}
	}
}

// TestTracingDoesNotPerturbResults: the measured pipeline must compute
// exactly what the unmeasured one does.
func TestTracingDoesNotPerturbResults(t *testing.T) {
	for _, name := range expNames() {
		conf := pipeline.Configs[name]
		plain, err := pipeline.Run(testprog.Rand(7, testprog.DefaultRandOptions()), conf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		traced, err := pipeline.Run(testprog.Rand(7, testprog.DefaultRandOptions()),
			conf, pipeline.WithExperiment(name), pipeline.WithTracer(&obs.Recorder{}))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if plain.Moves != traced.Moves || plain.WeightedMoves != traced.WeightedMoves ||
			plain.Instrs != traced.Instrs {
			t.Fatalf("%s: traced run diverged: moves %d/%d weighted %d/%d instrs %d/%d",
				name, plain.Moves, traced.Moves, plain.WeightedMoves, traced.WeightedMoves,
				plain.Instrs, traced.Instrs)
		}
	}
}

// jsonlRequired lists the keys every record type must carry — the
// golden schema of the JSONL sink. Producers may add keys; they must
// never drop these.
var jsonlRequired = map[string][]string{
	"run_start": {"type", "fn", "config", "ir"},
	"pass":      {"type", "fn", "config", "pass", "seq", "wall_ns", "before", "after"},
	"run_end":   {"type", "fn", "config", "passes", "wall_ns", "ir"},
}

var irStatRequired = []string{"moves", "weighted_moves", "instrs", "phis", "pins", "blocks", "values"}

// TestJSONLGoldenSchema drives a real pipeline run through the JSONL
// sink and validates every emitted line against the documented schema.
func TestJSONLGoldenSchema(t *testing.T) {
	var buf bytes.Buffer
	name := pipeline.ExpLphiABIC
	if _, err := pipeline.Run(testprog.SwapLoop(), pipeline.Configs[name],
		pipeline.WithExperiment(name), pipeline.WithTracer(obs.NewJSONL(&buf))); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("want at least run_start+pass+run_end, got %d lines", len(lines))
	}
	var passes int
	for i, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("line %d: invalid JSON: %v\n%s", i, err, line)
		}
		typ, _ := rec["type"].(string)
		req, ok := jsonlRequired[typ]
		if !ok {
			t.Fatalf("line %d: unknown record type %q", i, typ)
		}
		for _, k := range req {
			if _, ok := rec[k]; !ok {
				t.Fatalf("line %d (%s): missing required key %q\n%s", i, typ, k, line)
			}
		}
		for _, irKey := range []string{"ir", "before", "after"} {
			st, ok := rec[irKey].(map[string]any)
			if !ok {
				continue
			}
			for _, k := range irStatRequired {
				if _, ok := st[k]; !ok {
					t.Fatalf("line %d (%s): %s missing key %q", i, typ, irKey, k)
				}
			}
		}
		switch typ {
		case "run_start":
			if i != 0 {
				t.Fatalf("line %d: run_start not first", i)
			}
		case "pass":
			if int(rec["seq"].(float64)) != passes {
				t.Fatalf("line %d: seq %v, want %d", i, rec["seq"], passes)
			}
			if rec["wall_ns"].(float64) < 0 {
				t.Fatalf("line %d: negative wall_ns", i)
			}
			passes++
		case "run_end":
			if i != len(lines)-1 {
				t.Fatalf("line %d: run_end not last", i)
			}
			if int(rec["passes"].(float64)) != passes {
				t.Fatalf("run_end passes=%v, want %d", rec["passes"], passes)
			}
		}
	}
	if passes == 0 {
		t.Fatal("no pass records emitted")
	}
}
