package pipeline

import (
	"errors"
	"strings"
	"testing"

	"outofssa/internal/faultinject"
	"outofssa/internal/ir"
	"outofssa/internal/obs"
	"outofssa/internal/obs/metrics"
	"outofssa/internal/testprog"
)

// TestNilMetricsAllocatesNothing pins the disabled-metrics contract
// alongside TestNilTracerAllocatesNothing: a run with neither tracer
// nor registry attached — including one configured through
// WithMetrics(nil), the shape every conditional caller produces — must
// not allocate in the runner.
func TestNilMetricsAllocatesNothing(t *testing.T) {
	f := ir.NewFunc("noalloc")
	f.NewBlock("entry")
	ps := []pass{
		{name: "a", run: func() error { return nil }},
		{name: "b", run: func() error { return nil }},
	}
	var rc runConfig
	WithMetrics(nil)(&rc)
	if rc.metrics != nil {
		t.Fatal("WithMetrics(nil) installed a registry")
	}
	n := testing.AllocsPerRun(200, func() {
		if err := runPasses(f, "", ps, nil, runOpts{metrics: rc.metrics}); err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Fatalf("nil-metrics runPasses allocates %v per run, want 0", n)
	}
}

// TestMetricsMirrorMatchesTraceCounters is the in-process version of
// the ssabench -verify self-check: the registry's pass-counter mirror
// and a tracer's counter totals are fed from the same flatten, so
// SelfCheckPassCounters must find zero skew after real runs, and the
// headline per-run metrics must line up with the trace.
func TestMetricsMirrorMatchesTraceCounters(t *testing.T) {
	reg := metrics.New()
	rec := &obs.Recorder{}
	conf, err := Preset(ExpLphiABIC)
	if err != nil {
		t.Fatal(err)
	}
	funcs := []*ir.Func{testprog.Diamond(), testprog.SwapLoop(), testprog.NestedLoops()}
	for _, f := range funcs {
		if _, err := Run(f, conf, WithExperiment(ExpLphiABIC), WithTracer(rec), WithMetrics(reg)); err != nil {
			t.Fatal(err)
		}
	}

	totals := map[string]int64{}
	passEvents := 0
	for _, run := range rec.Runs {
		for _, ev := range run.Events {
			passEvents++
			for k, v := range ev.Counters {
				totals[k] += v
			}
		}
	}
	s := reg.Snapshot()
	if err := metrics.SelfCheckPassCounters(s, MetricPassCounters, totals); err != nil {
		t.Fatalf("registry mirror skewed against trace totals: %v", err)
	}

	find := func(name string) *metrics.HistogramSnap {
		for i := range s.Histograms {
			if s.Histograms[i].Name == name {
				return &s.Histograms[i]
			}
		}
		return nil
	}
	runs := int64(0)
	for _, c := range s.Counters {
		if c.Name == MetricRuns {
			runs += c.Value
		}
	}
	if runs != int64(len(funcs)) {
		t.Fatalf("%s = %d, want %d", MetricRuns, runs, len(funcs))
	}
	wallCount := int64(0)
	for i := range s.Histograms {
		if s.Histograms[i].Name == MetricPassWallNS {
			wallCount += s.Histograms[i].Count
		}
	}
	if wallCount != int64(passEvents) {
		t.Fatalf("pass wall observations %d != traced pass events %d", wallCount, passEvents)
	}
	ml := find(MetricMaxLive)
	if ml == nil || ml.Count != int64(len(funcs)) || !ml.Deterministic {
		t.Fatalf("MAXLIVE histogram wrong: %+v", ml)
	}
	if ml.Min < 1 {
		t.Fatalf("MAXLIVE min = %d, want >= 1 on non-trivial programs", ml.Min)
	}
}

// TestMetricsSkewCaught proves the self-check has teeth: after a clean
// run where mirror and trace agree, one InjectMetricsSkew bump — no IR
// change, no trace event — must make SelfCheckPassCounters fail and
// name the skewed cell.
func TestMetricsSkewCaught(t *testing.T) {
	reg := metrics.New()
	rec := &obs.Recorder{}
	conf, err := Preset(ExpLphiABIC)
	if err != nil {
		t.Fatal(err)
	}
	f := testprog.SwapLoop()
	if _, err := Run(f, conf, WithExperiment(ExpLphiABIC), WithTracer(rec), WithMetrics(reg)); err != nil {
		t.Fatal(err)
	}
	totals := map[string]int64{}
	var skewPass, skewCounter string
	for _, run := range rec.Runs {
		for _, ev := range run.Events {
			for k, v := range ev.Counters {
				totals[k] += v
				skewPass, skewCounter = ev.Pass, strings.TrimPrefix(k, ev.Pass+".")
			}
		}
	}
	if err := metrics.SelfCheckPassCounters(reg.Snapshot(), MetricPassCounters, totals); err != nil {
		t.Fatalf("clean run skewed: %v", err)
	}
	if !faultinject.InjectMetricsSkew(reg, MetricPassCounters, skewPass, skewCounter) {
		t.Fatal("injection reported no-op on a live registry")
	}
	err = metrics.SelfCheckPassCounters(reg.Snapshot(), MetricPassCounters, totals)
	if err == nil || !strings.Contains(err.Error(), skewPass+"."+skewCounter) {
		t.Fatalf("metrics skew on %s.%s not caught: %v", skewPass, skewCounter, err)
	}
	if faultinject.InjectMetricsSkew(nil, MetricPassCounters, "p", "c") {
		t.Fatal("nil registry reported as skewed")
	}
}

// TestMetricsErrorPanicFallbackCounters drives the failure counters:
// an erroring pass, a panicking pass, and a rescued fallback run.
func TestMetricsErrorPanicFallbackCounters(t *testing.T) {
	reg := metrics.New()
	f := ir.NewFunc("failing")
	f.NewBlock("entry")
	boom := errors.New("synthetic")
	ps := []pass{
		{name: "ok", run: func() error { return nil }},
		{name: "fails", run: func() error { return boom }},
	}
	if err := runPasses(f, "exp", ps, nil, runOpts{metrics: reg}); !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
	ps[1].run = func() error { panic("kaboom") }
	if err := runPasses(f, "exp", ps, nil, runOpts{metrics: reg}); err == nil {
		t.Fatal("panic not surfaced")
	}
	if got := reg.Counter(MetricPassErrors, metrics.L("pass", "fails")).Value(); got != 2 {
		t.Fatalf("%s{pass=fails} = %d, want 2", MetricPassErrors, got)
	}
	if got := reg.Counter(MetricPanics).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricPanics, got)
	}

	// A verify-failing run under Fallback: the fallback counter bumps
	// and the fallback passes are recorded like any others.
	conf, err := Preset(ExpLphiABIC)
	if err != nil {
		t.Fatal(err)
	}
	conf.Verify = true
	conf.Fallback = true
	sab := false
	conf.FaultHook = func(pass string, g *ir.Func) {
		if pass == "pinning-sp" && !sab {
			sab = faultinject.Inject(g, faultinject.DoubleDef)
		}
	}
	g := testprog.SwapLoop()
	res, err := Run(g, conf, WithExperiment("fault"), WithMetrics(reg))
	if err != nil || !sab {
		t.Fatalf("fallback run: err=%v injected=%v", err, sab)
	}
	if !res.FellBack {
		t.Fatal("run did not fall back")
	}
	if got := reg.Counter(MetricFallbacks).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricFallbacks, got)
	}
	fb := reg.Snapshot()
	seen := false
	for i := range fb.Histograms {
		if fb.Histograms[i].Name == MetricPassWallNS && len(fb.Histograms[i].Labels) == 1 &&
			fb.Histograms[i].Labels[0].Value == "fallback-out-naive" {
			seen = fb.Histograms[i].Count == 1
		}
	}
	if !seen {
		t.Fatal("fallback passes not recorded in the pass wall histogram")
	}
}

// TestBatchMetrics checks the RunBatch instrumentation: jobs counted,
// queue drained, nothing left in flight, per-job wall observed once per
// job — at both parallelism settings — and counter totals identical
// between serial and parallel runs (atomic adds commute).
func TestBatchMetrics(t *testing.T) {
	conf, err := Preset(ExpLphiABIC)
	if err != nil {
		t.Fatal(err)
	}
	jobs := func() []Job {
		var js []Job
		for _, f := range []*ir.Func{testprog.Diamond(), testprog.SwapLoop(), testprog.NestedLoops(), testprog.Loop()} {
			f := f
			js = append(js, Job{Build: func() *ir.Func { return f.Clone() }, Config: conf, Experiment: "batch"})
		}
		return js
	}

	counterTotals := func(s *metrics.Snapshot) map[string]int64 {
		m := map[string]int64{}
		for _, c := range s.Counters {
			key := c.Name
			for _, l := range c.Labels {
				key += "|" + l.Key + "=" + l.Value
			}
			m[key] = c.Value
		}
		return m
	}

	var snaps []*metrics.Snapshot
	for _, par := range []int{1, 4} {
		reg := metrics.New()
		for _, r := range RunBatch(jobs(), WithParallelism(par), WithBatchMetrics(reg)) {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
		}
		if got := reg.Counter(MetricBatchJobs).Value(); got != 4 {
			t.Fatalf("parallel=%d: %s = %d, want 4", par, MetricBatchJobs, got)
		}
		if got := reg.Gauge(MetricBatchQueueDepth).Value(); got != 0 {
			t.Fatalf("parallel=%d: queue depth = %d after batch, want 0", par, got)
		}
		if got := reg.Gauge(MetricBatchInflight).Value(); got != 0 {
			t.Fatalf("parallel=%d: %d jobs still in flight", par, got)
		}
		s := reg.Snapshot()
		for i := range s.Histograms {
			if s.Histograms[i].Name == MetricBatchJobWallNS && s.Histograms[i].Count != 4 {
				t.Fatalf("parallel=%d: job wall count = %d, want 4", par, s.Histograms[i].Count)
			}
		}
		snaps = append(snaps, s)
	}
	serial, par := counterTotals(snaps[0]), counterTotals(snaps[1])
	if len(serial) != len(par) {
		t.Fatalf("counter cell sets differ: %d vs %d", len(serial), len(par))
	}
	for k, v := range serial {
		if par[k] != v {
			t.Fatalf("counter %s: serial %d != parallel %d", k, v, par[k])
		}
	}
}
