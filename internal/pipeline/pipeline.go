// Package pipeline composes the repository's passes into the exact
// experiment configurations of the paper's Table 1: which collect phases
// run (pinningSP, pinningABI, pinningφ, pinningCSSA after Sreedhar),
// whether the NaiveABI fallback and the aggressive "+C" coalescing
// post-pass run, and the Table 5 variants of the φ-coalescing algorithm.
package pipeline

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"outofssa/internal/analysis"
	"outofssa/internal/cfg"
	"outofssa/internal/coalesce"
	"outofssa/internal/faultinject"
	"outofssa/internal/interference"
	"outofssa/internal/ir"
	"outofssa/internal/liveness"
	"outofssa/internal/naiveabi"
	"outofssa/internal/obs"
	"outofssa/internal/obs/metrics"
	"outofssa/internal/outofssa/leung"
	"outofssa/internal/outofssa/naive"
	"outofssa/internal/outofssa/sreedhar"
	"outofssa/internal/pin"
	"outofssa/internal/psi"
	"outofssa/internal/regalloc"
	"outofssa/internal/ssa"
	"outofssa/internal/ssaopt"
	"outofssa/internal/verify"
)

// Config selects the passes, mirroring the columns of Table 1.
type Config struct {
	// Optimize runs the SSA optimization bundle (copy propagation,
	// constant folding, local value numbering, DCE) first, like the LAO
	// does; it creates the φ webs the coalescing experiments measure.
	Optimize bool
	// Psi runs if-conversion to ψ-SSA followed by the ψ-conventional
	// lowering (predicated select chains with 2-operand-like ties), the
	// paper's §5 treatment of predicated code.
	Psi bool
	// Sreedhar runs the SSA→CSSA conversion of Sreedhar et al. followed
	// by pinningCSSA.
	Sreedhar bool
	// ABI runs the pinningABI collect phase (renaming constraints handled
	// by the out-of-pinned-SSA translation).
	ABI bool
	// PhiCoalesce runs the paper's pinningφ phase (Program_pinning).
	PhiCoalesce bool
	// PrePin runs the [LIM2] pre-pass first: definitions whose uses are
	// pinned (2-operand ties, ABI slots) are coalesced with the pinned
	// resource when interference-free.
	PrePin bool
	// Coalesce selects the pinningφ variant (mode, depth constraint).
	Coalesce coalesce.Options
	// NaiveOut replaces the out-of-pinned-SSA translation by the naive
	// Cytron/Briggs copy insertion (pins are ignored). Only meaningful
	// when no pinning phase ran.
	NaiveOut bool
	// NaiveABI inserts local moves around constrained instructions after
	// translation (used when ABI is false but constraints must hold).
	NaiveABI bool
	// Chaitin runs the aggressive repeated register coalescer ("+C").
	Chaitin bool

	// Verify enables checked mode: internal/verify re-checks the IR
	// invariants on pipeline entry and after every pass, and a violation
	// aborts the run with a *PassError naming the offending pass. The
	// verifier only reads the IR, so enabling it never changes codegen.
	Verify bool
	// Fallback retries a failed run (pass error, contained panic, or
	// checked-mode violation) through the naive out-of-SSA translation
	// on a pre-pipeline snapshot, cross-checked with the ir.Exec oracle;
	// the Result then has FellBack set and FallbackFrom recording the
	// original failure.
	Fallback bool
	// FaultHook, when non-nil, runs after each pass body (before
	// checked-mode verification) with the pass name and the function —
	// the corruption seam used by the fault-injection tests. Production
	// callers leave it nil.
	FaultHook func(pass string, f *ir.Func)
}

// Result aggregates the outcome of running one configuration.
type Result struct {
	// Opt reports what the SSA optimizer did (nil when disabled).
	Opt *ssaopt.Stats

	// Moves is the final move-instruction count — the paper's metric for
	// Tables 2-4.
	Moves int
	// WeightedMoves is the 5^depth weighted count of Table 5.
	WeightedMoves int64
	// Instrs is the final instruction count.
	Instrs int

	Psi      *psi.Stats
	Sreedhar *sreedhar.Stats
	Coalesce *coalesce.Stats
	PrePin   *coalesce.PrePinStats
	Leung    *leung.Stats
	Naive    *naive.Stats
	NaiveABI *naiveabi.Stats
	Chaitin  *regalloc.Stats
	// CSSAUnpinned counts φ slots pinningCSSA had to leave unpinned.
	CSSAUnpinned int

	// FellBack reports that the configured pipeline failed and the
	// result instead comes from the naive fallback translation
	// (Config.Fallback). FallbackFrom is the failure that triggered it,
	// normally a *PassError.
	FellBack     bool
	FallbackFrom error
}

// Option configures one Run call. The options cover the orthogonal
// knobs the retired Run/RunTraced/RunSSA/RunSSATraced quartet encoded
// as separate entry points: tracing, experiment labelling, and starting
// from pre-built SSA form.
type Option func(*runConfig)

type runConfig struct {
	tracer     obs.Tracer
	exp        string
	info       *ssa.Info
	inSSA      bool
	metrics    *metrics.Registry
	ctx        context.Context
	execBudget int
}

// WithTracer attaches the instrumented pass runner: every executed pass
// is reported to tr as an obs.Event carrying wall time, allocation
// deltas and IR before/after snapshots. A nil tracer is the unmeasured
// fast path — no snapshots, no clock reads.
func WithTracer(tr obs.Tracer) Option {
	return func(rc *runConfig) { rc.tracer = tr }
}

// WithExperiment labels trace events with the experiment configuration
// name. It does not select the configuration — the Config does; the
// label keys trace diffing and table aggregation.
func WithExperiment(name string) Option {
	return func(rc *runConfig) { rc.exp = name }
}

// WithContext attaches a cancellation context to one Run call. The pass
// runner checks it cooperatively between passes: once ctx is done, the
// run stops before the next pass with a *PassError whose Cause is
// ctx.Err() (so errors.Is sees context.Canceled / DeadlineExceeded
// through it), naming the pass that was about to run. A pass body in
// flight is never interrupted — the IR is only ever abandoned at a
// pass boundary, where it is structurally consistent. The fallback
// path observes the same context, so a dead client stops burning the
// worker instead of re-translating for nobody. A nil ctx (the default)
// is the zero-overhead uncancellable path.
func WithContext(ctx context.Context) Option {
	return func(rc *runConfig) {
		if ctx != nil && ctx != context.Background() {
			rc.ctx = ctx
		}
	}
}

// WithExecBudget bounds each ir.Exec oracle run the pipeline performs
// on this call (the fallback cross-check) to n interpreter steps
// instead of the default. An overrun surfaces as ir.ErrStepBudget,
// which the cross-check treats as "no verdict" on the reference side —
// the hook a deadline-bound service uses to keep worst-case oracle
// work proportional to the request budget. n <= 0 keeps the default.
func WithExecBudget(n int) Option {
	return func(rc *runConfig) {
		if n > 0 {
			rc.execBudget = n
		}
	}
}

// WithSSAInfo declares that f is already in (pinned or plain) SSA form,
// skipping SSA construction. info carries the dedicated-register
// origins for the pinningSP phase; pass ssa.EmptyInfo() or nil for
// hand-built SSA without renamed dedicated registers.
func WithSSAInfo(info *ssa.Info) Option {
	return func(rc *runConfig) { rc.info = info; rc.inSSA = true }
}

// Run converts the pre-SSA function f through SSA and back according to
// conf, mutating f, and returns the statistics. The typical call site
// clones the input once per configuration. Options attach tracing
// (WithTracer, WithExperiment) or start from pre-built SSA
// (WithSSAInfo); with no options Run is the plain unmeasured pipeline.
func Run(f *ir.Func, conf Config, opts ...Option) (*Result, error) {
	var rc runConfig
	for _, o := range opts {
		o(&rc)
	}
	info := rc.info
	if !rc.inSSA {
		var err error
		info, err = ssa.Build(f)
		if err != nil {
			return nil, fmt.Errorf("pipeline: SSA construction: %w", err)
		}
		if err := ssa.Verify(f); err != nil {
			return nil, fmt.Errorf("pipeline: after SSA construction: %v", err)
		}
	} else if info == nil {
		info = ssa.EmptyInfo()
	}
	return runSSA(f, info, conf, &rc)
}

// runSSA is the pipeline body: the pass composition applied to a
// function in (pinned or plain) SSA form.
func runSSA(f *ir.Func, info *ssa.Info, conf Config, rc *runConfig) (*Result, error) {
	exp, tr, reg := rc.exp, rc.tracer, rc.metrics
	if conf.Verify {
		// Checked mode probes the copy-on-write isolation invariant on
		// the entry function before any pass runs: a snapshot pair is
		// mutated in both directions and byte-compared. An aliasing bug
		// would otherwise corrupt sibling jobs silently; here it fails
		// the run the same way a corrupted pass does.
		if err := faultinject.InjectCOWAliasing(f); err != nil {
			return nil, &PassError{Func: f.Name, Config: exp, Pass: "<cow-probe>",
				Cause: err, Snapshot: obs.Snapshot(f)}
		}
	}
	var backup *ir.Func
	if conf.Fallback {
		// Copy-on-write: the backup shares f's slabs and only the slabs f
		// actually mutates get copied (lazily, at first write). A run that
		// fails before mutating — or that only reads — pays nothing for
		// its safety net.
		backup = f.Snapshot()
	}
	r := &Result{}
	if reg != nil {
		// Guarded rather than relying on the nil-instrument no-op: the
		// variadic label would otherwise allocate on the disabled path.
		reg.Counter(MetricRuns, metrics.L("config", exp)).Inc()
	}
	opts := runOpts{verify: conf.Verify, faultHook: conf.FaultHook, metrics: reg,
		ctx: rc.ctx, execBudget: rc.execBudget}
	if err := runPasses(f, exp, conf.passes(f, info, r), tr, opts); err != nil {
		if backup == nil {
			return nil, err
		}
		// Graceful degradation: discard whatever the failed run left in f
		// and r, redo the translation naively from the entry snapshot.
		*r = Result{}
		if ferr := fallbackRun(f, backup, exp, tr, opts, r); ferr != nil {
			return nil, fmt.Errorf("pipeline: fallback failed (%v) after %w", ferr, err)
		}
		reg.Counter(MetricFallbacks).Inc()
		r.FellBack = true
		r.FallbackFrom = err
	}

	cfg.ComputeLoopDepth(f)
	r.Moves = f.CountMoves()
	r.WeightedMoves = f.WeightedMoves()
	r.Instrs = f.NumInstrs()
	if reg != nil {
		// Derived metric: per-function register pressure on the final
		// code, answered by the (cached) query liveness engine.
		h := reg.Histogram(MetricMaxLive)
		h.SetDeterministic()
		h.Observe(int64(liveness.MaxLive(f, analysis.Liveness(f))))
	}
	return r, nil
}

// pass is one step of the instrumented runner: a name (stable across
// configurations — it keys trace diffing), the checked-mode verifier
// stage its output must satisfy, the work itself, and an optional
// accessor for the pass's Stats struct, flattened into the trace
// event's counters. run closures wrap their own errors so the untraced
// path reports exactly what the pre-runner pipeline did.
type pass struct {
	name  string
	stage verify.Stage
	run   func() error
	stats func() any
}

// passes materializes conf as the ordered pass list of the paper's
// Table 1 pipeline. The closures write their statistics into r.
// Passes up to and including the pinning phases leave the function in
// (pinned) SSA form, so they carry verify.StageSSA; the out-of-SSA
// translation and everything after it carry verify.StagePostSSA.
func (conf Config) passes(f *ir.Func, info *ssa.Info, r *Result) []pass {
	var ps []pass
	add := func(name string, stage verify.Stage, run func() error, stats func() any) {
		ps = append(ps, pass{name: name, stage: stage, run: run, stats: stats})
	}

	if !conf.ABI {
		// "Renaming constraints ignored" (Table 2 setup): drop textual
		// pins to dedicated registers other than SP. Only SP constraints
		// cannot be ignored (paper §5); the rest are either ignored
		// entirely or handled later by NaiveABI.
		add("strip-pins", verify.StageSSA, func() error { stripNonSPPins(f); return nil }, nil)
	}

	if conf.Optimize {
		add("ssaopt", verify.StageSSA, func() error {
			r.Opt = ssaopt.Optimize(f, info)
			if err := ssa.Verify(f); err != nil {
				return fmt.Errorf("pipeline: after SSA optimization: %v", err)
			}
			return nil
		}, func() any { return r.Opt })
	}

	if conf.Psi {
		add("psi", verify.StageSSA, func() error {
			st := psi.IfConvert(f)
			lo := psi.ConvertPsi(f)
			st.PsisLowered, st.TiesPinned = lo.PsisLowered, lo.TiesPinned
			r.Psi = st
			// The ψ-conventional chains seed with constant-true selects;
			// fold them into copies and drop the dead seeds.
			ssaopt.FoldSelects(f)
			ssaopt.EliminateDeadCode(f)
			if err := ssa.Verify(f); err != nil {
				return fmt.Errorf("pipeline: after psi conversion: %v", err)
			}
			return nil
		}, func() any { return r.Psi })
	}

	if conf.Sreedhar {
		add("sreedhar", verify.StageSSA, func() error {
			st, _, err := sreedhar.ConvertToCSSA(f, sreedhar.Options{
				Unsplittable: func(v ir.ValueID) bool { return info.OrigPhys(v) != ir.NoValue },
			})
			if err != nil {
				return fmt.Errorf("pipeline: sreedhar: %v", err)
			}
			r.Sreedhar = st
			return nil
		}, func() any { return r.Sreedhar })
	}

	add("pinning-sp", verify.StageSSA, func() error { pin.CollectSP(f, info); return nil }, nil)
	if conf.ABI {
		add("pinning-abi", verify.StageSSA, func() error { pin.CollectABI(f); return nil }, nil)
	}

	if conf.Sreedhar {
		add("pinning-cssa", verify.StageSSA, func() error {
			live := analysis.Liveness(f)
			an := interference.New(f, live, analysis.Dominators(f), interference.Exact)
			_, unpinned, err := pin.CollectPhiCSSA(f, an)
			if err != nil {
				return fmt.Errorf("pipeline: pinningCSSA: %v", err)
			}
			r.CSSAUnpinned = unpinned
			return nil
		}, func() any { return struct{ Unpinned int }{r.CSSAUnpinned} })
	}

	if conf.PrePin {
		add("pre-pin", verify.StageSSA, func() error {
			st, err := coalesce.PrePinDefs(f, conf.Coalesce.Mode)
			if err != nil {
				return fmt.Errorf("pipeline: pre-pinning: %v", err)
			}
			r.PrePin = st
			return nil
		}, func() any { return r.PrePin })
	}

	if conf.PhiCoalesce {
		add("pinning-phi", verify.StageSSA, func() error {
			st, err := coalesce.ProgramPinning(f, conf.Coalesce)
			if err != nil {
				return fmt.Errorf("pipeline: pinningφ: %v", err)
			}
			r.Coalesce = st
			return nil
		}, func() any { return r.Coalesce })
	}

	if conf.NaiveOut {
		add("out-naive", verify.StagePostSSA, func() error {
			st, err := naive.Translate(f)
			if err != nil {
				return fmt.Errorf("pipeline: naive out-of-SSA: %v", err)
			}
			r.Naive = st
			return nil
		}, func() any { return r.Naive })
	} else {
		add("out-of-pinned-ssa", verify.StagePostSSA, func() error {
			st, err := leung.Translate(f)
			if err != nil {
				return fmt.Errorf("pipeline: out-of-pinned-SSA: %v", err)
			}
			r.Leung = st
			return nil
		}, func() any { return r.Leung })
	}

	if conf.NaiveABI {
		add("naive-abi", verify.StagePostSSA, func() error { r.NaiveABI = naiveabi.Apply(f); return nil },
			func() any { return r.NaiveABI })
	}
	if conf.Chaitin {
		add("chaitin", verify.StagePostSSA, func() error { r.Chaitin = regalloc.AggressiveCoalesce(f); return nil },
			func() any { return r.Chaitin })
	}
	return ps
}

// runPasses executes the pass list. With a nil tracer, no metrics
// registry and default opts it is a plain loop — no snapshots, no
// clock reads, no allocations beyond what the passes themselves do.
// With a tracer or a registry it brackets the run and every pass with
// measurements: per-pass wall time, runtime.MemStats allocation
// deltas, and (tracer only) IR snapshots before/after. The tracer
// receives events; the registry receives wall/alloc histograms, the
// pass-counter mirror, and error/panic counters — both fed from the
// same measurements and the same flattened counters, so their totals
// agree. Every pass failure — its own error, a contained panic, or a
// checked-mode violation — surfaces as a *PassError; in checked mode
// the entry state is verified too, reported against the pseudo-pass
// "<input>". Verifier time is charged to the pass it checks.
func runPasses(f *ir.Func, exp string, ps []pass, tr obs.Tracer, opts runOpts) error {
	if opts.verify && len(ps) > 0 {
		if err := verify.Func(f, opts.entryStage); err != nil {
			return &PassError{Func: f.Name, Config: exp, Pass: "<input>",
				Cause: err, Snapshot: obs.Snapshot(f)}
		}
	}
	reg := opts.metrics
	if tr == nil && reg == nil {
		for i := range ps {
			if err := ctxCheck(f, exp, &ps[i], opts); err != nil {
				return err
			}
			if err := runOne(f, exp, &ps[i], opts); err != nil {
				return err
			}
		}
		return nil
	}

	runStart := time.Now()
	if tr != nil {
		tr.RunStart(f.Name, exp, obs.Snapshot(f))
	}
	var ms0, ms1 runtime.MemStats
	for i := range ps {
		p := &ps[i]
		// Cancellation is not a pass failure: it is not fed into the
		// pass-error metrics, the caller accounts for it instead.
		if err := ctxCheck(f, exp, p, opts); err != nil {
			return err
		}
		var before obs.IRStat
		if tr != nil {
			tr.PassStart(f.Name, exp, p.name)
			before = obs.Snapshot(f)
		}
		runtime.ReadMemStats(&ms0)
		t0 := time.Now()
		err := runOne(f, exp, p, opts)
		wall := time.Since(t0)
		runtime.ReadMemStats(&ms1)
		var counters map[string]int64
		if err == nil && p.stats != nil {
			counters = obs.Counters(p.name, p.stats())
		}
		if tr != nil {
			ev := &obs.Event{
				Func:       f.Name,
				Config:     exp,
				Pass:       p.name,
				Seq:        i,
				WallNS:     wall.Nanoseconds(),
				AllocBytes: ms1.TotalAlloc - ms0.TotalAlloc,
				Mallocs:    ms1.Mallocs - ms0.Mallocs,
				Before:     before,
				After:      obs.Snapshot(f),
				Counters:   counters,
			}
			if err != nil {
				ev.Err = err.Error()
			}
			tr.PassEnd(ev)
		}
		if reg != nil {
			recordPassMetrics(reg, p.name, wall.Nanoseconds(), ms1.TotalAlloc-ms0.TotalAlloc, counters, err)
		}
		if err != nil {
			return err
		}
	}
	if tr != nil {
		tr.RunEnd(f.Name, exp, obs.Snapshot(f), time.Since(runStart).Nanoseconds())
	}
	if reg != nil {
		reg.Histogram(MetricRunWallNS, metrics.L("config", exp)).Observe(time.Since(runStart).Nanoseconds())
	}
	return nil
}

// stripNonSPPins removes operand pins to dedicated registers other than
// SP, implementing the "without renaming constraints" experimental setup.
func stripNonSPPins(f *ir.Func) {
	sp := f.Target.SP
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			for i, d := range in.Defs() {
				if d.Pinned() && f.IsPhys(d.Pin()) && d.Pin() != sp {
					in.SetDef(i, ir.Operand{Val: d.Val})
				}
			}
			for i, u := range in.Uses() {
				if u.Pinned() && f.IsPhys(u.Pin()) && u.Pin() != sp {
					in.SetUse(i, ir.Operand{Val: u.Val})
				}
			}
		}
	}
}

// The named experiments of Table 1.
const (
	// Table 2 (no ABI constraints).
	ExpLphiC = "Lphi+C" // pinningSP, pinningφ, out-of-pinned-SSA, +C
	ExpC2    = "C"      // pinningSP, out-of-pinned-SSA, +C
	ExpSphiC = "Sphi+C" // Sreedhar, pinningCSSA, pinningSP, out, +C

	// Table 3 (with renaming constraints).
	ExpLphiABIC  = "Lphi,ABI+C"  // pinningSP, pinningABI, pinningφ, out, +C
	ExpSphiLABIC = "Sphi+LABI+C" // Sreedhar, CSSA, SP, ABI, out, +C
	ExpLABIC     = "LABI+C"      // SP, ABI, out, +C
	ExpC3        = "C(naiveABI)" // SP, out, NaiveABI, +C

	// Table 4 (no +C: order-of-magnitude costs).
	ExpLphiABI = "Lphi,ABI" // SP, ABI, pinningφ, out
	ExpSphi    = "Sphi"     // Sreedhar, CSSA, SP, out, NaiveABI
	ExpLABI    = "LABI"     // SP, ABI, out (naive φ cost)

	// Extensions (not part of the paper's tables; see the ablation bench):
	// the [LIM2] definition pre-pinning pass, and ψ-SSA if-conversion.
	ExpPrePin = "Lphi,ABI,pre+C"
	ExpPsi    = "Lphi,ABI,psi+C"
)

// Configs maps experiment names to pass configurations.
var Configs = map[string]Config{
	ExpLphiC: {Optimize: true, PhiCoalesce: true, Chaitin: true},
	ExpC2:    {Optimize: true, Chaitin: true},
	ExpSphiC: {Optimize: true, Sreedhar: true, Chaitin: true},

	ExpLphiABIC:  {Optimize: true, ABI: true, PhiCoalesce: true, Chaitin: true},
	ExpSphiLABIC: {Optimize: true, Sreedhar: true, ABI: true, Chaitin: true},
	ExpLABIC:     {Optimize: true, ABI: true, Chaitin: true},
	ExpC3:        {Optimize: true, NaiveABI: true, Chaitin: true},

	ExpPrePin: {Optimize: true, ABI: true, PrePin: true, PhiCoalesce: true, Chaitin: true},
	ExpPsi:    {Optimize: true, Psi: true, ABI: true, PrePin: true, PhiCoalesce: true, Chaitin: true},

	ExpLphiABI: {Optimize: true, ABI: true, PhiCoalesce: true},
	ExpSphi:    {Optimize: true, Sreedhar: true, NaiveABI: true},
	ExpLABI:    {Optimize: true, ABI: true},
}
