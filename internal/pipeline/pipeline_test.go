package pipeline_test

import (
	"sort"
	"testing"

	"outofssa/internal/ir"
	"outofssa/internal/pipeline"
	"outofssa/internal/testprog"
)

func expNames() []string {
	var names []string
	for n := range pipeline.Configs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TestAllConfigsPreserveSemantics is the central correctness property of
// the repository: every experiment configuration of Table 1, run over the
// structured and random programs, must preserve observable behaviour.
func TestAllConfigsPreserveSemantics(t *testing.T) {
	mks := []func() *ir.Func{
		testprog.Diamond, testprog.Loop, testprog.NestedLoops,
		testprog.SwapLoop, testprog.LostCopy, testprog.WithCallsAndStack,
	}
	for seed := int64(0); seed < 25; seed++ {
		s := seed
		mks = append(mks, func() *ir.Func {
			return testprog.Rand(s, testprog.DefaultRandOptions())
		})
	}
	argSets := [][]int64{{0, 0, 0}, {1, 2, 3}, {9, 4, 2}, {17, 5, 1}}

	for _, mk := range mks {
		ref := mk()
		var wants []*ir.ExecResult
		for _, args := range argSets {
			w, err := ir.Exec(ref, args, 500000)
			if err != nil {
				t.Fatalf("%s: ref: %v", ref.Name, err)
			}
			wants = append(wants, w)
		}
		for _, name := range expNames() {
			f := mk()
			res, err := pipeline.Run(f, pipeline.Configs[name])
			if err != nil {
				t.Fatalf("%s/%s: %v", ref.Name, name, err)
			}
			if err := f.Verify(); err != nil {
				t.Fatalf("%s/%s: invalid output: %v", ref.Name, name, err)
			}
			for _, b := range f.Blocks() {
				for _, in := range b.Instrs() {
					if in.Op() == ir.Phi || in.Op() == ir.ParCopy {
						t.Fatalf("%s/%s: %v survived the pipeline", ref.Name, name, in.Op())
					}
				}
			}
			if res.Moves < 0 {
				t.Fatalf("%s/%s: negative move count", ref.Name, name)
			}
			for i, args := range argSets {
				got, err := ir.Exec(f, args, 1000000)
				if err != nil {
					t.Fatalf("%s/%s args=%v: %v\n%s", ref.Name, name, args, err, f)
				}
				if !wants[i].Equal(got) {
					t.Fatalf("%s/%s args=%v: behaviour changed\nwant %+v\ngot  %+v\n%s",
						ref.Name, name, args, wants[i], got, f)
				}
			}
		}
	}
}

// TestPhiCoalescingNeverWorse: Lφ+C must never produce more moves than
// plain C (the φ pinning only removes copies that aggressive coalescing
// could not, or matches it).
func TestPhiCoalescingReducesMoves(t *testing.T) {
	totalC, totalL := 0, 0
	for seed := int64(0); seed < 30; seed++ {
		fc := testprog.Rand(seed, testprog.DefaultRandOptions())
		rc, err := pipeline.Run(fc, pipeline.Configs[pipeline.ExpC2])
		if err != nil {
			t.Fatal(err)
		}
		fl := testprog.Rand(seed, testprog.DefaultRandOptions())
		rl, err := pipeline.Run(fl, pipeline.Configs[pipeline.ExpLphiC])
		if err != nil {
			t.Fatal(err)
		}
		totalC += rc.Moves
		totalL += rl.Moves
	}
	// On random programs the two greedy schemes land near parity (the
	// paper's margins come from structured DSP code — asserted strictly by
	// the workload-suite tests); only guard against regressions here.
	if totalL > totalC+totalC/20+1 {
		t.Fatalf("pinningφ made things markedly worse: Lφ+C=%d vs C=%d", totalL, totalC)
	}
}

// TestABIPinningBeatsNaive: handling renaming constraints during the
// translation (LABI+C) must beat inserting naive ABI moves and cleaning
// up afterwards (C+NaiveABI+C) — the paper's Table 3 headline.
func TestABIPinningBeatsNaive(t *testing.T) {
	totalNaive, totalPinned := 0, 0
	for seed := int64(0); seed < 30; seed++ {
		fn := testprog.Rand(seed, testprog.DefaultRandOptions())
		rn, err := pipeline.Run(fn, pipeline.Configs[pipeline.ExpC3])
		if err != nil {
			t.Fatal(err)
		}
		fp := testprog.Rand(seed, testprog.DefaultRandOptions())
		rp, err := pipeline.Run(fp, pipeline.Configs[pipeline.ExpLphiABIC])
		if err != nil {
			t.Fatal(err)
		}
		totalNaive += rn.Moves
		totalPinned += rp.Moves
	}
	if totalPinned >= totalNaive {
		t.Fatalf("ABI pinning did not beat NaiveABI: pinned=%d naive=%d", totalPinned, totalNaive)
	}
}

// TestTable4Ordering: without the coalescing post-pass, the naive φ cost
// (LABI) and the naive ABI cost (Sφ) must both exceed the fully pinned
// translation (Lφ,ABI) — Table 4's order-of-magnitude motivation.
func TestTable4Ordering(t *testing.T) {
	var full, sphi, labi int
	for seed := int64(0); seed < 30; seed++ {
		r1, err := pipeline.Run(testprog.Rand(seed, testprog.DefaultRandOptions()),
			pipeline.Configs[pipeline.ExpLphiABI])
		if err != nil {
			t.Fatal(err)
		}
		r2, err := pipeline.Run(testprog.Rand(seed, testprog.DefaultRandOptions()),
			pipeline.Configs[pipeline.ExpSphi])
		if err != nil {
			t.Fatal(err)
		}
		r3, err := pipeline.Run(testprog.Rand(seed, testprog.DefaultRandOptions()),
			pipeline.Configs[pipeline.ExpLABI])
		if err != nil {
			t.Fatal(err)
		}
		full += r1.Moves
		sphi += r2.Moves
		labi += r3.Moves
	}
	if sphi <= full {
		t.Errorf("Sφ (naive ABI) should cost more than Lφ,ABI: %d vs %d", sphi, full)
	}
	if labi <= full {
		t.Errorf("LABI (naive φ) should cost more than Lφ,ABI: %d vs %d", labi, full)
	}
}
