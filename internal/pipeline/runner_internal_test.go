package pipeline

import (
	"errors"
	"testing"

	"outofssa/internal/ir"
	"outofssa/internal/obs"
)

// TestNilTracerAllocatesNothing pins down the zero-overhead contract of
// the default path: running a pass list with a nil tracer must not
// allocate — no snapshots, no events, no clock bookkeeping.
func TestNilTracerAllocatesNothing(t *testing.T) {
	f := ir.NewFunc("noalloc")
	f.NewBlock("entry")
	ps := []pass{
		{name: "a", run: func() error { return nil }},
		{name: "b", run: func() error { return nil }},
		{name: "c", run: func() error { return nil }},
	}
	n := testing.AllocsPerRun(200, func() {
		if err := runPasses(f, "", ps, nil, runOpts{}); err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Fatalf("nil-tracer runPasses allocates %v per run, want 0", n)
	}
}

// TestRunnerStopsOnError: a failing pass must abort the run, surface
// its error as a *PassError naming the pass (with the cause reachable
// through errors.Is), and still deliver the failing pass's event — now
// carrying the error string — to an attached tracer (the trace shows
// where a run died).
func TestRunnerStopsOnError(t *testing.T) {
	boom := errors.New("pipeline: synthetic failure")
	f := ir.NewFunc("err")
	f.NewBlock("entry")
	ran := 0
	ps := []pass{
		{name: "ok", run: func() error { ran++; return nil }},
		{name: "fails", run: func() error { ran++; return boom }},
		{name: "never", run: func() error { ran++; return nil }},
	}

	for _, tr := range []obs.Tracer{nil, &obs.Recorder{}} {
		ran = 0
		err := runPasses(f, "exp", ps, tr, runOpts{})
		if !errors.Is(err, boom) {
			t.Fatalf("tracer=%T: got error %v, want cause %v", tr, err, boom)
		}
		var pe *PassError
		if !errors.As(err, &pe) {
			t.Fatalf("tracer=%T: error %T is not a *PassError", tr, err)
		}
		if pe.Pass != "fails" || pe.Func != "err" || pe.Config != "exp" {
			t.Fatalf("tracer=%T: PassError fields wrong: %+v", tr, pe)
		}
		if ran != 2 {
			t.Fatalf("tracer=%T: %d passes ran, want 2", tr, ran)
		}
		if rec, ok := tr.(*obs.Recorder); ok {
			run := rec.Runs[0]
			if len(run.Events) != 2 || run.Events[1].Pass != "fails" {
				t.Fatalf("failing pass not traced: %+v", run.Events)
			}
			if run.Events[1].Err == "" {
				t.Fatal("failing pass event carries no Err")
			}
			if run.Ended {
				t.Fatal("RunEnd fired despite pass failure")
			}
		}
	}
}

// TestRunnerContainsPanic: a panicking pass must not take down the
// process; the panic surfaces as a *PassError wrapping a *PanicError
// that records the panic value and a stack trace.
func TestRunnerContainsPanic(t *testing.T) {
	f := ir.NewFunc("boom")
	f.NewBlock("entry")
	ran := 0
	ps := []pass{
		{name: "explodes", run: func() error { panic("kaboom") }},
		{name: "never", run: func() error { ran++; return nil }},
	}
	err := runPasses(f, "exp", ps, nil, runOpts{})
	var pe *PassError
	if !errors.As(err, &pe) || pe.Pass != "explodes" {
		t.Fatalf("got %v, want *PassError for pass \"explodes\"", err)
	}
	var pa *PanicError
	if !errors.As(err, &pa) {
		t.Fatalf("cause %v is not a *PanicError", pe.Cause)
	}
	if pa.Value != "kaboom" || pa.Stack == "" {
		t.Fatalf("panic not captured: value=%v stack=%d bytes", pa.Value, len(pa.Stack))
	}
	if ran != 0 {
		t.Fatal("pass after the panicking one still ran")
	}
}
