package pipeline

import (
	"errors"
	"testing"

	"outofssa/internal/ir"
	"outofssa/internal/obs"
)

// TestNilTracerAllocatesNothing pins down the zero-overhead contract of
// the default path: running a pass list with a nil tracer must not
// allocate — no snapshots, no events, no clock bookkeeping.
func TestNilTracerAllocatesNothing(t *testing.T) {
	f := ir.NewFunc("noalloc")
	f.NewBlock("entry")
	ps := []pass{
		{name: "a", run: func() error { return nil }},
		{name: "b", run: func() error { return nil }},
		{name: "c", run: func() error { return nil }},
	}
	n := testing.AllocsPerRun(200, func() {
		if err := runPasses(f, "", ps, nil); err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Fatalf("nil-tracer runPasses allocates %v per run, want 0", n)
	}
}

// TestRunnerStopsOnError: a failing pass must abort the run, surface
// its error verbatim, and still deliver the failing pass's event to an
// attached tracer (the trace shows where a run died).
func TestRunnerStopsOnError(t *testing.T) {
	boom := errors.New("pipeline: synthetic failure")
	f := ir.NewFunc("err")
	f.NewBlock("entry")
	ran := 0
	ps := []pass{
		{name: "ok", run: func() error { ran++; return nil }},
		{name: "fails", run: func() error { ran++; return boom }},
		{name: "never", run: func() error { ran++; return nil }},
	}

	for _, tr := range []obs.Tracer{nil, &obs.Recorder{}} {
		ran = 0
		err := runPasses(f, "exp", ps, tr)
		if err != boom {
			t.Fatalf("tracer=%T: got error %v, want %v", tr, err, boom)
		}
		if ran != 2 {
			t.Fatalf("tracer=%T: %d passes ran, want 2", tr, ran)
		}
		if rec, ok := tr.(*obs.Recorder); ok {
			run := rec.Runs[0]
			if len(run.Events) != 2 || run.Events[1].Pass != "fails" {
				t.Fatalf("failing pass not traced: %+v", run.Events)
			}
			if run.Ended {
				t.Fatal("RunEnd fired despite pass failure")
			}
		}
	}
}
