package pipeline_test

import (
	"testing"
	"testing/quick"

	"outofssa/internal/ir"
	"outofssa/internal/pipeline"
	"outofssa/internal/testprog"
)

// TestQuickDifferential is the repository's fuzz loop in testing/quick
// form: arbitrary seeds drive the program generator, arbitrary argument
// triples drive the interpreter, and every experiment configuration must
// produce observably identical code.
func TestQuickDifferential(t *testing.T) {
	maxCount := 60
	if testing.Short() {
		maxCount = 10
	}
	check := func(seed int64, a0, a1, a2 int32) bool {
		opts := testprog.DefaultRandOptions()
		args := []int64{int64(a0), int64(a1), int64(a2)}
		ref := testprog.Rand(seed, opts)
		want, err := ir.Exec(ref, args, 500000)
		if err != nil {
			return false
		}
		for name, conf := range pipeline.Configs {
			f := testprog.Rand(seed, opts)
			if _, err := pipeline.Run(f, conf); err != nil {
				t.Logf("seed %d %s: %v", seed, name, err)
				return false
			}
			got, err := ir.Exec(f, args, 1500000)
			if err != nil {
				t.Logf("seed %d %s: %v", seed, name, err)
				return false
			}
			if !want.Equal(got) {
				t.Logf("seed %d %s: outputs %v vs %v", seed, name, want.Outputs, got.Outputs)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: maxCount}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMoveAccounting: for arbitrary programs, the pipeline's
// reported move count must equal a recount on the final function, and
// the weighted count must dominate the plain count.
func TestQuickMoveAccounting(t *testing.T) {
	check := func(seed int64) bool {
		f := testprog.Rand(seed, testprog.DefaultRandOptions())
		r, err := pipeline.Run(f, pipeline.Configs[pipeline.ExpLphiABIC])
		if err != nil {
			return false
		}
		if r.Moves != f.CountMoves() {
			return false
		}
		if r.WeightedMoves < int64(r.Moves) {
			return false
		}
		if r.Instrs != f.NumInstrs() {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
