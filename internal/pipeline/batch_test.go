package pipeline_test

import (
	"errors"
	"fmt"
	"testing"

	"outofssa/internal/faultinject"
	"outofssa/internal/ir"
	"outofssa/internal/obs"
	"outofssa/internal/pipeline"
	"outofssa/internal/testprog"
)

// batchJobs builds a job matrix large enough to keep 8 workers busy:
// every testprog function under every named experiment.
func batchJobs() []pipeline.Job {
	var jobs []pipeline.Job
	for _, name := range pipeline.Presets() {
		conf, _ := pipeline.Preset(name)
		for _, f := range testprog.All() {
			f := f
			jobs = append(jobs, pipeline.Job{
				Build:      func() *ir.Func { return f.Clone() },
				Config:     conf,
				Experiment: name,
			})
		}
	}
	return jobs
}

// flatten renders a recorded trace stream with its measurement fields
// (wall time, allocations) masked out: those differ between any two
// runs, serial or not. Everything else — run order, pass order,
// counters, snapshots — must be byte-identical across parallelism.
func flatten(rec *obs.Recorder) []string {
	var out []string
	for _, run := range rec.Runs {
		out = append(out, fmt.Sprintf("run %s/%s before=%+v after=%+v ended=%v",
			run.Func, run.Config, run.Before, run.After, run.Ended))
		for i, pass := range run.Started {
			line := "  start " + pass
			if i < len(run.Events) {
				ev := run.Events[i]
				line += fmt.Sprintf(" seq=%d before=%+v after=%+v counters=%v err=%q",
					ev.Seq, ev.Before, ev.After, ev.Counters, ev.Err)
			}
			out = append(out, line)
		}
	}
	return out
}

// TestRunBatchDeterministic is the concurrency acceptance test: a batch
// at parallelism 8 must produce results and a merged trace stream
// identical to the serial run of the same jobs.
func TestRunBatchDeterministic(t *testing.T) {
	serialRec, parRec := &obs.Recorder{}, &obs.Recorder{}
	serial := pipeline.RunBatch(batchJobs(),
		pipeline.WithParallelism(1), pipeline.WithBatchTracer(serialRec))
	par := pipeline.RunBatch(batchJobs(),
		pipeline.WithParallelism(8), pipeline.WithBatchTracer(parRec))

	if len(serial) != len(par) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(par))
	}
	for i := range serial {
		s, p := serial[i], par[i]
		if (s.Err == nil) != (p.Err == nil) {
			t.Fatalf("job %d: error mismatch: %v vs %v", i, s.Err, p.Err)
		}
		if s.Err != nil {
			continue
		}
		if s.Result.Moves != p.Result.Moves ||
			s.Result.WeightedMoves != p.Result.WeightedMoves ||
			s.Result.Instrs != p.Result.Instrs {
			t.Fatalf("job %d: results diverge: moves %d/%d weighted %d/%d instrs %d/%d",
				i, s.Result.Moves, p.Result.Moves,
				s.Result.WeightedMoves, p.Result.WeightedMoves,
				s.Result.Instrs, p.Result.Instrs)
		}
		if s.Func.String() != p.Func.String() {
			t.Fatalf("job %d: final IR diverges", i)
		}
	}

	sLines, pLines := flatten(serialRec), flatten(parRec)
	if len(sLines) != len(pLines) {
		t.Fatalf("trace stream lengths differ: %d vs %d", len(sLines), len(pLines))
	}
	for i := range sLines {
		if sLines[i] != pLines[i] {
			t.Fatalf("trace streams diverge at line %d:\nserial:   %s\nparallel: %s",
				i, sLines[i], pLines[i])
		}
	}
}

// TestRunBatchErrorIsolation: one corrupt job fails on its own; its
// neighbours complete, and the failure lands at the right index.
func TestRunBatchErrorIsolation(t *testing.T) {
	conf, err := pipeline.Preset(pipeline.ExpLphiABIC)
	if err != nil {
		t.Fatal(err)
	}
	conf.Verify = true
	bad := conf
	bad.FaultHook = func(pass string, f *ir.Func) {
		if pass == "pinning-phi" {
			faultinject.Inject(f, faultinject.ClobberPhiArg)
		}
	}
	jobs := []pipeline.Job{
		{Build: func() *ir.Func { return testprog.SwapLoop() }, Config: conf, Experiment: "ok"},
		{Build: func() *ir.Func { return testprog.SwapLoop() }, Config: bad, Experiment: "bad"},
		{Build: func() *ir.Func { return testprog.Diamond() }, Config: conf, Experiment: "ok"},
	}
	results := pipeline.RunBatch(jobs, pipeline.WithParallelism(3))
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("healthy jobs failed: %v, %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Fatal("corrupted job did not fail")
	}
	var pe *pipeline.PassError
	if !errors.As(results[1].Err, &pe) {
		t.Fatalf("corrupted job failed with %T, want *PassError", results[1].Err)
	}
}

// TestRunBatchEmpty: a zero-job batch returns an empty, non-panicking
// result at any parallelism.
func TestRunBatchEmpty(t *testing.T) {
	if res := pipeline.RunBatch(nil, pipeline.WithParallelism(8)); len(res) != 0 {
		t.Fatalf("empty batch returned %d results", len(res))
	}
}
