package pipeline_test

import (
	"testing"

	"outofssa/internal/ir"
	"outofssa/internal/naiveabi"
	"outofssa/internal/pipeline"
	"outofssa/internal/regalloc"
	"outofssa/internal/ssa"
)

// figure8 builds the [CC1] partial-coalescing scenario: a variable z with
// two independent defs (webs), the second web spanning a later redefinition
// of R0. Chaitin-style coalescing sees one variable z interfering with R0
// and keeps every copy; SSA-level pinning splits the webs and coalesces
// the first one for free.
//
//	z = call f1   (result in R0)
//	use z
//	z = call f2   (result in R0)
//	w = call f3   (result in R0; z still live!)
//	use z, w
func figure8() *ir.Func {
	bld := ir.NewBuilder("fig8")
	bld.Block("entry")
	z, w, u1, u2 := bld.Val("z"), bld.Val("w"), bld.Val("u1"), bld.Val("u2")
	one := bld.Val("one")
	bld.Const(one, 1)
	bld.Call("f1", []ir.ValueID{z})
	bld.Binary(ir.Add, u1, z, one) // use of web 1
	bld.Call("f2", []ir.ValueID{z})
	bld.Call("f3", []ir.ValueID{w}) // kills R0 while web-2 z is live
	bld.Binary(ir.Add, u2, z, w)
	r := bld.Val("r")
	bld.Binary(ir.Add, r, u1, u2)
	bld.Output(r)
	return bld.Fn
}

// TestPaperFigure8PartialCoalescing: the pinned translation must beat a
// Chaitin-style baseline that never goes through SSA: there z is a single
// variable interfering with R0, so neither of its copies can be
// coalesced, while SSA pinning splits the webs and pins the
// non-conflicting one to R0 for free ("partial coalescing", [CC1]).
func TestPaperFigure8PartialCoalescing(t *testing.T) {
	fp := figure8()
	rp, err := pipeline.Run(fp, pipeline.Configs[pipeline.ExpLphiABIC])
	if err != nil {
		t.Fatal(err)
	}
	// Non-SSA Chaitin baseline: satisfy the ABI locally, then coalesce.
	fc := figure8()
	naiveabi.Apply(fc)
	regalloc.AggressiveCoalesce(fc)
	ccount := fc.CountMoves()
	if rp.Moves >= ccount {
		t.Fatalf("partial coalescing failed: pinned=%d moves, chaitin=%d moves\npinned:\n%s\nchaitin:\n%s",
			rp.Moves, ccount, fp, fc)
	}
	if rp.Moves != 1 {
		t.Fatalf("pinned translation should need exactly 1 move (the web-2 repair), got %d:\n%s",
			rp.Moves, fp)
	}

	// Both must behave identically.
	a, err := ir.Exec(figure8(), nil, 1000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ir.Exec(fp, nil, 1000)
	if err != nil {
		t.Fatal(err)
	}
	c, err := ir.Exec(fc, nil, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) || !a.Equal(c) {
		t.Fatal("figure 8 pipelines changed behaviour")
	}
}

// figure10 is the swap loop of [CS2]: x and y are exchanged around the
// back edge, producing a φ cycle. Parallel-copy placement sequentializes
// the cycle optimally; Sreedhar's sequential copy insertion costs extra.
func figure10() *ir.Func {
	bld := ir.NewBuilder("fig10")
	entry := bld.Block("entry")
	head := bld.Fn.NewBlock("head")
	body := bld.Fn.NewBlock("body")
	exit := bld.Fn.NewBlock("exit")

	x, y, n, i, c, one := bld.Val("x"), bld.Val("y"), bld.Val("n"), bld.Val("i"), bld.Val("c"), bld.Val("one")
	t1 := bld.Val("t1")
	bld.SetBlock(entry)
	bld.Input(x, y, n)
	bld.Const(i, 0)
	bld.Const(one, 1)
	bld.Jump(head)
	bld.SetBlock(head)
	bld.Binary(ir.CmpLT, c, i, n)
	bld.Br(c, body, exit)
	bld.SetBlock(body)
	// swap x and y
	bld.Copy(t1, x)
	bld.Copy(x, y)
	bld.Copy(y, t1)
	bld.Binary(ir.Add, i, i, one)
	bld.Jump(head)
	bld.SetBlock(exit)
	r := bld.Val("r")
	bld.Binary(ir.Sub, r, x, y)
	bld.Output(r)
	return bld.Fn
}

// TestPaperFigure10ParallelCopies: on the swap loop our translation must
// not cost more moves than the Sreedhar composition, and both must keep
// the semantics (the swap cycle requires correct sequentialization).
func TestPaperFigure10ParallelCopies(t *testing.T) {
	fo := figure10()
	ro, err := pipeline.Run(fo, pipeline.Configs[pipeline.ExpLphiC])
	if err != nil {
		t.Fatal(err)
	}
	fs := figure10()
	rs, err := pipeline.Run(fs, pipeline.Configs[pipeline.ExpSphiC])
	if err != nil {
		t.Fatal(err)
	}
	if ro.Moves > rs.Moves {
		t.Fatalf("[CS2] violated: ours=%d vs sreedhar=%d moves", ro.Moves, rs.Moves)
	}
	for _, n := range []int64{0, 1, 2, 5} {
		want, err := ir.Exec(figure10(), []int64{3, 9, n}, 100000)
		if err != nil {
			t.Fatal(err)
		}
		g1, err := ir.Exec(fo, []int64{3, 9, n}, 200000)
		if err != nil {
			t.Fatal(err)
		}
		g2, err := ir.Exec(fs, []int64{3, 9, n}, 200000)
		if err != nil {
			t.Fatal(err)
		}
		if !want.Equal(g1) || !want.Equal(g2) {
			t.Fatalf("figure 10 semantics broken for n=%d", n)
		}
	}
}

// figure11 is the [CS3] scenario: B = φ(a, b2) where {a, b2} interfere,
// and b2 is tied to b1 by a 2-operand autoadd. The ABI-aware coalescer
// must put the single move on the a-edge, keeping the autoadd tie free.
func figure11() *ir.Func {
	bld := ir.NewBuilder("fig11")
	entry := bld.Block("entry")
	head := bld.Fn.NewBlock("head")
	l1 := bld.Fn.NewBlock("L1")
	l2 := bld.Fn.NewBlock("L2")
	latch := bld.Fn.NewBlock("latch")
	exit := bld.Fn.NewBlock("exit")

	a, b0 := bld.Val("a"), bld.Val("b0")
	b1, b2, bb := bld.Val("b1"), bld.Val("b2"), bld.Val("B")
	c1, c2 := bld.Val("c1"), bld.Val("c2")
	k := bld.Val("k")

	bld.SetBlock(entry)
	bld.Const(a, 100)
	bld.Call("f1", []ir.ValueID{b0})
	bld.Jump(head)

	bld.SetBlock(head)
	bld.Phi(b1, b0, bb)
	bld.AutoAdd(b2, b1, 1)
	one := bld.Val("one")
	bld.Const(one, 1)
	bld.Binary(ir.And, c1, b2, one)
	bld.Br(c1, l1, l2)

	bld.SetBlock(l1)
	bld.Jump(latch)
	bld.SetBlock(l2)
	bld.Jump(latch)

	bld.SetBlock(latch)
	bld.Phi(bb, a, b2)
	bld.Binary(ir.CmpLT, c2, bb, k)
	bld.Br(c2, head, exit)

	bld.SetBlock(exit)
	bld.Output(bb)

	// k is live-in without a def: give it one in entry.
	kdef := bld.Fn.NewInstr(ir.Const, ir.Ops(k), nil)
	kdef.Imm = 10
	entry.InsertAt(0, kdef)
	return bld.Fn
}

// TestPaperFigure11ABIChoice: our solution must reach the 1-move optimum
// (B = a on the a-edge, autoadd tie coalesced) and never lose to the
// Sreedhar composition.
func TestPaperFigure11ABIChoice(t *testing.T) {
	// figure11 is built directly in SSA form: skip SSA construction.
	fo := figure11()
	ro, err := pipeline.Run(fo, pipeline.Configs[pipeline.ExpLphiABIC], pipeline.WithSSAInfo(ssa.EmptyInfo()))
	if err != nil {
		t.Fatal(err)
	}
	fs := figure11()
	rs, err := pipeline.Run(fs, pipeline.Configs[pipeline.ExpSphiLABIC], pipeline.WithSSAInfo(ssa.EmptyInfo()))
	if err != nil {
		t.Fatal(err)
	}
	if ro.Moves > rs.Moves {
		t.Fatalf("[CS3] violated: ours=%d vs sreedhar=%d", ro.Moves, rs.Moves)
	}
	if ro.Moves != 1 {
		t.Fatalf("ours should need exactly 1 move on figure 11, got %d:\n%s", ro.Moves, fo)
	}
	want, err := ir.Exec(figure11(), nil, 100000)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ir.Exec(fo, nil, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Fatal("figure 11 semantics broken")
	}
}
