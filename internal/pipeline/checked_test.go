package pipeline_test

import (
	"errors"
	"testing"

	"outofssa/internal/faultinject"
	"outofssa/internal/ir"
	"outofssa/internal/obs"
	"outofssa/internal/pipeline"
	"outofssa/internal/testprog"
)

// buildFaultSite returns a pre-SSA diamond whose merge block (after SSA
// construction) carries two φs followed by non-φ instructions — an
// injection site for every faultinject class.
func buildFaultSite() *ir.Func {
	bld := ir.NewBuilder("faultsite")
	entry := bld.Block("entry")
	left := bld.Fn.NewBlock("left")
	right := bld.Fn.NewBlock("right")
	merge := bld.Fn.NewBlock("merge")

	a, c, x, y, z, w, one := bld.Val("a"), bld.Val("c"), bld.Val("x"),
		bld.Val("y"), bld.Val("z"), bld.Val("w"), bld.Val("one")

	bld.SetBlock(entry)
	bld.Input(a)
	bld.Const(one, 1)
	bld.Binary(ir.CmpLT, c, a, one)
	bld.Br(c, left, right)

	bld.SetBlock(left)
	bld.Binary(ir.Add, x, a, one)
	bld.Binary(ir.Add, y, a, a)
	bld.Jump(merge)

	bld.SetBlock(right)
	bld.Const(x, 7)
	bld.Const(y, 9)
	bld.Jump(merge)

	bld.SetBlock(merge)
	bld.Binary(ir.Add, z, x, y)
	bld.Binary(ir.Mul, w, z, z)
	bld.Output(w)
	return bld.Fn
}

// TestCheckedModeIdenticalCodegen: enabling Verify must never change
// the generated code — the verifier only reads. Every named experiment
// configuration over structured and random programs must produce
// byte-identical IR and identical counters with and without checking.
func TestCheckedModeIdenticalCodegen(t *testing.T) {
	mks := []func() *ir.Func{
		testprog.Diamond, testprog.Loop, testprog.NestedLoops,
		testprog.SwapLoop, testprog.LostCopy, testprog.WithCallsAndStack,
	}
	for seed := int64(0); seed < 10; seed++ {
		s := seed
		mks = append(mks, func() *ir.Func {
			return testprog.Rand(s, testprog.DefaultRandOptions())
		})
	}
	for _, mk := range mks {
		for _, name := range expNames() {
			plain := mk()
			rp, err := pipeline.Run(plain, pipeline.Configs[name])
			if err != nil {
				t.Fatalf("%s/%s: %v", plain.Name, name, err)
			}
			checked := mk()
			conf := pipeline.Configs[name]
			conf.Verify = true
			rc, err := pipeline.Run(checked, conf)
			if err != nil {
				t.Fatalf("%s/%s checked: %v", checked.Name, name, err)
			}
			if plain.String() != checked.String() {
				t.Fatalf("%s/%s: checked mode changed the code:\n--- plain ---\n%s--- checked ---\n%s",
					plain.Name, name, plain, checked)
			}
			if rp.Moves != rc.Moves || rp.WeightedMoves != rc.WeightedMoves || rp.Instrs != rc.Instrs {
				t.Fatalf("%s/%s: checked mode changed counters: %d/%d/%d vs %d/%d/%d",
					plain.Name, name, rp.Moves, rp.WeightedMoves, rp.Instrs,
					rc.Moves, rc.WeightedMoves, rc.Instrs)
			}
		}
	}
}

// TestFaultsSurfaceAsPassError: every faultinject corruption smuggled
// in after a pass must abort the checked run with a *PassError naming
// exactly that pass, and the failing pass's trace event must carry the
// error.
func TestFaultsSurfaceAsPassError(t *testing.T) {
	const sabotaged = "pinning-sp"
	for _, class := range faultinject.Classes {
		t.Run(string(class), func(t *testing.T) {
			f := buildFaultSite()
			injected := false
			conf := pipeline.Config{
				ABI: true, PhiCoalesce: true,
				Verify: true,
				FaultHook: func(pass string, f *ir.Func) {
					if pass == sabotaged && !injected {
						injected = faultinject.Inject(f, class)
					}
				},
			}
			rec := &obs.Recorder{}
			_, err := pipeline.Run(f, conf, pipeline.WithExperiment("fault"), pipeline.WithTracer(rec))
			if !injected {
				t.Fatalf("no injection site for %s", class)
			}
			var pe *pipeline.PassError
			if !errors.As(err, &pe) {
				t.Fatalf("corruption after %s returned %v, want *PassError", sabotaged, err)
			}
			if pe.Pass != sabotaged {
				t.Fatalf("PassError blames %q, want %q (cause: %v)", pe.Pass, sabotaged, pe.Cause)
			}
			run := rec.Runs[len(rec.Runs)-1]
			last := run.Events[len(run.Events)-1]
			if last.Pass != sabotaged || last.Err == "" {
				t.Fatalf("failing pass not traced with Err: %+v", last)
			}
			if run.Ended {
				t.Fatal("RunEnd fired despite the fault")
			}
		})
	}
}

// TestFallbackRecoversFromFaults: with Fallback enabled, a pass-level
// fault must degrade gracefully — the pipeline still emits φ-free,
// parcopy-free code whose observable behaviour matches the pre-SSA
// program, and the Result records what happened.
func TestFallbackRecoversFromFaults(t *testing.T) {
	argSets := [][]int64{{0, 0, 0}, {1, 2, 3}, {9, 4, 2}, {17, 5, 1}}
	mks := []func() *ir.Func{
		buildFaultSite,
		testprog.Diamond, testprog.Loop, testprog.NestedLoops,
		testprog.SwapLoop, testprog.LostCopy, testprog.WithCallsAndStack,
	}
	for seed := int64(0); seed < 25; seed++ {
		s := seed
		mks = append(mks, func() *ir.Func {
			return testprog.Rand(s, testprog.DefaultRandOptions())
		})
	}
	for _, mk := range mks {
		ref := mk()
		var wants []*ir.ExecResult
		for _, args := range argSets {
			w, err := ir.Exec(ref, args, 500000)
			if err != nil {
				t.Fatalf("%s: ref: %v", ref.Name, err)
			}
			wants = append(wants, w)
		}

		f := mk()
		conf := pipeline.Configs[pipeline.ExpLphiABIC]
		conf.Verify = true
		conf.Fallback = true
		injected := false
		conf.FaultHook = func(pass string, g *ir.Func) {
			// DoubleDef applies to any program with a definition, so the
			// sabotage lands on every input in the suite.
			if pass == "pinning-sp" && !injected {
				injected = faultinject.Inject(g, faultinject.DoubleDef)
			}
		}
		res, err := pipeline.Run(f, conf)
		if err != nil {
			t.Fatalf("%s: fallback did not recover: %v", ref.Name, err)
		}
		if !injected {
			t.Fatalf("%s: no injection site", ref.Name)
		}
		if !res.FellBack {
			t.Fatalf("%s: fault not detected (FellBack false)", ref.Name)
		}
		var pe *pipeline.PassError
		if !errors.As(res.FallbackFrom, &pe) || pe.Pass != "pinning-sp" {
			t.Fatalf("%s: FallbackFrom = %v, want *PassError for pinning-sp", ref.Name, res.FallbackFrom)
		}
		if err := f.Verify(); err != nil {
			t.Fatalf("%s: fallback output invalid: %v", ref.Name, err)
		}
		for _, b := range f.Blocks() {
			for _, in := range b.Instrs() {
				if in.Op() == ir.Phi || in.Op() == ir.ParCopy {
					t.Fatalf("%s: %v survived the fallback", ref.Name, in.Op())
				}
			}
		}
		for i, args := range argSets {
			got, err := ir.Exec(f, args, 1000000)
			if err != nil {
				t.Fatalf("%s args=%v: %v", ref.Name, args, err)
			}
			if !wants[i].Equal(got) {
				t.Fatalf("%s args=%v: fallback changed behaviour\nwant %+v\ngot  %+v",
					ref.Name, args, wants[i], got)
			}
		}
	}
}

// TestFallbackUnusedOnCleanRuns: Fallback must be pure insurance — on a
// healthy pipeline it never triggers and never changes the result.
func TestFallbackUnusedOnCleanRuns(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		plain := testprog.Rand(seed, testprog.DefaultRandOptions())
		rp, err := pipeline.Run(plain, pipeline.Configs[pipeline.ExpLphiABIC])
		if err != nil {
			t.Fatal(err)
		}
		guarded := testprog.Rand(seed, testprog.DefaultRandOptions())
		conf := pipeline.Configs[pipeline.ExpLphiABIC]
		conf.Verify = true
		conf.Fallback = true
		rg, err := pipeline.Run(guarded, conf)
		if err != nil {
			t.Fatal(err)
		}
		if rg.FellBack {
			t.Fatalf("seed %d: clean run fell back: %v", seed, rg.FallbackFrom)
		}
		if plain.String() != guarded.String() || rp.Moves != rg.Moves {
			t.Fatalf("seed %d: guarded run changed the code", seed)
		}
	}
}
