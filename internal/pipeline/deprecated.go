package pipeline

import (
	"outofssa/internal/ir"
	"outofssa/internal/obs"
	"outofssa/internal/ssa"
)

// This file keeps the retired multi-entry Run API alive as thin
// wrappers over Run with functional options. New code should call Run
// directly; these exist so out-of-tree callers keep compiling across
// the redesign and will be removed in a later release.

// RunTraced is Run with an instrumented pass runner attached.
//
// Deprecated: use Run(f, conf, WithExperiment(exp), WithTracer(tr)).
func RunTraced(f *ir.Func, conf Config, exp string, tr obs.Tracer) (*Result, error) {
	return Run(f, conf, WithExperiment(exp), WithTracer(tr))
}

// RunSSA runs the pass composition on a function already in SSA form.
//
// Deprecated: use Run(f, conf, WithSSAInfo(info)).
func RunSSA(f *ir.Func, info *ssa.Info, conf Config) (*Result, error) {
	return Run(f, conf, WithSSAInfo(info))
}

// RunSSATraced is RunSSA driven by the instrumented pass runner.
//
// Deprecated: use Run(f, conf, WithSSAInfo(info), WithExperiment(exp),
// WithTracer(tr)).
func RunSSATraced(f *ir.Func, info *ssa.Info, conf Config, exp string, tr obs.Tracer) (*Result, error) {
	return Run(f, conf, WithSSAInfo(info), WithExperiment(exp), WithTracer(tr))
}
