// Checked pipeline mode: failure containment for the pass runner.
//
// Three failure sources are unified behind one typed error, *PassError:
// ordinary pass errors, panics contained by the per-pass recover, and
// (when Config.Verify is set) invariant violations found by
// internal/verify after a pass body ran. When Config.Fallback is also
// set, Run retries a failed run through the naive out-of-SSA
// translation on a pre-pipeline snapshot and cross-checks the result
// against the snapshot with the ir.Exec oracle, so one misbehaving
// optimization cannot take down a batch run — it costs moves, not
// correctness.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	"outofssa/internal/ir"
	"outofssa/internal/naiveabi"
	"outofssa/internal/obs"
	"outofssa/internal/obs/metrics"
	"outofssa/internal/outofssa/naive"
	"outofssa/internal/verify"
)

// PassError reports which pass of which run failed and why. Cause is
// the pass's own error, a *PanicError for a contained panic, or a
// verifier violation; errors.As / errors.Is see through it.
type PassError struct {
	// Func and Config identify the run, as in obs.Event.
	Func   string
	Config string
	// Pass is the name of the failing pass ("<input>" when the checked
	// entry verification rejected the function before any pass ran).
	Pass string
	// Cause is the underlying failure.
	Cause error
	// Snapshot is the IR statistics at the moment of failure — the
	// reference into the trace stream for post-mortems (failure path
	// only; never taken on success).
	Snapshot obs.IRStat
}

func (e *PassError) Error() string {
	return fmt.Sprintf("%s: pass %q: %v", e.Func, e.Pass, e.Cause)
}

func (e *PassError) Unwrap() error { return e.Cause }

// PanicError wraps a panic recovered from a pass body.
type PanicError struct {
	// Value is the value passed to panic.
	Value any
	// Stack is the goroutine stack at recovery time.
	Stack string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v", e.Value)
}

// runOpts carries the checked-mode switches into the pass runner.
type runOpts struct {
	// verify re-checks IR invariants after every pass and on entry.
	// The entry state is checked at entryStage — whose zero value,
	// verify.StageSSA, is correct for both the configured pipeline and
	// the fallback (both start from a function in SSA form).
	verify     bool
	entryStage verify.Stage
	// faultHook, when non-nil, runs after each pass body and before
	// verification — the seam the fault-injection tests corrupt the IR
	// through.
	faultHook func(pass string, f *ir.Func)
	// metrics, when non-nil, makes the runner record per-pass
	// histograms and counters (see pipeline/metrics.go). Nil keeps the
	// zero-allocation fast path.
	metrics *metrics.Registry
	// ctx, when non-nil, is checked between passes: a done context
	// aborts the run with a *PassError wrapping ctx.Err() (WithContext).
	ctx context.Context
	// execBudget, when positive, bounds each fallback cross-check
	// interpretation instead of crossCheckBudget (WithExecBudget).
	execBudget int
}

// ctxCheck implements the cooperative cancellation point between
// passes: once the run's context is done, the next pass never starts
// and the failure names it. Free when no context is attached.
func ctxCheck(f *ir.Func, exp string, p *pass, opts runOpts) error {
	if opts.ctx == nil {
		return nil
	}
	if err := opts.ctx.Err(); err != nil {
		return &PassError{Func: f.Name, Config: exp, Pass: p.name,
			Cause: err, Snapshot: obs.Snapshot(f)}
	}
	return nil
}

// runOne executes a single pass with panic containment, applies the
// fault hook, verifies the result when asked, and wraps any failure in
// a *PassError. On success it returns nil and allocates nothing.
func runOne(f *ir.Func, exp string, p *pass, opts runOpts) error {
	err := runContained(f, p, opts.faultHook)
	if err == nil && opts.verify {
		if verr := verify.Func(f, p.stage); verr != nil {
			err = fmt.Errorf("verify: %w", verr)
		}
	}
	if err != nil {
		return &PassError{Func: f.Name, Config: exp, Pass: p.name,
			Cause: err, Snapshot: obs.Snapshot(f)}
	}
	return nil
}

// runContained runs the pass body — and the fault hook, which models a
// buggy pass and so shares the pass's failure domain: a panic in either
// is converted into an error instead of unwinding the caller. The
// deferred recover is open-coded by the compiler, so the success path
// stays allocation-free (pinned by TestNilTracerAllocatesNothing).
func runContained(f *ir.Func, p *pass, hook func(string, *ir.Func)) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: string(debug.Stack())}
		}
	}()
	if err := p.run(); err != nil {
		return err
	}
	if hook != nil {
		hook(p.name, f)
	}
	return nil
}

// fallbackRun retries a failed run: it rolls f back to the entry
// snapshot backup, translates out of SSA naively (ignoring pins except
// through the post-pass ABI repair), and cross-checks the executable
// behaviour of the result against the snapshot. backup is consumed.
// The fallback passes run through the same instrumented runner, so a
// tracer sees them as "fallback-*" events in the normal stream.
func fallbackRun(f, backup *ir.Func, exp string, tr obs.Tracer, opts runOpts, r *Result) error {
	// ref is only ever executed (ir.Exec is a pure read), so a snapshot
	// sharing backup's slabs is enough — no copy.
	ref := backup.Snapshot()
	f.RestoreFrom(backup)
	budget := opts.execBudget
	if budget <= 0 {
		budget = crossCheckBudget
	}
	ps := []pass{
		{name: "fallback-out-naive", stage: verify.StagePostSSA, run: func() error {
			st, err := naive.Translate(f)
			if err != nil {
				return err
			}
			r.Naive = st
			return nil
		}, stats: func() any { return r.Naive }},
		{name: "fallback-naive-abi", stage: verify.StagePostSSA, run: func() error {
			r.NaiveABI = naiveabi.Apply(f)
			return nil
		}, stats: func() any { return r.NaiveABI }},
		{name: "fallback-crosscheck", stage: verify.StagePostSSA, run: func() error {
			return crossCheck(ref, f, budget)
		}},
	}
	// Always verified: the fallback exists to produce trustworthy code,
	// so it must clear the same bar it was invoked to enforce. The fault
	// hook is deliberately not forwarded — it already had its run. The
	// caller's context and exec budget carry over, so a dead client also
	// cancels its fallback.
	return runPasses(f, exp, ps, tr,
		runOpts{verify: true, metrics: opts.metrics, ctx: opts.ctx, execBudget: opts.execBudget})
}

// crossCheckArgs are the argument vectors the fallback validates on.
// Extra arguments beyond a function's declared inputs are ignored by
// ir.Exec, missing ones read as zero, so one fixed set covers every
// generated arity.
var crossCheckArgs = [][]int64{
	{0, 0, 0},
	{1, 2, 3},
	{9, 4, 2},
	{17, 5, 1},
}

// crossCheckBudget bounds each oracle execution. Loopy generated
// programs can legitimately exceed it; a budget overrun on the
// reference yields "no verdict" for that argument vector rather than
// a failure. WithExecBudget substitutes a caller budget (deadline-bound
// services shrink it so worst-case oracle work tracks the request
// deadline; the overrun still surfaces as ir.ErrStepBudget).
const crossCheckBudget = 1 << 20

// crossCheck interprets ref (the pre-pipeline snapshot) and got (the
// fallback's output) on the shared argument vectors and fails on the
// first observable difference.
func crossCheck(ref, got *ir.Func, budget int) error {
	for _, args := range crossCheckArgs {
		want, err := ir.Exec(ref, args, budget)
		if errors.Is(err, ir.ErrStepBudget) {
			continue // reference ran over budget: no verdict on these args
		}
		if err != nil {
			return fmt.Errorf("crosscheck: reference failed on %v: %w", args, err)
		}
		// The translated code executes extra copies; doubling keeps a
		// reference that just fit from flagging the output as divergent.
		have, err := ir.Exec(got, args, 2*budget)
		if err != nil {
			return fmt.Errorf("crosscheck: fallback output failed on %v: %w", args, err)
		}
		if !want.Equal(have) {
			return fmt.Errorf("crosscheck: behaviour differs on %v: outputs %v != %v, %d != %d stores",
				args, want.Outputs, have.Outputs, len(want.Stores), len(have.Stores))
		}
	}
	return nil
}
