package pipeline

import (
	"fmt"
	"sort"
	"strings"
)

// Preset returns the canonical Config for a named experiment column of
// the paper's Table 1 (e.g. "Lphi,ABI+C" — the Exp* constants). Unlike
// indexing Configs directly, a typo is an error naming the valid
// presets instead of a zero Config that silently runs the wrong
// pipeline.
func Preset(name string) (Config, error) {
	conf, ok := Configs[name]
	if !ok {
		return Config{}, fmt.Errorf("pipeline: unknown preset %q (have %s)",
			name, strings.Join(Presets(), ", "))
	}
	return conf, nil
}

// Presets returns every preset name, sorted.
func Presets() []string {
	names := make([]string, 0, len(Configs))
	for name := range Configs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
