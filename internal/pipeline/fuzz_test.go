package pipeline_test

import (
	"errors"
	"testing"

	"outofssa/internal/ir"
	"outofssa/internal/pipeline"
	"outofssa/internal/testprog"
)

// fuzzOptions derives generator knobs from the fuzzed size parameter,
// clamped so every generated program stays interpretable within the
// step budget. The mapping is deterministic: a crasher reproduces from
// its two integers alone.
func fuzzOptions(size int64) testprog.RandOptions {
	if size < 0 {
		size = -size
	}
	return testprog.RandOptions{
		MaxDepth: 1 + int(size%3),
		// The generator draws up to three parameters from the variable
		// pool, so Vars must never go below 3.
		Vars:          3 + int((size/3)%5),
		StmtsPerBlock: 1 + int((size/18)%5),
		Calls:         size%2 == 0,
		Stack:         (size/2)%2 == 0,
	}
}

// FuzzPipelineDifferential drives randomly generated programs through
// every experiment configuration in checked mode and differentially
// compares observable behaviour (ir.Exec) before and after: the
// pipeline as its own oracle. Any verifier violation, pass panic, or
// semantic divergence on any configuration is a finding.
//
// Run locally with:
//
//	go test -run='^$' -fuzz=FuzzPipelineDifferential ./internal/pipeline/
func FuzzPipelineDifferential(f *testing.F) {
	f.Add(int64(0), int64(0))
	f.Add(int64(1), int64(17))
	f.Add(int64(7), int64(36))
	f.Add(int64(42), int64(5))
	f.Add(int64(1002), int64(90))

	argSets := [][]int64{{0, 0, 0}, {1, 2, 3}, {9, 4, 2}, {17, 5, 1}}

	f.Fuzz(func(t *testing.T, seed, size int64) {
		opt := fuzzOptions(size)
		ref := testprog.Rand(seed, opt)
		// Reference runs: a budget overrun means "no verdict" for that
		// argument set (nil slot), not a failure.
		wants := make([]*ir.ExecResult, len(argSets))
		any := false
		for i, args := range argSets {
			w, err := ir.Exec(ref, args, 500000)
			if errors.Is(err, ir.ErrStepBudget) {
				continue
			}
			if err != nil {
				t.Fatalf("ref seed=%d size=%d: %v", seed, size, err)
			}
			wants[i] = w
			any = true
		}
		if !any {
			t.Skip("reference exceeds the step budget on every argument set")
		}

		for _, name := range expNames() {
			g := testprog.Rand(seed, opt)
			conf := pipeline.Configs[name]
			conf.Verify = true
			if _, err := pipeline.Run(g, conf); err != nil {
				t.Fatalf("seed=%d size=%d config=%s: %v", seed, size, name, err)
			}
			for _, b := range g.Blocks() {
				for _, in := range b.Instrs() {
					if in.Op() == ir.Phi || in.Op() == ir.ParCopy {
						t.Fatalf("seed=%d size=%d config=%s: %v survived", seed, size, name, in.Op())
					}
				}
			}
			for i, args := range argSets {
				if wants[i] == nil {
					continue
				}
				got, err := ir.Exec(g, args, 1000000)
				if err != nil {
					t.Fatalf("seed=%d size=%d config=%s args=%v: %v", seed, size, name, args, err)
				}
				if !wants[i].Equal(got) {
					t.Fatalf("seed=%d size=%d config=%s args=%v: behaviour diverged\nwant %+v\ngot  %+v",
						seed, size, name, args, wants[i], got)
				}
			}
		}
	})
}
