// Metrics wiring for the pass runner and the batch driver: names,
// HELP strings, and the per-pass recording hook. The registry is
// attached per run with WithMetrics (or per batch with
// WithBatchMetrics); with no registry the runner keeps the nil-tracer
// zero-allocation fast path, pinned by TestNilMetricsAllocatesNothing.
package pipeline

import (
	"errors"
	"strings"

	"outofssa/internal/ir"
	"outofssa/internal/obs"
	"outofssa/internal/obs/metrics"
)

// Metric names follow the DESIGN.md schema laoc_<subsystem>_<name>
// with unit suffixes; label axes are pass, config, counter.
const (
	// MetricRuns counts pipeline runs per experiment configuration.
	MetricRuns = "laoc_pipeline_runs_total"
	// MetricRunWallNS is the whole-run wall-time distribution per
	// experiment configuration (includes instrumentation overhead).
	MetricRunWallNS = "laoc_pipeline_run_wall_ns"
	// MetricPassWallNS / MetricPassAllocBytes are the per-pass
	// wall-time and allocation-volume distributions.
	MetricPassWallNS     = "laoc_pipeline_pass_wall_ns"
	MetricPassAllocBytes = "laoc_pipeline_pass_alloc_bytes"
	// MetricPassErrors counts failed passes (errors, contained panics,
	// checked-mode violations) per pass; MetricPanics the contained
	// panics among them; MetricFallbacks the runs rescued by the naive
	// fallback translation.
	MetricPassErrors = "laoc_pipeline_pass_errors_total"
	MetricPanics     = "laoc_pipeline_panics_total"
	MetricFallbacks  = "laoc_pipeline_fallbacks_total"
	// MetricPassCounters mirrors every flattened pass counter
	// ("<pass>.<Field.Path>" in trace events) onto the registry as
	// {pass=...,counter=...}. Both feeds come from the same Stats
	// structs, so registry totals match `-trace-counters` totals
	// exactly; metrics.SelfCheckPassCounters enforces that in checked
	// mode.
	MetricPassCounters = "laoc_pipeline_pass_counters_total"
	// MetricMaxLive is the derived per-function MAXLIVE distribution
	// (register pressure), computed post-pipeline via the query
	// liveness engine. Deterministic: perfgate compares it exactly.
	MetricMaxLive = "laoc_liveness_maxlive"

	// Batch driver metrics (RunBatch).
	MetricBatchJobs       = "laoc_batch_jobs_total"
	MetricBatchJobWallNS  = "laoc_batch_job_wall_ns"
	MetricBatchInflight   = "laoc_batch_jobs_inflight"
	MetricBatchQueueDepth = "laoc_batch_queue_depth"

	// IR slab-operation metrics. The counters themselves are atomics
	// inside internal/ir (which sits below the registry in the import
	// graph); init below bridges them onto metrics.Default via
	// CounterFunc, so they show up in -metrics-out / laocd exposition
	// without double bookkeeping. laoc_ir_clone_slab_allocs_total /
	// laoc_ir_clones_total is the observed allocations-per-clone ratio
	// the bench-smoke CI gate asserts on.
	MetricIRClones          = "laoc_ir_clones_total"
	MetricIRCloneSlabAllocs = "laoc_ir_clone_slab_allocs_total"
	MetricIRRestores        = "laoc_ir_restores_total"
	MetricIRMarshals        = "laoc_ir_marshal_total"
	MetricIRUnmarshals      = "laoc_ir_unmarshal_total"

	// Copy-on-write snapshot metrics. laoc_ir_cow_materializations_total
	// / laoc_ir_snapshots_total is the copies-materialized ratio — the
	// fraction of snapshots that ever had to privatize storage. The
	// scaling-smoke CI gate asserts a ceiling on it for the mixed
	// throughput workload; read-only fan-outs keep it at zero.
	MetricIRSnapshots          = "laoc_ir_snapshots_total"
	MetricIRSnapshotSlabAllocs = "laoc_ir_snapshot_slab_allocs_total"
	MetricIRCOWMaterialized    = "laoc_ir_cow_materializations_total"
	MetricIRCOWSlabCopies      = "laoc_ir_cow_slab_copies_total"
	MetricIRCOWAdoptions       = "laoc_ir_cow_adoptions_total"
)

func init() {
	d := metrics.Default
	d.CounterFunc(MetricIRClones, func() int64 { return ir.Stats().Clones })
	d.CounterFunc(MetricIRCloneSlabAllocs, func() int64 { return ir.Stats().CloneSlabAllocs })
	d.CounterFunc(MetricIRRestores, func() int64 { return ir.Stats().Restores })
	d.CounterFunc(MetricIRMarshals, func() int64 { return ir.Stats().MarshalsV2 }, metrics.L("schema", "v2"))
	d.CounterFunc(MetricIRMarshals, func() int64 { return ir.Stats().MarshalsV1 }, metrics.L("schema", "v1"))
	d.CounterFunc(MetricIRMarshals, func() int64 { return ir.Stats().MarshalsB1 }, metrics.L("schema", "b1"))
	d.CounterFunc(MetricIRUnmarshals, func() int64 { return ir.Stats().UnmarshalsV2 }, metrics.L("schema", "v2"))
	d.CounterFunc(MetricIRUnmarshals, func() int64 { return ir.Stats().UnmarshalsV1 }, metrics.L("schema", "v1"))
	d.CounterFunc(MetricIRUnmarshals, func() int64 { return ir.Stats().UnmarshalsB1 }, metrics.L("schema", "b1"))
	d.CounterFunc(MetricIRSnapshots, func() int64 { return ir.Stats().Snapshots })
	d.CounterFunc(MetricIRSnapshotSlabAllocs, func() int64 { return ir.Stats().SnapshotSlabAllocs })
	d.CounterFunc(MetricIRCOWMaterialized, func() int64 { return ir.Stats().COWMaterializations })
	d.CounterFunc(MetricIRCOWSlabCopies, func() int64 { return ir.Stats().COWSlabCopies })
	d.CounterFunc(MetricIRCOWAdoptions, func() int64 { return ir.Stats().COWAdoptions })
	d.SetHelp(MetricIRSnapshots, "ir.Func.Snapshot calls (copy-on-write snapshots; chunk copies only, flat slabs deferred).")
	d.SetHelp(MetricIRSnapshotSlabAllocs, "Up-front heap allocations performed by Snapshot, summed (O(arena chunks), no flat slabs).")
	d.SetHelp(MetricIRCOWMaterialized, "Funcs that faulted at least one shared slab into private storage; divide by laoc_ir_snapshots_total for the copies-materialized ratio.")
	d.SetHelp(MetricIRCOWSlabCopies, "Individual deferred slab copies performed by copy-on-write faults.")
	d.SetHelp(MetricIRCOWAdoptions, "Mutations that adopted the family's shared storage copy-free (last reader standing).")
	d.SetHelp(MetricIRClones, "ir.Func.Clone calls (slab memcpy clones).")
	d.SetHelp(MetricIRCloneSlabAllocs, "Heap allocations performed by Clone, summed; divide by laoc_ir_clones_total for the per-clone ratio (O(arena chunks)).")
	d.SetHelp(MetricIRRestores, "ir.Func.RestoreFrom copy-backs (snapshot rollbacks).")
	d.SetHelp(MetricIRMarshals, "IR documents encoded, by wire schema (v2 = arena fast path).")
	d.SetHelp(MetricIRUnmarshals, "IR documents decoded, by wire schema.")
}

// WithMetrics attaches a metrics registry to one Run call: the pass
// runner records per-pass wall/alloc histograms, error/panic/fallback
// counters, the flattened pass-counter mirror, and the derived MAXLIVE
// histogram. A nil registry is the disabled fast path — identical to
// not passing the option.
func WithMetrics(reg *metrics.Registry) Option {
	return func(rc *runConfig) {
		rc.metrics = reg
		registerHelp(reg)
	}
}

func registerHelp(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	reg.SetHelp(MetricRuns, "Pipeline runs started, by experiment configuration.")
	reg.SetHelp(MetricRunWallNS, "Whole-run wall time in nanoseconds, by experiment configuration.")
	reg.SetHelp(MetricPassWallNS, "Per-pass wall time in nanoseconds.")
	reg.SetHelp(MetricPassAllocBytes, "Per-pass heap allocation volume in bytes (runtime.MemStats TotalAlloc delta).")
	reg.SetHelp(MetricPassErrors, "Failed passes: errors, contained panics, checked-mode violations.")
	reg.SetHelp(MetricPanics, "Panics contained by the per-pass recover.")
	reg.SetHelp(MetricFallbacks, "Runs that fell back to the naive out-of-SSA translation.")
	reg.SetHelp(MetricPassCounters, "Flattened pass counters, mirroring the trace-event counter totals.")
	reg.SetHelp(MetricMaxLive, "Per-function MAXLIVE (maximum simultaneously live values) after the pipeline.")
	reg.SetHelp(MetricBatchJobs, "Batch jobs completed.")
	reg.SetHelp(MetricBatchJobWallNS, "Per-job wall time in nanoseconds (build + run).")
	reg.SetHelp(MetricBatchInflight, "Batch jobs currently executing.")
	reg.SetHelp(MetricBatchQueueDepth, "Batch jobs not yet claimed by a worker.")
}

// recordPassMetrics feeds one completed pass into the registry. The
// counters map is the same flatten the trace event carries, so the
// registry mirror and -trace-counters totals agree by construction.
func recordPassMetrics(reg *metrics.Registry, pass string, wallNS int64, allocBytes uint64, counters map[string]int64, err error) {
	reg.Histogram(MetricPassWallNS, metrics.L("pass", pass)).Observe(wallNS)
	reg.Histogram(MetricPassAllocBytes, metrics.L("pass", pass)).Observe(int64(allocBytes))
	for _, k := range obs.SortedKeys(counters) {
		reg.Counter(MetricPassCounters,
			metrics.L("pass", pass),
			metrics.L("counter", strings.TrimPrefix(k, pass+"."))).Add(counters[k])
	}
	if err != nil {
		reg.Counter(MetricPassErrors, metrics.L("pass", pass)).Inc()
		var pa *PanicError
		if errors.As(err, &pa) {
			reg.Counter(MetricPanics).Inc()
		}
	}
}
