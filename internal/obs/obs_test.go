package obs_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"outofssa/internal/obs"
)

func TestCountersFlattening(t *testing.T) {
	type inner struct {
		Hits   int64
		Misses int64
	}
	type stats struct {
		Count   int
		Flag    bool
		Name    string // non-integer: skipped
		Nested  inner
		Pointer *inner
		hidden  int
	}
	got := obs.Counters("p", &stats{
		Count:   3,
		Flag:    true,
		Name:    "x",
		Nested:  inner{Hits: 7, Misses: 1},
		Pointer: &inner{Hits: 9},
		hidden:  5,
	})
	want := map[string]int64{
		"p.Count":          3,
		"p.Flag":           1,
		"p.Nested.Hits":    7,
		"p.Nested.Misses":  1,
		"p.Pointer.Hits":   9,
		"p.Pointer.Misses": 0,
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %d, want %d", k, got[k], v)
		}
	}
}

func TestCountersNilSafety(t *testing.T) {
	if got := obs.Counters("p", nil); got != nil {
		t.Fatalf("Counters(nil) = %v", got)
	}
	var sp *struct{ N int }
	if got := obs.Counters("p", sp); got != nil {
		t.Fatalf("Counters(nil ptr) = %v", got)
	}
	if got := obs.Counters("p", 42); got != nil {
		t.Fatalf("Counters(non-struct) = %v", got)
	}
}

func TestMultiFiltersNil(t *testing.T) {
	if obs.Multi() != nil {
		t.Fatal("Multi() should be nil")
	}
	if obs.Multi(nil, nil) != nil {
		t.Fatal("Multi(nil, nil) should be nil")
	}
	rec := &obs.Recorder{}
	if got := obs.Multi(nil, rec); got != obs.Tracer(rec) {
		t.Fatalf("Multi(nil, rec) = %T, want the recorder itself", got)
	}
	// Two live tracers: both must receive every event.
	r1, r2 := &obs.Recorder{}, &obs.Recorder{}
	m := obs.Multi(r1, r2)
	m.RunStart("f", "c", obs.IRStat{})
	m.PassStart("f", "c", "p")
	m.PassEnd(&obs.Event{Func: "f", Config: "c", Pass: "p"})
	m.RunEnd("f", "c", obs.IRStat{}, 1)
	for i, r := range []*obs.Recorder{r1, r2} {
		if len(r.Runs) != 1 || !r.Runs[0].Ended || len(r.Runs[0].Events) != 1 {
			t.Fatalf("tracer %d missed events: %+v", i, r.Runs)
		}
	}
}

func TestSummaryRendersTable(t *testing.T) {
	var buf bytes.Buffer
	s := obs.NewSummary(&buf)
	s.Verbose = true
	s.RunStart("fir", "Lphi+C", obs.IRStat{Moves: 5})
	s.PassStart("fir", "Lphi+C", "ssaopt")
	s.PassEnd(&obs.Event{
		Func: "fir", Config: "Lphi+C", Pass: "ssaopt",
		WallNS: 1500, AllocBytes: 2048,
		Before:   obs.IRStat{Moves: 5, Instrs: 30, Phis: 2},
		After:    obs.IRStat{Moves: 3, Instrs: 28, Phis: 2},
		Counters: map[string]int64{"ssaopt.Rounds": 2},
	})
	s.RunEnd("fir", "Lphi+C", obs.IRStat{Moves: 3}, 2000)
	out := buf.String()
	for _, want := range []string{"fir [Lphi+C]", "ssaopt", "-2", "ssaopt.Rounds"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := obs.NewJSONL(&buf)
	j.RunStart("f", "c", obs.IRStat{Moves: 1})
	j.PassEnd(&obs.Event{Func: "f", Config: "c", Pass: "p", Seq: 0,
		Counters: map[string]int64{"p.N": 4}})
	j.RunEnd("f", "c", obs.IRStat{}, 10)
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 3 {
		t.Fatalf("want 3 lines, got %d:\n%s", len(lines), buf.String())
	}
	types := []string{"run_start", "pass", "run_end"}
	for i, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if rec["type"] != types[i] {
			t.Fatalf("line %d: type %v, want %s", i, rec["type"], types[i])
		}
	}
	var pass struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(lines[1], &pass); err != nil {
		t.Fatal(err)
	}
	if pass.Counters["p.N"] != 4 {
		t.Fatalf("counters did not round-trip: %v", pass.Counters)
	}
}

func TestNopDiscards(t *testing.T) {
	// Must simply not panic.
	obs.Nop.RunStart("f", "c", obs.IRStat{})
	obs.Nop.PassStart("f", "c", "p")
	obs.Nop.PassEnd(&obs.Event{})
	obs.Nop.RunEnd("f", "c", obs.IRStat{}, 0)
}
