package obs

import (
	"fmt"
	"io"
	"time"
)

// Summary is a Tracer rendering one human-readable per-pass table per
// run: wall time, allocation volume, and the move/instruction/φ/pin
// deltas each pass caused. Attach it with laoc -trace.
type Summary struct {
	w io.Writer
	// Verbose additionally prints the pass-specific counters under each
	// run's table.
	Verbose bool

	events []*Event
}

// NewSummary returns a summary sink writing to w.
func NewSummary(w io.Writer) *Summary { return &Summary{w: w} }

func (s *Summary) RunStart(fn, config string, before IRStat) { s.events = s.events[:0] }

func (s *Summary) PassStart(fn, config, pass string) {}

func (s *Summary) PassEnd(ev *Event) { s.events = append(s.events, ev) }

func (s *Summary) RunEnd(fn, config string, after IRStat, wallNS int64) {
	label := fn
	if config != "" {
		label += " [" + config + "]"
	}
	fmt.Fprintf(s.w, "; trace %s: %d passes, %v total\n",
		label, len(s.events), time.Duration(wallNS).Round(time.Microsecond))
	fmt.Fprintf(s.w, ";   %-18s %10s %10s %7s %7s %7s %7s %6s %6s\n",
		"pass", "wall", "alloc", "moves", "Δmoves", "instrs", "Δinstr", "phis", "pins")
	for _, ev := range s.events {
		fmt.Fprintf(s.w, ";   %-18s %10v %10s %7d %+7d %7d %+7d %6d %6d\n",
			ev.Pass,
			time.Duration(ev.WallNS).Round(time.Microsecond),
			sizeOf(ev.AllocBytes),
			ev.After.Moves, ev.After.Moves-ev.Before.Moves,
			ev.After.Instrs, ev.After.Instrs-ev.Before.Instrs,
			ev.After.Phis, ev.After.Pins)
	}
	if s.Verbose {
		for _, ev := range s.events {
			if len(ev.Counters) == 0 {
				continue
			}
			for _, k := range SortedKeys(ev.Counters) {
				fmt.Fprintf(s.w, ";     %-40s %10d\n", k, ev.Counters[k])
			}
		}
	}
}

// sizeOf renders a byte count compactly (B/kB/MB).
func sizeOf(n uint64) string {
	switch {
	case n >= 10*1024*1024:
		return fmt.Sprintf("%dMB", n/(1024*1024))
	case n >= 10*1024:
		return fmt.Sprintf("%dkB", n/1024)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
