package obs

import (
	"reflect"
	"sort"
)

// SortedKeys returns the keys of a counter map in sorted order. Every
// human- or machine-readable emission of a counter map (trace summary
// verbose listing, ssabench -trace-counters dump, metrics mirrors)
// ranges over this instead of the map directly, so repeated runs
// produce byte-identical output regardless of map iteration order.
func SortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Counters flattens the exported integer fields of a pass's Stats
// struct into a "prefix.Field" -> value map, recursing into nested
// structs (so interference query counters embedded in a pass's stats
// appear as e.g. "pinning-phi.Interference.KillQueries"). Non-integer
// fields are skipped; nil pointers contribute nothing. This runs only
// on the traced path, so the reflection cost never touches the default
// pipeline.
func Counters(prefix string, stats any) map[string]int64 {
	if stats == nil {
		return nil
	}
	v := reflect.ValueOf(stats)
	for v.Kind() == reflect.Pointer {
		if v.IsNil() {
			return nil
		}
		v = v.Elem()
	}
	if v.Kind() != reflect.Struct {
		return nil
	}
	dst := make(map[string]int64)
	addCounters(dst, prefix, v)
	if len(dst) == 0 {
		return nil
	}
	return dst
}

func addCounters(dst map[string]int64, prefix string, v reflect.Value) {
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		ft := t.Field(i)
		if !ft.IsExported() {
			continue
		}
		fv := v.Field(i)
		for fv.Kind() == reflect.Pointer {
			if fv.IsNil() {
				fv = reflect.Value{}
				break
			}
			fv = fv.Elem()
		}
		if !fv.IsValid() {
			continue
		}
		name := prefix + "." + ft.Name
		switch fv.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			dst[name] = fv.Int()
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			dst[name] = int64(fv.Uint())
		case reflect.Bool:
			if fv.Bool() {
				dst[name] = 1
			} else {
				dst[name] = 0
			}
		case reflect.Struct:
			addCounters(dst, name, fv)
		}
	}
}
