package metrics

import (
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): one `# TYPE` (and optional `# HELP`) header
// per metric family, counters and gauges as single samples, histograms
// as cumulative `_bucket{le=...}` series plus `_sum` and `_count`. The
// output is fully deterministic — the snapshot is sorted and bucket
// bounds are a pure function of the layout — which is what the golden
// test in promtext_test.go pins.
func WritePrometheus(w io.Writer, s *Snapshot) error {
	pw := &errWriter{w: w}
	seen := map[string]bool{}
	header := func(name, kind string) {
		if seen[name] {
			return
		}
		seen[name] = true
		if h := s.Help[name]; h != "" {
			fmt.Fprintf(pw, "# HELP %s %s\n", name, escapeHelp(h))
		}
		fmt.Fprintf(pw, "# TYPE %s %s\n", name, kind)
	}

	for _, c := range s.Counters {
		header(c.Name, "counter")
		fmt.Fprintf(pw, "%s%s %d\n", c.Name, renderLabels(c.Labels, ""), c.Value)
	}
	for _, g := range s.Gauges {
		header(g.Name, "gauge")
		fmt.Fprintf(pw, "%s%s %d\n", g.Name, renderLabels(g.Labels, ""), g.Value)
	}
	for _, h := range s.Histograms {
		header(h.Name, "histogram")
		var cum uint64
		for _, b := range h.Buckets {
			cum += b.Count
			fmt.Fprintf(pw, "%s_bucket%s %d\n",
				h.Name, renderLabels(h.Labels, fmt.Sprintf("%d", b.Le)), cum)
		}
		fmt.Fprintf(pw, "%s_bucket%s %d\n", h.Name, renderLabels(h.Labels, "+Inf"), h.Count)
		fmt.Fprintf(pw, "%s_sum%s %d\n", h.Name, renderLabels(h.Labels, ""), h.Sum)
		fmt.Fprintf(pw, "%s_count%s %d\n", h.Name, renderLabels(h.Labels, ""), h.Count)
	}
	return pw.err
}

// renderLabels renders `{k="v",...}` with le appended last when
// non-empty (the histogram bucket dimension), or "" when there is
// nothing to render.
func renderLabels(labels []Label, le string) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// errWriter latches the first write error so the render loop stays
// straight-line.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, nil
}
