package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Log-linear bucketing (the HdrHistogram layout): each power-of-two
// octave is split into histSub linear sub-buckets, so the relative
// width of any bucket is at most 1/histSub = 6.25%. Values below
// histSub get exact unit buckets. The whole int64 range fits in
// histBuckets fixed cells, so a Histogram is one flat array — no
// allocation on Observe, trivially mergeable, and the bucket bounds are
// a pure function of the index (deterministic exposition).
const (
	histSubBits = 4
	histSub     = 1 << histSubBits // linear sub-buckets per octave
	// Octaves cover exponents histSubBits..62 (the top bit of a
	// non-negative int64 is bit 62 at most), plus the exact region.
	histBuckets = histSub + (63-histSubBits)*histSub

	histMinInit = math.MaxInt64
	histMaxInit = math.MinInt64
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < histSub {
		return int(u)
	}
	exp := bits.Len64(u) - 1 // >= histSubBits
	sub := (u >> (uint(exp) - histSubBits)) - histSub
	return histSub + (exp-histSubBits)*histSub + int(sub)
}

// bucketUpper returns the inclusive upper bound of bucket i (the
// Prometheus `le` value).
func bucketUpper(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	oct := (i - histSub) / histSub
	sub := (i - histSub) % histSub
	exp := oct + histSubBits
	width := int64(1) << (uint(exp) - histSubBits)
	return int64(1)<<uint(exp) + int64(sub+1)*width - 1
}

// bucketLower returns the inclusive lower bound of bucket i.
func bucketLower(i int) int64 {
	if i == 0 {
		return 0
	}
	return bucketUpper(i-1) + 1
}

// Histogram is a mergeable log-linear distribution of int64
// observations (nanoseconds, bytes, live-variable counts). Negative
// observations clamp to zero. All updates are atomic; Observe never
// allocates; the nil Histogram is a no-op (disabled-registry contract).
type Histogram struct {
	count int64
	sum   int64
	minv  int64 // histMinInit while empty
	maxv  int64 // histMaxInit while empty
	det   int32 // 1 when marked deterministic (see SetDeterministic)
	cells [histBuckets]uint64
}

// Observe records v.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	atomic.AddInt64(&h.count, 1)
	atomic.AddInt64(&h.sum, v)
	atomicMin(&h.minv, v)
	atomicMax(&h.maxv, v)
	atomic.AddUint64(&h.cells[bucketIndex(v)], 1)
}

// SetDeterministic marks the histogram as a distribution of a
// deterministic quantity: identical serial runs produce identical
// count, sum, min, max and buckets, so cmd/perfgate may compare all of
// them exactly instead of only the observation count.
func (h *Histogram) SetDeterministic() {
	if h != nil {
		atomic.StoreInt32(&h.det, 1)
	}
}

// Merge folds o into h (both may be receiving concurrent observations;
// the merge is cell-wise atomic). Merging is associative and
// commutative — the batch driver's per-shard histograms can be folded
// in any order with the same result.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	atomic.AddInt64(&h.count, atomic.LoadInt64(&o.count))
	atomic.AddInt64(&h.sum, atomic.LoadInt64(&o.sum))
	if om := atomic.LoadInt64(&o.minv); om != histMinInit {
		atomicMin(&h.minv, om)
	}
	if om := atomic.LoadInt64(&o.maxv); om != histMaxInit {
		atomicMax(&h.maxv, om)
	}
	for i := range o.cells {
		if n := atomic.LoadUint64(&o.cells[i]); n != 0 {
			atomic.AddUint64(&h.cells[i], n)
		}
	}
}

func atomicMin(p *int64, v int64) {
	for {
		cur := atomic.LoadInt64(p)
		if v >= cur {
			return
		}
		if atomic.CompareAndSwapInt64(p, cur, v) {
			return
		}
	}
}

func atomicMax(p *int64, v int64) {
	for {
		cur := atomic.LoadInt64(p)
		if v <= cur {
			return
		}
		if atomic.CompareAndSwapInt64(p, cur, v) {
			return
		}
	}
}

// snap captures the histogram into an immutable view, keeping only
// non-empty buckets.
func (h *Histogram) snap(name string, labels []Label) HistogramSnap {
	s := HistogramSnap{
		Name:          name,
		Labels:        labels,
		Count:         atomic.LoadInt64(&h.count),
		Sum:           atomic.LoadInt64(&h.sum),
		Deterministic: atomic.LoadInt32(&h.det) == 1,
	}
	if mn := atomic.LoadInt64(&h.minv); mn != histMinInit {
		s.Min = mn
	}
	if mx := atomic.LoadInt64(&h.maxv); mx != histMaxInit {
		s.Max = mx
	}
	for i := range h.cells {
		if n := atomic.LoadUint64(&h.cells[i]); n != 0 {
			s.Buckets = append(s.Buckets, Bucket{Le: bucketUpper(i), Count: n})
		}
	}
	return s
}

// HistogramSnap is the immutable view of one histogram cell.
type HistogramSnap struct {
	Name   string
	Labels []Label
	// Count and Sum total the observations; Min and Max bound them
	// exactly (both 0 when Count is 0).
	Count, Sum, Min, Max int64
	// Deterministic mirrors SetDeterministic for the perf gate.
	Deterministic bool
	// Buckets are the non-empty cells in ascending bound order; Le is
	// the inclusive upper bound, Count the (non-cumulative) cell count.
	Buckets []Bucket
}

// Bucket is one non-empty histogram cell.
type Bucket struct {
	Le    int64
	Count uint64
}

// Quantile estimates the q-quantile (0 < q <= 1) from the buckets: the
// upper bound of the bucket containing the ceil(q*Count)-th smallest
// observation, clamped to [Min, Max]. The estimate therefore never errs
// below the true quantile's bucket lower bound nor above its upper
// bound — a relative error of at most 1/16 past the exact region.
// Returns 0 on an empty histogram.
func (s *HistogramSnap) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum int64
	for _, b := range s.Buckets {
		cum += int64(b.Count)
		if cum >= rank {
			v := b.Le
			if v > s.Max {
				v = s.Max
			}
			if v < s.Min {
				v = s.Min
			}
			return v
		}
	}
	return s.Max
}
