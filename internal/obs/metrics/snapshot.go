package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"outofssa/internal/obs"
)

// FileSnapshot is the JSON snapshot schema — what `ssabench
// -metrics-out` writes, what the committed perf baseline
// (BENCH_metrics_baseline.json) contains, and what cmd/perfgate diffs.
// The schema is append-only like the JSONL trace schema: consumers must
// tolerate new keys. Everything is emitted in sorted order and carries
// no timestamps, so the deterministic subset (counters, deterministic
// histograms) of two identical serial runs is byte-identical.
type FileSnapshot struct {
	Schema     string          `json:"schema"`
	Host       obs.Host        `json:"host"`
	Counters   []FileCounter   `json:"counters,omitempty"`
	Gauges     []FileGauge     `json:"gauges,omitempty"`
	Histograms []FileHistogram `json:"histograms,omitempty"`
}

// SchemaV1 identifies the current snapshot schema.
const SchemaV1 = "laoc-metrics-v1"

// FileCounter is one counter cell in the file schema.
type FileCounter struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
}

// FileGauge is one gauge cell in the file schema.
type FileGauge struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
}

// FileHistogram is one histogram cell in the file schema, with
// precomputed quantile estimates for human consumption (the buckets
// remain the ground truth).
type FileHistogram struct {
	Name          string            `json:"name"`
	Labels        map[string]string `json:"labels,omitempty"`
	Deterministic bool              `json:"deterministic,omitempty"`
	Count         int64             `json:"count"`
	Sum           int64             `json:"sum"`
	Min           int64             `json:"min"`
	Max           int64             `json:"max"`
	P50           int64             `json:"p50"`
	P90           int64             `json:"p90"`
	P99           int64             `json:"p99"`
	Buckets       []FileBucket      `json:"buckets,omitempty"`
}

// FileBucket is one non-empty bucket: inclusive upper bound and
// non-cumulative count.
type FileBucket struct {
	Le    int64  `json:"le"`
	Count uint64 `json:"count"`
}

func labelMap(ls []Label) map[string]string {
	if len(ls) == 0 {
		return nil
	}
	m := make(map[string]string, len(ls))
	for _, l := range ls {
		m[l.Key] = l.Value
	}
	return m
}

// File converts an in-memory snapshot into the file schema, stamping
// the host identity.
func (s *Snapshot) File(host obs.Host) *FileSnapshot {
	fs := &FileSnapshot{Schema: SchemaV1, Host: host}
	for _, c := range s.Counters {
		fs.Counters = append(fs.Counters, FileCounter{Name: c.Name, Labels: labelMap(c.Labels), Value: c.Value})
	}
	for _, g := range s.Gauges {
		fs.Gauges = append(fs.Gauges, FileGauge{Name: g.Name, Labels: labelMap(g.Labels), Value: g.Value})
	}
	for i := range s.Histograms {
		h := &s.Histograms[i]
		fh := FileHistogram{
			Name: h.Name, Labels: labelMap(h.Labels), Deterministic: h.Deterministic,
			Count: h.Count, Sum: h.Sum, Min: h.Min, Max: h.Max,
			P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
		}
		for _, b := range h.Buckets {
			fh.Buckets = append(fh.Buckets, FileBucket{Le: b.Le, Count: b.Count})
		}
		fs.Histograms = append(fs.Histograms, fh)
	}
	return fs
}

// WriteJSON writes the snapshot in the file schema, indented for
// readability (the baseline is committed to git and reviewed in diffs).
func WriteJSON(w io.Writer, s *Snapshot, host obs.Host) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.File(host))
}

// ReadFile loads a file-schema snapshot and validates its schema tag.
func ReadFile(path string) (*FileSnapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var fs FileSnapshot
	if err := json.Unmarshal(data, &fs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if fs.Schema != SchemaV1 {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, fs.Schema, SchemaV1)
	}
	return &fs, nil
}
