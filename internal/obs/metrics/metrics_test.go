package metrics

import (
	"bytes"
	"reflect"
	"testing"
)

// TestDisabledRegistryAllocatesNothing pins the disabled-path contract:
// a nil *Registry hands out nil instruments and every call — lookup
// included — performs zero heap allocations. Note the pin covers only
// label-less lookups: a labeled lookup materializes the variadic label
// slice before the receiver's nil check can run, which is exactly why
// instrumentation sites guard labeled calls with `if reg != nil`.
func TestDisabledRegistryAllocatesNothing(t *testing.T) {
	var reg *Registry
	c := reg.Counter("laoc_test_total")
	g := reg.Gauge("laoc_test_depth")
	h := reg.Histogram("laoc_test_ns")
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry handed out non-nil instruments: %v %v %v", c, g, h)
	}
	n := testing.AllocsPerRun(200, func() {
		reg.Counter("laoc_test_total").Inc()
		reg.Counter("laoc_test_total").Add(3)
		reg.Gauge("laoc_test_depth").Set(7)
		reg.Histogram("laoc_test_ns").Observe(123456)
		reg.SetHelp("laoc_test_total", "ignored")
		c.Inc()
		c.Add(2)
		g.Dec()
		h.Observe(99)
		h.SetDeterministic()
		h.Merge(h)
		_ = c.Value() + g.Value()
	})
	if n != 0 {
		t.Fatalf("disabled metrics path allocated %.1f times per run, want 0", n)
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("laoc_x_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if c2 := r.Counter("laoc_x_total"); c2 != c {
		t.Fatalf("same (name, labels) returned a different cell")
	}
	c.Reset()
	if got := c.Value(); got != 0 {
		t.Fatalf("counter after Reset = %d, want 0", got)
	}

	g := r.Gauge("laoc_x_depth")
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

// TestLabelOrderCanonical checks that label order at the call site does
// not split cells: (a=1, b=2) and (b=2, a=1) are the same cell.
func TestLabelOrderCanonical(t *testing.T) {
	r := New()
	c1 := r.Counter("laoc_l_total", L("a", "1"), L("b", "2"))
	c2 := r.Counter("laoc_l_total", L("b", "2"), L("a", "1"))
	if c1 != c2 {
		t.Fatalf("label permutations produced distinct cells")
	}
	c3 := r.Counter("laoc_l_total", L("a", "1"), L("b", "3"))
	if c3 == c1 {
		t.Fatalf("distinct label values shared a cell")
	}
}

func TestKindClashPanics(t *testing.T) {
	r := New()
	r.Counter("laoc_clash")
	defer func() {
		if recover() == nil {
			t.Fatalf("requesting a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("laoc_clash")
}

func TestCounterFunc(t *testing.T) {
	r := New()
	v := int64(42)
	r.CounterFunc("laoc_fn_total", func() int64 { return v })
	s := r.Snapshot()
	if len(s.Counters) != 1 || s.Counters[0].Value != 42 {
		t.Fatalf("snapshot = %+v, want one counter valued 42", s.Counters)
	}
	v = 43
	if s2 := r.Snapshot(); s2.Counters[0].Value != 43 {
		t.Fatalf("CounterFunc not re-read at snapshot time: %d", s2.Counters[0].Value)
	}
}

// TestSnapshotDeterministic pins the ordering contract: cells are
// sorted by (name, labels) regardless of registration order, and two
// renders of the same state are byte-identical.
func TestSnapshotDeterministic(t *testing.T) {
	build := func(order []int) *Registry {
		r := New()
		cells := []func(){
			func() { r.Counter("laoc_b_total", L("pass", "z")).Add(2) },
			func() { r.Counter("laoc_b_total", L("pass", "a")).Add(1) },
			func() { r.Counter("laoc_a_total").Add(3) },
			func() { r.Gauge("laoc_g").Set(9) },
			func() { r.Histogram("laoc_h_ns").Observe(17) },
		}
		for _, i := range order {
			cells[i]()
		}
		return r
	}
	r1 := build([]int{0, 1, 2, 3, 4})
	r2 := build([]int{4, 3, 2, 1, 0})

	s1, s2 := r1.Snapshot(), r2.Snapshot()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("snapshots differ by registration order:\n%+v\n%+v", s1, s2)
	}
	var b1, b2 bytes.Buffer
	if err := WritePrometheus(&b1, s1); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&b2, s2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("prometheus renders differ:\n%s\n---\n%s", b1.String(), b2.String())
	}
	wantNames := []string{"laoc_a_total", "laoc_b_total", "laoc_b_total"}
	for i, c := range s1.Counters {
		if c.Name != wantNames[i] {
			t.Fatalf("counter[%d] = %s, want %s", i, c.Name, wantNames[i])
		}
	}
	if s1.Counters[1].Labels[0].Value != "a" || s1.Counters[2].Labels[0].Value != "z" {
		t.Fatalf("label cells not sorted: %+v", s1.Counters[1:])
	}
}
