package metrics

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// goldenRegistry builds a fixed registry exercising every exposition
// shape: an unlabelled counter, a labelled counter family, a gauge, a
// multi-bucket histogram, and label-value escaping.
func goldenRegistry() *Registry {
	r := New()
	r.SetHelp("laoc_demo_runs_total", "Demo runs.")
	r.SetHelp("laoc_demo_pass_wall_ns", "Demo pass wall time.")
	r.Counter("laoc_demo_runs_total").Add(3)
	r.Counter("laoc_demo_moves_total", L("pass", "pinning-phi")).Add(41)
	r.Counter("laoc_demo_moves_total", L("pass", `odd"name\`)).Add(1)
	r.Gauge("laoc_demo_jobs_inflight").Set(2)
	h := r.Histogram("laoc_demo_pass_wall_ns", L("pass", "out-leung"))
	for _, v := range []int64{0, 3, 15, 16, 17, 100, 100, 5000} {
		h.Observe(v)
	}
	return r
}

// TestPrometheusGolden pins the exposition byte-for-byte against
// testdata/promtext.golden (regenerate with `go test -run Golden
// -update ./internal/obs/metrics`).
func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, goldenRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "promtext.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("prometheus exposition drifted from golden:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}

// TestPrometheusValid lint-checks the format rules on the real
// registry shapes: every non-comment line is `name{labels} value`,
// histogram buckets are cumulative and le-sorted, _count equals the
// +Inf bucket, and each family has exactly one TYPE header.
func TestPrometheusValid(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, goldenRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	sample := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (-?\d+)$`)
	types := map[string]int{}
	var lastCum int64 = -1
	var lastName string
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			types[f[2]]++
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := sample.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line: %q", line)
		}
		name := m[1]
		v, _ := strconv.ParseInt(m[3], 10, 64)
		if strings.HasSuffix(name, "_bucket") {
			if name != lastName {
				lastCum = -1
			}
			if v < lastCum {
				t.Fatalf("bucket series not cumulative at %q: %d after %d", line, v, lastCum)
			}
			lastCum = v
		}
		lastName = name
	}
	for fam, n := range types {
		if n != 1 {
			t.Fatalf("family %s has %d TYPE headers", fam, n)
		}
	}
	if len(types) != 4 {
		t.Fatalf("expected 4 families, saw %d: %v", len(types), types)
	}
}
