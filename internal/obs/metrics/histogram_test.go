package metrics

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// TestBucketLayout checks the pure-function bucket geometry: indexes
// round-trip, buckets tile the non-negative range contiguously, and the
// relative width past the exact region is at most 1/histSub.
func TestBucketLayout(t *testing.T) {
	for i := 1; i < histBuckets; i++ {
		if got := bucketLower(i); got != bucketUpper(i-1)+1 {
			t.Fatalf("bucket %d: lower %d, want %d (upper of %d is %d)",
				i, got, bucketUpper(i-1)+1, i-1, bucketUpper(i-1))
		}
	}
	vals := []int64{0, 1, 15, 16, 17, 31, 32, 1000, 1 << 20, 1<<40 + 12345, math.MaxInt64}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		vals = append(vals, rng.Int63())
	}
	for _, v := range vals {
		i := bucketIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		lo, hi := bucketLower(i), bucketUpper(i)
		if v < lo || v > hi {
			t.Fatalf("value %d landed in bucket %d = [%d, %d]", v, i, lo, hi)
		}
		if v >= histSub {
			if width := hi - lo + 1; float64(width) > float64(lo)/histSub+1 {
				t.Fatalf("bucket %d = [%d, %d] wider than %.2f%% of its base", i, lo, hi, 100.0/histSub)
			}
		} else if lo != v || hi != v {
			t.Fatalf("exact-region value %d got bucket [%d, %d]", v, lo, hi)
		}
	}
	if got := bucketIndex(math.MaxInt64); got != histBuckets-1 {
		t.Fatalf("MaxInt64 bucket = %d, want the top bucket %d", got, histBuckets-1)
	}
	if got := bucketUpper(histBuckets - 1); got != math.MaxInt64 {
		t.Fatalf("top bucket upper = %d, want MaxInt64", got)
	}
}

func TestHistogramZeroObservations(t *testing.T) {
	var h Histogram
	h.minv, h.maxv = histMinInit, histMaxInit
	s := h.snap("laoc_empty_ns", nil)
	if s.Count != 0 || s.Sum != 0 || s.Min != 0 || s.Max != 0 || len(s.Buckets) != 0 {
		t.Fatalf("empty histogram snap = %+v, want all-zero", s)
	}
	if q := s.Quantile(0.5); q != 0 {
		t.Fatalf("empty Quantile = %d, want 0", q)
	}
}

func TestHistogramSingleBucket(t *testing.T) {
	r := New()
	h := r.Histogram("laoc_one_ns")
	for i := 0; i < 9; i++ {
		h.Observe(1 << 20)
	}
	s := r.Snapshot().Histograms[0]
	if s.Count != 9 || s.Min != 1<<20 || s.Max != 1<<20 || s.Sum != 9<<20 {
		t.Fatalf("snap = %+v", s)
	}
	if len(s.Buckets) != 1 || s.Buckets[0].Count != 9 {
		t.Fatalf("want one bucket with 9 observations, got %+v", s.Buckets)
	}
	// Identical observations: every quantile is exact despite bucketing,
	// because the estimate clamps to [Min, Max].
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 1<<20 {
			t.Fatalf("Quantile(%v) = %d, want %d", q, got, 1<<20)
		}
	}
}

func TestHistogramOverflowBucketAndClamp(t *testing.T) {
	r := New()
	h := r.Histogram("laoc_of_ns")
	h.Observe(math.MaxInt64)
	h.Observe(-5) // clamps to 0
	s := r.Snapshot().Histograms[0]
	if s.Count != 2 || s.Min != 0 || s.Max != math.MaxInt64 {
		t.Fatalf("snap = %+v", s)
	}
	if len(s.Buckets) != 2 || s.Buckets[0].Le != 0 || s.Buckets[1].Le != math.MaxInt64 {
		t.Fatalf("buckets = %+v, want {0, MaxInt64}", s.Buckets)
	}
}

// TestMergeAssociative checks the batch-driver folding contract:
// (a+b)+c and a+(b+c) produce identical snapshots, as does folding in
// reverse order.
func TestMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	fill := func() *Histogram {
		h := &Histogram{minv: histMinInit, maxv: histMaxInit}
		for i := 0; i < 500; i++ {
			h.Observe(rng.Int63n(1 << 30))
		}
		return h
	}
	a, b, c := fill(), fill(), fill()
	fold := func(hs ...*Histogram) HistogramSnap {
		acc := &Histogram{minv: histMinInit, maxv: histMaxInit}
		for _, h := range hs {
			acc.Merge(h)
		}
		return acc.snap("m", nil)
	}
	left := fold(a, b, c)

	bc := &Histogram{minv: histMinInit, maxv: histMaxInit}
	bc.Merge(b)
	bc.Merge(c)
	right := fold(a, bc)

	rev := fold(c, b, a)
	if !reflect.DeepEqual(left, right) {
		t.Fatalf("merge not associative:\n%+v\n%+v", left, right)
	}
	if !reflect.DeepEqual(left, rev) {
		t.Fatalf("merge not commutative:\n%+v\n%+v", left, rev)
	}
	if left.Count != 1500 {
		t.Fatalf("merged count = %d, want 1500", left.Count)
	}
}

// TestQuantileBounds is the property test for the quantile estimate:
// for random observation sets, the estimate of any quantile lies in
// [x, bucketUpper(bucketIndex(x))] where x is the true (ceil-rank)
// quantile — i.e. it never under-reports and over-reports by at most
// one bucket width (≤6.25% past the exact region).
func TestQuantileBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(400)
		obs := make([]int64, n)
		h := &Histogram{minv: histMinInit, maxv: histMaxInit}
		scale := []int64{100, 100000, 1 << 40}[trial%3]
		for i := range obs {
			obs[i] = rng.Int63n(scale)
			h.Observe(obs[i])
		}
		sort.Slice(obs, func(i, j int) bool { return obs[i] < obs[j] })
		s := h.snap("q", nil)
		for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99, 1} {
			rank := int(math.Ceil(q * float64(n)))
			if rank < 1 {
				rank = 1
			}
			x := obs[rank-1]
			got := s.Quantile(q)
			hi := bucketUpper(bucketIndex(x))
			if hi > s.Max {
				hi = s.Max
			}
			if got < x || got > hi {
				t.Fatalf("trial %d: Quantile(%v) = %d outside [%d, %d] (n=%d)",
					trial, q, got, x, hi, n)
			}
		}
	}
}

func TestObserveAllocatesNothing(t *testing.T) {
	r := New()
	h := r.Histogram("laoc_alloc_ns")
	c := r.Counter("laoc_alloc_total")
	n := testing.AllocsPerRun(200, func() {
		h.Observe(123456789)
		c.Add(7)
	})
	if n != 0 {
		t.Fatalf("enabled Observe/Add allocated %.1f times per run, want 0", n)
	}
}
