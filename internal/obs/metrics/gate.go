package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// GateOptions configures a baseline-vs-current comparison.
type GateOptions struct {
	// WallTolerance is the allowed relative regression of total wall
	// time (metrics named *_wall_ns): current <= baseline*(1+tol).
	// Negative disables the wall check entirely.
	WallTolerance float64
	// ForceWall compares wall time even when the two snapshots were
	// taken on different hosts. Off by default: cross-host wall numbers
	// are not comparable, so the gate records a note instead of failing.
	ForceWall bool
}

// Gate diffs a current snapshot against a committed baseline and
// returns the regressions (each one line, stable order) plus
// informational notes. An empty problems slice means the gate passes.
//
// The contract, from strictest to loosest:
//
//   - every baseline counter must exist in current with exactly the
//     same value — the repo's headline perf claims are deterministic
//     counter deltas, so any drift is a real behavior change;
//   - every baseline histogram must exist with exactly the same
//     observation count; histograms marked deterministic must also
//     match sum/min/max exactly (e.g. the MAXLIVE distribution);
//   - total wall time across *_wall_ns histograms must be within
//     WallTolerance — checked only when both snapshots come from the
//     same host (or ForceWall), because cross-host wall is noise.
//
// Metrics present only in current are allowed (the schema is
// append-only; new instrumentation must not invalidate old baselines).
func Gate(baseline, current *FileSnapshot, o GateOptions) (problems, notes []string) {
	curC := make(map[string]int64, len(current.Counters))
	for _, c := range current.Counters {
		curC[cellKey(c.Name, c.Labels)] = c.Value
	}
	for _, b := range baseline.Counters {
		k := cellKey(b.Name, b.Labels)
		v, ok := curC[k]
		if !ok {
			problems = append(problems, fmt.Sprintf("counter %s: missing from current snapshot (baseline %d)", k, b.Value))
			continue
		}
		if v != b.Value {
			problems = append(problems, fmt.Sprintf("counter %s: %d, baseline %d (%+d)", k, v, b.Value, v-b.Value))
		}
	}

	curH := make(map[string]*FileHistogram, len(current.Histograms))
	for i := range current.Histograms {
		h := &current.Histograms[i]
		curH[cellKey(h.Name, h.Labels)] = h
	}
	var baseWall, curWall int64
	for i := range baseline.Histograms {
		b := &baseline.Histograms[i]
		k := cellKey(b.Name, b.Labels)
		h, ok := curH[k]
		if !ok {
			problems = append(problems, fmt.Sprintf("histogram %s: missing from current snapshot", k))
			continue
		}
		if h.Count != b.Count {
			problems = append(problems, fmt.Sprintf("histogram %s: %d observations, baseline %d", k, h.Count, b.Count))
		}
		if b.Deterministic {
			if h.Sum != b.Sum || h.Min != b.Min || h.Max != b.Max {
				problems = append(problems, fmt.Sprintf(
					"histogram %s (deterministic): sum/min/max %d/%d/%d, baseline %d/%d/%d",
					k, h.Sum, h.Min, h.Max, b.Sum, b.Min, b.Max))
			}
		}
		if strings.HasSuffix(b.Name, "_wall_ns") {
			baseWall += b.Sum
			curWall += h.Sum
		}
	}

	switch {
	case o.WallTolerance < 0 || baseWall == 0:
		notes = append(notes, "wall check: disabled")
	case !baseline.Host.Equal(current.Host) && !o.ForceWall:
		notes = append(notes, fmt.Sprintf("wall check: skipped, hosts differ (baseline %s; current %s)",
			baseline.Host, current.Host))
	default:
		limit := float64(baseWall) * (1 + o.WallTolerance)
		note := fmt.Sprintf("wall check: current %dns vs baseline %dns (limit %.0fns, tolerance %.0f%%)",
			curWall, baseWall, limit, o.WallTolerance*100)
		if float64(curWall) > limit {
			problems = append(problems, "wall regression: "+note)
		} else {
			notes = append(notes, note)
		}
	}
	sort.Strings(problems)
	return problems, notes
}

func cellKey(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// SelfCheckPassCounters cross-references the registry's per-pass
// counter mirror (the counters named metricName, labelled pass= and
// counter=) against totals independently accumulated from the trace
// event stream. The two are fed from the same pass Stats structs, so
// any divergence means a metrics-skew fault: a counter bumped without
// its underlying event, or an event dropped on the way to the registry.
// Checked mode runs this before trusting a snapshot
// (faultinject.InjectMetricsSkew is the corresponding corruption
// class). traceTotals keys are "<pass>.<Counter.Path>" as produced by
// obs.Counters.
func SelfCheckPassCounters(s *Snapshot, metricName string, traceTotals map[string]int64) error {
	var skews []string
	seen := make(map[string]bool, len(traceTotals))
	for _, c := range s.Counters {
		if c.Name != metricName {
			continue
		}
		var pass, counter string
		for _, l := range c.Labels {
			switch l.Key {
			case "pass":
				pass = l.Value
			case "counter":
				counter = l.Value
			}
		}
		key := pass + "." + counter
		seen[key] = true
		if want, ok := traceTotals[key]; !ok {
			skews = append(skews, fmt.Sprintf("%s: registry has %d, no trace events", key, c.Value))
		} else if want != c.Value {
			skews = append(skews, fmt.Sprintf("%s: registry %d != trace total %d", key, c.Value, want))
		}
	}
	for k, v := range traceTotals {
		if !seen[k] && v != 0 {
			skews = append(skews, fmt.Sprintf("%s: trace total %d missing from registry", k, v))
		}
	}
	if len(skews) == 0 {
		return nil
	}
	sort.Strings(skews)
	return fmt.Errorf("metrics self-check: %d counter(s) skewed against trace totals:\n  %s",
		len(skews), strings.Join(skews, "\n  "))
}
