package metrics

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestHandlerEndpoints drives the exposition mux end-to-end: /metrics
// serves the Prometheus text rendering with the right content type,
// /metrics.json parses back through ReadFile's schema, and scrapes see
// live counter state (snapshot per request, not at mount time).
func TestHandlerEndpoints(t *testing.T) {
	r := goldenRegistry()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	text, ct := get("/metrics")
	if !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	if !strings.Contains(text, "laoc_demo_runs_total 3") {
		t.Fatalf("/metrics missing counter sample:\n%s", text)
	}

	jsonBody, ct := get("/metrics.json")
	if ct != "application/json" {
		t.Fatalf("/metrics.json content type = %q", ct)
	}
	if !strings.Contains(jsonBody, `"schema": "laoc-metrics-v1"`) {
		t.Fatalf("/metrics.json missing schema stamp:\n%s", jsonBody)
	}

	// Live state: a bump between scrapes must show up.
	r.Counter("laoc_demo_runs_total").Inc()
	text, _ = get("/metrics")
	if !strings.Contains(text, "laoc_demo_runs_total 4") {
		t.Fatalf("scrape did not observe live counter:\n%s", text)
	}

	if body, _ := get("/debug/pprof/cmdline"); body == "" {
		t.Fatal("/debug/pprof/cmdline served nothing")
	}
}
