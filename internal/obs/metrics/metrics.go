// Package metrics is the typed metrics substrate of the repository: a
// low-overhead registry of atomic counters, gauges and log-linear
// histograms with cheap static labels, a deterministic snapshot API,
// and exposition writers (Prometheus text format, JSON) ready for the
// laocd service roadmap item.
//
// Design constraints, in order:
//
//   - Disabled must be free. Every instrument method has a nil-receiver
//     fast path and a nil *Registry hands out nil instruments, so code
//     can unconditionally write `reg.Counter(name).Inc()` style calls
//     and pay nothing (zero allocations, pinned by test) when metrics
//     are off. This is the same discipline as the nil obs.Tracer.
//   - Enabled updates are lock-free. Counter/Gauge/Histogram updates
//     are plain atomics on pre-registered cells; the registry lock is
//     taken only on handle lookup and snapshot. Hot loops hold handles.
//   - Snapshots are deterministic. Snapshot sorts by (name, labels), so
//     two runs of the same serial workload produce byte-identical
//     exposition for every deterministic metric, which is what lets
//     cmd/perfgate diff a run against a committed baseline.
//
// The naming schema (DESIGN.md): `laoc_<subsystem>_<name>` with unit
// suffixes (`_total` for counters, `_ns`/`_bytes` for histograms) and
// static labels for the cardinality axes (pass, config, engine, table).
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Label is one static metric dimension, attached at handle-lookup time.
// Labels are expected to have tiny cardinality (pass names, engine
// names, presets) — every distinct (name, labels) pair is its own cell.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind discriminates the instrument types of a registry entry.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "counter"
}

// Registry owns a set of metric cells keyed by (name, sorted labels).
// All methods are safe for concurrent use; a nil *Registry is the
// disabled registry and hands out nil (no-op) instruments.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
	help    map[string]string
}

type entry struct {
	name   string
	labels []Label // sorted by key
	kind   Kind
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() int64 // non-nil for CounterFunc entries
}

// New returns an empty enabled registry.
func New() *Registry {
	return &Registry{entries: make(map[string]*entry), help: make(map[string]string)}
}

// Default is the process-wide registry. Package-level counters (the
// analysis cache, engine totals) live here; the CLIs snapshot it for
// -metrics-out and serve it on -metrics-addr. It is always enabled —
// counter updates are single atomic adds — while the expensive per-pass
// measurement in the pipeline runner stays opt-in via WithMetrics.
var Default = New()

// key renders the canonical cell key. labels must already be sorted.
func key(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.Grow(len(name) + 16*len(labels))
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0)
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

func sortLabels(labels []Label) []Label {
	if len(labels) < 2 {
		return labels
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

// lookup finds or creates the cell, enforcing kind consistency. A kind
// clash (the same name registered as two instrument types) is a
// programming error and panics with both kinds named.
func (r *Registry) lookup(name string, kind Kind, labels []Label) *entry {
	ls := sortLabels(labels)
	k := key(name, ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[k]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("metrics: %q registered as %s, requested as %s", name, e.kind, kind))
		}
		return e
	}
	e := &entry{name: name, labels: ls, kind: kind}
	switch kind {
	case KindCounter:
		e.c = &Counter{}
	case KindGauge:
		e.g = &Gauge{}
	case KindHistogram:
		e.h = &Histogram{minv: histMinInit, maxv: histMaxInit}
	}
	r.entries[k] = e
	return e
}

// Counter returns the counter cell for (name, labels), creating it on
// first use. Hold the handle in hot loops — the lookup takes the
// registry lock and builds a key string. Nil registry returns nil, and
// every Counter method is a no-op on nil.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, KindCounter, labels).c
}

// CounterFunc registers a counter whose value is read from fn at
// snapshot time — the bridge for pre-existing atomic counters that
// should appear in exposition without double bookkeeping. Re-registering
// the same (name, labels) replaces the function.
func (r *Registry) CounterFunc(name string, fn func() int64, labels ...Label) {
	if r == nil {
		return
	}
	e := r.lookup(name, KindCounter, labels)
	r.mu.Lock()
	e.fn = fn
	r.mu.Unlock()
}

// Gauge returns the gauge cell for (name, labels). Same contract as
// Counter.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, KindGauge, labels).g
}

// Histogram returns the histogram cell for (name, labels). Same
// contract as Counter. Histograms are log-linear (see histogram.go) and
// mergeable; by default they are marked non-deterministic (wall times,
// allocation volumes), which tells cmd/perfgate to compare only their
// observation counts. Use SetDeterministic for histograms over
// deterministic quantities (e.g. MAXLIVE).
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, KindHistogram, labels).h
}

// SetHelp attaches a Prometheus HELP string to a metric family name.
func (r *Registry) SetHelp(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.help[name] = help
	r.mu.Unlock()
}

// Snapshot captures every cell into a deterministic, sorted, immutable
// view. Concurrent updates during the snapshot are torn only across
// cells (each cell is read atomically), which is the usual scrape
// semantics.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{}
	if r == nil {
		return s
	}
	r.mu.Lock()
	entries := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	s.Help = make(map[string]string, len(r.help))
	for k, v := range r.help {
		s.Help[k] = v
	}
	r.mu.Unlock()

	sort.Slice(entries, func(i, j int) bool {
		if entries[i].name != entries[j].name {
			return entries[i].name < entries[j].name
		}
		return labelsLess(entries[i].labels, entries[j].labels)
	})
	for _, e := range entries {
		switch e.kind {
		case KindCounter:
			v := e.c.Value()
			if e.fn != nil {
				v = e.fn()
			}
			s.Counters = append(s.Counters, CounterSnap{Name: e.name, Labels: e.labels, Value: v})
		case KindGauge:
			s.Gauges = append(s.Gauges, GaugeSnap{Name: e.name, Labels: e.labels, Value: e.g.Value()})
		case KindHistogram:
			s.Histograms = append(s.Histograms, e.h.snap(e.name, e.labels))
		}
	}
	return s
}

func labelsLess(a, b []Label) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i].Key != b[i].Key {
			return a[i].Key < b[i].Key
		}
		if a[i].Value != b[i].Value {
			return a[i].Value < b[i].Value
		}
	}
	return len(a) < len(b)
}

// Snapshot is the deterministic point-in-time view of a registry,
// sorted by (name, labels) within each instrument kind.
type Snapshot struct {
	Counters   []CounterSnap
	Gauges     []GaugeSnap
	Histograms []HistogramSnap
	Help       map[string]string
}

// CounterSnap is one counter cell.
type CounterSnap struct {
	Name   string
	Labels []Label
	Value  int64
}

// GaugeSnap is one gauge cell.
type GaugeSnap struct {
	Name   string
	Labels []Label
	Value  int64
}
