package metrics

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"outofssa/internal/obs"
)

func gateRegistry() *Registry {
	r := New()
	r.Counter("laoc_g_kills_total", L("engine", "dominance")).Add(355540)
	r.Counter("laoc_g_runs_total").Add(1068)
	w := r.Histogram("laoc_g_pass_wall_ns", L("pass", "out-leung"))
	for _, v := range []int64{1000, 2000, 4000} {
		w.Observe(v)
	}
	m := r.Histogram("laoc_g_maxlive")
	m.SetDeterministic()
	for _, v := range []int64{3, 5, 5, 9} {
		m.Observe(v)
	}
	return r
}

func fileSnap(r *Registry) *FileSnapshot {
	return r.Snapshot().File(obs.HostInfo())
}

func TestGatePassesOnIdenticalRun(t *testing.T) {
	problems, notes := Gate(fileSnap(gateRegistry()), fileSnap(gateRegistry()), GateOptions{WallTolerance: 0.3})
	if len(problems) != 0 {
		t.Fatalf("identical runs gated: %v", problems)
	}
	if len(notes) == 0 || !strings.Contains(notes[0], "wall check") {
		t.Fatalf("expected a wall-check note, got %v", notes)
	}
}

func TestGateFailsOnCounterDrift(t *testing.T) {
	base := fileSnap(gateRegistry())
	cur := gateRegistry()
	cur.Counter("laoc_g_kills_total", L("engine", "dominance")).Inc()
	problems, _ := Gate(base, fileSnap(cur), GateOptions{WallTolerance: -1})
	if len(problems) != 1 || !strings.Contains(problems[0], "laoc_g_kills_total") {
		t.Fatalf("counter drift not caught: %v", problems)
	}
}

func TestGateFailsOnMissingAndCountDrift(t *testing.T) {
	base := fileSnap(gateRegistry())
	cur := gateRegistry()
	cur.Histogram("laoc_g_pass_wall_ns", L("pass", "out-leung")).Observe(8000) // count 3 -> 4
	snap := fileSnap(cur)
	// Drop a counter entirely.
	var kept []FileCounter
	for _, c := range snap.Counters {
		if c.Name != "laoc_g_runs_total" {
			kept = append(kept, c)
		}
	}
	snap.Counters = kept
	problems, _ := Gate(base, snap, GateOptions{WallTolerance: -1})
	if len(problems) != 2 {
		t.Fatalf("want 2 problems (missing counter, observation drift), got %v", problems)
	}
}

// TestGateDeterministicHistogramExact: a deterministic histogram with
// the same observation count but different values must fail; a
// non-deterministic one (wall time) must not.
func TestGateDeterministicHistogramExact(t *testing.T) {
	base := fileSnap(gateRegistry())

	cur := New()
	cur.Counter("laoc_g_kills_total", L("engine", "dominance")).Add(355540)
	cur.Counter("laoc_g_runs_total").Add(1068)
	w := cur.Histogram("laoc_g_pass_wall_ns", L("pass", "out-leung"))
	for _, v := range []int64{1500, 2500, 3500} { // same count, different wall
		w.Observe(v)
	}
	m := cur.Histogram("laoc_g_maxlive")
	m.SetDeterministic()
	for _, v := range []int64{3, 5, 5, 11} { // same count, different MAXLIVE
		m.Observe(v)
	}
	problems, _ := Gate(base, fileSnap(cur), GateOptions{WallTolerance: -1})
	if len(problems) != 1 || !strings.Contains(problems[0], "laoc_g_maxlive") {
		t.Fatalf("want exactly the deterministic-histogram failure, got %v", problems)
	}
}

func TestGateWallToleranceAndHostGating(t *testing.T) {
	base := fileSnap(gateRegistry())
	cur := gateRegistry()
	cur.Histogram("laoc_g_pass_wall_ns", L("pass", "out-leung")).Observe(1 << 40)
	curSnap := fileSnap(cur)
	// Hide the extra observation from the count check to isolate the
	// wall check (count drift is tested elsewhere).
	for i := range curSnap.Histograms {
		if curSnap.Histograms[i].Name == "laoc_g_pass_wall_ns" {
			curSnap.Histograms[i].Count = 3
		}
	}

	problems, _ := Gate(base, curSnap, GateOptions{WallTolerance: 0.3})
	if len(problems) != 1 || !strings.Contains(problems[0], "wall regression") {
		t.Fatalf("same-host wall regression not caught: %v", problems)
	}

	// Same regression from a different host: skipped with a note...
	foreign := *curSnap
	foreign.Host = obs.Host{GOOS: "plan9", GOARCH: "riscv64", CPU: "other", Cores: 64, GOMAXPROCS: 64}
	problems, notes := Gate(base, &foreign, GateOptions{WallTolerance: 0.3})
	if len(problems) != 0 {
		t.Fatalf("cross-host wall compared without ForceWall: %v", problems)
	}
	found := false
	for _, n := range notes {
		found = found || strings.Contains(n, "hosts differ")
	}
	if !found {
		t.Fatalf("no hosts-differ note: %v", notes)
	}
	// ...unless forced.
	problems, _ = Gate(base, &foreign, GateOptions{WallTolerance: 0.3, ForceWall: true})
	if len(problems) != 1 {
		t.Fatalf("ForceWall did not compare wall: %v", problems)
	}
}

// TestGateAppendOnly: metrics present only in the current snapshot are
// not regressions — new instrumentation must not invalidate committed
// baselines.
func TestGateAppendOnly(t *testing.T) {
	base := fileSnap(gateRegistry())
	cur := gateRegistry()
	cur.Counter("laoc_g_new_total").Add(7)
	cur.Histogram("laoc_g_new_ns").Observe(1)
	problems, _ := Gate(base, fileSnap(cur), GateOptions{WallTolerance: 0.3})
	if len(problems) != 0 {
		t.Fatalf("current-only metrics flagged: %v", problems)
	}
}

func TestSelfCheckPassCounters(t *testing.T) {
	r := New()
	mirror := func(pass, counter string, v int64) {
		r.Counter("laoc_pc_total", L("pass", pass), L("counter", counter)).Add(v)
	}
	mirror("out-leung", "Leung.PhiMoves", 12)
	mirror("pinning-phi", "Interference.KillQueries", 900)
	trace := map[string]int64{
		"out-leung.Leung.PhiMoves":             12,
		"pinning-phi.Interference.KillQueries": 900,
		"pinning-phi.Interference.ZeroCounter": 0, // zero totals need no mirror cell
	}
	if err := SelfCheckPassCounters(r.Snapshot(), "laoc_pc_total", trace); err != nil {
		t.Fatalf("matching mirror flagged: %v", err)
	}

	// Registry bumped without the underlying trace total: skew.
	mirror("out-leung", "Leung.PhiMoves", 1)
	err := SelfCheckPassCounters(r.Snapshot(), "laoc_pc_total", trace)
	if err == nil || !strings.Contains(err.Error(), "out-leung.Leung.PhiMoves") {
		t.Fatalf("registry-side skew not caught: %v", err)
	}

	// Trace total with no registry cell: skew the other way.
	mirror("out-leung", "Leung.PhiMoves", -1) // restore
	trace["out-leung.Leung.Repairs"] = 5
	err = SelfCheckPassCounters(r.Snapshot(), "laoc_pc_total", trace)
	if err == nil || !strings.Contains(err.Error(), "Leung.Repairs") {
		t.Fatalf("trace-side skew not caught: %v", err)
	}
}

func TestFileSnapshotRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	host := obs.HostInfo()
	if err := WriteJSON(&buf, gateRegistry().Snapshot(), host); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "snap.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := gateRegistry().Snapshot().File(host)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip drifted:\n%+v\n%+v", got, want)
	}

	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"laoc-metrics-v0"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(bad); err == nil {
		t.Fatalf("wrong schema accepted")
	}
}
