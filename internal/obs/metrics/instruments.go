package metrics

import "sync/atomic"

// Counter is a monotonically increasing atomic cell. The nil Counter
// (handed out by a nil registry) is a no-op on every method — the
// disabled path performs one predictable branch and allocates nothing.
type Counter struct {
	v int64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		atomic.AddInt64(&c.v, 1)
	}
}

// Add adds n. Negative deltas are a programming error but are applied
// as-is; counters are "monotone by convention", not enforced, because
// enforcement would put a branch on the hot path.
func (c *Counter) Add(n int64) {
	if c != nil {
		atomic.AddInt64(&c.v, n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return atomic.LoadInt64(&c.v)
}

// Reset zeroes the counter. For tests and benchmark deltas only —
// production counters never go backward.
func (c *Counter) Reset() {
	if c != nil {
		atomic.StoreInt64(&c.v, 0)
	}
}

// Gauge is an atomic instantaneous value (queue depth, jobs in flight).
// Nil-receiver contract as Counter.
type Gauge struct {
	v int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		atomic.StoreInt64(&g.v, v)
	}
}

// Add adds n (negative to decrement).
func (g *Gauge) Add(n int64) {
	if g != nil {
		atomic.AddInt64(&g.v, n)
	}
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return atomic.LoadInt64(&g.v)
}
