package metrics

import (
	"net"
	"net/http"
	"net/http/pprof"

	"outofssa/internal/obs"
)

// Handler returns the observability mux for a long-running process (the
// laocd roadmap item; ssabench/laoc serve it behind -metrics-addr):
//
//	/metrics        Prometheus text exposition of r
//	/metrics.json   the same snapshot in the JSON file schema
//	/debug/pprof/*  the standard profiling endpoints
//
// Snapshots are taken per request — scrapes observe live counters.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, r.Snapshot())
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		WriteJSON(w, r.Snapshot(), obs.HostInfo())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr and serves Handler(r) in a background goroutine,
// returning the bound listener address (useful with ":0") and a stop
// function. Serving continues until stop is called or the process
// exits; serve errors after a successful bind are dropped — metrics
// exposition must never take down the compilation it observes.
func Serve(addr string, r *Registry) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(r)}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}
