package obs

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
)

// Host is the machine identity stamped into benchmark outputs and
// metrics snapshots — the same fields BENCH_*.json record by hand. Perf
// numbers without a host are noise; cmd/perfgate also uses Host
// equality to decide whether wall-clock comparisons are meaningful.
type Host struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	CPU        string `json:"cpu"`
	Cores      int    `json:"cores"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

var (
	hostOnce sync.Once
	hostInfo Host
)

// HostInfo returns the current machine's identity. The CPU model comes
// from /proc/cpuinfo on Linux and degrades to "unknown" elsewhere; the
// rest is the runtime's view. Cached after the first call (GOMAXPROCS
// is read at that moment).
func HostInfo() Host {
	hostOnce.Do(func() {
		hostInfo = Host{
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			CPU:        cpuModel(),
			Cores:      runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		}
	})
	return hostInfo
}

// String renders the one-line stamp the ssabench -bench-* harnesses
// print above their measurements.
func (h Host) String() string {
	return fmt.Sprintf("goos=%s goarch=%s cpu=%q cores=%d gomaxprocs=%d",
		h.GOOS, h.GOARCH, h.CPU, h.Cores, h.GOMAXPROCS)
}

// Equal reports whether two hosts are the same machine shape — the
// precondition for comparing wall-clock numbers across snapshots.
func (h Host) Equal(o Host) bool { return h == o }

func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return "unknown"
	}
	for _, line := range strings.Split(string(data), "\n") {
		if k, v, ok := strings.Cut(line, ":"); ok {
			switch strings.TrimSpace(k) {
			case "model name", "Processor", "cpu model":
				return strings.TrimSpace(v)
			}
		}
	}
	return "unknown"
}
