package obs

// Recorder is a Tracer that keeps everything it receives, for tests and
// programmatic inspection.
type Recorder struct {
	// Runs collects one entry per RunStart..RunEnd bracket.
	Runs []*RecordedRun
	// open is the run currently receiving events (nil between runs).
	open *RecordedRun
}

// RecordedRun is the event stream of one pipeline run.
type RecordedRun struct {
	Func    string
	Config  string
	Before  IRStat
	After   IRStat
	WallNS  int64
	Started []string // pass names in PassStart order
	Events  []*Event // completed passes in PassEnd order
	Ended   bool
}

// Replay re-emits every recorded run into tr, in recording order. The
// parallel batch driver uses it to merge per-worker recordings into one
// deterministic stream: each job records privately, and the recordings
// are replayed job by job once all workers are done. A nil tr is a
// no-op. Events are delivered by pointer and owned by tr afterwards, so
// a Recorder should be replayed into a consuming tracer only once.
func (r *Recorder) Replay(tr Tracer) {
	if tr == nil {
		return
	}
	for _, run := range r.Runs {
		tr.RunStart(run.Func, run.Config, run.Before)
		for i, pass := range run.Started {
			tr.PassStart(run.Func, run.Config, pass)
			if i < len(run.Events) {
				tr.PassEnd(run.Events[i])
			}
		}
		if run.Ended {
			tr.RunEnd(run.Func, run.Config, run.After, run.WallNS)
		}
	}
}

func (r *Recorder) RunStart(fn, config string, before IRStat) {
	r.open = &RecordedRun{Func: fn, Config: config, Before: before}
	r.Runs = append(r.Runs, r.open)
}

func (r *Recorder) PassStart(fn, config, pass string) {
	if r.open != nil {
		r.open.Started = append(r.open.Started, pass)
	}
}

func (r *Recorder) PassEnd(ev *Event) {
	if r.open != nil {
		r.open.Events = append(r.open.Events, ev)
	}
}

func (r *Recorder) RunEnd(fn, config string, after IRStat, wallNS int64) {
	if r.open != nil {
		r.open.After = after
		r.open.WallNS = wallNS
		r.open.Ended = true
		r.open = nil
	}
}
