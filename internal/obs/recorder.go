package obs

// Recorder is a Tracer that keeps everything it receives, for tests and
// programmatic inspection.
type Recorder struct {
	// Runs collects one entry per RunStart..RunEnd bracket.
	Runs []*RecordedRun
	// open is the run currently receiving events (nil between runs).
	open *RecordedRun
}

// RecordedRun is the event stream of one pipeline run.
type RecordedRun struct {
	Func    string
	Config  string
	Before  IRStat
	After   IRStat
	WallNS  int64
	Started []string // pass names in PassStart order
	Events  []*Event // completed passes in PassEnd order
	Ended   bool
}

func (r *Recorder) RunStart(fn, config string, before IRStat) {
	r.open = &RecordedRun{Func: fn, Config: config, Before: before}
	r.Runs = append(r.Runs, r.open)
}

func (r *Recorder) PassStart(fn, config, pass string) {
	if r.open != nil {
		r.open.Started = append(r.open.Started, pass)
	}
}

func (r *Recorder) PassEnd(ev *Event) {
	if r.open != nil {
		r.open.Events = append(r.open.Events, ev)
	}
}

func (r *Recorder) RunEnd(fn, config string, after IRStat, wallNS int64) {
	if r.open != nil {
		r.open.After = after
		r.open.WallNS = wallNS
		r.open.Ended = true
		r.open = nil
	}
}
