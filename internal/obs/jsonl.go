package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// JSONL is a Tracer writing one JSON object per line, suitable for
// machine diffing of two pipeline runs (jq, simple scripts). Three
// record types share the stream, discriminated by the "type" key:
//
//	{"type":"run_start","fn":...,"config":...,"ir":{...}}
//	{"type":"pass","fn":...,"config":...,"pass":...,"seq":N,
//	 "wall_ns":N,"alloc_bytes":N,"mallocs":N,
//	 "before":{...},"after":{...},"counters":{...},"err":...}
//	{"type":"run_end","fn":...,"config":...,"passes":N,
//	 "wall_ns":N,"ir":{...}}
//
// The "ir", "before" and "after" objects are IRStat: moves,
// weighted_moves, instrs, phis, pins, blocks, values. Counter keys are
// "<pass>.<Field>" paths into the pass's stats struct. "err", present
// only on failure, is the pass's error string (pass error, contained
// panic, or checked-mode verifier violation); a run that died shows a
// final "pass" record with "err" and no "run_end". The schema is
// append-only: consumers must tolerate new keys. JSONL is safe for
// concurrent use.
type JSONL struct {
	mu     sync.Mutex
	enc    *json.Encoder
	passes int
}

// NewJSONL returns a JSONL sink writing to w.
func NewJSONL(w io.Writer) *JSONL { return &JSONL{enc: json.NewEncoder(w)} }

type jsonlRun struct {
	Type   string `json:"type"`
	Func   string `json:"fn"`
	Config string `json:"config,omitempty"`
	Passes int    `json:"passes,omitempty"`
	WallNS int64  `json:"wall_ns,omitempty"`
	IR     IRStat `json:"ir"`
}

type jsonlPass struct {
	Type string `json:"type"`
	*Event
}

func (j *JSONL) RunStart(fn, config string, before IRStat) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.passes = 0
	j.enc.Encode(jsonlRun{Type: "run_start", Func: fn, Config: config, IR: before})
}

func (j *JSONL) PassStart(fn, config, pass string) {}

func (j *JSONL) PassEnd(ev *Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.passes++
	j.enc.Encode(jsonlPass{Type: "pass", Event: ev})
}

func (j *JSONL) RunEnd(fn, config string, after IRStat, wallNS int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.enc.Encode(jsonlRun{Type: "run_end", Func: fn, Config: config,
		Passes: j.passes, WallNS: wallNS, IR: after})
}
