// Package obs is the observability substrate of the out-of-SSA
// pipeline: per-pass tracing events carrying wall time, allocation
// deltas and IR provenance (move/instruction/φ/pin counts before and
// after each pass), plus pluggable sinks — a human-readable summary
// writer, a JSONL event stream for machine diffing, and a no-op tracer.
//
// The instrumented pass runner in internal/pipeline emits these events;
// with a nil Tracer the runner takes a fast path that performs no
// measurement and allocates nothing, so the default (untraced) pipeline
// pays zero overhead.
package obs

import "outofssa/internal/ir"

// IRStat is a point-in-time snapshot of the counters the paper's
// evaluation is built on: move instructions (Tables 2-4), the 5^depth
// weighted move count (Table 5), and the structural sizes that explain
// where a pass spent its effort.
type IRStat struct {
	// Moves is f.CountMoves(): Copy instructions plus non-trivial
	// ParCopy slots.
	Moves int `json:"moves"`
	// WeightedMoves is f.WeightedMoves() computed against the loop
	// depths as of the snapshot (5^depth per move).
	WeightedMoves int64 `json:"weighted_moves"`
	// Instrs is the total instruction count.
	Instrs int `json:"instrs"`
	// Phis is the number of φ instructions still in the function.
	Phis int `json:"phis"`
	// Pins is the number of pinned operands (defs and uses).
	Pins int `json:"pins"`
	// Blocks and Values size the CFG and the value universe.
	Blocks int `json:"blocks"`
	Values int `json:"values"`
}

// Snapshot measures f. It is cheap (linear scans, no analyses) but not
// free; the pipeline runner only calls it when a tracer is attached.
func Snapshot(f *ir.Func) IRStat {
	return IRStat{
		Moves:         f.CountMoves(),
		WeightedMoves: f.WeightedMoves(),
		Instrs:        f.NumInstrs(),
		Phis:          f.CountPhis(),
		Pins:          f.CountPins(),
		Blocks:        len(f.Blocks()),
		Values:        f.NumValues(),
	}
}

// Event describes one executed pass.
type Event struct {
	// Func and Config identify the run: the function name and the
	// experiment configuration label (empty when the caller has none).
	Func   string `json:"fn"`
	Config string `json:"config,omitempty"`
	// Pass is the pass name; Seq its position in the run (0-based).
	Pass string `json:"pass"`
	Seq  int    `json:"seq"`
	// WallNS is the pass wall-clock time in nanoseconds.
	WallNS int64 `json:"wall_ns"`
	// AllocBytes and Mallocs are runtime.MemStats deltas (TotalAlloc,
	// Mallocs) across the pass — cumulative counters, so unaffected by
	// garbage collection, but shared with any concurrent goroutines.
	AllocBytes uint64 `json:"alloc_bytes"`
	Mallocs    uint64 `json:"mallocs"`
	// Before and After are IR snapshots around the pass.
	Before IRStat `json:"before"`
	After  IRStat `json:"after"`
	// Counters carries pass-specific counters (flattened from the pass's
	// Stats struct, e.g. "pinning-phi.Merges" or
	// "out-of-pinned-ssa.Interference.KillQueries").
	Counters map[string]int64 `json:"counters,omitempty"`
	// Err is the pass failure (pass error, contained panic, or checked-mode
	// verifier violation), empty on success. A run whose last event carries
	// Err and that has no run_end record died on that pass.
	Err string `json:"err,omitempty"`
}

// Tracer receives the event stream of instrumented pipeline runs. One
// run is bracketed by RunStart/RunEnd; each pass inside it by
// PassStart/PassEnd. Implementations need not be safe for concurrent
// use unless documented otherwise.
type Tracer interface {
	// RunStart opens a run on function fn under the named experiment
	// configuration; before is the IR state entering the pipeline.
	RunStart(fn, config string, before IRStat)
	// PassStart announces that the named pass is about to execute.
	PassStart(fn, config, pass string)
	// PassEnd delivers the measurements of the completed pass. The event
	// is owned by the tracer after the call.
	PassEnd(ev *Event)
	// RunEnd closes the run; after is the final IR state and wallNS the
	// total run time including instrumentation overhead.
	RunEnd(fn, config string, after IRStat, wallNS int64)
}

// Nop is a Tracer that discards everything. Prefer passing a nil Tracer
// where the API accepts one — the pipeline short-circuits on nil and
// skips measurement entirely; Nop still pays for the snapshots.
var Nop Tracer = nop{}

type nop struct{}

func (nop) RunStart(string, string, IRStat)      {}
func (nop) PassStart(string, string, string)     {}
func (nop) PassEnd(*Event)                       {}
func (nop) RunEnd(string, string, IRStat, int64) {}

// Multi fans events out to every non-nil tracer in order. It returns
// nil when no tracer remains, preserving the pipeline's fast path.
func Multi(ts ...Tracer) Tracer {
	var live []Tracer
	for _, t := range ts {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multi(live)
}

type multi []Tracer

func (m multi) RunStart(fn, config string, before IRStat) {
	for _, t := range m {
		t.RunStart(fn, config, before)
	}
}

func (m multi) PassStart(fn, config, pass string) {
	for _, t := range m {
		t.PassStart(fn, config, pass)
	}
}

func (m multi) PassEnd(ev *Event) {
	for _, t := range m {
		t.PassEnd(ev)
	}
}

func (m multi) RunEnd(fn, config string, after IRStat, wallNS int64) {
	for _, t := range m {
		t.RunEnd(fn, config, after, wallNS)
	}
}
