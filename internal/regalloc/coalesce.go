// Package regalloc provides the Chaitin-style aggressive register
// coalescer used as the "+C" post-pass of the paper's experiments
// ("repeated register coalescing", after Dupont de Dinechin et al.).
// Outside the register-allocation context it is an aggressive coalescer:
// any move whose source and destination do not interfere is eliminated,
// with no conservatism about graph colorability, and the interference
// graph is rebuilt and re-scanned until a fixed point ("repeated").
//
// It operates on non-SSA machine code (the output of the out-of-SSA
// translators) where variables may have several definitions.
package regalloc

import (
	"outofssa/internal/analysis"
	"outofssa/internal/bitset"
	"outofssa/internal/ir"
)

// Stats describes one aggressive coalescing run.
type Stats struct {
	// MovesRemoved counts eliminated copies.
	MovesRemoved int
	// Rounds is the number of build-coalesce rounds until fixed point.
	Rounds int
}

// AggressiveCoalesce repeatedly builds the interference graph of f and
// removes every move whose operands do not interfere, merging their live
// ranges. Two dedicated registers are never merged; a virtual merged with
// a dedicated register takes the register's name (partial coalescing of
// the virtual onto the register is NOT possible here — this is precisely
// limitation [CC1] that SSA-level pinning avoids).
func AggressiveCoalesce(f *ir.Func) *Stats {
	st := &Stats{}
	for {
		st.Rounds++
		removed := coalesceRound(f)
		st.MovesRemoved += removed
		if removed == 0 {
			return st
		}
	}
}

// coalesceRound does one pass: build the interference graph, then
// union-coalesce copies greedily (merging adjacency conservatively), and
// finally rewrite the function.
func coalesceRound(f *ir.Func) int {
	nv := f.NumValues()
	live := analysis.Liveness(f)

	// Interference graph (Chaitin): at each definition point, the defined
	// value interferes with everything live after the instruction; for a
	// move d = s, d does not interfere with s on account of this def.
	adj := make([]*bitset.Set, nv)
	for i := range adj {
		adj[i] = bitset.New(nv)
	}
	addEdge := func(a, b int) {
		if a != b {
			adj[a].Add(b)
			adj[b].Add(a)
		}
	}
	for _, b := range f.Blocks() {
		cur := live.ExitLiveSet(b).Copy()
		for i := b.NumInstrs() - 1; i >= 0; i-- {
			in := b.Instr(i)
			for _, d := range in.Defs() {
				cur.Remove(int(d.Val))
			}
			for _, d := range in.Defs() {
				dv := d.Val
				cur.ForEach(func(l int) {
					if in.Op() == ir.Copy && l == int(in.Use(0)) {
						return // move exception
					}
					addEdge(int(dv), l)
				})
				// Multiple defs of one instruction are born simultaneously.
				for _, d2 := range in.Defs() {
					addEdge(int(dv), int(d2.Val))
				}
			}
			for _, u := range in.Uses() {
				cur.Add(int(u.Val))
			}
		}
	}

	// Greedy union round over all moves.
	parent := make([]int, nv)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	removedMoves := make(map[*ir.Instr]bool)
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			if in.Op() != ir.Copy {
				continue
			}
			d, s := find(int(in.Def(0))), find(int(in.Use(0)))
			if d == s {
				removedMoves[in] = true
				continue
			}
			if f.IsPhys(ir.ValueID(d)) && f.IsPhys(ir.ValueID(s)) {
				continue
			}
			if adj[d].Has(s) {
				continue
			}
			// Merge s into d (or d into s if s is the physical one).
			root, child := d, s
			if f.IsPhys(ir.ValueID(s)) {
				root, child = s, d
			}
			parent[child] = root
			adj[root].UnionWith(adj[child])
			// Keep adjacency symmetric: everything adjacent to child is now
			// adjacent to root.
			adj[child].ForEach(func(n int) { adj[n].Add(root) })
			removedMoves[in] = true
		}
	}
	if len(removedMoves) == 0 {
		return 0
	}

	// Rewrite operands through the union-find and drop coalesced moves.
	for _, b := range f.Blocks() {
		for idx := 0; idx < b.NumInstrs(); {
			in := b.Instr(idx)
			if removedMoves[in] {
				b.RemoveAt(idx)
				continue
			}
			for i := 0; i < in.NumDefs(); i++ {
				in.SetDefVal(i, ir.ValueID(find(int(in.Def(i)))))
			}
			for i := 0; i < in.NumUses(); i++ {
				in.SetUseVal(i, ir.ValueID(find(int(in.Use(i)))))
			}
			idx++
		}
	}
	return len(removedMoves)
}
