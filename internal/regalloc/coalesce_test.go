package regalloc_test

import (
	"testing"

	"outofssa/internal/ir"
	"outofssa/internal/outofssa/naive"
	"outofssa/internal/regalloc"
	"outofssa/internal/ssa"
	"outofssa/internal/testprog"
)

func TestCoalesceRemovesChain(t *testing.T) {
	bld := ir.NewBuilder("chain")
	bld.Block("entry")
	a, b, c, d := bld.Val("a"), bld.Val("b"), bld.Val("c"), bld.Val("d")
	bld.Input(a)
	bld.Copy(b, a)
	bld.Copy(c, b)
	bld.Unary(ir.Neg, d, c)
	bld.Output(d)

	st := regalloc.AggressiveCoalesce(bld.Fn)
	if st.MovesRemoved != 2 {
		t.Fatalf("removed %d moves, want 2", st.MovesRemoved)
	}
	if bld.Fn.CountMoves() != 0 {
		t.Fatalf("moves remain:\n%s", bld.Fn)
	}
	res, err := ir.Exec(bld.Fn, []int64{5}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] != -5 {
		t.Fatalf("semantics broken: %v", res.Outputs)
	}
}

func TestCoalesceKeepsInterferingMove(t *testing.T) {
	bld := ir.NewBuilder("keep")
	bld.Block("entry")
	a, b, s := bld.Val("a"), bld.Val("b"), bld.Val("s")
	bld.Input(a)
	bld.Copy(b, a)              // b = a
	bld.Unary(ir.Neg, a, a)     // a redefined while b live
	bld.Binary(ir.Add, s, a, b) // both live here
	bld.Output(s)

	st := regalloc.AggressiveCoalesce(bld.Fn)
	if st.MovesRemoved != 0 {
		t.Fatalf("removed an interfering move:\n%s", bld.Fn)
	}
	res, err := ir.Exec(bld.Fn, []int64{7}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] != 0 {
		t.Fatalf("want -7+7=0, got %v", res.Outputs)
	}
}

func TestCoalescePhysicalPreference(t *testing.T) {
	bld := ir.NewBuilder("phys")
	f := bld.Fn
	bld.Block("entry")
	a := bld.Val("a")
	bld.Input(a)
	r0 := f.Target.R[0]
	bld.Cur.Append(f.NewInstr(ir.Copy, ir.Ops(r0), ir.Ops(a)))
	bld.Cur.Append(f.NewInstr(ir.Output, nil, ir.Ops(r0)))

	regalloc.AggressiveCoalesce(f)
	if f.CountMoves() != 0 {
		t.Fatalf("R0 = a not coalesced:\n%s", f)
	}
	// a must have been renamed to R0, not the other way round.
	for _, in := range f.Entry().Instrs() {
		if in.Op() == ir.Input && in.Def(0) != r0 {
			t.Fatalf("virtual did not take the register name: %v", in)
		}
	}
}

func TestNeverMergesTwoPhysicals(t *testing.T) {
	bld := ir.NewBuilder("twophys")
	f := bld.Fn
	bld.Block("entry")
	r0, r1 := f.Target.R[0], f.Target.R[1]
	in := f.NewInstr(ir.Input, ir.Ops(r0), nil)
	in.Imm = 1
	bld.Cur.Append(in)
	bld.Cur.Append(f.NewInstr(ir.Copy, ir.Ops(r1), ir.Ops(r0)))
	bld.Cur.Append(f.NewInstr(ir.Output, nil, ir.Ops(r1)))
	st := regalloc.AggressiveCoalesce(f)
	if st.MovesRemoved != 0 {
		t.Fatal("merged two physical registers")
	}
}

func TestCoalesceAfterNaivePreservesSemantics(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		ref := testprog.Rand(seed, testprog.DefaultRandOptions())
		args := []int64{seed, 3, 8}
		want, err := ir.Exec(ref, args, 500000)
		if err != nil {
			t.Fatal(err)
		}
		f := testprog.Rand(seed, testprog.DefaultRandOptions())
		ssa.Build(f)
		if _, err := naive.Translate(f); err != nil {
			t.Fatal(err)
		}
		before := f.CountMoves()
		st := regalloc.AggressiveCoalesce(f)
		after := f.CountMoves()
		if before-after != st.MovesRemoved {
			t.Fatalf("seed %d: accounting: before=%d after=%d removed=%d",
				seed, before, after, st.MovesRemoved)
		}
		if err := f.Verify(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got, err := ir.Exec(f, args, 1000000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !want.Equal(got) {
			t.Fatalf("seed %d: coalescing changed behaviour", seed)
		}
	}
}

// TestRepeatedRounds: a move chain that only becomes coalescable after a
// first merge requires the "repeated" rebuild.
func TestRepeatedRounds(t *testing.T) {
	for seed := int64(30); seed < 50; seed++ {
		f := testprog.Rand(seed, testprog.DefaultRandOptions())
		ssa.Build(f)
		if _, err := naive.Translate(f); err != nil {
			t.Fatal(err)
		}
		st := regalloc.AggressiveCoalesce(f)
		if st.Rounds < 1 {
			t.Fatal("at least one round expected")
		}
		// Fixed point: a second run must find nothing.
		st2 := regalloc.AggressiveCoalesce(f)
		if st2.MovesRemoved != 0 {
			t.Fatalf("seed %d: not at fixed point: %d more removed", seed, st2.MovesRemoved)
		}
	}
}
