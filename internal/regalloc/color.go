package regalloc

import (
	"fmt"
	"sort"

	"outofssa/internal/analysis"
	"outofssa/internal/bitset"
	"outofssa/internal/cfg"
	"outofssa/internal/ir"
)

// AllocStats describes a register allocation run.
type AllocStats struct {
	// ColorsUsed is the number of distinct physical registers assigned.
	ColorsUsed int
	// Spills is the number of values spilled to stack slots, SpillLoads
	// and SpillStores the memory traffic inserted.
	Spills      int
	SpillLoads  int
	SpillStores int
	// Rounds is the number of build-color rounds until spill-free.
	Rounds int
	// MaxPressure is the maximum number of simultaneously live values
	// observed before allocation.
	MaxPressure int
}

// Allocate is a Chaitin-Briggs graph-coloring register allocator for the
// non-SSA machine code produced by the out-of-SSA translators: it
// assigns every virtual register to a dedicated register of the target
// (R0..R15 and P0..P7; SP is reserved for the stack), spilling to
// SP-relative slots when the graph is uncolorable (Briggs-style
// optimistic coloring, spill costs weighted by 5^loopdepth and divided
// by degree).
//
// The paper stops before this phase ([LIM4]: "in the case of strong
// register pressure, the problem becomes different") — the allocator is
// provided as the natural downstream consumer so the effect of the
// coalescing decisions on colorability can be measured
// (BenchmarkRegisterPressure).
func Allocate(f *ir.Func) (*AllocStats, error) {
	return AllocateLimited(f, 0)
}

// AllocateLimited restricts the pool to the first maxRegs allocatable
// registers (0 means all of them); small pools force the spill path and
// expose the register-pressure interplay of [LIM4].
func AllocateLimited(f *ir.Func, maxRegs int) (*AllocStats, error) {
	st := &AllocStats{}
	cfg.ComputeLoopDepth(f)

	// Allocatable pool: every dedicated register except SP.
	var pool []*ir.Value
	pool = append(pool, f.Target.R...)
	pool = append(pool, f.Target.P...)
	if maxRegs > 0 && maxRegs < len(pool) {
		pool = pool[:maxRegs]
	}
	k := len(pool)
	poolIdx := make(map[*ir.Value]int, k)
	for i, r := range pool {
		poolIdx[r] = i
	}

	// Pre-assign spill slots lazily; the frame grows downward from SP.
	nextSlot := int64(64) // leave room for the workloads' own SP traffic
	spillSlot := make(map[*ir.Value]int64)
	// Reload/store temporaries have minimal live ranges and must never be
	// spill candidates themselves, or spilling diverges.
	noSpill := make(map[*ir.Value]bool)

	for {
		st.Rounds++
		if st.Rounds > 40 {
			return nil, fmt.Errorf("regalloc: no fixed point after %d rounds", st.Rounds)
		}
		spilled, err := colorRound(f, pool, poolIdx, st, spillSlot, &nextSlot, noSpill)
		if err != nil {
			return nil, err
		}
		if !spilled {
			break
		}
	}
	return st, nil
}

// colorRound builds the interference graph and attempts a coloring;
// on failure it spills the chosen candidates and reports true.
func colorRound(f *ir.Func, pool []*ir.Value, poolIdx map[*ir.Value]int,
	st *AllocStats, spillSlot map[*ir.Value]int64, nextSlot *int64,
	noSpill map[*ir.Value]bool) (bool, error) {

	nv := f.NumValues()
	k := len(pool)
	live := analysis.Liveness(f)

	adj := make([]*bitset.Set, nv)
	for i := range adj {
		adj[i] = bitset.New(nv)
	}
	addEdge := func(a, b int) {
		if a != b {
			adj[a].Add(b)
			adj[b].Add(a)
		}
	}
	cost := make([]float64, nv)
	pressure := 0
	for _, b := range f.Blocks {
		w := 1.0
		for d := 0; d < b.LoopDepth; d++ {
			w *= 5
		}
		cur := live.ExitLiveSet(b).Copy()
		if n := cur.Len(); n > pressure {
			pressure = n
		}
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := b.Instrs[i]
			for _, d := range in.Defs {
				cur.Remove(d.Val.ID)
				cost[d.Val.ID] += w
			}
			for _, d := range in.Defs {
				dv := d.Val
				cur.ForEach(func(l int) {
					if in.Op == ir.Copy && l == in.Use(0).ID {
						return
					}
					addEdge(dv.ID, l)
				})
				for _, d2 := range in.Defs {
					addEdge(dv.ID, d2.Val.ID)
				}
			}
			for _, u := range in.Uses {
				cur.Add(u.Val.ID)
				cost[u.Val.ID] += w
			}
			if n := cur.Len(); n > pressure {
				pressure = n
			}
		}
	}
	if pressure > st.MaxPressure {
		st.MaxPressure = pressure
	}

	// Also: every pair of distinct physical registers interferes.
	vals := f.Values()
	var virtuals []*ir.Value
	inUse := make([]bool, nv)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, o := range in.Defs {
				inUse[o.Val.ID] = true
			}
			for _, o := range in.Uses {
				inUse[o.Val.ID] = true
			}
		}
	}
	for _, v := range vals {
		if !v.IsPhys() && inUse[v.ID] {
			virtuals = append(virtuals, v)
		}
	}

	degree := func(v *ir.Value) int { return adj[v.ID].Len() }

	// Simplify with optimistic push (Briggs).
	removed := make([]bool, nv)
	var stack []*ir.Value
	remaining := append([]*ir.Value(nil), virtuals...)
	for len(remaining) > 0 {
		// Pick a low-degree node if possible.
		pick := -1
		for i, v := range remaining {
			deg := 0
			adj[v.ID].ForEach(func(n int) {
				if !removed[n] {
					deg++
				}
			})
			if deg < k {
				pick = i
				break
			}
		}
		if pick < 0 {
			// Spill candidate: minimal cost/degree ratio (deterministic
			// tie-break by ID); pushed optimistically. Reload temporaries
			// are never candidates.
			best, bestRatio := -1, 0.0
			for i, v := range remaining {
				if noSpill[v] {
					continue
				}
				d := degree(v)
				if d == 0 {
					d = 1
				}
				ratio := cost[v.ID] / float64(d)
				if best < 0 || ratio < bestRatio ||
					(ratio == bestRatio && v.ID < remaining[best].ID) {
					best, bestRatio = i, ratio
				}
			}
			if best < 0 {
				best = 0 // only temporaries remain: push any, optimistically
			}
			pick = best
		}
		v := remaining[pick]
		remaining = append(remaining[:pick], remaining[pick+1:]...)
		removed[v.ID] = true
		stack = append(stack, v)
	}

	// Select.
	assign := make(map[*ir.Value]*ir.Value)
	var mustSpill []*ir.Value
	for i := len(stack) - 1; i >= 0; i-- {
		v := stack[i]
		taken := make([]bool, k)
		adj[v.ID].ForEach(func(n int) {
			nb := vals[n]
			if nb.IsPhys() {
				if idx, ok := poolIdx[nb]; ok {
					taken[idx] = true
				}
				return
			}
			if r, ok := assign[nb]; ok {
				taken[poolIdx[r]] = true
			}
		})
		colored := false
		for c := 0; c < k; c++ {
			if !taken[c] {
				assign[v] = pool[c]
				colored = true
				break
			}
		}
		if !colored {
			mustSpill = append(mustSpill, v)
		}
	}

	if len(mustSpill) > 0 {
		sort.Slice(mustSpill, func(i, j int) bool { return mustSpill[i].ID < mustSpill[j].ID })
		progress := false
		doSpill := func(v *ir.Value) error {
			if _, ok := spillSlot[v]; ok {
				return fmt.Errorf("regalloc: %v spilled twice", v)
			}
			spillSlot[v] = *nextSlot
			*nextSlot += 8
			st.Spills++
			spillValue(f, v, spillSlot[v], st, noSpill)
			progress = true
			return nil
		}
		spilledThisRound := make(map[*ir.Value]bool)
		for _, v := range mustSpill {
			if !noSpill[v] {
				if err := doSpill(v); err != nil {
					return false, err
				}
				spilledThisRound[v] = true
				continue
			}
			// An unspillable reload temporary failed to color: relieve the
			// pressure by spilling its cheapest ordinary neighbour instead.
			var best *ir.Value
			bestRatio := 0.0
			adj[v.ID].ForEach(func(n int) {
				nb := vals[n]
				if nb.IsPhys() || noSpill[nb] || spilledThisRound[nb] {
					return
				}
				if _, ok := spillSlot[nb]; ok {
					return
				}
				d := adj[nb.ID].Len()
				if d == 0 {
					d = 1
				}
				ratio := cost[nb.ID] / float64(d)
				if best == nil || ratio < bestRatio || (ratio == bestRatio && nb.ID < best.ID) {
					best, bestRatio = nb, ratio
				}
			})
			if best != nil {
				if err := doSpill(best); err != nil {
					return false, err
				}
				spilledThisRound[best] = true
			}
		}
		if !progress {
			return false, fmt.Errorf("regalloc: %d uncolorable reload temporaries with %d registers",
				len(mustSpill), len(pool))
		}
		return true, nil
	}

	// Commit: rewrite every virtual operand to its register.
	used := make(map[*ir.Value]bool)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for idx := range in.Defs {
				if r, ok := assign[in.Defs[idx].Val]; ok {
					in.Defs[idx].Val = r
					used[r] = true
				} else if in.Defs[idx].Val.IsPhys() {
					used[in.Defs[idx].Val] = true
				}
			}
			for idx := range in.Uses {
				if r, ok := assign[in.Uses[idx].Val]; ok {
					in.Uses[idx].Val = r
					used[r] = true
				} else if in.Uses[idx].Val.IsPhys() {
					used[in.Uses[idx].Val] = true
				}
			}
		}
	}
	st.ColorsUsed = len(used)
	f.NoteMutation() // the commit rewrote operands in place
	return false, nil
}

// spillValue rewrites every def of v to store to its slot and every use
// to reload into a fresh short-lived temporary.
func spillValue(f *ir.Func, v *ir.Value, slot int64, st *AllocStats, noSpill map[*ir.Value]bool) {
	sp := f.Target.SP
	for _, b := range f.Blocks {
		for idx := 0; idx < len(b.Instrs); idx++ {
			in := b.Instrs[idx]
			// Reload before uses.
			var tmp *ir.Value
			for ui := range in.Uses {
				if in.Uses[ui].Val != v {
					continue
				}
				if tmp == nil {
					tmp = f.NewValue(v.Name + ".r")
					addr := f.NewValue("")
					off := f.NewValue("")
					noSpill[tmp], noSpill[addr], noSpill[off] = true, true, true
					b.InsertAt(idx, &ir.Instr{Op: ir.Const, Imm: slot,
						Defs: []ir.Operand{{Val: off}}})
					b.InsertAt(idx+1, &ir.Instr{Op: ir.Add,
						Defs: []ir.Operand{{Val: addr}},
						Uses: []ir.Operand{{Val: sp}, {Val: off}}})
					b.InsertAt(idx+2, &ir.Instr{Op: ir.Load,
						Defs: []ir.Operand{{Val: tmp}},
						Uses: []ir.Operand{{Val: addr}}})
					idx += 3
					st.SpillLoads++
				}
				in.Uses[ui].Val = tmp
			}
			// Store after defs.
			for di := range in.Defs {
				if in.Defs[di].Val != v {
					continue
				}
				tmp2 := f.NewValue(v.Name + ".s")
				in.Defs[di].Val = tmp2
				addr := f.NewValue("")
				off := f.NewValue("")
				noSpill[tmp2], noSpill[addr], noSpill[off] = true, true, true
				b.InsertAt(idx+1, &ir.Instr{Op: ir.Const, Imm: slot,
					Defs: []ir.Operand{{Val: off}}})
				b.InsertAt(idx+2, &ir.Instr{Op: ir.Add,
					Defs: []ir.Operand{{Val: addr}},
					Uses: []ir.Operand{{Val: sp}, {Val: off}}})
				b.InsertAt(idx+3, &ir.Instr{Op: ir.Store,
					Uses: []ir.Operand{{Val: addr}, {Val: tmp2}}})
				idx += 3
				st.SpillStores++
			}
		}
	}
	f.NoteMutation() // spill rewriting touched operands in place
}
