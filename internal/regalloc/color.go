package regalloc

import (
	"fmt"
	"sort"

	"outofssa/internal/analysis"
	"outofssa/internal/bitset"
	"outofssa/internal/cfg"
	"outofssa/internal/ir"
)

// AllocStats describes a register allocation run.
type AllocStats struct {
	// ColorsUsed is the number of distinct physical registers assigned.
	ColorsUsed int
	// Spills is the number of values spilled to stack slots, SpillLoads
	// and SpillStores the memory traffic inserted.
	Spills      int
	SpillLoads  int
	SpillStores int
	// Rounds is the number of build-color rounds until spill-free.
	Rounds int
	// MaxPressure is the maximum number of simultaneously live values
	// observed before allocation.
	MaxPressure int
}

// Allocate is a Chaitin-Briggs graph-coloring register allocator for the
// non-SSA machine code produced by the out-of-SSA translators: it
// assigns every virtual register to a dedicated register of the target
// (R0..R15 and P0..P7; SP is reserved for the stack), spilling to
// SP-relative slots when the graph is uncolorable (Briggs-style
// optimistic coloring, spill costs weighted by 5^loopdepth and divided
// by degree).
//
// The paper stops before this phase ([LIM4]: "in the case of strong
// register pressure, the problem becomes different") — the allocator is
// provided as the natural downstream consumer so the effect of the
// coalescing decisions on colorability can be measured
// (BenchmarkRegisterPressure).
func Allocate(f *ir.Func) (*AllocStats, error) {
	return AllocateLimited(f, 0)
}

// AllocateLimited restricts the pool to the first maxRegs allocatable
// registers (0 means all of them); small pools force the spill path and
// expose the register-pressure interplay of [LIM4].
func AllocateLimited(f *ir.Func, maxRegs int) (*AllocStats, error) {
	st := &AllocStats{}
	cfg.ComputeLoopDepth(f)

	// Allocatable pool: every dedicated register except SP.
	var pool []ir.ValueID
	pool = append(pool, f.Target.R...)
	pool = append(pool, f.Target.P...)
	if maxRegs > 0 && maxRegs < len(pool) {
		pool = pool[:maxRegs]
	}
	k := len(pool)
	poolIdx := make(map[ir.ValueID]int, k)
	for i, r := range pool {
		poolIdx[r] = i
	}

	// Pre-assign spill slots lazily; the frame grows downward from SP.
	nextSlot := int64(64) // leave room for the workloads' own SP traffic
	spillSlot := make(map[ir.ValueID]int64)
	// Reload/store temporaries have minimal live ranges and must never be
	// spill candidates themselves, or spilling diverges.
	noSpill := make(map[ir.ValueID]bool)

	for {
		st.Rounds++
		if st.Rounds > 40 {
			return nil, fmt.Errorf("regalloc: no fixed point after %d rounds", st.Rounds)
		}
		spilled, err := colorRound(f, pool, poolIdx, st, spillSlot, &nextSlot, noSpill)
		if err != nil {
			return nil, err
		}
		if !spilled {
			break
		}
	}
	return st, nil
}

// colorRound builds the interference graph and attempts a coloring;
// on failure it spills the chosen candidates and reports true.
func colorRound(f *ir.Func, pool []ir.ValueID, poolIdx map[ir.ValueID]int,
	st *AllocStats, spillSlot map[ir.ValueID]int64, nextSlot *int64,
	noSpill map[ir.ValueID]bool) (bool, error) {

	nv := f.NumValues()
	k := len(pool)
	live := analysis.Liveness(f)

	adj := make([]*bitset.Set, nv)
	for i := range adj {
		adj[i] = bitset.New(nv)
	}
	addEdge := func(a, b int) {
		if a != b {
			adj[a].Add(b)
			adj[b].Add(a)
		}
	}
	cost := make([]float64, nv)
	pressure := 0
	for _, b := range f.Blocks() {
		w := 1.0
		for d := 0; d < b.LoopDepth; d++ {
			w *= 5
		}
		cur := live.ExitLiveSet(b).Copy()
		if n := cur.Len(); n > pressure {
			pressure = n
		}
		for i := b.NumInstrs() - 1; i >= 0; i-- {
			in := b.Instr(i)
			for _, d := range in.Defs() {
				cur.Remove(int(d.Val))
				cost[d.Val] += w
			}
			for _, d := range in.Defs() {
				dv := d.Val
				cur.ForEach(func(l int) {
					if in.Op() == ir.Copy && l == int(in.Use(0)) {
						return
					}
					addEdge(int(dv), l)
				})
				for _, d2 := range in.Defs() {
					addEdge(int(dv), int(d2.Val))
				}
			}
			for _, u := range in.Uses() {
				cur.Add(int(u.Val))
				cost[u.Val] += w
			}
			if n := cur.Len(); n > pressure {
				pressure = n
			}
		}
	}
	if pressure > st.MaxPressure {
		st.MaxPressure = pressure
	}

	// Also: every pair of distinct physical registers interferes.
	var virtuals []ir.ValueID
	inUse := make([]bool, nv)
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			for _, o := range in.Defs() {
				inUse[o.Val] = true
			}
			for _, o := range in.Uses() {
				inUse[o.Val] = true
			}
		}
	}
	for id := 0; id < nv; id++ {
		v := ir.ValueID(id)
		if !f.IsPhys(v) && inUse[v] {
			virtuals = append(virtuals, v)
		}
	}

	degree := func(v ir.ValueID) int { return adj[v].Len() }

	// Simplify with optimistic push (Briggs).
	removed := make([]bool, nv)
	var stack []ir.ValueID
	remaining := append([]ir.ValueID(nil), virtuals...)
	for len(remaining) > 0 {
		// Pick a low-degree node if possible.
		pick := -1
		for i, v := range remaining {
			deg := 0
			adj[v].ForEach(func(n int) {
				if !removed[n] {
					deg++
				}
			})
			if deg < k {
				pick = i
				break
			}
		}
		if pick < 0 {
			// Spill candidate: minimal cost/degree ratio (deterministic
			// tie-break by ID); pushed optimistically. Reload temporaries
			// are never candidates.
			best, bestRatio := -1, 0.0
			for i, v := range remaining {
				if noSpill[v] {
					continue
				}
				d := degree(v)
				if d == 0 {
					d = 1
				}
				ratio := cost[v] / float64(d)
				if best < 0 || ratio < bestRatio ||
					(ratio == bestRatio && v < remaining[best]) {
					best, bestRatio = i, ratio
				}
			}
			if best < 0 {
				best = 0 // only temporaries remain: push any, optimistically
			}
			pick = best
		}
		v := remaining[pick]
		remaining = append(remaining[:pick], remaining[pick+1:]...)
		removed[v] = true
		stack = append(stack, v)
	}

	// Select.
	assign := make(map[ir.ValueID]ir.ValueID)
	var mustSpill []ir.ValueID
	for i := len(stack) - 1; i >= 0; i-- {
		v := stack[i]
		taken := make([]bool, k)
		adj[v].ForEach(func(n int) {
			nb := ir.ValueID(n)
			if f.IsPhys(nb) {
				if idx, ok := poolIdx[nb]; ok {
					taken[idx] = true
				}
				return
			}
			if r, ok := assign[nb]; ok {
				taken[poolIdx[r]] = true
			}
		})
		colored := false
		for c := 0; c < k; c++ {
			if !taken[c] {
				assign[v] = pool[c]
				colored = true
				break
			}
		}
		if !colored {
			mustSpill = append(mustSpill, v)
		}
	}

	if len(mustSpill) > 0 {
		sort.Slice(mustSpill, func(i, j int) bool { return mustSpill[i] < mustSpill[j] })
		progress := false
		doSpill := func(v ir.ValueID) error {
			if _, ok := spillSlot[v]; ok {
				return fmt.Errorf("regalloc: %v spilled twice", f.VStr(v))
			}
			spillSlot[v] = *nextSlot
			*nextSlot += 8
			st.Spills++
			spillValue(f, v, spillSlot[v], st, noSpill)
			progress = true
			return nil
		}
		spilledThisRound := make(map[ir.ValueID]bool)
		for _, v := range mustSpill {
			if !noSpill[v] {
				if err := doSpill(v); err != nil {
					return false, err
				}
				spilledThisRound[v] = true
				continue
			}
			// An unspillable reload temporary failed to color: relieve the
			// pressure by spilling its cheapest ordinary neighbour instead.
			best := ir.NoValue
			bestRatio := 0.0
			adj[v].ForEach(func(n int) {
				nb := ir.ValueID(n)
				if f.IsPhys(nb) || noSpill[nb] || spilledThisRound[nb] {
					return
				}
				if _, ok := spillSlot[nb]; ok {
					return
				}
				d := adj[nb].Len()
				if d == 0 {
					d = 1
				}
				ratio := cost[nb] / float64(d)
				if best == ir.NoValue || ratio < bestRatio || (ratio == bestRatio && nb < best) {
					best, bestRatio = nb, ratio
				}
			})
			if best != ir.NoValue {
				if err := doSpill(best); err != nil {
					return false, err
				}
				spilledThisRound[best] = true
			}
		}
		if !progress {
			return false, fmt.Errorf("regalloc: %d uncolorable reload temporaries with %d registers",
				len(mustSpill), len(pool))
		}
		return true, nil
	}

	// Commit: rewrite every virtual operand to its register.
	used := make(map[ir.ValueID]bool)
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			for idx := 0; idx < in.NumDefs(); idx++ {
				if r, ok := assign[in.Def(idx)]; ok {
					in.SetDefVal(idx, r)
					used[r] = true
				} else if f.IsPhys(in.Def(idx)) {
					used[in.Def(idx)] = true
				}
			}
			for idx := 0; idx < in.NumUses(); idx++ {
				if r, ok := assign[in.Use(idx)]; ok {
					in.SetUseVal(idx, r)
					used[r] = true
				} else if f.IsPhys(in.Use(idx)) {
					used[in.Use(idx)] = true
				}
			}
		}
	}
	st.ColorsUsed = len(used)
	return false, nil
}

// spillValue rewrites every def of v to store to its slot and every use
// to reload into a fresh short-lived temporary.
func spillValue(f *ir.Func, v ir.ValueID, slot int64, st *AllocStats, noSpill map[ir.ValueID]bool) {
	sp := f.Target.SP
	for _, b := range f.Blocks() {
		for idx := 0; idx < b.NumInstrs(); idx++ {
			in := b.Instr(idx)
			// Reload before uses.
			tmp := ir.NoValue
			for ui := 0; ui < in.NumUses(); ui++ {
				if in.Use(ui) != v {
					continue
				}
				if tmp == ir.NoValue {
					tmp = f.NewValue(f.ValueName(v) + ".r")
					addr := f.NewValue("")
					off := f.NewValue("")
					noSpill[tmp], noSpill[addr], noSpill[off] = true, true, true
					cst := f.NewInstr(ir.Const, ir.Ops(off), nil)
					cst.Imm = slot
					b.InsertAt(idx, cst)
					b.InsertAt(idx+1, f.NewInstr(ir.Add, ir.Ops(addr), ir.Ops(sp, off)))
					b.InsertAt(idx+2, f.NewInstr(ir.Load, ir.Ops(tmp), ir.Ops(addr)))
					idx += 3
					st.SpillLoads++
				}
				in.SetUseVal(ui, tmp)
			}
			// Store after defs.
			for di := 0; di < in.NumDefs(); di++ {
				if in.Def(di) != v {
					continue
				}
				tmp2 := f.NewValue(f.ValueName(v) + ".s")
				in.SetDefVal(di, tmp2)
				addr := f.NewValue("")
				off := f.NewValue("")
				noSpill[tmp2], noSpill[addr], noSpill[off] = true, true, true
				cst := f.NewInstr(ir.Const, ir.Ops(off), nil)
				cst.Imm = slot
				b.InsertAt(idx+1, cst)
				b.InsertAt(idx+2, f.NewInstr(ir.Add, ir.Ops(addr), ir.Ops(sp, off)))
				b.InsertAt(idx+3, f.NewInstr(ir.Store, nil, ir.Ops(addr, tmp2)))
				idx += 3
				st.SpillStores++
			}
		}
	}
}
