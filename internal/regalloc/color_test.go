package regalloc_test

import (
	"testing"

	"outofssa/internal/ir"
	"outofssa/internal/pipeline"
	"outofssa/internal/regalloc"
	"outofssa/internal/testprog"
	"outofssa/internal/workload"
)

// outputsEqual compares only .output values: spilling legitimately adds
// stack stores to the observable store trace.
func outputsEqual(a, b *ir.ExecResult) bool {
	if len(a.Outputs) != len(b.Outputs) {
		return false
	}
	for i := range a.Outputs {
		if a.Outputs[i] != b.Outputs[i] {
			return false
		}
	}
	return true
}

func noVirtualsRemain(t *testing.T, f *ir.Func) {
	t.Helper()
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			for _, o := range append(append([]ir.Operand{}, in.Defs()...), in.Uses()...) {
				if !f.IsPhys(o.Val) {
					t.Fatalf("virtual %v survived allocation in %q", f.VStr(o.Val), in)
				}
			}
		}
	}
}

func TestAllocateKernels(t *testing.T) {
	args := []int64{5000, 6000, 8, 3}
	n := len(workload.VALcc1().Funcs)
	for i := 0; i < n; i++ {
		ref := workload.VALcc1().Funcs[i]
		want, err := ir.Exec(ref, args, 300000)
		if err != nil {
			t.Fatal(err)
		}
		f := workload.VALcc1().Funcs[i]
		if _, err := pipeline.Run(f, pipeline.Configs[pipeline.ExpLphiABIC]); err != nil {
			t.Fatal(err)
		}
		st, err := regalloc.Allocate(f)
		if err != nil {
			t.Fatalf("%s: %v", ref.Name, err)
		}
		noVirtualsRemain(t, f)
		if err := f.Verify(); err != nil {
			t.Fatalf("%s: %v", ref.Name, err)
		}
		got, err := ir.Exec(f, args, 600000)
		if err != nil {
			t.Fatalf("%s: %v", ref.Name, err)
		}
		if !outputsEqual(want, got) {
			t.Fatalf("%s: allocation changed outputs: %v vs %v\n%s",
				ref.Name, want.Outputs, got.Outputs, f)
		}
		if st.ColorsUsed > 24 {
			t.Fatalf("%s: %d colors used", ref.Name, st.ColorsUsed)
		}
	}
}

// TestAllocateForcedSpills: with a tiny register pool the DCT butterfly
// (high pressure, straight-line) must spill and still compute correctly.
func TestAllocateForcedSpills(t *testing.T) {
	args := []int64{5000, 6000}
	// dct4 is index 15 in the kernel list; find it by name instead.
	find := func() *ir.Func {
		for _, f := range workload.VALcc1().Funcs {
			if f.Name == "dct4_A" {
				return f
			}
		}
		t.Fatal("dct4_A not found")
		return nil
	}
	ref := find()
	want, err := ir.Exec(ref, args, 100000)
	if err != nil {
		t.Fatal(err)
	}
	f := find()
	if _, err := pipeline.Run(f, pipeline.Configs[pipeline.ExpLphiABIC]); err != nil {
		t.Fatal(err)
	}
	st, err := regalloc.AllocateLimited(f, 6)
	if err != nil {
		t.Fatal(err)
	}
	if st.Spills == 0 {
		t.Fatalf("expected spills with 6 registers (pressure %d)", st.MaxPressure)
	}
	noVirtualsRemain(t, f)
	got, err := ir.Exec(f, args, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if !outputsEqual(want, got) {
		t.Fatalf("spilling broke the DCT: %v vs %v\n%s", want.Outputs, got.Outputs, f)
	}
}

func TestAllocateRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		args := []int64{seed + 3000, 17, 4}
		ref := testprog.Rand(seed, testprog.DefaultRandOptions())
		want, err := ir.Exec(ref, args, 500000)
		if err != nil {
			t.Fatal(err)
		}
		f := testprog.Rand(seed, testprog.DefaultRandOptions())
		if _, err := pipeline.Run(f, pipeline.Configs[pipeline.ExpLphiABIC]); err != nil {
			t.Fatal(err)
		}
		for _, limit := range []int{0, 6} {
			g := f.Clone()
			if _, err := regalloc.AllocateLimited(g, limit); err != nil {
				t.Fatalf("seed %d limit %d: %v", seed, limit, err)
			}
			noVirtualsRemain(t, g)
			got, err := ir.Exec(g, args, 1500000)
			if err != nil {
				t.Fatalf("seed %d limit %d: %v", seed, limit, err)
			}
			if !outputsEqual(want, got) {
				t.Fatalf("seed %d limit %d: outputs changed", seed, limit)
			}
		}
	}
}

// TestPressureReporting: the DCT butterfly holds many values live at
// once; MaxPressure must reflect that.
func TestPressureReporting(t *testing.T) {
	var f *ir.Func
	for _, g := range workload.VALcc1().Funcs {
		if g.Name == "mat2mul_A" {
			f = g
		}
	}
	if f == nil {
		t.Fatal("mat2mul_A not found")
	}
	if _, err := pipeline.Run(f, pipeline.Configs[pipeline.ExpLphiABIC]); err != nil {
		t.Fatal(err)
	}
	st, err := regalloc.Allocate(f)
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxPressure < 6 {
		t.Fatalf("mat2mul pressure = %d, expected >= 6", st.MaxPressure)
	}
}
