package lai_test

import (
	"os"
	"path/filepath"
	"testing"

	"outofssa/internal/ir"
	"outofssa/internal/lai"
	"outofssa/internal/pipeline"
)

// TestCorpus parses every LAI file in testdata and pushes it through
// every experiment configuration, comparing observable behaviour against
// the freshly parsed original.
func TestCorpus(t *testing.T) {
	files, err := filepath.Glob("testdata/*.lai")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 {
		t.Fatalf("corpus too small: %v", files)
	}
	argSets := [][]int64{{0, 0}, {1000, 5}, {64, 8}, {4096, 70}}
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		base, err := lai.Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if err := base.Verify(); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		var wants []*ir.ExecResult
		for _, args := range argSets {
			w, err := ir.Exec(base.Clone(), args, 300000)
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			wants = append(wants, w)
		}
		for name, conf := range pipeline.Configs {
			f := base.Clone()
			if _, err := pipeline.Run(f, conf); err != nil {
				t.Fatalf("%s/%s: %v", path, name, err)
			}
			for i, args := range argSets {
				got, err := ir.Exec(f, args, 600000)
				if err != nil {
					t.Fatalf("%s/%s: %v", path, name, err)
				}
				if !wants[i].Equal(got) {
					t.Fatalf("%s/%s args=%v: behaviour changed\n%s", path, name, args, f)
				}
			}
		}
	}
}

// TestCorpusMoveQuality: on the DSP corpus the full pipeline must reach
// single-digit move counts — these kernels are exactly the code shape the
// paper's algorithm was built for.
func TestCorpusMoveQuality(t *testing.T) {
	files, _ := filepath.Glob("testdata/*.lai")
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		f, err := lai.Parse(string(src))
		if err != nil {
			t.Fatal(err)
		}
		r, err := pipeline.Run(f, pipeline.Configs[pipeline.ExpLphiABIC])
		if err != nil {
			t.Fatal(err)
		}
		if r.Moves > 9 {
			t.Errorf("%s: %d moves remain under Lphi,ABI+C:\n%s", path, r.Moves, f)
		}
	}
}
