// Package lai parses a textual Linear-Assembly-Input-like language into
// the IR. The LAI language of the paper is "a superset of the target
// assembly language [that] allows symbolic register names to be freely
// used"; this dialect keeps that spirit:
//
//	.func fir
//	.input C:R0, P:P0            ; parameters, with optional register pins
//	entry:
//	    load  A, @P              ; A = mem[P]
//	    autoadd Q, P, 1          ; 2-operand pointer auto-increment
//	    load  B, @Q
//	    call  D = f(A, B)
//	    add   E, C, D
//	    make  L, 0x00A1
//	    more  K, L, 0x2BFA       ; 2-operand immediate completion
//	    sub   F, E, K
//	    blt   F, C, again        ; compare-and-branch (falls through)
//	    ret   F
//	again:
//	    jump  entry
//	.endfunc
//
// Identifiers R0..R15, P0..P7 and SP denote the dedicated registers of
// the target; every other identifier is a symbolic (virtual) register.
// An operand may carry an explicit pin with the ^ syntax (X^R0). Blocks
// not ended by a terminator fall through to the next label.
package lai

import (
	"fmt"
	"strconv"
	"strings"

	"outofssa/internal/ir"
)

// ParseError reports a syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("lai: line %d: %s", e.Line, e.Msg)
}

// ParseFile parses a text containing one or more .func sections.
func ParseFile(src string) ([]*ir.Func, error) {
	var funcs []*ir.Func
	p := &parser{lines: strings.Split(src, "\n")}
	for {
		p.skipBlank()
		if p.eof() {
			return funcs, nil
		}
		f, err := p.parseFunc()
		if err != nil {
			return nil, err
		}
		funcs = append(funcs, f)
	}
}

// Parse parses a single function and returns it.
func Parse(src string) (*ir.Func, error) {
	fs, err := ParseFile(src)
	if err != nil {
		return nil, err
	}
	if len(fs) != 1 {
		return nil, fmt.Errorf("lai: expected exactly one function, found %d", len(fs))
	}
	return fs[0], nil
}

type parser struct {
	lines []string
	pos   int

	fn     *ir.Func
	vals   map[string]ir.ValueID
	blocks map[string]*ir.Block
}

func (p *parser) eof() bool { return p.pos >= len(p.lines) }

func (p *parser) skipBlank() {
	for !p.eof() {
		l := stripComment(p.lines[p.pos])
		if strings.TrimSpace(l) != "" {
			return
		}
		p.pos++
	}
}

func stripComment(l string) string {
	if i := strings.IndexByte(l, ';'); i >= 0 {
		return l[:i]
	}
	return l
}

func (p *parser) errf(format string, args ...interface{}) error {
	return &ParseError{Line: p.pos + 1, Msg: fmt.Sprintf(format, args...)}
}

// pending is an unresolved control transfer recorded during the first
// pass and wired once all labels are known.
type pending struct {
	block   *ir.Block
	line    int
	op      ir.Op // Br or Jump
	targets []string
}

func (p *parser) parseFunc() (*ir.Func, error) {
	header := strings.Fields(stripComment(p.lines[p.pos]))
	if len(header) != 2 || header[0] != ".func" {
		return nil, p.errf("expected '.func NAME', got %q", strings.TrimSpace(p.lines[p.pos]))
	}
	p.pos++

	p.fn = ir.NewFunc(header[1])
	p.vals = make(map[string]ir.ValueID)
	p.blocks = make(map[string]*ir.Block)
	cur := p.fn.NewBlock("entry")
	p.blocks["entry"] = cur

	var pendings []*pending
	var order []*ir.Block // blocks in textual order for fallthrough
	order = append(order, cur)
	terminated := false

	for !p.eof() {
		raw := stripComment(p.lines[p.pos])
		line := strings.TrimSpace(raw)
		if line == "" {
			p.pos++
			continue
		}
		if line == ".endfunc" {
			p.pos++
			break
		}
		if strings.HasSuffix(line, ":") && !strings.ContainsAny(line, " \t") {
			name := strings.TrimSuffix(line, ":")
			blk, ok := p.blocks[name]
			if !ok {
				blk = p.fn.NewBlock(name)
				p.blocks[name] = blk
			}
			if blk == cur {
				p.pos++
				continue
			}
			// Fall through from an unterminated previous block.
			if !terminated {
				cur.Append(p.fn.NewInstr(ir.Jump, nil, nil))
				p.fn.AddEdge(cur, blk)
			}
			cur = blk
			order = append(order, blk)
			terminated = false
			p.pos++
			continue
		}

		// Instructions after a branch without an intervening label open an
		// anonymous fall-through block.
		if terminated {
			blk := p.fn.NewBlock("")
			cur = blk
			order = append(order, blk)
			terminated = false
		}

		pend, err := p.parseInstr(cur, line)
		if err != nil {
			return nil, err
		}
		if pend != nil {
			pend.line = p.pos + 1
			pendings = append(pendings, pend)
			terminated = true
		}
		if t := cur.Terminator(); t != nil && t.Op() == ir.Output {
			terminated = true
		}
		p.pos++
	}

	// Resolve branch targets. Single-target Br falls through to the next
	// textual block.
	for _, pd := range pendings {
		resolve := func(name string) (*ir.Block, error) {
			b, ok := p.blocks[name]
			if !ok {
				return nil, &ParseError{Line: pd.line, Msg: fmt.Sprintf("undefined label %q", name)}
			}
			return b, nil
		}
		switch pd.op {
		case ir.Jump:
			tgt, err := resolve(pd.targets[0])
			if err != nil {
				return nil, err
			}
			p.fn.AddEdge(pd.block, tgt)
		case ir.Br:
			taken, err := resolve(pd.targets[0])
			if err != nil {
				return nil, err
			}
			var fall *ir.Block
			if len(pd.targets) == 2 {
				fall, err = resolve(pd.targets[1])
				if err != nil {
					return nil, err
				}
			} else {
				// Fall through to the next textual block.
				idx := -1
				for i, b := range order {
					if b == pd.block {
						idx = i
					}
				}
				if idx < 0 || idx+1 >= len(order) {
					return nil, &ParseError{Line: pd.line, Msg: "compare-and-branch with nothing to fall through to"}
				}
				fall = order[idx+1]
			}
			p.fn.AddEdge(pd.block, taken)
			p.fn.AddEdge(pd.block, fall)
		}
	}

	if err := p.fn.Verify(); err != nil {
		return nil, fmt.Errorf("lai: %s: %v", p.fn.Name, err)
	}
	return p.fn, nil
}

// val resolves an identifier to a value, mapping register names to the
// target's dedicated registers.
func (p *parser) val(name string) (ir.ValueID, error) {
	t := p.fn.Target
	switch {
	case name == "SP":
		return t.SP, nil
	case len(name) >= 2 && name[0] == 'R' && isDigits(name[1:]):
		n, _ := strconv.Atoi(name[1:])
		if n < len(t.R) {
			return t.R[n], nil
		}
		return ir.NoValue, fmt.Errorf("no register %s", name)
	case len(name) >= 2 && name[0] == 'P' && isDigits(name[1:]):
		n, _ := strconv.Atoi(name[1:])
		if n < len(t.P) {
			return t.P[n], nil
		}
		return ir.NoValue, fmt.Errorf("no register %s", name)
	}
	if v, ok := p.vals[name]; ok {
		return v, nil
	}
	v := p.fn.NewValue(name)
	p.vals[name] = v
	return v, nil
}

func isDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// operand parses "name" or "name^PIN" or "@name" (address flavor is
// equivalent to a plain use).
func (p *parser) operand(tok string) (ir.Operand, error) {
	tok = strings.TrimPrefix(strings.TrimSpace(tok), "@")
	var pinName string
	if i := strings.IndexByte(tok, '^'); i >= 0 {
		tok, pinName = tok[:i], tok[i+1:]
	}
	v, err := p.val(tok)
	if err != nil {
		return ir.Operand{}, err
	}
	op := ir.Operand{Val: v}
	if pinName != "" {
		pin, err := p.val(pinName)
		if err != nil {
			return ir.Operand{}, err
		}
		op = op.WithPin(pin)
	}
	return op, nil
}

func (p *parser) operands(toks []string) ([]ir.Operand, error) {
	out := make([]ir.Operand, len(toks))
	for i, t := range toks {
		o, err := p.operand(t)
		if err != nil {
			return nil, err
		}
		out[i] = o
	}
	return out, nil
}

func parseImm(tok string) (int64, error) {
	tok = strings.TrimSpace(tok)
	return strconv.ParseInt(tok, 0, 64)
}

func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

var binaryOps = map[string]ir.Op{
	"add": ir.Add, "sub": ir.Sub, "mul": ir.Mul, "div": ir.Div,
	"rem": ir.Rem, "and": ir.And, "or": ir.Or, "xor": ir.Xor,
	"shl": ir.Shl, "shr": ir.Shr, "min": ir.Min, "max": ir.Max,
	"cmpeq": ir.CmpEQ, "cmpne": ir.CmpNE, "cmplt": ir.CmpLT,
	"cmple": ir.CmpLE, "cmpgt": ir.CmpGT, "cmpge": ir.CmpGE,
}

var unaryOps = map[string]ir.Op{"neg": ir.Neg, "not": ir.Not}

var cmpBranches = map[string]ir.Op{
	"beq": ir.CmpEQ, "bne": ir.CmpNE, "blt": ir.CmpLT,
	"ble": ir.CmpLE, "bgt": ir.CmpGT, "bge": ir.CmpGE,
}

// parseInstr parses one instruction line into blk; control transfers are
// returned as pendings for later wiring.
func (p *parser) parseInstr(blk *ir.Block, line string) (*pending, error) {
	op, rest, _ := strings.Cut(line, " ")
	if t, r, ok := strings.Cut(op, "\t"); ok {
		op, rest = t, r+" "+rest
	}
	op = strings.TrimSpace(op)
	args := splitArgs(rest)

	need := func(n int) error {
		if len(args) != n {
			return p.errf("%s expects %d operands, got %d", op, n, len(args))
		}
		return nil
	}

	switch {
	case op == ".input":
		var defs []ir.Operand
		for _, a := range args {
			name, pinName, hasPin := strings.Cut(a, ":")
			o, err := p.operand(strings.TrimSpace(name))
			if err != nil {
				return nil, p.errf("%v", err)
			}
			if hasPin {
				pin, err := p.val(strings.TrimSpace(pinName))
				if err != nil {
					return nil, p.errf("%v", err)
				}
				o = o.WithPin(pin)
			}
			defs = append(defs, o)
		}
		in := p.fn.NewInstr(ir.Input, defs, nil)
		in.Imm = int64(len(defs))
		blk.Append(in)
		return nil, nil

	case op == ".output" || op == "ret":
		uses, err := p.operands(args)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		blk.Append(p.fn.NewInstr(ir.Output, nil, uses))
		return nil, nil

	case op == "mov":
		if err := need(2); err != nil {
			return nil, err
		}
		ops, err := p.operands(args)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		blk.Append(p.fn.NewInstr(ir.Copy, ops[:1], ops[1:]))
		return nil, nil

	case op == "const" || op == "make":
		if err := need(2); err != nil {
			return nil, err
		}
		d, err := p.operand(args[0])
		if err != nil {
			return nil, p.errf("%v", err)
		}
		imm, err := parseImm(args[1])
		if err != nil {
			return nil, p.errf("bad immediate %q", args[1])
		}
		o := ir.Const
		if op == "make" {
			o = ir.Make
		}
		cin := p.fn.NewInstr(o, []ir.Operand{d}, nil)
		cin.Imm = imm
		blk.Append(cin)
		return nil, nil

	case op == "more" || op == "autoadd":
		if err := need(3); err != nil {
			return nil, err
		}
		ops, err := p.operands(args[:2])
		if err != nil {
			return nil, p.errf("%v", err)
		}
		imm, err := parseImm(args[2])
		if err != nil {
			return nil, p.errf("bad immediate %q", args[2])
		}
		o := ir.More
		if op == "autoadd" {
			o = ir.AutoAdd
		}
		min := p.fn.NewInstr(o, ops[:1], ops[1:])
		min.Imm = imm
		blk.Append(min)
		return nil, nil

	case op == "mac" || op == "select":
		if err := need(4); err != nil {
			return nil, err
		}
		ops, err := p.operands(args)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		o := ir.Mac
		if op == "select" {
			o = ir.Select
		}
		blk.Append(p.fn.NewInstr(o, ops[:1], ops[1:]))
		return nil, nil

	case op == "load":
		if err := need(2); err != nil {
			return nil, err
		}
		ops, err := p.operands(args)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		blk.Append(p.fn.NewInstr(ir.Load, ops[:1], ops[1:]))
		return nil, nil

	case op == "store":
		if err := need(2); err != nil {
			return nil, err
		}
		ops, err := p.operands(args)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		blk.Append(p.fn.NewInstr(ir.Store, nil, ops))
		return nil, nil

	case op == "call":
		// call [d1, d2 =] callee(a, b, ...)
		body := rest
		var defs []ir.Operand
		if eq := strings.Index(body, "="); eq >= 0 {
			var err error
			defs, err = p.operands(splitArgs(body[:eq]))
			if err != nil {
				return nil, p.errf("%v", err)
			}
			body = body[eq+1:]
		}
		body = strings.TrimSpace(body)
		open := strings.IndexByte(body, '(')
		if open < 0 || !strings.HasSuffix(body, ")") {
			return nil, p.errf("call expects callee(args...)")
		}
		callee := strings.TrimSpace(body[:open])
		uses, err := p.operands(splitArgs(body[open+1 : len(body)-1]))
		if err != nil {
			return nil, p.errf("%v", err)
		}
		cl := p.fn.NewInstr(ir.Call, defs, uses)
		cl.Callee = callee
		blk.Append(cl)
		return nil, nil

	case op == "jump":
		if err := need(1); err != nil {
			return nil, err
		}
		blk.Append(p.fn.NewInstr(ir.Jump, nil, nil))
		return &pending{block: blk, op: ir.Jump, targets: args}, nil

	case op == "br":
		if len(args) != 3 {
			return nil, p.errf("br expects cond, taken, fallthrough")
		}
		c, err := p.operand(args[0])
		if err != nil {
			return nil, p.errf("%v", err)
		}
		blk.Append(p.fn.NewInstr(ir.Br, nil, []ir.Operand{c}))
		return &pending{block: blk, op: ir.Br, targets: args[1:]}, nil

	default:
		if cmpOp, ok := cmpBranches[op]; ok {
			if len(args) != 3 {
				return nil, p.errf("%s expects a, b, label", op)
			}
			ops, err := p.operands(args[:2])
			if err != nil {
				return nil, p.errf("%v", err)
			}
			tmp := p.fn.NewValue("")
			blk.Append(p.fn.NewInstr(cmpOp, []ir.Operand{{Val: tmp}}, ops))
			blk.Append(p.fn.NewInstr(ir.Br, nil, []ir.Operand{{Val: tmp}}))
			return &pending{block: blk, op: ir.Br, targets: args[2:]}, nil
		}
		if o, ok := binaryOps[op]; ok {
			if err := need(3); err != nil {
				return nil, err
			}
			ops, err := p.operands(args)
			if err != nil {
				return nil, p.errf("%v", err)
			}
			blk.Append(p.fn.NewInstr(o, ops[:1], ops[1:]))
			return nil, nil
		}
		if o, ok := unaryOps[op]; ok {
			if err := need(2); err != nil {
				return nil, err
			}
			ops, err := p.operands(args)
			if err != nil {
				return nil, p.errf("%v", err)
			}
			blk.Append(p.fn.NewInstr(o, ops[:1], ops[1:]))
			return nil, nil
		}
	}
	return nil, p.errf("unknown instruction %q", op)
}
