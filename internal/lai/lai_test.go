package lai_test

import (
	"strings"
	"testing"

	"outofssa/internal/ir"
	"outofssa/internal/lai"
	"outofssa/internal/pipeline"
)

const fig1 = `
.func fig1
.input C:R0, P:P0
entry:
    load    A, @P
    autoadd Q, P, 1
    load    B, @Q
    call    D = f(A, B)
    add     E, C, D
    make    L, 0x00A1
    more    K, L, 0x2BFA
    sub     F, E, K
    ret     F
.endfunc
`

func TestParseFigure1(t *testing.T) {
	f, err := lai.Parse(fig1)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != "fig1" {
		t.Fatalf("name = %q", f.Name)
	}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	// The .input pins must be present.
	in := f.Entry().Instr(0)
	if in.Op() != ir.Input || in.DefOp(0).Pin() != f.Target.R[0] || in.DefOp(1).Pin() != f.Target.P[0] {
		t.Fatalf("input pins wrong: %v", in)
	}
	res, err := ir.Exec(f, []int64{7, 1000}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 1 {
		t.Fatalf("outputs: %v", res.Outputs)
	}
	// F = (C + f(A,B)) - 0x00A12BFA must depend on C.
	res2, _ := ir.Exec(f, []int64{8, 1000}, 1000)
	if res.Outputs[0]+1 != res2.Outputs[0] {
		t.Fatalf("F must be C-linear: %v vs %v", res.Outputs, res2.Outputs)
	}
}

func TestParseControlFlow(t *testing.T) {
	src := `
.func loop
.input n
entry:
    const i, 0
    const s, 0
    const one, 1
head:
    blt i, n, body
    ret s
body:
    add s, s, i
    add i, i, one
    jump head
.endfunc
`
	f, err := lai.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	for n := int64(0); n < 8; n++ {
		res, err := ir.Exec(f, []int64{n}, 10000)
		if err != nil {
			t.Fatal(err)
		}
		if want := n * (n - 1) / 2; res.Outputs[0] != want {
			t.Fatalf("loop(%d) = %d, want %d", n, res.Outputs[0], want)
		}
	}
}

func TestParseBranchBothTargets(t *testing.T) {
	src := `
.func abs
.input x
entry:
    const zero, 0
    cmplt neg, x, zero
    br neg, negate, done
negate:
    neg x, x
    jump done
done:
    ret x
.endfunc
`
	f, err := lai.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct{ in, want int64 }{{5, 5}, {-5, 5}, {0, 0}} {
		res, err := ir.Exec(f, []int64{c.in}, 100)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outputs[0] != c.want {
			t.Fatalf("abs(%d) = %d", c.in, res.Outputs[0])
		}
	}
}

func TestParseMultipleFunctions(t *testing.T) {
	src := fig1 + "\n" + fig1
	fs, err := lai.ParseFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 {
		t.Fatalf("parsed %d functions, want 2", len(fs))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		".func f\nentry:\n  bogus a, b\n.endfunc",
		".func f\nentry:\n  jump nowhere\n.endfunc",
		".func f\nentry:\n  add a\n.endfunc",
		"not a function",
		".func f\nentry:\n  const a, zz\n.endfunc",
	}
	for _, src := range cases {
		if _, err := lai.Parse(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestParsedThroughPipeline(t *testing.T) {
	f, err := lai.Parse(fig1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ir.Exec(f, []int64{7, 50}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	g, err := lai.Parse(fig1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pipeline.Run(g, pipeline.Configs[pipeline.ExpLphiABIC])
	if err != nil {
		t.Fatal(err)
	}
	got, err := ir.Exec(g, []int64{7, 50}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Fatalf("pipeline changed parsed program:\n%s", g)
	}
	// Figure 1 is fully pinnable: straight-line, no interference on the
	// constrained slots — with ABI pinning nothing should remain except
	// at most the C-in-R0 vs D-in-R0 conflict repair.
	if res.Moves > 2 {
		t.Fatalf("too many moves (%d) for figure 1:\n%s", res.Moves, g)
	}
	_ = strings.TrimSpace
}
