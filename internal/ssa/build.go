// Package ssa constructs pruned SSA form (Cytron et al., with φs placed
// only where the variable is live) over the machine-level IR, and
// verifies SSA invariants.
//
// Dedicated physical registers appearing in pre-SSA code (e.g. SP) are
// renamed into fresh virtual values exactly like variables; Info.OrigOf
// records the physical origin of each renamed value so the collect phase
// (package pin) can pin them back — the paper's pinningSP.
package ssa

import (
	"fmt"

	"outofssa/internal/analysis"
	"outofssa/internal/bitset"
	"outofssa/internal/cfg"
	"outofssa/internal/ir"
)

// Info describes the SSA form produced by Build.
type Info struct {
	fn *ir.Func
	// OrigOf maps each SSA value to the pre-SSA value it renames.
	// Pre-existing values that were never renamed map to themselves.
	OrigOf map[ir.ValueID]ir.ValueID
	// Dom is the dominator tree of the (unchanged) CFG.
	Dom *cfg.DomTree
}

// EmptyInfo returns an Info with no renaming history, for code built
// directly in SSA form (hand-written tests, figure reproductions).
func EmptyInfo() *Info {
	return &Info{OrigOf: map[ir.ValueID]ir.ValueID{}}
}

// OrigPhys returns the dedicated physical register v renames, or
// NoValue.
func (i *Info) OrigPhys(v ir.ValueID) ir.ValueID {
	if o, ok := i.OrigOf[v]; ok && i.fn.IsPhys(o) {
		return o
	}
	return ir.NoValue
}

// buildError carries a construction failure out of the recursive rename
// walk; Build recovers it and returns it as an ordinary error with the
// function/block/instruction position attached.
type buildError struct{ err error }

// Build converts f (pre-SSA: values may have multiple definitions,
// physical registers may appear as operands) into pruned SSA form in
// place. Unreachable blocks are removed first. Variables that may be used
// before being defined are given an implicit definition on the entry
// .input instruction.
//
// A non-nil error means the input violated an assumption of the
// construction (e.g. a use with no reaching definition that liveness
// failed to expose); f is left in an unspecified partially renamed state
// and must be discarded. Errors here indicate a malformed input or a bug
// in an earlier phase — Build reports them instead of panicking so that
// batch drivers survive one bad function.
func Build(f *ir.Func) (info *Info, err error) {
	defer func() {
		if r := recover(); r != nil {
			be, ok := r.(buildError)
			if !ok {
				panic(r) // programmer invariant violations propagate
			}
			info, err = nil, be.err
		}
	}()
	cfg.RemoveUnreachable(f)
	ensureEntryDefs(f)

	dom := analysis.Dominators(f)
	df := cfg.DominanceFrontiers(f, dom)
	live := analysis.Liveness(f)

	// Variables needing renaming: anything defined anywhere.
	defBlocks := make(map[ir.ValueID][]*ir.Block)
	var order []ir.ValueID // deterministic processing order
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			for _, d := range in.Defs() {
				if _, ok := defBlocks[d.Val]; !ok {
					order = append(order, d.Val)
				}
				defBlocks[d.Val] = append(defBlocks[d.Val], b)
			}
		}
	}

	// Pruned φ placement: iterated dominance frontier of the def sites,
	// filtered by live-in.
	phiFor := make(map[*ir.Instr]ir.ValueID) // placed φ -> original variable
	for _, v := range order {
		placed := bitset.New(f.NumBlocks())
		onWork := bitset.New(f.NumBlocks())
		var work []*ir.Block
		for _, b := range defBlocks[v] {
			if !onWork.Has(int(b.ID)) {
				onWork.Add(int(b.ID))
				work = append(work, b)
			}
		}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, fr := range df[b.ID] {
				if placed.Has(int(fr.ID)) {
					continue
				}
				placed.Add(int(fr.ID))
				if !live.LiveIn(v, fr) {
					continue // pruned SSA: dead φ not inserted
				}
				uses := make([]ir.Operand, fr.NumPreds())
				for i := range uses {
					uses[i] = ir.Operand{Val: v}
				}
				phi := f.NewInstr(ir.Phi, ir.Ops(v), uses)
				fr.InsertAt(0, phi)
				phiFor[phi] = v
				if !onWork.Has(int(fr.ID)) {
					onWork.Add(int(fr.ID))
					work = append(work, fr)
				}
			}
		}
	}

	// Renaming via dominator-tree walk with stacks.
	info = &Info{fn: f, OrigOf: make(map[ir.ValueID]ir.ValueID), Dom: dom}
	for id := 0; id < f.NumValues(); id++ {
		info.OrigOf[ir.ValueID(id)] = ir.ValueID(id)
	}
	stacks := make(map[ir.ValueID][]ir.ValueID)
	versions := make(map[ir.ValueID]int)

	fresh := func(orig ir.ValueID) ir.ValueID {
		versions[orig]++
		name := fmt.Sprintf("%s.%d", f.ValueName(orig), versions[orig])
		nv := f.NewValue(name)
		info.OrigOf[nv] = orig
		return nv
	}
	top := func(orig ir.ValueID, b *ir.Block, in *ir.Instr) ir.ValueID {
		s := stacks[orig]
		if len(s) == 0 {
			// Use of a never-defined variable on this path; ensureEntryDefs
			// prevents this for any input that passed ir.Func.Verify, so
			// reaching here means the input (or an earlier phase) is broken.
			// Reported with position context instead of crashing the process.
			panic(buildError{fmt.Errorf("ssa: %s: block %v: %q: use of %v has no reaching definition",
				f.Name, b, in, f.VStr(orig))})
		}
		return s[len(s)-1]
	}

	var rename func(b *ir.Block)
	rename = func(b *ir.Block) {
		var pushed []ir.ValueID
		for _, in := range b.Instrs() {
			if in.Op() != ir.Phi {
				for i := 0; i < in.NumUses(); i++ {
					in.SetUseVal(i, top(in.Use(i), b, in))
				}
			}
			for i := 0; i < in.NumDefs(); i++ {
				d := in.Def(i)
				nv := fresh(d)
				stacks[d] = append(stacks[d], nv)
				pushed = append(pushed, d)
				in.SetDefVal(i, nv)
			}
		}
		for _, sid := range b.Succs() {
			s := f.Block(sid)
			pi := s.PredIndex(b.ID)
			for _, phi := range s.Phis() {
				orig, ok := phiFor[phi]
				if !ok {
					continue // pre-existing φ (input already SSA) — leave it
				}
				phi.SetUseVal(pi, top(orig, s, phi))
			}
		}
		for _, c := range dom.Children[b.ID] {
			rename(c)
		}
		for i := len(pushed) - 1; i >= 0; i-- {
			orig := pushed[i]
			stacks[orig] = stacks[orig][:len(stacks[orig])-1]
		}
	}
	rename(f.Entry())
	return info, nil
}

// MustBuild is Build for inputs known to be well formed (test fixtures,
// generated workloads); it panics on error.
func MustBuild(f *ir.Func) *Info {
	info, err := Build(f)
	if err != nil {
		panic(err)
	}
	return info
}

// ensureEntryDefs gives every variable that is live into the entry block
// (i.e. possibly used before defined) an implicit definition on the entry
// .input instruction, creating one if the entry has none.
func ensureEntryDefs(f *ir.Func) {
	live := analysis.Liveness(f)
	entry := f.Entry()
	undef := live.LiveInSet(entry)
	if undef.Empty() {
		return
	}
	var input *ir.Instr
	for _, in := range entry.Instrs() {
		if in.Op() == ir.Input {
			input = in
			break
		}
	}
	if input == nil {
		input = f.NewInstr(ir.Input, nil, nil)
		entry.InsertAt(0, input)
	}
	undef.ForEach(func(id int) {
		input.AddDef(ir.Operand{Val: ir.ValueID(id)})
	})
}
