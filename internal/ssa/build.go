// Package ssa constructs pruned SSA form (Cytron et al., with φs placed
// only where the variable is live) over the machine-level IR, and
// verifies SSA invariants.
//
// Dedicated physical registers appearing in pre-SSA code (e.g. SP) are
// renamed into fresh virtual values exactly like variables; Info.OrigOf
// records the physical origin of each renamed value so the collect phase
// (package pin) can pin them back — the paper's pinningSP.
package ssa

import (
	"fmt"

	"outofssa/internal/analysis"
	"outofssa/internal/bitset"
	"outofssa/internal/cfg"
	"outofssa/internal/ir"
)

// Info describes the SSA form produced by Build.
type Info struct {
	// OrigOf maps each SSA value to the pre-SSA value it renames.
	// Pre-existing values that were never renamed map to themselves.
	OrigOf map[*ir.Value]*ir.Value
	// Dom is the dominator tree of the (unchanged) CFG.
	Dom *cfg.DomTree
}

// EmptyInfo returns an Info with no renaming history, for code built
// directly in SSA form (hand-written tests, figure reproductions).
func EmptyInfo() *Info {
	return &Info{OrigOf: map[*ir.Value]*ir.Value{}}
}

// OrigPhys returns the dedicated physical register v renames, or nil.
func (i *Info) OrigPhys(v *ir.Value) *ir.Value {
	o := i.OrigOf[v]
	if o != nil && o.IsPhys() {
		return o
	}
	return nil
}

// buildError carries a construction failure out of the recursive rename
// walk; Build recovers it and returns it as an ordinary error with the
// function/block/instruction position attached.
type buildError struct{ err error }

// Build converts f (pre-SSA: values may have multiple definitions,
// physical registers may appear as operands) into pruned SSA form in
// place. Unreachable blocks are removed first. Variables that may be used
// before being defined are given an implicit definition on the entry
// .input instruction.
//
// A non-nil error means the input violated an assumption of the
// construction (e.g. a use with no reaching definition that liveness
// failed to expose); f is left in an unspecified partially renamed state
// and must be discarded. Errors here indicate a malformed input or a bug
// in an earlier phase — Build reports them instead of panicking so that
// batch drivers survive one bad function.
func Build(f *ir.Func) (info *Info, err error) {
	defer func() {
		if r := recover(); r != nil {
			be, ok := r.(buildError)
			if !ok {
				panic(r) // programmer invariant violations propagate
			}
			info, err = nil, be.err
		}
	}()
	cfg.RemoveUnreachable(f)
	ensureEntryDefs(f)

	dom := analysis.Dominators(f)
	df := cfg.DominanceFrontiers(f, dom)
	live := analysis.Liveness(f)

	// Variables needing renaming: anything defined anywhere.
	defBlocks := make(map[*ir.Value][]*ir.Block)
	var order []*ir.Value // deterministic processing order
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, d := range in.Defs {
				if _, ok := defBlocks[d.Val]; !ok {
					order = append(order, d.Val)
				}
				defBlocks[d.Val] = append(defBlocks[d.Val], b)
			}
		}
	}

	// Pruned φ placement: iterated dominance frontier of the def sites,
	// filtered by live-in.
	phiFor := make(map[*ir.Instr]*ir.Value) // placed φ -> original variable
	for _, v := range order {
		placed := bitset.New(f.NumBlocks())
		onWork := bitset.New(f.NumBlocks())
		var work []*ir.Block
		for _, b := range defBlocks[v] {
			if !onWork.Has(b.ID) {
				onWork.Add(b.ID)
				work = append(work, b)
			}
		}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, fr := range df[b.ID] {
				if placed.Has(fr.ID) {
					continue
				}
				placed.Add(fr.ID)
				if !live.LiveIn(v, fr) {
					continue // pruned SSA: dead φ not inserted
				}
				phi := &ir.Instr{Op: ir.Phi, Defs: []ir.Operand{{Val: v}},
					Uses: make([]ir.Operand, len(fr.Preds))}
				for i := range phi.Uses {
					phi.Uses[i] = ir.Operand{Val: v}
				}
				fr.InsertAt(0, phi)
				phiFor[phi] = v
				if !onWork.Has(fr.ID) {
					onWork.Add(fr.ID)
					work = append(work, fr)
				}
			}
		}
	}

	// Renaming via dominator-tree walk with stacks.
	info = &Info{OrigOf: make(map[*ir.Value]*ir.Value), Dom: dom}
	for _, v := range f.Values() {
		info.OrigOf[v] = v
	}
	stacks := make(map[*ir.Value][]*ir.Value)
	versions := make(map[*ir.Value]int)

	fresh := func(orig *ir.Value) *ir.Value {
		versions[orig]++
		name := fmt.Sprintf("%s.%d", orig.Name, versions[orig])
		nv := f.NewValue(name)
		info.OrigOf[nv] = orig
		return nv
	}
	top := func(orig *ir.Value, b *ir.Block, in *ir.Instr) *ir.Value {
		s := stacks[orig]
		if len(s) == 0 {
			// Use of a never-defined variable on this path; ensureEntryDefs
			// prevents this for any input that passed ir.Func.Verify, so
			// reaching here means the input (or an earlier phase) is broken.
			// Reported with position context instead of crashing the process.
			panic(buildError{fmt.Errorf("ssa: %s: block %v: %q: use of %v has no reaching definition",
				f.Name, b, in, orig)})
		}
		return s[len(s)-1]
	}

	var rename func(b *ir.Block)
	rename = func(b *ir.Block) {
		var pushed []*ir.Value
		for _, in := range b.Instrs {
			if in.Op != ir.Phi {
				for i, u := range in.Uses {
					in.Uses[i].Val = top(u.Val, b, in)
				}
			}
			for i, d := range in.Defs {
				nv := fresh(d.Val)
				stacks[d.Val] = append(stacks[d.Val], nv)
				pushed = append(pushed, d.Val)
				in.Defs[i].Val = nv
			}
		}
		for _, s := range b.Succs {
			pi := s.PredIndex(b)
			for _, phi := range s.Phis() {
				orig, ok := phiFor[phi]
				if !ok {
					continue // pre-existing φ (input already SSA) — leave it
				}
				phi.Uses[pi].Val = top(orig, s, phi)
			}
		}
		for _, c := range dom.Children[b.ID] {
			rename(c)
		}
		for i := len(pushed) - 1; i >= 0; i-- {
			orig := pushed[i]
			stacks[orig] = stacks[orig][:len(stacks[orig])-1]
		}
	}
	rename(f.Entry())
	f.NoteMutation() // renaming rewrote operands in place
	return info, nil
}

// MustBuild is Build for inputs known to be well formed (test fixtures,
// generated workloads); it panics on error.
func MustBuild(f *ir.Func) *Info {
	info, err := Build(f)
	if err != nil {
		panic(err)
	}
	return info
}

// ensureEntryDefs gives every variable that is live into the entry block
// (i.e. possibly used before defined) an implicit definition on the entry
// .input instruction, creating one if the entry has none.
func ensureEntryDefs(f *ir.Func) {
	live := analysis.Liveness(f)
	entry := f.Entry()
	undef := live.LiveInSet(entry)
	if undef.Empty() {
		return
	}
	var input *ir.Instr
	for _, in := range entry.Instrs {
		if in.Op == ir.Input {
			input = in
			break
		}
	}
	if input == nil {
		input = &ir.Instr{Op: ir.Input}
		entry.InsertAt(0, input)
	}
	vals := f.Values()
	undef.ForEach(func(id int) {
		input.Defs = append(input.Defs, ir.Operand{Val: vals[id]})
	})
	f.NoteMutation() // grew the entry instruction's def list in place
}
