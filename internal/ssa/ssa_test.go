package ssa_test

import (
	"testing"

	"outofssa/internal/cfg"
	"outofssa/internal/ir"
	"outofssa/internal/ssa"
	"outofssa/internal/testprog"
)

func blockByName(f *ir.Func, name string) *ir.Block {
	for _, b := range f.Blocks() {
		if b.Name == name {
			return b
		}
	}
	return nil
}

func phisOf(b *ir.Block) []*ir.Instr {
	var phis []*ir.Instr
	for _, p := range b.Phis() {
		phis = append(phis, p)
	}
	return phis
}

func TestBuildDiamond(t *testing.T) {
	f := testprog.Diamond()
	info := ssa.MustBuild(f)
	if err := ssa.Verify(f); err != nil {
		t.Fatal(err)
	}
	join := blockByName(f, "join")
	phis := phisOf(join)
	if len(phis) != 1 {
		t.Fatalf("join has %d φs, want 1 (only x is live)", len(phis))
	}
	phi := phis[0]
	if f.ValueName(info.OrigOf[phi.Def(0)]) != "x" {
		t.Fatalf("φ merges %v, want renames of x", f.VStr(phi.Def(0)))
	}
	for _, u := range phi.Uses() {
		if f.ValueName(info.OrigOf[u.Val]) != "x" {
			t.Fatalf("φ arg %v does not rename x", f.VStr(u.Val))
		}
	}
}

func TestBuildPruned(t *testing.T) {
	// A variable dead at the join must not get a φ (pruned SSA).
	bld := ir.NewBuilder("pruned")
	entry := bld.Block("entry")
	l := bld.Fn.NewBlock("l")
	r := bld.Fn.NewBlock("r")
	join := bld.Fn.NewBlock("join")
	c, x, y := bld.Val("c"), bld.Val("x"), bld.Val("y")
	bld.SetBlock(entry)
	bld.Input(c)
	bld.Br(c, l, r)
	bld.SetBlock(l)
	bld.Const(x, 1)
	bld.Binary(ir.Add, y, x, x)
	bld.Jump(join)
	bld.SetBlock(r)
	bld.Const(x, 2)
	bld.Binary(ir.Mul, y, x, x)
	bld.Jump(join)
	bld.SetBlock(join)
	bld.Output(y) // only y live at join; x must have no φ

	info := ssa.MustBuild(bld.Fn)
	if err := ssa.Verify(bld.Fn); err != nil {
		t.Fatal(err)
	}
	for _, phi := range join.Phis() {
		if bld.Fn.ValueName(info.OrigOf[phi.Def(0)]) == "x" {
			t.Fatal("dead variable x received a φ — SSA is not pruned")
		}
	}
	if join.NumPhis() != 1 {
		t.Fatalf("join should have exactly the φ for y, got %d", join.NumPhis())
	}
}

func TestBuildLoopPhis(t *testing.T) {
	f := testprog.Loop()
	ssa.Build(f)
	if err := ssa.Verify(f); err != nil {
		t.Fatal(err)
	}
	head := blockByName(f, "head")
	if n := head.NumPhis(); n != 2 {
		t.Fatalf("loop head has %d φs, want 2 (i and s)", n)
	}
}

func TestBuildRenamesPhysical(t *testing.T) {
	f := testprog.WithCallsAndStack()
	info := ssa.MustBuild(f)
	if err := ssa.Verify(f); err != nil {
		t.Fatal(err)
	}
	// SP must no longer appear as an operand value, and its renamed
	// version must be recorded in OrigOf.
	foundSPRename := false
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			for _, o := range append(append([]ir.Operand{}, in.Defs()...), in.Uses()...) {
				if f.IsPhys(o.Val) {
					t.Fatalf("physical %v still an operand of %q", f.VStr(o.Val), in)
				}
				if info.OrigPhys(o.Val) == f.Target.SP {
					foundSPRename = true
				}
			}
		}
	}
	if !foundSPRename {
		t.Fatal("no renamed SP value found")
	}
}

func TestBuildPreservesSemantics(t *testing.T) {
	for _, mk := range []func() *ir.Func{
		testprog.Diamond, testprog.Loop, testprog.NestedLoops,
		testprog.SwapLoop, testprog.LostCopy, testprog.WithCallsAndStack,
	} {
		pre := mk()
		args := []int64{5, 9, 3}
		want, err := ir.Exec(pre, args, 100000)
		if err != nil {
			t.Fatal(err)
		}
		post := mk()
		ssa.Build(post)
		got, err := ir.Exec(post, args, 200000)
		if err != nil {
			t.Fatalf("%s: %v", post.Name, err)
		}
		if !want.Equal(got) {
			t.Fatalf("%s: SSA construction changed behaviour\npre:\n%v\npost:\n%v",
				post.Name, want, got)
		}
	}
}

func TestBuildPreservesSemanticsRandom(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		pre := testprog.Rand(seed, testprog.DefaultRandOptions())
		args := []int64{seed, 13, seed % 5}
		want, err := ir.Exec(pre, args, 500000)
		if err != nil {
			t.Fatal(err)
		}
		post := testprog.Rand(seed, testprog.DefaultRandOptions())
		ssa.Build(post)
		if err := ssa.Verify(post); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got, err := ir.Exec(post, args, 1000000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !want.Equal(got) {
			t.Fatalf("seed %d: SSA construction changed behaviour", seed)
		}
	}
}

func TestBuildAfterEdgeSplit(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		f := testprog.Rand(seed, testprog.DefaultRandOptions())
		ssa.Build(f)
		cfg.SplitCriticalEdges(f)
		if err := ssa.Verify(f); err != nil {
			t.Fatalf("seed %d after split: %v", seed, err)
		}
	}
}

func TestImplicitEntryDef(t *testing.T) {
	// A use-before-def along one path gets an implicit entry definition.
	bld := ir.NewBuilder("undef")
	entry := bld.Block("entry")
	skip := bld.Fn.NewBlock("skip")
	join := bld.Fn.NewBlock("join")
	c, x, y := bld.Val("c"), bld.Val("x"), bld.Val("y")
	bld.SetBlock(entry)
	bld.Input(c)
	bld.Br(c, skip, join)
	bld.SetBlock(skip)
	bld.Const(x, 42)
	bld.Jump(join)
	bld.SetBlock(join)
	bld.Binary(ir.Add, y, x, x) // x possibly undefined when c == 0
	bld.Output(y)

	ssa.Build(bld.Fn)
	if err := ssa.Verify(bld.Fn); err != nil {
		t.Fatal(err)
	}
	res, err := ir.Exec(bld.Fn, []int64{0}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] != 0 {
		t.Fatalf("undefined path should yield 0, got %d", res.Outputs[0])
	}
	res, err = ir.Exec(bld.Fn, []int64{1}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] != 84 {
		t.Fatalf("defined path should yield 84, got %d", res.Outputs[0])
	}
}

func TestVerifyRejectsDoubleDef(t *testing.T) {
	f := testprog.Loop() // pre-SSA: i and s have two defs
	if err := ssa.Verify(f); err == nil {
		t.Fatal("Verify should reject non-SSA input")
	}
}
