package ssa

import (
	"fmt"

	"outofssa/internal/analysis"
	"outofssa/internal/ir"
)

// Verify checks SSA invariants on f:
//   - every virtual value has at most one definition;
//   - every use is dominated by its definition (φ uses are checked
//     against the end of the corresponding predecessor block);
//   - no physical register appears as an operand value (dedicated
//     registers must have been renamed; they may appear as pins).
func Verify(f *ir.Func) error {
	if err := f.Verify(); err != nil {
		return err
	}
	dom := analysis.Dominators(f)

	defAt := make([]*ir.Instr, f.NumValues())
	defIdx := make([]int, f.NumValues())
	for _, b := range f.Blocks {
		for idx, in := range b.Instrs {
			for _, d := range in.Defs {
				if d.Val.IsPhys() {
					return fmt.Errorf("%s: physical register %v defined by %q in SSA form", f.Name, d.Val, in)
				}
				if defAt[d.Val.ID] != nil {
					return fmt.Errorf("%s: %v has two definitions: %q and %q", f.Name, d.Val, defAt[d.Val.ID], in)
				}
				defAt[d.Val.ID] = in
				defIdx[d.Val.ID] = idx
			}
		}
	}

	// A def at (bd, i) is available at use (bu, j) iff bd strictly
	// dominates bu, or same block with i < j (φ defs at the top count as
	// preceding everything).
	avail := func(v *ir.Value, b *ir.Block, idx int) bool {
		def := defAt[v.ID]
		if def == nil {
			return false
		}
		db := def.Block()
		if db == b {
			return defIdx[v.ID] < idx || def.Op == ir.Phi
		}
		return dom.StrictlyDominates(db, b)
	}

	for _, b := range f.Blocks {
		for idx, in := range b.Instrs {
			if in.Op == ir.Phi {
				for pi, u := range in.Uses {
					if u.Val.IsPhys() {
						return fmt.Errorf("%s: physical register %v used by φ %q", f.Name, u.Val, in)
					}
					pred := b.Preds[pi]
					// The φ use happens at the end of pred: def must
					// dominate pred (reflexively).
					def := defAt[u.Val.ID]
					if def == nil {
						return fmt.Errorf("%s: φ %q uses undefined %v", f.Name, in, u.Val)
					}
					if !dom.Dominates(def.Block(), pred) {
						return fmt.Errorf("%s: φ arg %v (from %v) not dominated by its def in %v",
							f.Name, u.Val, pred, def.Block())
					}
				}
				continue
			}
			for _, u := range in.Uses {
				if u.Val.IsPhys() {
					return fmt.Errorf("%s: physical register %v used by %q in SSA form", f.Name, u.Val, in)
				}
				if !avail(u.Val, b, idx) {
					return fmt.Errorf("%s: use of %v in %q (block %v) not dominated by its definition",
						f.Name, u.Val, in, b)
				}
			}
		}
	}
	return nil
}
