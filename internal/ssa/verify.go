package ssa

import (
	"fmt"

	"outofssa/internal/analysis"
	"outofssa/internal/ir"
)

// Verify checks SSA invariants on f:
//   - every virtual value has at most one definition;
//   - every use is dominated by its definition (φ uses are checked
//     against the end of the corresponding predecessor block);
//   - no physical register appears as an operand value (dedicated
//     registers must have been renamed; they may appear as pins).
func Verify(f *ir.Func) error {
	if err := f.Verify(); err != nil {
		return err
	}
	dom := analysis.Dominators(f)

	defAt := make([]*ir.Instr, f.NumValues())
	defIdx := make([]int, f.NumValues())
	for _, b := range f.Blocks() {
		for idx, in := range b.Instrs() {
			for _, d := range in.Defs() {
				if f.IsPhys(d.Val) {
					return fmt.Errorf("%s: physical register %v defined by %q in SSA form", f.Name, f.VStr(d.Val), in)
				}
				if defAt[d.Val] != nil {
					return fmt.Errorf("%s: %v has two definitions: %q and %q", f.Name, f.VStr(d.Val), defAt[d.Val], in)
				}
				defAt[d.Val] = in
				defIdx[d.Val] = idx
			}
		}
	}

	// A def at (bd, i) is available at use (bu, j) iff bd strictly
	// dominates bu, or same block with i < j (φ defs at the top count as
	// preceding everything).
	avail := func(v ir.ValueID, b *ir.Block, idx int) bool {
		def := defAt[v]
		if def == nil {
			return false
		}
		db := def.Block()
		if db == b {
			return defIdx[v] < idx || def.Op() == ir.Phi
		}
		return dom.StrictlyDominates(db, b)
	}

	for _, b := range f.Blocks() {
		for idx, in := range b.Instrs() {
			if in.Op() == ir.Phi {
				for pi, u := range in.Uses() {
					if f.IsPhys(u.Val) {
						return fmt.Errorf("%s: physical register %v used by φ %q", f.Name, f.VStr(u.Val), in)
					}
					pred := b.Pred(pi)
					// The φ use happens at the end of pred: def must
					// dominate pred (reflexively).
					def := defAt[u.Val]
					if def == nil {
						return fmt.Errorf("%s: φ %q uses undefined %v", f.Name, in, f.VStr(u.Val))
					}
					if !dom.Dominates(def.Block(), pred) {
						return fmt.Errorf("%s: φ arg %v (from %v) not dominated by its def in %v",
							f.Name, f.VStr(u.Val), pred, def.Block())
					}
				}
				continue
			}
			for _, u := range in.Uses() {
				if f.IsPhys(u.Val) {
					return fmt.Errorf("%s: physical register %v used by %q in SSA form", f.Name, f.VStr(u.Val), in)
				}
				if !avail(u.Val, b, idx) {
					return fmt.Errorf("%s: use of %v in %q (block %v) not dominated by its definition",
						f.Name, f.VStr(u.Val), in, b)
				}
			}
		}
	}
	return nil
}
