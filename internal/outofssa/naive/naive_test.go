package naive_test

import (
	"testing"

	"outofssa/internal/ir"
	"outofssa/internal/outofssa/naive"
	"outofssa/internal/ssa"
	"outofssa/internal/testprog"
)

func TestTranslatePreservesSemantics(t *testing.T) {
	mks := []func() *ir.Func{
		testprog.Diamond, testprog.Loop, testprog.NestedLoops,
		testprog.SwapLoop, testprog.LostCopy, testprog.WithCallsAndStack,
	}
	for seed := int64(0); seed < 30; seed++ {
		s := seed
		mks = append(mks, func() *ir.Func { return testprog.Rand(s, testprog.DefaultRandOptions()) })
	}
	for _, mk := range mks {
		ref := mk()
		args := []int64{4, 9, 2}
		want, err := ir.Exec(ref, args, 500000)
		if err != nil {
			t.Fatal(err)
		}
		f := mk()
		ssa.Build(f)
		st, err := naive.Translate(f)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if err := f.Verify(); err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		for _, b := range f.Blocks() {
			for _, in := range b.Instrs() {
				if in.Op() == ir.Phi || in.Op() == ir.ParCopy {
					t.Fatalf("%s: %v remains", f.Name, in.Op())
				}
				for _, o := range append(append([]ir.Operand{}, in.Defs()...), in.Uses()...) {
					if o.Pinned() {
						t.Fatalf("%s: pin survived naive translation: %v", f.Name, in)
					}
				}
			}
		}
		got, err := ir.Exec(f, args, 1000000)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if !want.Equal(got) {
			t.Fatalf("%s: naive translation changed behaviour", f.Name)
		}
		_ = st
	}
}

// TestNaiveCostsFullPhiPrice: every φ slot with distinct source costs a
// move — no coalescing at all.
func TestNaiveCostsFullPhiPrice(t *testing.T) {
	f := testprog.Loop()
	ssa.Build(f)
	slots := 0
	for _, b := range f.Blocks() {
		for _, phi := range b.Phis() {
			for _, u := range phi.Uses() {
				if u.Val != phi.Def(0) {
					slots++
				}
			}
		}
	}
	st, err := naive.Translate(f)
	if err != nil {
		t.Fatal(err)
	}
	if st.PhiMoves != slots {
		t.Fatalf("naive φ moves = %d, want all %d slots", st.PhiMoves, slots)
	}
	if f.CountMoves() < slots {
		t.Fatalf("move count %d below slot count %d", f.CountMoves(), slots)
	}
}
