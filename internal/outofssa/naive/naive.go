// Package naive implements the classic out-of-SSA translation of Cytron
// et al. as repaired by Briggs et al.: each φ is replaced by one copy per
// predecessor, with the copies of one edge grouped into a parallel copy
// (avoiding the swap problem) and critical edges split (avoiding the
// lost-copy problem). No coalescing is attempted: every φ operand slot
// costs a move; the paper's Table 4 "φ moves" column measures exactly
// this naive cost.
package naive

import (
	"outofssa/internal/cfg"
	"outofssa/internal/ir"
	"outofssa/internal/parcopy"
)

// Stats describes the translation.
type Stats struct {
	// PhiMoves is the number of φ operand slots turned into copies.
	PhiMoves int
	// EdgesSplit is the number of critical edges split.
	EdgesSplit int
}

// Translate replaces every φ of f with copies in the predecessor blocks.
// Pins are ignored (and cleared): use NaiveABI afterwards to satisfy
// renaming constraints with local moves. The input must be in SSA form.
func Translate(f *ir.Func) (*Stats, error) {
	st := &Stats{EdgesSplit: cfg.SplitCriticalEdges(f)}

	for _, b := range f.Blocks() {
		nphis := b.NumPhis()
		if nphis == 0 {
			continue
		}
		var phis []*ir.Instr
		for _, phi := range b.Phis() {
			phis = append(phis, phi)
		}
		for pi := 0; pi < b.NumPreds(); pi++ {
			pred := b.Pred(pi)
			var defs, uses []ir.Operand
			for _, phi := range phis {
				dst, src := phi.Def(0), phi.Use(pi)
				if dst == src {
					continue
				}
				defs = append(defs, ir.Operand{Val: dst})
				uses = append(uses, ir.Operand{Val: src})
			}
			if len(defs) > 0 {
				st.PhiMoves += len(defs)
				pred.InsertBeforeTerminator(f.NewInstr(ir.ParCopy, defs, uses))
			}
		}
		for k := 0; k < nphis; k++ {
			b.RemoveAt(0)
		}
	}

	// The naive translation leaves the pins unenforced; drop them so the
	// result is plain non-SSA code.
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			for i := 0; i < in.NumDefs(); i++ {
				in.SetDef(i, ir.Operand{Val: in.Def(i)})
			}
			for i := 0; i < in.NumUses(); i++ {
				in.SetUse(i, ir.Operand{Val: in.Use(i)})
			}
		}
	}

	parcopy.Sequentialize(f)
	return st, nil
}
