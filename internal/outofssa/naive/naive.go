// Package naive implements the classic out-of-SSA translation of Cytron
// et al. as repaired by Briggs et al.: each φ is replaced by one copy per
// predecessor, with the copies of one edge grouped into a parallel copy
// (avoiding the swap problem) and critical edges split (avoiding the
// lost-copy problem). No coalescing is attempted: every φ operand slot
// costs a move; the paper's Table 4 "φ moves" column measures exactly
// this naive cost.
package naive

import (
	"outofssa/internal/cfg"
	"outofssa/internal/ir"
	"outofssa/internal/parcopy"
)

// Stats describes the translation.
type Stats struct {
	// PhiMoves is the number of φ operand slots turned into copies.
	PhiMoves int
	// EdgesSplit is the number of critical edges split.
	EdgesSplit int
}

// Translate replaces every φ of f with copies in the predecessor blocks.
// Pins are ignored (and cleared): use NaiveABI afterwards to satisfy
// renaming constraints with local moves. The input must be in SSA form.
func Translate(f *ir.Func) (*Stats, error) {
	st := &Stats{EdgesSplit: cfg.SplitCriticalEdges(f)}

	for _, b := range f.Blocks {
		phis := b.Phis()
		if len(phis) == 0 {
			continue
		}
		for pi, pred := range b.Preds {
			pc := &ir.Instr{Op: ir.ParCopy}
			for _, phi := range phis {
				dst, src := phi.Def(0), phi.Uses[pi].Val
				if dst == src {
					continue
				}
				pc.Defs = append(pc.Defs, ir.Operand{Val: dst})
				pc.Uses = append(pc.Uses, ir.Operand{Val: src})
			}
			if len(pc.Defs) > 0 {
				st.PhiMoves += len(pc.Defs)
				pred.InsertBeforeTerminator(pc)
			}
		}
		b.Instrs = b.Instrs[len(phis):]
	}

	// The naive translation leaves the pins unenforced; drop them so the
	// result is plain non-SSA code.
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i := range in.Defs {
				in.Defs[i].Pin = nil
			}
			for i := range in.Uses {
				in.Uses[i].Pin = nil
			}
		}
	}

	parcopy.Sequentialize(f)
	f.NoteMutation() // φ removal truncated instruction lists in place
	return st, nil
}
