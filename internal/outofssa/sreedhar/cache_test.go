package sreedhar_test

import (
	"testing"

	"outofssa/internal/analysis"
	"outofssa/internal/ir"
	"outofssa/internal/outofssa/sreedhar"
	"outofssa/internal/ssa"
	"outofssa/internal/testprog"
)

// TestLivenessComputedOncePerQuietRun is the regression test for the
// per-φ liveness recompute the conversion used to do: refreshing its
// interference analysis inside the block loop recomputed liveness for
// every φ even when no copy had been inserted since the last refresh.
// The conversion now checks the function's mutation generation itself
// and asks the analysis cache only when the generation moved, so a
// copy-free conversion must compute liveness exactly once — and every
// liveness request it does make must be one that rebuilds (no
// redundant per-φ cache-hit traffic).
func TestLivenessComputedOncePerQuietRun(t *testing.T) {
	// NestedLoops in SSA form carries several φs, and none of them needs
	// a copy: the function is already conventional.
	f := testprog.NestedLoops()
	ssa.MustBuild(f)

	before := analysis.Stats()
	st, _, err := sreedhar.ConvertToCSSA(f, sreedhar.Options{})
	if err != nil {
		t.Fatal(err)
	}
	after := analysis.Stats()

	if st.CopiesInserted != 0 {
		t.Fatalf("want a copy-free conversion for this test, got %d copies", st.CopiesInserted)
	}
	if st.PhisProcessed < 2 {
		t.Fatalf("want at least 2 φs to make the regression observable, got %d", st.PhisProcessed)
	}
	computes := after.LivenessComputes - before.LivenessComputes
	requests := after.LivenessRequests - before.LivenessRequests
	if computes != 1 {
		t.Fatalf("copy-free conversion over %d φs computed liveness %d times, want exactly 1 (%d requests served)",
			st.PhisProcessed, computes, requests)
	}
	if requests != computes {
		t.Fatalf("conversion made %d liveness requests but rebuilt only %d times for %d φs — the per-φ generation check is issuing redundant cache requests again",
			requests, computes, st.PhisProcessed)
	}
}

// TestLivenessRecomputedAfterCopies: when copies ARE inserted the
// conversion must not keep the stale liveness — each mutation round
// forces a fresh compute for the next φ.
func TestLivenessRecomputedAfterCopies(t *testing.T) {
	// A true φ swap cycle (the TestSwapNeedsCopies shape): two φs of one
	// block exchange results around the back edge, which is never
	// conventional.
	bld := ir.NewBuilder("phiswap")
	entry := bld.Block("entry")
	head := bld.Fn.NewBlock("head")
	body := bld.Fn.NewBlock("body")
	exit := bld.Fn.NewBlock("exit")

	a0, b0, n := bld.Val("a0"), bld.Val("b0"), bld.Val("n")
	a1, b1 := bld.Val("a1"), bld.Val("b1")
	i0, i1, i2 := bld.Val("i0"), bld.Val("i1"), bld.Val("i2")
	c, one, r := bld.Val("c"), bld.Val("one"), bld.Val("r")

	bld.SetBlock(entry)
	bld.Input(a0, b0, n)
	bld.Const(i0, 0)
	bld.Const(one, 1)
	bld.Jump(head)

	bld.SetBlock(head)
	bld.Phi(a1, a0, b1)
	bld.Phi(b1, b0, a1)
	bld.Phi(i1, i0, i2)
	bld.Binary(ir.CmpLT, c, i1, n)
	bld.Br(c, body, exit)

	bld.SetBlock(body)
	bld.Binary(ir.Add, i2, i1, one)
	bld.Jump(head)

	bld.SetBlock(exit)
	bld.Binary(ir.Sub, r, a1, b1)
	bld.Output(r)
	f := bld.Fn

	before := analysis.Stats()
	st, _, err := sreedhar.ConvertToCSSA(f, sreedhar.Options{})
	if err != nil {
		t.Fatal(err)
	}
	after := analysis.Stats()

	if st.CopiesInserted == 0 {
		t.Fatal("swap φ cycle requires copies to become conventional")
	}
	computes := after.LivenessComputes - before.LivenessComputes
	if computes < 2 {
		t.Fatalf("conversion inserted %d copies but computed liveness %d times; the post-mutation refresh is gone",
			st.CopiesInserted, computes)
	}
}
