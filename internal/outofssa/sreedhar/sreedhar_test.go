package sreedhar_test

import (
	"testing"

	"outofssa/internal/cfg"
	"outofssa/internal/interference"
	"outofssa/internal/ir"
	"outofssa/internal/liveness"
	"outofssa/internal/outofssa/sreedhar"
	"outofssa/internal/ssa"
	"outofssa/internal/testprog"
)

// verifyCSSA checks the defining property of conventional SSA: no two
// members of a φ congruence class interfere.
func verifyCSSA(t *testing.T, f *ir.Func, classes map[ir.ValueID]ir.ValueID) {
	t.Helper()
	an := interference.New(f, liveness.Compute(f), cfg.Dominators(f), interference.Exact)
	byRoot := make(map[ir.ValueID][]ir.ValueID)
	for v, r := range classes {
		byRoot[r] = append(byRoot[r], v)
	}
	for root, members := range byRoot {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				a, b := members[i], members[j]
				if an.Interfere(a, b) {
					t.Errorf("CSSA violated: %v and %v in class %v interfere\n%s",
						f.VStr(a), f.VStr(b), f.VStr(root), f)
				}
			}
		}
	}
}

func TestConvertStructured(t *testing.T) {
	for _, mk := range []func() *ir.Func{
		testprog.Diamond, testprog.Loop, testprog.NestedLoops,
		testprog.SwapLoop, testprog.LostCopy,
	} {
		f := mk()
		ssa.Build(f)
		st, classes, err := sreedhar.ConvertToCSSA(f, sreedhar.Options{})
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if err := ssa.Verify(f); err != nil {
			t.Fatalf("%s: not SSA after conversion: %v", f.Name, err)
		}
		verifyCSSA(t, f, classes)
		if st.PhisProcessed == 0 && f.Name != "diamond" {
			t.Errorf("%s: no φs processed", f.Name)
		}
	}
}

func TestConvertRandom(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		f := testprog.Rand(seed, testprog.DefaultRandOptions())
		ssa.Build(f)
		_, classes, err := sreedhar.ConvertToCSSA(f, sreedhar.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := ssa.Verify(f); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		verifyCSSA(t, f, classes)
	}
}

// TestConvertPreservesSemantics: CSSA conversion only inserts copies.
func TestConvertPreservesSemantics(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		ref := testprog.Rand(seed, testprog.DefaultRandOptions())
		args := []int64{seed, 11, seed % 5}
		want, err := ir.Exec(ref, args, 500000)
		if err != nil {
			t.Fatal(err)
		}
		f := testprog.Rand(seed, testprog.DefaultRandOptions())
		ssa.Build(f)
		_, _, err = sreedhar.ConvertToCSSA(f, sreedhar.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := ir.Exec(f, args, 1000000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !want.Equal(got) {
			t.Fatalf("seed %d: conversion changed behaviour", seed)
		}
	}
}

// TestSwapNeedsCopies: a true φ swap cycle — two φs of one block
// exchanging each other's results around the back edge — is not
// conventional, so the conversion must insert copies and the result must
// still behave like a swap.
func TestSwapNeedsCopies(t *testing.T) {
	build := func() *ir.Func {
		bld := ir.NewBuilder("phiswap")
		entry := bld.Block("entry")
		head := bld.Fn.NewBlock("head")
		body := bld.Fn.NewBlock("body")
		exit := bld.Fn.NewBlock("exit")

		a0, b0, n := bld.Val("a0"), bld.Val("b0"), bld.Val("n")
		a1, b1 := bld.Val("a1"), bld.Val("b1")
		i0, i1, i2 := bld.Val("i0"), bld.Val("i1"), bld.Val("i2")
		c, one, r := bld.Val("c"), bld.Val("one"), bld.Val("r")

		bld.SetBlock(entry)
		bld.Input(a0, b0, n)
		bld.Const(i0, 0)
		bld.Const(one, 1)
		bld.Jump(head)

		bld.SetBlock(head)
		bld.Phi(a1, a0, b1) // swap: a gets previous b
		bld.Phi(b1, b0, a1) // swap: b gets previous a
		bld.Phi(i1, i0, i2)
		bld.Binary(ir.CmpLT, c, i1, n)
		bld.Br(c, body, exit)

		bld.SetBlock(body)
		bld.Binary(ir.Add, i2, i1, one)
		bld.Jump(head)

		bld.SetBlock(exit)
		bld.Binary(ir.Sub, r, a1, b1)
		bld.Output(r)
		return bld.Fn
	}

	f := build()
	if err := ssa.Verify(f); err != nil {
		t.Fatal(err)
	}
	st, classes, err := sreedhar.ConvertToCSSA(f, sreedhar.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.CopiesInserted == 0 {
		t.Fatal("swap φ cycle requires copies to become conventional")
	}
	verifyCSSA(t, f, classes)
	for _, n := range []int64{0, 1, 2, 5} {
		want, err := ir.Exec(build(), []int64{3, 9, n}, 100000)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ir.Exec(f, []int64{3, 9, n}, 200000)
		if err != nil {
			t.Fatal(err)
		}
		if !want.Equal(got) {
			t.Fatalf("φ swap broken for n=%d", n)
		}
	}
}

// TestNoCopiesWhenConventional: a simple diamond φ with non-interfering
// operands is already conventional — zero copies.
func TestNoCopiesWhenConventional(t *testing.T) {
	f := testprog.Diamond()
	ssa.Build(f)
	st, _, err := sreedhar.ConvertToCSSA(f, sreedhar.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.CopiesInserted != 0 {
		t.Fatalf("diamond needed %d copies, want 0:\n%s", st.CopiesInserted, f)
	}
}

// TestUnsplittableRedirection: when one side of an interference is an
// unsplittable web, the copy must land on the other side.
func TestUnsplittableRedirection(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		f := testprog.Rand(seed, testprog.DefaultRandOptions())
		info := ssa.MustBuild(f)
		st, _, err := sreedhar.ConvertToCSSA(f, sreedhar.Options{
			Unsplittable: func(v ir.ValueID) bool { return info.OrigPhys(v) != ir.NoValue },
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if st.IllegalSplits > 0 {
			t.Errorf("seed %d: %d illegal splits on a well-formed program", seed, st.IllegalSplits)
		}
		// No inserted copy may target an SP-derived variable's web.
		for _, b := range f.Blocks() {
			for _, in := range b.Instrs() {
				if in.Op() != ir.Copy {
					continue
				}
				if info.OrigPhys(in.Use(0)) != ir.NoValue {
					t.Errorf("seed %d: SP web split by copy %v", seed, in)
				}
			}
		}
	}
}
