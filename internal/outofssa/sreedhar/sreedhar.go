// Package sreedhar implements Method III of Sreedhar, Ju, Gillies and
// Santhanam, "Translating Out of Static Single Assignment Form" (SAS
// 1999): conversion of SSA to CSSA (conventional SSA) using the
// interference graph and liveness information to minimize the number of
// inserted copies.
//
// In CSSA it is correct to give all resources of a φ congruence class a
// common name and delete the φs. Following the CGO 2004 paper's
// experimental setup, this package only performs the SSA→CSSA conversion
// and returns the congruence classes; the pipeline then pins each class
// to a common resource (pin.CollectPhiCSSA) and reuses the
// out-of-pinned-SSA translation, which by construction inserts no
// further φ moves.
//
// Each φ is processed in isolation ([CS1] in the CGO paper). Copies are
// accumulated into one parallel copy per block boundary and
// sequentialized at the end of the conversion; the original sequential
// insertion of Sreedhar et al. is unsound when several φs of one block
// exchange values (their targets' live ranges overlap the inserted
// copies), a defect later formalized by Boissinot et al., "Revisiting
// Out-of-SSA Translation" (CGO 2009).
package sreedhar

import (
	"outofssa/internal/analysis"
	"outofssa/internal/cfg"
	"outofssa/internal/interference"
	"outofssa/internal/ir"
	"outofssa/internal/liveness"
)

// Stats describes the conversion.
type Stats struct {
	// CopiesInserted is the number of copies added to break φ resource
	// interferences.
	CopiesInserted int
	// PhisProcessed counts φ instructions handled.
	PhisProcessed int
	// EdgesSplit is the number of critical edges split up front.
	EdgesSplit int
	// IllegalSplitAvoided counts copies that were redirected away from an
	// unsplittable (dedicated-register) web; IllegalSplits counts the
	// cases where no redirection was possible — the paper reports its own
	// Sreedhar implementation producing incorrect code in such cases.
	IllegalSplitAvoided int
	IllegalSplits       int
}

// Options tunes the conversion.
type Options struct {
	// Unsplittable marks values whose SSA web must not be split by copy
	// insertion, e.g. variables renamed from the dedicated SP register
	// (the paper's pinningSP constraint: "splitting the SSA web of such
	// variables poses some problems").
	Unsplittable func(ir.ValueID) bool
}

// ConvertToCSSA transforms f (SSA) into conventional SSA in place and
// returns the φ congruence classes as a value -> representative map
// (values absent from the map are singleton classes).
func ConvertToCSSA(f *ir.Func, opt Options) (*Stats, map[ir.ValueID]ir.ValueID, error) {
	st := &Stats{EdgesSplit: cfg.SplitCriticalEdges(f)}

	cc := newClasses(f)
	cc.targetPC = make(map[*ir.Block]*ir.Instr)
	cc.edgePC = make(map[*ir.Block]*ir.Instr)

	// Analyses are refreshed before every φ, but only when copy insertion
	// actually moved the function's mutation generation (processPhi notes
	// its in-place φ-operand rewrites), so a run of copy-free φs costs
	// one liveness computation total. The generation is compared here
	// rather than re-requesting analysis.Liveness per φ and relying on
	// pointer identity: the stale check is one integer compare and the
	// analysis cache only sees the requests that actually rebuild.
	var live *liveness.Info
	var an *interference.Analysis
	var liveGen uint64
	refresh := func() {
		if gen := f.Generation(); an == nil || gen != liveGen {
			live = analysis.Liveness(f)
			an = interference.New(f, live, analysis.Dominators(f), interference.Exact)
			liveGen = gen
		}
	}

	// φs are processed one at a time, in block layout order — the
	// sequential treatment of [CS1].
	for _, b := range f.Blocks() {
		var phis []*ir.Instr
		for _, phi := range b.Phis() {
			phis = append(phis, phi)
		}
		for _, phi := range phis {
			refresh()
			st.PhisProcessed++
			cc.processPhi(f, phi, live, an, opt, st)
			// Merge the (possibly renamed) φ resources into one class.
			for _, u := range phi.Uses() {
				cc.union(phi.Def(0), u.Val)
			}
		}
	}

	// The boundary parallel copies are deliberately NOT sequentialized
	// here: their operands are still class members that the destruction
	// phase renames to a single name per class, and only the renamed
	// copies reveal the true cycles (a φ swap becomes "P=Q || Q=P", which
	// needs a temporary). The out-of-pinned-SSA translation sequentializes
	// every remaining ParCopy after renaming.
	classes := make(map[ir.ValueID]ir.ValueID)
	for id := 0; id < f.NumValues(); id++ {
		v := ir.ValueID(id)
		if f.IsPhys(v) {
			continue
		}
		if r := cc.findValue(f, v); r != v {
			classes[v] = r
		} else if len(cc.members(f, v)) > 1 {
			classes[v] = v
		}
	}
	return st, classes, nil
}

// phiResource is one resource position of a φ: the target (at the φ's
// block entry) or an argument (at the end of a predecessor).
type phiResource struct {
	val      ir.ValueID
	blk      *ir.Block // L0 for the target, Li for arguments
	isTarget bool
	argIdx   int
}

// processPhi applies the four-case analysis of Method III to one φ and
// inserts the needed copies, noting the mutation on f when it does.
func (cc *classes) processPhi(f *ir.Func, phi *ir.Instr, live *liveness.Info, an *interference.Analysis, opt Options, st *Stats) {
	b := phi.Block()
	res := []phiResource{{val: phi.Def(0), blk: b, isTarget: true, argIdx: -1}}
	for i, u := range phi.Uses() {
		res = append(res, phiResource{val: u.Val, blk: b.Pred(i), argIdx: i})
	}

	// liveHit reports whether some member of x's congruence class is live
	// at the merge point associated with y: live-out of y's predecessor
	// block for arguments, live-in of the φ block for the target.
	liveHit := func(x, y phiResource) bool {
		for _, m := range cc.members(f, x.val) {
			if y.isTarget {
				if live.LiveIn(m, y.blk) {
					return true
				}
			} else if live.LiveOut(m, y.blk) {
				return true
			}
		}
		return false
	}
	classesInterfere := func(x, y phiResource) bool {
		if cc.same(f, x.val, y.val) {
			return false
		}
		for _, mx := range cc.members(f, x.val) {
			for _, my := range cc.members(f, y.val) {
				if an.Interfere(mx, my) {
					return true
				}
			}
		}
		return false
	}

	// splittable reports whether inserting a copy for this resource is
	// legal: webs of dedicated registers (SP) must never be split.
	splittable := func(i int) bool {
		if opt.Unsplittable == nil {
			return true
		}
		for _, m := range cc.members(f, res[i].val) {
			if opt.Unsplittable(m) {
				return false
			}
		}
		return true
	}
	mark := func(needCopy map[int]bool, i, fallback int) {
		if splittable(i) {
			needCopy[i] = true
			return
		}
		st.IllegalSplitAvoided++
		if fallback >= 0 && splittable(fallback) {
			needCopy[fallback] = true
			return
		}
		// No legal choice: split anyway and record it, mirroring the
		// incorrectness the paper reports for its own implementation.
		st.IllegalSplits++
		needCopy[i] = true
	}

	needCopy := make(map[int]bool) // index into res
	type pair struct{ i, j int }
	var unresolved []pair
	for i := 0; i < len(res); i++ {
		for j := i + 1; j < len(res); j++ {
			if res[i].val == res[j].val || !classesInterfere(res[i], res[j]) {
				continue
			}
			hi := liveHit(res[i], res[j]) // class[i] live at j's point
			hj := liveHit(res[j], res[i])
			switch {
			case hi && !hj:
				mark(needCopy, i, j)
			case !hi && hj:
				mark(needCopy, j, i)
			case hi && hj:
				mark(needCopy, i, -1)
				mark(needCopy, j, -1)
			default:
				unresolved = append(unresolved, pair{i, j})
			}
		}
	}
	// "Process the unresolved resources": repeatedly mark the resource
	// with the highest number of unresolved neighbours until every
	// unresolved pair has a marked endpoint.
	for {
		deg := make(map[int]int)
		for _, p := range unresolved {
			if !needCopy[p.i] && !needCopy[p.j] {
				deg[p.i]++
				deg[p.j]++
			}
		}
		if len(deg) == 0 {
			break
		}
		best, bestDeg := -1, -1
		for i := 0; i < len(res); i++ {
			if d, ok := deg[i]; ok && d > bestDeg && splittable(i) {
				best, bestDeg = i, d
			}
		}
		if best < 0 {
			// Only unsplittable resources remain: take the highest degree
			// one anyway and record the illegal split.
			for i := 0; i < len(res); i++ {
				if d, ok := deg[i]; ok && d > bestDeg {
					best, bestDeg = i, d
				}
			}
			st.IllegalSplits++
		}
		needCopy[best] = true
	}

	// Insert the copies (sequential moves — [CS2]).
	for i := range res {
		if !needCopy[i] {
			continue
		}
		st.CopiesInserted++
		r := res[i]
		xnew := f.NewValue(f.ValueName(r.val) + ".c")
		if r.isTarget {
			// xnew becomes the φ target; x0 = xnew joins the parallel copy
			// at the top of L0 (all target copies of one block are
			// simultaneous — sequential insertion would let one target's
			// new definition overlap another's pending read).
			pc := cc.targetPC[b]
			if pc == nil {
				pc = f.NewInstr(ir.ParCopy, nil, nil)
				b.InsertAt(b.FirstNonPhi(), pc)
				cc.targetPC[b] = pc
			}
			pc.AddDef(ir.Operand{Val: r.val})
			pc.AddUse(ir.Operand{Val: xnew})
			phi.SetDefVal(0, xnew)
		} else {
			// xnew = xi joins the parallel copy at the end of Li.
			pc := cc.edgePC[r.blk]
			if pc == nil {
				pc = f.NewInstr(ir.ParCopy, nil, nil)
				r.blk.InsertBeforeTerminator(pc)
				cc.edgePC[r.blk] = pc
			}
			pc.AddDef(ir.Operand{Val: xnew})
			pc.AddUse(ir.Operand{Val: r.val})
			phi.SetUseVal(r.argIdx, xnew)
		}
	}
}

// classes is a growable union-find over value IDs (values created during
// conversion are admitted lazily).
type classes struct {
	parent []int
	// targetPC and edgePC accumulate this conversion's copies as one
	// parallel copy per block boundary.
	targetPC map[*ir.Block]*ir.Instr
	edgePC   map[*ir.Block]*ir.Instr
}

func newClasses(f *ir.Func) *classes {
	c := &classes{parent: make([]int, f.NumValues())}
	for i := range c.parent {
		c.parent[i] = i
	}
	return c
}

func (c *classes) grow(n int) {
	for len(c.parent) < n {
		c.parent = append(c.parent, len(c.parent))
	}
}

func (c *classes) find(id int) int {
	c.grow(id + 1)
	for c.parent[id] != id {
		c.parent[id] = c.parent[c.parent[id]]
		id = c.parent[id]
	}
	return id
}

func (c *classes) union(a, b ir.ValueID) {
	ra, rb := c.find(int(a)), c.find(int(b))
	if ra != rb {
		c.parent[rb] = ra
	}
}

func (c *classes) same(f *ir.Func, a, b ir.ValueID) bool {
	return c.find(int(a)) == c.find(int(b))
}

func (c *classes) findValue(f *ir.Func, v ir.ValueID) ir.ValueID {
	return ir.ValueID(c.find(int(v)))
}

// members enumerates the congruence class of v. Linear in the number of
// values; φ classes are small so this is acceptable for the workloads.
func (c *classes) members(f *ir.Func, v ir.ValueID) []ir.ValueID {
	root := c.find(int(v))
	var out []ir.ValueID
	for id := 0; id < f.NumValues(); id++ {
		w := ir.ValueID(id)
		if f.IsPhys(w) {
			continue
		}
		if c.find(id) == root {
			out = append(out, w)
		}
	}
	return out
}
