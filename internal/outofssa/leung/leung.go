// Package leung implements the out-of-pinned-SSA translation of Leung
// and George ("Static single assignment form for machine code", PLDI
// 1999) in the formulation used by Rastello, de Ferrière and Guillon
// (CGO 2004): a mark phase that detects variables killed within their
// pinned resource, and a reconstruction phase that renames variables to
// their resources, inserts repair copies after killed definitions,
// enforces use pins with parallel copies, and replaces φ instructions by
// parallel copies at the end of predecessor blocks.
//
// All φ-related and constraint-related copies are emitted as parallel
// copies and then sequentialized, which resolves the swap and lost-copy
// problems of the naive translation.
package leung

import (
	"fmt"

	"outofssa/internal/analysis"
	"outofssa/internal/cfg"
	"outofssa/internal/interference"
	"outofssa/internal/ir"
	"outofssa/internal/parcopy"
	"outofssa/internal/pin"
)

// Stats reports what the translation did.
type Stats struct {
	// Repairs is the number of repair copies inserted for killed
	// variables (paper §2.3, Fig. 3: x'3 = R0).
	Repairs int
	// PhiMoves is the number of non-trivial φ-replacement move slots
	// (before sequentialization; cycles may add temps on top).
	PhiMoves int
	// PinMoves is the number of moves inserted to satisfy use pins (ABI
	// argument slots, 2-operand reads).
	PinMoves int
	// EdgesSplit is the number of critical edges split up front.
	EdgesSplit int
	// Killed is the number of variables the mark phase found killed
	// within their resource (repair candidates before the used-filter).
	Killed int
	// Interference snapshots the analysis query counters accumulated by
	// the translation (the tracer's view into the hot path).
	Interference interference.Counters
}

// Translate converts the pinned SSA function f out of SSA form in place.
// Definition pins become the variables' home resources; use pins are
// enforced with copies; killed variables are repaired. The result
// contains no φ and no ParCopy instructions.
func Translate(f *ir.Func) (*Stats, error) {
	st := &Stats{}
	st.EdgesSplit = cfg.SplitCriticalEdges(f)

	res, err := pin.NewResources(f)
	if err != nil {
		return nil, err
	}
	if err := pin.Validate(f, res); err != nil {
		return nil, fmt.Errorf("leung: invalid pinning: %v", err)
	}

	live := analysis.Liveness(f)
	dom := analysis.Dominators(f)
	an := interference.New(f, live, dom, interference.Exact)
	rg := interference.NewResourceGraph(an, res)

	// ---- Mark phase: which variables are killed within their resource?
	killed := make(map[*ir.Value]bool)
	seenRoot := make(map[*ir.Value]bool)
	for _, v := range f.Values() {
		if v.IsPhys() {
			continue
		}
		root := res.Find(v)
		if seenRoot[root] {
			continue
		}
		seenRoot[root] = true
		vals := f.Values()
		rg.KilledSet(root).ForEach(func(id int) { killed[vals[id]] = true })
	}

	// Only killed variables with at least one use need a repair variable.
	used := make(map[*ir.Value]bool)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, u := range in.Uses {
				used[u.Val] = true
			}
		}
	}
	repair := make(map[*ir.Value]*ir.Value) // permanent: killed var -> repair var
	for _, v := range f.Values() {
		if killed[v] && used[v] {
			repair[v] = f.NewValue(v.Name + "'")
		}
	}
	st.Repairs = len(repair)
	st.Killed = len(killed)

	home := func(v *ir.Value) *ir.Value { return res.Find(v) }
	// src yields the location holding v's value at any point dominated by
	// its repair snapshot: the repair variable if v was killed, else its
	// home resource.
	src := func(v *ir.Value) *ir.Value {
		if r, ok := repair[v]; ok {
			return r
		}
		return home(v)
	}

	// Instructions created by the translation carry final names and must
	// not be rewritten again when their block is processed later.
	emitted := make(map[*ir.Instr]bool)
	newCopy := func(d, s *ir.Value) *ir.Instr {
		c := &ir.Instr{Op: ir.Copy,
			Defs: []ir.Operand{{Val: d}}, Uses: []ir.Operand{{Val: s}}}
		emitted[c] = true
		return c
	}

	// ---- Reconstruct phase.
	for _, b := range f.Blocks {
		// Replace the φs of b by parallel copies at the end of each pred.
		phis := b.Phis()
		if len(phis) > 0 {
			for pi, pred := range b.Preds {
				pc := &ir.Instr{Op: ir.ParCopy}
				for _, phi := range phis {
					dst := home(phi.Def(0))
					s := src(phi.Uses[pi].Val)
					if dst == s {
						continue // coalesced: no move needed (the "gain")
					}
					pc.Defs = append(pc.Defs, ir.Operand{Val: dst})
					pc.Uses = append(pc.Uses, ir.Operand{Val: s})
				}
				if len(pc.Defs) > 0 {
					st.PhiMoves += len(pc.Defs)
					emitted[pc] = true
					pred.InsertBeforeTerminator(pc)
				}
			}
			// Remove the φs; killed φ results (lost-copy self-kill) get
			// their snapshot right after the φ point, before anything can
			// clobber the resource.
			var snaps []*ir.Instr
			for _, phi := range phis {
				x := phi.Def(0)
				if r, ok := repair[x]; ok {
					snaps = append(snaps, newCopy(r, home(x)))
				}
			}
			b.Instrs = b.Instrs[len(phis):]
			for k, c := range snaps {
				b.InsertAt(k, c)
			}
		}

		for idx := 0; idx < len(b.Instrs); idx++ {
			in := b.Instrs[idx]
			if emitted[in] {
				continue
			}

			// Enforce use pins: needed (resource <- location) moves
			// execute in parallel just before the instruction.
			pre := &ir.Instr{Op: ir.ParCopy}
			scheduled := make(map[*ir.Value]*ir.Value) // dst -> src
			pinnedIdx := make(map[int]bool)            // operand indexes rewritten to pinned resources
			for ui := range in.Uses {
				u := &in.Uses[ui]
				v := u.Val
				if u.Pin == nil {
					u.Val = src(v)
					continue
				}
				pinnedIdx[ui] = true
				want := res.Find(u.Pin)
				u.Pin = nil
				u.Val = want
				if home(v) == want && repair[v] == nil {
					continue // value already lives in the pinned resource
				}
				s := src(v)
				if s == want {
					continue
				}
				if prev, ok := scheduled[want]; ok {
					if prev != s {
						return nil, fmt.Errorf("leung: conflicting pinned uses %v=%v vs %v=%v in %q",
							want, prev, want, s, in)
					}
					continue
				}
				scheduled[want] = s
				pre.Defs = append(pre.Defs, ir.Operand{Val: want})
				pre.Uses = append(pre.Uses, ir.Operand{Val: s})
			}
			if len(pre.Defs) > 0 {
				// The parallel pre-copy writes pinned resources. Any other
				// operand of this instruction still reading one of those
				// resources must be rescued into a temporary first (the
				// kill analysis works at definition granularity and does
				// not see values that die exactly at this instruction).
				rescued := make(map[*ir.Value]*ir.Value)
				for ui := range in.Uses {
					u := &in.Uses[ui]
					s, clobbered := scheduled[u.Val]
					if !clobbered || s == u.Val {
						continue
					}
					if !pinnedIdx[ui] {
						t := rescued[u.Val]
						if t == nil {
							t = f.NewValue("")
							rescued[u.Val] = t
							b.InsertAt(idx, newCopy(t, u.Val))
							idx++
							st.PinMoves++
						}
						u.Val = t
					}
				}
				st.PinMoves += len(pre.Defs)
				emitted[pre] = true
				b.InsertAt(idx, pre)
				idx++
			}

			// Rewrite definitions to their home resources; snapshot killed
			// definitions immediately after the instruction.
			post := 0
			for di := range in.Defs {
				d := &in.Defs[di]
				v := d.Val
				h := home(v)
				d.Val = h
				d.Pin = nil
				if r, ok := repair[v]; ok {
					b.InsertAt(idx+1+post, newCopy(r, h))
					post++
				}
			}
			idx += post
		}
	}

	parcopy.Sequentialize(f)
	f.NoteMutation() // reconstruction rewrote operands in place throughout
	st.Interference = an.Counters()
	return st, nil
}
