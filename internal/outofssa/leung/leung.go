// Package leung implements the out-of-pinned-SSA translation of Leung
// and George ("Static single assignment form for machine code", PLDI
// 1999) in the formulation used by Rastello, de Ferrière and Guillon
// (CGO 2004): a mark phase that detects variables killed within their
// pinned resource, and a reconstruction phase that renames variables to
// their resources, inserts repair copies after killed definitions,
// enforces use pins with parallel copies, and replaces φ instructions by
// parallel copies at the end of predecessor blocks.
//
// All φ-related and constraint-related copies are emitted as parallel
// copies and then sequentialized, which resolves the swap and lost-copy
// problems of the naive translation.
package leung

import (
	"fmt"

	"outofssa/internal/analysis"
	"outofssa/internal/cfg"
	"outofssa/internal/interference"
	"outofssa/internal/ir"
	"outofssa/internal/parcopy"
	"outofssa/internal/pin"
)

// Stats reports what the translation did.
type Stats struct {
	// Repairs is the number of repair copies inserted for killed
	// variables (paper §2.3, Fig. 3: x'3 = R0).
	Repairs int
	// PhiMoves is the number of non-trivial φ-replacement move slots
	// (before sequentialization; cycles may add temps on top).
	PhiMoves int
	// PinMoves is the number of moves inserted to satisfy use pins (ABI
	// argument slots, 2-operand reads).
	PinMoves int
	// EdgesSplit is the number of critical edges split up front.
	EdgesSplit int
	// Killed is the number of variables the mark phase found killed
	// within their resource (repair candidates before the used-filter).
	Killed int
	// Interference snapshots the analysis query counters accumulated by
	// the translation (the tracer's view into the hot path).
	Interference interference.Counters
}

// Translate converts the pinned SSA function f out of SSA form in place.
// Definition pins become the variables' home resources; use pins are
// enforced with copies; killed variables are repaired. The result
// contains no φ and no ParCopy instructions.
func Translate(f *ir.Func) (*Stats, error) {
	st := &Stats{}
	st.EdgesSplit = cfg.SplitCriticalEdges(f)

	res, err := pin.NewResources(f)
	if err != nil {
		return nil, err
	}
	if err := pin.Validate(f, res); err != nil {
		return nil, fmt.Errorf("leung: invalid pinning: %v", err)
	}

	live := analysis.Liveness(f)
	dom := analysis.Dominators(f)
	an := interference.New(f, live, dom, interference.Exact)
	rg := interference.NewResourceGraph(an, res)

	// ---- Mark phase: which variables are killed within their resource?
	killed := make(map[ir.ValueID]bool)
	seenRoot := make(map[ir.ValueID]bool)
	numVals := f.NumValues()
	for id := 0; id < numVals; id++ {
		v := ir.ValueID(id)
		if f.IsPhys(v) {
			continue
		}
		root := res.Find(v)
		if seenRoot[root] {
			continue
		}
		seenRoot[root] = true
		rg.KilledSet(root).ForEach(func(id int) { killed[ir.ValueID(id)] = true })
	}

	// Only killed variables with at least one use need a repair variable.
	used := make(map[ir.ValueID]bool)
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			for _, u := range in.Uses() {
				used[u.Val] = true
			}
		}
	}
	repair := make(map[ir.ValueID]ir.ValueID) // permanent: killed var -> repair var
	for id := 0; id < numVals; id++ {
		v := ir.ValueID(id)
		if killed[v] && used[v] {
			repair[v] = f.NewValue(f.ValueName(v) + "'")
		}
	}
	st.Repairs = len(repair)
	st.Killed = len(killed)

	home := func(v ir.ValueID) ir.ValueID { return res.Find(v) }
	// src yields the location holding v's value at any point dominated by
	// its repair snapshot: the repair variable if v was killed, else its
	// home resource.
	src := func(v ir.ValueID) ir.ValueID {
		if r, ok := repair[v]; ok {
			return r
		}
		return home(v)
	}

	// Instructions created by the translation carry final names and must
	// not be rewritten again when their block is processed later.
	emitted := make(map[*ir.Instr]bool)
	newCopy := func(d, s ir.ValueID) *ir.Instr {
		c := f.NewInstr(ir.Copy,
			[]ir.Operand{{Val: d}}, []ir.Operand{{Val: s}})
		emitted[c] = true
		return c
	}

	// ---- Reconstruct phase.
	for _, b := range f.Blocks() {
		// Replace the φs of b by parallel copies at the end of each pred.
		nphis := b.NumPhis()
		if nphis > 0 {
			var phis []*ir.Instr
			for _, phi := range b.Phis() {
				phis = append(phis, phi)
			}
			for pi := 0; pi < b.NumPreds(); pi++ {
				pred := b.Pred(pi)
				var defs, uses []ir.Operand
				for _, phi := range phis {
					dst := home(phi.Def(0))
					s := src(phi.Use(pi))
					if dst == s {
						continue // coalesced: no move needed (the "gain")
					}
					defs = append(defs, ir.Operand{Val: dst})
					uses = append(uses, ir.Operand{Val: s})
				}
				if len(defs) > 0 {
					st.PhiMoves += len(defs)
					pc := f.NewInstr(ir.ParCopy, defs, uses)
					emitted[pc] = true
					pred.InsertBeforeTerminator(pc)
				}
			}
			// Remove the φs; killed φ results (lost-copy self-kill) get
			// their snapshot right after the φ point, before anything can
			// clobber the resource.
			var snaps []*ir.Instr
			for _, phi := range phis {
				x := phi.Def(0)
				if r, ok := repair[x]; ok {
					snaps = append(snaps, newCopy(r, home(x)))
				}
			}
			for k := 0; k < nphis; k++ {
				b.RemoveAt(0)
			}
			for k, c := range snaps {
				b.InsertAt(k, c)
			}
		}

		for idx := 0; idx < b.NumInstrs(); idx++ {
			in := b.Instr(idx)
			if emitted[in] {
				continue
			}

			// Enforce use pins: needed (resource <- location) moves
			// execute in parallel just before the instruction.
			var preDefs, preUses []ir.Operand
			scheduled := make(map[ir.ValueID]ir.ValueID) // dst -> src
			pinnedIdx := make(map[int]bool)              // operand indexes rewritten to pinned resources
			for ui := 0; ui < in.NumUses(); ui++ {
				u := in.UseOp(ui)
				v := u.Val
				if !u.Pinned() {
					in.SetUse(ui, ir.Operand{Val: src(v)})
					continue
				}
				pinnedIdx[ui] = true
				want := res.Find(u.Pin())
				in.SetUse(ui, ir.Operand{Val: want})
				if _, wasKilled := repair[v]; home(v) == want && !wasKilled {
					continue // value already lives in the pinned resource
				}
				s := src(v)
				if s == want {
					continue
				}
				if prev, ok := scheduled[want]; ok {
					if prev != s {
						return nil, fmt.Errorf("leung: conflicting pinned uses %v=%v vs %v=%v in %q",
							f.VStr(want), f.VStr(prev), f.VStr(want), f.VStr(s), in)
					}
					continue
				}
				scheduled[want] = s
				preDefs = append(preDefs, ir.Operand{Val: want})
				preUses = append(preUses, ir.Operand{Val: s})
			}
			if len(preDefs) > 0 {
				// The parallel pre-copy writes pinned resources. Any other
				// operand of this instruction still reading one of those
				// resources must be rescued into a temporary first (the
				// kill analysis works at definition granularity and does
				// not see values that die exactly at this instruction).
				rescued := make(map[ir.ValueID]ir.ValueID)
				for ui := 0; ui < in.NumUses(); ui++ {
					uv := in.Use(ui)
					s, clobbered := scheduled[uv]
					if !clobbered || s == uv {
						continue
					}
					if !pinnedIdx[ui] {
						t, ok := rescued[uv]
						if !ok {
							t = f.NewValue("")
							rescued[uv] = t
							b.InsertAt(idx, newCopy(t, uv))
							idx++
							st.PinMoves++
						}
						in.SetUseVal(ui, t)
					}
				}
				st.PinMoves += len(preDefs)
				pre := f.NewInstr(ir.ParCopy, preDefs, preUses)
				emitted[pre] = true
				b.InsertAt(idx, pre)
				idx++
			}

			// Rewrite definitions to their home resources; snapshot killed
			// definitions immediately after the instruction.
			post := 0
			for di := 0; di < in.NumDefs(); di++ {
				v := in.Def(di)
				h := home(v)
				in.SetDef(di, ir.Operand{Val: h})
				if r, ok := repair[v]; ok {
					b.InsertAt(idx+1+post, newCopy(r, h))
					post++
				}
			}
			idx += post
		}
	}

	parcopy.Sequentialize(f)
	st.Interference = an.Counters()
	return st, nil
}
