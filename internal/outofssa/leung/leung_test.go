package leung_test

import (
	"testing"

	"outofssa/internal/ir"
	"outofssa/internal/outofssa/leung"
	"outofssa/internal/pin"
	"outofssa/internal/ssa"
	"outofssa/internal/testprog"
)

// destruct runs the full SSA round trip: build pruned SSA, optionally
// collect SP/ABI pins, translate out of SSA, and sanity-check the result.
func destruct(t *testing.T, f *ir.Func, abi bool) *leung.Stats {
	t.Helper()
	info := ssa.MustBuild(f)
	if err := ssa.Verify(f); err != nil {
		t.Fatalf("%s: ssa: %v", f.Name, err)
	}
	pin.CollectSP(f, info)
	if abi {
		pin.CollectABI(f)
	}
	st, err := leung.Translate(f)
	if err != nil {
		t.Fatalf("%s: translate: %v", f.Name, err)
	}
	if err := f.Verify(); err != nil {
		t.Fatalf("%s: post-translate verify: %v\n%s", f.Name, err, f)
	}
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			if in.Op() == ir.Phi || in.Op() == ir.ParCopy {
				t.Fatalf("%s: %v remains after translation", f.Name, in.Op())
			}
		}
	}
	return st
}

func roundTrip(t *testing.T, mk func() *ir.Func, abi bool, args []int64) {
	t.Helper()
	ref := mk()
	want, err := ir.Exec(ref, args, 500000)
	if err != nil {
		t.Fatalf("%s: reference exec: %v", ref.Name, err)
	}
	f := mk()
	destruct(t, f, abi)
	got, err := ir.Exec(f, args, 1000000)
	if err != nil {
		t.Fatalf("%s: post exec: %v\n%s", f.Name, err, f)
	}
	if !want.Equal(got) {
		t.Fatalf("%s (abi=%v): behaviour changed\nwant %+v\ngot  %+v\n%s",
			f.Name, abi, want, got, f)
	}
}

func TestTranslateStructured(t *testing.T) {
	argSets := [][]int64{{0, 0, 0}, {1, 2, 3}, {9, 4, 2}, {5, 5, 5}, {100, 3, 7}}
	for _, mk := range []func() *ir.Func{
		testprog.Diamond, testprog.Loop, testprog.NestedLoops,
		testprog.SwapLoop, testprog.LostCopy, testprog.WithCallsAndStack,
	} {
		for _, abi := range []bool{false, true} {
			for _, args := range argSets {
				roundTrip(t, mk, abi, args)
			}
		}
	}
}

func TestTranslateRandom(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		for _, abi := range []bool{false, true} {
			mk := func() *ir.Func { return testprog.Rand(seed, testprog.DefaultRandOptions()) }
			roundTrip(t, mk, abi, []int64{seed, 13, seed % 7})
			roundTrip(t, mk, abi, []int64{0, 0, 0})
		}
	}
}

// TestSwapProblem: the swap loop must survive translation — the φ cycle
// at the loop header requires parallel-copy sequentialization with a
// temporary, the classic swap problem.
func TestSwapProblem(t *testing.T) {
	for _, n := range []int64{0, 1, 2, 5} {
		mk := testprog.SwapLoop
		ref := mk()
		want, _ := ir.Exec(ref, []int64{3, 9, n}, 100000)
		f := mk()
		destruct(t, f, false)
		got, err := ir.Exec(f, []int64{3, 9, n}, 200000)
		if err != nil {
			t.Fatal(err)
		}
		if !want.Equal(got) {
			t.Fatalf("swap problem mishandled for n=%d", n)
		}
	}
}

// TestLostCopyProblem: the φ result outlives the redefinition of its
// argument; translation must repair (Briggs' lost-copy problem).
func TestLostCopyProblem(t *testing.T) {
	for _, n := range []int64{0, 1, 2, 10} {
		ref := testprog.LostCopy()
		want, _ := ir.Exec(ref, []int64{n}, 100000)
		f := testprog.LostCopy()
		destruct(t, f, false)
		got, err := ir.Exec(f, []int64{n}, 200000)
		if err != nil {
			t.Fatal(err)
		}
		if !want.Equal(got) {
			t.Fatalf("lost copy mishandled for n=%d: want %v got %v", n, want.Outputs, got.Outputs)
		}
	}
}

// TestABIPinsMaterialized: with ABI collection, the output value must
// flow through R0 and call arguments through R0/R1.
func TestABIPinsMaterialized(t *testing.T) {
	f := testprog.WithCallsAndStack()
	destruct(t, f, true)
	r0 := f.Target.R[0]
	sawR0Use := false
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			if in.Op() == ir.Output {
				for _, u := range in.Uses() {
					if u.Val == r0 {
						sawR0Use = true
					}
				}
			}
			if in.Op() == ir.Call {
				if in.NumUses() > 0 && in.Use(0) != r0 {
					t.Fatalf("call arg 0 not in R0: %v", in)
				}
				if in.NumDefs() > 0 && in.Def(0) != r0 {
					t.Fatalf("call result not in R0: %v", in)
				}
			}
		}
	}
	if !sawR0Use {
		t.Fatal(".output does not read R0 despite ABI pinning")
	}
}

// TestPaperFigure3 reproduces the paper's Figure 3: x3 is pinned to R0 by
// a φ but killed by the call result x4 (also pinned to R0) before its use
// in the return, so the translation must introduce a repair copy.
func TestPaperFigure3(t *testing.T) {
	bld := ir.NewBuilder("fig3")
	f := bld.Fn
	r0, r1 := f.Target.R[0], f.Target.R[1]

	entry := bld.Block("entry")
	loop := f.NewBlock("loop")
	exit := f.NewBlock("exit")

	x0, y0 := bld.Val("x0"), bld.Val("y0")
	x1, y1 := bld.Val("x1"), bld.Val("y1")
	y2, x4, k := bld.Val("y2"), bld.Val("x4"), bld.Val("K")

	bld.SetBlock(entry)
	in := bld.Input(x0, y0)
	ir.PinDef(in, 0, r0)
	ir.PinDef(in, 1, r1)
	bld.Const(k, 3)
	bld.Jump(loop)

	bld.SetBlock(loop)
	// x1 plays the role of the paper's x3: pinned to R0 by its φ, killed
	// by the call result x4 (also pinned to R0), and used after the loop.
	phiX1 := bld.Phi(x1, x0, x4)
	ir.PinDef(phiX1, 0, r0)
	phiY1 := bld.Phi(y1, y0, y2)
	ir.PinDef(phiY1, 0, r1)

	bld.Binary(ir.Add, y2, y1, k)
	call := bld.Call("g", []ir.ValueID{x4}, x1, y2)
	ir.PinDef(call, 0, r0)
	ir.PinUse(call, 0, r0)
	ir.PinUse(call, 1, r1)
	c := bld.Val("c")
	bld.Binary(ir.CmpLT, c, x4, k)
	bld.Br(c, loop, exit)

	bld.SetBlock(exit)
	out := bld.Output(x1)
	ir.PinUse(out, 0, r0)

	if err := ssa.Verify(f); err != nil {
		t.Fatalf("hand-built SSA invalid: %v", err)
	}
	st, err := leung.Translate(f)
	if err != nil {
		t.Fatal(err)
	}
	if st.Repairs == 0 {
		t.Fatal("figure 3 requires a repair copy for x1 (killed in R0 by the call)")
	}
	if err := f.Verify(); err != nil {
		t.Fatalf("%v\n%s", err, f)
	}
	// The repaired value must flow back into R0 before the return.
	var movesToR0InExit int
	for _, b := range f.Blocks() {
		if b.Name != "exit" {
			continue
		}
		for _, in := range b.Instrs() {
			if in.Op() == ir.Copy && in.Def(0) == r0 {
				movesToR0InExit++
			}
		}
	}
	if movesToR0InExit == 0 {
		t.Fatalf("expected a move restoring R0 before the return:\n%s", f)
	}
}

// TestNoRedundantMoveForPinnedUse: when a value already lives in the
// pinned resource, no move may be inserted (paper: "the algorithm is
// careful not to introduce a redundant move instruction in this case").
func TestNoRedundantMoveForPinnedUse(t *testing.T) {
	bld := ir.NewBuilder("redundant")
	f := bld.Fn
	r0 := f.Target.R[0]
	bld.Block("entry")
	a, b := bld.Val("a"), bld.Val("b")
	in := bld.Input(a)
	ir.PinDef(in, 0, r0) // a lives in R0
	call := bld.Call("f", []ir.ValueID{b}, a)
	ir.PinUse(call, 0, r0) // wants a in R0 — already there
	ir.PinDef(call, 0, r0)
	out := bld.Output(b)
	ir.PinUse(out, 0, r0) // b already in R0
	if err := ssa.Verify(f); err != nil {
		t.Fatal(err)
	}
	_, err := leung.Translate(f)
	if err != nil {
		t.Fatal(err)
	}
	if n := f.CountMoves(); n != 0 {
		t.Fatalf("expected 0 moves, got %d:\n%s", n, f)
	}
}

func TestStatsAccounting(t *testing.T) {
	f := testprog.Diamond()
	ssa.Build(f)
	st, err := leung.Translate(f)
	if err != nil {
		t.Fatal(err)
	}
	// Nothing pinned, x's φ needs one move per predecessor.
	if st.PhiMoves != 2 || st.PinMoves != 0 || st.Repairs != 0 {
		t.Fatalf("unexpected stats: %+v", st)
	}
	if f.CountMoves() != 2 {
		t.Fatalf("move count = %d, want 2", f.CountMoves())
	}
}
