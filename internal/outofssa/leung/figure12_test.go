package leung_test

import (
	"testing"

	"outofssa/internal/ir"
	"outofssa/internal/outofssa/leung"
	"outofssa/internal/ssa"
)

// TestPaperFigure12Limitation documents limitation [LIM2]: a repair
// variable introduced during the repairing phase is not coalesced with
// further uses pinned to the conflicting resource. The optimal code needs
// one move (R0 = x before x is incremented); Leung–George's repair
// produces two (x' = x repair, then R0 = x' at the call).
//
//	x0 = ...
//	loop: x = φ(x0, x1) pinned to x's own web
//	      x1 = x + 1
//	      ... = f(x ^ R0)        — use of x pinned to R0
func TestPaperFigure12Limitation(t *testing.T) {
	bld := ir.NewBuilder("fig12")
	f := bld.Fn
	r0 := f.Target.R[0]

	entry := bld.Block("entry")
	loop := f.NewBlock("loop")
	exit := f.NewBlock("exit")

	x0, x, x1 := bld.Val("x0"), bld.Val("x"), bld.Val("x1")
	d, c, n := bld.Val("d"), bld.Val("c"), bld.Val("n")
	one := bld.Val("one")

	bld.SetBlock(entry)
	bld.Input(n)
	bld.Const(one, 1)
	bld.Const(x0, 0)
	bld.Jump(loop)

	bld.SetBlock(loop)
	phi := bld.Phi(x, x0, x1)
	// Coalesce the φ web by hand (x, x0, x1 pinned to x) — the situation
	// after a pinningφ pass.
	ir.PinDef(phi, 0, x)
	bld.Binary(ir.Add, x1, x, one)
	call := bld.Call("f", []ir.ValueID{d}, x)
	ir.PinUse(call, 0, r0)
	ir.PinDef(call, 0, r0)
	bld.Binary(ir.CmpLT, c, d, n)
	bld.Br(c, loop, exit)

	bld.SetBlock(exit)
	bld.Output(d)

	// Pin x0 and x1 defs into x's web.
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			for i := 0; i < in.NumDefs(); i++ {
				if in.Def(i) == x0 || in.Def(i) == x1 {
					in.SetDefPin(i, x)
				}
			}
		}
	}
	if err := ssa.Verify(f); err != nil {
		t.Fatal(err)
	}

	st, err := leung.Translate(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	// x is killed in its own web by x1 = x+1 (x still live at the call
	// after the increment on the paper's schedule? here x is used by the
	// call AFTER x1's def, so x is killed and repaired).
	if st.Repairs == 0 {
		t.Fatalf("expected the repair that exhibits [LIM2]; stats: %+v\n%s", st, f)
	}
	// The limitation: two moves where the optimal solution needs one.
	if got := f.CountMoves(); got < 2 {
		t.Fatalf("expected >= 2 moves (the [LIM2] cost), got %d:\n%s", got, f)
	}
}
