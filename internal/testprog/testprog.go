// Package testprog builds small pre-SSA IR programs shared by tests
// across the repository: structured control-flow shapes (diamond, loop,
// nested loops) and a seeded random program generator small enough for
// exhaustive interpretation.
package testprog

import (
	"outofssa/internal/ir"
)

// Diamond builds:
//
//	entry: a,b = input; c = a < b; br c -> left, right
//	left:  x = a + b; jump join
//	right: x = a - b; jump join
//	join:  y = x * 2 ; output y
//
// x has two defs — SSA construction must place a φ at join.
func Diamond() *ir.Func {
	bld := ir.NewBuilder("diamond")
	entry := bld.Block("entry")
	left := bld.Fn.NewBlock("left")
	right := bld.Fn.NewBlock("right")
	join := bld.Fn.NewBlock("join")

	a, b, c, x, y, two := bld.Val("a"), bld.Val("b"), bld.Val("c"), bld.Val("x"), bld.Val("y"), bld.Val("two")

	bld.SetBlock(entry)
	bld.Input(a, b)
	bld.Binary(ir.CmpLT, c, a, b)
	bld.Br(c, left, right)

	bld.SetBlock(left)
	bld.Binary(ir.Add, x, a, b)
	bld.Jump(join)

	bld.SetBlock(right)
	bld.Binary(ir.Sub, x, a, b)
	bld.Jump(join)

	bld.SetBlock(join)
	bld.Const(two, 2)
	bld.Binary(ir.Mul, y, x, two)
	bld.Output(y)
	return bld.Fn
}

// Loop builds a counted accumulation loop:
//
//	entry: n = input; i = 0; s = 0; jump head
//	head:  c = i < n; br c -> body, exit
//	body:  s = s + i; i = i + 1; jump head
//	exit:  output s
func Loop() *ir.Func {
	bld := ir.NewBuilder("loop")
	entry := bld.Block("entry")
	head := bld.Fn.NewBlock("head")
	body := bld.Fn.NewBlock("body")
	exit := bld.Fn.NewBlock("exit")

	n, i, s, c, one := bld.Val("n"), bld.Val("i"), bld.Val("s"), bld.Val("c"), bld.Val("one")

	bld.SetBlock(entry)
	bld.Input(n)
	bld.Const(i, 0)
	bld.Const(s, 0)
	bld.Const(one, 1)
	bld.Jump(head)

	bld.SetBlock(head)
	bld.Binary(ir.CmpLT, c, i, n)
	bld.Br(c, body, exit)

	bld.SetBlock(body)
	bld.Binary(ir.Add, s, s, i)
	bld.Binary(ir.Add, i, i, one)
	bld.Jump(head)

	bld.SetBlock(exit)
	bld.Output(s)
	return bld.Fn
}

// NestedLoops builds a doubly nested loop with a conditional in the inner
// body (exercises loop-depth computation and φ placement at several
// confluence points).
func NestedLoops() *ir.Func {
	bld := ir.NewBuilder("nested")
	entry := bld.Block("entry")
	ohead := bld.Fn.NewBlock("ohead")
	ihead := bld.Fn.NewBlock("ihead")
	ibody := bld.Fn.NewBlock("ibody")
	then := bld.Fn.NewBlock("then")
	els := bld.Fn.NewBlock("els")
	ijoin := bld.Fn.NewBlock("ijoin")
	ilatch := bld.Fn.NewBlock("ilatch")
	olatch := bld.Fn.NewBlock("olatch")
	exit := bld.Fn.NewBlock("exit")

	n := bld.Val("n")
	i, j, s := bld.Val("i"), bld.Val("j"), bld.Val("s")
	c1, c2, c3 := bld.Val("c1"), bld.Val("c2"), bld.Val("c3")
	t, one, two := bld.Val("t"), bld.Val("one"), bld.Val("two")

	bld.SetBlock(entry)
	bld.Input(n)
	bld.Const(one, 1)
	bld.Const(two, 2)
	bld.Const(i, 0)
	bld.Const(s, 0)
	bld.Jump(ohead)

	bld.SetBlock(ohead)
	bld.Binary(ir.CmpLT, c1, i, n)
	bld.Br(c1, ihead, exit)

	bld.SetBlock(ihead)
	bld.Const(j, 0)
	bld.Jump(ibody)

	bld.SetBlock(ibody)
	bld.Binary(ir.And, c2, j, one)
	bld.Br(c2, then, els)

	bld.SetBlock(then)
	bld.Binary(ir.Add, t, s, j)
	bld.Jump(ijoin)

	bld.SetBlock(els)
	bld.Binary(ir.Sub, t, s, j)
	bld.Jump(ijoin)

	bld.SetBlock(ijoin)
	bld.Binary(ir.Add, s, t, one)
	bld.Jump(ilatch)

	bld.SetBlock(ilatch)
	bld.Binary(ir.Add, j, j, one)
	bld.Binary(ir.CmpLT, c3, j, two)
	bld.Br(c3, ibody, olatch)

	bld.SetBlock(olatch)
	bld.Binary(ir.Add, i, i, one)
	bld.Jump(ohead)

	bld.SetBlock(exit)
	bld.Output(s)
	return bld.Fn
}

// SwapLoop builds the classic swap-problem program: two variables
// exchanged around a loop back edge, forcing a φ cycle.
//
//	entry: a,b,n = input; i=0; jump head
//	head:  φ-candidates a,b ; c = i<n ; br c -> body, exit
//	body:  t=a; a=b; b=t; i=i+1; jump head   (copies folded: a,b = b,a)
//	exit:  output a, b
func SwapLoop() *ir.Func {
	bld := ir.NewBuilder("swap")
	entry := bld.Block("entry")
	head := bld.Fn.NewBlock("head")
	body := bld.Fn.NewBlock("body")
	exit := bld.Fn.NewBlock("exit")

	a, b, n, i, c, t, one := bld.Val("a"), bld.Val("b"), bld.Val("n"), bld.Val("i"), bld.Val("c"), bld.Val("t"), bld.Val("one")

	bld.SetBlock(entry)
	bld.Input(a, b, n)
	bld.Const(i, 0)
	bld.Const(one, 1)
	bld.Jump(head)

	bld.SetBlock(head)
	bld.Binary(ir.CmpLT, c, i, n)
	bld.Br(c, body, exit)

	bld.SetBlock(body)
	bld.Copy(t, a)
	bld.Copy(a, b)
	bld.Copy(b, t)
	bld.Binary(ir.Add, i, i, one)
	bld.Jump(head)

	bld.SetBlock(exit)
	bld.Binary(ir.Add, t, a, b)
	bld.Output(t)
	return bld.Fn
}

// LostCopy builds the classic lost-copy program: the φ result is used
// after the loop while the φ argument is redefined inside it.
func LostCopy() *ir.Func {
	bld := ir.NewBuilder("lostcopy")
	entry := bld.Block("entry")
	head := bld.Fn.NewBlock("head")
	exit := bld.Fn.NewBlock("exit")

	n, x, y, c, one := bld.Val("n"), bld.Val("x"), bld.Val("y"), bld.Val("c"), bld.Val("one")

	bld.SetBlock(entry)
	bld.Input(n)
	bld.Const(one, 1)
	bld.Const(x, 1)
	bld.Jump(head)

	bld.SetBlock(head)
	bld.Copy(y, x) // y holds the pre-increment value, used after the loop
	bld.Binary(ir.Add, x, x, one)
	bld.Binary(ir.CmpLT, c, x, n)
	bld.Br(c, head, exit)

	bld.SetBlock(exit)
	bld.Output(y)
	return bld.Fn
}

// WithCallsAndStack builds a function exercising ABI constraints: two
// calls whose results feed each other, stack traffic through SP, a
// 2-operand autoadd pointer walk and a make/more immediate pair —
// essentially the paper's Figure 1 shape.
func WithCallsAndStack() *ir.Func {
	bld := ir.NewBuilder("abifig1")
	entry := bld.Block("entry")

	f := bld.Fn
	sp := f.Target.SP

	cc, p := bld.Val("C"), bld.Val("P")
	a, b, q := bld.Val("A"), bld.Val("B"), bld.Val("Q")
	d, e, k, l, res := bld.Val("D"), bld.Val("E"), bld.Val("K"), bld.Val("L"), bld.Val("F")

	bld.SetBlock(entry)
	// SP is a dedicated register available at entry.
	in := bld.Input(cc, p)
	in.AddDef(ir.Operand{Val: sp})
	bld.Load(a, p)
	bld.AutoAdd(q, p, 1)
	bld.Load(b, q)
	bld.Store(sp, a) // spill A to the stack
	bld.Call("f", []ir.ValueID{d}, a, b)
	bld.Binary(ir.Add, e, cc, d)
	bld.Make(l, 0x00A1)
	bld.More(k, l, 0x2BFA)
	bld.Binary(ir.Sub, res, e, k)
	bld.Output(res)
	return bld.Fn
}

// All returns every structured test program, freshly built.
func All() []*ir.Func {
	return []*ir.Func{Diamond(), Loop(), NestedLoops(), SwapLoop(), LostCopy(), WithCallsAndStack()}
}
