package testprog

import (
	"math/rand"

	"outofssa/internal/ir"
)

// RandOptions controls the random structured program generator.
type RandOptions struct {
	// MaxDepth bounds the nesting of if/loop constructs.
	MaxDepth int
	// Vars is the number of mutable program variables.
	Vars int
	// StmtsPerBlock is the expected straight-line statement count.
	StmtsPerBlock int
	// Calls enables random calls (ABI pressure).
	Calls bool
	// Stack enables SP-relative stores/loads (dedicated-register pressure).
	Stack bool
}

// DefaultRandOptions are small enough for exhaustive interpretation but
// rich enough to produce multi-φ confluence points.
func DefaultRandOptions() RandOptions {
	return RandOptions{MaxDepth: 3, Vars: 6, StmtsPerBlock: 4, Calls: true, Stack: true}
}

// Rand generates a random structured (hence reducible, terminating)
// pre-SSA program from the seed. All loops are counted with small
// constant bounds, so interpretation always terminates.
func Rand(seed int64, opt RandOptions) *ir.Func {
	rng := rand.New(rand.NewSource(seed))
	g := &randGen{rng: rng, opt: opt, bld: ir.NewBuilder("rand")}
	return g.build()
}

type randGen struct {
	rng  *rand.Rand
	opt  RandOptions
	bld  *ir.Builder
	vars []ir.ValueID
	nval int
}

func (g *randGen) v() ir.ValueID { return g.vars[g.rng.Intn(len(g.vars))] }

func (g *randGen) temp() ir.ValueID {
	g.nval++
	return g.bld.Val("")
}

func (g *randGen) build() *ir.Func {
	entry := g.bld.Block("entry")
	g.bld.SetBlock(entry)
	for i := 0; i < g.opt.Vars; i++ {
		g.vars = append(g.vars, g.bld.Val(""))
	}
	nParams := 1 + g.rng.Intn(3)
	params := append([]ir.ValueID(nil), g.vars[:nParams]...)
	in := g.bld.Input(params...)
	if g.opt.Stack {
		in.AddDef(ir.Operand{Val: g.bld.Fn.Target.SP})
	}
	for _, v := range g.vars[nParams:] {
		g.bld.Const(v, int64(g.rng.Intn(16)))
	}
	g.region(g.opt.MaxDepth)
	// Return a deterministic combination of a few variables. Combining
	// every variable would keep the whole frame live until the end, which
	// no real program does and which distorts the interference structure.
	nOut := 3
	if nOut > len(g.vars) {
		nOut = len(g.vars)
	}
	acc := g.temp()
	g.bld.Const(acc, 0)
	for _, v := range g.vars[:nOut] {
		nacc := g.temp()
		g.bld.Binary(ir.Xor, nacc, acc, v)
		acc = nacc
	}
	g.bld.Output(acc)
	return g.bld.Fn
}

// region emits a sequence of statements/constructs into the current block
// and leaves the builder positioned in the block control falls out of.
func (g *randGen) region(depth int) {
	n := 1 + g.rng.Intn(g.opt.StmtsPerBlock)
	for i := 0; i < n; i++ {
		g.statement()
	}
	if depth == 0 {
		return
	}
	constructs := 1 + g.rng.Intn(2)
	for k := 0; k < constructs; k++ {
		switch g.rng.Intn(3) {
		case 0:
			g.ifElse(depth - 1)
		case 1:
			g.countedLoop(depth - 1)
		case 2:
			for i := 0; i < 2; i++ {
				g.statement()
			}
		}
	}
}

func (g *randGen) statement() {
	bld := g.bld
	switch g.rng.Intn(10) {
	case 0, 1, 2:
		ops := []ir.Op{ir.Add, ir.Sub, ir.Mul, ir.And, ir.Or, ir.Xor, ir.Min, ir.Max}
		bld.Binary(ops[g.rng.Intn(len(ops))], g.v(), g.v(), g.v())
	case 3:
		bld.Const(g.v(), int64(g.rng.Intn(64)))
	case 4:
		bld.Copy(g.v(), g.v())
	case 5:
		if g.opt.Calls {
			callees := []string{"f", "g", "h"}
			switch g.rng.Intn(3) {
			case 0:
				// Chained calls: the result feeds the next call directly —
				// the register-friendly flow real call-heavy code has
				// (result in R0 becomes the next argument in R0).
				t := g.temp()
				bld.Call(callees[g.rng.Intn(len(callees))], []ir.ValueID{t}, g.v())
				bld.Call(callees[g.rng.Intn(len(callees))], []ir.ValueID{g.v()}, t, g.v())
			case 1:
				// Plain call.
				nres := 1 + g.rng.Intn(2)
				res := []ir.ValueID{g.v()}
				if nres == 2 {
					res = append(res, g.v())
					if res[1] == res[0] {
						res[1] = g.temp()
					}
				}
				nargs := g.rng.Intn(4)
				args := make([]ir.ValueID, nargs)
				for i := range args {
					args[i] = g.v()
				}
				bld.Call(callees[g.rng.Intn(len(callees))], res, args...)
			default:
				// Pass-through: forward the leading variables in order
				// (parameter re-forwarding, cheap when pinned).
				n := 1 + g.rng.Intn(3)
				args := make([]ir.ValueID, n)
				for i := range args {
					args[i] = g.vars[i%len(g.vars)]
				}
				bld.Call(callees[g.rng.Intn(len(callees))], []ir.ValueID{g.v()}, args...)
			}
		} else {
			bld.Unary(ir.Neg, g.v(), g.v())
		}
	case 6:
		if g.opt.Stack {
			sp := bld.Fn.Target.SP
			off := g.temp()
			addr := g.temp()
			bld.Const(off, int64(8*g.rng.Intn(4)))
			bld.Binary(ir.Add, addr, sp, off)
			if g.rng.Intn(2) == 0 {
				bld.Store(addr, g.v())
			} else {
				bld.Load(g.v(), addr)
			}
		} else {
			bld.Unary(ir.Not, g.v(), g.v())
		}
	case 7:
		bld.Mac(g.v(), g.v(), g.v(), g.v())
	case 8:
		d := g.v()
		l := g.temp()
		bld.Make(l, int64(g.rng.Intn(256)))
		bld.More(d, l, int64(g.rng.Intn(1<<16)))
	default:
		bld.Select(g.v(), g.v(), g.v(), g.v())
	}
}

func (g *randGen) ifElse(depth int) {
	bld := g.bld
	f := bld.Fn
	cond := g.temp()
	one := g.temp()
	bld.Const(one, 1)
	bld.Binary(ir.And, cond, g.v(), one)

	then := f.NewBlock("")
	join := f.NewBlock("")
	if g.rng.Intn(2) == 0 {
		els := f.NewBlock("")
		bld.Br(cond, then, els)
		bld.SetBlock(then)
		g.region(depth)
		bld.Jump(join)
		bld.SetBlock(els)
		g.region(depth)
		bld.Jump(join)
	} else {
		bld.Br(cond, then, join)
		bld.SetBlock(then)
		g.region(depth)
		bld.Jump(join)
	}
	bld.SetBlock(join)
}

func (g *randGen) countedLoop(depth int) {
	bld := g.bld
	f := bld.Fn
	// Fresh counter ensures termination regardless of body effects.
	i, bound, c, one := g.temp(), g.temp(), g.temp(), g.temp()
	bld.Const(i, 0)
	bld.Const(bound, int64(1+g.rng.Intn(3)))
	bld.Const(one, 1)

	head := f.NewBlock("")
	body := f.NewBlock("")
	exit := f.NewBlock("")
	bld.Jump(head)

	bld.SetBlock(head)
	bld.Binary(ir.CmpLT, c, i, bound)
	bld.Br(c, body, exit)

	bld.SetBlock(body)
	g.region(depth)
	bld.Binary(ir.Add, i, i, one)
	bld.Jump(head)

	bld.SetBlock(exit)
}
