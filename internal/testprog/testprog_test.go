package testprog_test

import (
	"testing"

	"outofssa/internal/ir"
	"outofssa/internal/testprog"
)

func TestStructuredProgramsVerify(t *testing.T) {
	for _, f := range testprog.All() {
		if err := f.Verify(); err != nil {
			t.Errorf("%s: %v", f.Name, err)
		}
	}
}

// TestRandDeterminism: the same seed must rebuild a structurally and
// behaviourally identical program (the whole evaluation depends on it).
func TestRandDeterminism(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := testprog.Rand(seed, testprog.DefaultRandOptions())
		b := testprog.Rand(seed, testprog.DefaultRandOptions())
		if a.String() != b.String() {
			t.Fatalf("seed %d: rebuild differs", seed)
		}
		ra, err := ir.Exec(a, []int64{seed, 5, 2}, 500000)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := ir.Exec(b, []int64{seed, 5, 2}, 500000)
		if err != nil {
			t.Fatal(err)
		}
		if !ra.Equal(rb) {
			t.Fatalf("seed %d: behaviour differs", seed)
		}
	}
}

func TestRandDistinctSeeds(t *testing.T) {
	a := testprog.Rand(1, testprog.DefaultRandOptions())
	b := testprog.Rand(2, testprog.DefaultRandOptions())
	if a.String() == b.String() {
		t.Fatal("different seeds produced identical programs")
	}
}

// TestRandTermination: generated loops are counted with constant bounds,
// so every program halts quickly whatever the inputs.
func TestRandTermination(t *testing.T) {
	opts := testprog.RandOptions{MaxDepth: 5, Vars: 8, StmtsPerBlock: 6, Calls: true, Stack: true}
	for seed := int64(0); seed < 20; seed++ {
		f := testprog.Rand(seed, opts)
		if err := f.Verify(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, args := range [][]int64{{0, 0, 0}, {1 << 40, -5, 9}} {
			if _, err := ir.Exec(f, args, 2_000_000); err != nil {
				t.Fatalf("seed %d args %v: %v", seed, args, err)
			}
		}
	}
}

// TestRandOptionsRespected: disabling calls and stack traffic must keep
// those features out of the program.
func TestRandOptionsRespected(t *testing.T) {
	opts := testprog.RandOptions{MaxDepth: 3, Vars: 6, StmtsPerBlock: 5}
	for seed := int64(0); seed < 10; seed++ {
		f := testprog.Rand(seed, opts)
		for _, b := range f.Blocks() {
			for _, in := range b.Instrs() {
				if in.Op() == ir.Call {
					t.Fatalf("seed %d: call emitted with Calls disabled", seed)
				}
				for _, o := range append(append([]ir.Operand{}, in.Defs()...), in.Uses()...) {
					if o.Val == f.Target.SP {
						t.Fatalf("seed %d: SP used with Stack disabled", seed)
					}
				}
			}
		}
	}
}
