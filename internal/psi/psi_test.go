package psi_test

import (
	"testing"

	"outofssa/internal/ir"
	"outofssa/internal/pipeline"
	"outofssa/internal/psi"
	"outofssa/internal/ssa"
	"outofssa/internal/testprog"
	"outofssa/internal/workload"
)

func TestIfConvertDiamond(t *testing.T) {
	f := testprog.Diamond()
	ssa.Build(f)
	st := psi.IfConvert(f)
	if st.DiamondsConverted != 1 {
		t.Fatalf("converted %d diamonds, want 1", st.DiamondsConverted)
	}
	if err := ssa.Verify(f); err != nil {
		t.Fatalf("%v\n%s", err, f)
	}
	// Control flow must be straight-line now.
	for _, b := range f.Blocks() {
		if term := b.Terminator(); term != nil && term.Op() == ir.Br {
			t.Fatalf("branch survived if-conversion:\n%s", f)
		}
	}
	// Behaviour preserved, ψ executed directly by the interpreter.
	for _, c := range []struct{ a, b, want int64 }{{1, 5, 12}, {5, 1, 8}, {3, 3, 0}} {
		res, err := ir.Exec(f, []int64{c.a, c.b}, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outputs[0] != c.want {
			t.Fatalf("diamond(%d,%d) = %v, want %d", c.a, c.b, res.Outputs, c.want)
		}
	}
}

func TestIfConvertSkipsEffects(t *testing.T) {
	// A diamond whose arm stores must not be converted (the store would
	// execute unconditionally).
	bld := ir.NewBuilder("effects")
	entry := bld.Block("entry")
	l := bld.Fn.NewBlock("l")
	r := bld.Fn.NewBlock("r")
	join := bld.Fn.NewBlock("join")
	c, a, x1, x2, x3 := bld.Val("c"), bld.Val("a"), bld.Val("x1"), bld.Val("x2"), bld.Val("x3")
	bld.SetBlock(entry)
	bld.Input(c, a)
	bld.Br(c, l, r)
	bld.SetBlock(l)
	bld.Const(x1, 1)
	bld.Store(a, x1) // side effect
	bld.Jump(join)
	bld.SetBlock(r)
	bld.Const(x2, 2)
	bld.Jump(join)
	bld.SetBlock(join)
	bld.Phi(x3, x1, x2)
	bld.Output(x3)

	st := psi.IfConvert(bld.Fn)
	if st.DiamondsConverted != 0 {
		t.Fatal("converted a diamond with a store in its arm")
	}
}

func TestIfConvertTriangle(t *testing.T) {
	bld := ir.NewBuilder("tri")
	entry := bld.Block("entry")
	arm := bld.Fn.NewBlock("arm")
	join := bld.Fn.NewBlock("join")
	c, x0, x1, x2 := bld.Val("c"), bld.Val("x0"), bld.Val("x1"), bld.Val("x2")
	bld.SetBlock(entry)
	bld.Input(c, x0)
	bld.Br(c, arm, join)
	bld.SetBlock(arm)
	bld.Binary(ir.Add, x1, x0, x0)
	bld.Jump(join)
	bld.SetBlock(join)
	bld.Phi(x2, x0, x1) // preds: entry (x0), arm (x1)
	bld.Output(x2)
	if err := ssa.Verify(bld.Fn); err != nil {
		t.Fatal(err)
	}

	st := psi.IfConvert(bld.Fn)
	if st.TrianglesConverted != 1 {
		t.Fatalf("converted %d triangles, want 1\n%s", st.TrianglesConverted, bld.Fn)
	}
	if err := ssa.Verify(bld.Fn); err != nil {
		t.Fatalf("%v\n%s", err, bld.Fn)
	}
	for _, c := range []struct{ c, x, want int64 }{{1, 5, 10}, {0, 5, 5}} {
		res, err := ir.Exec(bld.Fn, []int64{c.c, c.x}, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outputs[0] != c.want {
			t.Fatalf("tri(%d,%d) = %v, want %d", c.c, c.x, res.Outputs, c.want)
		}
	}
}

func TestConvertPsiTies(t *testing.T) {
	f := testprog.Diamond()
	ssa.Build(f)
	psi.IfConvert(f)
	st := psi.ConvertPsi(f)
	if st.PsisLowered != 1 {
		t.Fatalf("lowered %d ψs, want 1", st.PsisLowered)
	}
	if st.TiesPinned == 0 {
		t.Fatal("no 2-operand-like ties pinned")
	}
	if err := ssa.Verify(f); err != nil {
		t.Fatalf("%v\n%s", err, f)
	}
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			if in.Op() == ir.Psi {
				t.Fatal("ψ survived lowering")
			}
		}
	}
	res, err := ir.Exec(f, []int64{1, 5}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] != 12 {
		t.Fatalf("got %v, want 12", res.Outputs)
	}
}

// TestPsiPipelinePreservesSemantics runs the full ψ pipeline over the
// structured and random corpora.
func TestPsiPipelinePreservesSemantics(t *testing.T) {
	mks := []func() *ir.Func{
		testprog.Diamond, testprog.Loop, testprog.NestedLoops,
		testprog.SwapLoop, testprog.LostCopy, testprog.WithCallsAndStack,
	}
	for seed := int64(0); seed < 25; seed++ {
		s := seed
		mks = append(mks, func() *ir.Func { return testprog.Rand(s, testprog.DefaultRandOptions()) })
	}
	for _, mk := range mks {
		ref := mk()
		for _, args := range [][]int64{{0, 0, 0}, {3, 8, 2}, {9, 1, 5}} {
			want, err := ir.Exec(ref, args, 500000)
			if err != nil {
				t.Fatal(err)
			}
			f := mk()
			if _, err := pipeline.Run(f, pipeline.Configs[pipeline.ExpPsi]); err != nil {
				t.Fatalf("%s: %v", ref.Name, err)
			}
			got, err := ir.Exec(f, args, 1000000)
			if err != nil {
				t.Fatalf("%s: %v", ref.Name, err)
			}
			if !want.Equal(got) {
				t.Fatalf("%s args=%v: ψ pipeline changed behaviour\n%s", ref.Name, args, f)
			}
		}
	}
}

// TestPsiOnKernels: the kernel suites are full of small diamonds
// (argmax, clip, VAD) — if-conversion must fire and the result must
// still agree with the reference.
func TestPsiOnKernels(t *testing.T) {
	converted := 0
	n := len(workload.VALcc1().Funcs)
	for i := 0; i < n; i++ {
		ref := workload.VALcc1().Funcs[i]
		args := []int64{100, 200, 8, 3}
		want, err := ir.Exec(ref, args, 300000)
		if err != nil {
			t.Fatal(err)
		}
		f := workload.VALcc1().Funcs[i]
		r, err := pipeline.Run(f, pipeline.Configs[pipeline.ExpPsi])
		if err != nil {
			t.Fatalf("%s: %v", ref.Name, err)
		}
		if r.Psi != nil {
			converted += r.Psi.DiamondsConverted + r.Psi.TrianglesConverted
		}
		got, err := ir.Exec(f, args, 600000)
		if err != nil {
			t.Fatalf("%s: %v", ref.Name, err)
		}
		if !want.Equal(got) {
			t.Fatalf("%s: ψ pipeline changed behaviour", ref.Name)
		}
	}
	if converted < 5 {
		t.Fatalf("only %d regions if-converted across the kernel suite", converted)
	}
}
