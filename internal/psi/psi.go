// Package psi implements the ψ-SSA support the paper's toolchain uses
// for predicated code (§5, after Stoutchinin and de Ferrière, "Efficient
// static single assignment form for predication", MICRO 2001):
//
//   - IfConvert turns small branch diamonds/triangles into straight-line
//     predicated code, merging values with ψ instructions instead of φs;
//   - ConvertPsi rewrites each ψ into a chain of predicated selects whose
//     running operand is tied to the destination — "ψ instructions
//     introduce constraints similar to 2-operands constraints, and are
//     handled in our algorithm in a special pass where they are converted
//     into a 'ψ-conventional' SSA form" (paper §5).
//
// After ConvertPsi the function is ordinary pinned SSA; the pinning-based
// coalescer then merges each chain into a single resource whenever no
// interference forbids it, exactly as it does for 2-operand ties.
package psi

import (
	"outofssa/internal/cfg"
	"outofssa/internal/ir"
)

// Stats describes what the passes did.
type Stats struct {
	// DiamondsConverted counts if-converted two-arm regions,
	// TrianglesConverted one-arm regions.
	DiamondsConverted  int
	TrianglesConverted int
	// InstrsSpeculated is the number of instructions hoisted into the
	// predecessor (executed under both predicates).
	InstrsSpeculated int
	// PsisLowered counts ψ instructions rewritten to select chains;
	// TiesPinned the 2-operand-like pins applied.
	PsisLowered int
	TiesPinned  int
}

// MaxArmInstrs bounds the size of an arm eligible for if-conversion.
const MaxArmInstrs = 6

// IfConvert performs if-conversion on SSA form f: branch diamonds and
// triangles whose arms are short and side-effect free become predicated
// straight-line code, with ψ instructions merging the values. Runs to a
// fixed point (inner regions collapse first, enabling outer ones).
func IfConvert(f *ir.Func) *Stats {
	st := &Stats{}
	converted := false
	for {
		if !ifConvertOne(f, st) {
			break
		}
		converted = true
	}
	if converted {
		f.NoteMutation() // φs rewritten into ψs in place
	}
	return st
}

// speculable reports whether an instruction may be executed under a
// false predicate (pure, no memory or control effects).
func speculable(in *ir.Instr) bool {
	switch in.Op {
	case ir.Copy, ir.Const, ir.Make, ir.Add, ir.Sub, ir.Mul,
		ir.And, ir.Or, ir.Xor, ir.Shl, ir.Shr, ir.Neg, ir.Not,
		ir.CmpEQ, ir.CmpNE, ir.CmpLT, ir.CmpLE, ir.CmpGT, ir.CmpGE,
		ir.Min, ir.Max, ir.Select, ir.Psi:
		return true
	}
	// Div/Rem excluded: a speculated division changes trap behaviour on
	// real hardware (the interpreter is total, but the substitution aims
	// to preserve the realistic constraint).
	return false
}

// armOK checks that blk is a single-pred arm of head consisting only of
// speculable instructions plus a trailing jump to join.
func armOK(head, blk, join *ir.Block) bool {
	if len(blk.Preds) != 1 || blk.Preds[0] != head {
		return false
	}
	if len(blk.Succs) != 1 || blk.Succs[0] != join {
		return false
	}
	if len(blk.Instrs) > MaxArmInstrs+1 {
		return false
	}
	for _, in := range blk.Instrs {
		if in.Op == ir.Jump {
			continue
		}
		if !speculable(in) {
			return false
		}
	}
	return true
}

func ifConvertOne(f *ir.Func, st *Stats) bool {
	for _, head := range f.Blocks {
		term := head.Terminator()
		if term == nil || term.Op != ir.Br {
			continue
		}
		taken, fall := head.Succs[0], head.Succs[1]
		cond := term.Use(0)

		// Diamond: head -> taken/fall -> join.
		if taken != fall && len(taken.Succs) == 1 && len(fall.Succs) == 1 &&
			taken.Succs[0] == fall.Succs[0] {
			join := taken.Succs[0]
			if join != head && len(join.Preds) == 2 &&
				armOK(head, taken, join) && armOK(head, fall, join) {
				convertDiamond(f, head, taken, fall, join, cond, st)
				return true
			}
		}

		// Triangle: head -> arm -> join, head -> join.
		for _, arm := range []struct {
			arm, join *ir.Block
			negate    bool
		}{{taken, fall, false}, {fall, taken, true}} {
			a, join := arm.arm, arm.join
			if a == join || join == head {
				continue
			}
			if len(a.Succs) == 1 && a.Succs[0] == join && len(join.Preds) == 2 &&
				join.PredIndex(head) >= 0 && armOK(head, a, join) {
				convertTriangle(f, head, a, join, cond, arm.negate, st)
				return true
			}
		}
	}
	return false
}

// hoist moves every non-terminator instruction of arm to the end of
// head (before its terminator).
func hoist(head, arm *ir.Block, st *Stats) {
	for _, in := range arm.Instrs {
		if in.Op == ir.Jump {
			continue
		}
		arm2 := in // reattach
		head.InsertBeforeTerminator(arm2)
		st.InstrsSpeculated++
	}
	arm.Instrs = nil
	arm.Append(&ir.Instr{Op: ir.Jump})
}

// replacePhisWithPsis rewrites the φs of join (which currently merge
// predIdxA/predIdxB) into ψ instructions predicated on cond.
func replacePhisWithPsis(f *ir.Func, join *ir.Block, idxIfTrue, idxIfFalse int, cond *ir.Value) {
	one := f.NewValue("")
	needOne := false
	phis := append([]*ir.Instr(nil), join.Phis()...)
	for _, phi := range phis {
		vTrue := phi.Uses[idxIfTrue].Val
		vFalse := phi.Uses[idxIfFalse].Val
		// ψ semantics: the last pair whose predicate holds wins. The
		// unconditional (false-path) value goes first under predicate 1.
		phi.Op = ir.Psi
		phi.Uses = []ir.Operand{
			{Val: one}, {Val: vFalse},
			{Val: cond}, {Val: vTrue},
		}
		needOne = true
	}
	if needOne {
		join.InsertAt(0, &ir.Instr{Op: ir.Const, Imm: 1,
			Defs: []ir.Operand{{Val: one}}})
	}
}

func convertDiamond(f *ir.Func, head, taken, fall, join *ir.Block, cond *ir.Value, st *Stats) {
	st.DiamondsConverted++
	hoist(head, taken, st)
	hoist(head, fall, st)
	idxT := join.PredIndex(taken)
	idxF := join.PredIndex(fall)
	replacePhisWithPsis(f, join, idxT, idxF, cond)

	// Rewire: head jumps straight to join; the arms become unreachable.
	rewireStraight(f, head, join, idxT, idxF)
	cfg.RemoveUnreachable(f)
}

func convertTriangle(f *ir.Func, head, arm, join *ir.Block, cond *ir.Value, negate bool, st *Stats) {
	st.TrianglesConverted++
	hoist(head, arm, st)
	idxArm := join.PredIndex(arm)
	idxHead := join.PredIndex(head)
	if negate {
		// Arm runs when cond is false: ψ pairs become (1, armVal),
		// (cond, headVal) — i.e. the head value wins when cond holds.
		replacePhisWithPsis(f, join, idxHead, idxArm, cond)
	} else {
		replacePhisWithPsis(f, join, idxArm, idxHead, cond)
	}
	rewireStraight(f, head, join, idxArm, idxHead)
	cfg.RemoveUnreachable(f)
}

// rewireStraight replaces head's terminator with a jump to join and
// collapses join's two predecessor slots (idxA kept as the slot for
// head; the ψs no longer use per-edge arguments).
func rewireStraight(f *ir.Func, head, join *ir.Block, idxA, idxB int) {
	head.RemoveAt(len(head.Instrs) - 1) // the Br
	head.Succs = nil
	head.Append(&ir.Instr{Op: ir.Jump})

	// Remove both old pred slots of join, then connect head -> join.
	hi, lo := idxA, idxB
	if hi < lo {
		hi, lo = lo, hi
	}
	join.Preds = append(join.Preds[:hi], join.Preds[hi+1:]...)
	join.Preds = append(join.Preds[:lo], join.Preds[lo+1:]...)
	f.AddEdge(head, join)
}

// ConvertPsi rewrites every ψ into ψ-conventional form: a chain of
// predicated selects where each step's running value is tied to the
// step's destination (the 2-operand-like renaming constraint), ending in
// the ψ's original destination.
func ConvertPsi(f *ir.Func) *Stats {
	st := &Stats{}
	for _, b := range f.Blocks {
		for idx := 0; idx < len(b.Instrs); idx++ {
			in := b.Instrs[idx]
			if in.Op != ir.Psi {
				continue
			}
			st.PsisLowered++
			d := in.Def(0)
			pairs := in.Uses
			// Seed: zero, like the interpreter's ψ default.
			zero := f.NewValue("")
			b.InsertAt(idx, &ir.Instr{Op: ir.Const, Imm: 0,
				Defs: []ir.Operand{{Val: zero}}})
			idx++
			cur := zero
			for p := 0; p+1 < len(pairs); p += 2 {
				last := p+3 >= len(pairs)
				var dst *ir.Value
				if last {
					dst = d
				} else {
					dst = f.NewValue(d.Name + ".psi")
				}
				sel := &ir.Instr{Op: ir.Select,
					Defs: []ir.Operand{{Val: dst}},
					Uses: []ir.Operand{pairs[p], pairs[p+1], {Val: cur}},
				}
				// The running operand is tied to the destination: a
				// predicated machine move modifies its target in place.
				if cur != zero {
					ir.PinUse(sel, 2, dst)
					st.TiesPinned++
				}
				b.InsertAt(idx, sel)
				idx++
				cur = dst
			}
			// Drop the ψ itself.
			b.RemoveAt(idx)
			idx--
		}
	}
	if st.PsisLowered > 0 {
		f.NoteMutation() // ψs expanded into select chains
	}
	return st
}
