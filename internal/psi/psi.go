// Package psi implements the ψ-SSA support the paper's toolchain uses
// for predicated code (§5, after Stoutchinin and de Ferrière, "Efficient
// static single assignment form for predication", MICRO 2001):
//
//   - IfConvert turns small branch diamonds/triangles into straight-line
//     predicated code, merging values with ψ instructions instead of φs;
//   - ConvertPsi rewrites each ψ into a chain of predicated selects whose
//     running operand is tied to the destination — "ψ instructions
//     introduce constraints similar to 2-operands constraints, and are
//     handled in our algorithm in a special pass where they are converted
//     into a 'ψ-conventional' SSA form" (paper §5).
//
// After ConvertPsi the function is ordinary pinned SSA; the pinning-based
// coalescer then merges each chain into a single resource whenever no
// interference forbids it, exactly as it does for 2-operand ties.
package psi

import (
	"outofssa/internal/cfg"
	"outofssa/internal/ir"
)

// Stats describes what the passes did.
type Stats struct {
	// DiamondsConverted counts if-converted two-arm regions,
	// TrianglesConverted one-arm regions.
	DiamondsConverted  int
	TrianglesConverted int
	// InstrsSpeculated is the number of instructions hoisted into the
	// predecessor (executed under both predicates).
	InstrsSpeculated int
	// PsisLowered counts ψ instructions rewritten to select chains;
	// TiesPinned the 2-operand-like pins applied.
	PsisLowered int
	TiesPinned  int
}

// MaxArmInstrs bounds the size of an arm eligible for if-conversion.
const MaxArmInstrs = 6

// IfConvert performs if-conversion on SSA form f: branch diamonds and
// triangles whose arms are short and side-effect free become predicated
// straight-line code, with ψ instructions merging the values. Runs to a
// fixed point (inner regions collapse first, enabling outer ones).
func IfConvert(f *ir.Func) *Stats {
	st := &Stats{}
	for ifConvertOne(f, st) {
	}
	return st
}

// speculable reports whether an instruction may be executed under a
// false predicate (pure, no memory or control effects).
func speculable(in *ir.Instr) bool {
	switch in.Op() {
	case ir.Copy, ir.Const, ir.Make, ir.Add, ir.Sub, ir.Mul,
		ir.And, ir.Or, ir.Xor, ir.Shl, ir.Shr, ir.Neg, ir.Not,
		ir.CmpEQ, ir.CmpNE, ir.CmpLT, ir.CmpLE, ir.CmpGT, ir.CmpGE,
		ir.Min, ir.Max, ir.Select, ir.Psi:
		return true
	}
	// Div/Rem excluded: a speculated division changes trap behaviour on
	// real hardware (the interpreter is total, but the substitution aims
	// to preserve the realistic constraint).
	return false
}

// armOK checks that blk is a single-pred arm of head consisting only of
// speculable instructions plus a trailing jump to join.
func armOK(head, blk, join *ir.Block) bool {
	if blk.NumPreds() != 1 || blk.Pred(0) != head {
		return false
	}
	if blk.NumSuccs() != 1 || blk.Succ(0) != join {
		return false
	}
	if blk.NumInstrs() > MaxArmInstrs+1 {
		return false
	}
	for _, in := range blk.Instrs() {
		if in.Op() == ir.Jump {
			continue
		}
		if !speculable(in) {
			return false
		}
	}
	return true
}

func ifConvertOne(f *ir.Func, st *Stats) bool {
	for _, head := range f.Blocks() {
		term := head.Terminator()
		if term == nil || term.Op() != ir.Br {
			continue
		}
		taken, fall := head.Succ(0), head.Succ(1)
		cond := term.Use(0)

		// Diamond: head -> taken/fall -> join.
		if taken != fall && taken.NumSuccs() == 1 && fall.NumSuccs() == 1 &&
			taken.Succs()[0] == fall.Succs()[0] {
			join := taken.Succ(0)
			if join != head && join.NumPreds() == 2 &&
				armOK(head, taken, join) && armOK(head, fall, join) {
				convertDiamond(f, head, taken, fall, join, cond, st)
				return true
			}
		}

		// Triangle: head -> arm -> join, head -> join.
		for _, arm := range []struct {
			arm, join *ir.Block
			negate    bool
		}{{taken, fall, false}, {fall, taken, true}} {
			a, join := arm.arm, arm.join
			if a == join || join == head {
				continue
			}
			if a.NumSuccs() == 1 && a.Succ(0) == join && join.NumPreds() == 2 &&
				join.PredIndex(head.ID) >= 0 && armOK(head, a, join) {
				convertTriangle(f, head, a, join, cond, arm.negate, st)
				return true
			}
		}
	}
	return false
}

// hoist moves every non-terminator instruction of arm to the end of
// head (before its terminator).
func hoist(head, arm *ir.Block, st *Stats) {
	moved := append([]ir.InstrID(nil), arm.InstrIDs()...)
	arm.Truncate(0)
	f := arm.Func()
	for _, id := range moved {
		in := f.Instr(id)
		if in.Op() == ir.Jump {
			continue
		}
		head.InsertBeforeTerminator(in)
		st.InstrsSpeculated++
	}
	arm.Append(f.NewInstr(ir.Jump, nil, nil))
}

// replacePhisWithPsis rewrites the φs of join (which currently merge
// predIdxA/predIdxB) into ψ instructions predicated on cond.
func replacePhisWithPsis(f *ir.Func, join *ir.Block, idxIfTrue, idxIfFalse int, cond ir.ValueID) {
	one := f.NewValue("")
	needOne := false
	var phis []*ir.Instr
	for _, phi := range join.Phis() {
		phis = append(phis, phi)
	}
	for _, phi := range phis {
		vTrue := phi.Use(idxIfTrue)
		vFalse := phi.Use(idxIfFalse)
		// ψ semantics: the last pair whose predicate holds wins. The
		// unconditional (false-path) value goes first under predicate 1.
		phi.SetOp(ir.Psi)
		phi.SetOperands(
			[]ir.Operand{{Val: phi.Def(0)}},
			[]ir.Operand{
				{Val: one}, {Val: vFalse},
				{Val: cond}, {Val: vTrue},
			})
		needOne = true
	}
	if needOne {
		c := f.NewInstr(ir.Const, []ir.Operand{{Val: one}}, nil)
		c.Imm = 1
		join.InsertAt(0, c)
	}
}

func convertDiamond(f *ir.Func, head, taken, fall, join *ir.Block, cond ir.ValueID, st *Stats) {
	st.DiamondsConverted++
	hoist(head, taken, st)
	hoist(head, fall, st)
	idxT := join.PredIndex(taken.ID)
	idxF := join.PredIndex(fall.ID)
	replacePhisWithPsis(f, join, idxT, idxF, cond)

	// Rewire: head jumps straight to join; the arms become unreachable.
	rewireStraight(f, head, join, idxT, idxF)
	cfg.RemoveUnreachable(f)
}

func convertTriangle(f *ir.Func, head, arm, join *ir.Block, cond ir.ValueID, negate bool, st *Stats) {
	st.TrianglesConverted++
	hoist(head, arm, st)
	idxArm := join.PredIndex(arm.ID)
	idxHead := join.PredIndex(head.ID)
	if negate {
		// Arm runs when cond is false: ψ pairs become (1, armVal),
		// (cond, headVal) — i.e. the head value wins when cond holds.
		replacePhisWithPsis(f, join, idxHead, idxArm, cond)
	} else {
		replacePhisWithPsis(f, join, idxArm, idxHead, cond)
	}
	rewireStraight(f, head, join, idxArm, idxHead)
	cfg.RemoveUnreachable(f)
}

// rewireStraight replaces head's terminator with a jump to join and
// collapses join's two predecessor slots (idxA kept as the slot for
// head; the ψs no longer use per-edge arguments).
func rewireStraight(f *ir.Func, head, join *ir.Block, idxA, idxB int) {
	head.RemoveAt(head.NumInstrs() - 1) // the Br
	head.SetSuccs(nil)
	head.Append(f.NewInstr(ir.Jump, nil, nil))

	// Remove both old pred slots of join, then connect head -> join.
	hi, lo := idxA, idxB
	if hi < lo {
		hi, lo = lo, hi
	}
	join.RemovePredAt(hi)
	join.RemovePredAt(lo)
	f.AddEdge(head, join)
}

// ConvertPsi rewrites every ψ into ψ-conventional form: a chain of
// predicated selects where each step's running value is tied to the
// step's destination (the 2-operand-like renaming constraint), ending in
// the ψ's original destination.
func ConvertPsi(f *ir.Func) *Stats {
	st := &Stats{}
	for _, b := range f.Blocks() {
		for idx := 0; idx < b.NumInstrs(); idx++ {
			in := b.Instr(idx)
			if in.Op() != ir.Psi {
				continue
			}
			st.PsisLowered++
			d := in.Def(0)
			pairs := append([]ir.Operand(nil), in.Uses()...)
			// Seed: zero, like the interpreter's ψ default.
			zero := f.NewValue("")
			b.InsertAt(idx, f.NewInstr(ir.Const, []ir.Operand{{Val: zero}}, nil))
			idx++
			cur := zero
			for p := 0; p+1 < len(pairs); p += 2 {
				last := p+3 >= len(pairs)
				var dst ir.ValueID
				if last {
					dst = d
				} else {
					dst = f.NewValue(f.ValueName(d) + ".psi")
				}
				sel := f.NewInstr(ir.Select,
					[]ir.Operand{{Val: dst}},
					[]ir.Operand{pairs[p], pairs[p+1], {Val: cur}})
				// The running operand is tied to the destination: a
				// predicated machine move modifies its target in place.
				if cur != zero {
					sel.SetUsePin(2, dst)
					st.TiesPinned++
				}
				b.InsertAt(idx, sel)
				idx++
				cur = dst
			}
			// Drop the ψ itself.
			b.RemoveAt(idx)
			idx--
		}
	}
	return st
}
