// Package analysis memoizes per-function dataflow analyses, keyed on
// the function's mutation generation counter (ir.Func.Generation).
//
// Passes request an analysis — analysis.Liveness(f) instead of
// liveness.Compute(f) — and get the memoized result back as long as the
// function has not changed since it was computed. Every mutator in
// package ir bumps the generation inside the arena accessors — operand
// rewrites included, since SetDefVal/SetUseVal are the only way to
// write an operand (the contract is spelled out in DESIGN.md §8 and
// §12). Changes no cached analysis reads — pins, loop depths — do not
// bump, which is what lets one liveness computation survive a whole
// string of pin-collect phases.
//
// The memo lives on the function itself (ir.Func.AnalysisLoad/Init), so
// it has exactly the function's lifetime: no global map, nothing to
// evict, and cloned functions start cold. The memo is safe for
// concurrent readers: entries are immutable once built and published
// via atomic pointer swaps keyed on the generation they were computed
// at, so a snapshot fanned out read-only across workers serves cache
// hits lock-free; a per-slot mutex single-flights the compute on a
// miss. Concurrent use requires the function itself to be read-only
// while shared (the batch driver's ownership rule); functions marked
// ir.Func.MarkSharedRead additionally get frozen (precompute-complete)
// liveness engines, since the lazy query engine self-fills on reads.
//
// Liveness and dominators are cached today; further analyses (def-use
// chains, dominance frontiers) slot in by adding a field to memo and an
// accessor in the same shape.
package analysis

import (
	"sync"
	"sync/atomic"

	"outofssa/internal/cfg"
	"outofssa/internal/ir"
	"outofssa/internal/liveness"
	"outofssa/internal/obs/metrics"
)

// memo is the per-function cache stored in the function's analysis
// slot. Each slot publishes immutable entries through an atomic
// pointer — the lock-free hit path — and owns a mutex that
// single-flights the compute on a miss. The mutexes are separate
// because a liveness build calls Dominators while holding liveMu; a
// single memo-wide lock would self-deadlock there.
type memo struct {
	live   atomic.Pointer[liveEntry]
	liveMu sync.Mutex

	dom   atomic.Pointer[domEntry]
	domMu sync.Mutex
}

// liveEntry is one published liveness result: the Info plus the
// generation pair and engine it was computed under. Entries are
// immutable after publication; revalidation publishes a fresh entry.
type liveEntry struct {
	gen    uint64
	cfgGen uint64
	engine liveness.Engine
	info   *liveness.Info
}

type domEntry struct {
	cfgGen uint64
	tree   *cfg.DomTree
}

func memoOf(f *ir.Func) *memo {
	if m, ok := f.AnalysisLoad().(*memo); ok {
		return m
	}
	return f.AnalysisInit(&memo{}).(*memo)
}

// CacheStats counts cache traffic since the last ResetStats, across all
// functions and goroutines. Requests = Computes + Reused; Reused is the
// number of recomputations the cache avoided.
type CacheStats struct {
	LivenessRequests uint64
	LivenessComputes uint64
	LivenessReused   uint64

	// A liveness compute is either a full build (iterative fixed point,
	// or a from-scratch query-engine construction) or an incremental
	// revalidation of a query-engine Info after a code-only mutation:
	// LivenessComputes = LivenessFullBuilds + LivenessRevalidations.
	// VarsKept/VarsInvalidated split the per-variable memos across all
	// revalidations: kept walks cost nothing to reuse, invalidated ones
	// are recomputed lazily on their next query.
	LivenessFullBuilds      uint64
	LivenessRevalidations   uint64
	LivenessVarsKept        uint64
	LivenessVarsInvalidated uint64

	DominatorsRequests uint64
	DominatorsComputes uint64
	DominatorsReused   uint64
}

// The cache counters live on the process-wide metrics registry
// (metrics.Default) under the laoc_analysis_* names — the typed-
// registry migration of what used to be package-private atomics. The
// handles are resolved once at init; updates stay single atomic adds,
// and the counters appear in every metrics snapshot/exposition for
// free. CacheStats/Stats/ResetStats remain the stable programmatic
// API.
var (
	cLiveRequests  = metrics.Default.Counter("laoc_analysis_liveness_requests_total")
	cLiveComputes  = metrics.Default.Counter("laoc_analysis_liveness_computes_total")
	cLiveReused    = metrics.Default.Counter("laoc_analysis_liveness_reused_total")
	cLiveFull      = metrics.Default.Counter("laoc_analysis_liveness_full_builds_total")
	cLiveReval     = metrics.Default.Counter("laoc_analysis_liveness_revalidations_total")
	cLiveVarsKept  = metrics.Default.Counter("laoc_analysis_liveness_var_walks_kept_total")
	cLiveVarsInval = metrics.Default.Counter("laoc_analysis_liveness_var_walks_invalidated_total")
	cDomRequests   = metrics.Default.Counter("laoc_analysis_dominators_requests_total")
	cDomComputes   = metrics.Default.Counter("laoc_analysis_dominators_computes_total")
	cDomReused     = metrics.Default.Counter("laoc_analysis_dominators_reused_total")
)

func init() {
	metrics.Default.SetHelp("laoc_analysis_liveness_requests_total", "Liveness analysis requests (computes + reuses).")
	metrics.Default.SetHelp("laoc_analysis_liveness_computes_total", "Liveness computes: full builds + incremental revalidations.")
	metrics.Default.SetHelp("laoc_analysis_liveness_reused_total", "Liveness requests served from the per-function memo.")
	metrics.Default.SetHelp("laoc_analysis_liveness_full_builds_total", "Liveness Infos built from scratch.")
	metrics.Default.SetHelp("laoc_analysis_liveness_revalidations_total", "Query-engine Infos revalidated incrementally after code-only mutations.")
	metrics.Default.SetHelp("laoc_analysis_liveness_var_walks_kept_total", "Memoized per-variable walks kept across revalidations.")
	metrics.Default.SetHelp("laoc_analysis_liveness_var_walks_invalidated_total", "Memoized per-variable walks dropped by revalidations.")
	metrics.Default.SetHelp("laoc_analysis_dominators_requests_total", "Dominator tree requests.")
	metrics.Default.SetHelp("laoc_analysis_dominators_computes_total", "Dominator trees computed.")
	metrics.Default.SetHelp("laoc_analysis_dominators_reused_total", "Dominator requests served from the per-function memo.")
}

// Stats returns a snapshot of the package-wide cache counters.
func Stats() CacheStats {
	return CacheStats{
		LivenessRequests:        uint64(cLiveRequests.Value()),
		LivenessComputes:        uint64(cLiveComputes.Value()),
		LivenessReused:          uint64(cLiveReused.Value()),
		LivenessFullBuilds:      uint64(cLiveFull.Value()),
		LivenessRevalidations:   uint64(cLiveReval.Value()),
		LivenessVarsKept:        uint64(cLiveVarsKept.Value()),
		LivenessVarsInvalidated: uint64(cLiveVarsInval.Value()),
		DominatorsRequests:      uint64(cDomRequests.Value()),
		DominatorsComputes:      uint64(cDomComputes.Value()),
		DominatorsReused:        uint64(cDomReused.Value()),
	}
}

// ResetStats zeroes the package-wide cache counters.
func ResetStats() {
	for _, c := range []*metrics.Counter{
		cLiveRequests, cLiveComputes, cLiveReused, cLiveFull, cLiveReval,
		cLiveVarsKept, cLiveVarsInval, cDomRequests, cDomComputes, cDomReused,
	} {
		c.Reset()
	}
}

// Liveness returns the live-variable analysis of f, recomputing it only
// if f changed since the last request. The returned Info is shared:
// callers must treat it as read-only, and it describes f as of this
// call — a later mutation of f makes it stale without invalidating the
// pointer (exactly like calling liveness.Compute directly).
func Liveness(f *ir.Func) *liveness.Info {
	m := memoOf(f)
	gen := f.Generation()
	eng := liveness.DefaultEngine
	cLiveRequests.Inc()
	if e := m.live.Load(); e != nil && e.gen == gen && e.engine == eng {
		cLiveReused.Inc()
		return e.info
	}
	m.liveMu.Lock()
	defer m.liveMu.Unlock()
	// Double-check under the single-flight lock: a racing reader may have
	// computed and published the entry while we waited.
	if e := m.live.Load(); e != nil && e.gen == gen && e.engine == eng {
		cLiveReused.Inc()
		return e.info
	}
	cLiveComputes.Inc()
	ne := &liveEntry{gen: gen, engine: eng}
	if eng == liveness.EngineQuery {
		ne.cfgGen = f.CFGGeneration()
		if e := m.live.Load(); e != nil && e.engine == eng && e.cfgGen == ne.cfgGen && e.info.Incremental() {
			// Code-only mutation under an unchanged CFG: revalidate the
			// per-variable summaries and keep every walk whose summary is
			// unchanged instead of rebuilding the whole engine. Only an
			// exclusive owner can get here (a mutation happened), so
			// recycling the old entry's storage is safe.
			live, kept, dropped := e.info.Revalidate()
			ne.info = live
			cLiveReval.Inc()
			cLiveVarsKept.Add(int64(kept))
			cLiveVarsInval.Add(int64(dropped))
		} else {
			ne.info = liveness.NewQuery(f, Dominators(f))
			cLiveFull.Inc()
		}
	} else {
		ne.info = liveness.Compute(f)
		cLiveFull.Inc()
	}
	if f.SharedRead() {
		// The function is fanned out read-only across goroutines: the
		// lazy query engine self-fills on reads, so precompute everything
		// and publish a frozen, purely-read-only Info.
		ne.info.Freeze()
	}
	m.live.Store(ne)
	return ne.info
}

// Dominators returns the dominator tree of f under the same memoization
// and sharing contract as Liveness, except that it is keyed on the CFG
// generation: dominators depend only on the block graph, so instruction
// and operand edits (which bump only the code generation) leave a cached
// tree valid. This is what lifts the dominator reuse rate past the
// liveness one — most passes rewrite code, few reshape the CFG.
func Dominators(f *ir.Func) *cfg.DomTree {
	m := memoOf(f)
	gen := f.CFGGeneration()
	cDomRequests.Inc()
	if e := m.dom.Load(); e != nil && e.cfgGen == gen {
		cDomReused.Inc()
		return e.tree
	}
	m.domMu.Lock()
	defer m.domMu.Unlock()
	if e := m.dom.Load(); e != nil && e.cfgGen == gen {
		cDomReused.Inc()
		return e.tree
	}
	cDomComputes.Inc()
	// DomTree is immutable after construction (pure array reads), so it
	// needs no freezing to be shared.
	e := &domEntry{cfgGen: gen, tree: cfg.Dominators(f)}
	m.dom.Store(e)
	return e.tree
}

// Invalidate drops every memoized analysis of f. Normal code never
// needs it — mutators bump the generation instead — but tests use it to
// establish a cold cache.
func Invalidate(f *ir.Func) {
	f.AnalysisClear()
}
