// Package analysis memoizes per-function dataflow analyses, keyed on
// the function's mutation generation counter (ir.Func.Generation).
//
// Passes request an analysis — analysis.Liveness(f) instead of
// liveness.Compute(f) — and get the memoized result back as long as the
// function has not changed since it was computed. Every mutator in
// package ir bumps the generation inside the arena accessors — operand
// rewrites included, since SetDefVal/SetUseVal are the only way to
// write an operand (the contract is spelled out in DESIGN.md §8 and
// §12). Changes no cached analysis reads — pins, loop depths — do not
// bump, which is what lets one liveness computation survive a whole
// string of pin-collect phases.
//
// The memo lives on the function itself (ir.Func.AnalysisSlot), so it
// has exactly the function's lifetime: no global map, nothing to evict,
// and cloned functions start cold. A function is owned by one goroutine
// at a time (the batch driver clones per worker), so the per-function
// memo is deliberately unsynchronized; the package-wide Stats counters
// are atomic and therefore race-free across workers.
//
// Liveness and dominators are cached today; further analyses (def-use
// chains, dominance frontiers) slot in by adding a field to memo and an
// accessor in the same shape.
package analysis

import (
	"outofssa/internal/cfg"
	"outofssa/internal/ir"
	"outofssa/internal/liveness"
	"outofssa/internal/obs/metrics"
)

// memo is the per-function cache stored in the function's AnalysisSlot.
// Each entry records the generation it was computed at; it is served
// only while the function's generation still matches.
type memo struct {
	liveGen uint64
	live    *liveness.Info
	// liveCFGGen and liveEngine qualify a stale `live` entry for
	// incremental revalidation: a query-engine Info whose CFG generation
	// still matches can absorb a code-only mutation by re-scanning its
	// per-variable summaries instead of being rebuilt from scratch.
	liveCFGGen uint64
	liveEngine liveness.Engine

	domGen uint64
	dom    *cfg.DomTree
}

func memoOf(f *ir.Func) *memo {
	slot := f.AnalysisSlot()
	if m, ok := (*slot).(*memo); ok {
		return m
	}
	m := &memo{}
	*slot = m
	return m
}

// CacheStats counts cache traffic since the last ResetStats, across all
// functions and goroutines. Requests = Computes + Reused; Reused is the
// number of recomputations the cache avoided.
type CacheStats struct {
	LivenessRequests uint64
	LivenessComputes uint64
	LivenessReused   uint64

	// A liveness compute is either a full build (iterative fixed point,
	// or a from-scratch query-engine construction) or an incremental
	// revalidation of a query-engine Info after a code-only mutation:
	// LivenessComputes = LivenessFullBuilds + LivenessRevalidations.
	// VarsKept/VarsInvalidated split the per-variable memos across all
	// revalidations: kept walks cost nothing to reuse, invalidated ones
	// are recomputed lazily on their next query.
	LivenessFullBuilds      uint64
	LivenessRevalidations   uint64
	LivenessVarsKept        uint64
	LivenessVarsInvalidated uint64

	DominatorsRequests uint64
	DominatorsComputes uint64
	DominatorsReused   uint64
}

// The cache counters live on the process-wide metrics registry
// (metrics.Default) under the laoc_analysis_* names — the typed-
// registry migration of what used to be package-private atomics. The
// handles are resolved once at init; updates stay single atomic adds,
// and the counters appear in every metrics snapshot/exposition for
// free. CacheStats/Stats/ResetStats remain the stable programmatic
// API.
var (
	cLiveRequests  = metrics.Default.Counter("laoc_analysis_liveness_requests_total")
	cLiveComputes  = metrics.Default.Counter("laoc_analysis_liveness_computes_total")
	cLiveReused    = metrics.Default.Counter("laoc_analysis_liveness_reused_total")
	cLiveFull      = metrics.Default.Counter("laoc_analysis_liveness_full_builds_total")
	cLiveReval     = metrics.Default.Counter("laoc_analysis_liveness_revalidations_total")
	cLiveVarsKept  = metrics.Default.Counter("laoc_analysis_liveness_var_walks_kept_total")
	cLiveVarsInval = metrics.Default.Counter("laoc_analysis_liveness_var_walks_invalidated_total")
	cDomRequests   = metrics.Default.Counter("laoc_analysis_dominators_requests_total")
	cDomComputes   = metrics.Default.Counter("laoc_analysis_dominators_computes_total")
	cDomReused     = metrics.Default.Counter("laoc_analysis_dominators_reused_total")
)

func init() {
	metrics.Default.SetHelp("laoc_analysis_liveness_requests_total", "Liveness analysis requests (computes + reuses).")
	metrics.Default.SetHelp("laoc_analysis_liveness_computes_total", "Liveness computes: full builds + incremental revalidations.")
	metrics.Default.SetHelp("laoc_analysis_liveness_reused_total", "Liveness requests served from the per-function memo.")
	metrics.Default.SetHelp("laoc_analysis_liveness_full_builds_total", "Liveness Infos built from scratch.")
	metrics.Default.SetHelp("laoc_analysis_liveness_revalidations_total", "Query-engine Infos revalidated incrementally after code-only mutations.")
	metrics.Default.SetHelp("laoc_analysis_liveness_var_walks_kept_total", "Memoized per-variable walks kept across revalidations.")
	metrics.Default.SetHelp("laoc_analysis_liveness_var_walks_invalidated_total", "Memoized per-variable walks dropped by revalidations.")
	metrics.Default.SetHelp("laoc_analysis_dominators_requests_total", "Dominator tree requests.")
	metrics.Default.SetHelp("laoc_analysis_dominators_computes_total", "Dominator trees computed.")
	metrics.Default.SetHelp("laoc_analysis_dominators_reused_total", "Dominator requests served from the per-function memo.")
}

// Stats returns a snapshot of the package-wide cache counters.
func Stats() CacheStats {
	return CacheStats{
		LivenessRequests:        uint64(cLiveRequests.Value()),
		LivenessComputes:        uint64(cLiveComputes.Value()),
		LivenessReused:          uint64(cLiveReused.Value()),
		LivenessFullBuilds:      uint64(cLiveFull.Value()),
		LivenessRevalidations:   uint64(cLiveReval.Value()),
		LivenessVarsKept:        uint64(cLiveVarsKept.Value()),
		LivenessVarsInvalidated: uint64(cLiveVarsInval.Value()),
		DominatorsRequests:      uint64(cDomRequests.Value()),
		DominatorsComputes:      uint64(cDomComputes.Value()),
		DominatorsReused:        uint64(cDomReused.Value()),
	}
}

// ResetStats zeroes the package-wide cache counters.
func ResetStats() {
	for _, c := range []*metrics.Counter{
		cLiveRequests, cLiveComputes, cLiveReused, cLiveFull, cLiveReval,
		cLiveVarsKept, cLiveVarsInval, cDomRequests, cDomComputes, cDomReused,
	} {
		c.Reset()
	}
}

// Liveness returns the live-variable analysis of f, recomputing it only
// if f changed since the last request. The returned Info is shared:
// callers must treat it as read-only, and it describes f as of this
// call — a later mutation of f makes it stale without invalidating the
// pointer (exactly like calling liveness.Compute directly).
func Liveness(f *ir.Func) *liveness.Info {
	m := memoOf(f)
	gen := f.Generation()
	eng := liveness.DefaultEngine
	cLiveRequests.Inc()
	if m.live != nil && m.liveGen == gen && m.liveEngine == eng {
		cLiveReused.Inc()
		return m.live
	}
	cLiveComputes.Inc()
	if eng == liveness.EngineQuery {
		cfgGen := f.CFGGeneration()
		if m.live != nil && m.liveEngine == eng && m.liveCFGGen == cfgGen && m.live.Incremental() {
			// Code-only mutation under an unchanged CFG: revalidate the
			// per-variable summaries and keep every walk whose summary is
			// unchanged instead of rebuilding the whole engine.
			live, kept, dropped := m.live.Revalidate()
			m.live = live
			cLiveReval.Inc()
			cLiveVarsKept.Add(int64(kept))
			cLiveVarsInval.Add(int64(dropped))
		} else {
			m.live = liveness.NewQuery(f, Dominators(f))
			cLiveFull.Inc()
		}
		m.liveCFGGen = cfgGen
	} else {
		m.live = liveness.Compute(f)
		cLiveFull.Inc()
	}
	m.liveGen = gen
	m.liveEngine = eng
	return m.live
}

// Dominators returns the dominator tree of f under the same memoization
// and sharing contract as Liveness, except that it is keyed on the CFG
// generation: dominators depend only on the block graph, so instruction
// and operand edits (which bump only the code generation) leave a cached
// tree valid. This is what lifts the dominator reuse rate past the
// liveness one — most passes rewrite code, few reshape the CFG.
func Dominators(f *ir.Func) *cfg.DomTree {
	m := memoOf(f)
	gen := f.CFGGeneration()
	cDomRequests.Inc()
	if m.dom != nil && m.domGen == gen {
		cDomReused.Inc()
		return m.dom
	}
	cDomComputes.Inc()
	m.dom = cfg.Dominators(f)
	m.domGen = gen
	return m.dom
}

// Invalidate drops every memoized analysis of f. Normal code never
// needs it — mutators bump the generation instead — but tests use it to
// establish a cold cache.
func Invalidate(f *ir.Func) {
	*f.AnalysisSlot() = nil
}
