package analysis_test

import (
	"strings"
	"testing"

	"outofssa/internal/analysis"
	"outofssa/internal/faultinject"
	"outofssa/internal/ir"
	"outofssa/internal/liveness"
	"outofssa/internal/ssa"
	"outofssa/internal/testprog"
	"outofssa/internal/verify"
)

// delta runs fn and returns how the package counters moved across it.
func delta(fn func()) analysis.CacheStats {
	before := analysis.Stats()
	fn()
	after := analysis.Stats()
	return analysis.CacheStats{
		LivenessRequests:   after.LivenessRequests - before.LivenessRequests,
		LivenessComputes:   after.LivenessComputes - before.LivenessComputes,
		LivenessReused:     after.LivenessReused - before.LivenessReused,
		DominatorsRequests: after.DominatorsRequests - before.DominatorsRequests,
		DominatorsComputes: after.DominatorsComputes - before.DominatorsComputes,
		DominatorsReused:   after.DominatorsReused - before.DominatorsReused,
	}
}

func TestLivenessMemoized(t *testing.T) {
	f := testprog.Diamond()
	var same bool
	d := delta(func() {
		l1 := analysis.Liveness(f)
		l2 := analysis.Liveness(f)
		same = l1 == l2
	})
	if !same {
		t.Fatal("second request on an unchanged function returned a different liveness")
	}
	if d.LivenessRequests != 2 || d.LivenessComputes != 1 || d.LivenessReused != 1 {
		t.Fatalf("counters: %+v, want 2 requests / 1 compute / 1 reuse", d)
	}
}

func TestDominatorsMemoized(t *testing.T) {
	f := testprog.NestedLoops()
	var same bool
	d := delta(func() {
		d1 := analysis.Dominators(f)
		d2 := analysis.Dominators(f)
		same = d1 == d2
	})
	if !same {
		t.Fatal("second request on an unchanged function returned a different dom tree")
	}
	if d.DominatorsRequests != 2 || d.DominatorsComputes != 1 || d.DominatorsReused != 1 {
		t.Fatalf("counters: %+v, want 2 requests / 1 compute / 1 reuse", d)
	}
}

// Every structural mutator of the ir package must move the generation
// counter, so a cached analysis never survives it. The contract is
// two-level: code-only mutators (value/instruction edits, NoteMutation)
// invalidate liveness but leave the CFG-keyed dominator tree valid;
// CFG mutators (NewBlock, AddEdge, ReplacePred/Succ, NoteCFGMutation,
// RestoreFrom) invalidate both.
func TestStructuralMutatorsInvalidate(t *testing.T) {
	mutations := []struct {
		name string
		cfg  bool // must also invalidate dominators
		do   func(f *ir.Func)
	}{
		{"NewValue", false, func(f *ir.Func) { f.NewValue("g") }},
		{"NewBlock", true, func(f *ir.Func) { f.NewBlock("g") }},
		{"AddEdge", true, func(f *ir.Func) { f.AddEdge(f.Blocks()[len(f.Blocks())-1], f.Entry()) }},
		{"Append", false, func(f *ir.Func) {
			in := f.NewInstr(ir.Const, ir.Ops(f.NewValue("k")), nil)
			in.Imm = 7
			f.Entry().Append(in)
		}},
		{"InsertAt", false, func(f *ir.Func) {
			in := f.NewInstr(ir.Const, ir.Ops(f.NewValue("k")), nil)
			in.Imm = 7
			f.Entry().InsertAt(0, in)
		}},
		{"RemoveAt", false, func(f *ir.Func) { f.Entry().RemoveAt(0) }},
		{"NoteMutation", false, func(f *ir.Func) { f.NoteMutation() }},
		{"NoteCFGMutation", true, func(f *ir.Func) { f.NoteCFGMutation() }},
		{"RestoreFrom", true, func(f *ir.Func) { f.RestoreFrom(f.Clone()) }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			f := testprog.Diamond()
			gen := f.Generation()
			cfgGen := f.CFGGeneration()
			analysis.Liveness(f)
			analysis.Dominators(f)
			m.do(f)
			if f.Generation() == gen {
				t.Fatalf("%s did not move the generation counter", m.name)
			}
			if m.cfg && f.CFGGeneration() == cfgGen {
				t.Fatalf("%s did not move the CFG generation counter", m.name)
			}
			d := delta(func() { analysis.Liveness(f); analysis.Dominators(f) })
			if d.LivenessComputes != 1 {
				t.Fatalf("after %s: %+v, want a fresh liveness compute", m.name, d)
			}
			if m.cfg && d.DominatorsComputes != 1 {
				t.Fatalf("after %s: %+v, want a fresh dominators compute", m.name, d)
			}
			if !m.cfg && d.DominatorsReused != 1 {
				t.Fatalf("after code-only %s: %+v, want the dominator tree served from cache", m.name, d)
			}
		})
	}
}

// A clone starts with a cold cache of its own; its analyses are never
// shared with (or taken from) the original.
func TestCloneStartsCold(t *testing.T) {
	f := testprog.SwapLoop()
	lf := analysis.Liveness(f)
	g := f.Clone()
	var lg any
	d := delta(func() { lg = analysis.Liveness(g) })
	if d.LivenessComputes != 1 {
		t.Fatalf("clone reused an analysis across functions: %+v", d)
	}
	if lg == lf {
		t.Fatal("clone returned the original's liveness object")
	}
	// The original's cache is untouched by the clone's compute.
	d = delta(func() { analysis.Liveness(f) })
	if d.LivenessReused != 1 {
		t.Fatalf("original lost its cache entry: %+v", d)
	}
}

func TestInvalidateForcesRecompute(t *testing.T) {
	f := testprog.Loop()
	analysis.Liveness(f)
	analysis.Invalidate(f)
	d := delta(func() { analysis.Liveness(f) })
	if d.LivenessComputes != 1 {
		t.Fatalf("Invalidate did not drop the entry: %+v", d)
	}
}

// TestSilentMutationGoesStale documents the failure mode the generation
// contract exists to prevent: a pass that rewrites operands in place
// WITHOUT calling NoteMutation leaves cached analyses valid-looking but
// wrong. faultinject.InjectSilent is exactly such a pass;
// faultinject.Inject is its contract-honoring twin, and the cache
// recovers the moment the counter moves.
func TestSilentMutationGoesStale(t *testing.T) {
	f := testprog.Diamond()
	ssa.MustBuild(f)

	stale := analysis.Liveness(f)
	if !faultinject.InjectSilent(f, faultinject.MisplacedPhi) {
		t.Fatal("no misplaced-phi site found")
	}
	if got := analysis.Liveness(f); got != stale {
		t.Fatal("silent in-place mutation invalidated the cache — the staleness this test documents cannot happen")
	}

	// The honest twin: same corruption on a fresh function, plus the
	// NoteMutation the contract requires. The cache recomputes.
	g := testprog.Diamond()
	ssa.MustBuild(g)
	cached := analysis.Liveness(g)
	if !faultinject.Inject(g, faultinject.MisplacedPhi) {
		t.Fatal("no misplaced-phi site found")
	}
	d := delta(func() {
		if analysis.Liveness(g) == cached {
			// Pointer equality alone is not the test — a recompute
			// allocates fresh, so same pointer means the stale entry
			// survived.
			t.Fatal("Inject (with NoteMutation) did not invalidate the cache")
		}
	})
	if d.LivenessComputes != 1 {
		t.Fatalf("after Inject: %+v, want 1 fresh compute", d)
	}
}

// TestStaleVarLivenessCaught is the stale-cache hazard test for the
// query engine's per-variable memos: a silent φ-argument swap
// (faultinject.StaleVarLiveness) leaves the cached Info's walks
// describing live ranges that no longer exist. The cache must keep
// serving the stale Info (that is the documented failure mode of a
// contract-violating pass), the stale answers must demonstrably differ
// from ground truth, and the checked pipeline's verifier must reject
// the corrupted function so the damage cannot propagate.
func TestStaleVarLivenessCaught(t *testing.T) {
	f := testprog.Diamond()
	ssa.MustBuild(f)

	stale := analysis.Liveness(f)
	if stale.Engine() != liveness.EngineQuery {
		t.Fatalf("default liveness engine is %v, want query", stale.Engine())
	}
	// Force the per-variable walks to be memoized before the corruption
	// lands, so the stale answers below come from the old memos.
	for _, b := range f.Blocks() {
		stale.LiveOutSet(b)
	}
	if !faultinject.InjectSilent(f, faultinject.StaleVarLiveness) {
		t.Fatal("no stale-var-liveness site in the diamond")
	}
	if got := analysis.Liveness(f); got != stale {
		t.Fatal("silent operand swap invalidated the cache — the staleness this test documents cannot happen")
	}

	fresh := liveness.Compute(f)
	differs := false
	for _, b := range f.Blocks() {
		for id := 0; id < f.NumValues(); id++ {
			v := ir.ValueID(id)
			if f.IsPhys(v) {
				continue
			}
			if stale.LiveOut(v, b) != fresh.LiveOut(v, b) ||
				stale.LiveIn(v, b) != fresh.LiveIn(v, b) {
				differs = true
			}
		}
	}
	if !differs {
		t.Fatal("stale per-variable memos still agree with ground truth — the corruption did not move any live range")
	}

	if err := verify.Func(f, verify.StageSSA); err == nil {
		t.Fatal("verifier accepted the stale-var-liveness corruption")
	} else if !strings.Contains(err.Error(), "not dominated by its def in") {
		t.Fatalf("corruption caught by the wrong check: %v", err)
	}
}
