package analysis_test

import (
	"sync"
	"testing"

	"outofssa/internal/analysis"
	"outofssa/internal/cfg"
	"outofssa/internal/ir"
	"outofssa/internal/liveness"
	"outofssa/internal/ssa"
	"outofssa/internal/testprog"
)

// TestConcurrentReadersOneSnapshot is the -race proof for the
// concurrent-read analysis cache: 8+ goroutines share ONE snapshot
// marked for shared reads and hammer Liveness, Dominators and point
// queries simultaneously. Every goroutine must observe the same
// memoized Info/DomTree pointers (atomic publication, single-flight
// compute) and identical query answers; the memo counters must show
// exactly one compute per analysis kind.
func TestConcurrentReadersOneSnapshot(t *testing.T) {
	const (
		readers = 8
		rounds  = 200
	)
	master := testprog.NestedLoops()
	ssa.MustBuild(master)
	master.Freeze()
	snap := master.Snapshot()
	snap.MarkSharedRead()

	// Reference answers on an identical function, also shared-read: the
	// goroutines query both sides, so both Infos must be frozen.
	ref := testprog.NestedLoops()
	ssa.MustBuild(ref)
	ref.MarkSharedRead()
	refLive := analysis.Liveness(ref)
	refDom := analysis.Dominators(ref)

	before := analysis.Stats()
	irBefore := ir.Stats()

	var wg sync.WaitGroup
	liveSeen := make([]*liveness.Info, readers)
	domSeen := make([]*cfg.DomTree, readers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				live := analysis.Liveness(snap)
				dom := analysis.Dominators(snap)
				// Point queries across every block and value.
				blocks := snap.Blocks()
				refBlocks := ref.Blocks()
				for bi, b := range blocks {
					rb := refBlocks[bi]
					for v := 0; v < snap.NumValues(); v++ {
						id := ir.ValueID(v)
						if live.LiveIn(id, b) != refLive.LiveIn(id, rb) ||
							live.LiveOut(id, b) != refLive.LiveOut(id, rb) {
							t.Errorf("goroutine %d: liveness point query diverged at block %d value %d", g, bi, v)
							return
						}
					}
					for bj, c := range blocks {
						if dom.Dominates(b, c) != refDom.Dominates(rb, refBlocks[bj]) {
							t.Errorf("goroutine %d: dominance query diverged at (%d,%d)", g, bi, bj)
							return
						}
					}
				}
				if round == 0 {
					liveSeen[g] = live
					domSeen[g] = dom
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for g := 1; g < readers; g++ {
		if liveSeen[g] != liveSeen[0] || domSeen[g] != domSeen[0] {
			t.Fatalf("goroutine %d observed a different memo entry than goroutine 0 — publication is not shared", g)
		}
	}
	d := analysis.Stats()
	if n := d.LivenessComputes - before.LivenessComputes; n != 1 {
		t.Fatalf("%d liveness computes across %d concurrent readers, want 1 (single-flight)", n, readers)
	}
	if n := d.DominatorsComputes - before.DominatorsComputes; n != 1 {
		t.Fatalf("%d dominator computes across %d concurrent readers, want 1 (single-flight)", n, readers)
	}
	irAfter := ir.Stats()
	if n := irAfter.COWSlabCopies - irBefore.COWSlabCopies; n != 0 {
		t.Fatalf("concurrent read-only analysis materialized %d slab copies, want 0", n)
	}
}

// TestReadOnlyPipelinePassZeroCopies pins the zero-copy claim at the
// pipeline level: running only read-only work (verification, liveness,
// census) on snapshots of a frozen master moves the laoc_ir_snapshots
// counter but neither laoc_ir_cow_materializations nor
// laoc_ir_cow_slab_copies.
func TestReadOnlyPipelinePassZeroCopies(t *testing.T) {
	master := testprog.SwapLoop()
	ssa.MustBuild(master)
	master.Freeze()

	before := ir.Stats()
	for i := 0; i < 10; i++ {
		snap := master.Snapshot()
		live := analysis.Liveness(snap)
		dom := analysis.Dominators(snap)
		_ = live
		_ = dom
		_ = snap.CountMoves()
		_ = snap.CountPhis()
		snap.Release()
	}
	d := ir.Stats()
	if n := d.Snapshots - before.Snapshots; n != 10 {
		t.Fatalf("snapshots counter moved by %d, want 10", n)
	}
	if n := d.COWMaterializations - before.COWMaterializations; n != 0 {
		t.Fatalf("read-only passes materialized %d snapshots, want 0", n)
	}
	if n := d.COWSlabCopies - before.COWSlabCopies; n != 0 {
		t.Fatalf("read-only passes copied %d slabs, want 0", n)
	}
}

// TestBatchSharedSnapshotRace fans one shared-read snapshot through the
// batch driver's own concurrency shape: every job reads the same
// snapshot (analysis + counts) while the driver schedules across
// shards. Run under -race this covers the pipeline-side read path the
// pure-analysis test above cannot reach.
func TestBatchSharedSnapshotRace(t *testing.T) {
	master := testprog.NestedLoops()
	ssa.MustBuild(master)
	master.Freeze()
	shared := master.Snapshot()
	shared.MarkSharedRead()

	// A full pipeline run would mutate its input, so the fan-out drives
	// the read-only half of a job (analysis + censuses) directly with
	// the driver's worker count; mutating jobs are covered by
	// pipeline.TestBatchDeterminism over per-job snapshots.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 64; i++ {
				f := shared
				live := analysis.Liveness(f)
				for _, b := range f.Blocks() {
					_ = live.LiveInSet(b)
					_ = live.LiveOutSet(b)
				}
				_ = analysis.Dominators(f)
				_ = f.CountMoves()
			}
		}()
	}
	wg.Wait()
	if err := shared.Verify(); err != nil {
		t.Fatalf("shared snapshot damaged by concurrent reads: %v", err)
	}
}
