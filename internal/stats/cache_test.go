package stats_test

import (
	"testing"

	"outofssa/internal/analysis"
	"outofssa/internal/stats"
)

// TestDominatorCacheReuseOnTable2 pins the analysis-cache hit rates on
// the Table 2 workload. Dominators are keyed on the CFG generation, so
// the many operand-rewriting passes between CFG reshapes (rename,
// ssaopt, pin collection, coalescing) all hit the cache; before the
// generation split the reuse rate was 23.2% — any regression back
// toward per-code-mutation invalidation (or a pass bypassing
// analysis.Dominators, as ssa.Verify once did) trips this.
func TestDominatorCacheReuseOnTable2(t *testing.T) {
	analysis.ResetStats()
	if _, err := stats.Table2(); err != nil {
		t.Fatal(err)
	}
	s := analysis.Stats()
	if s.DominatorsRequests == 0 || s.LivenessRequests == 0 {
		t.Fatal("Table 2 workload issued no analysis requests")
	}
	domRate := float64(s.DominatorsReused) / float64(s.DominatorsRequests)
	liveRate := float64(s.LivenessReused) / float64(s.LivenessRequests)
	// Measured 72.0% dominator reuse (2752/3820) and 62.5% liveness
	// reuse (4613/7380); pinned with headroom for workload drift.
	if domRate < 0.65 {
		t.Errorf("dominator cache reuse = %.1f%% (%d/%d), want >= 65%%",
			100*domRate, s.DominatorsReused, s.DominatorsRequests)
	}
	if liveRate < 0.55 {
		t.Errorf("liveness cache reuse = %.1f%% (%d/%d), want >= 55%%",
			100*liveRate, s.LivenessReused, s.LivenessRequests)
	}
}
