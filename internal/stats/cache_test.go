package stats_test

import (
	"testing"

	"outofssa/internal/analysis"
	"outofssa/internal/stats"
)

// TestDominatorCacheReuseOnTable2 pins the analysis-cache hit rates on
// the Table 2 workload. Dominators are keyed on the CFG generation, so
// the many operand-rewriting passes between CFG reshapes (rename,
// ssaopt, pin collection, coalescing) all hit the cache; before the
// generation split the reuse rate was 23.2% — any regression back
// toward per-code-mutation invalidation (or a pass bypassing
// analysis.Dominators, as ssa.Verify once did) trips this.
func TestDominatorCacheReuseOnTable2(t *testing.T) {
	analysis.ResetStats()
	if _, err := stats.Table2(); err != nil {
		t.Fatal(err)
	}
	s := analysis.Stats()
	if s.DominatorsRequests == 0 || s.LivenessRequests == 0 {
		t.Fatal("Table 2 workload issued no analysis requests")
	}
	domRate := float64(s.DominatorsReused) / float64(s.DominatorsRequests)
	liveRate := float64(s.LivenessReused) / float64(s.LivenessRequests)
	// Measured 78.2% dominator reuse (3820/4888) and 31.2% liveness
	// reuse (1253/4020); pinned with headroom for workload drift. The
	// liveness rate dropped from the 62.5% of the pure-cache era by
	// design: the sreedhar conversion now checks the mutation generation
	// itself instead of issuing a cache-hit request per φ, so the
	// remaining requests are the ones other passes genuinely make.
	if domRate < 0.65 {
		t.Errorf("dominator cache reuse = %.1f%% (%d/%d), want >= 65%%",
			100*domRate, s.DominatorsReused, s.DominatorsRequests)
	}
	if liveRate < 0.25 {
		t.Errorf("liveness cache reuse = %.1f%% (%d/%d), want >= 25%%",
			100*liveRate, s.LivenessReused, s.LivenessRequests)
	}
}

// TestLivenessInvalidationRateOnTable2 pins the query engine's
// incremental-invalidation behavior on the Table 2 workload: a code-only
// mutation must revalidate the cached Info (keeping most per-variable
// walks) instead of rebuilding it, so whole-Info builds have to be a
// minority of the computes — the point of the engine, and the ≥50%
// reduction the PR 5 acceptance criteria demand. Measured 1068 full
// builds / 2767 computes (38.6%) and 68.5% of walks kept across 1699
// revalidations; pinned with headroom.
func TestLivenessInvalidationRateOnTable2(t *testing.T) {
	analysis.ResetStats()
	if _, err := stats.Table2(); err != nil {
		t.Fatal(err)
	}
	s := analysis.Stats()
	if s.LivenessComputes == 0 {
		t.Fatal("Table 2 workload computed no liveness")
	}
	if s.LivenessFullBuilds+s.LivenessRevalidations != s.LivenessComputes {
		t.Errorf("full builds (%d) + revalidations (%d) != computes (%d)",
			s.LivenessFullBuilds, s.LivenessRevalidations, s.LivenessComputes)
	}
	fullRate := float64(s.LivenessFullBuilds) / float64(s.LivenessComputes)
	if fullRate > 0.5 {
		t.Errorf("whole-Info liveness builds = %.1f%% of computes (%d/%d), want <= 50%% — code-only mutations are not being revalidated incrementally",
			100*fullRate, s.LivenessFullBuilds, s.LivenessComputes)
	}
	if walks := s.LivenessVarsKept + s.LivenessVarsInvalidated; walks > 0 {
		keptRate := float64(s.LivenessVarsKept) / float64(walks)
		if keptRate < 0.5 {
			t.Errorf("per-variable walks kept across revalidations = %.1f%% (%d/%d), want >= 50%% — summary diffing is invalidating untouched variables",
				100*keptRate, s.LivenessVarsKept, walks)
		}
	}
}
