package stats_test

import (
	"strings"
	"testing"

	"outofssa/internal/stats"
)

func TestTable1Legend(t *testing.T) {
	s := stats.Table1()
	for _, want := range []string{"Lphi+C", "Sphi+LABI+C", "C(naiveABI)", "Coalescing", "pinABI"} {
		if !strings.Contains(s, want) {
			t.Errorf("legend missing %q:\n%s", want, s)
		}
	}
}

func TestTable2Structure(t *testing.T) {
	tb, err := stats.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("want 5 suite rows, got %d", len(tb.Rows))
	}
	if len(tb.Columns) != 3 {
		t.Fatalf("want 3 columns, got %d", len(tb.Columns))
	}
	for _, r := range tb.Rows {
		if len(r.Cells) != len(tb.Columns) {
			t.Fatalf("%s: ragged row", r.Benchmark)
		}
		for _, c := range r.Cells {
			if c < 0 {
				t.Fatalf("%s: negative move count %d", r.Benchmark, c)
			}
		}
	}
	rendered := tb.String()
	if !strings.Contains(rendered, "VALcc1") || !strings.Contains(rendered, "SPECint") {
		t.Fatalf("rendering missing suites:\n%s", rendered)
	}
	// The delta convention: later columns render as +N or -N.
	if !strings.Contains(rendered, "+") {
		t.Fatalf("no deltas rendered:\n%s", rendered)
	}
}

func TestRenderingDeltas(t *testing.T) {
	tb := &stats.Table{
		Title:   "t",
		Columns: []string{"a", "b"},
		Rows:    []stats.Row{{Benchmark: "x", Cells: []int64{10, 13}}},
	}
	s := tb.String()
	if !strings.Contains(s, "10") || !strings.Contains(s, "+3") {
		t.Fatalf("delta rendering wrong:\n%s", s)
	}
}
