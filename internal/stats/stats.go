// Package stats runs the paper's experiment tables over the workload
// suites and renders them in the paper's format: an absolute count for
// the reference column and +/- deltas for the others (Tables 2-5 of the
// CGO 2004 paper).
package stats

import (
	"context"
	"fmt"
	"strings"

	"outofssa/internal/coalesce"
	"outofssa/internal/interference"
	"outofssa/internal/ir"
	"outofssa/internal/obs"
	"outofssa/internal/obs/metrics"
	"outofssa/internal/pipeline"
	"outofssa/internal/workload"
)

// Table is one rendered experiment table.
type Table struct {
	Title   string
	Note    string
	Columns []string // first column is the reference
	Rows    []Row
}

// Row is one benchmark suite's results; Cells are absolute counts
// (rendering converts trailing columns to deltas).
type Row struct {
	Benchmark string
	Cells     []int64
}

// String renders the table with the paper's +delta convention.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "  (%s)\n", t.Note)
	}
	fmt.Fprintf(&b, "%-14s", "benchmark")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%14s", c)
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-14s", r.Benchmark)
		for i, v := range r.Cells {
			if i == 0 {
				fmt.Fprintf(&b, "%14d", v)
			} else {
				fmt.Fprintf(&b, "%+14d", v-r.Cells[0])
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// suiteBuilders returns the five suites in the paper's order.
func suiteBuilders() []func() *workload.Suite {
	return []func() *workload.Suite{
		workload.VALcc1, workload.VALcc2, workload.Examples,
		workload.LAILarge, workload.SPECint,
	}
}

// Checked, when true, runs every table experiment in checked mode
// (pipeline.Config.Verify): IR invariants are re-verified after each
// pass. The verifier only reads the IR, so the tables come out
// byte-identical — ssabench -verify exists to prove exactly that.
var Checked bool

// Parallel bounds the worker pool the tables run their pipeline jobs
// on: 1 (the default is whatever pipeline.RunBatch defaults to when 0 —
// GOMAXPROCS) serializes, n > 1 uses n workers. The unit of work is one
// (suite function × column) pipeline run; every job clones its function
// from the suite master, so results and trace streams are identical at
// any setting. ssabench -parallel sets this.
var Parallel = 1

// Context, when non-nil, bounds every table batch: once it is done,
// queued pipeline jobs are skipped and in-flight ones stop at their
// next pass boundary, surfacing as a table error wrapping ctx.Err().
// ssabench sets this from its signal context so an interrupt stops the
// worker pool instead of finishing all tables. Nil means uncancellable.
var Context context.Context

// Metrics, when non-nil, attaches the registry to every table batch
// (pipeline.WithBatchMetrics): per-pass histograms, pass-counter
// mirrors, batch gauges and the MAXLIVE distribution all accumulate
// there while the tables run. Nil (the default) keeps the pipeline's
// zero-allocation fast path. ssabench -metrics-out / -metrics-addr set
// this to metrics.Default.
var Metrics *metrics.Registry

// colSpec is one table column resolved to runnable form: the pass
// configuration, the experiment label traces carry, and whether the
// cell totals weighted (5^depth) or plain move counts.
type colSpec struct {
	conf     pipeline.Config
	exp      string
	weighted bool
}

// presetCol resolves a column named after a Table 1 experiment.
func presetCol(col string) (colSpec, error) {
	conf, err := pipeline.Preset(col)
	if err != nil {
		return colSpec{}, err
	}
	return colSpec{conf: conf, exp: col}, nil
}

// buildTable runs every (suite, column) cell as a batch of per-function
// pipeline jobs. Each suite is built once per row as a master; every
// job snapshots its function from the frozen master inside the worker
// that runs it. ir.Snapshot preserves IDs and ordering exactly as
// Clone did, so a snapshotted run is indistinguishable from one on a
// freshly built suite — but the per-job copy is O(arena chunks) up
// front and slabs privatize lazily, only when the job's first pass
// actually writes them.
func buildTable(title, note string, cols []string, tr obs.Tracer, spec func(col string) (colSpec, error)) (*Table, error) {
	t := &Table{Title: title, Note: note, Columns: cols}
	specs := make([]colSpec, len(cols))
	for i, c := range cols {
		sp, err := spec(c)
		if err != nil {
			return nil, err
		}
		sp.conf.Verify = Checked
		specs[i] = sp
	}

	// One batch per row keeps the live heap bounded: a row's master
	// suite, clones and results all become garbage before the next row
	// starts. Batches run (and replay their traces) in row order, and
	// jobs within a batch are laid out in (column, function) order — the
	// exact iteration order of the old serial driver — so the rendered
	// tables and the trace stream are byte-identical at any parallelism.
	for _, build := range suiteBuilders() {
		master := build()
		for _, f := range master.Funcs {
			f.Freeze() // masters are immutable for the row; jobs snapshot them
		}
		row := Row{Benchmark: master.Name, Cells: make([]int64, len(cols))}
		var jobs []pipeline.Job
		for ci := range cols {
			sp := specs[ci]
			for _, f := range master.Funcs {
				f := f
				jobs = append(jobs, pipeline.Job{
					Build:      func() *ir.Func { return f.Snapshot() },
					Config:     sp.conf,
					Experiment: sp.exp,
				})
			}
		}
		ctx := Context
		if ctx == nil {
			ctx = context.Background()
		}
		results := pipeline.RunBatchCtx(ctx, jobs,
			pipeline.WithParallelism(Parallel),
			pipeline.WithBatchTracer(tr),
			pipeline.WithBatchMetrics(Metrics))
		for i := range results {
			res := &results[i]
			ci := i / len(master.Funcs)
			if res.Err != nil {
				return nil, fmt.Errorf("%s/%s: %v", master.Name, res.Func.Name, res.Err)
			}
			if specs[ci].weighted {
				row.Cells[ci] += res.Result.WeightedMoves
			} else {
				row.Cells[ci] += int64(res.Result.Moves)
			}
			*res = pipeline.JobResult{} // release the final IR promptly
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table1 renders the experiment legend — which passes each named
// experiment activates, mirroring the paper's Table 1.
func Table1() string {
	rows := []struct{ name string }{
		{pipeline.ExpLphiC}, {pipeline.ExpC2}, {pipeline.ExpSphiC},
		{pipeline.ExpLphiABIC}, {pipeline.ExpSphiLABIC}, {pipeline.ExpLABIC}, {pipeline.ExpC3},
		{pipeline.ExpLphiABI}, {pipeline.ExpSphi}, {pipeline.ExpLABI},
		{pipeline.ExpPrePin}, {pipeline.ExpPsi},
	}
	cols := []struct {
		title string
		on    func(pipeline.Config) bool
	}{
		{"Sreedhar", func(c pipeline.Config) bool { return c.Sreedhar }},
		{"pinCSSA", func(c pipeline.Config) bool { return c.Sreedhar }},
		{"pinSP", func(c pipeline.Config) bool { return true }},
		{"pinABI", func(c pipeline.Config) bool { return c.ABI }},
		{"prePin", func(c pipeline.Config) bool { return c.PrePin }},
		{"pinPhi", func(c pipeline.Config) bool { return c.PhiCoalesce }},
		{"psi", func(c pipeline.Config) bool { return c.Psi }},
		{"out-of-pSSA", func(c pipeline.Config) bool { return !c.NaiveOut }},
		{"NaiveABI", func(c pipeline.Config) bool { return c.NaiveABI }},
		{"Coalescing", func(c pipeline.Config) bool { return c.Chaitin }},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: implemented experiment configurations\n")
	fmt.Fprintf(&b, "%-14s", "experiment")
	for _, c := range cols {
		fmt.Fprintf(&b, "%12s", c.title)
	}
	b.WriteString("\n")
	for _, r := range rows {
		conf, _ := pipeline.Preset(r.name)
		fmt.Fprintf(&b, "%-14s", r.name)
		for _, c := range cols {
			mark := ""
			if c.on(conf) {
				mark = "*"
			}
			fmt.Fprintf(&b, "%12s", mark)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Table2 reproduces "Comparison of move instruction count with no ABI
// constraint": Lφ+C vs C vs Sφ+C.
func Table2() (*Table, error) { return Table2Traced(nil) }

// Table2Traced is Table2 with a pipeline tracer attached to every run
// (nil for none); events are labelled with the experiment name.
func Table2Traced(tr obs.Tracer) (*Table, error) {
	return buildTable(
		"Table 2: move instruction count with no ABI constraint",
		"deltas relative to Lphi+C",
		[]string{pipeline.ExpLphiC, pipeline.ExpC2, pipeline.ExpSphiC},
		tr, presetCol)
}

// Table3 reproduces "Comparison of move instruction count with renaming
// constraints": Lφ,ABI+C vs Sφ+LABI+C vs LABI+C vs C.
func Table3() (*Table, error) { return Table3Traced(nil) }

// Table3Traced is Table3 with a pipeline tracer attached.
func Table3Traced(tr obs.Tracer) (*Table, error) {
	return buildTable(
		"Table 3: move instruction count with renaming constraints",
		"deltas relative to Lphi,ABI+C",
		[]string{pipeline.ExpLphiABIC, pipeline.ExpSphiLABIC, pipeline.ExpLABIC, pipeline.ExpC3},
		tr, presetCol)
}

// Table4 reproduces the "order of magnitude" table: moves remaining
// before any coalescing when φs (Sφ: ABI naive) or the ABI (LABI: φ
// naive) are handled naively.
func Table4() (*Table, error) { return Table4Traced(nil) }

// Table4Traced is Table4 with a pipeline tracer attached.
func Table4Traced(tr obs.Tracer) (*Table, error) {
	return buildTable(
		"Table 4: order of magnitude (no aggressive coalescing)",
		"Sphi adds naive ABI moves; LABI adds naive phi moves; deltas vs Lphi,ABI",
		[]string{pipeline.ExpLphiABI, pipeline.ExpSphi, pipeline.ExpLABI},
		tr, presetCol)
}

// Table5 reproduces the weighted (5^depth) variant comparison of the
// paper's algorithm: base, depth-constrained, optimistic, pessimistic.
func Table5() (*Table, error) { return Table5Traced(nil) }

// Table5Traced is Table5 with a pipeline tracer attached; events are
// labelled "Lphi,ABI+C/<variant>".
func Table5Traced(tr obs.Tracer) (*Table, error) {
	variants := []struct {
		name string
		opt  coalesce.Options
	}{
		{"base", coalesce.Options{}},
		{"depth", coalesce.Options{DepthConstraint: true}},
		{"opt", coalesce.Options{Mode: interference.Optimistic}},
		{"pess", coalesce.Options{Mode: interference.Pessimistic}},
	}
	cols := make([]string, len(variants))
	for i, v := range variants {
		cols[i] = v.name
	}
	return buildTable(
		"Table 5: weighted (5^depth) move count, variants of the algorithm",
		"full pipeline Lphi,ABI+C with the pinning-phi variant swapped",
		cols,
		tr,
		func(col string) (colSpec, error) {
			conf, err := pipeline.Preset(pipeline.ExpLphiABIC)
			if err != nil {
				return colSpec{}, err
			}
			for _, v := range variants {
				if v.name == col {
					conf.Coalesce = v.opt
				}
			}
			return colSpec{conf: conf, exp: pipeline.ExpLphiABIC + "/" + col, weighted: true}, nil
		})
}

// AllTables runs Tables 2-5 in order.
func AllTables() ([]*Table, error) { return AllTablesTraced(nil) }

// AllTablesTraced runs Tables 2-5 in order with a pipeline tracer
// attached to every experiment run.
func AllTablesTraced(tr obs.Tracer) ([]*Table, error) {
	var out []*Table
	for _, fn := range []func(obs.Tracer) (*Table, error){
		Table2Traced, Table3Traced, Table4Traced, Table5Traced,
	} {
		t, err := fn(tr)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
