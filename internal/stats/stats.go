// Package stats runs the paper's experiment tables over the workload
// suites and renders them in the paper's format: an absolute count for
// the reference column and +/- deltas for the others (Tables 2-5 of the
// CGO 2004 paper).
package stats

import (
	"fmt"
	"strings"

	"outofssa/internal/coalesce"
	"outofssa/internal/interference"
	"outofssa/internal/obs"
	"outofssa/internal/pipeline"
	"outofssa/internal/workload"
)

// Table is one rendered experiment table.
type Table struct {
	Title   string
	Note    string
	Columns []string // first column is the reference
	Rows    []Row
}

// Row is one benchmark suite's results; Cells are absolute counts
// (rendering converts trailing columns to deltas).
type Row struct {
	Benchmark string
	Cells     []int64
}

// String renders the table with the paper's +delta convention.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "  (%s)\n", t.Note)
	}
	fmt.Fprintf(&b, "%-14s", "benchmark")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%14s", c)
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-14s", r.Benchmark)
		for i, v := range r.Cells {
			if i == 0 {
				fmt.Fprintf(&b, "%14d", v)
			} else {
				fmt.Fprintf(&b, "%+14d", v-r.Cells[0])
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// suiteBuilders returns the five suites in the paper's order.
func suiteBuilders() []func() *workload.Suite {
	return []func() *workload.Suite{
		workload.VALcc1, workload.VALcc2, workload.Examples,
		workload.LAILarge, workload.SPECint,
	}
}

// Checked, when true, runs every table experiment in checked mode
// (pipeline.Config.Verify): IR invariants are re-verified after each
// pass. The verifier only reads the IR, so the tables come out
// byte-identical — ssabench -verify exists to prove exactly that.
var Checked bool

// runMoves executes an experiment over a built suite (consuming it —
// the pipelines mutate their input) and totals the final move count.
func runMoves(s *workload.Suite, exp string, tr obs.Tracer) (int64, error) {
	return runConf(s, pipeline.Configs[exp], exp, false, tr)
}

func runConf(s *workload.Suite, conf pipeline.Config, exp string, weighted bool, tr obs.Tracer) (int64, error) {
	conf.Verify = Checked
	var total int64
	for _, f := range s.Funcs {
		r, err := pipeline.RunTraced(f, conf, exp, tr)
		if err != nil {
			return 0, fmt.Errorf("%s/%s: %v", s.Name, f.Name, err)
		}
		if weighted {
			total += r.WeightedMoves
		} else {
			total += int64(r.Moves)
		}
	}
	return total, nil
}

// buildTable runs cell for every (suite, column) pair. Each cell gets a
// freshly built suite (the pipelines mutate their input), built exactly
// once per cell — the row label is taken from the first column's suite
// instead of an extra throwaway build.
func buildTable(title, note string, cols []string, cell func(s *workload.Suite, col string) (int64, error)) (*Table, error) {
	t := &Table{Title: title, Note: note, Columns: cols}
	for _, build := range suiteBuilders() {
		var row Row
		for i, c := range cols {
			s := build()
			if i == 0 {
				row.Benchmark = s.Name
			}
			v, err := cell(s, c)
			if err != nil {
				return nil, err
			}
			row.Cells = append(row.Cells, v)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table1 renders the experiment legend — which passes each named
// experiment activates, mirroring the paper's Table 1.
func Table1() string {
	rows := []struct{ name string }{
		{pipeline.ExpLphiC}, {pipeline.ExpC2}, {pipeline.ExpSphiC},
		{pipeline.ExpLphiABIC}, {pipeline.ExpSphiLABIC}, {pipeline.ExpLABIC}, {pipeline.ExpC3},
		{pipeline.ExpLphiABI}, {pipeline.ExpSphi}, {pipeline.ExpLABI},
		{pipeline.ExpPrePin}, {pipeline.ExpPsi},
	}
	cols := []struct {
		title string
		on    func(pipeline.Config) bool
	}{
		{"Sreedhar", func(c pipeline.Config) bool { return c.Sreedhar }},
		{"pinCSSA", func(c pipeline.Config) bool { return c.Sreedhar }},
		{"pinSP", func(c pipeline.Config) bool { return true }},
		{"pinABI", func(c pipeline.Config) bool { return c.ABI }},
		{"prePin", func(c pipeline.Config) bool { return c.PrePin }},
		{"pinPhi", func(c pipeline.Config) bool { return c.PhiCoalesce }},
		{"psi", func(c pipeline.Config) bool { return c.Psi }},
		{"out-of-pSSA", func(c pipeline.Config) bool { return !c.NaiveOut }},
		{"NaiveABI", func(c pipeline.Config) bool { return c.NaiveABI }},
		{"Coalescing", func(c pipeline.Config) bool { return c.Chaitin }},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: implemented experiment configurations\n")
	fmt.Fprintf(&b, "%-14s", "experiment")
	for _, c := range cols {
		fmt.Fprintf(&b, "%12s", c.title)
	}
	b.WriteString("\n")
	for _, r := range rows {
		conf := pipeline.Configs[r.name]
		fmt.Fprintf(&b, "%-14s", r.name)
		for _, c := range cols {
			mark := ""
			if c.on(conf) {
				mark = "*"
			}
			fmt.Fprintf(&b, "%12s", mark)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Table2 reproduces "Comparison of move instruction count with no ABI
// constraint": Lφ+C vs C vs Sφ+C.
func Table2() (*Table, error) { return Table2Traced(nil) }

// Table2Traced is Table2 with a pipeline tracer attached to every run
// (nil for none); events are labelled with the experiment name.
func Table2Traced(tr obs.Tracer) (*Table, error) {
	return buildTable(
		"Table 2: move instruction count with no ABI constraint",
		"deltas relative to Lphi+C",
		[]string{pipeline.ExpLphiC, pipeline.ExpC2, pipeline.ExpSphiC},
		func(s *workload.Suite, col string) (int64, error) {
			return runMoves(s, col, tr)
		})
}

// Table3 reproduces "Comparison of move instruction count with renaming
// constraints": Lφ,ABI+C vs Sφ+LABI+C vs LABI+C vs C.
func Table3() (*Table, error) { return Table3Traced(nil) }

// Table3Traced is Table3 with a pipeline tracer attached.
func Table3Traced(tr obs.Tracer) (*Table, error) {
	return buildTable(
		"Table 3: move instruction count with renaming constraints",
		"deltas relative to Lphi,ABI+C",
		[]string{pipeline.ExpLphiABIC, pipeline.ExpSphiLABIC, pipeline.ExpLABIC, pipeline.ExpC3},
		func(s *workload.Suite, col string) (int64, error) {
			return runMoves(s, col, tr)
		})
}

// Table4 reproduces the "order of magnitude" table: moves remaining
// before any coalescing when φs (Sφ: ABI naive) or the ABI (LABI: φ
// naive) are handled naively.
func Table4() (*Table, error) { return Table4Traced(nil) }

// Table4Traced is Table4 with a pipeline tracer attached.
func Table4Traced(tr obs.Tracer) (*Table, error) {
	return buildTable(
		"Table 4: order of magnitude (no aggressive coalescing)",
		"Sphi adds naive ABI moves; LABI adds naive phi moves; deltas vs Lphi,ABI",
		[]string{pipeline.ExpLphiABI, pipeline.ExpSphi, pipeline.ExpLABI},
		func(s *workload.Suite, col string) (int64, error) {
			return runMoves(s, col, tr)
		})
}

// Table5 reproduces the weighted (5^depth) variant comparison of the
// paper's algorithm: base, depth-constrained, optimistic, pessimistic.
func Table5() (*Table, error) { return Table5Traced(nil) }

// Table5Traced is Table5 with a pipeline tracer attached; events are
// labelled "Lphi,ABI+C/<variant>".
func Table5Traced(tr obs.Tracer) (*Table, error) {
	variants := []struct {
		name string
		opt  coalesce.Options
	}{
		{"base", coalesce.Options{}},
		{"depth", coalesce.Options{DepthConstraint: true}},
		{"opt", coalesce.Options{Mode: interference.Optimistic}},
		{"pess", coalesce.Options{Mode: interference.Pessimistic}},
	}
	cols := make([]string, len(variants))
	for i, v := range variants {
		cols[i] = v.name
	}
	return buildTable(
		"Table 5: weighted (5^depth) move count, variants of the algorithm",
		"full pipeline Lphi,ABI+C with the pinning-phi variant swapped",
		cols,
		func(s *workload.Suite, col string) (int64, error) {
			conf := pipeline.Configs[pipeline.ExpLphiABIC]
			for _, v := range variants {
				if v.name == col {
					conf.Coalesce = v.opt
				}
			}
			return runConf(s, conf, pipeline.ExpLphiABIC+"/"+col, true, tr)
		})
}

// AllTables runs Tables 2-5 in order.
func AllTables() ([]*Table, error) { return AllTablesTraced(nil) }

// AllTablesTraced runs Tables 2-5 in order with a pipeline tracer
// attached to every experiment run.
func AllTablesTraced(tr obs.Tracer) ([]*Table, error) {
	var out []*Table
	for _, fn := range []func(obs.Tracer) (*Table, error){
		Table2Traced, Table3Traced, Table4Traced, Table5Traced,
	} {
		t, err := fn(tr)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
