package ssaopt_test

import (
	"testing"

	"outofssa/internal/ir"
	"outofssa/internal/ssa"
	"outofssa/internal/ssaopt"
	"outofssa/internal/testprog"
)

func TestCopyPropagation(t *testing.T) {
	bld := ir.NewBuilder("cp")
	bld.Block("entry")
	a, b, c, d := bld.Val("a"), bld.Val("b"), bld.Val("c"), bld.Val("d")
	bld.Input(a)
	bld.Copy(b, a)
	bld.Copy(c, b)
	bld.Unary(ir.Neg, d, c)
	bld.Output(d)

	info := ssa.EmptyInfo()
	st := ssaopt.Optimize(bld.Fn, info)
	if st.CopiesPropagated == 0 || st.DeadRemoved == 0 {
		t.Fatalf("stats: %+v", st)
	}
	if bld.Fn.CountMoves() != 0 {
		t.Fatalf("copies remain:\n%s", bld.Fn)
	}
	res, err := ir.Exec(bld.Fn, []int64{5}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] != -5 {
		t.Fatalf("semantics broken: %v", res.Outputs)
	}
}

func TestCopyPropagationSkipsPinnedAndProtected(t *testing.T) {
	bld := ir.NewBuilder("cp2")
	f := bld.Fn
	bld.Block("entry")
	a, b := bld.Val("a"), bld.Val("b")
	in := bld.Input(a)
	ir.PinDef(in, 0, f.Target.R[0])
	cp := bld.Copy(b, a)
	ir.PinDef(cp, 0, f.Target.R[1]) // pinned copy: must stay
	out := bld.Output(b)
	_ = out

	n := ssaopt.CopyPropagate(f, ssa.EmptyInfo())
	if n != 0 {
		t.Fatal("propagated through a pinned copy")
	}
}

func TestConstFold(t *testing.T) {
	bld := ir.NewBuilder("cf")
	bld.Block("entry")
	a, b, c := bld.Val("a"), bld.Val("b"), bld.Val("c")
	bld.Const(a, 6)
	bld.Const(b, 7)
	bld.Binary(ir.Mul, c, a, b)
	bld.Output(c)

	n := ssaopt.ConstFold(bld.Fn)
	if n != 1 {
		t.Fatalf("folded %d, want 1", n)
	}
	res, err := ir.Exec(bld.Fn, nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] != 42 {
		t.Fatalf("fold wrong: %v", res.Outputs)
	}
}

func TestLocalCSE(t *testing.T) {
	bld := ir.NewBuilder("cse")
	bld.Block("entry")
	a, b, x, y, s := bld.Val("a"), bld.Val("b"), bld.Val("x"), bld.Val("y"), bld.Val("s")
	bld.Input(a, b)
	bld.Binary(ir.Add, x, a, b)
	bld.Binary(ir.Add, y, a, b) // same expression
	bld.Binary(ir.Mul, s, x, y)
	bld.Output(s)

	n := ssaopt.LocalCSE(bld.Fn, ssa.EmptyInfo())
	if n != 1 {
		t.Fatalf("CSE hits = %d, want 1", n)
	}
	res, err := ir.Exec(bld.Fn, []int64{3, 4}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] != 49 {
		t.Fatalf("CSE broke semantics: %v", res.Outputs)
	}
}

func TestDCE(t *testing.T) {
	bld := ir.NewBuilder("dce")
	bld.Block("entry")
	a, dead1, dead2, r := bld.Val("a"), bld.Val("d1"), bld.Val("d2"), bld.Val("r")
	bld.Input(a)
	bld.Const(dead1, 1)
	bld.Binary(ir.Add, dead2, dead1, a) // transitively dead
	bld.Unary(ir.Neg, r, a)
	bld.Output(r)

	n := ssaopt.EliminateDeadCode(bld.Fn)
	if n != 2 {
		t.Fatalf("removed %d, want 2", n)
	}
}

func TestDCEKeepsStoresAndCalls(t *testing.T) {
	bld := ir.NewBuilder("dcekeep")
	bld.Block("entry")
	a, d := bld.Val("a"), bld.Val("d")
	bld.Input(a)
	bld.Store(a, a)
	bld.Call("f", []ir.ValueID{d}, a) // result unused but call has effects
	bld.Output(a)

	n := ssaopt.EliminateDeadCode(bld.Fn)
	if n != 0 {
		t.Fatal("removed an effectful instruction")
	}
}

func TestOptimizePreservesSemantics(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		ref := testprog.Rand(seed, testprog.DefaultRandOptions())
		args := []int64{seed, 21, seed % 4}
		want, err := ir.Exec(ref, args, 500000)
		if err != nil {
			t.Fatal(err)
		}
		f := testprog.Rand(seed, testprog.DefaultRandOptions())
		info := ssa.MustBuild(f)
		ssaopt.Optimize(f, info)
		if err := ssa.Verify(f); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got, err := ir.Exec(f, args, 1000000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !want.Equal(got) {
			t.Fatalf("seed %d: optimization changed behaviour", seed)
		}
	}
}

func TestOptimizeProtectsSPWeb(t *testing.T) {
	f := testprog.WithCallsAndStack()
	info := ssa.MustBuild(f)
	ssaopt.Optimize(f, info)
	// The SP-derived values must still be present (not propagated away).
	found := false
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			for _, o := range append(append([]ir.Operand{}, in.Defs()...), in.Uses()...) {
				if info.OrigPhys(o.Val) == f.Target.SP {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("SP web vanished under optimization")
	}
}
