// Package ssaopt provides the SSA optimizations the paper's toolchain
// (the LAO) runs before the out-of-SSA translation: copy propagation,
// constant folding, local value numbering and dead-code elimination.
// They matter to the evaluation for two reasons: they create the
// coalescing opportunities (value numbering merges copies into φ webs)
// and they must be careful around dedicated registers (paper §2.2 —
// propagating through an SP-pinned web produces incorrect pinned code,
// Fig. 2).
package ssaopt

import (
	"fmt"

	"outofssa/internal/ir"
	"outofssa/internal/ssa"
)

// Stats summarizes an optimization run.
type Stats struct {
	CopiesPropagated int
	ConstantsFolded  int
	CSEHits          int
	DeadRemoved      int
	Rounds           int
}

// Optimize runs the pass bundle to a fixed point on SSA form. info is
// used to avoid touching webs of dedicated registers.
func Optimize(f *ir.Func, info *ssa.Info) *Stats {
	st := &Stats{}
	for {
		st.Rounds++
		n := CopyPropagate(f, info)
		st.CopiesPropagated += n
		c := ConstFold(f)
		c += FoldSelects(f)
		st.ConstantsFolded += c
		v := LocalCSE(f, info)
		st.CSEHits += v
		d := EliminateDeadCode(f)
		st.DeadRemoved += d
		if n+c+v+d == 0 {
			return st
		}
	}
}

// protected reports whether v belongs to a dedicated-register web or is
// itself physical: such values are never propagated or merged, per the
// paper's correctness discussion (§2.2).
func protected(v *ir.Value, info *ssa.Info) bool {
	if v.IsPhys() {
		return true
	}
	return info != nil && info.OrigPhys(v) != nil
}

// CopyPropagate replaces uses of b with a for every copy b = a, when
// neither side is pinned or protected. The copies themselves become dead
// and are collected by EliminateDeadCode. Returns the number of copies
// propagated.
func CopyPropagate(f *ir.Func, info *ssa.Info) int {
	repl := make(map[*ir.Value]*ir.Value)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.Copy {
				continue
			}
			d, s := in.Def(0), in.Use(0)
			if in.Defs[0].Pin != nil || in.Uses[0].Pin != nil {
				continue
			}
			if protected(d, info) || protected(s, info) {
				continue
			}
			repl[d] = s
		}
	}
	if len(repl) == 0 {
		return 0
	}
	resolve := func(v *ir.Value) *ir.Value {
		seen := 0
		for {
			w, ok := repl[v]
			if !ok {
				return v
			}
			v = w
			if seen++; seen > len(repl) {
				return v // defensive: cycles cannot occur in SSA copies
			}
		}
	}
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i := range in.Uses {
				if w := resolve(in.Uses[i].Val); w != in.Uses[i].Val {
					in.Uses[i].Val = w
					n++
				}
			}
		}
	}
	if n > 0 {
		f.NoteMutation() // use operands rewritten in place
	}
	return n
}

// ConstFold evaluates arithmetic over constant operands, rewriting the
// instruction into a Const. Returns the number of folds.
func ConstFold(f *ir.Func) int {
	constOf := make(map[*ir.Value]int64)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.Const {
				constOf[in.Def(0)] = in.Imm
			}
		}
	}
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if len(in.Defs) != 1 || in.Defs[0].Pin != nil {
				continue
			}
			v, ok := foldable(in, constOf)
			if !ok {
				continue
			}
			in.Op = ir.Const
			in.Uses = nil
			in.Imm = v
			constOf[in.Def(0)] = v
			n++
		}
	}
	if n > 0 {
		f.NoteMutation() // instructions rewritten into Consts in place
	}
	return n
}

func foldable(in *ir.Instr, constOf map[*ir.Value]int64) (int64, bool) {
	arg := func(i int) (int64, bool) {
		if in.Uses[i].Pin != nil {
			return 0, false
		}
		v, ok := constOf[in.Uses[i].Val]
		return v, ok
	}
	bin := func(fn func(a, b int64) int64) (int64, bool) {
		a, ok := arg(0)
		if !ok {
			return 0, false
		}
		b, ok := arg(1)
		if !ok {
			return 0, false
		}
		return fn(a, b), true
	}
	switch in.Op {
	case ir.Add:
		return bin(func(a, b int64) int64 { return a + b })
	case ir.Sub:
		return bin(func(a, b int64) int64 { return a - b })
	case ir.Mul:
		return bin(func(a, b int64) int64 { return a * b })
	case ir.And:
		return bin(func(a, b int64) int64 { return a & b })
	case ir.Or:
		return bin(func(a, b int64) int64 { return a | b })
	case ir.Xor:
		return bin(func(a, b int64) int64 { return a ^ b })
	case ir.CmpLT:
		return bin(func(a, b int64) int64 {
			if a < b {
				return 1
			}
			return 0
		})
	case ir.Neg:
		a, ok := arg(0)
		if !ok {
			return 0, false
		}
		return -a, true
	}
	return 0, false
}

// FoldSelects rewrites select instructions whose condition is a known
// constant into copies (the ψ-conventional lowering seeds its chains
// with constant-true predicates). Returns the number of folds.
func FoldSelects(f *ir.Func) int {
	constOf := make(map[*ir.Value]int64)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.Const {
				constOf[in.Def(0)] = in.Imm
			}
		}
	}
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.Select || in.Defs[0].Pin != nil {
				continue
			}
			if in.Uses[0].Pin != nil || in.Uses[1].Pin != nil || in.Uses[2].Pin != nil {
				continue
			}
			c, ok := constOf[in.Use(0)]
			if !ok {
				continue
			}
			src := in.Uses[1]
			if c == 0 {
				src = in.Uses[2]
			}
			in.Op = ir.Copy
			in.Uses = []ir.Operand{src}
			n++
		}
	}
	if n > 0 {
		f.NoteMutation() // selects rewritten into copies in place
	}
	return n
}

// LocalCSE performs local value numbering within each block: a pure
// instruction computing an expression already computed in the block is
// replaced by a copy of the earlier result (which copy propagation then
// dissolves). Returns the number of replacements.
func LocalCSE(f *ir.Func, info *ssa.Info) int {
	n := 0
	for _, b := range f.Blocks {
		avail := make(map[string]*ir.Value)
		for _, in := range b.Instrs {
			if !pureOp(in.Op) || len(in.Defs) != 1 {
				continue
			}
			if in.Defs[0].Pin != nil || protected(in.Def(0), info) {
				continue
			}
			pinned := false
			for _, u := range in.Uses {
				if u.Pin != nil {
					pinned = true
				}
			}
			if pinned {
				continue
			}
			key := exprKey(in)
			if prev, ok := avail[key]; ok {
				in.Op = ir.Copy
				in.Uses = []ir.Operand{{Val: prev}}
				in.Imm = 0
				n++
				continue
			}
			avail[key] = in.Def(0)
		}
	}
	if n > 0 {
		f.NoteMutation() // instructions rewritten into copies in place
	}
	return n
}

func pureOp(op ir.Op) bool {
	switch op {
	case ir.Const, ir.Make, ir.Add, ir.Sub, ir.Mul, ir.Div, ir.Rem,
		ir.And, ir.Or, ir.Xor, ir.Shl, ir.Shr, ir.Neg, ir.Not,
		ir.CmpEQ, ir.CmpNE, ir.CmpLT, ir.CmpLE, ir.CmpGT, ir.CmpGE,
		ir.Min, ir.Max, ir.Select:
		return true
	}
	return false
}

func exprKey(in *ir.Instr) string {
	key := fmt.Sprintf("%d:%d", in.Op, in.Imm)
	for _, u := range in.Uses {
		key += fmt.Sprintf(":%d", u.Val.ID)
	}
	return key
}

// EliminateDeadCode removes pure instructions whose results are unused
// (including φs), iterating until stable. Returns the number of removed
// instructions.
func EliminateDeadCode(f *ir.Func) int {
	removed := 0
	for {
		used := make(map[*ir.Value]bool)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				for _, u := range in.Uses {
					used[u.Val] = true
				}
			}
		}
		n := 0
		for _, b := range f.Blocks {
			for idx := 0; idx < len(b.Instrs); idx++ {
				in := b.Instrs[idx]
				if !removable(in) {
					continue
				}
				live := false
				for _, d := range in.Defs {
					if used[d.Val] || d.Pin != nil {
						live = true
						break
					}
				}
				if live {
					continue
				}
				b.RemoveAt(idx)
				idx--
				n++
			}
		}
		removed += n
		if n == 0 {
			return removed
		}
	}
}

func removable(in *ir.Instr) bool {
	if in.Op == ir.Phi || in.Op == ir.Copy {
		return true
	}
	return pureOp(in.Op)
}
