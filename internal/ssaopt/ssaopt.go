// Package ssaopt provides the SSA optimizations the paper's toolchain
// (the LAO) runs before the out-of-SSA translation: copy propagation,
// constant folding, local value numbering and dead-code elimination.
// They matter to the evaluation for two reasons: they create the
// coalescing opportunities (value numbering merges copies into φ webs)
// and they must be careful around dedicated registers (paper §2.2 —
// propagating through an SP-pinned web produces incorrect pinned code,
// Fig. 2).
package ssaopt

import (
	"fmt"

	"outofssa/internal/ir"
	"outofssa/internal/ssa"
)

// Stats summarizes an optimization run.
type Stats struct {
	CopiesPropagated int
	ConstantsFolded  int
	CSEHits          int
	DeadRemoved      int
	Rounds           int
}

// Optimize runs the pass bundle to a fixed point on SSA form. info is
// used to avoid touching webs of dedicated registers.
func Optimize(f *ir.Func, info *ssa.Info) *Stats {
	st := &Stats{}
	for {
		st.Rounds++
		n := CopyPropagate(f, info)
		st.CopiesPropagated += n
		c := ConstFold(f)
		c += FoldSelects(f)
		st.ConstantsFolded += c
		v := LocalCSE(f, info)
		st.CSEHits += v
		d := EliminateDeadCode(f)
		st.DeadRemoved += d
		if n+c+v+d == 0 {
			return st
		}
	}
}

// protected reports whether v belongs to a dedicated-register web or is
// itself physical: such values are never propagated or merged, per the
// paper's correctness discussion (§2.2).
func protected(f *ir.Func, v ir.ValueID, info *ssa.Info) bool {
	if f.IsPhys(v) {
		return true
	}
	return info != nil && info.OrigPhys(v) != ir.NoValue
}

// CopyPropagate replaces uses of b with a for every copy b = a, when
// neither side is pinned or protected. The copies themselves become dead
// and are collected by EliminateDeadCode. Returns the number of copies
// propagated.
func CopyPropagate(f *ir.Func, info *ssa.Info) int {
	repl := make(map[ir.ValueID]ir.ValueID)
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			if in.Op() != ir.Copy {
				continue
			}
			d, s := in.Def(0), in.Use(0)
			if in.DefOp(0).Pinned() || in.UseOp(0).Pinned() {
				continue
			}
			if protected(f, d, info) || protected(f, s, info) {
				continue
			}
			repl[d] = s
		}
	}
	if len(repl) == 0 {
		return 0
	}
	resolve := func(v ir.ValueID) ir.ValueID {
		seen := 0
		for {
			w, ok := repl[v]
			if !ok {
				return v
			}
			v = w
			if seen++; seen > len(repl) {
				return v // defensive: cycles cannot occur in SSA copies
			}
		}
	}
	n := 0
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			for i := 0; i < in.NumUses(); i++ {
				if w := resolve(in.Use(i)); w != in.Use(i) {
					in.SetUseVal(i, w)
					n++
				}
			}
		}
	}
	return n
}

// ConstFold evaluates arithmetic over constant operands, rewriting the
// instruction into a Const. Returns the number of folds.
func ConstFold(f *ir.Func) int {
	constOf := make(map[ir.ValueID]int64)
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			if in.Op() == ir.Const {
				constOf[in.Def(0)] = in.Imm
			}
		}
	}
	n := 0
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			if in.NumDefs() != 1 || in.DefOp(0).Pinned() {
				continue
			}
			v, ok := foldable(in, constOf)
			if !ok {
				continue
			}
			in.SetOp(ir.Const)
			in.SetOperands([]ir.Operand{in.DefOp(0)}, nil)
			in.Imm = v
			constOf[in.Def(0)] = v
			n++
		}
	}
	return n
}

func foldable(in *ir.Instr, constOf map[ir.ValueID]int64) (int64, bool) {
	arg := func(i int) (int64, bool) {
		if in.UseOp(i).Pinned() {
			return 0, false
		}
		v, ok := constOf[in.Use(i)]
		return v, ok
	}
	bin := func(fn func(a, b int64) int64) (int64, bool) {
		a, ok := arg(0)
		if !ok {
			return 0, false
		}
		b, ok := arg(1)
		if !ok {
			return 0, false
		}
		return fn(a, b), true
	}
	switch in.Op() {
	case ir.Add:
		return bin(func(a, b int64) int64 { return a + b })
	case ir.Sub:
		return bin(func(a, b int64) int64 { return a - b })
	case ir.Mul:
		return bin(func(a, b int64) int64 { return a * b })
	case ir.And:
		return bin(func(a, b int64) int64 { return a & b })
	case ir.Or:
		return bin(func(a, b int64) int64 { return a | b })
	case ir.Xor:
		return bin(func(a, b int64) int64 { return a ^ b })
	case ir.CmpLT:
		return bin(func(a, b int64) int64 {
			if a < b {
				return 1
			}
			return 0
		})
	case ir.Neg:
		a, ok := arg(0)
		if !ok {
			return 0, false
		}
		return -a, true
	}
	return 0, false
}

// FoldSelects rewrites select instructions whose condition is a known
// constant into copies (the ψ-conventional lowering seeds its chains
// with constant-true predicates). Returns the number of folds.
func FoldSelects(f *ir.Func) int {
	constOf := make(map[ir.ValueID]int64)
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			if in.Op() == ir.Const {
				constOf[in.Def(0)] = in.Imm
			}
		}
	}
	n := 0
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			if in.Op() != ir.Select || in.DefOp(0).Pinned() {
				continue
			}
			if in.UseOp(0).Pinned() || in.UseOp(1).Pinned() || in.UseOp(2).Pinned() {
				continue
			}
			c, ok := constOf[in.Use(0)]
			if !ok {
				continue
			}
			src := in.UseOp(1)
			if c == 0 {
				src = in.UseOp(2)
			}
			in.SetOp(ir.Copy)
			in.SetOperands([]ir.Operand{in.DefOp(0)}, []ir.Operand{src})
			n++
		}
	}
	return n
}

// LocalCSE performs local value numbering within each block: a pure
// instruction computing an expression already computed in the block is
// replaced by a copy of the earlier result (which copy propagation then
// dissolves). Returns the number of replacements.
func LocalCSE(f *ir.Func, info *ssa.Info) int {
	n := 0
	for _, b := range f.Blocks() {
		avail := make(map[string]ir.ValueID)
		for _, in := range b.Instrs() {
			if !pureOp(in.Op()) || in.NumDefs() != 1 {
				continue
			}
			if in.DefOp(0).Pinned() || protected(f, in.Def(0), info) {
				continue
			}
			pinned := false
			for _, u := range in.Uses() {
				if u.Pinned() {
					pinned = true
				}
			}
			if pinned {
				continue
			}
			key := exprKey(in)
			if prev, ok := avail[key]; ok {
				in.SetOp(ir.Copy)
				in.SetOperands([]ir.Operand{in.DefOp(0)}, []ir.Operand{{Val: prev}})
				in.Imm = 0
				n++
				continue
			}
			avail[key] = in.Def(0)
		}
	}
	return n
}

func pureOp(op ir.Op) bool {
	switch op {
	case ir.Const, ir.Make, ir.Add, ir.Sub, ir.Mul, ir.Div, ir.Rem,
		ir.And, ir.Or, ir.Xor, ir.Shl, ir.Shr, ir.Neg, ir.Not,
		ir.CmpEQ, ir.CmpNE, ir.CmpLT, ir.CmpLE, ir.CmpGT, ir.CmpGE,
		ir.Min, ir.Max, ir.Select:
		return true
	}
	return false
}

func exprKey(in *ir.Instr) string {
	key := fmt.Sprintf("%d:%d", in.Op(), in.Imm)
	for _, u := range in.Uses() {
		key += fmt.Sprintf(":%d", int32(u.Val))
	}
	return key
}

// EliminateDeadCode removes pure instructions whose results are unused
// (including φs), iterating until stable. Returns the number of removed
// instructions.
func EliminateDeadCode(f *ir.Func) int {
	removed := 0
	for {
		used := make(map[ir.ValueID]bool)
		for _, b := range f.Blocks() {
			for _, in := range b.Instrs() {
				for _, u := range in.Uses() {
					used[u.Val] = true
				}
			}
		}
		n := 0
		for _, b := range f.Blocks() {
			for idx := 0; idx < b.NumInstrs(); idx++ {
				in := b.Instr(idx)
				if !removable(in) {
					continue
				}
				live := false
				for _, d := range in.Defs() {
					if used[d.Val] || d.Pinned() {
						live = true
						break
					}
				}
				if live {
					continue
				}
				b.RemoveAt(idx)
				idx--
				n++
			}
		}
		removed += n
		if n == 0 {
			return removed
		}
	}
}

func removable(in *ir.Instr) bool {
	if in.Op() == ir.Phi || in.Op() == ir.Copy {
		return true
	}
	return pureOp(in.Op())
}
