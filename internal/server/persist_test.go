package server

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"outofssa/internal/cachestore"
	"outofssa/internal/ir"
	"outofssa/internal/obs/metrics"
	"outofssa/internal/testprog"
	"outofssa/internal/workload"
)

// runPersistServer starts a server whose shutdown the test controls —
// restart tests must drain (flushing the store) before reopening the
// same directory.
func runPersistServer(t *testing.T, conf Config) (*httptest.Server, *metrics.Registry, func()) {
	t.Helper()
	reg := metrics.New()
	conf.Metrics = reg
	s, err := New(conf)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	hs := httptest.NewServer(s.Handler())
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	}
	t.Cleanup(stop)
	return hs, reg, stop
}

// segFiles lists the store's segment files under dir.
func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "seg-*.laoc"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no segment files in %s (err=%v)", dir, err)
	}
	return matches
}

// TestWarmStartServesIdentical is the restart contract: a killed and
// restarted daemon answers the same requests from its warmed caches —
// byte-identical output, every response a verified cache hit, zero
// recompilation, zero poisoned or corrupt records.
func TestWarmStartServesIdentical(t *testing.T) {
	dir := t.TempDir()
	funcs := workload.SynthFuncs(24, 99)
	docs := make([][]byte, len(funcs))
	for i, f := range funcs {
		doc, err := ir.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		docs[i] = doc
	}

	hs1, _, stop1 := runPersistServer(t, Config{CacheDir: dir})
	cold := make([]string, len(funcs))
	for i, doc := range docs {
		rep := postCompile(t, hs1.URL, compileRequest{IR: doc})
		if rep.status != http.StatusOK {
			t.Fatalf("cold %d: status %d (%s)", i, rep.status, rep.errK)
		}
		cold[i] = rep.resp.Output
	}
	stop1()

	hs2, reg2, _ := runPersistServer(t, Config{CacheDir: dir})
	if warm := counterValue(reg2, MetricStoreWarm); warm != int64(2*len(funcs)) {
		t.Fatalf("warm-loaded %d records, want %d (one result + one decode master per function)", warm, 2*len(funcs))
	}
	if skipped := counterValue(reg2, MetricStoreWarmSkipped); skipped != 0 {
		t.Fatalf("warm start skipped %d records, want 0", skipped)
	}
	for i, doc := range docs {
		rep := postCompile(t, hs2.URL, compileRequest{IR: doc})
		if rep.status != http.StatusOK {
			t.Fatalf("warm %d: status %d (%s)", i, rep.status, rep.errK)
		}
		if !rep.resp.Cached {
			t.Fatalf("warm %d: response not served from cache after restart", i)
		}
		if rep.resp.Output != cold[i] {
			t.Fatalf("warm %d: output differs from pre-restart response", i)
		}
	}
	if miss := counterValue(reg2, MetricCacheMisses); miss != 0 {
		t.Fatalf("%d result-cache misses after warm start, want 0", miss)
	}
	if miss := counterValue(reg2, MetricDecodeMisses); miss != 0 {
		t.Fatalf("%d decode-cache misses after warm start, want 0", miss)
	}
	if poison := counterValue(reg2, MetricCachePoison); poison != 0 {
		t.Fatalf("%d poisoned entries after warm start, want 0", poison)
	}
	if corrupt := counterValue(reg2, MetricStoreCorrupt); corrupt != 0 {
		t.Fatalf("store reported %d corrupt records on a clean restart, want 0", corrupt)
	}
}

// TestWarmStartSkipsCorruptRecord flips a byte inside a stored record:
// the store's frame checksum catches it, the record is counted and
// skipped, and a re-request recompiles to the correct bytes — corrupt
// state on disk costs a recompilation, never a wrong answer.
func TestWarmStartSkipsCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	f := testprog.Rand(7, testprog.DefaultRandOptions())
	doc, err := ir.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}

	hs1, _, stop1 := runPersistServer(t, Config{CacheDir: dir})
	rep := postCompile(t, hs1.URL, compileRequest{IR: doc})
	if rep.status != http.StatusOK {
		t.Fatalf("cold: status %d (%s)", rep.status, rep.errK)
	}
	want := rep.resp.Output
	stop1()

	// Flip one byte near the end of the newest non-empty segment — that
	// lands in the result record's payload or checksum.
	var target string
	for _, p := range segFiles(t, dir) {
		if fi, err := os.Stat(p); err == nil && fi.Size() > 0 {
			target = p
		}
	}
	data, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-12] ^= 0x55
	if err := os.WriteFile(target, data, 0o666); err != nil {
		t.Fatal(err)
	}

	hs2, reg2, _ := runPersistServer(t, Config{CacheDir: dir})
	if corrupt := counterValue(reg2, MetricStoreCorrupt); corrupt < 1 {
		t.Fatalf("store counted %d corrupt records, want >= 1", corrupt)
	}
	rep = postCompile(t, hs2.URL, compileRequest{IR: doc})
	if rep.status != http.StatusOK {
		t.Fatalf("after corruption: status %d (%s)", rep.status, rep.errK)
	}
	if rep.resp.Output != want {
		t.Fatal("post-corruption response differs from the original compile")
	}
	if poison := counterValue(reg2, MetricCachePoison); poison != 0 {
		t.Fatalf("%d poisoned serves detected, want 0 — corrupt records must never reach the cache", poison)
	}
}

// TestWarmStartSkipsUndecodableDecodeRecord hand-writes a decode
// record whose payload passes the store's frame checksum but is not a
// valid b1 document: the warm scan must skip and count it, not intern
// garbage.
func TestWarmStartSkipsUndecodableDecodeRecord(t *testing.T) {
	dir := t.TempDir()
	hs1, _, stop1 := runPersistServer(t, Config{CacheDir: dir})
	rep := postCompile(t, hs1.URL, compileRequest{LAI: srcSimple})
	if rep.status != http.StatusOK {
		t.Fatalf("cold: status %d (%s)", rep.status, rep.errK)
	}
	stop1()

	// Rewrite the newest segment's decode record... simpler: append a
	// fresh well-framed KindDecode record with a garbage payload via the
	// store itself.
	appendGarbageDecodeRecord(t, dir)

	_, reg2, _ := runPersistServer(t, Config{CacheDir: dir})
	if skipped := counterValue(reg2, MetricStoreWarmSkipped); skipped != 1 {
		t.Fatalf("warm start skipped %d records, want 1 (the garbage decode payload)", skipped)
	}
	if poison := counterValue(reg2, MetricCachePoison); poison != 0 {
		t.Fatalf("%d poisoned serves, want 0", poison)
	}
}

// appendGarbageDecodeRecord writes a well-framed KindDecode record
// whose payload is not a valid IR document — the store will happily
// persist and replay it; the server's warm scan is what must reject it.
func appendGarbageDecodeRecord(t *testing.T, dir string) {
	t.Helper()
	st, err := cachestore.Open(dir, cachestore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st.Put(&cachestore.Record{Kind: cachestore.KindDecode, Key: 0xDEAD, Payload: []byte("not an ir document")})
	st.Flush()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWarmStartTornTail simulates a crash mid-append: garbage bytes on
// the newest segment's tail are truncated at recovery and the intact
// records still warm the caches.
func TestWarmStartTornTail(t *testing.T) {
	dir := t.TempDir()
	f := testprog.Rand(11, testprog.DefaultRandOptions())
	doc, err := ir.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}

	hs1, _, stop1 := runPersistServer(t, Config{CacheDir: dir})
	rep := postCompile(t, hs1.URL, compileRequest{IR: doc})
	if rep.status != http.StatusOK {
		t.Fatalf("cold: status %d (%s)", rep.status, rep.errK)
	}
	want := rep.resp.Output
	stop1()

	var target string
	for _, p := range segFiles(t, dir) {
		if fi, err := os.Stat(p); err == nil && fi.Size() > 0 {
			target = p
		}
	}
	fh, err := os.OpenFile(target, os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		t.Fatal(err)
	}
	fh.Write(bytes.Repeat([]byte{0xAB}, 100))
	fh.Close()

	hs2, reg2, _ := runPersistServer(t, Config{CacheDir: dir})
	if trunc := counterValue(reg2, MetricStoreTruncated); trunc != 100 {
		t.Fatalf("recovery truncated %d bytes, want 100", trunc)
	}
	rep = postCompile(t, hs2.URL, compileRequest{IR: doc})
	if rep.status != http.StatusOK || !rep.resp.Cached {
		t.Fatalf("after torn-tail recovery: status %d cached=%v, want a warm hit", rep.status, rep.resp.Cached)
	}
	if rep.resp.Output != want {
		t.Fatal("post-recovery response differs from the original compile")
	}
}

// TestB1Negotiation pins the schema surface: the same function posted
// as a raw binary body, as a base64'd "ir" field, and as a v2 JSON
// document must compile to identical output; raw and base64 b1
// normalize to the same cache key, so the second b1 shape is a hit.
func TestB1Negotiation(t *testing.T) {
	_, hs, reg := startServer(t, Config{})
	f := testprog.Rand(3, testprog.DefaultRandOptions())
	b1, err := ir.MarshalBinary(f)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := ir.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}

	hr, err := http.Post(hs.URL+"/compile", "application/octet-stream", bytes.NewReader(b1))
	if err != nil {
		t.Fatal(err)
	}
	var rawResp compileResponse
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("raw b1 body: status %d", hr.StatusCode)
	}
	if err := json.NewDecoder(hr.Body).Decode(&rawResp); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if rawResp.Cached {
		t.Fatal("first b1 request reported cached")
	}

	quoted, _ := json.Marshal(base64.StdEncoding.EncodeToString(b1))
	rep := postCompile(t, hs.URL, compileRequest{IR: quoted})
	if rep.status != http.StatusOK {
		t.Fatalf("base64 b1: status %d (%s)", rep.status, rep.errK)
	}
	if !rep.resp.Cached {
		t.Fatal("base64 b1 of the same document missed the cache — raw and base64 must share keys")
	}
	if rep.resp.Output != rawResp.Output {
		t.Fatal("base64 and raw b1 outputs differ")
	}

	rep = postCompile(t, hs.URL, compileRequest{IR: v2})
	if rep.status != http.StatusOK {
		t.Fatalf("v2: status %d (%s)", rep.status, rep.errK)
	}
	if rep.resp.Output != rawResp.Output {
		t.Fatal("v2 and b1 outputs differ")
	}

	if miss := counterValue(reg, MetricDecodeMisses); miss != 2 {
		t.Fatalf("decode misses = %d, want 2 (one per distinct content: b1 bytes, v2 bytes)", miss)
	}

	// A truncated binary body must be a 400, not a hang or a 500.
	hr, err = http.Post(hs.URL+"/compile", "application/octet-stream", bytes.NewReader(b1[:len(b1)-3]))
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated b1 body: status %d, want 400", hr.StatusCode)
	}
}

// TestMixedSchemaDrive runs the workload generator's full schema
// rotation (v2, v1, base64 b1, raw b1) against one server: everything
// compiles, and every response for the same source function is
// byte-identical regardless of wire schema.
func TestMixedSchemaDrive(t *testing.T) {
	s, _, _ := startServer(t, Config{Workers: 4, QueueDepth: 256})
	const n, distinct = 64, 8
	funcs := workload.SynthPool(n, distinct, 321)
	reqs, err := workload.MixedRequests(funcs, 10_000, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	outcomes := make([]int, n)
	outputs := make([]string, n)
	rep := workload.Drive("http://laocd.mixed", reqs, workload.DriveOptions{
		Concurrency: 4,
		Client:      &http.Client{Transport: handlerTransport{h: s.Handler()}},
	}, outcomes, outputs)
	if rep.OK != n {
		t.Fatalf("mixed drive: %d/%d OK (report %s)", rep.OK, n, rep.String())
	}
	want := make(map[*ir.Func]string, distinct)
	for i, f := range funcs {
		if outcomes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, outcomes[i])
		}
		if prev, ok := want[f]; !ok {
			want[f] = outputs[i]
		} else if outputs[i] != prev {
			t.Fatalf("request %d: output differs across wire schemas for the same function", i)
		}
	}
}
