// The result cache: content hash → translated function, with a
// self-checking twist. A compilation service that caches wrong code
// amplifies one bad translation into millions of bad responses, so
// every entry stores the FNV-64a checksum of its code bytes taken at
// insert time, and every read re-hashes the stored bytes before
// serving them. An entry whose bytes no longer match its checksum —
// torn write, bit rot, or the deliberate faultinject.InjectCachePoison
// — is counted, evicted and recompiled, never served.
//
// The LRU mechanics live in the shared lru type; this file keeps only
// the result-specific rules (the checksum discipline and the tamper
// test seam).
package server

import "hash/fnv"

// cacheEntry is one cached translation. code is the rendered LAI text
// of the translated function; the small result counters ride along so
// a hit reproduces the full response.
type cacheEntry struct {
	code     []byte
	checksum uint64 // fnvSum(code) at insert time
	name     string
	moves    int
	instrs   int
	fellBack bool
	degraded bool
}

// fnvSum is the checksum used for both cache keys (over request
// content) and entry integrity (over result code).
func fnvSum(parts ...[]byte) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write(p)
	}
	return h.Sum64()
}

// cache is a fixed-capacity LRU keyed by content hash. All methods are
// safe for concurrent use. Lookups verify entry integrity; get never
// returns bytes that fail their checksum.
type cache struct {
	lru *lru[*cacheEntry]
}

func newCache(capacity int) *cache {
	return &cache{lru: newLRU(capacity, func(e *cacheEntry) bool {
		return fnvSum(e.code) == e.checksum
	}, nil)}
}

// get returns the entry for key after re-verifying its checksum.
// poisoned reports an entry that existed but failed verification; it
// has already been evicted when get returns.
func (c *cache) get(key uint64) (e *cacheEntry, ok, poisoned bool) {
	return c.lru.get(key)
}

// put inserts (or replaces) the entry for key, evicting the least
// recently used entry beyond capacity.
func (c *cache) put(key uint64, e *cacheEntry) {
	e.checksum = fnvSum(e.code)
	c.lru.put(key, e)
}

// contains reports residency without touching recency — the store's
// compaction liveness probe.
func (c *cache) contains(key uint64) bool {
	return c.lru.contains(key)
}

// len reports the live entry count.
func (c *cache) len() int {
	return c.lru.len()
}

// tamper applies mutate to the stored code bytes of every entry until
// mutate reports success, and returns whether any entry was mutated.
// It deliberately does not touch the stored checksum — that is the
// point: it models an entry corrupted after insert, which the next get
// must detect. Test seam only (the fault-injection tests drive it with
// faultinject.InjectCachePoison); production code never calls it.
func (c *cache) tamper(mutate func([]byte) bool) bool {
	return c.lru.each(func(_ uint64, e *cacheEntry) bool {
		return mutate(e.code)
	})
}
