// The result cache: content hash → translated function, with a
// self-checking twist. A compilation service that caches wrong code
// amplifies one bad translation into millions of bad responses, so
// every entry stores the FNV-64a checksum of its code bytes taken at
// insert time, and every read re-hashes the stored bytes before
// serving them. An entry whose bytes no longer match its checksum —
// torn write, bit rot, or the deliberate faultinject.InjectCachePoison
// — is counted, evicted and recompiled, never served.
package server

import (
	"container/list"
	"hash/fnv"
	"sync"
)

// cacheEntry is one cached translation. code is the rendered LAI text
// of the translated function; the small result counters ride along so
// a hit reproduces the full response.
type cacheEntry struct {
	key      uint64
	code     []byte
	checksum uint64 // fnvSum(code) at insert time
	name     string
	moves    int
	instrs   int
	fellBack bool
	degraded bool
	elem     *list.Element
}

// fnvSum is the checksum used for both cache keys (over request
// content) and entry integrity (over result code).
func fnvSum(parts ...[]byte) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write(p)
	}
	return h.Sum64()
}

// cache is a fixed-capacity LRU keyed by content hash. All methods are
// safe for concurrent use. Lookups verify entry integrity; Get never
// returns bytes that fail their checksum.
type cache struct {
	mu      sync.Mutex
	cap     int
	entries map[uint64]*cacheEntry
	lru     *list.List // front = most recent; values are *cacheEntry
}

func newCache(capacity int) *cache {
	if capacity <= 0 {
		capacity = 1024
	}
	return &cache{
		cap:     capacity,
		entries: make(map[uint64]*cacheEntry, capacity),
		lru:     list.New(),
	}
}

// get returns the entry for key after re-verifying its checksum.
// poisoned reports an entry that existed but failed verification; it
// has already been evicted when get returns.
func (c *cache) get(key uint64) (e *cacheEntry, ok, poisoned bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok = c.entries[key]
	if !ok {
		return nil, false, false
	}
	if fnvSum(e.code) != e.checksum {
		c.removeLocked(e)
		return nil, false, true
	}
	c.lru.MoveToFront(e.elem)
	return e, true, false
}

// put inserts (or replaces) the entry for key, evicting the least
// recently used entry beyond capacity.
func (c *cache) put(key uint64, e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.entries[key]; ok {
		c.removeLocked(old)
	}
	e.key = key
	e.checksum = fnvSum(e.code)
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	for c.lru.Len() > c.cap {
		c.removeLocked(c.lru.Back().Value.(*cacheEntry))
	}
}

func (c *cache) removeLocked(e *cacheEntry) {
	delete(c.entries, e.key)
	c.lru.Remove(e.elem)
}

// len reports the live entry count.
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// tamper applies mutate to the stored code bytes of every entry until
// mutate reports success, and returns whether any entry was mutated.
// It deliberately does not touch the stored checksum — that is the
// point: it models an entry corrupted after insert, which the next get
// must detect. Test seam only (the fault-injection tests drive it with
// faultinject.InjectCachePoison); production code never calls it.
func (c *cache) tamper(mutate func([]byte) bool) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.lru.Front(); el != nil; el = el.Next() {
		if mutate(el.Value.(*cacheEntry).code) {
			return true
		}
	}
	return false
}
