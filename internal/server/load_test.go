package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"outofssa/internal/ir"
	"outofssa/internal/obs/metrics"
	"outofssa/internal/workload"
)

// handlerTransport short-circuits the HTTP client straight into the
// server's handler — no sockets, so the load test measures the
// service, not the loopback stack.
type handlerTransport struct{ h http.Handler }

func (t handlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	t.h.ServeHTTP(rec, req)
	return rec.Result(), nil
}

// TestSyntheticLoad100k drives 10⁵ synthetic compile requests through
// the service — the remaining piece of the ROADMAP's load-scale item.
// The stream cycles a bounded pool of distinct functions (the
// laocd -drive -distinct shape), so a correct service answers it with:
//
//   - every request 200 OK — no sheds, deadlines, or fallbacks;
//   - zero result-cache poisonings (checksum verification never fires);
//   - O(distinct) memory residency, not O(requests): the decode cache
//     interns each distinct function once as a frozen master, every
//     request compiles a released copy-on-write snapshot of it, and
//     the result cache is LRU-capped — so 100k requests must not grow
//     the heap beyond a fixed bound;
//   - at most one decode-cache miss and one full compile per distinct
//     function (singleflight may retry, hence "at most" with slack on
//     the cached count, not an exact equality).
//
// Skipped under -short: the full run is ~100k round trips.
func TestSyntheticLoad100k(t *testing.T) {
	if testing.Short() {
		t.Skip("10^5-request load test skipped in -short mode")
	}
	const (
		n        = 100_000
		distinct = 512
	)
	reg := metrics.New()
	s, err := New(Config{
		Workers:      4,
		QueueDepth:   64,
		CacheEntries: 2 * distinct,
		Metrics:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	}()

	funcs := workload.SynthPool(n, distinct, 4242)
	reqs, err := workload.PooledRequests(funcs, n, 30_000)
	if err != nil {
		t.Fatal(err)
	}

	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	irBefore := ir.Stats()

	rep := workload.Drive("http://laocd.load", reqs, workload.DriveOptions{
		Concurrency: 8,
		Client:      &http.Client{Transport: handlerTransport{h: s.Handler()}},
	}, nil, nil)

	irAfter := ir.Stats()
	runtime.GC()
	runtime.ReadMemStats(&ms1)

	t.Logf("drive: %s", rep.String())
	t.Logf("heap: %d -> %d bytes; snapshots +%d, materializations +%d",
		ms0.HeapAlloc, ms1.HeapAlloc,
		irAfter.Snapshots-irBefore.Snapshots,
		irAfter.COWMaterializations-irBefore.COWMaterializations)

	if rep.OK != n {
		t.Fatalf("want all %d requests OK, got %d (report %s)", n, rep.OK, rep.String())
	}
	if rep.FellBack != 0 || rep.Degraded != 0 {
		t.Fatalf("healthy load fell back %d / degraded %d times", rep.FellBack, rep.Degraded)
	}
	if got := counterValue(reg, MetricCachePoison); got != 0 {
		t.Fatalf("result cache reported %d poisonings, want 0", got)
	}
	// Result-cache hits must carry nearly the whole stream; 4× slack on
	// the distinct count absorbs singleflight and eviction timing.
	if rep.Cached < n-4*distinct {
		t.Fatalf("only %d/%d responses served from cache, want >= %d", rep.Cached, n, n-4*distinct)
	}
	// Each distinct function decodes at most once.
	if miss := counterValue(reg, MetricDecodeMisses); miss > distinct {
		t.Fatalf("%d decode-cache misses for %d distinct functions", miss, distinct)
	}
	// The COW path bounds the pipeline's copy work by the distinct pool,
	// not the request count: only jobs that actually compile materialize.
	if mats := irAfter.COWMaterializations - irBefore.COWMaterializations; mats > 4*distinct {
		t.Fatalf("%d COW materializations for %d distinct functions — snapshots are being copied per request", mats, distinct)
	}
	// Residency must track the distinct pool and the LRU caps. The bound
	// is deliberately loose (64 MiB for ~512 small functions) — it exists
	// to catch O(requests) growth, which would be gigabytes here.
	const heapBound = 64 << 20
	if grew := int64(ms1.HeapAlloc) - int64(ms0.HeapAlloc); grew > heapBound {
		t.Fatalf("heap grew %d bytes over %d requests, bound %d — residency is not O(distinct)", grew, n, heapBound)
	}
}
