package server

import (
	"net/http"
	"testing"
	"time"

	"outofssa/internal/ir"
	"outofssa/internal/obs/metrics"
	"outofssa/internal/workload"
)

// TestSuiteIdentityThroughServer keeps the Tables 1-5 byte-identity
// gate honest across the network: compiling every stats-suite function
// through the server path (raw-IR mode, both wire schemas) must yield
// exactly the output of pipeline.Run locally — cold, and again warm
// from the verified cache. Posting the v1 and v2 documents of one
// function exercises the schema negotiation: the server dispatches on
// the document's schema tag and both must land on identical output.
func TestSuiteIdentityThroughServer(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite identity run in -short mode")
	}
	reg := metrics.New()
	s, hs, _ := startServer(t, Config{
		Workers:         4,
		QueueDepth:      256,
		DefaultDeadline: 30 * time.Second,
		MaxDeadline:     30 * time.Second,
		CacheEntries:    1024,
		Metrics:         reg,
	})
	_ = s

	suites := []*workload.Suite{
		workload.VALcc1(), workload.VALcc2(), workload.Examples(),
		workload.LAILarge(), workload.SPECint(),
	}
	type wantRec struct {
		docV2  []byte
		docV1  []byte
		output string
		moves  int
	}
	var wants []wantRec
	for _, suite := range suites {
		for _, f := range suite.Funcs {
			docV2, err := ir.Marshal(f)
			if err != nil {
				t.Fatalf("%s/%s: %v", suite.Name, f.Name, err)
			}
			docV1, err := ir.MarshalV1(f)
			if err != nil {
				t.Fatalf("%s/%s: %v", suite.Name, f.Name, err)
			}
			out, res := localOutput(t, f.Clone(), s.conf.Experiment)
			wants = append(wants, wantRec{docV2: docV2, docV1: docV1, output: out, moves: res.Moves})
		}
	}

	passes := []struct {
		name       string
		wantCached bool
	}{{"cold", false}, {"warm", true}}
	for _, p := range passes {
		pass, wantCached := p.name, p.wantCached
		for i, w := range wants {
			for _, doc := range [][]byte{w.docV2, w.docV1} {
				rep := postCompile(t, hs.URL, compileRequest{IR: doc})
				if rep.status != http.StatusOK {
					t.Fatalf("%s pass, func %d: status %d (%s)", pass, i, rep.status, rep.errK)
				}
				if rep.resp.Output != w.output {
					t.Fatalf("%s pass, func %d (%s): server output differs from local pipeline.Run", pass, i, rep.resp.Name)
				}
				if rep.resp.Moves != w.moves {
					t.Fatalf("%s pass, func %d: moves %d != local %d", pass, i, rep.resp.Moves, w.moves)
				}
				if rep.resp.FellBack || rep.resp.Degraded {
					t.Fatalf("%s pass, func %d: unexpected flags %+v", pass, i, rep.resp)
				}
				if rep.resp.Cached != wantCached {
					t.Fatalf("%s pass, func %d: cached=%v, want %v", pass, i, rep.resp.Cached, wantCached)
				}
			}
		}
	}
	if hits := counterValue(reg, MetricCacheHits); hits != int64(2*len(wants)) {
		t.Fatalf("cache hits = %d, want %d (one per warm request, both schemas)", hits, 2*len(wants))
	}
}
