package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"outofssa/internal/ir"
	"outofssa/internal/obs/metrics"
	"outofssa/internal/workload"
)

// TestSuiteIdentityThroughServer keeps the Tables 1-5 byte-identity
// gate honest across the network: compiling every stats-suite function
// through the server path (raw-IR mode, all three wire schemas) must
// yield exactly the output of pipeline.Run locally — cold, and again
// warm from the verified cache. Posting the v1, v2 and binary b1
// documents of one function exercises the schema negotiation: the
// server dispatches on the document's schema (tag or magic) and all
// must land on identical output. The server runs with persistence on,
// so the identity gate also covers the write-behind path.
func TestSuiteIdentityThroughServer(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite identity run in -short mode")
	}
	reg := metrics.New()
	s, hs, _ := startServer(t, Config{
		Workers:         4,
		QueueDepth:      256,
		DefaultDeadline: 30 * time.Second,
		MaxDeadline:     30 * time.Second,
		CacheEntries:    4096,
		Metrics:         reg,
		CacheDir:        t.TempDir(),
	})
	_ = s

	suites := []*workload.Suite{
		workload.VALcc1(), workload.VALcc2(), workload.Examples(),
		workload.LAILarge(), workload.SPECint(),
	}
	type wantRec struct {
		docV2  []byte
		docV1  []byte
		docB1  []byte
		output string
		moves  int
	}
	var wants []wantRec
	for _, suite := range suites {
		for _, f := range suite.Funcs {
			docV2, err := ir.Marshal(f)
			if err != nil {
				t.Fatalf("%s/%s: %v", suite.Name, f.Name, err)
			}
			docV1, err := ir.MarshalV1(f)
			if err != nil {
				t.Fatalf("%s/%s: %v", suite.Name, f.Name, err)
			}
			docB1, err := ir.MarshalBinary(f)
			if err != nil {
				t.Fatalf("%s/%s: %v", suite.Name, f.Name, err)
			}
			out, res := localOutput(t, f.Clone(), s.conf.Experiment)
			wants = append(wants, wantRec{docV2: docV2, docV1: docV1, docB1: docB1, output: out, moves: res.Moves})
		}
	}

	passes := []struct {
		name       string
		wantCached bool
	}{{"cold", false}, {"warm", true}}
	for _, p := range passes {
		pass, wantCached := p.name, p.wantCached
		for i, w := range wants {
			for _, doc := range [][]byte{w.docV2, w.docV1, w.docB1} {
				var rep compileReply
				if ir.IsBinary(doc) {
					rep = postRawCompile(t, hs.URL, doc)
				} else {
					rep = postCompile(t, hs.URL, compileRequest{IR: doc})
				}
				if rep.status != http.StatusOK {
					t.Fatalf("%s pass, func %d: status %d (%s)", pass, i, rep.status, rep.errK)
				}
				if rep.resp.Output != w.output {
					t.Fatalf("%s pass, func %d (%s): server output differs from local pipeline.Run", pass, i, rep.resp.Name)
				}
				if rep.resp.Moves != w.moves {
					t.Fatalf("%s pass, func %d: moves %d != local %d", pass, i, rep.resp.Moves, w.moves)
				}
				if rep.resp.FellBack || rep.resp.Degraded {
					t.Fatalf("%s pass, func %d: unexpected flags %+v", pass, i, rep.resp)
				}
				if rep.resp.Cached != wantCached {
					t.Fatalf("%s pass, func %d: cached=%v, want %v", pass, i, rep.resp.Cached, wantCached)
				}
			}
		}
	}
	if hits := counterValue(reg, MetricCacheHits); hits != int64(3*len(wants)) {
		t.Fatalf("cache hits = %d, want %d (one per warm request, all three schemas)", hits, 3*len(wants))
	}
}

// postRawCompile posts a whole-body binary document (no JSON envelope).
func postRawCompile(t *testing.T, url string, doc []byte) compileReply {
	t.Helper()
	hr, err := http.Post(url+"/compile", "application/octet-stream", bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var rep compileReply
	rep.status = hr.StatusCode
	if hr.StatusCode == http.StatusOK {
		if err := json.NewDecoder(hr.Body).Decode(&rep.resp); err != nil {
			t.Fatal(err)
		}
		return rep
	}
	var env struct {
		Error *httpError `json:"error"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	rep.errK = env.Error.Kind
	return rep
}
