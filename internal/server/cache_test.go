package server

import (
	"fmt"
	"testing"

	"outofssa/internal/faultinject"
)

func entryFor(code string) *cacheEntry {
	return &cacheEntry{code: []byte(code), name: "f", moves: 1, instrs: 2}
}

func TestCacheHitAndMiss(t *testing.T) {
	c := newCache(4)
	if _, ok, poisoned := c.get(1); ok || poisoned {
		t.Fatal("empty cache must miss cleanly")
	}
	c.put(1, entryFor(".func f\n\tadd a, b\n.endfunc\n"))
	e, ok, _ := c.get(1)
	if !ok || string(e.code) != ".func f\n\tadd a, b\n.endfunc\n" {
		t.Fatalf("want verified hit, got ok=%v", ok)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newCache(3)
	for i := uint64(0); i < 3; i++ {
		c.put(i, entryFor(fmt.Sprintf("\tcode%d", i)))
	}
	c.get(0) // refresh 0; 1 is now least recent
	c.put(3, entryFor("\tcode3"))
	if _, ok, _ := c.get(1); ok {
		t.Fatal("want LRU entry 1 evicted")
	}
	for _, k := range []uint64{0, 2, 3} {
		if _, ok, _ := c.get(k); !ok {
			t.Fatalf("want entry %d retained", k)
		}
	}
	if n := c.len(); n != 3 {
		t.Fatalf("len = %d, want 3", n)
	}
}

// TestCachePoisonDetected is the cache-integrity contract: an entry
// mutated after insert (faultinject.InjectCachePoison) fails its
// checksum on the next read, is reported poisoned, evicted — and never
// returned.
func TestCachePoisonDetected(t *testing.T) {
	c := newCache(4)
	c.put(7, entryFor(".func f\n\tadd a, b\n.endfunc\n"))
	if !c.tamper(faultinject.InjectCachePoison) {
		t.Fatal("InjectCachePoison found no site")
	}
	e, ok, poisoned := c.get(7)
	if ok || e != nil {
		t.Fatal("poisoned entry must never be served")
	}
	if !poisoned {
		t.Fatal("poisoned entry must be reported as such")
	}
	if _, ok, _ := c.get(7); ok {
		t.Fatal("poisoned entry must have been evicted")
	}
	// Recompile path: a fresh put under the same key serves again.
	c.put(7, entryFor(".func f\n\tadd a, b\n.endfunc\n"))
	if _, ok, _ := c.get(7); !ok {
		t.Fatal("recompiled entry must serve")
	}
}

func TestInjectCachePoisonDeterministic(t *testing.T) {
	code := []byte(".func f\nbb0:\n\tadd a, b\n.endfunc\n")
	want := []byte(".func f\nbb0:\n\tAdd a, b\n.endfunc\n")
	if !faultinject.InjectCachePoison(code) {
		t.Fatal("no site found")
	}
	if string(code) != string(want) {
		t.Fatalf("got %q, want %q", code, want)
	}
	if faultinject.InjectCachePoison([]byte("no tabs here")) {
		t.Fatal("want no site without an instruction line")
	}
}
