package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"outofssa/internal/faultinject"
	"outofssa/internal/ir"
	"outofssa/internal/lai"
	"outofssa/internal/obs/metrics"
	"outofssa/internal/pipeline"
	"outofssa/internal/testprog"
)

const srcSimple = `
.func simple
.input A:R0, B:R1
entry:
    add     C, A, B
    mul     D, C, C
    ret     D
.endfunc
`

// startServer builds, starts and exposes a server over httptest; the
// cleanup drains it and fails the test if drain misbehaves.
func startServer(t *testing.T, conf Config) (*Server, *httptest.Server, *metrics.Registry) {
	t.Helper()
	if conf.Metrics == nil {
		conf.Metrics = metrics.New()
	}
	s, err := New(conf)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return s, hs, conf.Metrics
}

type compileReply struct {
	status int
	resp   compileResponse
	errK   string
}

func postCompile(t *testing.T, url string, body any) compileReply {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.Post(url+"/compile", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var rep compileReply
	rep.status = hr.StatusCode
	if hr.StatusCode == http.StatusOK {
		if err := json.NewDecoder(hr.Body).Decode(&rep.resp); err != nil {
			t.Fatal(err)
		}
		return rep
	}
	var env struct {
		Error *httpError `json:"error"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	rep.errK = env.Error.Kind
	return rep
}

// counterValue sums a counter family across labels.
func counterValue(reg *metrics.Registry, name string) int64 {
	var total int64
	for _, c := range reg.Snapshot().Counters {
		if c.Name == name {
			total += c.Value
		}
	}
	return total
}

// localOutput runs the server's exact configuration locally.
func localOutput(t *testing.T, f *ir.Func, exp string) (string, *pipeline.Result) {
	t.Helper()
	conf, err := pipeline.Preset(exp)
	if err != nil {
		t.Fatal(err)
	}
	conf.Verify, conf.Fallback = true, true
	res, err := pipeline.Run(f, conf)
	if err != nil {
		t.Fatal(err)
	}
	return f.String(), res
}

func TestCompileLAI(t *testing.T) {
	_, hs, reg := startServer(t, Config{})
	rep := postCompile(t, hs.URL, compileRequest{LAI: srcSimple})
	if rep.status != http.StatusOK {
		t.Fatalf("status %d (%s)", rep.status, rep.errK)
	}
	f, err := lai.Parse(srcSimple)
	if err != nil {
		t.Fatal(err)
	}
	want, res := localOutput(t, f, pipeline.ExpLphiABIC)
	if rep.resp.Output != want {
		t.Fatalf("server output differs from local pipeline:\n--- server ---\n%s--- local ---\n%s",
			rep.resp.Output, want)
	}
	if rep.resp.Moves != res.Moves || rep.resp.Instrs != res.Instrs {
		t.Fatalf("counters differ: %d/%d vs %d/%d", rep.resp.Moves, rep.resp.Instrs, res.Moves, res.Instrs)
	}
	if rep.resp.Cached || rep.resp.FellBack || rep.resp.Degraded {
		t.Fatalf("unexpected flags in %+v", rep.resp)
	}
	if got := counterValue(reg, MetricRequests); got != 1 {
		t.Fatalf("requests_total = %d, want 1", got)
	}
}

func TestCompileIR(t *testing.T) {
	_, hs, _ := startServer(t, Config{})
	f := testprog.Rand(11, testprog.DefaultRandOptions())
	doc, err := ir.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	rep := postCompile(t, hs.URL, compileRequest{IR: doc})
	if rep.status != http.StatusOK {
		t.Fatalf("status %d (%s)", rep.status, rep.errK)
	}
	want, _ := localOutput(t, testprog.Rand(11, testprog.DefaultRandOptions()), pipeline.ExpLphiABIC)
	if rep.resp.Output != want {
		t.Fatal("IR-mode server output differs from local pipeline")
	}
}

func TestCompileRejects(t *testing.T) {
	_, hs, _ := startServer(t, Config{})
	cases := []struct {
		name string
		body any
		kind string
	}{
		{"empty", compileRequest{}, "parse"},
		{"both", compileRequest{LAI: srcSimple, IR: json.RawMessage(`{}`)}, "parse"},
		{"bad-lai", compileRequest{LAI: ".func broken\n"}, "parse"},
		{"bad-ir", compileRequest{IR: json.RawMessage(`{"schema":"nope"}`)}, "parse"},
		{"debug-disabled", compileRequest{LAI: srcSimple, Debug: &debugRequest{SleepMS: 1}}, "parse"},
	}
	for _, tc := range cases {
		rep := postCompile(t, hs.URL, tc.body)
		if rep.status != http.StatusBadRequest || rep.errK != tc.kind {
			t.Fatalf("%s: status=%d kind=%q, want 400/%s", tc.name, rep.status, rep.errK, tc.kind)
		}
	}
	// Malformed JSON body and wrong method, below the typed layer.
	hr, err := http.Post(hs.URL+"/compile", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated JSON: status %d", hr.StatusCode)
	}
	hg, err := http.Get(hs.URL + "/compile")
	if err != nil {
		t.Fatal(err)
	}
	hg.Body.Close()
	if hg.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d", hg.StatusCode)
	}
}

func TestDeadlineExceeded(t *testing.T) {
	_, hs, reg := startServer(t, Config{AllowDebug: true})
	rep := postCompile(t, hs.URL, compileRequest{
		LAI:        srcSimple,
		DeadlineMS: 30,
		Debug:      &debugRequest{SleepMS: 120},
	})
	if rep.status != http.StatusGatewayTimeout || rep.errK != "deadline" {
		t.Fatalf("status=%d kind=%q, want 504/deadline", rep.status, rep.errK)
	}
	if got := counterValue(reg, MetricDeadline); got == 0 {
		t.Fatal("deadline counter not incremented")
	}
}

func TestShedUnderOverload(t *testing.T) {
	_, hs, reg := startServer(t, Config{Workers: 1, QueueDepth: 1, AllowDebug: true})
	const n = 6
	var wg sync.WaitGroup
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep := postCompile(t, hs.URL, compileRequest{
				LAI:        srcSimple,
				DeadlineMS: 2000,
				Debug:      &debugRequest{SleepMS: 80},
			})
			codes[i] = rep.status
		}(i)
	}
	wg.Wait()
	var ok, shed int
	for _, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Fatalf("unexpected status %d", c)
		}
	}
	if ok == 0 || shed == 0 {
		t.Fatalf("want both served and shed requests, got ok=%d shed=%d", ok, shed)
	}
	if got := counterValue(reg, MetricShed); got != int64(shed) {
		t.Fatalf("shed counter %d != %d observed 429s", got, shed)
	}
}

func TestSingleflightAndCache(t *testing.T) {
	_, hs, reg := startServer(t, Config{Workers: 2})
	const n = 8
	var wg sync.WaitGroup
	outs := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep := postCompile(t, hs.URL, compileRequest{LAI: srcSimple})
			if rep.status != http.StatusOK {
				t.Errorf("status %d", rep.status)
				return
			}
			outs[i] = rep.resp.Output
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if outs[i] != outs[0] {
			t.Fatal("singleflight followers must see the leader's output")
		}
	}
	// All n raced one singleflight slot: compiles = misses ≤ n, and at
	// least one request piggybacked if any overlapped. The hard
	// invariant is the counter bookkeeping, not the schedule.
	misses := counterValue(reg, MetricCacheMisses)
	if misses == 0 || misses > n {
		t.Fatalf("cache misses = %d", misses)
	}
	// A later identical request is a checksum-verified cache hit.
	rep := postCompile(t, hs.URL, compileRequest{LAI: srcSimple})
	if !rep.resp.Cached || rep.resp.Output != outs[0] {
		t.Fatalf("want cached identical reply, got cached=%v", rep.resp.Cached)
	}
	if counterValue(reg, MetricCacheHits) == 0 {
		t.Fatal("cache hit not counted")
	}
}

// TestCachePoisonNeverServed drives the poison class end to end
// through the server: corrupt the cached translation after insert,
// and the next request must detect it, recompile, and serve the
// correct output — the poisoned bytes must never appear in a reply.
func TestCachePoisonNeverServed(t *testing.T) {
	s, hs, reg := startServer(t, Config{})
	first := postCompile(t, hs.URL, compileRequest{LAI: srcSimple})
	if first.status != http.StatusOK {
		t.Fatalf("status %d", first.status)
	}
	if !s.cache.tamper(faultinject.InjectCachePoison) {
		t.Fatal("no cache entry to poison")
	}
	second := postCompile(t, hs.URL, compileRequest{LAI: srcSimple})
	if second.status != http.StatusOK {
		t.Fatalf("status %d", second.status)
	}
	if second.resp.Cached {
		t.Fatal("poisoned entry must not be served as a cache hit")
	}
	if second.resp.Output != first.resp.Output {
		t.Fatal("recompiled output must match the original translation")
	}
	if got := counterValue(reg, MetricCachePoison); got != 1 {
		t.Fatalf("poison counter = %d, want 1", got)
	}
	// And the recompiled entry serves clean afterwards.
	third := postCompile(t, hs.URL, compileRequest{LAI: srcSimple})
	if !third.resp.Cached || third.resp.Output != first.resp.Output {
		t.Fatal("recompiled entry must serve as a verified hit")
	}
}

func TestBreakerDegradesAndRecovers(t *testing.T) {
	_, hs, reg := startServer(t, Config{
		AllowDebug:       true,
		BreakerThreshold: 2,
		BreakerWindow:    time.Minute,
		BreakerCooldown:  50 * time.Millisecond,
	})
	// Two injected pass panics of the same class trip the breaker; the
	// fallback still answers both requests.
	for i := 0; i < 2; i++ {
		rep := postCompile(t, hs.URL, compileRequest{
			LAI:   srcSimple,
			Debug: &debugRequest{PanicPass: "pinning-sp"},
		})
		if rep.status != http.StatusOK || !rep.resp.FellBack {
			t.Fatalf("faulted request %d: status=%d fellBack=%v", i, rep.status, rep.resp.FellBack)
		}
	}
	if got := counterValue(reg, MetricBreakerTrips); got != 1 {
		t.Fatalf("breaker trips = %d, want 1", got)
	}
	// /readyz names the open class.
	hr, err := http.Get(hs.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	if !strings.Contains(string(body), "pinning-sp") {
		t.Fatalf("/readyz must report the open class, got %s", body)
	}
	// While open (pre-cooldown), a clean request compiles degraded.
	f := testprog.Rand(21, testprog.DefaultRandOptions())
	doc, err := ir.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	rep := postCompile(t, hs.URL, compileRequest{IR: doc})
	if rep.status != http.StatusOK || !rep.resp.Degraded {
		t.Fatalf("want degraded compile while breaker open, got %+v", rep.resp)
	}
	// After the cooldown a clean probe closes the class again.
	time.Sleep(70 * time.Millisecond)
	probe := postCompile(t, hs.URL, compileRequest{LAI: srcSimple})
	if probe.status != http.StatusOK || probe.resp.Degraded {
		t.Fatalf("probe after cooldown: %+v", probe.resp)
	}
	f2 := testprog.Rand(22, testprog.DefaultRandOptions())
	doc2, err := ir.Marshal(f2)
	if err != nil {
		t.Fatal(err)
	}
	after := postCompile(t, hs.URL, compileRequest{IR: doc2})
	if after.resp.Degraded {
		t.Fatal("breaker must have closed after a successful probe")
	}
	if counterValue(reg, MetricBreakerProbes) == 0 {
		t.Fatal("probe not counted")
	}
}

func TestDrainRejectsNewWork(t *testing.T) {
	conf := Config{Metrics: metrics.New()}
	s, err := New(conf)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	ok := postCompile(t, hs.URL, compileRequest{LAI: srcSimple})
	if ok.status != http.StatusOK {
		t.Fatalf("status %d", ok.status)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	rep := postCompile(t, hs.URL, compileRequest{LAI: srcSimple})
	if rep.status != http.StatusServiceUnavailable || rep.errK != "draining" {
		t.Fatalf("post-drain: status=%d kind=%q, want 503/draining", rep.status, rep.errK)
	}
	hr, err := http.Get(hs.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining: %d", hr.StatusCode)
	}
}

func TestHealthAndMetricsEndpoints(t *testing.T) {
	_, hs, _ := startServer(t, Config{})
	postCompile(t, hs.URL, compileRequest{LAI: srcSimple})
	for _, path := range []string{"/healthz", "/readyz", "/metrics", "/metrics.json"} {
		hr, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(hr.Body)
		hr.Body.Close()
		if hr.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, hr.StatusCode)
		}
		if path == "/metrics" && !strings.Contains(string(body), "laocd_requests_total") {
			t.Fatalf("/metrics must expose laocd_* families, got:\n%s", body)
		}
	}
}

func TestExecBudget(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 1 << 14},
		{time.Millisecond, 50_000},
		{time.Minute, 1 << 20},
	}
	for _, tc := range cases {
		if got := execBudget(tc.d); got != tc.want {
			t.Fatalf("execBudget(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}
