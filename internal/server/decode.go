// The decode cache: content hash → frozen master IR, the front half of
// the request fast path. Parsing (LAI text or a laoc-ir document) is
// linear work the service used to repeat for every request carrying
// the same content; now the first request interns the decoded function
// as a frozen copy-on-write master and every later request — including
// concurrent ones — compiles a Snapshot of it. The snapshot shares the
// master's slabs until the pipeline actually mutates them, so a warm
// request skips both the parse and the up-front IR copy.
//
// The masters are immutable by construction (frozen before they are
// published, only ever handed out as snapshots), which is what makes
// the concurrent snapshot traffic safe; see ir.Snapshot. The LRU
// mechanics live in the shared lru type; the onEvict hook carries the
// decode-specific rule — dropping the family ref so the last
// outstanding snapshot of an evicted master adopts the shared slabs
// copy-free.
package server

import "outofssa/internal/ir"

// decodeCache is a fixed-capacity LRU of frozen masters keyed by
// content hash. All methods are safe for concurrent use.
type decodeCache struct {
	lru *lru[*ir.Func]
}

func newDecodeCache(capacity int) *decodeCache {
	return &decodeCache{lru: newLRU(capacity, nil, func(_ uint64, master *ir.Func) {
		master.Release()
	})}
}

// snapshot returns a private copy-on-write snapshot of the master
// interned for key, or (nil, false) on a miss. The Snapshot call runs
// under the cache lock only to order it against a concurrent evict of
// the same master; the copy itself is O(arena chunks).
func (c *decodeCache) snapshot(key uint64) (*ir.Func, bool) {
	var snap *ir.Func
	ok := c.lru.with(key, func(master *ir.Func) {
		snap = master.Snapshot()
	})
	return snap, ok
}

// intern freezes f, stores it as the master for key, and returns a
// snapshot for the calling request to compile. If another request
// interned the same key first, its master wins and f is discarded —
// equal content decodes to an equivalent function, so either master
// serves both. inserted reports whether f won; the caller uses it to
// count hit/miss exactly (losing a decode race is a hit: the request
// compiles the winner's snapshot).
func (c *decodeCache) intern(key uint64, f *ir.Func) (snap *ir.Func, inserted bool) {
	f.Freeze()
	c.lru.intern(key, f, func(winner *ir.Func, won bool) {
		snap, inserted = winner.Snapshot(), won
	})
	return snap, inserted
}

// warm freezes f and interns it as the master for key without taking
// a snapshot — the warm-start path, which loads masters nobody is
// compiling yet. It reports whether f became the master (a duplicate
// record loses to the first).
func (c *decodeCache) warm(key uint64, f *ir.Func) bool {
	f.Freeze()
	var won bool
	c.lru.intern(key, f, func(_ *ir.Func, inserted bool) {
		won = inserted
	})
	return won
}

// contains reports residency without touching recency — the store's
// compaction liveness probe.
func (c *decodeCache) contains(key uint64) bool {
	return c.lru.contains(key)
}

// len reports the live master count.
func (c *decodeCache) len() int {
	return c.lru.len()
}
