// The decode cache: content hash → frozen master IR, the front half of
// the request fast path. Parsing (LAI text or a laoc-ir document) is
// linear work the service used to repeat for every request carrying
// the same content; now the first request interns the decoded function
// as a frozen copy-on-write master and every later request — including
// concurrent ones — compiles a Snapshot of it. The snapshot shares the
// master's slabs until the pipeline actually mutates them, so a warm
// request skips both the parse and the up-front IR copy.
//
// The masters are immutable by construction (frozen before they are
// published, only ever handed out as snapshots), which is what makes
// the concurrent snapshot traffic safe; see ir.Snapshot.
package server

import (
	"container/list"
	"sync"

	"outofssa/internal/ir"
)

// decodeEntry is one interned master.
type decodeEntry struct {
	key    uint64
	master *ir.Func
	elem   *list.Element
}

// decodeCache is a fixed-capacity LRU of frozen masters keyed by
// content hash. All methods are safe for concurrent use.
type decodeCache struct {
	mu      sync.Mutex
	cap     int
	entries map[uint64]*decodeEntry
	lru     *list.List // front = most recent; values are *decodeEntry
}

func newDecodeCache(capacity int) *decodeCache {
	if capacity <= 0 {
		capacity = 1024
	}
	return &decodeCache{
		cap:     capacity,
		entries: make(map[uint64]*decodeEntry, capacity),
		lru:     list.New(),
	}
}

// snapshot returns a private copy-on-write snapshot of the master
// interned for key, or (nil, false) on a miss. The Snapshot call is
// inside the lock only to order it against a concurrent evict of the
// same master; the copy itself is O(arena chunks).
func (c *decodeCache) snapshot(key uint64) (*ir.Func, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(e.elem)
	return e.master.Snapshot(), true
}

// intern freezes f, stores it as the master for key, and returns a
// snapshot for the calling request to compile. If another request
// interned the same key first, its master wins and f is discarded —
// equal content decodes to an equivalent function, so either master
// serves both.
func (c *decodeCache) intern(key uint64, f *ir.Func) *ir.Func {
	f.Freeze()
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.lru.MoveToFront(e.elem)
		return e.master.Snapshot()
	}
	e := &decodeEntry{key: key, master: f}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	for c.lru.Len() > c.cap {
		old := c.lru.Back().Value.(*decodeEntry)
		delete(c.entries, old.key)
		c.lru.Remove(old.elem)
		// Dropping the family ref lets the last outstanding snapshot of
		// the evicted master adopt the shared slabs copy-free.
		old.master.Release()
	}
	return e.master.Snapshot()
}

// len reports the live master count.
func (c *decodeCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
