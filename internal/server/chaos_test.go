package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"outofssa/internal/ir"
	"outofssa/internal/obs/metrics"
	"outofssa/internal/pipeline"
	"outofssa/internal/workload"
)

// TestChaos is the ISSUE's overload acceptance run: drive the service
// well past queue capacity with 1% injected pass-panics and assert
//
//   - zero process crashes (no transport-level failures, no 5xx other
//     than the typed 503/504 kinds);
//   - correct responses for every non-faulted request that was served:
//     the payload matches a local run of either the full pipeline or
//     the naive-only degraded mode, byte for byte;
//   - excess load is shed with 429s and the shed counter is accurate;
//   - the circuit breaker trips on the injected class and recovers;
//   - the drain is clean: every accepted request answered, then 503s.
func TestChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run in -short mode")
	}
	reg := metrics.New()
	s, err := New(Config{
		Workers:          4,
		QueueDepth:       8,
		DefaultDeadline:  5 * time.Second,
		AllowDebug:       true,
		BreakerThreshold: 2,
		BreakerWindow:    time.Minute,
		BreakerCooldown:  time.Second,
		Metrics:          reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	// --- Phase A: sustained overload, 1% injected pass panics. -----
	const n = 300
	funcs := workload.SynthFuncs(n, 7000)
	reqs, err := workload.MixedRequests(funcs, 4000, 100, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A per-pass debug sleep makes service time dominate, so the
	// 32-way drive genuinely overruns the 4-worker/8-slot server and
	// admission control has something to shed. (Real compiles of these
	// programs are sub-millisecond — the workers would keep up.)
	for i := range reqs {
		if reqs[i].Debug == nil {
			reqs[i].Debug = &workload.ClientDebug{SleepMS: 5}
		}
	}
	// Expected payloads for every request, under both modes the
	// breaker can leave the server in.
	wantFull := make([]string, n)
	wantNaive := make([]string, n)
	for i, f := range funcs {
		full, _ := localOutput(t, f.Clone(), pipeline.ExpLphiABIC)
		wantFull[i] = full
		nf := f.Clone()
		if _, err := pipeline.Run(nf, s.degraded); err != nil {
			t.Fatal(err)
		}
		wantNaive[i] = nf.String()
	}

	outcomes := make([]int, n)
	outputs := make([]string, n)
	rep := workload.Drive(hs.URL, reqs, workload.DriveOptions{Concurrency: 32}, outcomes, outputs)

	if rep.Transport != 0 || rep.Other != 0 {
		t.Fatalf("daemon instability: transport=%d other=%d (report %v)", rep.Transport, rep.Other, rep)
	}
	if rep.OK+rep.Shed+rep.Deadline+rep.Rejected+rep.Draining != rep.Sent {
		t.Fatalf("responses unaccounted for: %v", rep)
	}
	if rep.Shed == 0 {
		t.Fatalf("32-way drive against a 4+8 server must shed, got %v", rep)
	}
	for i := range reqs {
		faulted := reqs[i].Debug != nil && reqs[i].Debug.PanicPass != ""
		switch outcomes[i] {
		case http.StatusOK:
			if faulted {
				continue // fallback output; correctness covered below
			}
			if outputs[i] != wantFull[i] && outputs[i] != wantNaive[i] {
				t.Fatalf("request %d: served output matches neither the full pipeline nor degraded mode:\n%s", i, outputs[i])
			}
		case http.StatusTooManyRequests:
			// Shed is the only acceptable non-answer under overload.
		default:
			t.Fatalf("request %d: unexpected status %d", i, outcomes[i])
		}
	}
	if got := counterValue(reg, MetricShed); got != int64(rep.Shed) {
		t.Fatalf("shed counter %d != %d observed 429s", got, rep.Shed)
	}

	// --- Phase B: deterministic breaker trip and recovery. ---------
	// The overload phase's faults race admission, so force the trip
	// sequentially: threshold panics of one class, then observe
	// degraded mode, then wait out the cooldown and observe recovery.
	for i := 0; i < 2; i++ {
		rep := postCompile(t, hs.URL, compileRequest{
			LAI:   srcSimple,
			Debug: &debugRequest{PanicPass: "pinning-sp"},
		})
		if rep.status != http.StatusOK || !rep.resp.FellBack {
			t.Fatalf("faulted request: status=%d fellBack=%v", rep.status, rep.resp.FellBack)
		}
	}
	if counterValue(reg, MetricBreakerTrips) == 0 {
		t.Fatal("breaker never tripped")
	}
	probeF := workload.SynthFuncs(1, 9000)[0]
	doc, err := ir.Marshal(probeF)
	if err != nil {
		t.Fatal(err)
	}
	degradedRep := postCompile(t, hs.URL, compileRequest{IR: doc})
	if degradedRep.status != http.StatusOK || !degradedRep.resp.Degraded {
		t.Fatalf("want degraded service while tripped, got %+v", degradedRep.resp)
	}
	time.Sleep(1200 * time.Millisecond)
	if rep := postCompile(t, hs.URL, compileRequest{LAI: srcSimple}); rep.status != http.StatusOK {
		t.Fatalf("probe request: status %d", rep.status)
	}
	recoveredF := workload.SynthFuncs(1, 9001)[0]
	doc2, err := ir.Marshal(recoveredF)
	if err != nil {
		t.Fatal(err)
	}
	if rep := postCompile(t, hs.URL, compileRequest{IR: doc2}); rep.resp.Degraded {
		t.Fatal("breaker must have recovered after the cooldown probe")
	}

	// --- Phase C: clean drain. -------------------------------------
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if rep := postCompile(t, hs.URL, compileRequest{LAI: srcSimple}); rep.errK != "draining" {
		t.Fatalf("post-drain request: %+v", rep)
	}
}
