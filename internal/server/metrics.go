// Metric names and help strings for the compilation service. The
// schema extends DESIGN.md's laoc_<subsystem>_<name> convention with
// the laocd_ prefix for daemon-side concerns: everything under laocd_
// is about requests, queues and caches, while the laoc_pipeline_*
// family the workers also feed stays about passes.
package server

import "outofssa/internal/obs/metrics"

const (
	// MetricRequests counts every /compile request accepted for
	// processing, labelled by final outcome kind ("ok", "parse",
	// "shed", "deadline", "draining", "compile").
	MetricRequests = "laocd_requests_total"
	// MetricShed counts requests rejected with 429 because the
	// admission queue was full.
	MetricShed = "laocd_shed_total"
	// MetricDeadline counts requests that ran out of their deadline
	// (in the queue or between passes).
	MetricDeadline = "laocd_deadline_exceeded_total"
	// MetricBreakerTrips counts closed→open transitions per corruption
	// class (the failing pass name).
	MetricBreakerTrips = "laocd_breaker_trips_total"
	// MetricBreakerProbes counts half-open probe attempts, labelled by
	// result ("ok", "fail").
	MetricBreakerProbes = "laocd_breaker_probes_total"
	// MetricDegraded counts requests compiled in naive-translation-only
	// mode while a breaker was open.
	MetricDegraded = "laocd_degraded_total"
	// MetricCacheHits / Misses / Poison count result-cache reads:
	// checksum-verified hits, misses (including singleflight leaders),
	// and entries whose stored checksum no longer matched — detected
	// poison, evicted and recompiled, never served.
	MetricCacheHits   = "laocd_cache_hits_total"
	MetricCacheMisses = "laocd_cache_misses_total"
	MetricCachePoison = "laocd_cache_poison_total"
	// MetricDecodeHits / Misses count decode-cache reads: a hit skips
	// the parse and compiles a copy-on-write snapshot of the interned
	// frozen master; a miss parses and interns.
	MetricDecodeHits   = "laocd_decode_hits_total"
	MetricDecodeMisses = "laocd_decode_misses_total"
	// MetricFallbacks counts responses served from the naive fallback
	// after a contained pipeline failure.
	MetricFallbacks = "laocd_fallback_total"
	// MetricWorkerPanics counts panics that escaped the pipeline's own
	// containment and were caught by the worker's last-resort recover.
	MetricWorkerPanics = "laocd_worker_panics_total"
	// MetricQueueDepth / Inflight are the admission-control gauges
	// /readyz reports.
	MetricQueueDepth = "laocd_queue_depth"
	MetricInflight   = "laocd_inflight"
	// MetricRequestWallNS is the end-to-end request latency
	// distribution (accepted requests only).
	MetricRequestWallNS = "laocd_request_wall_ns"

	// laocd_store_* is the persistent cache store (see
	// internal/cachestore and persist.go); present only when the daemon
	// runs with -cache-dir. Most are bridges onto cachestore.Stats.
	MetricStoreWarm           = "laocd_store_warm_total"
	MetricStoreWarmSkipped    = "laocd_store_warm_skipped_total"
	MetricStoreAppends        = "laocd_store_appends_total"
	MetricStoreAppendBytes    = "laocd_store_append_bytes_total"
	MetricStoreDropped        = "laocd_store_dropped_total"
	MetricStoreFsyncs         = "laocd_store_fsyncs_total"
	MetricStoreScanRecords    = "laocd_store_scan_records_total"
	MetricStoreCorrupt        = "laocd_store_corrupt_total"
	MetricStoreTruncated      = "laocd_store_truncated_bytes_total"
	MetricStoreCompactions    = "laocd_store_compactions_total"
	MetricStoreCompactDropped = "laocd_store_compact_dropped_total"
	MetricStoreSizeBytes      = "laocd_store_size_bytes"
	MetricStoreSegments       = "laocd_store_segments"
)

func registerHelp(reg *metrics.Registry) {
	reg.SetHelp(MetricRequests, "laocd /compile requests by outcome kind")
	reg.SetHelp(MetricShed, "requests rejected 429 by admission control")
	reg.SetHelp(MetricDeadline, "requests that exceeded their deadline")
	reg.SetHelp(MetricBreakerTrips, "circuit-breaker closed-to-open transitions per corruption class")
	reg.SetHelp(MetricBreakerProbes, "circuit-breaker half-open probes by result")
	reg.SetHelp(MetricDegraded, "requests compiled in naive-translation-only (breaker open) mode")
	reg.SetHelp(MetricCacheHits, "result-cache hits (checksum verified)")
	reg.SetHelp(MetricCacheMisses, "result-cache misses")
	reg.SetHelp(MetricCachePoison, "poisoned cache entries detected on read and evicted")
	reg.SetHelp(MetricDecodeHits, "decode-cache hits (request compiled a snapshot of the interned master)")
	reg.SetHelp(MetricDecodeMisses, "decode-cache misses (request parsed and interned its content)")
	reg.SetHelp(MetricFallbacks, "responses served from the naive fallback translation")
	reg.SetHelp(MetricWorkerPanics, "panics contained by the worker's last-resort recover")
	reg.SetHelp(MetricQueueDepth, "requests waiting for a worker")
	reg.SetHelp(MetricInflight, "requests being compiled right now")
	reg.SetHelp(MetricRequestWallNS, "end-to-end request latency (ns)")
	reg.SetHelp(MetricStoreWarm, "cache entries warm-loaded from the store at startup, by kind")
	reg.SetHelp(MetricStoreWarmSkipped, "store records that passed framing but failed decode at warm start (skipped, never served)")
	reg.SetHelp(MetricStoreAppends, "records appended by the store's write-behind goroutine")
	reg.SetHelp(MetricStoreAppendBytes, "encoded bytes appended to the store")
	reg.SetHelp(MetricStoreDropped, "store appends dropped (full queue, closed store, write error)")
	reg.SetHelp(MetricStoreFsyncs, "store fsync calls")
	reg.SetHelp(MetricStoreScanRecords, "valid records yielded by store scans")
	reg.SetHelp(MetricStoreCorrupt, "store records skipped for checksum/framing violations")
	reg.SetHelp(MetricStoreTruncated, "torn-tail bytes truncated during store recovery")
	reg.SetHelp(MetricStoreCompactions, "store compaction runs")
	reg.SetHelp(MetricStoreCompactDropped, "dead or stale records dropped by store compaction")
	reg.SetHelp(MetricStoreSizeBytes, "current on-disk store size (gauge-valued)")
	reg.SetHelp(MetricStoreSegments, "current store segment count (gauge-valued)")
}
