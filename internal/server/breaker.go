// The per-corruption-class circuit breaker. A pipeline bug is not
// random noise: the same pass fails the verifier again and again, and
// every such request burns a full pipeline run plus a fallback
// translation plus an ir.Exec cross-check before producing naive-grade
// output anyway. The breaker notices the pattern — repeated verifier
// failures attributed to one class (the failing pass name) inside a
// sliding window — and trips that class open: while any class is open,
// requests skip straight to the naive-translation-only configuration,
// which does not run the suspect pass at all. After a cooldown the
// class half-opens and exactly one probe request is let through the
// full pipeline; success closes the class, failure re-opens it for
// another cooldown.
//
// Failure counting is windowed, not consecutive: a pass that fails one
// request in a hundred would never trip a consecutive counter, but a
// hundred such failures an hour are still a hundred wasted fallbacks.
package server

import (
	"sync"
	"time"
)

// breaker tracks failure classes. The zero value is unusable; use
// newBreaker. All methods are safe for concurrent use.
type breaker struct {
	mu        sync.Mutex
	threshold int           // failures within window that trip a class
	window    time.Duration // sliding failure-count window
	cooldown  time.Duration // open duration before half-opening
	now       func() time.Time
	classes   map[string]*breakerClass

	onTrip func(class string) // metrics hook, called outside the hot path
}

type breakerClass struct {
	open     bool
	openedAt time.Time
	probing  bool        // a half-open probe is in flight
	fails    []time.Time // failure times within window (closed state only)
}

func newBreaker(threshold int, window, cooldown time.Duration, now func() time.Time) *breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if window <= 0 {
		window = 30 * time.Second
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &breaker{
		threshold: threshold,
		window:    window,
		cooldown:  cooldown,
		now:       now,
		classes:   make(map[string]*breakerClass),
	}
}

// plan decides how the next request should run. Full pipeline when
// every class is closed; degraded (naive-translation-only) while any
// class is open; and when an open class has cooled down, exactly one
// caller gets it as a probe — it runs the full pipeline and must
// report the outcome via probeResult. probeClass is empty unless this
// caller won the probe.
func (b *breaker) plan() (degraded bool, probeClass string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	for name, c := range b.classes {
		if !c.open {
			continue
		}
		if probeClass == "" && !c.probing && now.Sub(c.openedAt) >= b.cooldown {
			c.probing = true
			probeClass = name
			continue
		}
		degraded = true
	}
	if probeClass != "" {
		// The probe itself runs the full pipeline; concurrent requests
		// stay degraded until it reports back.
		return false, probeClass
	}
	return degraded, ""
}

// fail records a verifier/pass failure attributed to class and trips
// the class when the windowed count reaches the threshold. Returns
// whether this call tripped the class.
func (b *breaker) fail(class string) bool {
	b.mu.Lock()
	c := b.classes[class]
	if c == nil {
		c = &breakerClass{}
		b.classes[class] = c
	}
	if c.open {
		b.mu.Unlock()
		return false
	}
	now := b.now()
	cut := now.Add(-b.window)
	keep := c.fails[:0]
	for _, t := range c.fails {
		if t.After(cut) {
			keep = append(keep, t)
		}
	}
	c.fails = append(keep, now)
	tripped := len(c.fails) >= b.threshold
	if tripped {
		c.open = true
		c.openedAt = now
		c.fails = nil
	}
	onTrip := b.onTrip
	b.mu.Unlock()
	if tripped && onTrip != nil {
		onTrip(class)
	}
	return tripped
}

// probeResult reports the outcome of the half-open probe for class:
// success closes it, failure re-opens it for another cooldown.
func (b *breaker) probeResult(class string, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.classes[class]
	if c == nil || !c.open {
		return
	}
	c.probing = false
	if ok {
		c.open = false
		c.fails = nil
	} else {
		c.openedAt = b.now()
	}
}

// probeAbort ends a probe without a verdict (the probe request died on
// its own deadline): the class stays open with its original open time,
// so the next plan call can hand out a fresh probe immediately.
func (b *breaker) probeAbort(class string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if c := b.classes[class]; c != nil {
		c.probing = false
	}
}

// openClasses lists the currently open classes, sorted order not
// guaranteed; /readyz reports them.
func (b *breaker) openClasses() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []string
	for name, c := range b.classes {
		if c.open {
			out = append(out, name)
		}
	}
	return out
}
