// Package server is the compilation service behind cmd/laocd: HTTP in,
// translated LAI out, with the paper's correctness machinery wrapped in
// the robustness layer a long-running daemon needs. One request = one
// function compiled by pipeline.Run in checked+fallback mode, so a
// malformed or hostile input costs at most its own request: parse
// errors are 400s, pass panics are contained and fall back to the
// naive translation, verifier rejections likewise, and everything else
// is bounded by a per-request deadline propagated into the pass runner.
//
// Around that core:
//
//   - Admission control. A bounded queue feeds a fixed worker pool;
//     when the queue is full the request is shed with a 429 instead of
//     queueing unboundedly (laocd_shed_total counts them).
//   - Deadlines. Every request carries a context deadline (default,
//     clamped by a maximum); the pass runner checks it between passes
//     and the fallback's ir.Exec oracle budget is derived from it.
//   - Circuit breaker. Repeated verifier failures attributed to one
//     corruption class (the failing pass) trip that class open; open
//     classes switch requests to naive-translation-only mode and
//     half-open probes decide recovery (see breaker.go).
//   - Result cache. Content hash → translated function with per-entry
//     checksums; poisoned entries are detected on read, evicted and
//     recompiled, never served (see cache.go). Identical concurrent
//     requests are deduplicated by a singleflight layer.
//   - Drain. Drain stops admission (503) and waits for in-flight work,
//     so SIGTERM never abandons an accepted request.
package server

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"outofssa/internal/cachestore"
	"outofssa/internal/ir"
	"outofssa/internal/lai"
	"outofssa/internal/obs/metrics"
	"outofssa/internal/pipeline"
)

// Config parameterizes a Server. The zero value gets sensible
// defaults from New.
type Config struct {
	// Workers is the compile worker-pool size (default 4).
	Workers int
	// QueueDepth bounds the admission queue (default 64); a full queue
	// sheds with 429.
	QueueDepth int
	// DefaultDeadline applies when a request names none; MaxDeadline
	// clamps what a request may ask for (defaults 2s / 10s).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// Experiment is the pipeline preset requests compile under
	// (default pipeline.ExpLphiABIC, the paper's reference column).
	Experiment string
	// CacheEntries bounds the result cache (default 1024).
	CacheEntries int
	// BreakerThreshold failures within BreakerWindow trip a corruption
	// class; BreakerCooldown is the open time before a half-open probe
	// (defaults 5 / 30s / 5s).
	BreakerThreshold int
	BreakerWindow    time.Duration
	BreakerCooldown  time.Duration
	// Metrics receives the laocd_* instruments (nil disables them).
	Metrics *metrics.Registry
	// AllowDebug enables the request "debug" block (injected sleeps
	// and pass panics) — test and chaos tooling only, never production.
	AllowDebug bool
	// MaxBodyBytes bounds a request body (default 4 MiB).
	MaxBodyBytes int64
	// CacheDir enables cache persistence: both caches are warm-started
	// from the cachestore in this directory at New and written behind on
	// insert (empty disables persistence). StoreMaxBytes caps the
	// on-disk size (0 = cachestore default, negative = no compaction);
	// StoreFsync is the durability policy ("never", "interval",
	// "always"; empty = never).
	CacheDir      string
	StoreMaxBytes int64
	StoreFsync    string

	// now overrides the clock for breaker tests.
	now func() time.Time
}

// Server is the compilation service. Create with New, then Start, then
// serve Handler; Drain before exit.
type Server struct {
	conf     Config
	full     pipeline.Config // checked+fallback preset pipeline
	degraded pipeline.Config // naive-translation-only (breaker open)

	queue    chan *task
	wg       sync.WaitGroup
	pending  atomic.Int64 // accepted requests not yet responded
	draining atomic.Bool

	cache   *cache
	decode  *decodeCache
	breaker *breaker
	store   *cachestore.Store // nil unless Config.CacheDir is set

	sfMu sync.Mutex
	sf   map[uint64]*call

	reg         *metrics.Registry
	queueGauge  *metrics.Gauge
	inflight    *metrics.Gauge
	shed        *metrics.Counter
	deadlines   *metrics.Counter
	fallbacks   *metrics.Counter
	degradedCtr *metrics.Counter
	hits        *metrics.Counter
	misses      *metrics.Counter
	decodeHits  *metrics.Counter
	decodeMiss  *metrics.Counter
	poison      *metrics.Counter
	panics      *metrics.Counter
	wall        *metrics.Histogram
}

// call is one singleflight slot: concurrent requests for the same
// content wait for the leader's outcome.
type call struct {
	done chan struct{}
	resp *compileResponse
	herr *httpError
}

// task is one accepted compile traveling from handler to worker.
type task struct {
	ctx      context.Context
	f        *ir.Func
	key      uint64 // content key without the degraded bit
	debug    *debugRequest
	deadline time.Duration
	resp     *compileResponse
	herr     *httpError
	done     chan struct{}
}

// New validates and defaults conf and builds the server (workers not
// yet running; call Start).
func New(conf Config) (*Server, error) {
	if conf.Workers <= 0 {
		conf.Workers = 4
	}
	if conf.QueueDepth <= 0 {
		conf.QueueDepth = 64
	}
	if conf.DefaultDeadline <= 0 {
		conf.DefaultDeadline = 2 * time.Second
	}
	if conf.MaxDeadline <= 0 {
		conf.MaxDeadline = 10 * time.Second
	}
	if conf.Experiment == "" {
		conf.Experiment = pipeline.ExpLphiABIC
	}
	if conf.MaxBodyBytes <= 0 {
		conf.MaxBodyBytes = 4 << 20
	}
	full, err := pipeline.Preset(conf.Experiment)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	full.Verify = true
	full.Fallback = true
	reg := conf.Metrics
	s := &Server{
		conf: conf,
		full: full,
		degraded: pipeline.Config{
			NaiveOut: true, NaiveABI: true,
			Verify: true, Fallback: true,
		},
		queue:   make(chan *task, conf.QueueDepth),
		cache:   newCache(conf.CacheEntries),
		decode:  newDecodeCache(conf.CacheEntries),
		breaker: newBreaker(conf.BreakerThreshold, conf.BreakerWindow, conf.BreakerCooldown, conf.now),
		sf:      make(map[uint64]*call),

		reg:         reg,
		queueGauge:  reg.Gauge(MetricQueueDepth),
		inflight:    reg.Gauge(MetricInflight),
		shed:        reg.Counter(MetricShed),
		deadlines:   reg.Counter(MetricDeadline),
		fallbacks:   reg.Counter(MetricFallbacks),
		degradedCtr: reg.Counter(MetricDegraded),
		hits:        reg.Counter(MetricCacheHits),
		misses:      reg.Counter(MetricCacheMisses),
		decodeHits:  reg.Counter(MetricDecodeHits),
		decodeMiss:  reg.Counter(MetricDecodeMisses),
		poison:      reg.Counter(MetricCachePoison),
		panics:      reg.Counter(MetricWorkerPanics),
		wall:        reg.Histogram(MetricRequestWallNS),
	}
	if reg != nil {
		registerHelp(reg)
		s.breaker.onTrip = func(class string) {
			reg.Counter(MetricBreakerTrips, metrics.L("class", class)).Inc()
		}
	}
	store, err := s.openStore()
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s.store = store
	return s, nil
}

// Start launches the worker pool.
func (s *Server) Start() {
	s.wg.Add(s.conf.Workers)
	for i := 0; i < s.conf.Workers; i++ {
		go func() {
			defer s.wg.Done()
			for t := range s.queue {
				s.runTask(t)
			}
		}()
	}
}

// Drain stops admission (new requests get 503), waits until every
// accepted request has been answered, then stops the workers. It
// returns ctx.Err() if the context expires first; the workers are left
// running in that case so in-flight requests still complete.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	for s.pending.Load() != 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
	// pending==0 with draining set means no handler can be between
	// admission and response, so nothing will ever send again.
	close(s.queue)
	s.wg.Wait()
	// Every accepted request's write-behind Put has been enqueued by
	// now; Close flushes them to disk before returning.
	if s.store != nil {
		s.store.Close()
	}
	return nil
}

// Handler returns the service mux: /compile, /healthz, /readyz, plus
// the metrics handler families (/metrics, /metrics.json,
// /debug/pprof/*).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/compile", s.handleCompile)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/readyz", s.handleReady)
	mux.Handle("/metrics", metrics.Handler(s.reg))
	mux.Handle("/metrics.json", metrics.Handler(s.reg))
	mux.Handle("/debug/pprof/", metrics.Handler(s.reg))
	return mux
}

// --- request/response wire types -----------------------------------

// compileRequest is the /compile body: exactly one of LAI (a single
// function in LAI assembly) or IR (a laoc-ir document) must be set;
// the schema tag in the document selects the decoder, so clients on
// any wire version are served transparently. The IR field carries a
// JSON document (v1/v2) directly, or a binary b1 document base64'd as
// a JSON string. A request whose whole body starts with the b1 magic
// skips JSON entirely — the body IS the IR, with deadline/debug at
// their defaults. Raw and base64 b1 bodies normalize to the same
// content bytes, so they share decode- and result-cache keys. The
// response is always the JSON compileResponse (rendered LAI text plus
// counters), whatever the request schema.
type compileRequest struct {
	LAI        string          `json:"lai,omitempty"`
	IR         json.RawMessage `json:"ir,omitempty"`
	DeadlineMS int             `json:"deadline_ms,omitempty"`
	Debug      *debugRequest   `json:"debug,omitempty"`
}

// debugRequest is the chaos seam, admitted only under
// Config.AllowDebug: SleepMS sleeps after every pass (deadline tests),
// PanicPass panics after the named pass (breaker/chaos tests).
type debugRequest struct {
	SleepMS   int    `json:"sleep_ms,omitempty"`
	PanicPass string `json:"panic_pass,omitempty"`
}

// compileResponse is the success body.
type compileResponse struct {
	Name     string `json:"name"`
	Output   string `json:"output"`
	Moves    int    `json:"moves"`
	Instrs   int    `json:"instrs"`
	FellBack bool   `json:"fell_back,omitempty"`
	Degraded bool   `json:"degraded,omitempty"`
	Cached   bool   `json:"cached,omitempty"`
}

// httpError is the typed failure a request can end in. Kind is stable
// (it labels laocd_requests_total) and maps to the status code.
type httpError struct {
	Kind    string `json:"kind"`
	Message string `json:"message"`
	status  int
}

func errParse(err error) *httpError {
	return &httpError{Kind: "parse", Message: err.Error(), status: http.StatusBadRequest}
}

func errShed() *httpError {
	return &httpError{Kind: "shed", Message: "queue full, retry later", status: http.StatusTooManyRequests}
}

func errDraining() *httpError {
	return &httpError{Kind: "draining", Message: "server draining", status: http.StatusServiceUnavailable}
}

func errDeadline(err error) *httpError {
	return &httpError{Kind: "deadline", Message: err.Error(), status: http.StatusGatewayTimeout}
}

func errCompile(err error) *httpError {
	return &httpError{Kind: "compile", Message: err.Error(), status: http.StatusUnprocessableEntity}
}

func (e *httpError) ctxClass() bool { return e.Kind == "deadline" }

// --- handlers ------------------------------------------------------

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	open := s.breaker.openClasses()
	body := struct {
		Ready       bool     `json:"ready"`
		Draining    bool     `json:"draining"`
		QueueDepth  int      `json:"queue_depth"`
		QueueCap    int      `json:"queue_cap"`
		Workers     int      `json:"workers"`
		OpenClasses []string `json:"open_classes,omitempty"`
	}{
		Ready:       !s.draining.Load(),
		Draining:    s.draining.Load(),
		QueueDepth:  len(s.queue),
		QueueCap:    cap(s.queue),
		Workers:     s.conf.Workers,
		OpenClasses: open,
	}
	w.Header().Set("Content-Type", "application/json")
	if !body.Ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(body)
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.conf.MaxBodyBytes)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		s.finish(w, t0, nil, errParse(fmt.Errorf("request body: %w", err)))
		return
	}
	var req compileRequest
	if ir.IsBinary(body) {
		// Schema negotiation: a raw b1 body is the IR document itself.
		req.IR = body
	} else if err := json.Unmarshal(body, &req); err != nil {
		s.finish(w, t0, nil, errParse(fmt.Errorf("request body: %w", err)))
		return
	}
	if (req.LAI == "") == (len(req.IR) == 0) {
		s.finish(w, t0, nil, errParse(errors.New("exactly one of \"lai\" or \"ir\" must be set")))
		return
	}
	if req.Debug != nil && !s.conf.AllowDebug {
		s.finish(w, t0, nil, errParse(errors.New("debug requests are disabled")))
		return
	}

	// Decode in the handler: linear work bounded by MaxBodyBytes, and a
	// malformed body must not occupy a queue slot. Content seen before
	// skips the parse entirely — the request compiles a copy-on-write
	// snapshot of the interned frozen master (see decode.go). Only
	// successfully decoded content is ever interned, so malformed bodies
	// cannot hit.
	var content []byte
	mode := "lai"
	if req.LAI == "" {
		content, mode = req.IR, "ir"
		if len(content) > 0 && content[0] == '"' {
			// A JSON-string IR field is a base64'd binary document:
			// normalize to the raw bytes so it keys identically to the
			// same document posted as a raw body.
			var b64 string
			if err := json.Unmarshal(content, &b64); err != nil {
				s.finish(w, t0, nil, errParse(fmt.Errorf("ir field: %w", err)))
				return
			}
			raw, err := base64.StdEncoding.DecodeString(b64)
			if err != nil {
				s.finish(w, t0, nil, errParse(fmt.Errorf("ir field: %w", err)))
				return
			}
			content = raw
		}
	} else {
		content = []byte(req.LAI)
	}
	key := contentKey(mode, content, s.conf.Experiment)
	f, ok := s.decode.snapshot(key)
	if ok {
		s.decodeHits.Inc()
	} else {
		var err error
		if mode == "lai" {
			f, err = lai.Parse(req.LAI)
		} else {
			f, err = ir.Unmarshal(content)
		}
		if err != nil {
			s.finish(w, t0, nil, errParse(err))
			return
		}
		master := f
		var inserted bool
		f, inserted = s.decode.intern(key, master)
		// Exact hit/miss accounting: a request that parsed but lost the
		// intern race to a concurrent twin compiles the winner's snapshot
		// — a hit. Misses therefore count interned masters, at most one
		// per distinct content. Only the winner persists (the frozen
		// master is immutable, so marshaling it after publication is
		// safe); losers would only write duplicate records.
		if inserted {
			s.decodeMiss.Inc()
			s.persistDecode(key, master)
		} else {
			s.decodeHits.Inc()
		}
	}

	d := s.conf.DefaultDeadline
	if req.DeadlineMS > 0 {
		d = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	if d > s.conf.MaxDeadline {
		d = s.conf.MaxDeadline
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	defer cancel()

	// Debug requests bypass singleflight (their behavior is
	// per-request, not content-determined); everything else
	// deduplicates identical concurrent content.
	if req.Debug != nil {
		resp, herr := s.admit(ctx, f, key, req.Debug, d)
		s.finish(w, t0, resp, herr)
		return
	}
	for attempt := 0; ; attempt++ {
		s.sfMu.Lock()
		if c, ok := s.sf[key]; ok {
			s.sfMu.Unlock()
			select {
			case <-c.done:
			case <-ctx.Done():
				s.finish(w, t0, nil, errDeadline(ctx.Err()))
				return
			}
			// A leader that died on its own deadline says nothing about
			// this request's budget: retry once as our own leader.
			if c.herr != nil && c.herr.ctxClass() && attempt == 0 {
				continue
			}
			s.finish(w, t0, c.resp, c.herr)
			return
		}
		c := &call{done: make(chan struct{})}
		s.sf[key] = c
		s.sfMu.Unlock()
		c.resp, c.herr = s.admit(ctx, f, key, nil, d)
		s.sfMu.Lock()
		delete(s.sf, key)
		s.sfMu.Unlock()
		close(c.done)
		s.finish(w, t0, c.resp, c.herr)
		return
	}
}

// admit runs admission control and waits for the worker: the bounded
// queue is the only buffer, and a full queue sheds immediately.
func (s *Server) admit(ctx context.Context, f *ir.Func, key uint64, debug *debugRequest, d time.Duration) (*compileResponse, *httpError) {
	// pending is incremented before the draining check so Drain's
	// "pending==0" means no handler is between admission and response.
	s.pending.Add(1)
	defer s.pending.Add(-1)
	if s.draining.Load() {
		return nil, errDraining()
	}
	t := &task{ctx: ctx, f: f, key: key, debug: debug, deadline: d, done: make(chan struct{})}
	select {
	case s.queue <- t:
		s.queueGauge.Inc()
	default:
		return nil, errShed()
	}
	select {
	case <-t.done:
		return t.resp, t.herr
	case <-ctx.Done():
		// The task stays queued; the worker that dequeues it sees the
		// dead context and drops it cheaply.
		return nil, errDeadline(ctx.Err())
	}
}

// finish writes the response and settles the per-request metrics in
// one place (kind label, shed/deadline counters, latency histogram).
func (s *Server) finish(w http.ResponseWriter, t0 time.Time, resp *compileResponse, herr *httpError) {
	kind := "ok"
	if herr != nil {
		kind = herr.Kind
	}
	if s.reg != nil {
		s.reg.Counter(MetricRequests, metrics.L("kind", kind)).Inc()
	}
	switch kind {
	case "shed":
		s.shed.Inc()
	case "deadline":
		s.deadlines.Inc()
	}
	if resp != nil {
		if resp.FellBack {
			s.fallbacks.Inc()
		}
		if resp.Degraded {
			s.degradedCtr.Inc()
		}
	}
	s.wall.Observe(time.Since(t0).Nanoseconds())

	w.Header().Set("Content-Type", "application/json")
	if herr != nil {
		w.WriteHeader(herr.status)
		json.NewEncoder(w).Encode(struct {
			Error *httpError `json:"error"`
		}{herr})
		return
	}
	json.NewEncoder(w).Encode(resp)
}

// --- worker --------------------------------------------------------

// runTask compiles one task. The pipeline already contains pass panics;
// the worker's own recover is the last resort that keeps a bug in the
// server layer itself from killing the pool.
func (s *Server) runTask(t *task) {
	defer close(t.done)
	defer func() {
		if r := recover(); r != nil {
			s.panics.Inc()
			t.resp, t.herr = nil, errCompile(fmt.Errorf("internal panic: %v", r))
		}
	}()
	s.queueGauge.Dec()
	if err := t.ctx.Err(); err != nil {
		// Expired while queued: the handler already answered 504.
		t.herr = errDeadline(err)
		return
	}
	s.inflight.Inc()
	defer s.inflight.Dec()

	degraded, probeClass := s.breaker.plan()
	ckey := resultKey(t.key, degraded)
	if t.debug == nil {
		if e, ok, poisoned := s.cache.get(ckey); ok {
			s.hits.Inc()
			t.resp = &compileResponse{Name: e.name, Output: string(e.code), Moves: e.moves,
				Instrs: e.instrs, FellBack: e.fellBack, Degraded: e.degraded, Cached: true}
			return
		} else if poisoned {
			s.poison.Inc()
		}
		s.misses.Inc()
	}

	conf := s.full
	exp := s.conf.Experiment
	if degraded {
		conf = s.degraded
		exp = s.conf.Experiment + "/naive"
	}
	if t.debug != nil {
		conf.FaultHook = debugHook(t.debug)
	}
	res, err := pipeline.Run(t.f, conf,
		pipeline.WithExperiment(exp),
		pipeline.WithContext(t.ctx),
		pipeline.WithExecBudget(execBudget(t.deadline)),
		pipeline.WithMetrics(s.reg))

	// Breaker feedback: attribute failures to the failing pass. Context
	// cancellation is the client's fault, not a corruption class.
	failClass := ""
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if probeClass != "" {
				s.breaker.probeAbort(probeClass)
			}
			t.herr = errDeadline(err)
			return
		}
		failClass = passClass(err)
		s.breaker.fail(failClass)
	} else if res.FellBack {
		failClass = passClass(res.FallbackFrom)
		s.breaker.fail(failClass)
	}
	if probeClass != "" {
		ok := failClass != probeClass
		s.breaker.probeResult(probeClass, ok)
		if s.reg != nil {
			verdict := "ok"
			if !ok {
				verdict = "fail"
			}
			s.reg.Counter(MetricBreakerProbes, metrics.L("result", verdict)).Inc()
		}
	}
	if err != nil {
		t.herr = errCompile(err)
		return
	}

	code := t.f.String()
	t.resp = &compileResponse{Name: t.f.Name, Output: code, Moves: res.Moves,
		Instrs: res.Instrs, FellBack: res.FellBack, Degraded: degraded}
	if t.debug == nil {
		e := &cacheEntry{code: []byte(code), name: t.f.Name,
			moves: res.Moves, instrs: res.Instrs, fellBack: res.FellBack, degraded: degraded}
		s.cache.put(ckey, e)
		s.persistResult(ckey, e)
	}
}

// passClass maps a pipeline failure to its corruption class: the name
// of the failing pass.
func passClass(err error) string {
	var pe *pipeline.PassError
	if errors.As(err, &pe) {
		return pe.Pass
	}
	return "internal"
}

// contentKey hashes the request content (mode, bytes, experiment) into
// the singleflight/cache key space.
func contentKey(mode string, content []byte, exp string) uint64 {
	return fnvSum([]byte(mode), []byte{0}, content, []byte{0}, []byte(exp))
}

// resultKey namespaces the content key by compilation mode: degraded
// (naive-only) results must never collide with full-pipeline entries,
// or a breaker trip would let naive output satisfy full-pipeline
// requests after recovery.
func resultKey(key uint64, degraded bool) uint64 {
	if degraded {
		return key ^ 0x9e3779b97f4a7c15
	}
	return key
}

// execBudget derives the fallback cross-check's interpreter budget
// from the request deadline: ~50k steps per millisecond, clamped so a
// tight deadline still gets a useful oracle and a lavish one cannot
// exceed the library default.
func execBudget(d time.Duration) int {
	steps := int64(d/time.Millisecond) * 50_000
	if steps < 1<<14 {
		return 1 << 14
	}
	if steps > 1<<20 {
		return 1 << 20
	}
	return int(steps)
}

// debugHook turns the request debug block into a pipeline fault hook.
func debugHook(d *debugRequest) func(string, *ir.Func) {
	return func(pass string, f *ir.Func) {
		if d.SleepMS > 0 {
			time.Sleep(time.Duration(d.SleepMS) * time.Millisecond)
		}
		if d.PanicPass != "" && pass == d.PanicPass {
			panic("debug: injected panic after " + pass)
		}
	}
}
