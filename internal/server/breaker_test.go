package server

import (
	"testing"
	"time"
)

// fakeClock drives the breaker deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func testBreaker(clk *fakeClock, threshold int) *breaker {
	return newBreaker(threshold, 10*time.Second, 2*time.Second, clk.now)
}

func TestBreakerTripsOnWindowedFailures(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, 3)
	var trips []string
	b.onTrip = func(class string) { trips = append(trips, class) }

	// Non-consecutive failures inside the window still count.
	b.fail("pinning-phi")
	clk.advance(time.Second)
	if d, _ := b.plan(); d {
		t.Fatal("one failure must not degrade")
	}
	b.fail("pinning-phi")
	clk.advance(time.Second)
	if tripped := b.fail("pinning-phi"); !tripped {
		t.Fatal("third windowed failure must trip")
	}
	if len(trips) != 1 || trips[0] != "pinning-phi" {
		t.Fatalf("trips = %v", trips)
	}
	if d, probe := b.plan(); !d || probe != "" {
		t.Fatalf("open class must degrade (degraded=%v probe=%q)", d, probe)
	}
}

func TestBreakerWindowExpiry(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, 3)
	b.fail("x")
	b.fail("x")
	clk.advance(11 * time.Second) // past the 10s window
	if b.fail("x") {
		t.Fatal("stale failures must have aged out of the window")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, 1)
	b.fail("out-of-pinned-ssa")

	// Before cooldown: degraded, no probe.
	if d, probe := b.plan(); !d || probe != "" {
		t.Fatalf("pre-cooldown: degraded=%v probe=%q", d, probe)
	}
	clk.advance(3 * time.Second)
	// After cooldown: exactly one caller wins the probe and runs full.
	d, probe := b.plan()
	if d || probe != "out-of-pinned-ssa" {
		t.Fatalf("post-cooldown: degraded=%v probe=%q", d, probe)
	}
	// Concurrent requests stay degraded while the probe is out.
	if d, p2 := b.plan(); !d || p2 != "" {
		t.Fatalf("during probe: degraded=%v probe=%q", d, p2)
	}

	// Failed probe re-opens for another cooldown.
	b.probeResult("out-of-pinned-ssa", false)
	if d, probe := b.plan(); !d || probe != "" {
		t.Fatalf("after failed probe: degraded=%v probe=%q", d, probe)
	}
	clk.advance(3 * time.Second)
	if _, probe := b.plan(); probe != "out-of-pinned-ssa" {
		t.Fatal("want a fresh probe after the second cooldown")
	}
	// Successful probe closes the class.
	b.probeResult("out-of-pinned-ssa", true)
	if d, probe := b.plan(); d || probe != "" {
		t.Fatalf("after successful probe: degraded=%v probe=%q", d, probe)
	}
	if open := b.openClasses(); len(open) != 0 {
		t.Fatalf("openClasses = %v, want none", open)
	}
}

func TestBreakerProbeAbort(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, 1)
	b.fail("x")
	clk.advance(3 * time.Second)
	if _, probe := b.plan(); probe != "x" {
		t.Fatal("want probe")
	}
	b.probeAbort("x")
	// No verdict: still open, but a fresh probe is available at once.
	if _, probe := b.plan(); probe != "x" {
		t.Fatal("want probe re-issued after abort")
	}
}

func TestBreakerClassesIndependent(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, 2)
	b.fail("a")
	b.fail("a")
	b.fail("b")
	open := b.openClasses()
	if len(open) != 1 || open[0] != "a" {
		t.Fatalf("openClasses = %v, want [a]", open)
	}
}
