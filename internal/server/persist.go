// Cache persistence: the glue between the in-memory LRUs and the
// append-only cachestore. With Config.CacheDir set, the server
//
//   - warm-starts at New: every valid record in the store is replayed
//     into the result cache (code + counters, re-checksummed on insert)
//     or the decode cache (b1 document → frozen COW master). Records
//     the store flags as corrupt never reach this code; records that
//     pass the store's checksum but fail the b1 decoder are counted as
//     warm-skipped and dropped — either way nothing questionable is
//     ever served.
//   - writes behind on insert: the two cache-insert points hand a
//     Record to the store's write-behind queue, which never blocks the
//     request path (a full queue drops the record — the store is a
//     cache of a cache).
//   - drives compaction liveness: the store's Live callback asks the
//     LRUs whether a key is still resident, so the disk follows memory
//     instead of growing monotonically.
//
// The store is closed in Drain after the workers stop, so every
// accepted request's write-behind Put has been enqueued by then and
// Close's flush makes it durable.
package server

import (
	"fmt"

	"outofssa/internal/cachestore"
	"outofssa/internal/ir"
	"outofssa/internal/obs/metrics"
)

// openStore opens the configured cache store and replays it into the
// in-memory caches. Called from New after the caches exist; returns
// (nil, nil) when persistence is disabled.
func (s *Server) openStore() (*cachestore.Store, error) {
	if s.conf.CacheDir == "" {
		return nil, nil
	}
	policy, err := cachestore.ParseFsyncPolicy(s.conf.StoreFsync)
	if err != nil {
		return nil, err
	}
	store, err := cachestore.Open(s.conf.CacheDir, cachestore.Options{
		MaxBytes: s.conf.StoreMaxBytes,
		Fsync:    policy,
		Live: func(kind cachestore.Kind, key uint64) bool {
			switch kind {
			case cachestore.KindResult:
				return s.cache.contains(key)
			case cachestore.KindDecode:
				return s.decode.contains(key)
			}
			return false
		},
	})
	if err != nil {
		return nil, err
	}

	// Warm scan. The store yields only records whose frame checksum
	// verified; the b1 decoder re-validates decode payloads end to end
	// (arena reconstruction + Verify), so a record that was written
	// corrupt — not just stored corrupt — is also caught here.
	warm := map[cachestore.Kind]int{}
	skipped := 0
	scanErr := store.Scan(func(rec *cachestore.Record) bool {
		switch rec.Kind {
		case cachestore.KindResult:
			s.cache.put(rec.Key, &cacheEntry{code: rec.Payload, name: rec.Name,
				moves: rec.Moves, instrs: rec.Instrs, fellBack: rec.FellBack, degraded: rec.Degraded})
			warm[rec.Kind]++
		case cachestore.KindDecode:
			f, err := ir.Unmarshal(rec.Payload)
			if err != nil {
				skipped++
				return true
			}
			if s.decode.warm(rec.Key, f) {
				warm[rec.Kind]++
			}
		default:
			skipped++
		}
		return true
	})
	if scanErr != nil {
		store.Close()
		return nil, fmt.Errorf("server: warm scan: %w", scanErr)
	}
	if reg := s.reg; reg != nil {
		reg.Counter(MetricStoreWarm, metrics.L("kind", "result")).Add(int64(warm[cachestore.KindResult]))
		reg.Counter(MetricStoreWarm, metrics.L("kind", "decode")).Add(int64(warm[cachestore.KindDecode]))
		reg.Counter(MetricStoreWarmSkipped).Add(int64(skipped))
	}
	s.bridgeStoreMetrics(store)
	return store, nil
}

// bridgeStoreMetrics exposes the store's internal counters as
// laocd_store_* families. CounterFunc reads them at snapshot time, so
// there is no double bookkeeping; size/segments are gauge-valued but
// ride the same bridge (the registry has no GaugeFunc — their help
// strings say so).
func (s *Server) bridgeStoreMetrics(store *cachestore.Store) {
	reg := s.reg
	if reg == nil {
		return
	}
	reg.CounterFunc(MetricStoreAppends, func() int64 { return store.Stats().Appends })
	reg.CounterFunc(MetricStoreAppendBytes, func() int64 { return store.Stats().AppendBytes })
	reg.CounterFunc(MetricStoreDropped, func() int64 { return store.Stats().Dropped })
	reg.CounterFunc(MetricStoreFsyncs, func() int64 { return store.Stats().Fsyncs })
	reg.CounterFunc(MetricStoreScanRecords, func() int64 { return store.Stats().ScanRecords })
	reg.CounterFunc(MetricStoreCorrupt, func() int64 { return store.Stats().CorruptDropped })
	reg.CounterFunc(MetricStoreTruncated, func() int64 { return store.Stats().TruncatedBytes })
	reg.CounterFunc(MetricStoreCompactions, func() int64 { return store.Stats().Compactions })
	reg.CounterFunc(MetricStoreCompactDropped, func() int64 { return store.Stats().CompactDropped })
	reg.CounterFunc(MetricStoreSizeBytes, func() int64 { return store.Stats().SizeBytes })
	reg.CounterFunc(MetricStoreSegments, func() int64 { return store.Stats().Segments })
}

// persistResult hands a freshly inserted result-cache entry to the
// write-behind queue. No-op without a store.
func (s *Server) persistResult(key uint64, e *cacheEntry) {
	if s.store == nil {
		return
	}
	s.store.Put(&cachestore.Record{
		Kind: cachestore.KindResult, Key: key, Payload: e.code,
		Name: e.name, Moves: e.moves, Instrs: e.instrs,
		FellBack: e.fellBack, Degraded: e.degraded,
	})
}

// persistDecode hands a freshly decoded function to the write-behind
// queue as its b1 document. Called before the function is interned
// (and thereby frozen and shared), so the marshal reads bytes no other
// goroutine can touch yet. No-op without a store.
func (s *Server) persistDecode(key uint64, f *ir.Func) {
	if s.store == nil {
		return
	}
	doc, err := ir.MarshalBinary(f)
	if err != nil {
		return
	}
	s.store.Put(&cachestore.Record{Kind: cachestore.KindDecode, Key: key, Payload: doc})
}
