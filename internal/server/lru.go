// The one LRU under both server caches. PR 7 grew two hand-rolled
// LRUs (result cache, decode-master cache) with identical locking and
// eviction but different integrity and teardown rules; unifying them
// matters now that the persistent store hooks into cache liveness —
// compaction asks "is this key still resident?" through one interface
// instead of two.
//
// The type parameter carries the per-cache rules as hooks:
//
//   - check re-verifies an entry on every get (the result cache's
//     checksum paranoia); an entry that fails is removed and reported
//     as poisoned, never returned.
//   - onEvict runs under the lock whenever an entry leaves the cache
//     (capacity eviction, replacement, poison removal) — the decode
//     cache releases its COW family ref there, which must be ordered
//     against concurrent snapshot() calls, hence under the lock.
package server

import (
	"container/list"
	"sync"
)

type lruSlot[V any] struct {
	key uint64
	val V
}

// lru is a fixed-capacity LRU keyed by content hash. All methods are
// safe for concurrent use.
type lru[V any] struct {
	mu      sync.Mutex
	cap     int
	entries map[uint64]*list.Element
	order   *list.List // front = most recent; values are *lruSlot[V]
	check   func(V) bool
	onEvict func(uint64, V)
}

func newLRU[V any](capacity int, check func(V) bool, onEvict func(uint64, V)) *lru[V] {
	if capacity <= 0 {
		capacity = 1024
	}
	return &lru[V]{
		cap:     capacity,
		entries: make(map[uint64]*list.Element, capacity),
		order:   list.New(),
		check:   check,
		onEvict: onEvict,
	}
}

// get returns the value for key after re-running the integrity check.
// poisoned reports an entry that existed but failed the check; it has
// already been removed when get returns.
func (c *lru[V]) get(key uint64) (v V, ok, poisoned bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return v, false, false
	}
	slot := el.Value.(*lruSlot[V])
	if c.check != nil && !c.check(slot.val) {
		c.removeLocked(el)
		return v, false, true
	}
	c.order.MoveToFront(el)
	return slot.val, true, false
}

// with bumps key to MRU and runs use on its value under the lock;
// it reports whether the key was present. The integrity check is NOT
// applied — with is the decode cache's snapshot path, whose values
// carry no checksum.
func (c *lru[V]) with(key uint64, use func(V)) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return false
	}
	c.order.MoveToFront(el)
	use(el.Value.(*lruSlot[V]).val)
	return true
}

// put inserts (or replaces) the value for key, evicting past capacity.
func (c *lru[V]) put(key uint64, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.removeLocked(el)
	}
	c.entries[key] = c.order.PushFront(&lruSlot[V]{key: key, val: v})
	c.evictLocked()
}

// intern inserts v for key if absent — an existing entry wins and v is
// the loser — then runs use on the winner under the lock. inserted
// reports whether v won.
func (c *lru[V]) intern(key uint64, v V, use func(winner V, inserted bool)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		use(el.Value.(*lruSlot[V]).val, false)
		return
	}
	c.entries[key] = c.order.PushFront(&lruSlot[V]{key: key, val: v})
	c.evictLocked()
	use(v, true)
}

// contains reports residency without an MRU bump — the store's
// compaction liveness probe, which must not distort recency.
func (c *lru[V]) contains(key uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// each runs fn over the entries, most recent first, under the lock,
// stopping when fn returns true; it reports whether fn ever did.
func (c *lru[V]) each(fn func(uint64, V) bool) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.order.Front(); el != nil; el = el.Next() {
		slot := el.Value.(*lruSlot[V])
		if fn(slot.key, slot.val) {
			return true
		}
	}
	return false
}

// len reports the live entry count.
func (c *lru[V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

func (c *lru[V]) evictLocked() {
	for c.order.Len() > c.cap {
		c.removeLocked(c.order.Back())
	}
}

func (c *lru[V]) removeLocked(el *list.Element) {
	slot := el.Value.(*lruSlot[V])
	delete(c.entries, slot.key)
	c.order.Remove(el)
	if c.onEvict != nil {
		c.onEvict(slot.key, slot.val)
	}
}
