package liveness_test

import (
	"fmt"
	"testing"

	"outofssa/internal/cfg"
	"outofssa/internal/ir"
	"outofssa/internal/liveness"
	"outofssa/internal/pin"
	"outofssa/internal/pipeline"
	"outofssa/internal/ssa"
	"outofssa/internal/testprog"
)

// crossCheckEngines requires the query engine to agree bit-for-bit with
// the iterative fixed point on f, over every query the API offers: the
// dense per-block sets, every (variable, block) point query, and the
// per-instruction LiveAfter sets. Two query Infos are exercised — one
// asked point queries first (so the strict-variable dominance fast path
// and the per-variable walks answer before any dense set exists) and
// one asked for dense sets first (so the block assembly drives the
// walks) — because the two orders take different code paths to the same
// memos.
func crossCheckEngines(t *testing.T, f *ir.Func) {
	t.Helper()
	it := liveness.Compute(f)
	dom := cfg.Dominators(f)
	qPoint := liveness.NewQuery(f, dom)
	qSet := liveness.NewQuery(f, dom)

	for _, b := range f.Blocks() {
		for id := 0; id < f.NumValues(); id++ {
			v := ir.ValueID(id)
			if got, want := qPoint.LiveIn(v, b), it.LiveIn(v, b); got != want {
				t.Fatalf("%s: LiveIn(%v, %v): query=%v iterative=%v\n%s", f.Name, f.VStr(v), b, got, want, f)
			}
			if got, want := qPoint.LiveOut(v, b), it.LiveOut(v, b); got != want {
				t.Fatalf("%s: LiveOut(%v, %v): query=%v iterative=%v\n%s", f.Name, f.VStr(v), b, got, want, f)
			}
			if got, want := qPoint.ExitLive(v, b), it.ExitLiveSet(b).Has(id); got != want {
				t.Fatalf("%s: ExitLive(%v, %v): query=%v iterative=%v\n%s", f.Name, f.VStr(v), b, got, want, f)
			}
		}
	}
	for _, b := range f.Blocks() {
		if !qSet.LiveInSet(b).Equal(it.LiveInSet(b)) {
			t.Fatalf("%s: LiveInSet(%v): query %v, iterative %v\n%s",
				f.Name, b, qSet.LiveInSet(b).Elems(), it.LiveInSet(b).Elems(), f)
		}
		if !qSet.LiveOutSet(b).Equal(it.LiveOutSet(b)) {
			t.Fatalf("%s: LiveOutSet(%v): query %v, iterative %v\n%s",
				f.Name, b, qSet.LiveOutSet(b).Elems(), it.LiveOutSet(b).Elems(), f)
		}
		if !qSet.ExitLiveSet(b).Equal(it.ExitLiveSet(b)) {
			t.Fatalf("%s: ExitLiveSet(%v): query %v, iterative %v\n%s",
				f.Name, b, qSet.ExitLiveSet(b).Elems(), it.ExitLiveSet(b).Elems(), f)
		}
		for i := 0; i < b.NumInstrs(); i++ {
			if !qSet.LiveAfter(b, i).Equal(it.LiveAfter(b, i)) {
				t.Fatalf("%s: LiveAfter(%v, %d): query %v, iterative %v\n%s",
					f.Name, b, i, qSet.LiveAfter(b, i).Elems(), it.LiveAfter(b, i).Elems(), f)
			}
		}
	}
}

// ssaRand generates a random structured program and converts it to SSA
// with the real pin-collect phases, matching the production pipeline's
// IR shape (φ webs, SP ties, ABI slots).
func ssaRand(t *testing.T, seed int64, opt testprog.RandOptions) *ir.Func {
	t.Helper()
	f := testprog.Rand(seed, opt)
	info, err := ssa.Build(f)
	if err != nil {
		t.Fatalf("ssa.Build(seed %d): %v", seed, err)
	}
	pin.CollectSP(f, info)
	pin.CollectABI(f)
	return f
}

// TestLivenessEnginesAgree is the property test: over random functions
// — both the raw pre-SSA form (multi-def variables, no strictness) and
// the pinned SSA form — the engines must agree exactly.
func TestLivenessEnginesAgree(t *testing.T) {
	t.Run("ssa", func(t *testing.T) {
		for seed := int64(0); seed < 40; seed++ {
			crossCheckEngines(t, ssaRand(t, seed, testprog.DefaultRandOptions()))
		}
	})
	// Pre-SSA: variables are defined on every assignment, so almost
	// nothing is strict and the engine has to fall back to exact walks.
	t.Run("pre-ssa", func(t *testing.T) {
		for seed := int64(0); seed < 40; seed++ {
			crossCheckEngines(t, testprog.Rand(seed, testprog.DefaultRandOptions()))
		}
	})
}

// TestLivenessEnginesAgreeOnSuites cross-checks the deterministic test
// programs (lost copy, swap, nesting).
func TestLivenessEnginesAgreeOnSuites(t *testing.T) {
	for i, mk := range []func() *ir.Func{
		testprog.Diamond, testprog.Loop, testprog.SwapLoop, testprog.NestedLoops,
	} {
		f := mk()
		if _, err := ssa.Build(f); err != nil {
			t.Fatalf("builder %d: %v", i, err)
		}
		crossCheckEngines(t, f)
	}
}

// TestLivenessEnginesAgreeUnreachable pins the unreachable-block
// contract: the iterative engine sweeps only entry-reachable blocks, so
// unreachable blocks keep empty sets and their φ edges and uses
// contribute nothing — the query engine must filter its summaries the
// same way, not treat the dead block's uses as live-range seeds.
func TestLivenessEnginesAgreeUnreachable(t *testing.T) {
	bld := ir.NewBuilder("unreach")
	entry := bld.Block("entry")
	left := bld.Fn.NewBlock("left")
	right := bld.Fn.NewBlock("right")
	dead := bld.Fn.NewBlock("dead")
	merge := bld.Fn.NewBlock("merge")

	a, one, c := bld.Val("a"), bld.Val("one"), bld.Val("c")
	x1, x2, x3, d, r := bld.Val("x1"), bld.Val("x2"), bld.Val("x3"), bld.Val("d"), bld.Val("r")

	bld.SetBlock(entry)
	bld.Input(a)
	bld.Const(one, 1)
	bld.Binary(ir.CmpLT, c, a, one)
	bld.Br(c, left, right)

	bld.SetBlock(left)
	bld.Binary(ir.Add, x1, a, one)
	bld.Jump(merge)

	bld.SetBlock(right)
	bld.Binary(ir.Add, x2, a, a)
	bld.Jump(merge)

	// No edge leads here: uses of reachable values (a, x1) in this block
	// must not extend their live ranges, and the φ argument flowing from
	// this block must not be exit-live anywhere.
	bld.SetBlock(dead)
	bld.Binary(ir.Add, d, a, x1)
	bld.Jump(merge)

	bld.SetBlock(merge)
	bld.Phi(x3, x1, x2, d)
	bld.Binary(ir.Mul, r, x3, a)
	bld.Output(r)

	f := bld.Fn
	crossCheckEngines(t, f)

	q := liveness.NewQuery(f, cfg.Dominators(f))
	if q.LiveOut(a, dead) || !q.LiveOutSet(dead).Empty() {
		t.Fatal("unreachable block has a non-empty live set under the query engine")
	}
	if q.ExitLive(d, dead) {
		t.Fatal("φ argument from an unreachable predecessor reported exit-live")
	}
}

// TestLivenessEnginesAgreePhiHeavy cross-checks a merge carrying a wide
// φ prefix (every arm value flows through its own φ and stays live past
// the merge), the shape that stresses the φ-edge seeds and the parallel
// φ semantics.
func TestLivenessEnginesAgreePhiHeavy(t *testing.T) {
	const k = 12
	bld := ir.NewBuilder("phiheavy")
	entry := bld.Block("entry")
	left := bld.Fn.NewBlock("left")
	right := bld.Fn.NewBlock("right")
	merge := bld.Fn.NewBlock("merge")

	a, one, c := bld.Val("a"), bld.Val("one"), bld.Val("c")
	bld.SetBlock(entry)
	bld.Input(a)
	bld.Const(one, 1)
	bld.Binary(ir.CmpLT, c, a, one)
	bld.Br(c, left, right)

	var ls, rs, ms [k]ir.ValueID
	for i := range ls {
		ls[i] = bld.Val(fmt.Sprintf("l%d", i))
		rs[i] = bld.Val(fmt.Sprintf("r%d", i))
		ms[i] = bld.Val(fmt.Sprintf("m%d", i))
	}
	bld.SetBlock(left)
	for i := range ls {
		bld.Binary(ir.Add, ls[i], a, one)
	}
	bld.Jump(merge)
	bld.SetBlock(right)
	for i := range rs {
		bld.Binary(ir.Add, rs[i], a, a)
	}
	bld.Jump(merge)

	bld.SetBlock(merge)
	for i := range ms {
		bld.Phi(ms[i], ls[i], rs[i])
	}
	sum := ms[0]
	for i := 1; i < k; i++ {
		next := bld.Val(fmt.Sprintf("s%d", i))
		bld.Binary(ir.Add, next, sum, ms[i])
		sum = next
	}
	bld.Output(sum)

	crossCheckEngines(t, bld.Fn)
}

// TestRevalidateAfterCodeMutation exercises the incremental path: after
// a code-only mutation, Revalidate must keep the walks of untouched
// variables, drop the touched ones, and the revalidated Info must again
// agree with a fresh fixed point on everything.
func TestRevalidateAfterCodeMutation(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		f := ssaRand(t, seed, testprog.DefaultRandOptions())
		q := liveness.NewQuery(f, cfg.Dominators(f))
		// Materialize every walk so kept/dropped counts are observable.
		for _, b := range f.Blocks() {
			q.LiveOutSet(b)
		}

		// Code-only mutation that actually moves a live range: copy a
		// value defined in the entry block at the top of the LAST block,
		// giving it a new upward-exposed use there (the shape of a
		// rematerialization or repair-copy pass). No CFG change.
		cfgGen := f.CFGGeneration()
		src := ir.NoValue
		for _, in := range f.Entry().Instrs() {
			if in.Op() != ir.Phi && in.NumDefs() > 0 && !f.IsPhys(in.Def(0)) {
				src = in.Def(0)
				break
			}
		}
		blocks := f.Blocks()
		last := blocks[len(blocks)-1]
		if src == ir.NoValue || last == f.Entry() {
			continue // degenerate shape; other seeds cover the property
		}
		dst := f.NewValue("reval.t")
		last.InsertAt(last.FirstNonPhi(), f.NewInstr(ir.Copy, ir.Ops(dst), ir.Ops(src)))
		if f.CFGGeneration() != cfgGen {
			t.Fatalf("seed %d: the copy insertion moved the CFG generation", seed)
		}

		q2, kept, dropped := q.Revalidate()
		if q2 == q {
			t.Fatalf("seed %d: Revalidate returned the same Info pointer", seed)
		}
		if dropped == 0 {
			t.Fatalf("seed %d: the copied variable's walk was not invalidated", seed)
		}
		if kept == 0 {
			t.Fatalf("seed %d: no walk survived a one-value mutation (kept=%d dropped=%d)", seed, kept, dropped)
		}

		it := liveness.Compute(f)
		for _, b := range f.Blocks() {
			if !q2.LiveInSet(b).Equal(it.LiveInSet(b)) ||
				!q2.LiveOutSet(b).Equal(it.LiveOutSet(b)) ||
				!q2.ExitLiveSet(b).Equal(it.ExitLiveSet(b)) {
				t.Fatalf("seed %d: revalidated Info diverges from fresh fixed point at %v", seed, b)
			}
		}
	}
}

// TestPipelineAgreesAcrossEngines runs the full pipeline over random
// programs under both liveness engines, verify off and on, and requires
// identical final code and move counts — the end-to-end form of the
// agreement property (the verifier itself consumes liveness, so checked
// mode exercises extra query paths).
func TestPipelineAgreesAcrossEngines(t *testing.T) {
	prev := liveness.DefaultEngine
	defer func() { liveness.DefaultEngine = prev }()

	conf := pipeline.Configs["sreedhar+c"]
	for seed := int64(0); seed < 10; seed++ {
		type outcome struct {
			code  string
			moves int
		}
		var results [2][2]outcome // engine × verify
		for ei, eng := range []liveness.Engine{liveness.EngineIterative, liveness.EngineQuery} {
			for vi, verify := range []bool{false, true} {
				liveness.DefaultEngine = eng
				g := testprog.Rand(seed, testprog.DefaultRandOptions())
				c := conf
				c.Verify = verify
				res, err := pipeline.Run(g, c)
				if err != nil {
					t.Fatalf("seed %d engine %v verify %v: %v", seed, eng, verify, err)
				}
				results[ei][vi] = outcome{code: g.String(), moves: res.Moves}
			}
		}
		want := results[0][0]
		for ei := 0; ei < 2; ei++ {
			for vi := 0; vi < 2; vi++ {
				if results[ei][vi] != want {
					t.Fatalf("seed %d: pipeline output diverges (engine idx %d, verify %v): moves %d vs %d",
						seed, ei, vi == 1, results[ei][vi].moves, want.moves)
				}
			}
		}
	}
}

// fuzzEngineOptions maps the fuzzed size to generator knobs, mirroring
// the interference engine fuzzer so crashers transfer between corpora.
func fuzzEngineOptions(size int64) testprog.RandOptions {
	if size < 0 {
		size = -size
	}
	return testprog.RandOptions{
		MaxDepth:      int(1 + size%3),
		Vars:          int(3 + (size/3)%5),
		StmtsPerBlock: int(1 + (size/18)%5),
		Calls:         size%2 == 0,
		Stack:         (size/2)%2 == 0,
	}
}

// FuzzLivenessEngines fuzzes the query engine against the iterative
// oracle, on both the pre-SSA and the pinned-SSA form of each random
// function.
func FuzzLivenessEngines(f *testing.F) {
	f.Add(int64(0), int64(0))
	f.Add(int64(1), int64(17))
	f.Add(int64(7), int64(36))
	f.Add(int64(42), int64(5))
	f.Add(int64(1002), int64(90))
	f.Fuzz(func(t *testing.T, seed, size int64) {
		opt := fuzzEngineOptions(size)
		crossCheckEngines(t, testprog.Rand(seed, opt))
		crossCheckEngines(t, ssaRand(t, seed, opt))
	})
}
