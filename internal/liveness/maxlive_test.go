package liveness_test

import (
	"testing"

	"outofssa/internal/cfg"
	"outofssa/internal/ir"
	"outofssa/internal/liveness"
	"outofssa/internal/ssa"
	"outofssa/internal/testprog"
)

// TestMaxLiveKnownValues pins MAXLIVE on programs small enough to count
// by hand.
func TestMaxLiveKnownValues(t *testing.T) {
	// Straight line: a, b live together between the input and the add,
	// then only c. MAXLIVE = 2.
	bld := ir.NewBuilder("straight")
	entry := bld.Block("entry")
	a, b, c := bld.Val("a"), bld.Val("b"), bld.Val("c")
	bld.SetBlock(entry)
	bld.Input(a, b)
	bld.Binary(ir.Add, c, a, b)
	bld.Output(c)
	f := bld.Fn
	if got := liveness.MaxLive(f, liveness.Compute(f)); got != 2 {
		t.Fatalf("straight-line MAXLIVE = %d, want 2", got)
	}

	// The loop program in SSA form: pressure peaks at the head's branch
	// point with n, the φ'd counter and accumulator, the loop-invariant
	// constant `one`, and the comparison result all in flight.
	g := testprog.Loop()
	ssa.MustBuild(g)
	got := liveness.MaxLive(g, liveness.Compute(g))
	if got != 5 {
		t.Fatalf("loop MAXLIVE = %d, want 5", got)
	}
}

// TestMaxLiveEnginesAgree: MAXLIVE is a pure function of the program,
// so the iterative and query engines must report the same value on
// every shared test program and a pile of random ones.
func TestMaxLiveEnginesAgree(t *testing.T) {
	funcs := testprog.All()
	for seed := int64(0); seed < 20; seed++ {
		funcs = append(funcs, testprog.Rand(seed, testprog.DefaultRandOptions()))
	}
	for _, f := range funcs {
		ssa.MustBuild(f)
		it := liveness.MaxLive(f, liveness.Compute(f))
		q := liveness.MaxLive(f, liveness.NewQuery(f, cfg.Dominators(f)))
		if it != q {
			t.Fatalf("%s: MAXLIVE diverges: iterative %d, query %d", f.Name, it, q)
		}
		if it <= 0 {
			t.Fatalf("%s: MAXLIVE = %d, want positive", f.Name, it)
		}
	}
}
