package liveness_test

import (
	"testing"

	"outofssa/internal/ir"
	"outofssa/internal/liveness"
	"outofssa/internal/ssa"
	"outofssa/internal/testprog"
)

func blockByName(f *ir.Func, name string) *ir.Block {
	for _, b := range f.Blocks() {
		if b.Name == name {
			return b
		}
	}
	return nil
}

func valByName(f *ir.Func, name string) ir.ValueID {
	for id := 0; id < f.NumValues(); id++ {
		if f.ValueName(ir.ValueID(id)) == name {
			return ir.ValueID(id)
		}
	}
	return ir.NoValue
}

func TestLivenessLoop(t *testing.T) {
	f := testprog.Loop()
	live := liveness.Compute(f)
	head := blockByName(f, "head")
	body := blockByName(f, "body")
	exit := blockByName(f, "exit")
	s := valByName(f, "s")
	i := valByName(f, "i")
	c := valByName(f, "c")

	if !live.LiveIn(s, head) || !live.LiveIn(i, head) {
		t.Error("s and i must be live into head")
	}
	if !live.LiveOut(s, body) || !live.LiveOut(i, body) {
		t.Error("s and i must be live out of body")
	}
	if live.LiveIn(c, head) {
		t.Error("c is defined in head before use; not live-in")
	}
	if live.LiveOut(s, exit) || live.LiveIn(i, exit) {
		t.Error("nothing live out of exit; i dead in exit")
	}
}

// TestPhiSemantics checks the paper's §3.2 definition: a φ argument not
// otherwise used is dead at the exit of the predecessor block and at the
// entry of the φ's block; the φ def is not live-in.
func TestPhiSemantics(t *testing.T) {
	bld := ir.NewBuilder("phisem")
	entry := bld.Block("entry")
	l := bld.Fn.NewBlock("l")
	r := bld.Fn.NewBlock("r")
	join := bld.Fn.NewBlock("join")

	c, x1, x2, x3 := bld.Val("c"), bld.Val("x1"), bld.Val("x2"), bld.Val("x3")
	bld.SetBlock(entry)
	bld.Input(c)
	bld.Br(c, l, r)
	bld.SetBlock(l)
	bld.Const(x1, 1)
	bld.Jump(join)
	bld.SetBlock(r)
	bld.Const(x2, 2)
	bld.Jump(join)
	bld.SetBlock(join)
	bld.Phi(x3, x1, x2)
	bld.Output(x3)

	live := liveness.Compute(bld.Fn)
	if live.LiveOut(x1, l) {
		t.Error("φ use x1 must not be in LiveOut(l) (dead at exit of pred)")
	}
	if !live.ExitLiveSet(l).Has(int(x1)) {
		t.Error("φ use x1 must be in ExitLive(l) (live before the copy point)")
	}
	if live.LiveIn(x1, join) || live.LiveIn(x3, join) {
		t.Error("neither φ arg nor φ def may be live-in to the φ block")
	}
	if live.LiveOut(x3, l) || live.LiveOut(x3, r) {
		t.Error("φ def must not be live out of predecessors")
	}
}

// TestPhiArgLiveThrough: if the φ argument IS used elsewhere after the
// block, it stays live-out of the predecessor (Class 2 interference
// relies on this distinction).
func TestPhiArgLiveThrough(t *testing.T) {
	bld := ir.NewBuilder("phithrough")
	entry := bld.Block("entry")
	l := bld.Fn.NewBlock("l")
	r := bld.Fn.NewBlock("r")
	join := bld.Fn.NewBlock("join")

	c, x1, x2, x3, y := bld.Val("c"), bld.Val("x1"), bld.Val("x2"), bld.Val("x3"), bld.Val("y")
	bld.SetBlock(entry)
	bld.Input(c, x1)
	bld.Br(c, l, r)
	bld.SetBlock(l)
	bld.Jump(join)
	bld.SetBlock(r)
	bld.Const(x2, 2)
	bld.Jump(join)
	bld.SetBlock(join)
	bld.Phi(x3, x1, x2)
	bld.Binary(ir.Add, y, x3, x1) // x1 used after the φ
	bld.Output(y)

	live := liveness.Compute(bld.Fn)
	if !live.LiveOut(x1, l) || !live.LiveOut(x1, r) {
		t.Error("x1 used past the φ: must be live-out of both preds")
	}
	if !live.LiveIn(x1, join) {
		t.Error("x1 must be live-in to join (used by non-φ instruction)")
	}
}

// Reference liveness: v is live-in at block b iff some path from the top
// of b reaches a use of v (φ uses count at the end of the predecessor)
// before any def of v.
func refLiveIn(v ir.ValueID, b *ir.Block) bool {
	visited := make(map[*ir.Block]bool)
	var from func(*ir.Block) bool
	from = func(x *ir.Block) bool {
		if visited[x] {
			return false
		}
		visited[x] = true
		for _, in := range x.Instrs() {
			if in.Op() != ir.Phi {
				for _, u := range in.Uses() {
					if u.Val == v {
						return true
					}
				}
			}
			for _, d := range in.Defs() {
				if d.Val == v {
					return false
				}
			}
		}
		for si := 0; si < x.NumSuccs(); si++ {
			s := x.Succ(si)
			pi := s.PredIndex(x.ID)
			for _, phi := range s.Phis() {
				if phi.Use(pi) == v {
					return true
				}
			}
		}
		for si := 0; si < x.NumSuccs(); si++ {
			s := x.Succ(si)
			// φ defs of s kill v on that path.
			killed := false
			for _, phi := range s.Phis() {
				if phi.Def(0) == v {
					killed = true
				}
			}
			if !killed && from(s) {
				return true
			}
		}
		return false
	}
	return from(b)
}

func TestLivenessAgainstReference(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		f := testprog.Rand(seed, testprog.DefaultRandOptions())
		ssa.Build(f) // exercise the φ semantics too
		live := liveness.Compute(f)
		for _, b := range f.Blocks() {
			for id := 0; id < f.NumValues(); id++ {
				v := ir.ValueID(id)
				if f.IsPhys(v) {
					continue
				}
				want := refLiveIn(v, b)
				got := live.LiveIn(v, b)
				if got != want {
					t.Fatalf("seed %d: LiveIn(%v, %v) = %v, want %v", seed, f.VStr(v), b, got, want)
				}
			}
		}
	}
}

func TestLiveAfter(t *testing.T) {
	f := testprog.Loop()
	live := liveness.Compute(f)
	body := blockByName(f, "body")
	s := valByName(f, "s")
	i := valByName(f, "i")
	// After "s = s + i" (index 0), both s and i are live (i used next).
	after0 := live.LiveAfter(body, 0)
	if !after0.Has(int(s)) || !after0.Has(int(i)) {
		t.Error("s and i must be live after the accumulation")
	}
}
