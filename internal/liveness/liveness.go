// Package liveness computes live-variable information with the φ
// semantics of the paper (§3.2): a φ instruction "does not occur where it
// textually appears" — its i-th use occurs at the end of the i-th
// predecessor block (where the replacement move would go) and its
// definition occurs at the entry of its own block. Consequently a φ
// argument not otherwise used is dead at the exit of the predecessor and
// at the entry of the φ's block.
package liveness

import (
	"outofssa/internal/bitset"
	"outofssa/internal/cfg"
	"outofssa/internal/ir"
)

// Info holds per-block liveness sets plus enough structure for precise
// per-instruction queries. It is backed by one of two engines: the
// iterative fixed point (Compute) fills the dense per-block sets
// eagerly; the query engine (NewQuery) leaves them nil and answers
// through memoized per-variable walks in engine.go. Both expose the
// same API and produce identical answers.
type Info struct {
	fn *ir.Func

	// liveIn[b.ID]: values live at block entry, before φ definitions take
	// effect (φ defs and φ uses are never live-in).
	liveIn []*bitset.Set
	// liveOut[b.ID]: values live at block exit, after the φ-related
	// parallel-copy point (φ uses flowing out of b are not in liveOut).
	liveOut []*bitset.Set
	// exitLive[b.ID] = liveOut[b] plus the φ uses flowing out of b — the
	// live set just before the parallel-copy point at the end of b.
	exitLive []*bitset.Set

	// q is the query-engine state when this Info was built by NewQuery;
	// nil for iterative Infos. Revalidate returns a new wrapper sharing q.
	q *queryState
}

// Compute runs the backward dataflow to a fixed point. The per-block
// sets come from two slab allocations (one for the three escaping
// families, one for the transient gen/kill), and the iteration reuses a
// single scratch set instead of allocating a candidate live-in per block
// per pass — Compute runs once per analysis-cache miss per batch cell,
// so its malloc count is visible in the serial driver overhead.
func Compute(f *ir.Func) *Info {
	nb := f.NumBlocks()
	nv := f.NumValues()
	info := &Info{
		fn:       f,
		liveIn:   make([]*bitset.Set, nb),
		liveOut:  make([]*bitset.Set, nb),
		exitLive: make([]*bitset.Set, nb),
	}

	escaping := bitset.NewSlab(nv, 3*len(f.Blocks()))
	transient := bitset.NewSlab(nv, 2*len(f.Blocks()))

	// Per-block gen (upward-exposed non-φ uses) and kill (all defs,
	// including φ defs).
	gen := make([]*bitset.Set, nb)
	kill := make([]*bitset.Set, nb)
	for bi, b := range f.Blocks() {
		g, k := transient[2*bi], transient[2*bi+1]
		for _, in := range b.Instrs() {
			if in.Op() != ir.Phi {
				for _, u := range in.Uses() {
					if !k.Has(int(u.Val)) {
						g.Add(int(u.Val))
					}
				}
			}
			for _, d := range in.Defs() {
				k.Add(int(d.Val))
			}
		}
		gen[b.ID], kill[b.ID] = g, k
		info.liveIn[b.ID] = escaping[3*bi]
		info.liveOut[b.ID] = escaping[3*bi+1]
		info.exitLive[b.ID] = escaping[3*bi+2]
	}

	po := cfg.Postorder(f)
	scratch := bitset.New(nv)
	for changed := true; changed; {
		changed = false
		for _, b := range po {
			// exitLive = union of successor live-ins + φ uses from b.
			el := info.exitLive[b.ID]
			el.Clear()
			for _, sid := range b.Succs() {
				s := f.Block(sid)
				el.UnionWith(info.liveIn[sid])
				pi := s.PredIndex(b.ID)
				for _, phi := range s.Phis() {
					el.Add(int(phi.Use(pi)))
				}
			}
			// liveOut = union of successor live-ins (without the φ uses).
			lo := info.liveOut[b.ID]
			lo.Clear()
			for _, sid := range b.Succs() {
				lo.UnionWith(info.liveIn[sid])
			}
			// liveIn = gen ∪ (exitLive \ kill).
			scratch.CopyFrom(el)
			scratch.DiffWith(kill[b.ID])
			scratch.UnionWith(gen[b.ID])
			if !scratch.Equal(info.liveIn[b.ID]) {
				info.liveIn[b.ID].CopyFrom(scratch)
				changed = true
			}
		}
	}
	return info
}

// LiveIn reports whether v is live at the entry of b (φ defs of b are not
// live-in; φ uses flowing into b are not live-in).
func (l *Info) LiveIn(v ir.ValueID, b *ir.Block) bool {
	if l.q != nil {
		return l.q.liveIn(int(v), b)
	}
	return l.liveIn[b.ID].Has(int(v))
}

// LiveOut reports whether v is live at the exit of b, after the φ-copy
// point (paper Class 2 uses exactly this query).
func (l *Info) LiveOut(v ir.ValueID, b *ir.Block) bool {
	if l.q != nil {
		return l.q.liveOut(int(v), b)
	}
	return l.liveOut[b.ID].Has(int(v))
}

// ExitLive reports whether v is live just before the φ parallel-copy
// point at the end of b.
func (l *Info) ExitLive(v ir.ValueID, b *ir.Block) bool {
	if l.q != nil {
		return l.q.exitLive(int(v), b)
	}
	return l.exitLive[b.ID].Has(int(v))
}

// LiveInSet returns the live-in set of b (do not mutate).
func (l *Info) LiveInSet(b *ir.Block) *bitset.Set {
	if l.q != nil {
		in, _, _ := l.q.blockSets(b)
		return in
	}
	return l.liveIn[b.ID]
}

// LiveOutSet returns the live-out set of b (do not mutate).
func (l *Info) LiveOutSet(b *ir.Block) *bitset.Set {
	if l.q != nil {
		_, out, _ := l.q.blockSets(b)
		return out
	}
	return l.liveOut[b.ID]
}

// ExitLiveSet returns the set live just before the φ parallel-copy point
// at the end of b: LiveOut(b) plus φ uses flowing out of b.
func (l *Info) ExitLiveSet(b *ir.Block) *bitset.Set {
	if l.q != nil {
		_, _, exit := l.q.blockSets(b)
		return exit
	}
	return l.exitLive[b.ID]
}

// Incremental reports whether this Info supports Revalidate (query
// engine only, and not after Freeze — a frozen engine's storage is
// shared with concurrent readers and must not be recycled).
func (l *Info) Incremental() bool { return l.q != nil && !l.q.frozen }

// LiveAfter returns the set of values live immediately after the idx-th
// instruction of b. φ instructions are transparent (their defs are live
// from block entry; their uses happen in predecessors). The result is
// freshly allocated.
func (l *Info) LiveAfter(b *ir.Block, idx int) *bitset.Set {
	cur := l.ExitLiveSet(b).Copy()
	for i := b.NumInstrs() - 1; i > idx; i-- {
		in := b.Instr(i)
		if in.Op() == ir.Phi {
			break
		}
		for _, d := range in.Defs() {
			cur.Remove(int(d.Val))
		}
		for _, u := range in.Uses() {
			cur.Add(int(u.Val))
		}
	}
	return cur
}

// LiveAtDef reports whether v is live immediately after the instruction
// def (exclusive of def's own definitions other than v). This is the
// precise query behind the exact Class-1 interference test: two SSA
// values interfere iff the dominator-wise earlier one is live at the
// definition point of the later one.
func (l *Info) LiveAtDef(v ir.ValueID, def *ir.Instr) bool {
	b := def.Block()
	if def.Op() == ir.Phi {
		// φ defs happen at block entry, in parallel: v (not a def of this
		// block's φ prefix unless v IS another φ def, handled by strong
		// interference) is live there iff live-in.
		return l.LiveIn(v, b)
	}
	for i, in := range b.Instrs() {
		if in == def {
			return l.LiveAfter(b, i).Has(int(v))
		}
	}
	return false
}
