// Query-based liveness engine.
//
// The iterative engine (Compute) solves the backward dataflow globally:
// every request costs O(blocks × vars) words of set unions, repeated to
// a fixed point, and any code mutation throws the whole Info away. But
// the pinning machinery of the paper (§3.2, Variable_kills Classes 1-2)
// almost exclusively asks point queries — "is v live at the end of
// block b" — and in (strict) SSA form such queries are answerable from
// per-variable structure alone: a variable is live exactly on the
// backward-reachable region between its uses and its definition, and
// that region depends on nothing but the variable's own def/use summary
// and the CFG. The query engine exploits this:
//
//   - one linear scan builds a per-variable summary: blocks containing
//     defs, blocks with an upward-exposed (non-φ) use, and reachable
//     predecessor blocks feeding a φ use (the paper's "use at the end
//     of the predecessor" semantics);
//   - the first query about a variable runs one backward walk from the
//     summary's seed blocks through the reachable CFG, memoizing three
//     block sets (live-in / live-out / exit-live regions). Each block
//     is visited at most once — liveness of a single variable is plain
//     backward reachability, no fixed point;
//   - strict variables (single def whose block dominates every use)
//     answer many point queries without even walking: outside the def
//     block's dominance subtree the variable is provably dead. This is
//     the dominator-forest fast path; it is applied only to variables
//     whose summary *proves* strictness, so multi-def post-SSA values,
//     physical registers and corrupted IR still get the exact walk;
//   - dense set queries (LiveInSet etc.) assemble a per-block value set
//     lazily from the memoized walks: candidates are the strict
//     variables defined on the block's dominator chain plus the
//     non-strict ones, so the assembly is output-sized instead of
//     all-pairs.
//
// Incremental invalidation: a code-only mutation (same CFG generation)
// re-scans the summaries and drops only the walks of variables whose
// summary actually changed — a walk is a pure function of (summary,
// CFG), so an unchanged summary under an unchanged CFG keeps its memo.
// CFG mutations rebuild everything (analysis.Liveness keys on the
// split generation counters from DESIGN.md §8).
//
// The engine reproduces the iterative results bit for bit, including
// on irregular IR: unreachable blocks keep empty sets (the fixed point
// never visits them), multi-def and use-before-def variables take the
// exact walk, and φ uses whose predecessor is unreachable contribute
// nothing. engines_test.go and FuzzLivenessEngines enforce this.
package liveness

import (
	"sort"

	"outofssa/internal/bitset"
	"outofssa/internal/cfg"
	"outofssa/internal/ir"
)

// Engine selects the liveness implementation behind Info.
type Engine int

const (
	// EngineQuery (the default) is the per-variable query engine above.
	EngineQuery Engine = iota
	// EngineIterative is the original global fixed point (Compute), kept
	// as the differential oracle and for `ssabench -liveness-engine`.
	EngineIterative
)

func (e Engine) String() string {
	if e == EngineIterative {
		return "iterative"
	}
	return "query"
}

// DefaultEngine is the engine analysis.Liveness builds; ssabench's
// -liveness-engine flag overrides it process-wide.
var DefaultEngine = EngineQuery

// QueryStats counts the query engine's traffic on one Info. Zero for
// iterative Infos. Hits are queries answered from an existing memo (or
// the strict-dominance short circuit); Misses had to run a per-variable
// walk or assemble a block set first; VarRecomputes counts the walks
// actually executed and BlockBuilds the dense per-block assemblies.
type QueryStats struct {
	Hits          int64
	Misses        int64
	VarRecomputes int64
	BlockBuilds   int64
}

// varSummary is the per-variable def/use structure a walk depends on.
// The block-ID seeds live in the owning summarySet's shared arenas,
// referenced here by [off, end) ranges — the summary itself is
// pointer-free, which keeps the long-lived analysis cache cheap for
// the garbage collector to scan, and a whole rebuild costs four
// (recycled) allocations instead of three per variable. All seed
// ranges are sorted and deduplicated, making summary comparison (the
// revalidation filter) a plain range compare.
type varSummary struct {
	// nDefs counts def operands of the variable across the function
	// (multiple defs — post-SSA code — make the variable non-strict).
	nDefs int32
	// defBlk is the defining block of a strict variable, -1 otherwise.
	defBlk int32
	// strict: single def, def block reachable, no use-before-def in the
	// def block, and the def block dominates every use block. Exactly
	// the precondition of the dominance fast path, proven per variable.
	strict bool
	// defs ranges over blocks containing at least one def (the walk's
	// kill test); up over reachable blocks with an upward-exposed non-φ
	// use; phi over reachable predecessor blocks at whose end a φ reads
	// the variable (paper §3.2).
	defsOff, defsEnd int32
	upOff, upEnd     int32
	phiOff, phiEnd   int32
}

// summarySet is one generation of summaries: the per-variable records
// plus the three seed arenas their ranges index. The engine keeps two
// (current and retired) and swaps on revalidation, so steady-state
// rebuilds allocate nothing.
type summarySet struct {
	sums []varSummary
	// defs/up/phi are views into arena, carved per build — one backing
	// allocation for all three seed kinds.
	arena []int32
	defs  []int32
	up    []int32
	phi   []int32
}

func (ss *summarySet) defsOf(id int) []int32 {
	s := &ss.sums[id]
	return ss.defs[s.defsOff:s.defsEnd]
}

func (ss *summarySet) upOf(id int) []int32 {
	s := &ss.sums[id]
	return ss.up[s.upOff:s.upEnd]
}

func (ss *summarySet) phiOf(id int) []int32 {
	s := &ss.sums[id]
	return ss.phi[s.phiOff:s.phiEnd]
}

// equalVar reports whether variable id has the same summary in both
// sets (offsets are storage detail; contents decide).
func (ss *summarySet) equalVar(o *summarySet, id int) bool {
	return ss.sums[id].nDefs == o.sums[id].nDefs &&
		eqInt32s(ss.defsOf(id), o.defsOf(id)) &&
		eqInt32s(ss.upOf(id), o.upOf(id)) &&
		eqInt32s(ss.phiOf(id), o.phiOf(id))
}

func eqInt32s(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// packEvent packs a (variable ID, block ID) seed event into one word:
// variable in the high half, block in the low. Sorting-free: events are
// scattered through the per-variable cursors, which preserves the
// block-layout order the summaries rely on.
func packEvent(id int, bid int32) int64 {
	return int64(id)<<32 | int64(uint32(bid))
}

// hasBlk reports membership of id in a sorted block-ID slice.
func hasBlk(s []int32, id int32) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == id
}

// varWalk memoizes one variable's walk as the live-in block region: wpb
// words at walkWords[off]. The other two regions are derived — a
// variable is live-out of b iff it is live-in to some successor, and
// exit-live iff live-out or read by a φ at b's end (a sorted-summary
// lookup) — so storing live-in alone makes the walk three times
// smaller and its BFS three times lighter. Valid for the (summary,
// CFG) pair it was computed under. Keeping an offset instead of set
// pointers makes []varWalk pointer-free: thousands of memoized walks
// sit in the long-lived analysis cache, and the garbage collector's
// mark phase was the query engine's dominant overhead when each walk
// was separately allocated sets.
type varWalk struct {
	done bool
	off  int32
}

func bitAdd(w []uint64, i int) {
	w[i>>6] |= 1 << uint(i&63)
}

func bitHas(w []uint64, i int) bool {
	return w[i>>6]&(1<<uint(i&63)) != 0
}

// queryState is the engine behind a query-built Info. Info wrappers
// share it: Revalidate returns a fresh *Info around the same state, so
// pointer identity on Info retains its "content may have changed"
// meaning for consumers that cache analyses.
type queryState struct {
	fn  *ir.Func
	dom *cfg.DomTree
	nb  int // block-ID space at build time
	nv  int // value-ID space at the last (re)build

	reach   []bool
	blkByID []*ir.Block

	// cur holds the live summaries; prev is the retired generation,
	// kept only for its backing storage: each revalidation builds the
	// fresh summaries into prev, diffs against cur, then swaps.
	// Revalidation happens once per code mutation on the pipeline's hot
	// path, so its steady-state allocation rate matters as much as the
	// iterative engine's did.
	cur, prev summarySet

	walks []varWalk

	// The strict variables defined in block b — the dominator-chain
	// candidates — are strictIDs[strictOff[b-1]:strictOff[b]] (0-origin
	// for b == 0); nonStrict lists every other variable with at least
	// one seed. Together they cover all possibly-live variables of any
	// block. CSR layout for the same reason as the walks: no per-block
	// slice objects in the long-lived cache.
	strictOff []int32 // len nb+1
	strictIDs []int32
	nonStrict []int32

	// Lazily assembled dense per-block sets (value-ID sets), reset
	// wholesale on revalidation — they are cheap to rebuild from the
	// surviving walks, and their storage recycles through setPool.
	blkDone                []bool
	blkIn, blkOut, blkExit []*bitset.Set

	// Walk storage: one flat word arena, wpb words (one live-in
	// bit-plane) per walk. Invalidated walks park their offset on
	// walkFree for reuse (cleared on reallocation).
	wpb       int
	walkWords []uint64
	walkFree  []int32

	queue  []int32 // walk worklist scratch
	stamps []int32 // summary-scan epoch stamps: defStamp ++ useStamp
	// Packed (variable, block) seed events recorded while counting, so
	// the arena fill is a linear scatter instead of a second
	// operand-chasing scan of the instruction stream.
	evDef, evUp, evPhi []int64
	setPool            bitset.Pool

	stats QueryStats

	// frozen marks the state fully precomputed and read-only: every
	// variable walk has run and every live block's dense sets are built,
	// so point queries and set accessors are pure reads, safe for any
	// number of concurrent readers. Set by Info.Freeze; the stats
	// counters stop moving (a mutable hit counter would be a data race).
	frozen bool
}

// NewQuery builds a query-engine Info for f. dom must be the dominator
// tree of f's current CFG (analysis.Liveness passes its memoized one,
// keyed on the CFG generation).
func NewQuery(f *ir.Func, dom *cfg.DomTree) *Info {
	q := &queryState{
		fn:  f,
		dom: dom,
		nb:  f.NumBlocks(),
		nv:  f.NumValues(),
	}
	// Reachability falls out of the dominator tree: a block is reachable
	// iff it is the entry or has an immediate dominator. Deriving it here
	// saves the depth-first traversal cfg.Reachable would repeat.
	q.reach = make([]bool, q.nb)
	if len(f.Blocks()) > 0 {
		entry := f.Entry()
		for _, b := range f.Blocks() {
			if b == entry || (int(b.ID) < len(dom.Idom) && dom.Idom[b.ID] != nil) {
				q.reach[b.ID] = true
			}
		}
	}
	q.wpb = (q.nb + 63) / 64
	q.blkByID = make([]*ir.Block, q.nb)
	for _, b := range f.Blocks() {
		q.blkByID[b.ID] = b
	}
	q.buildSummaries(&q.cur)
	q.walks = make([]varWalk, q.nv)
	q.buildIndex()
	return &Info{fn: f, q: q}
}

// Engine reports which implementation backs this Info.
func (l *Info) Engine() Engine {
	if l.q != nil {
		return EngineQuery
	}
	return EngineIterative
}

// QueryStats returns the engine counters of a query Info (zero for the
// iterative engine). The counters accumulate over the state's lifetime,
// across Revalidate; consumers that want per-phase numbers (the
// interference analysis) diff two snapshots.
func (l *Info) QueryStats() QueryStats {
	if l.q == nil {
		return QueryStats{}
	}
	return l.q.stats
}

// Freeze precomputes every lazily-built structure of a query Info —
// all per-variable walks and the dense sets of every live block — and
// marks the engine read-only. After Freeze, every query is a pure read
// with no memo fills, no pool traffic and no stats updates, which makes
// the Info safe to share across goroutines (the iterative engine is
// immutable after Compute and needs no freezing). analysis.Liveness
// freezes the Infos it publishes for functions marked shared-read;
// exclusively-owned functions keep the lazy engine with its Revalidate
// path. Freeze is idempotent and a no-op on iterative Infos. A frozen
// Info no longer supports Revalidate (Incremental reports false), so
// the analysis cache rebuilds from scratch if the function is mutated
// later — mutating a shared function is a contract violation anyway.
func (l *Info) Freeze() {
	if l.q == nil || l.q.frozen {
		return
	}
	q := l.q
	for id := range q.walks {
		if id < len(q.cur.sums) {
			q.walkOf(id)
		}
	}
	for _, b := range q.fn.Blocks() {
		q.blockSets(b)
	}
	q.frozen = true
}

// Revalidate adapts a query Info to a code-only mutation of its
// function (the CFG generation must not have moved — the caller,
// analysis.Liveness, guarantees it). It re-scans the per-variable
// summaries and keeps every memoized walk whose summary is unchanged: a
// walk depends only on (summary, CFG), so the surviving memos stay
// exact. It returns a fresh Info wrapper sharing the engine state plus
// the number of walks kept and dropped. Panics on iterative Infos
// (callers gate on Engine()).
//
// Revalidation recycles storage: the dense block sets handed out by
// LiveInSet and friends before the call, and the walks of invalidated
// variables, are returned to the engine's pools and may be overwritten
// by later queries. Consumers must not hold those sets across a
// mutation — the ones that keep them (regalloc, coalescing) already
// Copy() before mutating, and everything else re-queries.
func (l *Info) Revalidate() (*Info, int, int) {
	q := l.q
	q.nv = q.fn.NumValues()
	q.buildSummaries(&q.prev) // fresh summaries, retired storage
	if cap(q.walks) >= q.nv {
		// The extended region is zero: walks never shrinks and the
		// capacity came zeroed from make.
		q.walks = q.walks[:q.nv]
	} else {
		grown := make([]varWalk, q.nv, q.nv+q.nv/2)
		copy(grown, q.walks)
		q.walks = grown
	}
	kept, dropped := 0, 0
	for id := range q.walks {
		w := &q.walks[id]
		if !w.done {
			continue
		}
		if id < len(q.cur.sums) && q.cur.equalVar(&q.prev, id) {
			kept++
		} else {
			dropped++
			q.walkFree = append(q.walkFree, w.off)
			*w = varWalk{}
		}
	}
	q.cur, q.prev = q.prev, q.cur
	q.buildIndex()
	return &Info{fn: q.fn, q: q}, kept, dropped
}

// buildSummaries scans the function and fills dst (recycling its
// storage) with the summary of every value: pass one counts each
// variable's seeds, a prefix sum carves the shared arenas, pass two
// fills them. Upward exposure uses the same prefix rule as the
// iterative engine's gen/kill construction: a non-φ use is upward
// exposed iff no def of the value precedes it in its block (φ defs
// count — they act at block entry).
func (q *queryState) buildSummaries(dst *summarySet) {
	nv := q.fn.NumValues()
	if cap(dst.sums) < nv {
		dst.sums = make([]varSummary, nv)
	} else {
		dst.sums = dst.sums[:nv]
	}
	sums := dst.sums
	for id := range sums {
		sums[id] = varSummary{defBlk: -1}
	}
	if cap(q.stamps) < 2*nv {
		q.stamps = make([]int32, 2*nv)
	} else {
		q.stamps = q.stamps[:2*nv]
		for i := range q.stamps {
			q.stamps[i] = 0
		}
	}
	defStamp, useStamp := q.stamps[:nv], q.stamps[nv:]
	evDef, evUp, evPhi := q.evDef[:0], q.evUp[:0], q.evPhi[:0]

	// One scan: count seeds per variable (the End fields are the
	// counters) and record each seed as a packed (variable, block)
	// event, so the arena fill below is a linear scatter instead of a
	// second operand-chasing walk over the instruction stream.
	for bi, b := range q.fn.Blocks() {
		epoch := int32(bi + 1)
		bid := int32(b.ID)
		reachable := int(b.ID) < len(q.reach) && q.reach[b.ID]
		for _, in := range b.Instrs() {
			if in.Op() != ir.Phi {
				for _, u := range in.Uses() {
					id := u.Val
					if defStamp[id] != epoch && useStamp[id] != epoch {
						useStamp[id] = epoch
						if reachable {
							sums[id].upEnd++
							evUp = append(evUp, packEvent(int(id), bid))
						}
					}
				}
			}
			for _, d := range in.Defs() {
				id := d.Val
				sums[id].nDefs++
				if defStamp[id] != epoch {
					defStamp[id] = epoch
					sums[id].defsEnd++
					evDef = append(evDef, packEvent(int(id), bid))
				}
			}
		}
		// φ uses read at the end of each reachable predecessor. Arity
		// mismatches (corrupted IR, caught by the verifier) are skipped
		// rather than crashed on: the engine stays total.
		if b.NumPhis() > 0 {
			for i, p := range b.Preds() {
				if int(p) >= len(q.reach) || !q.reach[p] {
					continue
				}
				pid := int32(p)
				for _, phi := range b.Phis() {
					if i >= phi.NumUses() {
						continue
					}
					id := phi.Use(i)
					sums[id].phiEnd++
					evPhi = append(evPhi, packEvent(int(id), pid))
				}
			}
		}
	}
	q.evDef, q.evUp, q.evPhi = evDef, evUp, evPhi

	// Prefix sums turn the counts into arena ranges; the End fields
	// become the fill cursors of the scatter.
	var dTot, uTot, pTot int32
	for id := range sums {
		s := &sums[id]
		dN, uN, pN := s.defsEnd, s.upEnd, s.phiEnd
		s.defsOff, s.defsEnd = dTot, dTot
		s.upOff, s.upEnd = uTot, uTot
		s.phiOff, s.phiEnd = pTot, pTot
		dTot += dN
		uTot += uN
		pTot += pN
	}
	total := int(dTot) + int(uTot) + int(pTot)
	if cap(dst.arena) < total {
		dst.arena = make([]int32, total)
	} else {
		dst.arena = dst.arena[:total]
	}
	dst.defs = dst.arena[:dTot]
	dst.up = dst.arena[dTot : int(dTot)+int(uTot)]
	dst.phi = dst.arena[int(dTot)+int(uTot):]

	for _, e := range evDef {
		s := &sums[e>>32]
		dst.defs[s.defsEnd] = int32(uint32(e))
		s.defsEnd++
	}
	for _, e := range evUp {
		s := &sums[e>>32]
		dst.up[s.upEnd] = int32(uint32(e))
		s.upEnd++
	}
	for _, e := range evPhi {
		s := &sums[e>>32]
		dst.phi[s.phiEnd] = int32(uint32(e))
		s.phiEnd++
	}

	for id := range sums {
		s := &sums[id]
		s.defsEnd = s.defsOff + int32(sortDedup(dst.defs[s.defsOff:s.defsEnd]))
		s.upEnd = s.upOff + int32(sortDedup(dst.up[s.upOff:s.upEnd]))
		s.phiEnd = s.phiOff + int32(sortDedup(dst.phi[s.phiOff:s.phiEnd]))
		if s.nDefs != 1 || s.defsEnd != s.defsOff+1 {
			continue
		}
		db := q.blkByID[dst.defs[s.defsOff]]
		if db == nil || !q.reach[db.ID] {
			continue
		}
		strict := true
		for _, u := range dst.up[s.upOff:s.upEnd] {
			if u == dst.defs[s.defsOff] || !q.dom.Dominates(db, q.blkByID[u]) {
				strict = false
				break
			}
		}
		if strict {
			for _, p := range dst.phi[s.phiOff:s.phiEnd] {
				if !q.dom.Dominates(db, q.blkByID[p]) {
					strict = false
					break
				}
			}
		}
		if strict {
			s.strict = true
			s.defBlk = dst.defs[s.defsOff]
		}
	}
}

func growInt32(s []int32, n int32) []int32 {
	if cap(s) < int(n) {
		return make([]int32, n)
	}
	return s[:n]
}

// sortDedup sorts a small block-ID range in place, removes duplicates,
// and returns the deduplicated length. The scan fills in block-layout
// order, which is ID order for defs and upward uses, so the sort is
// usually a no-op; φ-edge predecessors can arrive out of order.
func sortDedup(v []int32) int {
	if len(v) < 2 {
		return len(v)
	}
	sorted := true
	for i := 1; i < len(v); i++ {
		if v[i] < v[i-1] {
			sorted = false
			break
		}
	}
	if !sorted {
		sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	}
	out := 1
	for _, x := range v[1:] {
		if x != v[out-1] {
			v[out] = x
			out++
		}
	}
	return out
}

// buildIndex rebuilds the block-set candidate index and resets the
// dense per-block memos, recycling their storage (the Revalidate doc
// states the lifetime contract). Called after every (re)build of the
// summaries.
func (q *queryState) buildIndex() {
	if q.strictOff == nil {
		q.strictOff = make([]int32, q.nb+1)
		q.blkDone = make([]bool, q.nb)
		sets := make([]*bitset.Set, 3*q.nb)
		q.blkIn = sets[:q.nb:q.nb]
		q.blkOut = sets[q.nb : 2*q.nb : 2*q.nb]
		q.blkExit = sets[2*q.nb:]
	} else {
		for i := range q.strictOff {
			q.strictOff[i] = 0
		}
		for i, done := range q.blkDone {
			if !done {
				continue
			}
			q.blkDone[i] = false
			q.setPool.Put(q.blkIn[i])
			q.setPool.Put(q.blkOut[i])
			q.setPool.Put(q.blkExit[i])
			q.blkIn[i], q.blkOut[i], q.blkExit[i] = nil, nil, nil
		}
	}
	off := q.strictOff
	q.nonStrict = q.nonStrict[:0]
	for id := range q.cur.sums {
		s := &q.cur.sums[id]
		if s.strict {
			off[s.defBlk+1]++
		} else if s.upEnd > s.upOff || s.phiEnd > s.phiOff {
			q.nonStrict = append(q.nonStrict, int32(id))
		}
	}
	for b := 0; b < q.nb; b++ {
		off[b+1] += off[b]
	}
	q.strictIDs = growInt32(q.strictIDs, off[q.nb])
	// Filling advances off[b] from start(b) to end(b); since
	// end(b) == start(b+1), block b's range afterwards is
	// [off[b-1], off[b]) with an implicit 0 for b == 0.
	for id := range q.cur.sums {
		s := &q.cur.sums[id]
		if s.strict {
			q.strictIDs[off[s.defBlk]] = int32(id)
			off[s.defBlk]++
		}
	}
}

// strictDefsOf returns the strict variables defined in block bid.
func (q *queryState) strictDefsOf(bid int) []int32 {
	var lo int32
	if bid > 0 {
		lo = q.strictOff[bid-1]
	}
	return q.strictIDs[lo:q.strictOff[bid]]
}

// walkOf returns the memoized walk of a variable, running it on first
// request. The walk is the exact per-variable projection of the global
// dataflow: seed the upward-exposed use blocks (live-in there) and the
// φ-feeding predecessors (exit-live there, live-in too unless the block
// kills), then propagate live-in backward through reachable
// predecessors, stopping at blocks that define the variable. Each block
// enters the worklist at most once.
func (q *queryState) walkOf(id int) int32 {
	w := &q.walks[id]
	if w.done {
		return w.off
	}
	q.stats.VarRecomputes++
	need := q.wpb
	var off int32
	if n := len(q.walkFree); n > 0 {
		off = q.walkFree[n-1]
		q.walkFree = q.walkFree[:n-1]
		reuse := q.walkWords[off : int(off)+need]
		for i := range reuse {
			reuse[i] = 0
		}
	} else {
		off = int32(len(q.walkWords))
		if len(q.walkWords)+need > cap(q.walkWords) {
			grown := make([]uint64, len(q.walkWords), 2*cap(q.walkWords)+need)
			copy(grown, q.walkWords)
			q.walkWords = grown
		}
		// The fresh region is zero: make zeroes the whole capacity and
		// the arena only ever grows.
		q.walkWords = q.walkWords[:len(q.walkWords)+need]
	}
	w.off, w.done = off, true
	in := q.walkWords[off : int(off)+q.wpb]
	defs := q.cur.defsOf(id)
	queue := q.queue[:0]
	for _, u := range q.cur.upOf(id) {
		if !bitHas(in, int(u)) {
			bitAdd(in, int(u))
			queue = append(queue, u)
		}
	}
	for _, p := range q.cur.phiOf(id) {
		// exit-live and not killed in the block ⇒ live-in (gen ∪ (exit \ kill)).
		if !hasBlk(defs, p) && !bitHas(in, int(p)) {
			bitAdd(in, int(p))
			queue = append(queue, p)
		}
	}
	for len(queue) > 0 {
		bid := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, p := range q.blkByID[bid].Preds() {
			if int(p) >= len(q.reach) || !q.reach[p] {
				continue // the fixed point never visits unreachable blocks
			}
			if !hasBlk(defs, int32(p)) && !bitHas(in, int(p)) {
				bitAdd(in, int(p))
				queue = append(queue, int32(p))
			}
		}
	}
	q.queue = queue[:0]
	return off
}

// walkIn returns the live-in bit-plane of a memoized walk.
func (q *queryState) walkIn(off int32) []uint64 {
	return q.walkWords[off : int(off)+q.wpb]
}

// walkOutHas derives live-out of bid from the live-in plane: live-out
// iff live-in to some successor — the same successor union the
// iterative fixed point takes. The ID guard keeps the engine total on
// corrupted CFGs (a silently spliced edge may point at a block the
// walk was not sized for).
func (q *queryState) walkOutHas(in []uint64, bid int) bool {
	for _, s := range q.blkByID[bid].Succs() {
		if int(s) < q.nb && bitHas(in, int(s)) {
			return true
		}
	}
	return false
}

// deadByDominance is the strict-variable fast path: a strict variable
// is live only within the dominance region of its defining block, so a
// query about any block outside it is false without a walk.
func (q *queryState) deadByDominance(s *varSummary, b *ir.Block) bool {
	return s.strict && !q.dom.Dominates(q.blkByID[s.defBlk], b)
}

// countedWalk is walkOf plus the hit/miss accounting of a point query,
// with a single memo check.
func (q *queryState) countedWalk(id int) int32 {
	if w := &q.walks[id]; w.done {
		if !q.frozen {
			q.stats.Hits++
		}
		return w.off
	}
	q.stats.Misses++
	return q.walkOf(id)
}

func (q *queryState) liveIn(id int, b *ir.Block) bool {
	if id < 0 || id >= len(q.cur.sums) || int(b.ID) >= q.nb || !q.reach[b.ID] {
		return false
	}
	if q.deadByDominance(&q.cur.sums[id], b) {
		if !q.frozen {
			q.stats.Hits++
		}
		return false
	}
	return bitHas(q.walkIn(q.countedWalk(id)), int(b.ID))
}

func (q *queryState) liveOut(id int, b *ir.Block) bool {
	if id < 0 || id >= len(q.cur.sums) || int(b.ID) >= q.nb || !q.reach[b.ID] {
		return false
	}
	if q.deadByDominance(&q.cur.sums[id], b) {
		if !q.frozen {
			q.stats.Hits++
		}
		return false
	}
	return q.walkOutHas(q.walkIn(q.countedWalk(id)), int(b.ID))
}

func (q *queryState) exitLive(id int, b *ir.Block) bool {
	if id < 0 || id >= len(q.cur.sums) || int(b.ID) >= q.nb || !q.reach[b.ID] {
		return false
	}
	if q.deadByDominance(&q.cur.sums[id], b) {
		if !q.frozen {
			q.stats.Hits++
		}
		return false
	}
	if q.walkOutHas(q.walkIn(q.countedWalk(id)), int(b.ID)) {
		return true
	}
	return hasBlk(q.cur.phiOf(id), int32(b.ID))
}

// blockSets assembles (and memoizes) the dense value sets of one block
// from the per-variable walks. Candidates are the strict variables
// defined on b's dominator chain — a strict variable live anywhere in b
// has its def dominating b — plus every non-strict variable.
// Unreachable blocks keep empty sets, like the iterative engine.
func (q *queryState) blockSets(b *ir.Block) (in, out, exit *bitset.Set) {
	bid := int(b.ID)
	if bid < len(q.blkDone) && q.blkDone[bid] {
		if !q.frozen {
			q.stats.Hits++
		}
		return q.blkIn[bid], q.blkOut[bid], q.blkExit[bid]
	}
	q.stats.Misses++
	q.stats.BlockBuilds++
	in = q.setPool.Get(q.nv)
	out = q.setPool.Get(q.nv)
	exit = q.setPool.Get(q.nv)
	q.blkIn[bid], q.blkOut[bid], q.blkExit[bid] = in, out, exit
	q.blkDone[bid] = true
	if !q.reach[bid] {
		return in, out, exit
	}
	add := func(id int32) {
		w := q.walkIn(q.walkOf(int(id)))
		if bitHas(w, bid) {
			in.Add(int(id))
		}
		if q.walkOutHas(w, bid) {
			out.Add(int(id))
			exit.Add(int(id))
		} else if hasBlk(q.cur.phiOf(int(id)), int32(bid)) {
			exit.Add(int(id))
		}
	}
	for blk := b; blk != nil; blk = q.dom.Idom[blk.ID] {
		for _, id := range q.strictDefsOf(int(blk.ID)) {
			add(id)
		}
	}
	for _, id := range q.nonStrict {
		add(id)
	}
	return in, out, exit
}
