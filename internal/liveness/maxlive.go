package liveness

import (
	"outofssa/internal/bitset"
	"outofssa/internal/ir"
)

// MaxLive returns MAXLIVE: the maximum, over all program points of f,
// of the number of simultaneously live values — the register-pressure
// figure of Bouchez, Darte & Rastello's spill-everywhere model, and the
// first derived metric the pipeline exports as a histogram
// (laoc_liveness_maxlive). Program points follow the paper's φ
// semantics (§3.2): the point just before a block's outgoing parallel
// copy uses ExitLiveSet (φ uses flowing out of the block are live
// there), and the φ instructions themselves are transparent — their
// defs are live from block entry, their uses belong to the
// predecessors — exactly as in Info.LiveAfter.
//
// The walk asks only dense set queries plus a backward scan per block,
// so under the query engine it reuses the memoized per-variable walks
// and is deterministic for a given (f, engine) regardless of query
// history.
func MaxLive(f *ir.Func, l *Info) int {
	max := 0
	cur := bitset.New(f.NumValues())
	for _, b := range f.Blocks() {
		cur.CopyFrom(l.ExitLiveSet(b))
		if n := cur.Len(); n > max {
			max = n
		}
		for i := b.NumInstrs() - 1; i >= 0; i-- {
			in := b.Instr(i)
			if in.Op() == ir.Phi {
				// φ rows reached from below: everything above is the
				// entry point, already counted via the predecessors'
				// exit sets and this block's entry state below.
				break
			}
			for _, d := range in.Defs() {
				cur.Remove(int(d.Val))
			}
			for _, u := range in.Uses() {
				cur.Add(int(u.Val))
			}
			if n := cur.Len(); n > max {
				max = n
			}
		}
	}
	return max
}
