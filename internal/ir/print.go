package ir

import (
	"fmt"
	"strings"
)

// String renders the function in a LAI-like textual form.
func (f *Func) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, ".func %s\n", f.Name)
	for _, blk := range f.Blocks() {
		fmt.Fprintf(&b, "%s:", blk)
		if blk.NumPreds() > 0 {
			b.WriteString(" ; preds=")
			for i, p := range blk.Preds() {
				if i > 0 {
					b.WriteString(",")
				}
				b.WriteString(f.Block(p).String())
			}
		}
		if blk.LoopDepth > 0 {
			fmt.Fprintf(&b, " depth=%d", blk.LoopDepth)
		}
		b.WriteString("\n")
		for _, in := range blk.Instrs() {
			fmt.Fprintf(&b, "\t%s", in)
			switch in.Op() {
			case Br:
				fmt.Fprintf(&b, " -> %s, %s", blk.Succ(0), blk.Succ(1))
			case Jump:
				fmt.Fprintf(&b, " -> %s", blk.Succ(0))
			}
			b.WriteString("\n")
		}
	}
	fmt.Fprintf(&b, ".endfunc\n")
	return b.String()
}
