package ir

// Clone returns a deep copy of f. Handles are preserved — value, block
// and instruction IDs in the clone denote the corresponding entities —
// so analyses computed on the clone are index-compatible with the
// original. The experiment pipelines clone the post-SSA function once
// per algorithm so every algorithm sees the same input, the batch driver
// clones once per cell run, and laocd clones the cached decode once per
// request — which makes Clone a malloc and memory-bandwidth hot spot.
//
// Because every cross-reference in the SoA representation is a handle
// (position-independent), cloning is a handful of slab copies:
//
//   - the value, operand and code slabs are copied verbatim (memcpy);
//   - the instruction and block arena chunks are copied per chunk,
//     followed by a pointer-free fix-up of the fn back-references;
//   - the pred/succ edge lists are carved out of one shared slab.
//
// The allocation count is O(arena chunks), independent of the number of
// values, instructions or operands — pinned by TestCloneAllocs.
// The Target is immutable after NewFunc and holds only handles, so it is
// shared, not copied.
func (f *Func) Clone() *Func {
	statClones.Add(1)
	statCloneSlabAllocs.Add(int64(f.cloneSlabCount()))
	nf := &Func{
		Name:      f.Name,
		Target:    f.Target,
		vals:      append([]valData(nil), f.vals...),
		ops:       append([]Operand(nil), f.ops...),
		code:      append([]InstrID(nil), f.code...),
		numInstrs: f.numInstrs,
		numBlocks: f.numBlocks,
	}

	nf.instrChunks = make([]*instrChunk, len(f.instrChunks))
	for i, c := range f.instrChunks {
		nc := new(instrChunk)
		*nc = *c
		nf.instrChunks[i] = nc
	}
	for id := int32(0); id < nf.numInstrs; id++ {
		nf.instrChunks[id>>instrChunkShift][id&instrChunkMask].fn = nf
	}

	nf.blockChunks = make([]*blockChunk, len(f.blockChunks))
	for i, c := range f.blockChunks {
		nc := new(blockChunk)
		*nc = *c
		nf.blockChunks[i] = nc
	}
	// Fix fn back-references and re-home the edge lists: the chunk copy
	// shared the pred/succ backing arrays with the original, and a later
	// append on either side could write through shared capacity. Carve
	// clone-owned copies out of one slab, capacity-capped so a later
	// append on any block reallocates away from its neighbour.
	nEdges := 0
	for id := int32(0); id < nf.numBlocks; id++ {
		b := &nf.blockChunks[id>>blockChunkShift][id&blockChunkMask]
		nEdges += len(b.preds) + len(b.succs)
	}
	edgeSlab := make([]BlockID, 0, nEdges)
	for id := int32(0); id < nf.numBlocks; id++ {
		b := &nf.blockChunks[id>>blockChunkShift][id&blockChunkMask]
		b.fn = nf
		k := len(edgeSlab)
		edgeSlab = append(edgeSlab, b.preds...)
		b.preds = edgeSlab[k:len(edgeSlab):len(edgeSlab)]
		k = len(edgeSlab)
		edgeSlab = append(edgeSlab, b.succs...)
		b.succs = edgeSlab[k:len(edgeSlab):len(edgeSlab)]
	}

	nf.blockList = make([]*Block, len(f.blockList))
	for i, b := range f.blockList {
		nf.blockList[i] = nf.Block(b.ID)
	}
	return nf
}

// cloneSlabCount returns the number of heap allocations a Clone of f
// performs (the slab budget TestCloneAllocs pins): the Func header, the
// three flat slabs, the two chunk-pointer slices, one chunk allocation
// each, the edge slab and the block list.
func (f *Func) cloneSlabCount() int {
	n := 1 // Func header
	if len(f.vals) > 0 {
		n++
	}
	if len(f.ops) > 0 {
		n++
	}
	if len(f.code) > 0 {
		n++
	}
	if len(f.instrChunks) > 0 {
		n += 1 + len(f.instrChunks)
	}
	if len(f.blockChunks) > 0 {
		n += 1 + len(f.blockChunks)
	}
	nEdges := 0
	for id := int32(0); id < f.numBlocks; id++ {
		b := &f.blockChunks[id>>blockChunkShift][id&blockChunkMask]
		nEdges += len(b.preds) + len(b.succs)
	}
	if nEdges > 0 {
		n++
	}
	if len(f.blockList) > 0 {
		n++
	}
	return n
}

// RestoreFrom replaces f's entire contents — blocks, values, target —
// with those of g, which must be a Clone of f (or of an ancestor state
// of f). g is consumed: its slabs and arenas become owned by f and g
// must not be used afterwards. The checked pipeline uses this to roll a
// function back to its pre-pipeline snapshot before retrying through
// the naive fallback translation, so the caller's *Func pointer stays
// valid across the retry. Copy-back is a straight move of the slab
// headers plus a pointer-free fn fix-up — no per-entity work.
func (f *Func) RestoreFrom(g *Func) {
	statRestores.Add(1)
	// Transfer g's copy-on-write membership to f: g is consumed, so its
	// family ref moves over as-is, while f's previous membership (if any)
	// is released — f's old storage is being discarded.
	if old := f.cow; old != nil {
		old.refs.Add(-1)
	}
	f.cow = g.cow
	f.sharedOps, f.sharedCode, f.sharedEdges = g.sharedOps, g.sharedCode, g.sharedEdges
	f.cowTouched = g.cowTouched
	f.Name = g.Name
	f.Target = g.Target
	f.vals = g.vals
	f.ops = g.ops
	f.code = g.code
	f.instrChunks = g.instrChunks
	f.numInstrs = g.numInstrs
	f.blockChunks = g.blockChunks
	f.numBlocks = g.numBlocks
	f.blockList = g.blockList
	for id := int32(0); id < f.numInstrs; id++ {
		f.instrChunks[id>>instrChunkShift][id&instrChunkMask].fn = f
	}
	for id := int32(0); id < f.numBlocks; id++ {
		f.blockChunks[id>>blockChunkShift][id&blockChunkMask].fn = f
	}
	// The function's code just changed wholesale: invalidate memoized
	// analyses. The generations stay monotonic (bump, not copy) so stale
	// entries recorded under earlier generations can never match again.
	f.generation++
	f.cfgGeneration++
	f.analyses.Store(nil)
}
