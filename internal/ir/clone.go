package ir

// Clone returns a deep copy of f. Value and block IDs are preserved, so
// analyses computed on the clone are index-compatible with the original.
// The experiment pipelines clone the post-SSA function once per algorithm
// so every algorithm sees the same input, and the batch driver clones
// once per cell run — which makes Clone a malloc hot spot. Values,
// blocks, instructions and operands are therefore carved out of four
// slab allocations (capacity-capped subslices, so a later append on any
// instruction reallocates away from the slab instead of clobbering its
// neighbour).
func (f *Func) Clone() *Func {
	nf := &Func{Name: f.Name, nextID: f.nextID, nextBB: f.nextBB}

	vmap := make([]*Value, f.nextID)
	nf.values = make([]*Value, len(f.values))
	vslab := make([]Value, len(f.values))
	for i, v := range f.values {
		nv := &vslab[i]
		*nv = Value{ID: v.ID, Name: v.Name, Kind: v.Kind}
		nf.values[i] = nv
		vmap[v.ID] = nv
	}
	mapVal := func(v *Value) *Value {
		if v == nil {
			return nil
		}
		return vmap[v.ID]
	}
	mapVals := func(vs []*Value) []*Value {
		out := make([]*Value, len(vs))
		for i, v := range vs {
			out[i] = mapVal(v)
		}
		return out
	}

	t := f.Target
	nf.Target = &Target{
		R:          mapVals(t.R),
		P:          mapVals(t.P),
		SP:         mapVal(t.SP),
		ArgRegs:    mapVals(t.ArgRegs),
		RetRegs:    mapVals(t.RetRegs),
		PtrArgRegs: mapVals(t.PtrArgRegs),
	}

	bmap := make([]*Block, f.nextBB)
	bslab := make([]Block, len(f.Blocks))
	nf.Blocks = make([]*Block, 0, len(f.Blocks))
	for i, b := range f.Blocks {
		nb := &bslab[i]
		*nb = Block{ID: b.ID, Name: b.Name, LoopDepth: b.LoopDepth, fn: nf}
		bmap[b.ID] = nb
		nf.Blocks = append(nf.Blocks, nb)
	}
	mapBlocks := func(bs []*Block) []*Block {
		out := make([]*Block, len(bs))
		for i, b := range bs {
			out[i] = bmap[b.ID]
		}
		return out
	}

	nInstr, nOps := 0, 0
	for _, b := range f.Blocks {
		nInstr += len(b.Instrs)
		for _, in := range b.Instrs {
			nOps += len(in.Defs) + len(in.Uses)
		}
	}
	islab := make([]Instr, nInstr)
	opslab := make([]Operand, nOps)
	ii, oi := 0, 0
	mapOps := func(os []Operand) []Operand {
		if len(os) == 0 {
			return nil
		}
		out := opslab[oi : oi+len(os) : oi+len(os)]
		oi += len(os)
		for i, o := range os {
			out[i] = Operand{Val: mapVal(o.Val), Pin: mapVal(o.Pin)}
		}
		return out
	}

	for _, b := range f.Blocks {
		nb := bmap[b.ID]
		nb.Preds = mapBlocks(b.Preds)
		nb.Succs = mapBlocks(b.Succs)
		nb.Instrs = make([]*Instr, 0, len(b.Instrs))
		for _, in := range b.Instrs {
			ni := &islab[ii]
			ii++
			*ni = Instr{
				Op:     in.Op,
				Defs:   mapOps(in.Defs),
				Uses:   mapOps(in.Uses),
				Imm:    in.Imm,
				Callee: in.Callee,
				blk:    nb,
			}
			nb.Instrs = append(nb.Instrs, ni)
		}
	}
	return nf
}

// RestoreFrom replaces f's entire contents — blocks, values, target —
// with those of g, which must be a Clone of f (or of an ancestor state
// of f). g is consumed: its blocks and values become owned by f and g
// must not be used afterwards. The checked pipeline uses this to roll a
// function back to its pre-pipeline snapshot before retrying through
// the naive fallback translation, so the caller's *Func pointer stays
// valid across the retry.
func (f *Func) RestoreFrom(g *Func) {
	f.Name = g.Name
	f.Blocks = g.Blocks
	f.Target = g.Target
	f.values = g.values
	f.nextID = g.nextID
	f.nextBB = g.nextBB
	for _, b := range f.Blocks {
		b.fn = f
	}
	// The function's code just changed wholesale: invalidate memoized
	// analyses. The generations stay monotonic (bump, not copy) so stale
	// entries recorded under earlier generations can never match again.
	f.generation++
	f.cfgGeneration++
	f.analyses = nil
}
