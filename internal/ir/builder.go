package ir

import "fmt"

// Builder offers a fluent API for constructing IR functions, used by the
// LAI parser, the workload suites and the tests. It tracks a current
// insertion block.
type Builder struct {
	Fn  *Func
	Cur *Block
}

// NewBuilder creates a builder over a fresh function.
func NewBuilder(name string) *Builder {
	f := NewFunc(name)
	return &Builder{Fn: f}
}

// Block creates a new block and makes it current.
func (bld *Builder) Block(name string) *Block {
	b := bld.Fn.NewBlock(name)
	bld.Cur = b
	return b
}

// SetBlock switches the insertion point to b.
func (bld *Builder) SetBlock(b *Block) { bld.Cur = b }

// Val creates a fresh virtual register.
func (bld *Builder) Val(name string) *Value { return bld.Fn.NewValue(name) }

func (bld *Builder) emit(in *Instr) *Instr {
	if bld.Cur == nil {
		// Panic audit (checked-pipeline PR): programmer invariant. The
		// Builder is only driven by in-repo construction code and tests,
		// never by LAI input (the parser appends Instrs directly), so a
		// missing SetBlock is a bug in the caller, not bad input.
		panic("ir: Builder has no current block")
	}
	bld.Cur.Append(in)
	return in
}

func ops(vals ...*Value) []Operand {
	out := make([]Operand, len(vals))
	for i, v := range vals {
		out[i] = Operand{Val: v}
	}
	return out
}

// Input emits the .input pseudo-instruction defining the parameters.
// Imm records the declared parameter count so the ABI collect phase can
// distinguish parameters from implicit entry definitions appended later.
func (bld *Builder) Input(params ...*Value) *Instr {
	return bld.emit(&Instr{Op: Input, Defs: ops(params...), Imm: int64(len(params))})
}

// Output emits the .output terminator returning the given values.
func (bld *Builder) Output(rets ...*Value) *Instr {
	return bld.emit(&Instr{Op: Output, Uses: ops(rets...)})
}

// Const emits d = imm.
func (bld *Builder) Const(d *Value, imm int64) *Instr {
	return bld.emit(&Instr{Op: Const, Defs: ops(d), Imm: imm})
}

// Make emits the high-half immediate load d = upper16(imm).
func (bld *Builder) Make(d *Value, imm int64) *Instr {
	return bld.emit(&Instr{Op: Make, Defs: ops(d), Imm: imm})
}

// More emits the 2-operand low-half immediate d = s | imm.
func (bld *Builder) More(d, s *Value, imm int64) *Instr {
	return bld.emit(&Instr{Op: More, Defs: ops(d), Uses: ops(s), Imm: imm})
}

// Copy emits the move d = s.
func (bld *Builder) Copy(d, s *Value) *Instr {
	return bld.emit(&Instr{Op: Copy, Defs: ops(d), Uses: ops(s)})
}

// Binary emits d = op(a, b) for a plain 3-address arithmetic op.
func (bld *Builder) Binary(op Op, d, a, b *Value) *Instr {
	return bld.emit(&Instr{Op: op, Defs: ops(d), Uses: ops(a, b)})
}

// Unary emits d = op(a).
func (bld *Builder) Unary(op Op, d, a *Value) *Instr {
	return bld.emit(&Instr{Op: op, Defs: ops(d), Uses: ops(a)})
}

// Mac emits the 2-operand multiply-accumulate d = acc + a*b.
func (bld *Builder) Mac(d, acc, a, b *Value) *Instr {
	return bld.emit(&Instr{Op: Mac, Defs: ops(d), Uses: ops(acc, a, b)})
}

// Select emits d = cond != 0 ? a : b.
func (bld *Builder) Select(d, cond, a, b *Value) *Instr {
	return bld.emit(&Instr{Op: Select, Defs: ops(d), Uses: ops(cond, a, b)})
}

// AutoAdd emits the 2-operand auto-increment d = p + imm.
func (bld *Builder) AutoAdd(d, p *Value, imm int64) *Instr {
	return bld.emit(&Instr{Op: AutoAdd, Defs: ops(d), Uses: ops(p), Imm: imm})
}

// Load emits d = mem[addr].
func (bld *Builder) Load(d, addr *Value) *Instr {
	return bld.emit(&Instr{Op: Load, Defs: ops(d), Uses: ops(addr)})
}

// Store emits mem[addr] = v.
func (bld *Builder) Store(addr, v *Value) *Instr {
	return bld.emit(&Instr{Op: Store, Uses: ops(addr, v)})
}

// Call emits results = callee(args...).
func (bld *Builder) Call(callee string, results []*Value, args ...*Value) *Instr {
	return bld.emit(&Instr{Op: Call, Callee: callee, Defs: ops(results...), Uses: ops(args...)})
}

// Phi emits a φ at the end of the current φ prefix of the block. Uses
// must be parallel to the block's predecessor list (possibly set later).
func (bld *Builder) Phi(d *Value, args ...*Value) *Instr {
	in := &Instr{Op: Phi, Defs: ops(d), Uses: ops(args...)}
	bld.Cur.InsertAt(bld.Cur.FirstNonPhi(), in)
	return in
}

// Br emits a conditional branch and wires the taken/fallthrough edges.
func (bld *Builder) Br(cond *Value, taken, fallthru *Block) *Instr {
	in := bld.emit(&Instr{Op: Br, Uses: ops(cond)})
	bld.Fn.AddEdge(bld.Cur, taken)
	bld.Fn.AddEdge(bld.Cur, fallthru)
	return in
}

// Jump emits an unconditional branch and wires the edge.
func (bld *Builder) Jump(to *Block) *Instr {
	in := bld.emit(&Instr{Op: Jump, Uses: nil})
	bld.Fn.AddEdge(bld.Cur, to)
	return in
}

// PinDef pins the i-th definition of in to resource r.
func PinDef(in *Instr, i int, r *Value) {
	if i >= len(in.Defs) {
		// Panic audit: programmer invariant — the collect phases index
		// operands they just enumerated; no user input reaches here.
		panic(fmt.Sprintf("ir: PinDef index %d out of range for %v", i, in))
	}
	in.Defs[i].Pin = r
}

// PinUse pins the i-th use of in to resource r.
func PinUse(in *Instr, i int, r *Value) {
	if i >= len(in.Uses) {
		// Panic audit: programmer invariant, same as PinDef.
		panic(fmt.Sprintf("ir: PinUse index %d out of range for %v", i, in))
	}
	in.Uses[i].Pin = r
}
