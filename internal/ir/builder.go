package ir

import "fmt"

// Builder offers a fluent API for constructing IR functions, used by the
// LAI parser, the workload suites and the tests. It tracks a current
// insertion block.
type Builder struct {
	Fn  *Func
	Cur *Block
}

// NewBuilder creates a builder over a fresh function.
func NewBuilder(name string) *Builder {
	f := NewFunc(name)
	return &Builder{Fn: f}
}

// Block creates a new block and makes it current.
func (bld *Builder) Block(name string) *Block {
	b := bld.Fn.NewBlock(name)
	bld.Cur = b
	return b
}

// SetBlock switches the insertion point to b.
func (bld *Builder) SetBlock(b *Block) { bld.Cur = b }

// Val creates a fresh virtual register.
func (bld *Builder) Val(name string) ValueID { return bld.Fn.NewValue(name) }

func (bld *Builder) emit(in *Instr) *Instr {
	if bld.Cur == nil {
		// Panic audit (checked-pipeline PR): programmer invariant. The
		// Builder is only driven by in-repo construction code and tests,
		// never by LAI input (the parser appends Instrs directly), so a
		// missing SetBlock is a bug in the caller, not bad input.
		panic("ir: Builder has no current block")
	}
	bld.Cur.Append(in)
	return in
}

// Input emits the .input pseudo-instruction defining the parameters.
// Imm records the declared parameter count so the ABI collect phase can
// distinguish parameters from implicit entry definitions appended later.
func (bld *Builder) Input(params ...ValueID) *Instr {
	in := bld.Fn.NewInstr(Input, Ops(params...), nil)
	in.Imm = int64(len(params))
	return bld.emit(in)
}

// Output emits the .output terminator returning the given values.
func (bld *Builder) Output(rets ...ValueID) *Instr {
	return bld.emit(bld.Fn.NewInstr(Output, nil, Ops(rets...)))
}

// Const emits d = imm.
func (bld *Builder) Const(d ValueID, imm int64) *Instr {
	in := bld.Fn.NewInstr(Const, Ops(d), nil)
	in.Imm = imm
	return bld.emit(in)
}

// Make emits the high-half immediate load d = upper16(imm).
func (bld *Builder) Make(d ValueID, imm int64) *Instr {
	in := bld.Fn.NewInstr(Make, Ops(d), nil)
	in.Imm = imm
	return bld.emit(in)
}

// More emits the 2-operand low-half immediate d = s | imm.
func (bld *Builder) More(d, s ValueID, imm int64) *Instr {
	in := bld.Fn.NewInstr(More, Ops(d), Ops(s))
	in.Imm = imm
	return bld.emit(in)
}

// Copy emits the move d = s.
func (bld *Builder) Copy(d, s ValueID) *Instr {
	return bld.emit(bld.Fn.NewInstr(Copy, Ops(d), Ops(s)))
}

// Binary emits d = op(a, b) for a plain 3-address arithmetic op.
func (bld *Builder) Binary(op Op, d, a, b ValueID) *Instr {
	return bld.emit(bld.Fn.NewInstr(op, Ops(d), Ops(a, b)))
}

// Unary emits d = op(a).
func (bld *Builder) Unary(op Op, d, a ValueID) *Instr {
	return bld.emit(bld.Fn.NewInstr(op, Ops(d), Ops(a)))
}

// Mac emits the 2-operand multiply-accumulate d = acc + a*b.
func (bld *Builder) Mac(d, acc, a, b ValueID) *Instr {
	return bld.emit(bld.Fn.NewInstr(Mac, Ops(d), Ops(acc, a, b)))
}

// Select emits d = cond != 0 ? a : b.
func (bld *Builder) Select(d, cond, a, b ValueID) *Instr {
	return bld.emit(bld.Fn.NewInstr(Select, Ops(d), Ops(cond, a, b)))
}

// AutoAdd emits the 2-operand auto-increment d = p + imm.
func (bld *Builder) AutoAdd(d, p ValueID, imm int64) *Instr {
	in := bld.Fn.NewInstr(AutoAdd, Ops(d), Ops(p))
	in.Imm = imm
	return bld.emit(in)
}

// Load emits d = mem[addr].
func (bld *Builder) Load(d, addr ValueID) *Instr {
	return bld.emit(bld.Fn.NewInstr(Load, Ops(d), Ops(addr)))
}

// Store emits mem[addr] = v.
func (bld *Builder) Store(addr, v ValueID) *Instr {
	return bld.emit(bld.Fn.NewInstr(Store, nil, Ops(addr, v)))
}

// Call emits results = callee(args...).
func (bld *Builder) Call(callee string, results []ValueID, args ...ValueID) *Instr {
	in := bld.Fn.NewInstr(Call, Ops(results...), Ops(args...))
	in.Callee = callee
	return bld.emit(in)
}

// Phi emits a φ at the end of the current φ prefix of the block. Uses
// must be parallel to the block's predecessor list (possibly set later).
func (bld *Builder) Phi(d ValueID, args ...ValueID) *Instr {
	in := bld.Fn.NewInstr(Phi, Ops(d), Ops(args...))
	bld.Cur.InsertAt(bld.Cur.FirstNonPhi(), in)
	return in
}

// Br emits a conditional branch and wires the taken/fallthrough edges.
func (bld *Builder) Br(cond ValueID, taken, fallthru *Block) *Instr {
	in := bld.emit(bld.Fn.NewInstr(Br, nil, Ops(cond)))
	bld.Fn.AddEdge(bld.Cur, taken)
	bld.Fn.AddEdge(bld.Cur, fallthru)
	return in
}

// Jump emits an unconditional branch and wires the edge.
func (bld *Builder) Jump(to *Block) *Instr {
	in := bld.emit(bld.Fn.NewInstr(Jump, nil, nil))
	bld.Fn.AddEdge(bld.Cur, to)
	return in
}

// PinDef pins the i-th definition of in to resource r.
func PinDef(in *Instr, i int, r ValueID) {
	if i >= in.NumDefs() {
		// Panic audit: programmer invariant — the collect phases index
		// operands they just enumerated; no user input reaches here.
		panic(fmt.Sprintf("ir: PinDef index %d out of range for %v", i, in))
	}
	in.SetDefPin(i, r)
}

// PinUse pins the i-th use of in to resource r.
func PinUse(in *Instr, i int, r ValueID) {
	if i >= in.NumUses() {
		// Panic audit: programmer invariant, same as PinDef.
		panic(fmt.Sprintf("ir: PinUse index %d out of range for %v", i, in))
	}
	in.SetUsePin(i, r)
}
