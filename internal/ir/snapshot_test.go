package ir

import (
	"fmt"
	"sync"
	"testing"
)

// buildSnapshotFixture assembles a branchy function (so the edge lists
// are non-trivial) large enough to span several arena chunks.
func buildSnapshotFixture(nInstrs int) *Func {
	bld := NewBuilder("snapfix")
	entry := bld.Block("entry")
	left := bld.Block("left")
	right := bld.Block("right")
	exit := bld.Block("exit")

	bld.SetBlock(entry)
	a, b := bld.Val("a"), bld.Val("b")
	bld.Input(a, b)
	prev := b
	for i := 0; i < nInstrs; i++ {
		next := bld.Val(fmt.Sprintf("t%d", i))
		bld.Binary(Add, next, a, prev)
		prev = next
	}
	bld.Br(prev, left, right)

	bld.SetBlock(left)
	l := bld.Val("l")
	bld.Binary(Mul, l, a, prev)
	bld.Jump(exit)

	bld.SetBlock(right)
	r := bld.Val("r")
	bld.Binary(Sub, r, a, prev)
	bld.Jump(exit)

	bld.SetBlock(exit)
	m := bld.Val("m")
	bld.Phi(m, l, r)
	bld.Output(m)
	return bld.Fn
}

// TestSnapshotReadIsZeroSlabCopy pins the tentpole claim at its root: a
// snapshot that is only read never materializes a slab.
func TestSnapshotReadIsZeroSlabCopy(t *testing.T) {
	f := buildSnapshotFixture(100)
	before := Stats()
	snap := f.Snapshot()
	if snap.CountMoves() != f.CountMoves() || snap.CountPhis() != f.CountPhis() {
		t.Fatalf("snapshot disagrees with parent on pure reads")
	}
	if got, want := snap.ArenaChecksum(), f.ArenaChecksum(); got != want {
		t.Fatalf("snapshot checksum %#x != parent %#x", got, want)
	}
	d := Stats()
	if n := d.Snapshots - before.Snapshots; n != 1 {
		t.Fatalf("snapshots counter moved by %d, want 1", n)
	}
	if n := d.COWSlabCopies - before.COWSlabCopies; n != 0 {
		t.Fatalf("read-only snapshot materialized %d slab copies, want 0", n)
	}
	if n := d.COWMaterializations - before.COWMaterializations; n != 0 {
		t.Fatalf("read-only snapshot counted %d materializations, want 0", n)
	}
}

// TestSnapshotIsolation drives every mutator class against either side
// of a snapshot and asserts the other side's bytes never move.
func TestSnapshotIsolation(t *testing.T) {
	mutate := []struct {
		name string
		fn   func(f *Func)
	}{
		{"ops-in-place", func(f *Func) {
			in := f.Entry().Instr(1) // first Add
			in.SetDefVal(0, in.Def(0))
		}},
		{"ops-pin", func(f *Func) {
			in := f.Entry().Instr(1)
			in.SetDefPin(0, f.Target.R[0])
		}},
		{"ops-append", func(f *Func) {
			in := f.Entry().Instr(1)
			in.AddUse(Ops(in.Use(0))[0])
		}},
		{"code-append", func(f *Func) {
			v := f.NewValue("")
			in := f.NewInstr(Copy, Ops(v), Ops(ValueID(0)))
			f.Entry().InsertBeforeTerminator(in)
		}},
		{"code-remove", func(f *Func) {
			f.Entry().RemoveAt(1)
		}},
		{"edges-add", func(f *Func) {
			blocks := f.Blocks()
			f.AddEdge(blocks[1], blocks[2])
		}},
		{"edges-replace", func(f *Func) {
			exit := f.Blocks()[3]
			exit.ReplacePred(exit.Preds()[0], exit.Preds()[0])
			// Same ID, but the write itself must still fault the slab.
		}},
		{"values-append", func(f *Func) {
			f.NewValue("fresh")
		}},
	}
	for _, side := range []string{"child", "parent"} {
		for _, mc := range mutate {
			t.Run(side+"/"+mc.name, func(t *testing.T) {
				parent := buildSnapshotFixture(40)
				child := parent.Snapshot()
				mutTarget, witness := child, parent
				if side == "parent" {
					mutTarget, witness = parent, child
				}
				sum := witness.ArenaChecksum()
				mc.fn(mutTarget)
				if got := witness.ArenaChecksum(); got != sum {
					t.Fatalf("mutating the %s leaked into the other side: checksum %#x -> %#x", side, sum, got)
				}
			})
		}
	}
}

// TestSnapshotDeepMutationDivergence runs a heavier scenario: both sides
// mutate extensively and must end as two fully independent functions.
func TestSnapshotDeepMutationDivergence(t *testing.T) {
	parent := buildSnapshotFixture(300)
	child := parent.Snapshot()
	wantParent := parent.String()

	// Mutate the child across all three slabs.
	in := child.Entry().Instr(1)
	in.SetUseVal(1, in.Use(0))
	child.Entry().RemoveAt(2)
	blocks := child.Blocks()
	child.AddEdge(blocks[1], blocks[1])
	for i := 0; i < 50; i++ {
		v := child.NewValue("")
		c := child.NewInstr(Const, Ops(v), nil)
		c.Imm = int64(i)
		child.Blocks()[1].InsertBeforeTerminator(c)
	}
	if got := parent.String(); got != wantParent {
		t.Fatalf("parent changed under child mutation:\n%s", got)
	}

	// Now mutate the parent; the child must hold.
	wantChild := child.String()
	pin := parent.Entry().Instr(1)
	pin.SetDefVal(0, pin.Def(0))
	parent.Blocks()[2].RemoveAt(0)
	if got := child.String(); got != wantChild {
		t.Fatalf("child changed under parent mutation:\n%s", got)
	}
	if err := parent.Verify(); err != nil {
		t.Fatalf("parent failed verify after divergence: %v", err)
	}
}

// TestSnapshotMatchesClone asserts a materialized snapshot is
// observationally a deep copy: the same mutation applied to a Clone and
// to a Snapshot of the same function produces byte-identical results.
func TestSnapshotMatchesClone(t *testing.T) {
	base := buildSnapshotFixture(120)
	cl := base.Clone()
	sn := base.Snapshot()
	mutate := func(f *Func) {
		in := f.Entry().Instr(3)
		in.SetDefVal(0, in.Def(0))
		f.Blocks()[1].RemoveAt(0)
		v := f.NewValue("x")
		c := f.NewInstr(Const, Ops(v), nil)
		c.Imm = 7
		f.Blocks()[2].InsertBeforeTerminator(c)
	}
	mutate(cl)
	mutate(sn)
	if cl.String() != sn.String() {
		t.Fatalf("clone and snapshot diverged after identical mutations:\n--- clone\n%s\n--- snapshot\n%s", cl.String(), sn.String())
	}
	if cl.ArenaChecksum() != sn.ArenaChecksum() {
		t.Fatalf("clone and snapshot checksums differ after identical mutations")
	}
}

// TestSnapshotAdoption: when every other family member is gone
// (released), the survivor's first mutation adopts the shared storage
// instead of copying it.
func TestSnapshotAdoption(t *testing.T) {
	parent := buildSnapshotFixture(50)
	child := parent.Snapshot()
	parent.Release()
	before := Stats()
	in := child.Entry().Instr(1)
	in.SetDefVal(0, in.Def(0))
	d := Stats()
	if n := d.COWAdoptions - before.COWAdoptions; n != 1 {
		t.Fatalf("adoptions moved by %d, want 1", n)
	}
	if n := d.COWSlabCopies - before.COWSlabCopies; n != 0 {
		t.Fatalf("adoption path still copied %d slabs, want 0", n)
	}
	if child.Frozen() {
		t.Fatalf("child still frozen after adopting the family storage")
	}
}

// TestSnapshotAllocsBelowClone pins the headline allocation claim:
// taking a snapshot allocates strictly less than a clone, and even a
// snapshot that then materializes every slab stays at or below the
// clone budget.
func TestSnapshotAllocsBelowClone(t *testing.T) {
	f := buildSnapshotFixture(600)
	f.Freeze()
	cloneAllocs := int(testing.AllocsPerRun(20, func() {
		_ = f.Clone()
	}))
	snapAllocs := int(testing.AllocsPerRun(20, func() {
		_ = f.Snapshot()
	}))
	if snapAllocs >= cloneAllocs {
		t.Errorf("Snapshot allocates %d, Clone %d — snapshot must be strictly cheaper", snapAllocs, cloneAllocs)
	}
	if budget := f.snapshotSlabCount(); snapAllocs > budget {
		t.Errorf("Snapshot made %d allocations, budget is %d", snapAllocs, budget)
	}
}

// TestConcurrentSnapshots takes snapshots of one frozen master from
// many goroutines at once, half of them mutating their private copy.
// Run under -race this is the publication-safety proof for the batch
// driver's fan-out.
func TestConcurrentSnapshots(t *testing.T) {
	master := buildSnapshotFixture(200)
	master.Freeze()
	want := master.ArenaChecksum()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				snap := master.Snapshot()
				if g%2 == 0 {
					in := snap.Entry().Instr(1)
					in.SetDefVal(0, in.Def(0))
					snap.Entry().RemoveAt(2)
				} else if snap.ArenaChecksum() != want {
					t.Errorf("goroutine %d: read-only snapshot checksum mismatch", g)
					return
				}
				snap.Release()
			}
		}(g)
	}
	wg.Wait()
	if got := master.ArenaChecksum(); got != want {
		t.Fatalf("master mutated by concurrent snapshot traffic: %#x -> %#x", want, got)
	}
}

// TestSnapshotOfPartiallyMaterialized pins the re-freeze rule: a Func
// that faulted only SOME of its shared slabs (private, un-capped
// storage behind cleared share flags) must not hand that storage to a
// new snapshot without re-freezing — its own in-place writes would leak
// into the snapshot. This is exactly the checked pipeline's shape: SSA
// construction mutates a decode-cache snapshot partially, then
// Config.Fallback snapshots it as the rollback backup.
func TestSnapshotOfPartiallyMaterialized(t *testing.T) {
	master := buildSnapshotFixture(80)
	f := master.Snapshot()
	// Fault the ops slab only: f is now partially materialized (private
	// ops, shared code/edges, still a family member).
	in := f.Entry().Instr(1)
	in.SetDefVal(0, in.Def(0))
	if f.cow == nil || f.sharedOps || !f.sharedCode {
		t.Fatalf("fixture did not reach the partially-materialized state")
	}
	backup := f.Snapshot()
	sum := backup.ArenaChecksum()
	// Keep mutating f's operand slab in place; the backup must not move.
	for i := 0; i < 30; i++ {
		in := f.Entry().Instr(2)
		in.SetUseVal(0, in.Use(0))
		in.SetDefPin(0, f.Target.R[0])
		in.SetDefPin(0, NoValue)
	}
	f.NewValue("spill")
	if got := backup.ArenaChecksum(); got != sum {
		t.Fatalf("backup corrupted by parent's post-snapshot writes: %#x -> %#x", sum, got)
	}
	if got, want := master.ArenaChecksum(), master.ArenaChecksum(); got != want {
		t.Fatalf("master checksum unstable")
	}
}

// TestChecksumWitnessesForgedAliasing is the negative control for the
// faultinject.InjectCOWAliasing probe: hand-forge the bug the probe
// exists to catch — two functions sharing an operand slab with no cow
// family tracking it — and confirm the checksum witness moves when
// one side writes. Only possible in-package; the public API cannot
// construct this state (which is the point).
func TestChecksumWitnessesForgedAliasing(t *testing.T) {
	f := buildSnapshotFixture(60)
	g := f.Clone()
	g.ops = f.ops // the forged alias
	sum := f.ArenaChecksum()
	in := g.Entry().Instr(1)
	in.SetDefPin(0, g.Target.R[0])
	if got := f.ArenaChecksum(); got == sum {
		t.Fatalf("forged slab aliasing was not visible to the checksum witness")
	}
}

// TestRestoreFromSnapshot exercises the checked pipeline's rollback
// path over a snapshot backup instead of a clone.
func TestRestoreFromSnapshot(t *testing.T) {
	f := buildSnapshotFixture(60)
	want := f.String()
	backup := f.Snapshot()
	// Wreck f.
	f.Entry().Truncate(1)
	in := f.Entry().Instr(0)
	_ = in
	f.RestoreFrom(backup)
	if got := f.String(); got != want {
		t.Fatalf("RestoreFrom(snapshot) did not restore:\n%s", got)
	}
	// f must remain fully usable, including further mutation.
	v := f.NewValue("post")
	c := f.NewInstr(Const, Ops(v), nil)
	f.Entry().InsertBeforeTerminator(c)
	if err := f.Verify(); err != nil {
		t.Fatalf("restored function failed verify: %v", err)
	}
}
