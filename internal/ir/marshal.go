// Wire codec for functions: Marshal/Unmarshal serialize an ir.Func to a
// self-contained JSON document and back. The encoding is exact — value
// IDs, value names, block order, predecessor/successor order (which the
// φ argument convention depends on), pins, immediates and callees all
// round-trip — so a decoded function is indistinguishable from a Clone
// of the original: running the pipeline on either produces byte-identical
// output. That exactness is what lets the laocd service accept raw IR
// over the wire and still honor the Tables 1-5 byte-identity gate, and
// what makes content hashes of the encoding stable cache keys.
//
// The format ties values to the function's own Target: the physical
// register prefix of the value table (R0..R15, P0..P7, SP — created by
// NewFunc before any virtual value) is emitted like every other value
// and checked on decode, so a document produced against a different
// target shape fails loudly instead of mis-binding registers.
package ir

import (
	"encoding/json"
	"fmt"
)

// wireFunc is the top-level JSON document.
type wireFunc struct {
	// Schema tags the encoding; decoders reject unknown schemas.
	Schema string `json:"schema"`
	Name   string `json:"name"`
	// Values is the full value table in ID order (dense: Values[i].ID == i),
	// physical registers included.
	Values []wireValue `json:"values"`
	// Blocks are in f.Blocks order, which is also print order; block IDs
	// are carried explicitly because passes may have compacted the slice.
	Blocks []wireBlock `json:"blocks"`
}

// WireSchemaV1 identifies the current function-encoding schema.
const WireSchemaV1 = "laoc-ir-v1"

type wireValue struct {
	Name string `json:"n"`
	Phys bool   `json:"p,omitempty"`
}

type wireBlock struct {
	ID    int    `json:"id"`
	Name  string `json:"name"`
	Depth int    `json:"depth,omitempty"`
	// Preds and Succs are indexes into the Blocks array (not block IDs),
	// in order — φ uses are parallel to Preds, Br reads Succs[0]/[1].
	Preds  []int       `json:"preds,omitempty"`
	Succs  []int       `json:"succs,omitempty"`
	Instrs []wireInstr `json:"instrs"`
}

type wireInstr struct {
	Op string `json:"op"`
	// Defs and Uses are operand pairs [valueID, pinID]; pinID -1 means
	// unpinned.
	Defs   [][2]int `json:"defs,omitempty"`
	Uses   [][2]int `json:"uses,omitempty"`
	Imm    int64    `json:"imm,omitempty"`
	Callee string   `json:"callee,omitempty"`
}

// opByName inverts opNames for decoding.
var opByName = func() map[string]Op {
	m := make(map[string]Op, opCount)
	for op, name := range opNames {
		if name != "" {
			m[name] = Op(op)
		}
	}
	return m
}()

// Marshal encodes f into the wire format. The encoding is deterministic:
// the same function always yields the same bytes, so hashes of the
// output are stable content keys.
func Marshal(f *Func) ([]byte, error) {
	w := wireFunc{Schema: WireSchemaV1, Name: f.Name}
	w.Values = make([]wireValue, len(f.values))
	for i, v := range f.values {
		if v.ID != i {
			return nil, fmt.Errorf("ir: marshal %s: value table not dense at %d (ID %d)", f.Name, i, v.ID)
		}
		w.Values[i] = wireValue{Name: v.Name, Phys: v.IsPhys()}
	}
	blkIdx := make(map[*Block]int, len(f.Blocks))
	for i, b := range f.Blocks {
		blkIdx[b] = i
	}
	enc := func(ops []Operand) ([][2]int, error) {
		if len(ops) == 0 {
			return nil, nil
		}
		out := make([][2]int, len(ops))
		for i, o := range ops {
			if o.Val == nil {
				return nil, fmt.Errorf("ir: marshal %s: nil operand value", f.Name)
			}
			pin := -1
			if o.Pin != nil {
				pin = o.Pin.ID
			}
			out[i] = [2]int{o.Val.ID, pin}
		}
		return out, nil
	}
	for _, b := range f.Blocks {
		wb := wireBlock{ID: b.ID, Name: b.Name, Depth: b.LoopDepth}
		for _, p := range b.Preds {
			i, ok := blkIdx[p]
			if !ok {
				return nil, fmt.Errorf("ir: marshal %s: block %v has detached pred %v", f.Name, b, p)
			}
			wb.Preds = append(wb.Preds, i)
		}
		for _, s := range b.Succs {
			i, ok := blkIdx[s]
			if !ok {
				return nil, fmt.Errorf("ir: marshal %s: block %v has detached succ %v", f.Name, b, s)
			}
			wb.Succs = append(wb.Succs, i)
		}
		wb.Instrs = make([]wireInstr, len(b.Instrs))
		for i, in := range b.Instrs {
			defs, err := enc(in.Defs)
			if err != nil {
				return nil, err
			}
			uses, err := enc(in.Uses)
			if err != nil {
				return nil, err
			}
			wb.Instrs[i] = wireInstr{Op: in.Op.String(), Defs: defs, Uses: uses, Imm: in.Imm, Callee: in.Callee}
		}
		w.Blocks = append(w.Blocks, wb)
	}
	return json.Marshal(&w)
}

// Unmarshal decodes a function from the wire format. The result owns a
// fresh Target; the document's physical-register prefix must match the
// target shape exactly.
func Unmarshal(data []byte) (*Func, error) {
	var w wireFunc
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("ir: unmarshal: %v", err)
	}
	if w.Schema != WireSchemaV1 {
		return nil, fmt.Errorf("ir: unmarshal: unknown schema %q (want %q)", w.Schema, WireSchemaV1)
	}
	if w.Name == "" {
		return nil, fmt.Errorf("ir: unmarshal: function has no name")
	}
	f := NewFunc(w.Name)
	nphys := len(f.values)
	if len(w.Values) < nphys {
		return nil, fmt.Errorf("ir: unmarshal %s: value table shorter than the %d target registers", w.Name, nphys)
	}
	for i, v := range f.values {
		if w.Values[i].Name != v.Name || !w.Values[i].Phys {
			return nil, fmt.Errorf("ir: unmarshal %s: value %d is %q/phys=%v, target expects register %q",
				w.Name, i, w.Values[i].Name, w.Values[i].Phys, v.Name)
		}
	}
	for i := nphys; i < len(w.Values); i++ {
		wv := w.Values[i]
		if wv.Phys {
			return nil, fmt.Errorf("ir: unmarshal %s: physical value %q outside the target prefix", w.Name, wv.Name)
		}
		if wv.Name == "" {
			return nil, fmt.Errorf("ir: unmarshal %s: value %d has no name", w.Name, i)
		}
		f.newValue(wv.Name, Virtual)
	}

	if len(w.Blocks) == 0 {
		return nil, fmt.Errorf("ir: unmarshal %s: function has no blocks", w.Name)
	}
	blocks := make([]*Block, len(w.Blocks))
	maxID := -1
	for i, wb := range w.Blocks {
		if wb.ID < 0 {
			return nil, fmt.Errorf("ir: unmarshal %s: negative block ID %d", w.Name, wb.ID)
		}
		if wb.Name == "" {
			return nil, fmt.Errorf("ir: unmarshal %s: block %d has no name", w.Name, wb.ID)
		}
		blocks[i] = &Block{ID: wb.ID, Name: wb.Name, LoopDepth: wb.Depth, fn: f}
		if wb.ID > maxID {
			maxID = wb.ID
		}
	}
	f.Blocks = blocks
	f.nextBB = maxID + 1
	f.NoteCFGMutation()

	val := func(id int) (*Value, error) {
		if id < 0 || id >= len(f.values) {
			return nil, fmt.Errorf("ir: unmarshal %s: value ID %d out of range", w.Name, id)
		}
		return f.values[id], nil
	}
	dec := func(pairs [][2]int) ([]Operand, error) {
		if len(pairs) == 0 {
			return nil, nil
		}
		out := make([]Operand, len(pairs))
		for i, p := range pairs {
			v, err := val(p[0])
			if err != nil {
				return nil, err
			}
			out[i] = Operand{Val: v}
			if p[1] >= 0 {
				pin, err := val(p[1])
				if err != nil {
					return nil, err
				}
				out[i].Pin = pin
			}
		}
		return out, nil
	}
	ref := func(idx int) (*Block, error) {
		if idx < 0 || idx >= len(blocks) {
			return nil, fmt.Errorf("ir: unmarshal %s: block index %d out of range", w.Name, idx)
		}
		return blocks[idx], nil
	}
	for i, wb := range w.Blocks {
		b := blocks[i]
		for _, pi := range wb.Preds {
			p, err := ref(pi)
			if err != nil {
				return nil, err
			}
			b.Preds = append(b.Preds, p)
		}
		for _, si := range wb.Succs {
			s, err := ref(si)
			if err != nil {
				return nil, err
			}
			b.Succs = append(b.Succs, s)
		}
		for _, wi := range wb.Instrs {
			op, ok := opByName[wi.Op]
			if !ok {
				return nil, fmt.Errorf("ir: unmarshal %s: unknown op %q", w.Name, wi.Op)
			}
			defs, err := dec(wi.Defs)
			if err != nil {
				return nil, err
			}
			uses, err := dec(wi.Uses)
			if err != nil {
				return nil, err
			}
			b.Instrs = append(b.Instrs, &Instr{Op: op, Defs: defs, Uses: uses, Imm: wi.Imm, Callee: wi.Callee, blk: b})
		}
	}
	if err := f.Verify(); err != nil {
		return nil, fmt.Errorf("ir: unmarshal: %v", err)
	}
	return f, nil
}
