// Wire codec for functions: Marshal/Unmarshal serialize an ir.Func to a
// self-contained JSON document and back. The encoding is exact — value
// IDs, value names, block order, predecessor/successor order (which the
// φ argument convention depends on), pins, immediates and callees all
// round-trip — so a decoded function is indistinguishable from a Clone
// of the original: running the pipeline on either produces byte-identical
// output. That exactness is what lets the laocd service accept raw IR
// over the wire and still honor the Tables 1-5 byte-identity gate, and
// what makes content hashes of the encoding stable cache keys.
//
// Three schemas coexist:
//
//   - "laoc-ir-v1" walks the CFG and emits one JSON object per block and
//     instruction. It predates the SoA re-platform and is kept, reader
//     and writer, for wire compatibility with old clients.
//   - "laoc-ir-v2" is the arena fast path: it encodes the function's
//     slabs directly — value table, operand slab, code slab, instruction
//     and block arenas — as flat integer arrays. Because the slabs are
//     position-independent handle arrays, encoding is a few slice dumps
//     and decoding reconstructs the arenas verbatim, so a v2 round trip
//     is bit-exact down to span offsets (Clone-equivalent by memcmp, not
//     just semantically).
//   - "laoc-ir-b1" is the binary rendering of the same arena document:
//     a magic/version/target-shape header followed by little-endian
//     length-prefixed dumps of the value table and slabs (see
//     marshalb.go). It shares v2's extract and build paths, so it
//     inherits the same exact-round-trip guarantee at a fraction of the
//     decode cost; it is also the on-disk record payload of
//     internal/cachestore.
//
// Marshal emits v2, MarshalBinary emits b1; Unmarshal auto-detects all
// three (binary by magic prefix, JSON by schema tag). The laocd server
// negotiates per-request (see internal/server).
//
// Both formats tie values to the function's own Target: the physical
// register prefix of the value table (R0..R15, P0..P7, SP — created by
// NewFunc before any virtual value) is checked on decode, so a document
// produced against a different target shape fails loudly instead of
// mis-binding registers.
package ir

import (
	"encoding/json"
	"fmt"
)

// wireFunc is the v1 top-level JSON document.
type wireFunc struct {
	// Schema tags the encoding; decoders reject unknown schemas.
	Schema string `json:"schema"`
	Name   string `json:"name"`
	// Values is the full value table in ID order (dense: Values[i].ID == i),
	// physical registers included.
	Values []wireValue `json:"values"`
	// Blocks are in f.Blocks order, which is also print order; block IDs
	// are carried explicitly because passes may have compacted the slice.
	Blocks []wireBlock `json:"blocks"`
}

// WireSchemaV1 identifies the legacy per-instruction function encoding.
const WireSchemaV1 = "laoc-ir-v1"

// WireSchemaV2 identifies the arena (structure-of-arrays) encoding.
const WireSchemaV2 = "laoc-ir-v2"

type wireValue struct {
	Name string `json:"n"`
	Phys bool   `json:"p,omitempty"`
}

type wireBlock struct {
	ID    int    `json:"id"`
	Name  string `json:"name"`
	Depth int    `json:"depth,omitempty"`
	// Preds and Succs are indexes into the Blocks array (not block IDs),
	// in order — φ uses are parallel to Preds, Br reads Succs[0]/[1].
	Preds  []int       `json:"preds,omitempty"`
	Succs  []int       `json:"succs,omitempty"`
	Instrs []wireInstr `json:"instrs"`
}

type wireInstr struct {
	Op string `json:"op"`
	// Defs and Uses are operand pairs [valueID, pinID]; pinID -1 means
	// unpinned.
	Defs   [][2]int `json:"defs,omitempty"`
	Uses   [][2]int `json:"uses,omitempty"`
	Imm    int64    `json:"imm,omitempty"`
	Callee string   `json:"callee,omitempty"`
}

// wireFuncV2 is the v2 top-level JSON document: the arenas, verbatim.
type wireFuncV2 struct {
	Schema string `json:"schema"`
	Name   string `json:"name"`
	// NPhys is the length of the physical-register value prefix; must
	// match the decoder's target shape.
	NPhys int `json:"nphys"`
	// VNames are the names of the virtual values (IDs NPhys and up); the
	// physical prefix is implied by the target.
	VNames []string `json:"vnames"`
	// Ops is the operand slab: alternating value handle and biased pin
	// (0 = unpinned, else pin+1), two entries per operand.
	Ops []int32 `json:"ops,omitempty"`
	// Code is the instruction-list slab: instruction handles, with -1 in
	// unused capacity slots.
	Code []int32 `json:"code,omitempty"`
	// Instrs is the instruction arena, 7 numbers per slot:
	// op, block, defOff, defLen, useOff, useLen, imm.
	Instrs []int64 `json:"instrs,omitempty"`
	// Callees carries the sparse callee strings: pairs of arena slot and
	// name, in slot order.
	Callees []wireCallee `json:"callees,omitempty"`
	// Blocks is the block arena in handle order.
	Blocks []wireBlockV2 `json:"blocks"`
	// Order is the live block layout (entry first) as block handles.
	Order []int32 `json:"order"`
}

type wireCallee struct {
	Slot int32  `json:"i"`
	Name string `json:"n"`
}

type wireBlockV2 struct {
	Name    string  `json:"name"`
	Depth   int     `json:"depth,omitempty"`
	CodeOff int32   `json:"co"`
	CodeLen int32   `json:"cl"`
	Preds   []int32 `json:"preds,omitempty"`
	Succs   []int32 `json:"succs,omitempty"`
}

// opByName inverts opNames for decoding.
var opByName = func() map[string]Op {
	m := make(map[string]Op, opCount)
	for op, name := range opNames {
		if name != "" {
			m[name] = Op(op)
		}
	}
	return m
}()

// Marshal encodes f into the current wire format (v2, the arena fast
// path). The encoding is deterministic: the same function state always
// yields the same bytes, so hashes of the output are stable content
// keys. Use MarshalV1 when the peer only speaks the legacy schema.
func Marshal(f *Func) ([]byte, error) { return MarshalV2(f) }

// MarshalV2 encodes f's arenas directly (schema "laoc-ir-v2").
func MarshalV2(f *Func) ([]byte, error) {
	statMarshalsV2.Add(1)
	w, err := extractArenas(f)
	if err != nil {
		return nil, err
	}
	w.Schema = WireSchemaV2
	return json.Marshal(w)
}

// extractArenas dumps f's slabs into the shared arena document that
// both the v2 (JSON) and b1 (binary) encoders render. The Schema field
// is left for the caller.
func extractArenas(f *Func) (*wireFuncV2, error) {
	nphys := 0
	for nphys < len(f.vals) && f.vals[nphys].kind == Physical {
		nphys++
	}
	for i := nphys; i < len(f.vals); i++ {
		if f.vals[i].kind == Physical {
			return nil, fmt.Errorf("ir: marshal %s: physical value %q outside the target prefix", f.Name, f.vals[i].name)
		}
		if f.vals[i].name == "" {
			return nil, fmt.Errorf("ir: marshal %s: value %d has no name", f.Name, i)
		}
	}
	w := wireFuncV2{Name: f.Name, NPhys: nphys}
	w.VNames = make([]string, 0, len(f.vals)-nphys)
	for i := nphys; i < len(f.vals); i++ {
		w.VNames = append(w.VNames, f.vals[i].name)
	}
	w.Ops = make([]int32, 0, 2*len(f.ops))
	for _, o := range f.ops {
		w.Ops = append(w.Ops, int32(o.Val), int32(o.pin))
	}
	w.Code = make([]int32, len(f.code))
	for i, id := range f.code {
		w.Code[i] = int32(id)
	}
	w.Instrs = make([]int64, 0, 7*int(f.numInstrs))
	for id := int32(0); id < f.numInstrs; id++ {
		in := &f.instrChunks[id>>instrChunkShift][id&instrChunkMask]
		w.Instrs = append(w.Instrs,
			int64(in.op), int64(in.blk),
			int64(in.defOff), int64(in.defLen),
			int64(in.useOff), int64(in.useLen),
			in.Imm)
		if in.Callee != "" {
			w.Callees = append(w.Callees, wireCallee{Slot: id, Name: in.Callee})
		}
	}
	w.Blocks = make([]wireBlockV2, f.numBlocks)
	for id := int32(0); id < f.numBlocks; id++ {
		b := &f.blockChunks[id>>blockChunkShift][id&blockChunkMask]
		wb := wireBlockV2{Name: b.Name, Depth: b.LoopDepth, CodeOff: b.codeOff, CodeLen: b.codeLen}
		for _, p := range b.preds {
			wb.Preds = append(wb.Preds, int32(p))
		}
		for _, s := range b.succs {
			wb.Succs = append(wb.Succs, int32(s))
		}
		w.Blocks[id] = wb
	}
	w.Order = make([]int32, len(f.blockList))
	for i, b := range f.blockList {
		w.Order[i] = int32(b.ID)
	}
	return &w, nil
}

// MarshalV1 encodes f in the legacy schema, for peers that have not
// adopted v2. The bytes are identical to what the pre-SoA Marshal
// produced for the same function.
func MarshalV1(f *Func) ([]byte, error) {
	statMarshalsV1.Add(1)
	w := wireFunc{Schema: WireSchemaV1, Name: f.Name}
	w.Values = make([]wireValue, len(f.vals))
	for i, v := range f.vals {
		w.Values[i] = wireValue{Name: v.name, Phys: v.kind == Physical}
	}
	blkIdx := make(map[BlockID]int, len(f.blockList))
	for i, b := range f.blockList {
		blkIdx[b.ID] = i
	}
	enc := func(ops []Operand) ([][2]int, error) {
		if len(ops) == 0 {
			return nil, nil
		}
		out := make([][2]int, len(ops))
		for i, o := range ops {
			if o.Val == NoValue {
				return nil, fmt.Errorf("ir: marshal %s: missing operand value", f.Name)
			}
			pin := -1
			if o.Pinned() {
				pin = int(o.Pin())
			}
			out[i] = [2]int{int(o.Val), pin}
		}
		return out, nil
	}
	for _, b := range f.blockList {
		wb := wireBlock{ID: int(b.ID), Name: b.Name, Depth: b.LoopDepth}
		for _, p := range b.Preds() {
			i, ok := blkIdx[p]
			if !ok {
				return nil, fmt.Errorf("ir: marshal %s: block %v has detached pred %v", f.Name, b, f.Block(p))
			}
			wb.Preds = append(wb.Preds, i)
		}
		for _, s := range b.Succs() {
			i, ok := blkIdx[s]
			if !ok {
				return nil, fmt.Errorf("ir: marshal %s: block %v has detached succ %v", f.Name, b, f.Block(s))
			}
			wb.Succs = append(wb.Succs, i)
		}
		wb.Instrs = make([]wireInstr, b.NumInstrs())
		for i, in := range b.Instrs() {
			defs, err := enc(in.Defs())
			if err != nil {
				return nil, err
			}
			uses, err := enc(in.Uses())
			if err != nil {
				return nil, err
			}
			wb.Instrs[i] = wireInstr{Op: in.Op().String(), Defs: defs, Uses: uses, Imm: in.Imm, Callee: in.Callee}
		}
		w.Blocks = append(w.Blocks, wb)
	}
	return json.Marshal(&w)
}

// wireSchema is the minimal probe used to dispatch on the schema tag.
type wireSchema struct {
	Schema string `json:"schema"`
}

// Unmarshal decodes a function from the wire format, accepting the b1
// binary schema (detected by its magic prefix), the v2 arena schema and
// the legacy v1 schema. The result owns a fresh Target; the document's
// physical-register prefix must match the target shape exactly.
func Unmarshal(data []byte) (*Func, error) {
	if IsBinary(data) {
		statUnmarshalsB1.Add(1)
		return unmarshalB1(data)
	}
	var probe wireSchema
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("ir: unmarshal: %v", err)
	}
	switch probe.Schema {
	case WireSchemaV2:
		statUnmarshalsV2.Add(1)
		return unmarshalV2(data)
	case WireSchemaV1:
		statUnmarshalsV1.Add(1)
		return unmarshalV1(data)
	default:
		return nil, fmt.Errorf("ir: unmarshal: unknown schema %q (want %q, %q or %q)", probe.Schema, WireSchemaB1, WireSchemaV2, WireSchemaV1)
	}
}

// DetectSchema reports which wire schema data carries ("" when it is
// none of them). It inspects only the prefix/tag, not whole-document
// validity.
func DetectSchema(data []byte) string {
	if IsBinary(data) {
		return WireSchemaB1
	}
	var probe wireSchema
	if err := json.Unmarshal(data, &probe); err != nil {
		return ""
	}
	switch probe.Schema {
	case WireSchemaV2, WireSchemaV1:
		return probe.Schema
	}
	return ""
}

func unmarshalV2(data []byte) (*Func, error) {
	var w wireFuncV2
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("ir: unmarshal: %v", err)
	}
	return buildArenas(&w)
}

// buildArenas reconstructs a function from the shared arena document,
// validating every handle, span and edge before trusting it and
// finishing with a full structural Verify. Both the v2 and b1 decoders
// end here, so the two schemas cannot diverge in what they accept or
// in the function they build.
func buildArenas(w *wireFuncV2) (*Func, error) {
	if w.Name == "" {
		return nil, fmt.Errorf("ir: unmarshal: function has no name")
	}
	f := NewFunc(w.Name)
	if w.NPhys != len(f.vals) {
		return nil, fmt.Errorf("ir: unmarshal %s: document has %d target registers, target expects %d", w.Name, w.NPhys, len(f.vals))
	}
	for _, n := range w.VNames {
		if n == "" {
			return nil, fmt.Errorf("ir: unmarshal %s: value has no name", w.Name)
		}
		f.newValue(n, Virtual)
	}
	nv := int32(len(f.vals))

	if len(w.Ops)%2 != 0 {
		return nil, fmt.Errorf("ir: unmarshal %s: odd operand slab length %d", w.Name, len(w.Ops))
	}
	f.ops = make([]Operand, len(w.Ops)/2)
	for i := range f.ops {
		val, pin := w.Ops[2*i], w.Ops[2*i+1]
		if val < 0 || val >= nv {
			return nil, fmt.Errorf("ir: unmarshal %s: operand value %d out of range", w.Name, val)
		}
		if pin < 0 || pin > nv {
			return nil, fmt.Errorf("ir: unmarshal %s: operand pin %d out of range", w.Name, pin)
		}
		f.ops[i] = Operand{Val: ValueID(val), pin: ValueID(pin)}
	}

	if len(w.Instrs)%7 != 0 {
		return nil, fmt.Errorf("ir: unmarshal %s: instruction arena length %d not a multiple of 7", w.Name, len(w.Instrs))
	}
	nInstr := int32(len(w.Instrs) / 7)
	nBlock := int32(len(w.Blocks))

	f.code = make([]InstrID, len(w.Code))
	for i, id := range w.Code {
		if id != int32(NoInstr) && (id < 0 || id >= nInstr) {
			return nil, fmt.Errorf("ir: unmarshal %s: code slab entry %d out of range", w.Name, id)
		}
		f.code[i] = InstrID(id)
	}

	nOps := int32(len(f.ops))
	for i := int32(0); i < nInstr; i++ {
		rec := w.Instrs[7*i : 7*i+7]
		op := rec[0]
		if op < 0 || op >= int64(opCount) {
			return nil, fmt.Errorf("ir: unmarshal %s: unknown opcode %d", w.Name, op)
		}
		blk := rec[1]
		if blk != int64(NoBlock) && (blk < 0 || blk >= int64(nBlock)) {
			return nil, fmt.Errorf("ir: unmarshal %s: instruction block %d out of range", w.Name, blk)
		}
		span := func(off, n int64) error {
			if off < 0 || n < 0 || off+n > int64(nOps) {
				return fmt.Errorf("ir: unmarshal %s: operand span [%d,+%d) out of range", w.Name, off, n)
			}
			return nil
		}
		if err := span(rec[2], rec[3]); err != nil {
			return nil, err
		}
		if err := span(rec[4], rec[5]); err != nil {
			return nil, err
		}
		in := f.allocInstr()
		in.op = Op(op)
		in.blk = BlockID(blk)
		in.defOff, in.defLen = int32(rec[2]), int32(rec[3])
		in.useOff, in.useLen = int32(rec[4]), int32(rec[5])
		in.Imm = rec[6]
	}
	for _, c := range w.Callees {
		if c.Slot < 0 || c.Slot >= nInstr {
			return nil, fmt.Errorf("ir: unmarshal %s: callee slot %d out of range", w.Name, c.Slot)
		}
		f.Instr(InstrID(c.Slot)).Callee = c.Name
	}

	nCode := int32(len(f.code))
	for i, wb := range w.Blocks {
		b := f.NewBlock(wb.Name)
		if wb.Name == "" {
			return nil, fmt.Errorf("ir: unmarshal %s: block %d has no name", w.Name, i)
		}
		b.LoopDepth = wb.Depth
		if wb.CodeOff < 0 || wb.CodeLen < 0 || wb.CodeOff+wb.CodeLen > nCode {
			return nil, fmt.Errorf("ir: unmarshal %s: block %q code span [%d,+%d) out of range", w.Name, wb.Name, wb.CodeOff, wb.CodeLen)
		}
		for j := wb.CodeOff; j < wb.CodeOff+wb.CodeLen; j++ {
			if f.code[j] == NoInstr {
				return nil, fmt.Errorf("ir: unmarshal %s: block %q has a hole in its code span", w.Name, wb.Name)
			}
		}
		b.codeOff, b.codeLen, b.codeCap = wb.CodeOff, wb.CodeLen, wb.CodeLen
		edge := func(ids []int32) ([]BlockID, error) {
			if len(ids) == 0 {
				return nil, nil
			}
			out := make([]BlockID, len(ids))
			for k, id := range ids {
				if id < 0 || id >= int32(nBlock) {
					return nil, fmt.Errorf("ir: unmarshal %s: block %q edge %d out of range", w.Name, wb.Name, id)
				}
				out[k] = BlockID(id)
			}
			return out, nil
		}
		var err error
		if b.preds, err = edge(wb.Preds); err != nil {
			return nil, err
		}
		if b.succs, err = edge(wb.Succs); err != nil {
			return nil, err
		}
	}

	if len(w.Order) == 0 {
		return nil, fmt.Errorf("ir: unmarshal %s: function has no blocks", w.Name)
	}
	order := make([]BlockID, len(w.Order))
	seen := make([]bool, nBlock)
	for i, id := range w.Order {
		if id < 0 || id >= int32(nBlock) {
			return nil, fmt.Errorf("ir: unmarshal %s: layout block %d out of range", w.Name, id)
		}
		if seen[id] {
			return nil, fmt.Errorf("ir: unmarshal %s: block %d appears twice in the layout", w.Name, id)
		}
		seen[id] = true
		order[i] = BlockID(id)
	}
	f.SetBlockOrder(order)
	if err := f.Verify(); err != nil {
		return nil, fmt.Errorf("ir: unmarshal: %v", err)
	}
	return f, nil
}

func unmarshalV1(data []byte) (*Func, error) {
	var w wireFunc
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("ir: unmarshal: %v", err)
	}
	if w.Name == "" {
		return nil, fmt.Errorf("ir: unmarshal: function has no name")
	}
	f := NewFunc(w.Name)
	nphys := len(f.vals)
	if len(w.Values) < nphys {
		return nil, fmt.Errorf("ir: unmarshal %s: value table shorter than the %d target registers", w.Name, nphys)
	}
	for i := 0; i < nphys; i++ {
		if w.Values[i].Name != f.vals[i].name || !w.Values[i].Phys {
			return nil, fmt.Errorf("ir: unmarshal %s: value %d is %q/phys=%v, target expects register %q",
				w.Name, i, w.Values[i].Name, w.Values[i].Phys, f.vals[i].name)
		}
	}
	for i := nphys; i < len(w.Values); i++ {
		wv := w.Values[i]
		if wv.Phys {
			return nil, fmt.Errorf("ir: unmarshal %s: physical value %q outside the target prefix", w.Name, wv.Name)
		}
		if wv.Name == "" {
			return nil, fmt.Errorf("ir: unmarshal %s: value %d has no name", w.Name, i)
		}
		f.newValue(wv.Name, Virtual)
	}

	if len(w.Blocks) == 0 {
		return nil, fmt.Errorf("ir: unmarshal %s: function has no blocks", w.Name)
	}
	maxID := -1
	for _, wb := range w.Blocks {
		if wb.ID < 0 {
			return nil, fmt.Errorf("ir: unmarshal %s: negative block ID %d", w.Name, wb.ID)
		}
		if wb.Name == "" {
			return nil, fmt.Errorf("ir: unmarshal %s: block %d has no name", w.Name, wb.ID)
		}
		if wb.ID > maxID {
			maxID = wb.ID
		}
	}
	// The v1 document carries explicit, possibly non-dense block IDs
	// (passes may have compacted the layout before encoding). Allocate
	// the full arena range so handles resolve, then install the layout.
	for i := 0; i <= maxID; i++ {
		f.NewBlock("")
	}
	order := make([]BlockID, len(w.Blocks))
	seen := make([]bool, maxID+1)
	for i, wb := range w.Blocks {
		if seen[wb.ID] {
			return nil, fmt.Errorf("ir: unmarshal %s: duplicate block ID %d", w.Name, wb.ID)
		}
		seen[wb.ID] = true
		order[i] = BlockID(wb.ID)
		b := f.Block(BlockID(wb.ID))
		b.Name = wb.Name
		b.LoopDepth = wb.Depth
	}
	f.SetBlockOrder(order)

	val := func(id int) (ValueID, error) {
		if id < 0 || id >= len(f.vals) {
			return NoValue, fmt.Errorf("ir: unmarshal %s: value ID %d out of range", w.Name, id)
		}
		return ValueID(id), nil
	}
	dec := func(pairs [][2]int) ([]Operand, error) {
		if len(pairs) == 0 {
			return nil, nil
		}
		out := make([]Operand, len(pairs))
		for i, p := range pairs {
			v, err := val(p[0])
			if err != nil {
				return nil, err
			}
			out[i] = Operand{Val: v}
			if p[1] >= 0 {
				pin, err := val(p[1])
				if err != nil {
					return nil, err
				}
				out[i] = out[i].WithPin(pin)
			}
		}
		return out, nil
	}
	ref := func(idx int) (BlockID, error) {
		if idx < 0 || idx >= len(w.Blocks) {
			return NoBlock, fmt.Errorf("ir: unmarshal %s: block index %d out of range", w.Name, idx)
		}
		return BlockID(w.Blocks[idx].ID), nil
	}
	for _, wb := range w.Blocks {
		b := f.Block(BlockID(wb.ID))
		for _, pi := range wb.Preds {
			p, err := ref(pi)
			if err != nil {
				return nil, err
			}
			b.preds = append(b.preds, p)
		}
		for _, si := range wb.Succs {
			s, err := ref(si)
			if err != nil {
				return nil, err
			}
			b.succs = append(b.succs, s)
		}
		for _, wi := range wb.Instrs {
			op, ok := opByName[wi.Op]
			if !ok {
				return nil, fmt.Errorf("ir: unmarshal %s: unknown op %q", w.Name, wi.Op)
			}
			defs, err := dec(wi.Defs)
			if err != nil {
				return nil, err
			}
			uses, err := dec(wi.Uses)
			if err != nil {
				return nil, err
			}
			in := f.NewInstr(op, defs, uses)
			in.Imm = wi.Imm
			in.Callee = wi.Callee
			b.Append(in)
		}
	}
	if err := f.Verify(); err != nil {
		return nil, fmt.Errorf("ir: unmarshal: %v", err)
	}
	return f, nil
}
