package ir

import (
	"fmt"
	"iter"
)

// Block is a basic block: a straight-line instruction sequence ended by a
// terminator (Br, Jump or Output). Phi instructions, when present, form a
// prefix of the block and their Uses are parallel to Preds.
//
// Blocks live in their function's chunked block arena (*Block addresses
// are stable for the lifetime of the Func, but not across
// Clone/RestoreFrom — re-resolve via f.Block(id)). The instruction list
// is a capacity-capped span of the function's code slab; predecessor and
// successor lists are handle slices. ID is set at creation and must
// never be written; Name and LoopDepth are plain annotations that no
// cached analysis reads.
type Block struct {
	ID   BlockID
	Name string

	// LoopDepth is the loop nesting depth computed by cfg.ComputeLoopDepth;
	// 0 means not inside any loop. The paper weights moves by 5^depth and
	// processes confluence points inner-to-outer.
	LoopDepth int

	fn *Func

	codeOff, codeLen, codeCap int32
	preds, succs              []BlockID
}

// Func returns the function containing the block.
func (b *Block) Func() *Func { return b.fn }

func (b *Block) String() string {
	if b == nil {
		return "<nil>"
	}
	if b.Name != "" {
		return b.Name
	}
	return fmt.Sprintf("b%d", b.ID)
}

// ---- instruction list ----

// NumInstrs returns the number of instructions in the block.
func (b *Block) NumInstrs() int { return int(b.codeLen) }

// Instr returns the i-th instruction of the block.
func (b *Block) Instr(i int) *Instr {
	if i < 0 || int32(i) >= b.codeLen {
		panic(fmt.Sprintf("ir: %v: instruction index %d out of range [0,%d)", b, i, b.codeLen))
	}
	return b.fn.Instr(b.fn.code[b.codeOff+int32(i)])
}

// InstrIDs returns the block's instruction handles in order. The slice
// is a live view into the function's code slab: treat it as read-only
// and do not hold it across block mutation.
func (b *Block) InstrIDs() []InstrID {
	return b.fn.code[b.codeOff : b.codeOff+b.codeLen : b.codeOff+b.codeLen]
}

// Instrs iterates the block's instructions in order, yielding
// (index, *Instr). The span is captured when iteration starts, matching
// the snapshot semantics of ranging over a Go slice: instructions
// inserted by the loop body into a different block are unaffected;
// editing the block being iterated mid-loop follows the same
// in-place-vs-reallocated visibility rules the pointer-slice IR had.
func (b *Block) Instrs() iter.Seq2[int, *Instr] {
	return func(yield func(int, *Instr) bool) {
		f := b.fn
		off, n := b.codeOff, b.codeLen
		for i := int32(0); i < n; i++ {
			if !yield(int(i), f.Instr(f.code[off+i])) {
				return
			}
		}
	}
}

// grow widens the block's code span by one capacity slot: in place when
// the span sits at the slab tail, otherwise by re-carving the span at
// the tail with doubled capacity (the old span becomes garbage that the
// next Clone drops).
func (b *Block) grow() {
	f := b.fn
	if int(b.codeOff+b.codeCap) == len(f.code) {
		f.code = append(f.code, NoInstr)
		b.codeCap++
		return
	}
	newCap := b.codeCap * 2
	if newCap < 8 {
		newCap = 8
	}
	noff := int32(len(f.code))
	f.code = append(f.code, f.code[b.codeOff:b.codeOff+b.codeLen]...)
	for i := b.codeLen; i < newCap; i++ {
		f.code = append(f.code, NoInstr)
	}
	b.codeOff, b.codeCap = noff, newCap
}

// Append adds in at the end of the block.
func (b *Block) Append(in *Instr) {
	b.fn.cowCode()
	if b.codeLen == b.codeCap {
		b.grow()
	}
	b.fn.code[b.codeOff+b.codeLen] = in.id
	b.codeLen++
	in.blk = b.ID
	b.fn.generation++
}

// InsertAt inserts in at position i within the block.
func (b *Block) InsertAt(i int, in *Instr) {
	b.fn.cowCode()
	if b.codeLen == b.codeCap {
		b.grow()
	}
	code := b.fn.code[b.codeOff : b.codeOff+b.codeLen+1]
	copy(code[i+1:], code[i:])
	code[i] = in.id
	b.codeLen++
	in.blk = b.ID
	b.fn.generation++
}

// RemoveAt removes and returns the instruction at position i. The
// instruction becomes detached (its arena slot and handle stay valid).
func (b *Block) RemoveAt(i int) *Instr {
	b.fn.cowCode()
	in := b.Instr(i)
	code := b.fn.code[b.codeOff : b.codeOff+b.codeLen]
	copy(code[i:], code[i+1:])
	b.codeLen--
	in.blk = NoBlock
	b.fn.generation++
	return in
}

// Truncate removes every instruction from position i to the end of the
// block, detaching each.
func (b *Block) Truncate(i int) {
	for j := int(b.codeLen) - 1; j >= i; j-- {
		b.fn.Instr(b.fn.code[b.codeOff+int32(j)]).blk = NoBlock
	}
	b.codeLen = int32(i)
	b.fn.generation++
}

// Terminator returns the block's final instruction if it is a terminator,
// else nil.
func (b *Block) Terminator() *Instr {
	if b.codeLen == 0 {
		return nil
	}
	last := b.Instr(int(b.codeLen) - 1)
	if last.op.IsTerminator() {
		return last
	}
	return nil
}

// InsertBeforeTerminator inserts in just before the block terminator, or
// at the end if the block has none. This is where φ-related copies land:
// "semantically, the use takes place at the end of the predecessor block"
// (paper §3.2 Class 2).
func (b *Block) InsertBeforeTerminator(in *Instr) {
	if b.Terminator() != nil {
		b.InsertAt(int(b.codeLen)-1, in)
		return
	}
	b.Append(in)
}

// NumPhis returns the length of the block's φ prefix.
func (b *Block) NumPhis() int {
	n := 0
	for n < int(b.codeLen) && b.Instr(n).op == Phi {
		n++
	}
	return n
}

// Phis iterates the block's φ instructions (the Phi prefix), yielding
// (index, *Instr).
func (b *Block) Phis() iter.Seq2[int, *Instr] {
	return func(yield func(int, *Instr) bool) {
		f := b.fn
		off, n := b.codeOff, b.codeLen
		for i := int32(0); i < n; i++ {
			in := f.Instr(f.code[off+i])
			if in.op != Phi {
				return
			}
			if !yield(int(i), in) {
				return
			}
		}
	}
}

// FirstNonPhi returns the index of the first non-φ instruction.
func (b *Block) FirstNonPhi() int { return b.NumPhis() }

// ---- CFG edges ----

// NumPreds returns the number of predecessor blocks.
func (b *Block) NumPreds() int { return len(b.preds) }

// NumSuccs returns the number of successor blocks.
func (b *Block) NumSuccs() int { return len(b.succs) }

// Preds returns the predecessor handles in order (φ uses are parallel to
// this list). Read-only view; mutate through AddEdge/ReplacePred/SetPreds.
func (b *Block) Preds() []BlockID { return b.preds }

// Succs returns the successor handles in order (Br reads Succs[0] when
// taken, Succs[1] otherwise). Read-only view.
func (b *Block) Succs() []BlockID { return b.succs }

// Pred returns the i-th predecessor block.
func (b *Block) Pred(i int) *Block { return b.fn.Block(b.preds[i]) }

// Succ returns the i-th successor block.
func (b *Block) Succ(i int) *Block { return b.fn.Block(b.succs[i]) }

// PredIndex returns the position of p in b.Preds, or -1.
func (b *Block) PredIndex(p BlockID) int {
	for i, q := range b.preds {
		if q == p {
			return i
		}
	}
	return -1
}

// SuccIndex returns the position of s in b.Succs, or -1.
func (b *Block) SuccIndex(s BlockID) int {
	for i, q := range b.succs {
		if q == s {
			return i
		}
	}
	return -1
}

// ReplacePred substitutes newPred for oldPred in b.Preds (φ uses keep
// their positions, so φ argument correspondence is preserved).
func (b *Block) ReplacePred(oldPred, newPred BlockID) {
	for i, q := range b.preds {
		if q == oldPred {
			b.fn.cowEdges()
			b.preds[i] = newPred
			b.fn.NoteCFGMutation()
			return
		}
	}
	// Panic audit: programmer invariant. CFG edge rewrites are performed
	// only by passes that just looked the edge up; malformed *input* edges
	// are caught by Func.Verify (and the checked pipeline's runner
	// contains any pass that trips this anyway).
	panic(fmt.Sprintf("ir: %v is not a predecessor of %v", b.fn.Block(oldPred), b))
}

// ReplaceSucc substitutes newSucc for oldSucc in b.Succs.
func (b *Block) ReplaceSucc(oldSucc, newSucc BlockID) {
	for i, q := range b.succs {
		if q == oldSucc {
			b.fn.cowEdges()
			b.succs[i] = newSucc
			b.fn.NoteCFGMutation()
			return
		}
	}
	// Panic audit: programmer invariant, symmetric with ReplacePred.
	panic(fmt.Sprintf("ir: %v is not a successor of %v", b.fn.Block(oldSucc), b))
}

// RemovePredAt splices out the i-th predecessor edge entry. The caller
// is responsible for the matching φ-argument splice (cfg cleanup does
// both in lockstep).
func (b *Block) RemovePredAt(i int) {
	b.fn.cowEdges()
	b.preds = append(b.preds[:i], b.preds[i+1:]...)
	b.fn.NoteCFGMutation()
}

// SetPreds replaces the predecessor list wholesale (CFG cleanup).
func (b *Block) SetPreds(ids []BlockID) {
	b.preds = append(b.preds[:0:0], ids...)
	b.fn.NoteCFGMutation()
}

// SetSuccs replaces the successor list wholesale (CFG cleanup).
func (b *Block) SetSuccs(ids []BlockID) {
	b.succs = append(b.succs[:0:0], ids...)
	b.fn.NoteCFGMutation()
}
