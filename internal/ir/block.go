package ir

import "fmt"

// Block is a basic block: a straight-line instruction sequence ended by a
// terminator (Br, Jump or Output). Phi instructions, when present, form a
// prefix of the block and their Uses are parallel to Preds.
type Block struct {
	ID     int
	Name   string
	Instrs []*Instr
	Preds  []*Block
	Succs  []*Block

	// LoopDepth is the loop nesting depth computed by cfg.ComputeLoopDepth;
	// 0 means not inside any loop. The paper weights moves by 5^depth and
	// processes confluence points inner-to-outer.
	LoopDepth int

	fn *Func
}

// Func returns the function containing the block.
func (b *Block) Func() *Func { return b.fn }

func (b *Block) String() string {
	if b == nil {
		return "<nil>"
	}
	if b.Name != "" {
		return b.Name
	}
	return fmt.Sprintf("b%d", b.ID)
}

// noteMutation forwards to the owning function's generation counter
// (blocks detached from a function are only ever under construction).
func (b *Block) noteMutation() {
	if b.fn != nil {
		b.fn.generation++
	}
}

// noteCFGMutation forwards to the owning function's CFG generation.
func (b *Block) noteCFGMutation() {
	if b.fn != nil {
		b.fn.NoteCFGMutation()
	}
}

// Append adds in at the end of the block.
func (b *Block) Append(in *Instr) {
	in.blk = b
	b.Instrs = append(b.Instrs, in)
	b.noteMutation()
}

// InsertAt inserts in at position i within the block.
func (b *Block) InsertAt(i int, in *Instr) {
	in.blk = b
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[i+1:], b.Instrs[i:])
	b.Instrs[i] = in
	b.noteMutation()
}

// RemoveAt removes and returns the instruction at position i.
func (b *Block) RemoveAt(i int) *Instr {
	in := b.Instrs[i]
	copy(b.Instrs[i:], b.Instrs[i+1:])
	b.Instrs = b.Instrs[:len(b.Instrs)-1]
	in.blk = nil
	b.noteMutation()
	return in
}

// Terminator returns the block's final instruction if it is a terminator,
// else nil.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if last.Op.IsTerminator() {
		return last
	}
	return nil
}

// InsertBeforeTerminator inserts in just before the block terminator, or
// at the end if the block has none. This is where φ-related copies land:
// "semantically, the use takes place at the end of the predecessor block"
// (paper §3.2 Class 2).
func (b *Block) InsertBeforeTerminator(in *Instr) {
	if b.Terminator() != nil {
		b.InsertAt(len(b.Instrs)-1, in)
		return
	}
	b.Append(in)
}

// Phis returns the block's φ instructions (the Phi prefix of the block).
func (b *Block) Phis() []*Instr {
	n := 0
	for n < len(b.Instrs) && b.Instrs[n].Op == Phi {
		n++
	}
	return b.Instrs[:n]
}

// FirstNonPhi returns the index of the first non-φ instruction.
func (b *Block) FirstNonPhi() int {
	n := 0
	for n < len(b.Instrs) && b.Instrs[n].Op == Phi {
		n++
	}
	return n
}

// PredIndex returns the position of p in b.Preds, or -1.
func (b *Block) PredIndex(p *Block) int {
	for i, q := range b.Preds {
		if q == p {
			return i
		}
	}
	return -1
}

// SuccIndex returns the position of s in b.Succs, or -1.
func (b *Block) SuccIndex(s *Block) int {
	for i, q := range b.Succs {
		if q == s {
			return i
		}
	}
	return -1
}

// ReplacePred substitutes newPred for oldPred in b.Preds (φ uses keep
// their positions, so φ argument correspondence is preserved).
func (b *Block) ReplacePred(oldPred, newPred *Block) {
	for i, q := range b.Preds {
		if q == oldPred {
			b.Preds[i] = newPred
			b.noteCFGMutation()
			return
		}
	}
	// Panic audit: programmer invariant. CFG edge rewrites are performed
	// only by passes that just looked the edge up; malformed *input* edges
	// are caught by Func.Verify (and the checked pipeline's runner
	// contains any pass that trips this anyway).
	panic(fmt.Sprintf("ir: %v is not a predecessor of %v", oldPred, b))
}

// ReplaceSucc substitutes newSucc for oldSucc in b.Succs.
func (b *Block) ReplaceSucc(oldSucc, newSucc *Block) {
	for i, q := range b.Succs {
		if q == oldSucc {
			b.Succs[i] = newSucc
			b.noteCFGMutation()
			return
		}
	}
	// Panic audit: programmer invariant, symmetric with ReplacePred.
	panic(fmt.Sprintf("ir: %v is not a successor of %v", oldSucc, b))
}
