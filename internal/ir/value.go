// Package ir defines a machine-level intermediate representation modeled
// after the Linear Assembly Input (LAI) language of the STMicroelectronics
// Linear Assembly Optimizer, as described in Rastello, de Ferrière and
// Guillon, "Optimizing Translation Out of SSA Using Renaming Constraints"
// (CGO 2004).
//
// The IR supports both pre-SSA (multiple definitions per value) and SSA
// (single definition, phi instructions) forms. Textual operands can be
// pinned to resources — either dedicated physical registers (R0, SP, ...)
// or virtual resources — which is the mechanism the paper's out-of-SSA
// algorithms use to express renaming constraints and coalescing decisions.
package ir

import "fmt"

// ValueKind distinguishes virtual registers (variables) from dedicated
// physical registers.
type ValueKind uint8

const (
	// Virtual is a general-purpose virtual register; the paper assumes an
	// unlimited supply of these, with physical constraints handled later
	// by register allocation.
	Virtual ValueKind = iota
	// Physical is a dedicated machine register (R0, SP, ...). Two distinct
	// physical registers always strongly interfere.
	Physical
)

// Value is a resource in the paper's sense: either a variable (virtual
// register) or a dedicated physical register. In SSA form each Virtual
// value has exactly one defining instruction.
type Value struct {
	// ID is unique within a Func and totally orders values; all map
	// iteration in the repository is done in ID order for determinism.
	ID   int
	Name string
	Kind ValueKind
}

// IsPhys reports whether v is a dedicated physical register.
func (v *Value) IsPhys() bool { return v.Kind == Physical }

func (v *Value) String() string {
	if v == nil {
		return "<nil>"
	}
	return v.Name
}

// Operand is a textual occurrence of a value in an instruction, either as
// a definition or a use. Pin, when non-nil, pre-colors this occurrence to
// a resource (paper §2.1: "resource pinning is a pre-coloring of operands
// to resources").
type Operand struct {
	Val *Value
	Pin *Value
}

func (o Operand) String() string {
	if o.Pin != nil {
		return fmt.Sprintf("%s^%s", o.Val, o.Pin)
	}
	return o.Val.String()
}
