// Package ir defines a machine-level intermediate representation modeled
// after the Linear Assembly Input (LAI) language of the STMicroelectronics
// Linear Assembly Optimizer, as described in Rastello, de Ferrière and
// Guillon, "Optimizing Translation Out of SSA Using Renaming Constraints"
// (CGO 2004).
//
// The IR supports both pre-SSA (multiple definitions per value) and SSA
// (single definition, phi instructions) forms. Textual operands can be
// pinned to resources — either dedicated physical registers (R0, SP, ...)
// or virtual resources — which is the mechanism the paper's out-of-SSA
// algorithms use to express renaming constraints and coalescing decisions.
//
// The representation is structure-of-arrays: a *Func owns flat slabs of
// value metadata, operands and instruction lists, addressed by the typed
// int32 handles of handle.go. Entities never hold pointers to each other
// — every cross-reference is a handle — which makes Clone a handful of
// slab copies and keeps the long-lived analysis caches nearly free of GC
// scan work.
package ir

// ValueKind distinguishes virtual registers (variables) from dedicated
// physical registers.
type ValueKind uint8

const (
	// Virtual is a general-purpose virtual register; the paper assumes an
	// unlimited supply of these, with physical constraints handled later
	// by register allocation.
	Virtual ValueKind = iota
	// Physical is a dedicated machine register (R0, SP, ...). Two distinct
	// physical registers always strongly interfere.
	Physical
)

// valData is the per-value metadata slab entry. Values are immutable
// after creation, so Clone can share the string backing and copy the
// slab with a single append.
type valData struct {
	name string
	kind ValueKind
}

// Operand is a textual occurrence of a value in an instruction, either as
// a definition or a use. The pin, when present, pre-colors this occurrence
// to a resource (paper §2.1: "resource pinning is a pre-coloring of
// operands to resources").
//
// Operands are pure handle pairs — position-independent and pointer-free —
// so the per-function operand slab can be copied verbatim by Clone and
// encoded verbatim by the v2 wire format. The pin is stored biased by +1
// so that the zero Operand is an unpinned use of R0: constructing
// Operand{Val: v} is always safe, and pins can only be attached through
// WithPin or the Instr pin mutators (which is how the no-generation-bump
// rule for pins is enforced).
type Operand struct {
	Val ValueID
	pin ValueID // 0 = unpinned, else pin+1
}

// Pinned reports whether the operand is pinned to a resource.
func (o Operand) Pinned() bool { return o.pin != 0 }

// Pin returns the resource this operand is pinned to, or NoValue.
func (o Operand) Pin() ValueID {
	if o.pin == 0 {
		return NoValue
	}
	return o.pin - 1
}

// WithPin returns a copy of o pinned to r. r == NoValue clears the pin.
func (o Operand) WithPin(r ValueID) Operand {
	if r == NoValue {
		o.pin = 0
	} else {
		o.pin = r + 1
	}
	return o
}

// Ops builds an operand list over the given values, unpinned. It is the
// construction helper used by the Builder, the parsers and the passes.
func Ops(vals ...ValueID) []Operand {
	out := make([]Operand, len(vals))
	for i, v := range vals {
		out[i] = Operand{Val: v}
	}
	return out
}
