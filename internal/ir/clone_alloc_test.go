package ir

import (
	"fmt"
	"testing"
)

// buildCloneFixture assembles a function large enough to span several
// instruction-arena chunks (straight-line adds over a rolling pair of
// values) so the per-chunk copies show up in the allocation budget.
func buildCloneFixture(nInstrs int) *Func {
	bld := NewBuilder("clonefix")
	bld.Block("entry")
	a, b := bld.Val("a"), bld.Val("b")
	bld.Input(a, b)
	prev := b
	for i := 0; i < nInstrs; i++ {
		next := bld.Val(fmt.Sprintf("t%d", i))
		bld.Binary(Add, next, a, prev)
		prev = next
	}
	bld.Output(prev)
	return bld.Fn
}

// TestCloneAllocs pins Clone's allocation budget to the slab count: the
// whole point of the SoA re-platform is that cloning is O(arena chunks)
// slab copies, not O(values + instructions + operands) node copies. If
// this fails, someone reintroduced a per-entity allocation.
func TestCloneAllocs(t *testing.T) {
	for _, n := range []int{10, 600} { // one chunk; multiple chunks
		f := buildCloneFixture(n)
		budget := f.cloneSlabCount()
		allocs := int(testing.AllocsPerRun(50, func() {
			_ = f.Clone()
		}))
		if allocs > budget {
			t.Errorf("n=%d: Clone made %d allocations, slab budget is %d", n, allocs, budget)
		}
		// The budget itself must stay O(chunks): a 60x instruction growth
		// may only add the extra chunk allocations, nothing per-entity.
		if n == 600 && budget > 20 {
			t.Errorf("slab budget %d for %d instructions — budget is no longer O(chunks)", budget, n)
		}
	}
}

// TestCloneSlabCountTracksClone keeps the budget honest in the other
// direction: it must not drift far above what Clone actually allocates,
// or the pin stops meaning anything.
func TestCloneSlabCountTracksClone(t *testing.T) {
	f := buildCloneFixture(300)
	budget := f.cloneSlabCount()
	allocs := int(testing.AllocsPerRun(50, func() {
		_ = f.Clone()
	}))
	if budget > 2*allocs {
		t.Errorf("slab budget %d is more than twice the measured %d allocations", budget, allocs)
	}
}
