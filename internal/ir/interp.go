package ir

import (
	"errors"
	"fmt"
)

// ExecResult captures the externally observable behaviour of one
// execution: the values returned through .output, every store performed
// (in order), and the step count. Two semantically equivalent functions
// must produce identical ExecResults for the same inputs — this is the
// oracle the out-of-SSA property tests use.
type ExecResult struct {
	Outputs []int64
	Stores  []StoreEvent
	Steps   int
}

// StoreEvent records one memory write.
type StoreEvent struct {
	Addr, Val int64
}

// ErrStepBudget is the sentinel returned when execution does not reach
// .output within the step budget. The interpreter cannot distinguish
// nontermination from slow convergence, so callers comparing two
// executions (the differential fuzzer, laoc -run) must treat a budget
// overrun as "no verdict" rather than as a semantic mismatch; test with
// errors.Is(err, ir.ErrStepBudget).
var ErrStepBudget = errors.New("ir: execution step budget exceeded")

// ErrStepLimit is the historical name of ErrStepBudget.
//
// Deprecated: use ErrStepBudget.
var ErrStepLimit = ErrStepBudget

// Exec interprets f with the given arguments. Loads from addresses never
// stored to yield a deterministic hash of the address; calls yield a
// deterministic hash of the callee name and argument values, so that two
// equivalent programs observe identical values everywhere.
func Exec(f *Func, args []int64, maxSteps int) (*ExecResult, error) {
	env := make([]int64, f.NumValues())
	mem := make(map[int64]int64)
	res := &ExecResult{}

	get := func(o Operand) int64 { return env[o.Val] }
	set := func(o Operand, v int64) { env[o.Val] = v }

	blk := f.Entry()
	prev := NoBlock
	for {
		// Evaluate the φ prefix in parallel.
		nPhis := blk.NumPhis()
		if nPhis > 0 {
			pi := blk.PredIndex(prev)
			if pi < 0 {
				return nil, fmt.Errorf("ir: entered %v from non-predecessor %v", blk, prev)
			}
			tmp := make([]int64, nPhis)
			for i := 0; i < nPhis; i++ {
				tmp[i] = get(blk.Instr(i).UseOp(pi))
			}
			for i := 0; i < nPhis; i++ {
				set(blk.Instr(i).DefOp(0), tmp[i])
			}
		}

		branched := false
		for ii := nPhis; ii < blk.NumInstrs(); ii++ {
			in := blk.Instr(ii)
			res.Steps++
			if res.Steps > maxSteps {
				return nil, ErrStepBudget
			}
			switch in.Op() {
			case Nop:
			case Copy:
				set(in.DefOp(0), get(in.UseOp(0)))
			case ParCopy:
				tmp := make([]int64, in.NumUses())
				for i, u := range in.Uses() {
					tmp[i] = get(u)
				}
				for i, d := range in.Defs() {
					set(d, tmp[i])
				}
			case Const:
				set(in.DefOp(0), in.Imm)
			case Make:
				set(in.DefOp(0), in.Imm<<16)
			case More:
				set(in.DefOp(0), get(in.UseOp(0))|(in.Imm&0xFFFF))
			case Add:
				set(in.DefOp(0), get(in.UseOp(0))+get(in.UseOp(1)))
			case Sub:
				set(in.DefOp(0), get(in.UseOp(0))-get(in.UseOp(1)))
			case Mul:
				set(in.DefOp(0), get(in.UseOp(0))*get(in.UseOp(1)))
			case Div:
				d := get(in.UseOp(1))
				if d == 0 {
					set(in.DefOp(0), 0)
				} else {
					set(in.DefOp(0), get(in.UseOp(0))/d)
				}
			case Rem:
				d := get(in.UseOp(1))
				if d == 0 {
					set(in.DefOp(0), 0)
				} else {
					set(in.DefOp(0), get(in.UseOp(0))%d)
				}
			case And:
				set(in.DefOp(0), get(in.UseOp(0))&get(in.UseOp(1)))
			case Or:
				set(in.DefOp(0), get(in.UseOp(0))|get(in.UseOp(1)))
			case Xor:
				set(in.DefOp(0), get(in.UseOp(0))^get(in.UseOp(1)))
			case Shl:
				set(in.DefOp(0), get(in.UseOp(0))<<(uint64(get(in.UseOp(1)))&63))
			case Shr:
				set(in.DefOp(0), get(in.UseOp(0))>>(uint64(get(in.UseOp(1)))&63))
			case Neg:
				set(in.DefOp(0), -get(in.UseOp(0)))
			case Not:
				set(in.DefOp(0), ^get(in.UseOp(0)))
			case CmpEQ:
				set(in.DefOp(0), b2i(get(in.UseOp(0)) == get(in.UseOp(1))))
			case CmpNE:
				set(in.DefOp(0), b2i(get(in.UseOp(0)) != get(in.UseOp(1))))
			case CmpLT:
				set(in.DefOp(0), b2i(get(in.UseOp(0)) < get(in.UseOp(1))))
			case CmpLE:
				set(in.DefOp(0), b2i(get(in.UseOp(0)) <= get(in.UseOp(1))))
			case CmpGT:
				set(in.DefOp(0), b2i(get(in.UseOp(0)) > get(in.UseOp(1))))
			case CmpGE:
				set(in.DefOp(0), b2i(get(in.UseOp(0)) >= get(in.UseOp(1))))
			case Min:
				a, b := get(in.UseOp(0)), get(in.UseOp(1))
				if b < a {
					a = b
				}
				set(in.DefOp(0), a)
			case Max:
				a, b := get(in.UseOp(0)), get(in.UseOp(1))
				if b > a {
					a = b
				}
				set(in.DefOp(0), a)
			case Mac:
				set(in.DefOp(0), get(in.UseOp(0))+get(in.UseOp(1))*get(in.UseOp(2)))
			case Select:
				if get(in.UseOp(0)) != 0 {
					set(in.DefOp(0), get(in.UseOp(1)))
				} else {
					set(in.DefOp(0), get(in.UseOp(2)))
				}
			case Psi:
				// d = value of the last pair whose predicate is true, else 0.
				var v int64
				for i := 0; i+1 < in.NumUses(); i += 2 {
					if get(in.UseOp(i)) != 0 {
						v = get(in.UseOp(i + 1))
					}
				}
				set(in.DefOp(0), v)
			case AutoAdd:
				set(in.DefOp(0), get(in.UseOp(0))+in.Imm)
			case Load:
				addr := get(in.UseOp(0))
				v, ok := mem[addr]
				if !ok {
					v = hash2("mem", addr)
				}
				set(in.DefOp(0), v)
			case Store:
				addr := get(in.UseOp(0))
				v := get(in.UseOp(1))
				mem[addr] = v
				res.Stores = append(res.Stores, StoreEvent{addr, v})
			case Call:
				h := hashStr(in.Callee)
				for _, u := range in.Uses() {
					h = hashMix(h, get(u))
				}
				for i, d := range in.Defs() {
					set(d, int64(hashMix(h, int64(i))))
				}
			case Input:
				// Only declared parameters (the first Imm defs) receive
				// arguments; implicit entry definitions added by SSA
				// construction are zero-initialized.
				for i, d := range in.Defs() {
					if i < len(args) && i < int(in.Imm) {
						set(d, args[i])
					} else {
						set(d, 0)
					}
				}
			case Output:
				for _, u := range in.Uses() {
					res.Outputs = append(res.Outputs, get(u))
				}
				return res, nil
			case Br:
				prev = blk.ID
				if get(in.UseOp(0)) != 0 {
					blk = blk.Succ(0)
				} else {
					blk = blk.Succ(1)
				}
			case Jump:
				prev = blk.ID
				blk = blk.Succ(0)
			default:
				return nil, fmt.Errorf("ir: cannot interpret %q", in)
			}
			if in.Op() == Br || in.Op() == Jump {
				branched = true
				break
			}
		}
		if !branched {
			return nil, fmt.Errorf("ir: fell off the end of block %v", blk)
		}
	}
}

// Equal reports whether two execution results are observably identical.
func (r *ExecResult) Equal(o *ExecResult) bool {
	if len(r.Outputs) != len(o.Outputs) || len(r.Stores) != len(o.Stores) {
		return false
	}
	for i := range r.Outputs {
		if r.Outputs[i] != o.Outputs[i] {
			return false
		}
	}
	for i := range r.Stores {
		if r.Stores[i] != o.Stores[i] {
			return false
		}
	}
	return true
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

const (
	fnvOffset = 1469598103934665603
	fnvPrime  = 1099511628211
)

func hashStr(s string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

func hashMix(h uint64, v int64) uint64 {
	u := uint64(v)
	for i := 0; i < 8; i++ {
		h ^= (u >> (8 * uint(i))) & 0xFF
		h *= fnvPrime
	}
	return h
}

func hash2(tag string, v int64) int64 {
	return int64(hashMix(hashStr(tag), v))
}
