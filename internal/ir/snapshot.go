package ir

import "sync/atomic"

// Copy-on-write snapshots.
//
// Snapshot is the batch driver's and the server's replacement for the
// per-job Clone: it produces a *Func that shares the parent's flat
// slabs (values, operands, code, CFG edge lists) instead of copying
// them, and defers each copy until the first mutating accessor that
// would write the shared storage actually fires. Read-heavy jobs —
// metric extraction, verification, liveness/dominator queries,
// cache-hit server requests — therefore pay no slab copy at all.
//
// What is shared and what is not:
//
//   - The value, operand and code slabs and the per-block pred/succ
//     edge arrays are position-independent and pointer-free, so they
//     are shared byte-for-byte. While shared they are immutable: every
//     mutator of this package routes through a cow* hook (see below)
//     that copies the slab it is about to write — exactly the copies
//     Clone performs eagerly, just deferred to first use.
//   - The instruction and block arena chunks carry fn back-pointers
//     (an Instr or Block must resolve to the function that owns it, or
//     mutations through held pointers would route to the wrong
//     generation counters and the wrong slabs), so chunks cannot be
//     shared between two live Funcs. Snapshot copies them eagerly, the
//     same per-chunk memcpy + fix-up Clone does. The chunks are the
//     O(arena chunks) allocation floor; the flat slabs are the memory
//     *bandwidth* bulk, and those are the part COW elides.
//
// Sharing is tracked by a refcounted cowState hanging off every Func
// attached to the same frozen slab family. The per-slab share flags
// (sharedOps, sharedCode, sharedEdges) say which storage this Func
// still reads through the shared family; the value slab needs no flag
// because it is append-only and frozen at capacity, so a post-snapshot
// NewValue reallocates away from the family automatically.
//
// Concurrency protocol: Freeze is single-goroutine (callers freeze a
// master before handing it to workers); after that, Snapshot may be
// called concurrently from any number of goroutines, and the frozen
// master plus all un-materialized snapshots may be read concurrently.
// A Func may be mutated only by its exclusive owner, which is what the
// cow hooks preserve: the first mutation copies privately, so no write
// ever lands in storage another goroutine can see.
type cowState struct {
	// refs counts the Funcs that may still read the family's mutable
	// shared storage (operand/code slabs, edge arrays): the frozen
	// parent plus every snapshot that has not fully materialized. A
	// materialization that finds refs == 1 adopts the storage in place
	// instead of copying — nobody else can observe the writes.
	refs atomic.Int32
}

// Freeze prepares f for zero-copy snapshots: it installs the shared
// cowState and caps the flat slabs at their current length, so any
// later append — from f itself or from a snapshot — reallocates away
// from the shared backing instead of writing through spare capacity.
// Freeze is idempotent and cheap (no allocation beyond the cowState,
// no copying). The first Freeze of a Func must not race with other
// accesses; afterwards Snapshot is safe to call concurrently.
//
// A frozen Func remains fully usable, including mutation: its own
// mutators take the same copy-on-write path a snapshot's do, so the
// snapshots keep reading the retired storage unharmed.
func (f *Func) Freeze() {
	if f.cow != nil {
		if f.sharedOps && f.sharedCode && f.sharedEdges {
			// Fully shared family member: already frozen, every slab is
			// the family's capacity-capped storage.
			return
		}
		// Partially materialized snapshot: the slabs it already faulted
		// are private and NOT capacity-capped, so sharing them through
		// the old family would let f keep writing storage a new snapshot
		// reads (the in-place fast path skips the cow hooks once a share
		// flag clears). Materialize the rest, leave the old family, and
		// re-freeze the now fully private storage from scratch.
		for f.cow != nil {
			switch {
			case f.sharedOps:
				f.cowFault(cowSlabOps)
			case f.sharedCode:
				f.cowFault(cowSlabCode)
			default:
				f.cowFault(cowSlabEdges)
			}
		}
	}
	c := &cowState{}
	c.refs.Store(1)
	f.vals = f.vals[:len(f.vals):len(f.vals)]
	f.ops = f.ops[:len(f.ops):len(f.ops)]
	f.code = f.code[:len(f.code):len(f.code)]
	f.sharedOps, f.sharedCode, f.sharedEdges = true, true, true
	f.cow = c
}

// Frozen reports whether f currently shares slab storage with other
// Funcs (it is a frozen master or an un-materialized snapshot). The
// analysis cache uses this to decide when to publish precomputed,
// immutable query structures instead of lazily self-filling ones.
func (f *Func) Frozen() bool { return f.cow != nil }

// MarkSharedRead declares that f will be read by multiple goroutines
// concurrently with no further mutation (the read-only fan-out of one
// snapshot across workers). internal/analysis checks it to publish
// frozen, precompute-complete query structures instead of the lazily
// self-filling ones an exclusive owner gets; exclusively-owned
// functions — including ordinary per-job snapshots — never set it, so
// the serial pipeline keeps its incremental-revalidation behavior.
// Call it once, before handing f out; mutating f afterwards violates
// the contract.
func (f *Func) MarkSharedRead() { f.sharedRead = true }

// SharedRead reports whether MarkSharedRead was called on f.
func (f *Func) SharedRead() bool { return f.sharedRead }

// Snapshot returns a copy-on-write copy of f. Handles are preserved
// exactly as with Clone — value, block and instruction IDs in the
// snapshot denote the corresponding entities — and the snapshot is
// semantically a deep copy: mutating either side never changes what
// the other reads. The difference is cost: only the arena chunks are
// copied up front; the flat slabs are shared until (unless) a mutator
// on this Func first writes one.
//
// The first Snapshot of an unfrozen f freezes it (see Freeze); that
// first call must be single-goroutine. Snapshots of an already-frozen
// f may be taken concurrently, which is how the batch driver's workers
// build their per-job functions from one shared master.
func (f *Func) Snapshot() *Func {
	f.Freeze()
	c := f.cow
	c.refs.Add(1)
	statSnapshots.Add(1)
	statSnapshotSlabAllocs.Add(int64(f.snapshotSlabCount()))
	nf := &Func{
		Name:       f.Name,
		Target:     f.Target,
		vals:       f.vals,
		ops:        f.ops,
		code:       f.code,
		numInstrs:  f.numInstrs,
		numBlocks:  f.numBlocks,
		cow:        c,
		sharedOps:  true,
		sharedCode: true,
	}
	// sharedEdges guards the per-block pred/succ arrays, which the chunk
	// copy below shares with the parent.
	nf.sharedEdges = true

	nf.instrChunks = make([]*instrChunk, len(f.instrChunks))
	for i, ch := range f.instrChunks {
		nc := new(instrChunk)
		*nc = *ch
		nf.instrChunks[i] = nc
	}
	for id := int32(0); id < nf.numInstrs; id++ {
		nf.instrChunks[id>>instrChunkShift][id&instrChunkMask].fn = nf
	}

	nf.blockChunks = make([]*blockChunk, len(f.blockChunks))
	for i, ch := range f.blockChunks {
		nc := new(blockChunk)
		*nc = *ch
		nf.blockChunks[i] = nc
	}
	for id := int32(0); id < nf.numBlocks; id++ {
		nf.blockChunks[id>>blockChunkShift][id&blockChunkMask].fn = nf
	}

	nf.blockList = make([]*Block, len(f.blockList))
	for i, b := range f.blockList {
		nf.blockList[i] = nf.Block(b.ID)
	}
	return nf
}

// snapshotSlabCount is the allocation budget of one Snapshot, the
// lazy-copy counterpart of cloneSlabCount: the Func header, the two
// chunk-pointer slices, one allocation per chunk, and the block list.
// No flat-slab or edge allocations — those are deferred.
func (f *Func) snapshotSlabCount() int {
	n := 1 // Func header
	if len(f.instrChunks) > 0 {
		n += 1 + len(f.instrChunks)
	}
	if len(f.blockChunks) > 0 {
		n += 1 + len(f.blockChunks)
	}
	if len(f.blockList) > 0 {
		n++
	}
	return n
}

// cowFault is the slow path shared by the cow* hooks: f is about to
// write shared storage. If f is the family's last reader the storage
// is adopted in place (no copy can be observed by anyone); otherwise
// the named slab is copied privately. Either way the relevant share
// flag is cleared before the caller's write proceeds.
func (f *Func) cowFault(slab int) {
	c := f.cow
	if c.refs.Load() == 1 {
		// Sole reader: every other Func of the family has materialized
		// (or was released). Adopt everything without copying.
		f.sharedOps, f.sharedCode, f.sharedEdges = false, false, false
		f.cow = nil
		c.refs.Add(-1)
		statCOWAdoptions.Add(1)
		return
	}
	if !f.cowTouched {
		f.cowTouched = true
		statCOWMaterializations.Add(1)
	}
	statCOWSlabCopies.Add(1)
	switch slab {
	case cowSlabOps:
		f.ops = append([]Operand(nil), f.ops...)
		f.sharedOps = false
	case cowSlabCode:
		f.code = append([]InstrID(nil), f.code...)
		f.sharedCode = false
	case cowSlabEdges:
		// Re-home every block's pred/succ lists into one private slab,
		// capacity-capped per block exactly like Clone's edge carve.
		nEdges := 0
		for id := int32(0); id < f.numBlocks; id++ {
			b := &f.blockChunks[id>>blockChunkShift][id&blockChunkMask]
			nEdges += len(b.preds) + len(b.succs)
		}
		edgeSlab := make([]BlockID, 0, nEdges)
		for id := int32(0); id < f.numBlocks; id++ {
			b := &f.blockChunks[id>>blockChunkShift][id&blockChunkMask]
			k := len(edgeSlab)
			edgeSlab = append(edgeSlab, b.preds...)
			b.preds = edgeSlab[k:len(edgeSlab):len(edgeSlab)]
			k = len(edgeSlab)
			edgeSlab = append(edgeSlab, b.succs...)
			b.succs = edgeSlab[k:len(edgeSlab):len(edgeSlab)]
		}
		f.sharedEdges = false
	}
	if !f.sharedOps && !f.sharedCode && !f.sharedEdges {
		// f no longer reads any mutable shared storage (the value slab
		// is append-only and capacity-frozen, so it needs no ref): leave
		// the family and let the last holder adopt for free.
		f.cow = nil
		c.refs.Add(-1)
	}
}

const (
	cowSlabOps = iota
	cowSlabCode
	cowSlabEdges
)

// cowOps, cowCode and cowEdges are the hooks the mutators call before
// writing the operand slab, the code slab, or a pred/succ array in
// place. They compile to a two-flag check on the exclusive-ownership
// fast path.
func (f *Func) cowOps() {
	if f.cow != nil && f.sharedOps {
		f.cowFault(cowSlabOps)
	}
}

func (f *Func) cowCode() {
	if f.cow != nil && f.sharedCode {
		f.cowFault(cowSlabCode)
	}
}

func (f *Func) cowEdges() {
	if f.cow != nil && f.sharedEdges {
		f.cowFault(cowSlabEdges)
	}
}

// Release drops f's membership in its copy-on-write family, declaring
// that f will never be read or mutated again. It lets the remaining
// holder adopt the shared storage for free on its next mutation
// instead of copying. Calling it is optional (an abandoned snapshot is
// simply garbage); using f after Release is a contract violation.
func (f *Func) Release() {
	if f.cow == nil {
		return
	}
	f.cow.refs.Add(-1)
	f.cow = nil
	f.sharedOps, f.sharedCode, f.sharedEdges = false, false, false
}

// ArenaChecksum returns an FNV-1a hash over the function's entire
// arena content: value metadata, operand slab, code slab, block spans
// and edge lists, and per-instruction fields. Two Funcs that are deep
// copies of each other hash identically; any single-byte divergence —
// in particular a copy-on-write aliasing bug where a write through one
// Func becomes visible through another — changes the sum. Used by
// faultinject.InjectCOWAliasing and the parallel-identity tests.
func (f *Func) ArenaChecksum() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	w := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	ws := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		w(uint64(len(s)))
	}
	ws(f.Name)
	for i := range f.vals {
		ws(f.vals[i].name)
		w(uint64(f.vals[i].kind))
	}
	for _, o := range f.ops {
		w(uint64(uint32(o.Val)))
		w(uint64(uint32(o.pin)))
	}
	for id := int32(0); id < f.numInstrs; id++ {
		in := &f.instrChunks[id>>instrChunkShift][id&instrChunkMask]
		w(uint64(in.op))
		w(uint64(in.Imm))
		ws(in.Callee)
		w(uint64(uint32(in.blk)))
		w(uint64(uint32(in.defOff))<<32 | uint64(uint32(in.defLen)))
		w(uint64(uint32(in.useOff))<<32 | uint64(uint32(in.useLen)))
	}
	for _, b := range f.blockList {
		w(uint64(uint32(b.ID)))
		ws(b.Name)
		w(uint64(b.LoopDepth))
		for i := int32(0); i < b.codeLen; i++ {
			w(uint64(uint32(f.code[b.codeOff+i])))
		}
		for _, p := range b.preds {
			w(uint64(uint32(p)))
		}
		for _, s := range b.succs {
			w(uint64(uint32(s)))
		}
	}
	return h
}
