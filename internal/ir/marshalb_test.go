package ir_test

import (
	"bytes"
	"testing"

	"outofssa/internal/ir"
	"outofssa/internal/lai"
	"outofssa/internal/ssa"
	"outofssa/internal/workload"
)

func exampleFunc(t testing.TB) *ir.Func {
	t.Helper()
	f, err := lai.Parse(".func f\n.input A:R0\nentry:\n    add B, A, A\n    call C = g(B)\n    ret C\n.endfunc\n")
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestBinaryRejects pins the b1 decoder's framing validation: bad
// magic, bad version, truncation at every prefix length, hostile
// element counts and trailing garbage all fail with an error — never a
// panic, never a silently wrong function.
func TestBinaryRejects(t *testing.T) {
	doc, err := ir.MarshalBinary(exampleFunc(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ir.Unmarshal(doc); err != nil {
		t.Fatalf("pristine document rejected: %v", err)
	}

	// Every proper prefix is truncated somewhere: header, a section
	// count, or mid-payload.
	for n := range doc {
		if n == len(doc) {
			continue
		}
		trunc := doc[:n]
		if !ir.IsBinary(trunc) {
			continue // magic itself truncated: falls through to the JSON probe
		}
		if _, err := ir.Unmarshal(trunc); err == nil {
			t.Fatalf("truncated document (%d of %d bytes) decoded without error", n, len(doc))
		}
	}

	// Trailing garbage after a complete document.
	if _, err := ir.Unmarshal(append(append([]byte{}, doc...), 0xEE)); err == nil {
		t.Error("document with trailing bytes decoded without error")
	}

	// Version bump.
	bad := append([]byte{}, doc...)
	bad[len(ir.WireSchemaB1)+1] = 9 // version u32 low byte, right after magic
	if _, err := ir.Unmarshal(bad); err == nil {
		t.Error("unsupported version decoded without error")
	}

	// A hostile count: set the vnames count to 0xFFFFFFFF. The decoder
	// must reject it against the remaining length instead of allocating.
	bad = append([]byte{}, doc...)
	// magic + version(4) + nphys(4) + name(4+len) → vnames count offset.
	off := len(ir.WireSchemaB1) + 1 + 4 + 4 + 4 + len("f")
	for i := 0; i < 4; i++ {
		bad[off+i] = 0xFF
	}
	if _, err := ir.Unmarshal(bad); err == nil {
		t.Error("hostile element count decoded without error")
	}

	// Flip every single byte in turn: each flip must either fail to
	// decode or decode to a function that still passes Verify (the
	// decoder may legitimately accept e.g. a changed immediate, but it
	// must never hand back a structurally broken function or panic).
	for i := range doc {
		mut := append([]byte{}, doc...)
		mut[i] ^= 0x40
		g, err := ir.Unmarshal(mut)
		if err != nil {
			continue
		}
		if err := g.Verify(); err != nil {
			t.Fatalf("byte %d flipped: decoder accepted a function that fails Verify: %v", i, err)
		}
	}
}

// TestBinaryAppend proves AppendBinary really appends: the prefix is
// preserved and the suffix is exactly MarshalBinary's output, so
// callers can pack many documents into one buffer.
func TestBinaryAppend(t *testing.T) {
	f := exampleFunc(t)
	solo, err := ir.MarshalBinary(f)
	if err != nil {
		t.Fatal(err)
	}
	prefix := []byte("segment-header")
	buf, err := ir.AppendBinary(append([]byte{}, prefix...), f)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf, prefix) {
		t.Fatal("AppendBinary clobbered the prefix")
	}
	if !bytes.Equal(buf[len(prefix):], solo) {
		t.Fatal("AppendBinary suffix differs from MarshalBinary output")
	}
}

// TestDetectSchema pins the negotiation helper on all three schemas
// plus junk.
func TestDetectSchema(t *testing.T) {
	f := exampleFunc(t)
	v2, _ := ir.Marshal(f)
	v1, _ := ir.MarshalV1(f)
	b1, _ := ir.MarshalBinary(f)
	for _, tc := range []struct {
		data []byte
		want string
	}{
		{v2, ir.WireSchemaV2},
		{v1, ir.WireSchemaV1},
		{b1, ir.WireSchemaB1},
		{[]byte(`{"schema":"laoc-ir-v9"}`), ""},
		{[]byte("laoc-ir-b9\x00junk"), ""},
		{[]byte("not even close"), ""},
		{nil, ""},
	} {
		if got := ir.DetectSchema(tc.data); got != tc.want {
			t.Errorf("DetectSchema(%.20q) = %q, want %q", tc.data, got, tc.want)
		}
	}
}

// FuzzWireRoundTrip feeds arbitrary bytes to Unmarshal; whenever they
// decode, the function must re-encode in all three schemas, each
// re-decode to the same print, and the arena schemas (v2, b1) must be
// byte fixed points — the cross-decode discipline that keeps the
// schemas interchangeable on the wire and on disk.
func FuzzWireRoundTrip(f *testing.F) {
	for _, s := range workload.All() {
		fn := s.Funcs[0]
		if v2, err := ir.Marshal(fn); err == nil {
			f.Add(v2)
		}
		if v1, err := ir.MarshalV1(fn); err == nil {
			f.Add(v1)
		}
		if b1, err := ir.MarshalBinary(fn); err == nil {
			f.Add(b1)
		}
		g := fn.Clone()
		ssa.MustBuild(g)
		if b1, err := ir.MarshalBinary(g); err == nil {
			f.Add(b1)
		}
	}
	f.Add([]byte("laoc-ir-b1\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		fn, err := ir.Unmarshal(data)
		if err != nil {
			return
		}
		want := fn.String()
		v2, err := ir.Marshal(fn)
		if err != nil {
			t.Fatalf("decoded function does not re-encode (v2): %v", err)
		}
		b1, err := ir.MarshalBinary(fn)
		if err != nil {
			t.Fatalf("decoded function does not re-encode (b1): %v", err)
		}
		v1, err := ir.MarshalV1(fn)
		if err != nil {
			t.Fatalf("decoded function does not re-encode (v1): %v", err)
		}
		for _, enc := range [][]byte{v2, b1, v1} {
			g, err := ir.Unmarshal(enc)
			if err != nil {
				t.Fatalf("re-encoded document does not decode: %v", err)
			}
			if g.String() != want {
				t.Fatalf("cross-decode print drift:\n--- want\n%s\n--- got\n%s", want, g.String())
			}
		}
		// Arena-schema byte fixed points (memcmp exactness).
		g2, _ := ir.Unmarshal(v2)
		if enc2, _ := ir.Marshal(g2); !bytes.Equal(enc2, v2) {
			t.Fatal("v2 is not a byte fixed point")
		}
		gb, _ := ir.Unmarshal(b1)
		if encb, _ := ir.MarshalBinary(gb); !bytes.Equal(encb, b1) {
			t.Fatal("b1 is not a byte fixed point")
		}
		if gb.ArenaChecksum() != g2.ArenaChecksum() {
			t.Fatal("v2 and b1 decode to different arena bytes")
		}
	})
}

// BenchmarkWireCodec measures encode and decode for the v2 JSON and b1
// binary schemas over the full Table-2 corpus (every workload suite
// function) — the numbers behind BENCH_persist.json's codec section
// and the "b1 decode ≥ 3× v2" acceptance bar.
func BenchmarkWireCodec(b *testing.B) {
	var funcs []*ir.Func
	for _, s := range workload.All() {
		funcs = append(funcs, s.Funcs...)
	}
	var v2docs, b1docs [][]byte
	for _, f := range funcs {
		d2, err := ir.Marshal(f)
		if err != nil {
			b.Fatal(err)
		}
		d1, err := ir.MarshalBinary(f)
		if err != nil {
			b.Fatal(err)
		}
		v2docs = append(v2docs, d2)
		b1docs = append(b1docs, d1)
	}
	bytesOf := func(docs [][]byte) int64 {
		var n int64
		for _, d := range docs {
			n += int64(len(d))
		}
		return n
	}
	b.Run("encode/v2", func(b *testing.B) {
		b.SetBytes(bytesOf(v2docs))
		for i := 0; i < b.N; i++ {
			for _, f := range funcs {
				if _, err := ir.Marshal(f); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("encode/b1", func(b *testing.B) {
		b.SetBytes(bytesOf(b1docs))
		for i := 0; i < b.N; i++ {
			for _, f := range funcs {
				if _, err := ir.MarshalBinary(f); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("decode/v2", func(b *testing.B) {
		b.SetBytes(bytesOf(v2docs))
		for i := 0; i < b.N; i++ {
			for _, d := range v2docs {
				if _, err := ir.Unmarshal(d); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("decode/b1", func(b *testing.B) {
		b.SetBytes(bytesOf(b1docs))
		for i := 0; i < b.N; i++ {
			for _, d := range b1docs {
				if _, err := ir.Unmarshal(d); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
