package ir

// Typed handles are the public identity of every IR entity. A handle is
// an index into a slab owned by the enclosing *Func: ValueID indexes the
// value table, InstrID the instruction arena, BlockID the block arena.
// Handles are durable across Clone and RestoreFrom (the clone of a
// function has the same IDs denoting the corresponding entities), are
// directly usable as dense-table indices, and are comparable — which is
// what lets every map formerly keyed on *Value/*Instr pointers key on a
// 4-byte integer instead, and lets Clone copy the slabs with memcpy
// because nothing in them is position-dependent.
//
// *Instr and *Block remain available as ergonomic views: they are stable
// pointers into chunked arenas (chunks never move once allocated), valid
// for the lifetime of their owning Func. They are NOT valid across
// Clone/RestoreFrom boundaries — re-resolve through f.Instr(id) /
// f.Block(id) on the other side. See DESIGN.md §12 for the full
// aliasing contract.

// ValueID identifies a value (virtual register or dedicated physical
// register) within its function. IDs are dense: 0 <= id < f.NumValues(),
// with the physical-register prefix created by NewFunc occupying the
// lowest IDs. The zero value is R0; use NoValue for "absent".
type ValueID int32

// InstrID identifies an instruction slot in the function's instruction
// arena. Slots are never reused: an instruction removed from its block
// keeps its ID (detached, Block() == nil) until the function is dropped.
type InstrID int32

// BlockID identifies a basic block. Dense in creation order:
// 0 <= id < f.NumBlocks().
type BlockID int32

// Sentinel "absent" handles. The Operand encoding is chosen so that the
// zero Operand is an unpinned use of R0, never an accidental pin.
const (
	NoValue ValueID = -1
	NoInstr InstrID = -1
	NoBlock BlockID = -1
)

// Arena chunk geometry. Chunks are fixed-size so that element addresses
// are stable under growth (a new chunk is allocated; existing chunks
// never move), which is what keeps *Instr/*Block views valid while the
// function grows.
const (
	instrChunkShift = 8
	instrChunkSize  = 1 << instrChunkShift // 256 instructions
	instrChunkMask  = instrChunkSize - 1

	blockChunkShift = 6
	blockChunkSize  = 1 << blockChunkShift // 64 blocks
	blockChunkMask  = blockChunkSize - 1
)

type instrChunk [instrChunkSize]Instr
type blockChunk [blockChunkSize]Block
