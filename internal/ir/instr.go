package ir

import "strings"

// Op is an instruction opcode. The set is a small ST120-flavoured subset:
// enough arithmetic and memory traffic to write realistic DSP kernels,
// plus the constrained instructions the paper's evaluation depends on
// (2-operand autoadd/more, ABI-constrained call/input/output).
type Op uint16

const (
	Nop Op = iota

	// Phi merges values at a confluence point. Uses[i] flows in from
	// Block.Preds[i]. Phi instructions must form a prefix of their block.
	Phi
	// Psi is the predicated merge of psi-SSA (Stoutchinin & de Ferrière):
	// d = psi(p1?a1, ..., pn?an). Converted to psi-conventional form
	// (2-operand-like pinning) before translation out of SSA.
	Psi

	// Copy is a register move: Defs[0] = Uses[0]. Move counting — the
	// paper's entire evaluation metric — counts exactly these.
	Copy
	// ParCopy is a parallel copy: (d1,...,dn) = (s1,...,sn) with all
	// sources read before any destination is written. Sequentialized into
	// Copy chains by package parcopy.
	ParCopy

	// Const materializes Imm into Defs[0].
	Const
	// Make loads the high 16 bits of an immediate (ST120 make).
	Make
	// More completes a make with the low 16 bits; 2-operand: the
	// destination must use the same resource as Uses[0] (paper Fig. 1 S6).
	More

	Add
	Sub
	Mul
	Div
	Rem
	And
	Or
	Xor
	Shl
	Shr
	Neg
	Not
	CmpEQ
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
	Min
	Max
	// Mac is a multiply-accumulate: d = u0 + u1*u2, 2-operand on the
	// accumulator (d and u0 share a resource).
	Mac
	// Select is d = u0 != 0 ? u1 : u2 (fully predicated ST120 style).
	Select

	// AutoAdd is the auto-modifying address computation of Fig. 1 S1:
	// d = u0 + Imm where d and u0 must share a resource (2-operand).
	AutoAdd

	// Load reads Defs[0] = mem[Uses[0]].
	Load
	// Store writes mem[Uses[0]] = Uses[1].
	Store

	// Call invokes Callee; Uses are arguments (ABI-pinned to parameter
	// registers), Defs are results (ABI-pinned to return registers).
	Call

	// Input is the function prologue pseudo-instruction (.input): Defs are
	// the formal parameters, ABI-pinned to parameter registers.
	Input
	// Output is the function epilogue pseudo-instruction (.output): Uses
	// are the return values, ABI-pinned to return registers.
	Output

	// Br is a conditional branch on Uses[0] != 0: control goes to
	// Block.Succs[0] when taken, Block.Succs[1] otherwise.
	Br
	// Jump is an unconditional branch to Block.Succs[0].
	Jump

	opCount
)

var opNames = [...]string{
	Nop:     "nop",
	Phi:     "phi",
	Psi:     "psi",
	Copy:    "mov",
	ParCopy: "pcopy",
	Const:   "const",
	Make:    "make",
	More:    "more",
	Add:     "add",
	Sub:     "sub",
	Mul:     "mul",
	Div:     "div",
	Rem:     "rem",
	And:     "and",
	Or:      "or",
	Xor:     "xor",
	Shl:     "shl",
	Shr:     "shr",
	Neg:     "neg",
	Not:     "not",
	CmpEQ:   "cmpeq",
	CmpNE:   "cmpne",
	CmpLT:   "cmplt",
	CmpLE:   "cmple",
	CmpGT:   "cmpgt",
	CmpGE:   "cmpge",
	Min:     "min",
	Max:     "max",
	Mac:     "mac",
	Select:  "select",
	AutoAdd: "autoadd",
	Load:    "load",
	Store:   "store",
	Call:    "call",
	Input:   ".input",
	Output:  ".output",
	Br:      "br",
	Jump:    "jump",
}

func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return "op?"
}

// IsTwoOperand reports whether op constrains Defs[0] and Uses[0] to the
// same resource (ISA renaming constraint, paper §2.1).
func (op Op) IsTwoOperand() bool {
	switch op {
	case More, AutoAdd, Mac:
		return true
	}
	return false
}

// IsTerminator reports whether op ends a basic block.
func (op Op) IsTerminator() bool {
	switch op {
	case Br, Jump, Output:
		return true
	}
	return false
}

// Instr is a single IR instruction. Defs and Uses are ordered operand
// lists; for Phi, Uses is parallel to the containing block's Preds.
type Instr struct {
	Op     Op
	Defs   []Operand
	Uses   []Operand
	Imm    int64
	Callee string

	blk *Block
}

// Block returns the basic block containing the instruction, or nil if the
// instruction is detached.
func (in *Instr) Block() *Block { return in.blk }

// Def returns the i-th defined value.
func (in *Instr) Def(i int) *Value { return in.Defs[i].Val }

// Use returns the i-th used value.
func (in *Instr) Use(i int) *Value { return in.Uses[i].Val }

// HasDef reports whether v appears among the instruction's definitions.
func (in *Instr) HasDef(v *Value) bool {
	for _, d := range in.Defs {
		if d.Val == v {
			return true
		}
	}
	return false
}

// HasUse reports whether v appears among the instruction's uses.
func (in *Instr) HasUse(v *Value) bool {
	for _, u := range in.Uses {
		if u.Val == v {
			return true
		}
	}
	return false
}

// IsMove reports whether the instruction is a (sequential) register move.
func (in *Instr) IsMove() bool { return in.Op == Copy }

func (in *Instr) String() string {
	var b strings.Builder
	b.WriteString(in.Op.String())
	sep := " "
	for _, d := range in.Defs {
		b.WriteString(sep)
		b.WriteString(d.String())
		sep = ", "
	}
	if len(in.Defs) > 0 && len(in.Uses) > 0 {
		b.WriteString(" =")
		sep = " "
	}
	for _, u := range in.Uses {
		b.WriteString(sep)
		b.WriteString(u.String())
		sep = ", "
	}
	switch in.Op {
	case Const, Make, More, AutoAdd:
		b.WriteString(sep)
		b.WriteString(itoa64(in.Imm))
	case Call:
		b.WriteString(sep)
		b.WriteString("@" + in.Callee)
	}
	return b.String()
}

func itoa64(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	var buf [24]byte
	i := len(buf)
	u := uint64(v)
	if neg {
		u = uint64(-v)
	}
	for u > 0 {
		i--
		buf[i] = byte('0' + u%10)
		u /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
