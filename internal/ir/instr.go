package ir

import "strings"

// Op is an instruction opcode. The set is a small ST120-flavoured subset:
// enough arithmetic and memory traffic to write realistic DSP kernels,
// plus the constrained instructions the paper's evaluation depends on
// (2-operand autoadd/more, ABI-constrained call/input/output).
type Op uint16

const (
	Nop Op = iota

	// Phi merges values at a confluence point. Uses[i] flows in from
	// Block.Preds[i]. Phi instructions must form a prefix of their block.
	Phi
	// Psi is the predicated merge of psi-SSA (Stoutchinin & de Ferrière):
	// d = psi(p1?a1, ..., pn?an). Converted to psi-conventional form
	// (2-operand-like pinning) before translation out of SSA.
	Psi

	// Copy is a register move: Defs[0] = Uses[0]. Move counting — the
	// paper's entire evaluation metric — counts exactly these.
	Copy
	// ParCopy is a parallel copy: (d1,...,dn) = (s1,...,sn) with all
	// sources read before any destination is written. Sequentialized into
	// Copy chains by package parcopy.
	ParCopy

	// Const materializes Imm into Defs[0].
	Const
	// Make loads the high 16 bits of an immediate (ST120 make).
	Make
	// More completes a make with the low 16 bits; 2-operand: the
	// destination must use the same resource as Uses[0] (paper Fig. 1 S6).
	More

	Add
	Sub
	Mul
	Div
	Rem
	And
	Or
	Xor
	Shl
	Shr
	Neg
	Not
	CmpEQ
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
	Min
	Max
	// Mac is a multiply-accumulate: d = u0 + u1*u2, 2-operand on the
	// accumulator (d and u0 share a resource).
	Mac
	// Select is d = u0 != 0 ? u1 : u2 (fully predicated ST120 style).
	Select

	// AutoAdd is the auto-modifying address computation of Fig. 1 S1:
	// d = u0 + Imm where d and u0 must share a resource (2-operand).
	AutoAdd

	// Load reads Defs[0] = mem[Uses[0]].
	Load
	// Store writes mem[Uses[0]] = Uses[1].
	Store

	// Call invokes Callee; Uses are arguments (ABI-pinned to parameter
	// registers), Defs are results (ABI-pinned to return registers).
	Call

	// Input is the function prologue pseudo-instruction (.input): Defs are
	// the formal parameters, ABI-pinned to parameter registers.
	Input
	// Output is the function epilogue pseudo-instruction (.output): Uses
	// are the return values, ABI-pinned to return registers.
	Output

	// Br is a conditional branch on Uses[0] != 0: control goes to
	// Block.Succs[0] when taken, Block.Succs[1] otherwise.
	Br
	// Jump is an unconditional branch to Block.Succs[0].
	Jump

	opCount
)

var opNames = [...]string{
	Nop:     "nop",
	Phi:     "phi",
	Psi:     "psi",
	Copy:    "mov",
	ParCopy: "pcopy",
	Const:   "const",
	Make:    "make",
	More:    "more",
	Add:     "add",
	Sub:     "sub",
	Mul:     "mul",
	Div:     "div",
	Rem:     "rem",
	And:     "and",
	Or:      "or",
	Xor:     "xor",
	Shl:     "shl",
	Shr:     "shr",
	Neg:     "neg",
	Not:     "not",
	CmpEQ:   "cmpeq",
	CmpNE:   "cmpne",
	CmpLT:   "cmplt",
	CmpLE:   "cmple",
	CmpGT:   "cmpgt",
	CmpGE:   "cmpge",
	Min:     "min",
	Max:     "max",
	Mac:     "mac",
	Select:  "select",
	AutoAdd: "autoadd",
	Load:    "load",
	Store:   "store",
	Call:    "call",
	Input:   ".input",
	Output:  ".output",
	Br:      "br",
	Jump:    "jump",
}

func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return "op?"
}

// IsTwoOperand reports whether op constrains Defs[0] and Uses[0] to the
// same resource (ISA renaming constraint, paper §2.1).
func (op Op) IsTwoOperand() bool {
	switch op {
	case More, AutoAdd, Mac:
		return true
	}
	return false
}

// IsTerminator reports whether op ends a basic block.
func (op Op) IsTerminator() bool {
	switch op {
	case Br, Jump, Output:
		return true
	}
	return false
}

// Instr is a single IR instruction, living in its function's chunked
// instruction arena (*Instr addresses are stable for the lifetime of the
// Func, but not across Clone/RestoreFrom — re-resolve via f.Instr(id)).
// Defs and Uses are ordered operand lists stored as spans of the
// function's operand slab; for Phi, Uses is parallel to the containing
// block's Preds.
//
// Imm and Callee are plain fields: no cached analysis reads them, so
// their assignment does not need a generation bump. The opcode and the
// operand values do feed analyses and are therefore mutable only through
// SetOp and the operand mutators, which bump the generation themselves.
type Instr struct {
	op     Op
	Imm    int64
	Callee string

	id  InstrID
	fn  *Func
	blk BlockID

	defOff, defLen int32
	useOff, useLen int32
}

// ID returns the instruction's handle within its function.
func (in *Instr) ID() InstrID { return in.id }

// Func returns the function owning the instruction.
func (in *Instr) Func() *Func { return in.fn }

// Op returns the instruction opcode.
func (in *Instr) Op() Op { return in.op }

// SetOp rewrites the opcode in place (strength reduction, φ→ψ
// conversion, const folding). Bumps the generation: liveness semantics
// depend on φ-ness and on the def/use pattern implied by the opcode.
func (in *Instr) SetOp(op Op) {
	in.op = op
	in.fn.generation++
}

// Block returns the basic block containing the instruction, or nil if
// the instruction is detached.
func (in *Instr) Block() *Block {
	if in.blk == NoBlock {
		return nil
	}
	return in.fn.Block(in.blk)
}

// Defs returns the definition operands. The returned slice is a live
// view into the function's operand slab: treat it as read-only (all
// mutation goes through the Set* mutators) and do not hold it across
// operand-list growth (AddDef/AddUse/SetOperands).
func (in *Instr) Defs() []Operand {
	return in.fn.ops[in.defOff : in.defOff+in.defLen : in.defOff+in.defLen]
}

// Uses returns the use operands, under the same view contract as Defs.
func (in *Instr) Uses() []Operand {
	return in.fn.ops[in.useOff : in.useOff+in.useLen : in.useOff+in.useLen]
}

// NumDefs returns the number of definition operands.
func (in *Instr) NumDefs() int { return int(in.defLen) }

// NumUses returns the number of use operands.
func (in *Instr) NumUses() int { return int(in.useLen) }

// Def returns the i-th defined value.
func (in *Instr) Def(i int) ValueID { return in.fn.ops[in.defOff+int32(i)].Val }

// Use returns the i-th used value.
func (in *Instr) Use(i int) ValueID { return in.fn.ops[in.useOff+int32(i)].Val }

// DefOp returns the i-th definition operand.
func (in *Instr) DefOp(i int) Operand { return in.fn.ops[in.defOff+int32(i)] }

// UseOp returns the i-th use operand.
func (in *Instr) UseOp(i int) Operand { return in.fn.ops[in.useOff+int32(i)] }

// SetDef replaces the i-th definition operand (value and pin). Bumps the
// generation.
func (in *Instr) SetDef(i int, o Operand) {
	in.fn.cowOps()
	in.fn.ops[in.defOff+int32(i)] = o
	in.fn.generation++
}

// SetUse replaces the i-th use operand (value and pin). Bumps the
// generation.
func (in *Instr) SetUse(i int, o Operand) {
	in.fn.cowOps()
	in.fn.ops[in.useOff+int32(i)] = o
	in.fn.generation++
}

// SetDefVal rewrites the value of the i-th definition, keeping its pin.
// Bumps the generation.
func (in *Instr) SetDefVal(i int, v ValueID) {
	in.fn.cowOps()
	in.fn.ops[in.defOff+int32(i)].Val = v
	in.fn.generation++
}

// SetUseVal rewrites the value of the i-th use, keeping its pin. Bumps
// the generation.
func (in *Instr) SetUseVal(i int, v ValueID) {
	in.fn.cowOps()
	in.fn.ops[in.useOff+int32(i)].Val = v
	in.fn.generation++
}

// SetDefPin pins the i-th definition to resource r (NoValue unpins).
// Pins are not read by any cached analysis, so this deliberately does
// not bump the generation — the invariant the pin-collect phases rely on
// to keep a pre-collect liveness valid.
func (in *Instr) SetDefPin(i int, r ValueID) {
	in.fn.cowOps()
	o := &in.fn.ops[in.defOff+int32(i)]
	*o = o.WithPin(r)
}

// SetUsePin pins the i-th use to resource r (NoValue unpins), without a
// generation bump (see SetDefPin).
func (in *Instr) SetUsePin(i int, r ValueID) {
	in.fn.cowOps()
	o := &in.fn.ops[in.useOff+int32(i)]
	*o = o.WithPin(r)
}

// SetOperands replaces both operand lists wholesale, re-carving them at
// the tail of the operand slab. Bumps the generation.
func (in *Instr) SetOperands(defs, uses []Operand) {
	f := in.fn
	in.defOff, in.defLen = f.carveOps(defs)
	in.useOff, in.useLen = f.carveOps(uses)
	f.generation++
}

// AddDef appends a definition operand, re-carving the def span if it
// cannot grow in place. Bumps the generation.
func (in *Instr) AddDef(o Operand) {
	in.defOff, in.defLen = in.fn.growSpan(in.defOff, in.defLen, o)
	in.fn.generation++
}

// AddUse appends a use operand (see AddDef). Bumps the generation.
func (in *Instr) AddUse(o Operand) {
	in.useOff, in.useLen = in.fn.growSpan(in.useOff, in.useLen, o)
	in.fn.generation++
}

// RemoveUseAt splices out the i-th use operand in place (the φ-argument
// splice when a predecessor edge is deleted). Bumps the generation.
func (in *Instr) RemoveUseAt(i int) {
	in.fn.cowOps()
	ops := in.fn.ops[in.useOff : in.useOff+in.useLen]
	copy(ops[i:], ops[i+1:])
	in.useLen--
	in.fn.generation++
}

// growSpan extends the operand span [off, off+n) by one element. If the
// span already sits at the slab tail it grows in place; otherwise the
// whole span is copied to the tail (the old span becomes garbage that
// the next Clone drops).
func (f *Func) growSpan(off, n int32, o Operand) (int32, int32) {
	f.cowOps()
	if int(off+n) == len(f.ops) {
		f.ops = append(f.ops, o)
		return off, n + 1
	}
	noff := int32(len(f.ops))
	f.ops = append(f.ops, f.ops[off:off+n]...)
	f.ops = append(f.ops, o)
	return noff, n + 1
}

// HasDef reports whether v appears among the instruction's definitions.
func (in *Instr) HasDef(v ValueID) bool {
	for _, d := range in.Defs() {
		if d.Val == v {
			return true
		}
	}
	return false
}

// HasUse reports whether v appears among the instruction's uses.
func (in *Instr) HasUse(v ValueID) bool {
	for _, u := range in.Uses() {
		if u.Val == v {
			return true
		}
	}
	return false
}

// IsMove reports whether the instruction is a (sequential) register move.
func (in *Instr) IsMove() bool { return in.op == Copy }

func (in *Instr) String() string {
	var b strings.Builder
	f := in.fn
	b.WriteString(in.op.String())
	sep := " "
	for _, d := range in.Defs() {
		b.WriteString(sep)
		b.WriteString(f.OperandString(d))
		sep = ", "
	}
	if in.defLen > 0 && in.useLen > 0 {
		b.WriteString(" =")
		sep = " "
	}
	for _, u := range in.Uses() {
		b.WriteString(sep)
		b.WriteString(f.OperandString(u))
		sep = ", "
	}
	switch in.op {
	case Const, Make, More, AutoAdd:
		b.WriteString(sep)
		b.WriteString(itoa64(in.Imm))
	case Call:
		b.WriteString(sep)
		b.WriteString("@" + in.Callee)
	}
	return b.String()
}

func itoa64(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	var buf [24]byte
	i := len(buf)
	u := uint64(v)
	if neg {
		u = uint64(-v)
	}
	for u > 0 {
		i--
		buf[i] = byte('0' + u%10)
		u /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
