package ir

// Target describes the dedicated-register structure of the machine, in the
// style of the ST120 DSP targeted by the paper's LAO tool: general-purpose
// registers R0..R15 of which R0..R3 pass parameters and R0 returns
// results, pointer registers P0..P7 of which P0..P1 pass pointer
// parameters, and the stack pointer SP.
//
// Target values are created per-Func by NewFunc so that physical register
// *Value identity is function-local (value IDs are function-local).
type Target struct {
	R  []*Value // general-purpose registers R0..
	P  []*Value // pointer registers P0..
	SP *Value   // stack pointer

	// ArgRegs are the registers used for integer parameter passing, in
	// order (R0, R1, ...). RetRegs are the result registers (R0, ...).
	// PtrArgRegs pass pointer parameters (P0, ...).
	ArgRegs    []*Value
	RetRegs    []*Value
	PtrArgRegs []*Value
}

const (
	numR       = 16
	numP       = 8
	numArgRegs = 4
	numRetRegs = 2
	numPtrArgs = 2
)

func newTarget(f *Func) *Target {
	t := &Target{}
	for i := 0; i < numR; i++ {
		t.R = append(t.R, f.newValue(regName("R", i), Physical))
	}
	for i := 0; i < numP; i++ {
		t.P = append(t.P, f.newValue(regName("P", i), Physical))
	}
	t.SP = f.newValue("SP", Physical)
	t.ArgRegs = t.R[:numArgRegs]
	t.RetRegs = t.R[:numRetRegs]
	t.PtrArgRegs = t.P[:numPtrArgs]
	return t
}

// Physicals returns every dedicated register of the target in ID order.
func (t *Target) Physicals() []*Value {
	out := make([]*Value, 0, len(t.R)+len(t.P)+1)
	out = append(out, t.R...)
	out = append(out, t.P...)
	out = append(out, t.SP)
	return out
}

func regName(prefix string, i int) string {
	return prefix + itoa64(int64(i))
}
