package ir

// Target describes the dedicated-register structure of the machine, in the
// style of the ST120 DSP targeted by the paper's LAO tool: general-purpose
// registers R0..R15 of which R0..R3 pass parameters and R0 returns
// results, pointer registers P0..P7 of which P0..P1 pass pointer
// parameters, and the stack pointer SP.
//
// Target tables are created per-Func by NewFunc so that physical register
// handles are function-local (value IDs are function-local) and occupy
// the dense ID prefix [0, NumPhysRegs). A Target is immutable after
// NewFunc and holds only handles, so Clone shares it between the
// original and the copy.
type Target struct {
	R  []ValueID // general-purpose registers R0..
	P  []ValueID // pointer registers P0..
	SP ValueID   // stack pointer

	// ArgRegs are the registers used for integer parameter passing, in
	// order (R0, R1, ...). RetRegs are the result registers (R0, ...).
	// PtrArgRegs pass pointer parameters (P0, ...).
	ArgRegs    []ValueID
	RetRegs    []ValueID
	PtrArgRegs []ValueID
}

const (
	numR       = 16
	numP       = 8
	numArgRegs = 4
	numRetRegs = 2
	numPtrArgs = 2
)

// NumPhysRegs is the size of the physical-register ID prefix every
// function's value table starts with (R0..R15, P0..P7, SP).
const NumPhysRegs = numR + numP + 1

func newTarget(f *Func) *Target {
	t := &Target{}
	for i := 0; i < numR; i++ {
		t.R = append(t.R, f.newValue(regName("R", i), Physical))
	}
	for i := 0; i < numP; i++ {
		t.P = append(t.P, f.newValue(regName("P", i), Physical))
	}
	t.SP = f.newValue("SP", Physical)
	t.ArgRegs = t.R[:numArgRegs]
	t.RetRegs = t.R[:numRetRegs]
	t.PtrArgRegs = t.P[:numPtrArgs]
	return t
}

// Physicals returns every dedicated register of the target in ID order.
func (t *Target) Physicals() []ValueID {
	out := make([]ValueID, 0, len(t.R)+len(t.P)+1)
	out = append(out, t.R...)
	out = append(out, t.P...)
	out = append(out, t.SP)
	return out
}

func regName(prefix string, i int) string {
	return prefix + itoa64(int64(i))
}
