package ir

import "fmt"

// Verify checks structural invariants of the function:
//   - Preds/Succs are mutually consistent;
//   - every block is terminated (Br with 2 successors, Jump with 1,
//     Output with 0) and terminators appear only in final position;
//   - φ instructions form a prefix of their block and have exactly one
//     argument per predecessor;
//   - operand counts fit the opcode;
//   - values referenced by instructions belong to the function;
//   - arena spans are well-formed (every handle resolves).
func (f *Func) Verify() error {
	if len(f.blockList) == 0 {
		return fmt.Errorf("%s: function has no blocks", f.Name)
	}
	nv := ValueID(len(f.vals))
	for _, b := range f.blockList {
		if b.fn != f {
			return fmt.Errorf("%s: block %v does not belong to function", f.Name, b)
		}
		if b.codeOff < 0 || b.codeLen < 0 || int(b.codeOff+b.codeLen) > len(f.code) {
			return fmt.Errorf("%s: block %v has bad code span [%d,+%d) of %d", f.Name, b, b.codeOff, b.codeLen, len(f.code))
		}
		for _, p := range b.Preds() {
			if p < 0 || int32(p) >= f.numBlocks {
				return fmt.Errorf("%s: %v has out-of-range pred handle %d", f.Name, b, p)
			}
			if f.Block(p).SuccIndex(b.ID) < 0 {
				return fmt.Errorf("%s: %v lists pred %v but is not its succ", f.Name, b, f.Block(p))
			}
		}
		for _, s := range b.Succs() {
			if s < 0 || int32(s) >= f.numBlocks {
				return fmt.Errorf("%s: %v has out-of-range succ handle %d", f.Name, b, s)
			}
			if f.Block(s).PredIndex(b.ID) < 0 {
				return fmt.Errorf("%s: %v lists succ %v but is not its pred", f.Name, b, f.Block(s))
			}
		}
		term := b.Terminator()
		if term == nil {
			return fmt.Errorf("%s: block %v is not terminated", f.Name, b)
		}
		switch term.Op() {
		case Br:
			if b.NumSuccs() != 2 {
				return fmt.Errorf("%s: %v ends in br but has %d successors", f.Name, b, b.NumSuccs())
			}
		case Jump:
			if b.NumSuccs() != 1 {
				return fmt.Errorf("%s: %v ends in jump but has %d successors", f.Name, b, b.NumSuccs())
			}
		case Output:
			if b.NumSuccs() != 0 {
				return fmt.Errorf("%s: %v ends in .output but has successors", f.Name, b)
			}
		}
		seenNonPhi := false
		for i, in := range b.Instrs() {
			if in.blk != b.ID {
				return fmt.Errorf("%s: instruction %q not attached to block %v", f.Name, in, b)
			}
			if in.Op().IsTerminator() && i != b.NumInstrs()-1 {
				return fmt.Errorf("%s: terminator %q not last in block %v", f.Name, in, b)
			}
			if in.Op() == Phi {
				if seenNonPhi {
					return fmt.Errorf("%s: φ %q after non-φ in block %v", f.Name, in, b)
				}
				if in.NumUses() != b.NumPreds() {
					return fmt.Errorf("%s: φ %q has %d args for %d preds of %v",
						f.Name, in, in.NumUses(), b.NumPreds(), b)
				}
			} else {
				seenNonPhi = true
			}
			if err := checkArity(in); err != nil {
				return fmt.Errorf("%s: block %v: %v", f.Name, b, err)
			}
			check := func(ops []Operand) error {
				for _, o := range ops {
					if o.Val < 0 || o.Val >= nv {
						return fmt.Errorf("%s: foreign value %d in %q", f.Name, o.Val, in)
					}
					if o.Pinned() && (o.Pin() < 0 || o.Pin() >= nv) {
						return fmt.Errorf("%s: foreign pin %d in %q", f.Name, o.Pin(), in)
					}
				}
				return nil
			}
			if err := check(in.Defs()); err != nil {
				return err
			}
			if err := check(in.Uses()); err != nil {
				return err
			}
		}
	}
	return nil
}

func checkArity(in *Instr) error {
	bad := func() error {
		return fmt.Errorf("bad arity for %q: %d defs, %d uses", in, in.NumDefs(), in.NumUses())
	}
	nd, nu := in.NumDefs(), in.NumUses()
	switch in.Op() {
	case Nop:
	case Phi:
		if nd != 1 {
			return bad()
		}
	case Psi:
		if nd != 1 || nu == 0 || nu%2 != 0 {
			return bad()
		}
	case Copy:
		if nd != 1 || nu != 1 {
			return bad()
		}
	case ParCopy:
		if nd != nu {
			return bad()
		}
	case Const, Make:
		if nd != 1 || nu != 0 {
			return bad()
		}
	case More, AutoAdd, Neg, Not, Load:
		if nd != 1 || nu != 1 {
			return bad()
		}
	case Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr,
		CmpEQ, CmpNE, CmpLT, CmpLE, CmpGT, CmpGE, Min, Max:
		if nd != 1 || nu != 2 {
			return bad()
		}
	case Mac, Select:
		if nd != 1 || nu != 3 {
			return bad()
		}
	case Store:
		if nd != 0 || nu != 2 {
			return bad()
		}
	case Call:
		// any arity
	case Input:
		if nu != 0 {
			return bad()
		}
	case Output:
		if nd != 0 {
			return bad()
		}
	case Br:
		if nu != 1 {
			return bad()
		}
	case Jump:
		if nd != 0 || nu != 0 {
			return bad()
		}
	default:
		return fmt.Errorf("unknown opcode %d", in.Op())
	}
	return nil
}
