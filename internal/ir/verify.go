package ir

import "fmt"

// Verify checks structural invariants of the function:
//   - Preds/Succs are mutually consistent;
//   - every block is terminated (Br with 2 successors, Jump with 1,
//     Output with 0) and terminators appear only in final position;
//   - φ instructions form a prefix of their block and have exactly one
//     argument per predecessor;
//   - operand counts fit the opcode;
//   - values referenced by instructions belong to the function.
func (f *Func) Verify() error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("%s: function has no blocks", f.Name)
	}
	owned := make(map[*Value]bool, len(f.values))
	for _, v := range f.values {
		owned[v] = true
	}
	for _, b := range f.Blocks {
		if b.fn != f {
			return fmt.Errorf("%s: block %v does not belong to function", f.Name, b)
		}
		for _, p := range b.Preds {
			if p.SuccIndex(b) < 0 {
				return fmt.Errorf("%s: %v lists pred %v but is not its succ", f.Name, b, p)
			}
		}
		for _, s := range b.Succs {
			if s.PredIndex(b) < 0 {
				return fmt.Errorf("%s: %v lists succ %v but is not its pred", f.Name, b, s)
			}
		}
		term := b.Terminator()
		if term == nil {
			return fmt.Errorf("%s: block %v is not terminated", f.Name, b)
		}
		switch term.Op {
		case Br:
			if len(b.Succs) != 2 {
				return fmt.Errorf("%s: %v ends in br but has %d successors", f.Name, b, len(b.Succs))
			}
		case Jump:
			if len(b.Succs) != 1 {
				return fmt.Errorf("%s: %v ends in jump but has %d successors", f.Name, b, len(b.Succs))
			}
		case Output:
			if len(b.Succs) != 0 {
				return fmt.Errorf("%s: %v ends in .output but has successors", f.Name, b)
			}
		}
		seenNonPhi := false
		for i, in := range b.Instrs {
			if in.blk != b {
				return fmt.Errorf("%s: instruction %q not attached to block %v", f.Name, in, b)
			}
			if in.Op.IsTerminator() && i != len(b.Instrs)-1 {
				return fmt.Errorf("%s: terminator %q not last in block %v", f.Name, in, b)
			}
			if in.Op == Phi {
				if seenNonPhi {
					return fmt.Errorf("%s: φ %q after non-φ in block %v", f.Name, in, b)
				}
				if len(in.Uses) != len(b.Preds) {
					return fmt.Errorf("%s: φ %q has %d args for %d preds of %v",
						f.Name, in, len(in.Uses), len(b.Preds), b)
				}
			} else {
				seenNonPhi = true
			}
			if err := checkArity(in); err != nil {
				return fmt.Errorf("%s: block %v: %v", f.Name, b, err)
			}
			for _, o := range append(append([]Operand{}, in.Defs...), in.Uses...) {
				if o.Val == nil {
					return fmt.Errorf("%s: nil operand in %q", f.Name, in)
				}
				if !owned[o.Val] {
					return fmt.Errorf("%s: foreign value %v in %q", f.Name, o.Val, in)
				}
				if o.Pin != nil && !owned[o.Pin] {
					return fmt.Errorf("%s: foreign pin %v in %q", f.Name, o.Pin, in)
				}
			}
		}
	}
	return nil
}

func checkArity(in *Instr) error {
	bad := func() error {
		return fmt.Errorf("bad arity for %q: %d defs, %d uses", in, len(in.Defs), len(in.Uses))
	}
	switch in.Op {
	case Nop:
	case Phi:
		if len(in.Defs) != 1 {
			return bad()
		}
	case Psi:
		if len(in.Defs) != 1 || len(in.Uses) == 0 || len(in.Uses)%2 != 0 {
			return bad()
		}
	case Copy:
		if len(in.Defs) != 1 || len(in.Uses) != 1 {
			return bad()
		}
	case ParCopy:
		if len(in.Defs) != len(in.Uses) {
			return bad()
		}
	case Const, Make:
		if len(in.Defs) != 1 || len(in.Uses) != 0 {
			return bad()
		}
	case More, AutoAdd, Neg, Not, Load:
		if len(in.Defs) != 1 || len(in.Uses) != 1 {
			return bad()
		}
	case Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr,
		CmpEQ, CmpNE, CmpLT, CmpLE, CmpGT, CmpGE, Min, Max:
		if len(in.Defs) != 1 || len(in.Uses) != 2 {
			return bad()
		}
	case Mac, Select:
		if len(in.Defs) != 1 || len(in.Uses) != 3 {
			return bad()
		}
	case Store:
		if len(in.Defs) != 0 || len(in.Uses) != 2 {
			return bad()
		}
	case Call:
		// any arity
	case Input:
		if len(in.Uses) != 0 {
			return bad()
		}
	case Output:
		if len(in.Defs) != 0 {
			return bad()
		}
	case Br:
		if len(in.Uses) != 1 {
			return bad()
		}
	case Jump:
		if len(in.Defs) != 0 || len(in.Uses) != 0 {
			return bad()
		}
	default:
		return fmt.Errorf("unknown opcode %d", in.Op)
	}
	return nil
}
