package ir_test

import (
	"bytes"
	"testing"

	"outofssa/internal/ir"
	"outofssa/internal/lai"
	"outofssa/internal/pipeline"
	"outofssa/internal/ssa"
	"outofssa/internal/testprog"
	"outofssa/internal/workload"
)

// roundTrip marshals, unmarshals and re-marshals f through both wire
// schemas, failing on any decode error or byte drift. The v1 document
// must decode to the same function as the v2 one — the schemas are
// interchangeable on the wire.
func roundTrip(t *testing.T, f *ir.Func) *ir.Func {
	t.Helper()
	data, err := ir.Marshal(f)
	if err != nil {
		t.Fatalf("%s: Marshal: %v", f.Name, err)
	}
	g, err := ir.Unmarshal(data)
	if err != nil {
		t.Fatalf("%s: Unmarshal: %v", f.Name, err)
	}
	if got, want := g.String(), f.String(); got != want {
		t.Fatalf("%s: decoded function prints differently:\n--- original\n%s\n--- decoded\n%s", f.Name, want, got)
	}
	data2, err := ir.Marshal(g)
	if err != nil {
		t.Fatalf("%s: re-Marshal: %v", f.Name, err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatalf("%s: v2 encoding is not a fixed point of the round trip", f.Name)
	}

	v1, err := ir.MarshalV1(f)
	if err != nil {
		t.Fatalf("%s: MarshalV1: %v", f.Name, err)
	}
	g1, err := ir.Unmarshal(v1)
	if err != nil {
		t.Fatalf("%s: Unmarshal(v1): %v", f.Name, err)
	}
	if got, want := g1.String(), f.String(); got != want {
		t.Fatalf("%s: v1-decoded function prints differently:\n--- original\n%s\n--- decoded\n%s", f.Name, want, got)
	}
	v12, err := ir.MarshalV1(g1)
	if err != nil {
		t.Fatalf("%s: re-MarshalV1: %v", f.Name, err)
	}
	if !bytes.Equal(v1, v12) {
		t.Fatalf("%s: v1 encoding is not a fixed point of the round trip", f.Name)
	}

	b1, err := ir.MarshalBinary(f)
	if err != nil {
		t.Fatalf("%s: MarshalBinary: %v", f.Name, err)
	}
	if !ir.IsBinary(b1) || ir.DetectSchema(b1) != ir.WireSchemaB1 {
		t.Fatalf("%s: b1 document not detected as binary", f.Name)
	}
	gb, err := ir.Unmarshal(b1)
	if err != nil {
		t.Fatalf("%s: Unmarshal(b1): %v", f.Name, err)
	}
	if got, want := gb.String(), f.String(); got != want {
		t.Fatalf("%s: b1-decoded function prints differently:\n--- original\n%s\n--- decoded\n%s", f.Name, want, got)
	}
	// Arena exactness, not just print equality: the decoded function's
	// slab bytes must witness-match the original's (memcmp-equivalent,
	// like Clone), and re-encoding must be a byte fixed point.
	if gb.ArenaChecksum() != f.ArenaChecksum() {
		t.Fatalf("%s: b1 round trip changed the arena checksum", f.Name)
	}
	b12, err := ir.MarshalBinary(gb)
	if err != nil {
		t.Fatalf("%s: re-MarshalBinary: %v", f.Name, err)
	}
	if !bytes.Equal(b1, b12) {
		t.Fatalf("%s: b1 encoding is not a fixed point of the round trip", f.Name)
	}
	// Cross-schema: the b1-decoded function must re-encode to the very
	// same v2 bytes as the original — the schemas are views of one
	// arena document.
	vx, err := ir.Marshal(gb)
	if err != nil {
		t.Fatalf("%s: Marshal(b1-decoded): %v", f.Name, err)
	}
	if !bytes.Equal(data, vx) {
		t.Fatalf("%s: b1-decoded function re-encodes to different v2 bytes", f.Name)
	}
	return g
}

// TestMarshalRoundTripSuites round-trips every workload suite function,
// pre-SSA and in pinned SSA form (φs, pins, generated value names).
func TestMarshalRoundTripSuites(t *testing.T) {
	for _, s := range workload.All() {
		for _, f := range s.Funcs {
			roundTrip(t, f)
			g := f.Clone()
			ssa.MustBuild(g)
			roundTrip(t, g)
		}
	}
}

// TestMarshalPipelineIdentity proves the codec's contract: running the
// pipeline on a decoded function produces byte-identical output to
// running it on a clone of the original.
func TestMarshalPipelineIdentity(t *testing.T) {
	conf, err := pipeline.Preset(pipeline.ExpLphiABIC)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 10; seed++ {
		f := testprog.Rand(seed, testprog.RandOptions{MaxDepth: 4, Vars: 4, StmtsPerBlock: 4, Calls: true, Stack: true})
		data, err := ir.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		g, err := ir.Unmarshal(data)
		if err != nil {
			t.Fatal(err)
		}
		want := f.Clone()
		if _, err := pipeline.Run(want, conf); err != nil {
			t.Fatalf("seed %d: pipeline on original: %v", seed, err)
		}
		if _, err := pipeline.Run(g, conf); err != nil {
			t.Fatalf("seed %d: pipeline on decoded: %v", seed, err)
		}
		if g.String() != want.String() {
			t.Fatalf("seed %d: pipeline output differs between original and decoded input", seed)
		}
	}
}

// TestMarshalRejects pins the decoder's validation on both schemas: bad
// schema tag, unknown op, out-of-range handle, and a corrupted arena
// all fail loudly.
func TestMarshalRejects(t *testing.T) {
	f, err := lai.Parse(".func f\n.input A:R0\nadd B, A, A\nret B\n.endfunc\n")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := ir.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := ir.MarshalV1(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name     string
		doc      []byte
		old, new string
	}{
		{"v2-schema", v2, `"laoc-ir-v2"`, `"laoc-ir-v9"`},
		{"v2-op", v2, `"instrs":[34,`, `"instrs":[9934,`},
		{"v2-operand", v2, `"ops":[25,`, `"ops":[9925,`},
		{"v1-schema", v1, `"laoc-ir-v1"`, `"laoc-ir-v9"`},
		{"v1-op", v1, `"add"`, `"frob"`},
		{"v1-value-id", v1, `[[25,0]]`, `[[999,0]]`},
	} {
		bad := bytes.Replace(tc.doc, []byte(tc.old), []byte(tc.new), 1)
		if bytes.Equal(bad, tc.doc) {
			t.Fatalf("%s: test substitution %q not found in %s", tc.name, tc.old, tc.doc)
		}
		if _, err := ir.Unmarshal(bad); err == nil {
			t.Errorf("%s: corrupted document decoded without error", tc.name)
		}
	}
	if _, err := ir.Unmarshal([]byte(`{"schema":"laoc-ir-v1","name":"f","values":[],"blocks":[]}`)); err == nil {
		t.Error("empty v1 document decoded without error")
	}
	if _, err := ir.Unmarshal([]byte(`{"schema":"laoc-ir-v2","name":"f","nphys":25,"vnames":[],"blocks":[],"order":[]}`)); err == nil {
		t.Error("empty v2 document decoded without error")
	}
}
