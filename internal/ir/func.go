package ir

import "fmt"

// Func is a single function: a control flow graph of basic blocks over a
// set of values. Blocks[0] is the entry block.
type Func struct {
	Name   string
	Blocks []*Block
	Target *Target

	values []*Value
	nextID int
	nextBB int

	// generation counts mutations of the function's code. Every change
	// that can affect a dataflow analysis — creating values or blocks,
	// adding edges, inserting or removing instructions, rewriting operand
	// values in place — moves it forward. internal/analysis keys its
	// per-function memoization on this counter, so a cached analysis is
	// reused exactly until the function changes.
	//
	// The structural mutators of this package (NewValue, NewBlock,
	// AddEdge, the Block instruction helpers, RestoreFrom) bump it
	// automatically. Passes that write Operand.Val fields or block/instr
	// slices directly must call NoteMutation after their last such write.
	// Changes that no cached analysis reads — Operand.Pin fields,
	// Block.LoopDepth — deliberately do not bump, which is what lets a
	// liveness computed before a pin-collect phase survive it.
	generation uint64
	// cfgGeneration counts only CFG-shape mutations: creating blocks,
	// adding or rewiring edges, deleting blocks. Analyses that read just
	// the block graph (dominators) key on it, so operand rewrites and
	// instruction edits — which bump generation but not cfgGeneration —
	// leave a cached dominator tree valid. Invariant: cfgGeneration
	// advances only together with generation (a CFG change is also a code
	// change), never on its own.
	cfgGeneration uint64
	// analyses is the opaque per-function memo slot owned by
	// internal/analysis (kept opaque to avoid an ir → analysis cycle).
	// Clone does not copy it; RestoreFrom discards it.
	analyses any
}

// NewFunc creates an empty function with a fresh ST120-like target.
func NewFunc(name string) *Func {
	f := &Func{Name: name}
	f.Target = newTarget(f)
	return f
}

// Generation returns the mutation generation counter. Two calls
// returning the same value guarantee the function's code (CFG, values,
// instructions, operand values) did not change in between; pin fields
// and loop-depth annotations may have.
func (f *Func) Generation() uint64 { return f.generation }

// NoteMutation records that the function's code changed, invalidating
// every analysis memoized for an earlier generation. The structural
// mutators of this package call it automatically; a pass that rewrites
// Operand.Val fields or Instrs/Blocks slices in place must call it
// after its last such write (see DESIGN.md §8 for the pass-author
// contract). Code-only mutations leave CFG-keyed analyses (dominators)
// valid; a pass that edits the block graph in place must call
// NoteCFGMutation instead.
func (f *Func) NoteMutation() { f.generation++ }

// CFGGeneration returns the CFG-shape generation counter. Two calls
// returning the same value guarantee the block graph (blocks, edges)
// did not change in between, even if instructions or operands did.
func (f *Func) CFGGeneration() uint64 { return f.cfgGeneration }

// NoteCFGMutation records that the block graph changed. It implies
// NoteMutation: a CFG change invalidates every cached analysis, code-
// and CFG-keyed alike. NewBlock and AddEdge call it automatically; a
// pass that splices Preds/Succs or the Blocks slice in place must call
// it after its last such write.
func (f *Func) NoteCFGMutation() {
	f.generation++
	f.cfgGeneration++
}

// AnalysisSlot returns the per-function storage slot used by
// internal/analysis to memoize dataflow analyses. Other packages must
// not touch it.
func (f *Func) AnalysisSlot() *any { return &f.analyses }

func (f *Func) newValue(name string, kind ValueKind) *Value {
	v := &Value{ID: f.nextID, Name: name, Kind: kind}
	f.nextID++
	f.values = append(f.values, v)
	f.generation++
	return v
}

// NewValue creates a fresh virtual register. If name is empty a unique
// name is generated.
func (f *Func) NewValue(name string) *Value {
	if name == "" {
		name = "v" + itoa64(int64(f.nextID))
	}
	return f.newValue(name, Virtual)
}

// Values returns all values of the function (physical and virtual) in ID
// order. The returned slice must not be mutated.
func (f *Func) Values() []*Value { return f.values }

// NumValues returns the exclusive upper bound of value IDs; suitable for
// sizing dense per-value tables.
func (f *Func) NumValues() int { return f.nextID }

// NewBlock creates a block and appends it to the function.
func (f *Func) NewBlock(name string) *Block {
	b := &Block{ID: f.nextBB, Name: name, fn: f}
	f.nextBB++
	f.generation++
	f.cfgGeneration++
	if b.Name == "" {
		b.Name = "b" + itoa64(int64(b.ID))
	}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Entry returns the function entry block.
func (f *Func) Entry() *Block {
	if len(f.Blocks) == 0 {
		panic("ir: function has no blocks")
	}
	return f.Blocks[0]
}

// NumBlocks returns the exclusive upper bound of block IDs.
func (f *Func) NumBlocks() int { return f.nextBB }

// AddEdge records a CFG edge from b to s, keeping Preds/Succs consistent.
func (f *Func) AddEdge(b, s *Block) {
	b.Succs = append(b.Succs, s)
	s.Preds = append(s.Preds, b)
	f.generation++
	f.cfgGeneration++
}

// NumInstrs counts instructions across all blocks.
func (f *Func) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// CountMoves returns the number of Copy instructions in the function —
// the metric of the paper's Tables 2-4. A ParCopy counts one move per
// destination that differs from its source; callers that care about the
// exact cost of copy cycles should sequentialize ParCopies first.
func (f *Func) CountMoves() int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case Copy:
				if in.Def(0) != in.Use(0) {
					n++
				}
			case ParCopy:
				for i := range in.Defs {
					if in.Defs[i].Val != in.Uses[i].Val {
						n++
					}
				}
			}
		}
	}
	return n
}

// WeightedMoves returns the 5^depth weighted move count of Table 5: each
// move weighs 5^d where d is the loop depth of its block ("a static
// approximation where each loop would contain 5 iterations").
func (f *Func) WeightedMoves() int64 {
	var n int64
	for _, b := range f.Blocks {
		w := int64(1)
		for i := 0; i < b.LoopDepth; i++ {
			w *= 5
		}
		for _, in := range b.Instrs {
			switch in.Op {
			case Copy:
				if in.Def(0) != in.Use(0) {
					n += w
				}
			case ParCopy:
				for i := range in.Defs {
					if in.Defs[i].Val != in.Uses[i].Val {
						n += w
					}
				}
			}
		}
	}
	return n
}

// CountPhis returns the number of φ instructions in the function — an
// IR-provenance counter: positive while in SSA form, zero after a
// successful out-of-SSA translation.
func (f *Func) CountPhis() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Phis())
	}
	return n
}

// CountPins returns the number of pinned operands (definitions and
// uses) — the renaming-constraint load the out-of-pinned-SSA
// translation must discharge. Collect phases raise it, the translation
// consumes it back to zero.
func (f *Func) CountPins() int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i := range in.Defs {
				if in.Defs[i].Pin != nil {
					n++
				}
			}
			for i := range in.Uses {
				if in.Uses[i].Pin != nil {
					n++
				}
			}
		}
	}
	return n
}

// DefSites returns, for each value ID, the instructions defining it.
func (f *Func) DefSites() map[*Value][]*Instr {
	defs := make(map[*Value][]*Instr)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, d := range in.Defs {
				defs[d.Val] = append(defs[d.Val], in)
			}
		}
	}
	return defs
}

// SSADefs returns a dense table mapping each value ID to its unique
// definition. It panics if some virtual value has more than one
// definition (i.e. the function is not in SSA form).
func (f *Func) SSADefs() []*Instr {
	defs := make([]*Instr, f.NumValues())
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, d := range in.Defs {
				if d.Val.IsPhys() {
					continue
				}
				if defs[d.Val.ID] != nil {
					panic(fmt.Sprintf("ir: value %v defined twice (not SSA): %v and %v",
						d.Val, defs[d.Val.ID], in))
				}
				defs[d.Val.ID] = in
			}
		}
	}
	return defs
}
