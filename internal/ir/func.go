package ir

import (
	"fmt"
	"sync/atomic"
)

// Func is a single function: a control flow graph of basic blocks over a
// set of values. Blocks()[0] is the entry block.
//
// The function owns all storage (structure-of-arrays): value metadata,
// operands and block instruction lists live in flat slabs; instructions
// and blocks live in chunked arenas with stable addresses. All mutation
// goes through methods of *Func, *Block and *Instr, which maintain the
// generation counters by construction — there is no struct field whose
// direct assignment could silently invalidate a cached analysis.
type Func struct {
	Name   string
	Target *Target

	// vals[id] is the metadata of value id. Values are immutable after
	// creation and the slab is append-only, so Clone copies it verbatim.
	vals []valData
	// ops is the operand slab. Every instruction's Defs/Uses are a
	// (offset, length) span of this slab; spans are append-carved and
	// never move (growth copies the prefix, so offsets stay valid).
	ops []Operand
	// code is the instruction-list slab: every block's instruction
	// sequence is a capacity-capped span of this slab. In-place edits
	// shift within the span; growing past capacity re-carves the span at
	// the tail (the old span becomes garbage until the next Clone).
	code []InstrID

	instrChunks []*instrChunk
	numInstrs   int32
	blockChunks []*blockChunk
	numBlocks   int32
	// blockList is the live block order — print order, iteration order,
	// entry first. Dead blocks (removed by CFG cleanup) stay in the arena
	// but leave this list.
	blockList []*Block

	// generation counts mutations of the function's code. Every change
	// that can affect a dataflow analysis — creating values or blocks,
	// adding edges, inserting or removing instructions, rewriting operand
	// values — moves it forward. internal/analysis keys its per-function
	// memoization on this counter, so a cached analysis is reused exactly
	// until the function changes. All mutators of this package bump it
	// automatically; changes that no cached analysis reads — operand
	// pins, Block.LoopDepth, Instr.Imm/Callee — deliberately do not,
	// which is what lets a liveness computed before a pin-collect phase
	// survive it.
	generation uint64
	// cfgGeneration counts only CFG-shape mutations: creating blocks,
	// adding or rewiring edges, deleting blocks. Analyses that read just
	// the block graph (dominators) key on it, so operand rewrites and
	// instruction edits — which bump generation but not cfgGeneration —
	// leave a cached dominator tree valid. Invariant: cfgGeneration
	// advances only together with generation (a CFG change is also a code
	// change), never on its own.
	cfgGeneration uint64
	// analyses is the opaque per-function memo slot owned by
	// internal/analysis (kept opaque to avoid an ir → analysis cycle).
	// Published atomically so concurrent readers of a shared snapshot can
	// install and load the memo without a lock. Clone does not copy it;
	// RestoreFrom discards it.
	analyses atomic.Pointer[any]

	// cow links this Func to the copy-on-write family it shares slab
	// storage with; nil when the Func owns all its storage exclusively.
	// The shared* flags record which slabs are still the family's (see
	// snapshot.go); cowTouched dedupes the materializations counter.
	cow         *cowState
	sharedOps   bool
	sharedCode  bool
	sharedEdges bool
	cowTouched  bool
	// sharedRead declares the Func read-only and fanned out across
	// goroutines (see MarkSharedRead); analysis publishes frozen query
	// structures for such functions.
	sharedRead bool
}

// NewFunc creates an empty function with a fresh ST120-like target.
func NewFunc(name string) *Func {
	f := &Func{Name: name}
	f.Target = newTarget(f)
	return f
}

// Generation returns the mutation generation counter. Two calls
// returning the same value guarantee the function's code (CFG, values,
// instructions, operand values) did not change in between; pin fields
// and loop-depth annotations may have.
func (f *Func) Generation() uint64 { return f.generation }

// NoteMutation records that the function's code changed, invalidating
// every analysis memoized for an earlier generation. Every mutator of
// this package bumps the generation itself, so unlike the pre-SoA API
// there is no pass-author obligation to call this; it remains exported
// for tests and for code that stages out-of-band state keyed on the
// generation.
func (f *Func) NoteMutation() { f.generation++ }

// CFGGeneration returns the CFG-shape generation counter. Two calls
// returning the same value guarantee the block graph (blocks, edges)
// did not change in between, even if instructions or operands did.
func (f *Func) CFGGeneration() uint64 { return f.cfgGeneration }

// NoteCFGMutation records that the block graph changed. It implies
// NoteMutation: a CFG change invalidates every cached analysis, code-
// and CFG-keyed alike. As with NoteMutation, the CFG mutators bump this
// automatically; it remains exported for tests.
func (f *Func) NoteCFGMutation() {
	f.generation++
	f.cfgGeneration++
}

// SetGenerations overwrites both generation counters. It exists solely
// for internal/faultinject, which models a buggy pass that mutates the
// IR without the bump the analysis cache depends on (the SoA mutators
// make that impossible to do by accident, so the fault injector has to
// ask for it explicitly). Nothing else may call it.
func (f *Func) SetGenerations(gen, cfgGen uint64) {
	f.generation = gen
	f.cfgGeneration = cfgGen
}

// AnalysisLoad returns the per-function memo installed by
// internal/analysis, or nil. Safe for concurrent callers. Other
// packages must not touch the slot.
func (f *Func) AnalysisLoad() any {
	if p := f.analyses.Load(); p != nil {
		return *p
	}
	return nil
}

// AnalysisInit publishes v as the function's analysis memo if none is
// installed yet, and returns the winner — v, or the memo another
// goroutine raced in first. Safe for concurrent callers.
func (f *Func) AnalysisInit(v any) any {
	p := &v
	for {
		if f.analyses.CompareAndSwap(nil, p) {
			return v
		}
		if q := f.analyses.Load(); q != nil {
			return *q
		}
	}
}

// AnalysisClear drops the function's analysis memo.
func (f *Func) AnalysisClear() { f.analyses.Store(nil) }

// ---- values ----

func (f *Func) newValue(name string, kind ValueKind) ValueID {
	id := ValueID(len(f.vals))
	f.vals = append(f.vals, valData{name: name, kind: kind})
	f.generation++
	return id
}

// NewValue creates a fresh virtual register. If name is empty a unique
// name is generated.
func (f *Func) NewValue(name string) ValueID {
	if name == "" {
		name = "v" + itoa64(int64(len(f.vals)))
	}
	return f.newValue(name, Virtual)
}

// NumValues returns the exclusive upper bound of value IDs; suitable for
// sizing dense per-value tables. Value IDs are dense: every id in
// [0, NumValues) is a live value.
func (f *Func) NumValues() int { return len(f.vals) }

// ValueName returns the name of value v.
func (f *Func) ValueName(v ValueID) string { return f.vals[v].name }

// ValueKind returns the kind of value v.
func (f *Func) ValueKind(v ValueID) ValueKind { return f.vals[v].kind }

// IsPhys reports whether v is a dedicated physical register.
func (f *Func) IsPhys(v ValueID) bool { return f.vals[v].kind == Physical }

// VStr renders a value handle for diagnostics: its name, or "<none>"
// for NoValue.
func (f *Func) VStr(v ValueID) string {
	if v == NoValue {
		return "<none>"
	}
	if int(v) >= len(f.vals) {
		return "v?" + itoa64(int64(v))
	}
	return f.vals[v].name
}

// OperandString renders an operand as the printer does: "val" or
// "val^pin".
func (f *Func) OperandString(o Operand) string {
	if o.Pinned() {
		return f.VStr(o.Val) + "^" + f.VStr(o.Pin())
	}
	return f.VStr(o.Val)
}

// ---- instructions ----

// allocInstr reserves a fresh arena slot and returns its (zeroed,
// detached) instruction.
func (f *Func) allocInstr() *Instr {
	id := f.numInstrs
	if int(id>>instrChunkShift) == len(f.instrChunks) {
		f.instrChunks = append(f.instrChunks, new(instrChunk))
	}
	f.numInstrs++
	in := &f.instrChunks[id>>instrChunkShift][id&instrChunkMask]
	*in = Instr{id: InstrID(id), fn: f, blk: NoBlock}
	return in
}

// NewInstr creates a detached instruction with the given operands. The
// operand slices are copied into the function's operand slab; the caller
// keeps ownership of (and may reuse) the argument slices. Attach the
// instruction with Block.Append / InsertAt / InsertBeforeTerminator.
// Imm and Callee are plain fields set directly after creation.
func (f *Func) NewInstr(op Op, defs, uses []Operand) *Instr {
	in := f.allocInstr()
	in.op = op
	in.defOff, in.defLen = f.carveOps(defs)
	in.useOff, in.useLen = f.carveOps(uses)
	return in
}

func (f *Func) carveOps(src []Operand) (off, n int32) {
	f.cowOps()
	off = int32(len(f.ops))
	f.ops = append(f.ops, src...)
	return off, int32(len(src))
}

// Instr returns the instruction with the given handle. It panics on
// handles that were never allocated by this function.
func (f *Func) Instr(id InstrID) *Instr {
	if id < 0 || int32(id) >= f.numInstrs {
		panic(fmt.Sprintf("ir: %s: instruction handle %d out of range [0,%d)", f.Name, id, f.numInstrs))
	}
	return &f.instrChunks[id>>instrChunkShift][id&instrChunkMask]
}

// NumInstrSlots returns the exclusive upper bound of instruction handles,
// counting detached (removed) instructions still parked in the arena.
// For the number of instructions currently in blocks, use NumInstrs.
func (f *Func) NumInstrSlots() int { return int(f.numInstrs) }

// NumInstrs counts instructions across all (live) blocks.
func (f *Func) NumInstrs() int {
	n := 0
	for _, b := range f.blockList {
		n += int(b.codeLen)
	}
	return n
}

// ---- blocks ----

// NewBlock creates a block and appends it to the function.
func (f *Func) NewBlock(name string) *Block {
	id := f.numBlocks
	if int(id>>blockChunkShift) == len(f.blockChunks) {
		f.blockChunks = append(f.blockChunks, new(blockChunk))
	}
	f.numBlocks++
	b := &f.blockChunks[id>>blockChunkShift][id&blockChunkMask]
	*b = Block{ID: BlockID(id), Name: name, fn: f}
	if b.Name == "" {
		b.Name = "b" + itoa64(int64(id))
	}
	f.blockList = append(f.blockList, b)
	f.generation++
	f.cfgGeneration++
	return b
}

// Block returns the block with the given handle (live or removed). It
// panics on handles that were never allocated by this function.
func (f *Func) Block(id BlockID) *Block {
	if id < 0 || int32(id) >= f.numBlocks {
		panic(fmt.Sprintf("ir: %s: block handle %d out of range [0,%d)", f.Name, id, f.numBlocks))
	}
	return &f.blockChunks[id>>blockChunkShift][id&blockChunkMask]
}

// Blocks returns the live blocks in layout order (entry first). The
// returned slice is a view owned by the function: treat it as read-only,
// and do not hold it across NewBlock or SetBlockOrder.
func (f *Func) Blocks() []*Block { return f.blockList }

// Entry returns the function entry block.
func (f *Func) Entry() *Block {
	if len(f.blockList) == 0 {
		panic("ir: function has no blocks")
	}
	return f.blockList[0]
}

// NumBlocks returns the exclusive upper bound of block IDs (including
// blocks removed from the layout); suitable for sizing dense per-block
// tables. For the live block count use len(f.Blocks()).
func (f *Func) NumBlocks() int { return int(f.numBlocks) }

// SetBlockOrder replaces the live block layout. ids must be distinct
// handles of this function; blocks left out become detached (their
// storage remains valid but they no longer print, execute or analyze).
// This is how CFG cleanup removes unreachable blocks.
func (f *Func) SetBlockOrder(ids []BlockID) {
	nl := make([]*Block, len(ids))
	for i, id := range ids {
		nl[i] = f.Block(id)
	}
	f.blockList = nl
	f.generation++
	f.cfgGeneration++
}

// AddEdge records a CFG edge from b to s, keeping Preds/Succs consistent.
func (f *Func) AddEdge(b, s *Block) {
	f.cowEdges()
	b.succs = append(b.succs, s.ID)
	s.preds = append(s.preds, b.ID)
	f.generation++
	f.cfgGeneration++
}

// ---- paper metrics ----

// CountMoves returns the number of Copy instructions in the function —
// the metric of the paper's Tables 2-4. A ParCopy counts one move per
// destination that differs from its source; callers that care about the
// exact cost of copy cycles should sequentialize ParCopies first.
func (f *Func) CountMoves() int {
	n := 0
	for _, b := range f.blockList {
		for _, in := range b.Instrs() {
			switch in.op {
			case Copy:
				if in.Def(0) != in.Use(0) {
					n++
				}
			case ParCopy:
				for i := 0; i < in.NumDefs(); i++ {
					if in.Def(i) != in.Use(i) {
						n++
					}
				}
			}
		}
	}
	return n
}

// WeightedMoves returns the 5^depth weighted move count of Table 5: each
// move weighs 5^d where d is the loop depth of its block ("a static
// approximation where each loop would contain 5 iterations").
func (f *Func) WeightedMoves() int64 {
	var n int64
	for _, b := range f.blockList {
		w := int64(1)
		for i := 0; i < b.LoopDepth; i++ {
			w *= 5
		}
		for _, in := range b.Instrs() {
			switch in.op {
			case Copy:
				if in.Def(0) != in.Use(0) {
					n += w
				}
			case ParCopy:
				for i := 0; i < in.NumDefs(); i++ {
					if in.Def(i) != in.Use(i) {
						n += w
					}
				}
			}
		}
	}
	return n
}

// CountPhis returns the number of φ instructions in the function — an
// IR-provenance counter: positive while in SSA form, zero after a
// successful out-of-SSA translation.
func (f *Func) CountPhis() int {
	n := 0
	for _, b := range f.blockList {
		n += b.NumPhis()
	}
	return n
}

// CountPins returns the number of pinned operands (definitions and
// uses) — the renaming-constraint load the out-of-pinned-SSA
// translation must discharge. Collect phases raise it, the translation
// consumes it back to zero.
func (f *Func) CountPins() int {
	n := 0
	for _, b := range f.blockList {
		for _, in := range b.Instrs() {
			for _, o := range in.Defs() {
				if o.Pinned() {
					n++
				}
			}
			for _, o := range in.Uses() {
				if o.Pinned() {
					n++
				}
			}
		}
	}
	return n
}

// DefSites returns, for each value, the instructions defining it.
func (f *Func) DefSites() map[ValueID][]*Instr {
	defs := make(map[ValueID][]*Instr)
	for _, b := range f.blockList {
		for _, in := range b.Instrs() {
			for _, d := range in.Defs() {
				defs[d.Val] = append(defs[d.Val], in)
			}
		}
	}
	return defs
}

// SSADefs returns a dense table mapping each value ID to its unique
// definition. It panics if some virtual value has more than one
// definition (i.e. the function is not in SSA form).
func (f *Func) SSADefs() []*Instr {
	defs := make([]*Instr, f.NumValues())
	for _, b := range f.blockList {
		for _, in := range b.Instrs() {
			for _, d := range in.Defs() {
				if f.IsPhys(d.Val) {
					continue
				}
				if defs[d.Val] != nil {
					panic(fmt.Sprintf("ir: value %v defined twice (not SSA): %v and %v",
						f.VStr(d.Val), defs[d.Val], in))
				}
				defs[d.Val] = in
			}
		}
	}
	return defs
}
