// The "laoc-ir-b1" binary wire codec: the same arena document v2
// renders as JSON, laid out as little-endian length-prefixed sections
// behind a magic/version/target-shape header. Encoding is a few bulk
// appends over the extracted slabs; decoding is bounds-checked section
// reads followed by the shared buildArenas reconstruction, so a b1
// round trip carries exactly the v2 guarantee (Clone-equivalent by
// memcmp, byte fixed-point re-encode) without the JSON number parse on
// the hot path. b1 is the service's preferred request encoding and the
// on-disk payload of internal/cachestore.
//
// Layout (all integers little-endian; str = u32 length + bytes; i32s /
// i64s = u32 element count + raw two's-complement elements):
//
//	magic   "laoc-ir-b1\x00" (11 bytes, the schema tag itself)
//	version u32 (currently 1)
//	nphys   u32   — physical-register prefix length, checked on decode
//	name    str
//	vnames  u32 count, then count × str
//	ops     i32s  — operand slab, (value, biased pin) pairs
//	code    i32s  — instruction-list slab (-1 in capacity holes)
//	instrs  i64s  — instruction arena, 7 numbers per slot
//	callees u32 count, then count × (u32 slot, str name)
//	blocks  u32 count, then count × (str name, u32 depth,
//	        i32 codeOff, i32 codeLen, i32s preds, i32s succs)
//	order   i32s  — live block layout as handles
//
// Every count is validated against the remaining input before any
// allocation, so a hostile document cannot make the decoder allocate
// more than its own length.
package ir

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// WireSchemaB1 identifies the binary arena encoding.
const WireSchemaB1 = "laoc-ir-b1"

// b1Magic prefixes every b1 document: the schema tag plus a NUL, which
// no JSON document can start with.
var b1Magic = []byte(WireSchemaB1 + "\x00")

// b1Version is the current binary layout version; decoders reject
// anything else.
const b1Version = 1

// IsBinary reports whether data starts like a b1 document. JSON
// documents (v1/v2) can never match: they start with '{'.
func IsBinary(data []byte) bool { return bytes.HasPrefix(data, b1Magic) }

// MarshalBinary encodes f in the b1 binary schema. Like Marshal, the
// output is deterministic and a stable content key.
func MarshalBinary(f *Func) ([]byte, error) { return AppendBinary(nil, f) }

// AppendBinary appends f's b1 encoding to dst and returns the extended
// slice, for callers batching documents into one buffer (the cachestore
// segment writer does).
func AppendBinary(dst []byte, f *Func) ([]byte, error) {
	statMarshalsB1.Add(1)
	w, err := extractArenas(f)
	if err != nil {
		return nil, err
	}
	dst = append(dst, b1Magic...)
	dst = appendU32(dst, b1Version)
	dst = appendU32(dst, uint32(w.NPhys))
	dst = appendStr(dst, w.Name)
	dst = appendU32(dst, uint32(len(w.VNames)))
	for _, n := range w.VNames {
		dst = appendStr(dst, n)
	}
	dst = appendI32s(dst, w.Ops)
	dst = appendI32s(dst, w.Code)
	dst = appendI64s(dst, w.Instrs)
	dst = appendU32(dst, uint32(len(w.Callees)))
	for _, c := range w.Callees {
		dst = appendU32(dst, uint32(c.Slot))
		dst = appendStr(dst, c.Name)
	}
	dst = appendU32(dst, uint32(len(w.Blocks)))
	for i := range w.Blocks {
		b := &w.Blocks[i]
		dst = appendStr(dst, b.Name)
		dst = appendU32(dst, uint32(int32(b.Depth)))
		dst = appendU32(dst, uint32(b.CodeOff))
		dst = appendU32(dst, uint32(b.CodeLen))
		dst = appendI32s(dst, b.Preds)
		dst = appendI32s(dst, b.Succs)
	}
	dst = appendI32s(dst, w.Order)
	return dst, nil
}

func appendU32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

func appendStr(dst []byte, s string) []byte {
	dst = appendU32(dst, uint32(len(s)))
	return append(dst, s...)
}

func appendI32s(dst []byte, vs []int32) []byte {
	dst = appendU32(dst, uint32(len(vs)))
	need := 4 * len(vs)
	off := len(dst)
	dst = append(dst, make([]byte, need)...)
	for i, v := range vs {
		binary.LittleEndian.PutUint32(dst[off+4*i:], uint32(v))
	}
	return dst
}

func appendI64s(dst []byte, vs []int64) []byte {
	dst = appendU32(dst, uint32(len(vs)))
	need := 8 * len(vs)
	off := len(dst)
	dst = append(dst, make([]byte, need)...)
	for i, v := range vs {
		binary.LittleEndian.PutUint64(dst[off+8*i:], uint64(v))
	}
	return dst
}

// breader is the sticky-error section reader: after the first framing
// violation every further read is a no-op and err holds the cause, so
// the decode body reads linearly without per-call error plumbing.
type breader struct {
	data []byte
	off  int
	err  error
}

func (r *breader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("ir: unmarshal b1: "+format, args...)
	}
}

func (r *breader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.data)-r.off < n {
		r.fail("truncated at byte %d (need %d more)", r.off, n)
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *breader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// count reads a u32 element count and rejects any that could not fit in
// the remaining input at size bytes per element — the allocation guard.
func (r *breader) count(size int) int {
	n := r.u32()
	if r.err == nil && int64(n)*int64(size) > int64(len(r.data)-r.off) {
		r.fail("count %d at byte %d exceeds remaining input", n, r.off)
		return 0
	}
	return int(n)
}

func (r *breader) str() string {
	return string(r.take(r.count(1)))
}

func (r *breader) i32s() []int32 {
	n := r.count(4)
	b := r.take(4 * n)
	if b == nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

func (r *breader) i64s() []int64 {
	n := r.count(8)
	b := r.take(8 * n)
	if b == nil {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

func unmarshalB1(data []byte) (*Func, error) {
	r := &breader{data: data, off: len(b1Magic)}
	if v := r.u32(); r.err == nil && v != b1Version {
		return nil, fmt.Errorf("ir: unmarshal b1: unsupported version %d (want %d)", v, b1Version)
	}
	var w wireFuncV2
	w.Schema = WireSchemaB1
	w.NPhys = int(r.u32())
	w.Name = r.str()
	nv := r.count(4) // 4 bytes is the floor for one encoded string
	for i := 0; i < nv && r.err == nil; i++ {
		w.VNames = append(w.VNames, r.str())
	}
	w.Ops = r.i32s()
	w.Code = r.i32s()
	w.Instrs = r.i64s()
	ncallee := r.count(8)
	for i := 0; i < ncallee && r.err == nil; i++ {
		slot := int32(r.u32())
		w.Callees = append(w.Callees, wireCallee{Slot: slot, Name: r.str()})
	}
	nblocks := r.count(16)
	for i := 0; i < nblocks && r.err == nil; i++ {
		var b wireBlockV2
		b.Name = r.str()
		b.Depth = int(int32(r.u32()))
		b.CodeOff = int32(r.u32())
		b.CodeLen = int32(r.u32())
		b.Preds = r.i32s()
		b.Succs = r.i32s()
		w.Blocks = append(w.Blocks, b)
	}
	w.Order = r.i32s()
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("ir: unmarshal b1: %d trailing bytes after the document", len(data)-r.off)
	}
	return buildArenas(&w)
}
