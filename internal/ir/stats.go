package ir

import "sync/atomic"

// Package-wide slab-operation counters. ir sits below the metrics
// registry in the import graph (obs depends on ir), so the counters are
// plain atomics here; internal/pipeline bridges them into the
// laoc_ir_* metric families via CounterFunc, where the CI perfgate
// asserts over them. All counters are monotonic and deterministic for
// a fixed serial workload.
var (
	statClones          atomic.Int64
	statCloneSlabAllocs atomic.Int64
	statRestores        atomic.Int64

	statSnapshots           atomic.Int64
	statSnapshotSlabAllocs  atomic.Int64
	statCOWMaterializations atomic.Int64
	statCOWSlabCopies       atomic.Int64
	statCOWAdoptions        atomic.Int64

	statMarshalsV2   atomic.Int64
	statMarshalsV1   atomic.Int64
	statMarshalsB1   atomic.Int64
	statUnmarshalsV2 atomic.Int64
	statUnmarshalsV1 atomic.Int64
	statUnmarshalsB1 atomic.Int64
)

// SlabStats is a snapshot of the package-wide slab-operation counters.
type SlabStats struct {
	// Clones counts Func.Clone calls; CloneSlabAllocs sums the slab
	// allocations those clones performed (the cloneSlabCount budget per
	// call), so CloneSlabAllocs/Clones is the observed allocations-per-
	// clone ratio — O(arena chunks) by construction.
	Clones          int64
	CloneSlabAllocs int64
	// Restores counts Func.RestoreFrom copy-backs.
	Restores int64

	// Snapshots counts Func.Snapshot calls; SnapshotSlabAllocs sums the
	// up-front allocations those snapshots performed (chunk copies only —
	// the snapshotSlabCount budget). COWMaterializations counts Funcs
	// that faulted at least one shared slab into private storage;
	// COWSlabCopies counts the individual deferred slab copies; so
	// Snapshots − COWMaterializations is the number of copies the lazy
	// path elided outright, and COWMaterializations/Snapshots is the
	// copies-materialized ratio the scaling-smoke gate asserts on.
	// COWAdoptions counts mutations that found themselves the family's
	// last reader and took ownership of the shared storage with no copy
	// at all.
	Snapshots           int64
	SnapshotSlabAllocs  int64
	COWMaterializations int64
	COWSlabCopies       int64
	COWAdoptions        int64
	// Marshal/Unmarshal counters split by wire schema; the v2 counters
	// move on the arena JSON path, v1 on the legacy per-instruction walk,
	// b1 on the binary arena fast path.
	MarshalsV2   int64
	MarshalsV1   int64
	MarshalsB1   int64
	UnmarshalsV2 int64
	UnmarshalsV1 int64
	UnmarshalsB1 int64
}

// Stats returns a snapshot of the slab-operation counters.
func Stats() SlabStats {
	return SlabStats{
		Clones:              statClones.Load(),
		CloneSlabAllocs:     statCloneSlabAllocs.Load(),
		Restores:            statRestores.Load(),
		Snapshots:           statSnapshots.Load(),
		SnapshotSlabAllocs:  statSnapshotSlabAllocs.Load(),
		COWMaterializations: statCOWMaterializations.Load(),
		COWSlabCopies:       statCOWSlabCopies.Load(),
		COWAdoptions:        statCOWAdoptions.Load(),
		MarshalsV2:          statMarshalsV2.Load(),
		MarshalsV1:          statMarshalsV1.Load(),
		MarshalsB1:          statMarshalsB1.Load(),
		UnmarshalsV2:        statUnmarshalsV2.Load(),
		UnmarshalsV1:        statUnmarshalsV1.Load(),
		UnmarshalsB1:        statUnmarshalsB1.Load(),
	}
}
