package ir_test

import (
	"bytes"
	"testing"

	"outofssa/internal/ir"
	"outofssa/internal/pipeline"
	"outofssa/internal/ssa"
	"outofssa/internal/testprog"
)

// fuzzCorpus mirrors the pipeline fuzz harness's program distribution:
// random programs across several size classes, calls and stack traffic
// included.
func fuzzCorpus() []*ir.Func {
	var out []*ir.Func
	sizes := []testprog.RandOptions{
		{MaxDepth: 2, Vars: 3, StmtsPerBlock: 2},
		{MaxDepth: 3, Vars: 5, StmtsPerBlock: 4, Calls: true},
		{MaxDepth: 4, Vars: 6, StmtsPerBlock: 5, Calls: true, Stack: true},
	}
	for _, opt := range sizes {
		for seed := int64(0); seed < 12; seed++ {
			out = append(out, testprog.Rand(seed, opt))
		}
	}
	return out
}

// deepEqual checks full observable equivalence of two functions: the
// printed form, the exact v2 arena encoding (bit-exact down to span
// offsets), and execution behaviour.
func deepEqual(t *testing.T, tag string, want, got *ir.Func) {
	t.Helper()
	if want.String() != got.String() {
		t.Fatalf("%s: printed form differs:\n--- want\n%s\n--- got\n%s", tag, want, got)
	}
	wb, err := ir.Marshal(want)
	if err != nil {
		t.Fatalf("%s: marshal want: %v", tag, err)
	}
	gb, err := ir.Marshal(got)
	if err != nil {
		t.Fatalf("%s: marshal got: %v", tag, err)
	}
	if !bytes.Equal(wb, gb) {
		t.Fatalf("%s: arena encodings differ — clone is not slab-exact", tag)
	}
	args := []int64{3, 14, 1}
	wr, werr := ir.Exec(want, args, 500000)
	gr, gerr := ir.Exec(got, args, 500000)
	if (werr == nil) != (gerr == nil) {
		t.Fatalf("%s: exec divergence: %v vs %v", tag, werr, gerr)
	}
	if werr == nil && !wr.Equal(gr) {
		t.Fatalf("%s: behaviour differs", tag)
	}
}

// TestClonePropertyFuzzCorpus is the satellite-4 property test: over the
// fuzz corpus, (1) Clone is deeply equivalent to its source, (2) heavy
// mutation of the original (SSA build + full pipeline) leaves the clone
// untouched, and (3) RestoreFrom rolls the mutated function back to the
// exact snapshot state — same print, same arena bytes, same behaviour —
// while keeping the *Func pointer valid.
func TestClonePropertyFuzzCorpus(t *testing.T) {
	conf, err := pipeline.Preset(pipeline.ExpLphiABIC)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range fuzzCorpus() {
		snap := f.Clone()
		deepEqual(t, f.Name, f, snap)

		// Mutate the original through the heaviest path available.
		before := snap.String()
		ssa.Build(f)
		if _, err := pipeline.Run(f, conf, pipeline.WithSSAInfo(ssa.EmptyInfo())); err != nil {
			t.Fatalf("corpus %d (%s): pipeline: %v", i, f.Name, err)
		}
		if snap.String() != before {
			t.Fatalf("corpus %d (%s): mutating the original changed the clone", i, f.Name)
		}

		// Roll back and require exact snapshot equivalence.
		keep := snap.Clone() // RestoreFrom consumes its argument
		f.RestoreFrom(snap)
		deepEqual(t, f.Name+"/restored", keep, f)
		if err := f.Verify(); err != nil {
			t.Fatalf("corpus %d (%s): restored function invalid: %v", i, f.Name, err)
		}
	}
}

// TestRestoreFromInvalidatesAnalyses: a restored function must not serve
// analyses memoized against the pre-restore code. (The generation
// counters stay monotonic across RestoreFrom; this pins that contract
// from the outside.)
func TestRestoreFromGenerationMonotonic(t *testing.T) {
	f := testprog.Loop()
	snap := f.Clone()
	gen, cfgGen := f.Generation(), f.CFGGeneration()
	ssa.Build(f)
	f.RestoreFrom(snap)
	if f.Generation() <= gen {
		t.Fatalf("generation moved backwards across RestoreFrom: %d -> %d", gen, f.Generation())
	}
	if f.CFGGeneration() <= cfgGen {
		t.Fatalf("CFG generation moved backwards across RestoreFrom: %d -> %d", cfgGen, f.CFGGeneration())
	}
}
