package ir_test

import (
	"strings"
	"testing"

	"outofssa/internal/ir"
	"outofssa/internal/testprog"
)

func TestVerifyStructured(t *testing.T) {
	for _, f := range testprog.All() {
		if err := f.Verify(); err != nil {
			t.Errorf("%s: %v", f.Name, err)
		}
	}
}

func TestVerifyCatchesMissingTerminator(t *testing.T) {
	bld := ir.NewBuilder("bad")
	bld.Block("entry")
	v := bld.Val("v")
	bld.Const(v, 1)
	if err := bld.Fn.Verify(); err == nil {
		t.Fatal("expected error for unterminated block")
	}
}

func TestVerifyCatchesInconsistentEdges(t *testing.T) {
	bld := ir.NewBuilder("bad")
	entry := bld.Block("entry")
	other := bld.Fn.NewBlock("other")
	bld.SetBlock(other)
	bld.Output()
	bld.SetBlock(entry)
	bld.Output()
	entry.SetSuccs(append(entry.Succs(), other.ID)) // no matching pred
	if err := bld.Fn.Verify(); err == nil {
		t.Fatal("expected error for asymmetric edge")
	}
}

func TestVerifyCatchesPhiArityMismatch(t *testing.T) {
	bld := ir.NewBuilder("bad")
	entry := bld.Block("entry")
	join := bld.Fn.NewBlock("join")
	bld.SetBlock(entry)
	bld.Jump(join)
	bld.SetBlock(join)
	x, a, b := bld.Val("x"), bld.Val("a"), bld.Val("b")
	bld.Phi(x, a, b) // two args, one pred
	bld.Output(x)
	if err := bld.Fn.Verify(); err == nil {
		t.Fatal("expected error for φ arity mismatch")
	}
}

func TestExecDiamond(t *testing.T) {
	f := testprog.Diamond()
	cases := []struct {
		a, b, want int64
	}{
		{1, 5, 12},  // a<b: (a+b)*2
		{5, 1, 8},   // else: (a-b)*2
		{3, 3, 0},   // equal: (a-b)*2 = 0
		{-4, 2, -4}, // (-4+2)*2
	}
	for _, c := range cases {
		res, err := ir.Exec(f, []int64{c.a, c.b}, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Outputs) != 1 || res.Outputs[0] != c.want {
			t.Errorf("diamond(%d,%d) = %v, want %d", c.a, c.b, res.Outputs, c.want)
		}
	}
}

func TestExecLoop(t *testing.T) {
	f := testprog.Loop()
	for n := int64(0); n < 10; n++ {
		res, err := ir.Exec(f, []int64{n}, 10000)
		if err != nil {
			t.Fatal(err)
		}
		want := n * (n - 1) / 2
		if res.Outputs[0] != want {
			t.Errorf("loop(%d) = %d, want %d", n, res.Outputs[0], want)
		}
	}
}

func TestExecStepLimit(t *testing.T) {
	f := testprog.Loop()
	_, err := ir.Exec(f, []int64{1 << 40}, 100)
	if err != ir.ErrStepLimit {
		t.Fatalf("want ErrStepLimit, got %v", err)
	}
}

func TestExecDeterministicCallsAndLoads(t *testing.T) {
	f := testprog.WithCallsAndStack()
	r1, err := ir.Exec(f, []int64{7, 100}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ir.Exec(f, []int64{7, 100}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Equal(r2) {
		t.Fatal("execution is not deterministic")
	}
	r3, _ := ir.Exec(f, []int64{8, 100}, 1000)
	if r1.Equal(r3) {
		t.Fatal("different inputs produced identical observable behaviour")
	}
}

func TestParCopySemantics(t *testing.T) {
	bld := ir.NewBuilder("pc")
	bld.Block("entry")
	a, b := bld.Val("a"), bld.Val("b")
	bld.Input(a, b)
	// swap via parallel copy
	bld.Cur.Append(bld.Fn.NewInstr(ir.ParCopy, ir.Ops(a, b), ir.Ops(b, a)))
	bld.Output(a, b)
	res, err := ir.Exec(bld.Fn, []int64{1, 2}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] != 2 || res.Outputs[1] != 1 {
		t.Fatalf("parallel copy swap failed: %v", res.Outputs)
	}
}

func TestCloneIndependence(t *testing.T) {
	f := testprog.SwapLoop()
	g := f.Clone()
	if err := g.Verify(); err != nil {
		t.Fatal(err)
	}
	r1, err := ir.Exec(f, []int64{3, 9, 4}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ir.Exec(g, []int64{3, 9, 4}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Equal(r2) {
		t.Fatal("clone changed observable behaviour")
	}
	// Mutating the clone must not affect the original.
	g.Entry().Truncate(0)
	g.NewValue("cloneOnly")
	if err := f.Verify(); err != nil {
		t.Fatalf("mutating clone broke original: %v", err)
	}
	if f.NumValues() == g.NumValues() {
		t.Fatal("value creation on the clone leaked into the original")
	}
	if r3, err := ir.Exec(f, []int64{3, 9, 4}, 10000); err != nil || !r1.Equal(r3) {
		t.Fatalf("original changed behaviour after clone mutation: %v", err)
	}
}

func TestCountMoves(t *testing.T) {
	bld := ir.NewBuilder("moves")
	bld.Block("entry")
	a, b, c := bld.Val("a"), bld.Val("b"), bld.Val("c")
	bld.Input(a)
	bld.Copy(b, a)
	bld.Copy(c, b)
	bld.Copy(c, c)                                                          // self-move: not counted
	bld.Cur.Append(bld.Fn.NewInstr(ir.ParCopy, ir.Ops(a, b), ir.Ops(b, b))) // one real move (a=b), one self (b=b)
	bld.Output(c)
	if got := bld.Fn.CountMoves(); got != 3 {
		t.Fatalf("CountMoves = %d, want 3", got)
	}
}

func TestWeightedMoves(t *testing.T) {
	f := testprog.Loop()
	// Manually: mark body as depth 2, put a copy there.
	var body *ir.Block
	for _, b := range f.Blocks() {
		if b.Name == "body" {
			body = b
		}
	}
	body.LoopDepth = 2
	v := f.NewValue("tmp")
	body.InsertAt(0, f.NewInstr(ir.Copy, ir.Ops(v), ir.Ops(v)))
	// self copy: weight 0; add a real one
	w := f.NewValue("tmp2")
	body.InsertAt(0, f.NewInstr(ir.Copy, ir.Ops(w), ir.Ops(v)))
	if got := f.WeightedMoves(); got != 25 {
		t.Fatalf("WeightedMoves = %d, want 25", got)
	}
}

func TestPrintContainsPins(t *testing.T) {
	f := testprog.Diamond()
	in := f.Entry().Instr(0)
	ir.PinDef(in, 0, f.Target.R[0])
	s := f.String()
	if !strings.Contains(s, "^R0") {
		t.Fatalf("printed form lacks pin annotation:\n%s", s)
	}
}

func TestTwoOperandClassification(t *testing.T) {
	for _, op := range []ir.Op{ir.More, ir.AutoAdd, ir.Mac} {
		if !op.IsTwoOperand() {
			t.Errorf("%v should be 2-operand", op)
		}
	}
	for _, op := range []ir.Op{ir.Add, ir.Copy, ir.Phi, ir.Call} {
		if op.IsTwoOperand() {
			t.Errorf("%v should not be 2-operand", op)
		}
	}
}
