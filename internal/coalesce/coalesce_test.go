package coalesce_test

import (
	"testing"

	"outofssa/internal/coalesce"
	"outofssa/internal/interference"
	"outofssa/internal/ir"
	"outofssa/internal/outofssa/leung"
	"outofssa/internal/pin"
	"outofssa/internal/ssa"
	"outofssa/internal/testprog"
)

func run(t *testing.T, f *ir.Func, opt coalesce.Options) (*coalesce.Stats, *leung.Stats) {
	t.Helper()
	st, err := coalesce.ProgramPinning(f, opt)
	if err != nil {
		t.Fatalf("%s: %v", f.Name, err)
	}
	res, err := pin.NewResources(f)
	if err != nil {
		t.Fatalf("%s: %v", f.Name, err)
	}
	if err := pin.Validate(f, res); err != nil {
		t.Fatalf("%s: coalescing produced invalid pinning: %v", f.Name, err)
	}
	lst, err := leung.Translate(f)
	if err != nil {
		t.Fatalf("%s: %v", f.Name, err)
	}
	if err := f.Verify(); err != nil {
		t.Fatalf("%s: %v", f.Name, err)
	}
	return st, lst
}

// TestPaperFigure5 builds the paper's Figure 5 situation: x = φ(x1, x2)
// where x1 and x2 interfere. Pinning both arguments (b) would force a
// repair; the algorithm must pin exactly one (c), leaving one move.
func TestPaperFigure5(t *testing.T) {
	bld := ir.NewBuilder("fig5")
	entry := bld.Block("entry")
	l1 := bld.Fn.NewBlock("L1")
	l2 := bld.Fn.NewBlock("L2")
	join := bld.Fn.NewBlock("join")

	c, x1, x2, x := bld.Val("c"), bld.Val("x1"), bld.Val("x2"), bld.Val("x")
	bld.SetBlock(entry)
	bld.Input(c)
	bld.Const(x1, 5)               // exp1
	bld.Binary(ir.Add, x2, x1, x1) // exp2 — x1 live past x2's def: they interfere
	bld.Br(c, l1, l2)
	bld.SetBlock(l1)
	bld.Jump(join)
	bld.SetBlock(l2)
	bld.Jump(join)
	bld.SetBlock(join)
	bld.Phi(x, x1, x2)
	bld.Output(x)
	if err := ssa.Verify(bld.Fn); err != nil {
		t.Fatal(err)
	}

	st, lst := run(t, bld.Fn, coalesce.Options{})
	if st.Gain != 1 {
		t.Fatalf("gain = %d, want exactly 1 (one argument coalesced, the other interferes)", st.Gain)
	}
	if lst.Repairs != 0 {
		t.Fatalf("repairs = %d; coalescing must not create interferences (Fig 5b)", lst.Repairs)
	}
	if got := bld.Fn.CountMoves(); got != 1 {
		t.Fatalf("moves = %d, want 1 (Fig 5c)\n%s", got, bld.Fn)
	}
}

// fig9 builds Figure 9: two φs of one block sharing the argument y.
//
//	p1: x = f1; z = f3        p2: y = f2
//	join: X = φ(x, y); Y = φ(z, y); use f(X, Y)
func fig9() *ir.Func {
	bld := ir.NewBuilder("fig9")
	entry := bld.Block("entry")
	p1 := bld.Fn.NewBlock("p1")
	p2 := bld.Fn.NewBlock("p2")
	join := bld.Fn.NewBlock("join")

	c := bld.Val("c")
	x, y, z := bld.Val("x"), bld.Val("y"), bld.Val("z")
	xx, yy := bld.Val("X"), bld.Val("Y")
	r := bld.Val("r")

	bld.SetBlock(entry)
	bld.Input(c)
	bld.Br(c, p1, p2)
	bld.SetBlock(p1)
	bld.Call("f1", []ir.ValueID{x})
	bld.Call("f3", []ir.ValueID{z})
	bld.Jump(join)
	bld.SetBlock(p2)
	bld.Call("f2", []ir.ValueID{y})
	bld.Jump(join)
	bld.SetBlock(join)
	bld.Phi(xx, x, y)
	bld.Phi(yy, z, y)
	bld.Binary(ir.Add, r, xx, yy)
	bld.Output(r)
	return bld.Fn
}

// TestPaperFigure9: treating the block's φs together must reach 1 move;
// Sreedhar's per-φ sequential treatment reaches 2 (checked in the
// pipeline tests via experiment configs; here we check our side).
func TestPaperFigure9(t *testing.T) {
	f := fig9()
	if err := ssa.Verify(f); err != nil {
		t.Fatal(err)
	}
	st, _ := run(t, f, coalesce.Options{})
	if st.Gain != 3 {
		t.Fatalf("gain = %d, want 3 of 4 slots coalesced", st.Gain)
	}
	if got := f.CountMoves(); got != 1 {
		t.Fatalf("moves = %d, want 1:\n%s", got, f)
	}
}

// TestSameBlockPhisNeverMerged: φ definitions of one block strongly
// interfere; the coalescer must never unite them even via shared
// arguments.
func TestSameBlockPhisNeverMerged(t *testing.T) {
	f := fig9()
	_, err := coalesce.ProgramPinning(f, coalesce.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := pin.NewResources(f)
	if err != nil {
		t.Fatal(err)
	}
	var phis []*ir.Instr
	for _, b := range f.Blocks() {
		for _, p := range b.Phis() {
			phis = append(phis, p)
		}
	}
	if len(phis) != 2 {
		t.Fatalf("want 2 φs, got %d", len(phis))
	}
	if res.Same(phis[0].Def(0), phis[1].Def(0)) {
		t.Fatal("same-block φ defs were merged into one resource")
	}
}

// TestCoalesceNeverIncreasesPhiMoves: with coalescing, the translator's
// φ moves must satisfy moves >= slots - gain and never exceed the
// uncoalesced count.
func TestCoalesceAccounting(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		base := testprog.Rand(seed, testprog.DefaultRandOptions())
		ssa.Build(base)
		baseline, err := leung.Translate(base)
		if err != nil {
			t.Fatal(err)
		}

		f := testprog.Rand(seed, testprog.DefaultRandOptions())
		ssa.Build(f)
		st, lst := run(t, f, coalesce.Options{})
		if lst.PhiMoves > baseline.PhiMoves {
			t.Fatalf("seed %d: coalescing increased φ moves %d -> %d",
				seed, baseline.PhiMoves, lst.PhiMoves)
		}
		if lst.PhiMoves < st.PhiSlots-st.Gain {
			t.Fatalf("seed %d: accounting broken: moves=%d slots=%d gain=%d",
				seed, lst.PhiMoves, st.PhiSlots, st.Gain)
		}
		if st.Gain > st.PhiSlots {
			t.Fatalf("seed %d: gain exceeds slots", seed)
		}
	}
}

// TestCoalesceNoNewRepairs: Condition 2 — pinning must not create new
// interferences, so the number of repairs must not grow.
func TestCoalesceNoNewRepairs(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		base := testprog.Rand(seed, testprog.DefaultRandOptions())
		ssa.Build(base)
		baseline, err := leung.Translate(base)
		if err != nil {
			t.Fatal(err)
		}
		f := testprog.Rand(seed, testprog.DefaultRandOptions())
		ssa.Build(f)
		_, lst := run(t, f, coalesce.Options{})
		if lst.Repairs > baseline.Repairs {
			t.Fatalf("seed %d: coalescing created repairs: %d -> %d",
				seed, baseline.Repairs, lst.Repairs)
		}
	}
}

// TestVariants: all four Table 5 variants terminate, validate and
// preserve semantics; pessimistic must coalesce no more than base.
func TestVariants(t *testing.T) {
	variants := map[string]coalesce.Options{
		"base":  {},
		"depth": {DepthConstraint: true},
		"opt":   {Mode: interference.Optimistic},
		"pess":  {Mode: interference.Pessimistic},
	}
	for seed := int64(0); seed < 15; seed++ {
		gains := map[string]int{}
		for name, opt := range variants {
			f := testprog.Rand(seed, testprog.DefaultRandOptions())
			ref := testprog.Rand(seed, testprog.DefaultRandOptions())
			args := []int64{seed, 7, 3}
			want, err := ir.Exec(ref, args, 500000)
			if err != nil {
				t.Fatal(err)
			}
			ssa.Build(f)
			st, _ := run(t, f, opt)
			gains[name] = st.Gain
			got, err := ir.Exec(f, args, 1000000)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, name, err)
			}
			if !want.Equal(got) {
				t.Fatalf("seed %d variant %s changed behaviour", seed, name)
			}
		}
		if gains["pess"] > gains["base"] {
			t.Errorf("seed %d: pessimistic gained more than base (%d > %d)",
				seed, gains["pess"], gains["base"])
		}
	}
}

// TestDepthVariantPrioritizesInnerLoops: with the depth constraint, a φ
// argument defined in the innermost loop is considered before outer ones.
func TestDepthVariant(t *testing.T) {
	f := testprog.NestedLoops()
	ssa.Build(f)
	st, _ := run(t, f, coalesce.Options{DepthConstraint: true})
	if st.Gain == 0 {
		t.Fatal("depth variant coalesced nothing on the nested-loop program")
	}
}

// TestGainOnStructured: the loop programs have trivially coalescable φ
// webs (i = φ(i0, i+1) chains); most slots must coalesce.
func TestGainOnStructured(t *testing.T) {
	f := testprog.Loop()
	ssa.Build(f)
	st, _ := run(t, f, coalesce.Options{})
	// Loop has φs for i and s with 2 args each: i web fully coalescable;
	// gain must be at least 3 of 4.
	if st.Gain < 3 {
		t.Fatalf("gain = %d/%d, want >= 3", st.Gain, st.PhiSlots)
	}
	if f.CountMoves() > 1 {
		t.Fatalf("moves = %d, want <= 1:\n%s", f.CountMoves(), f)
	}
}
