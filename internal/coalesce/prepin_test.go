package coalesce_test

import (
	"testing"

	"outofssa/internal/coalesce"
	"outofssa/internal/interference"
	"outofssa/internal/ir"
	"outofssa/internal/outofssa/leung"
	"outofssa/internal/pin"
	"outofssa/internal/ssa"
	"outofssa/internal/testprog"
)

// TestPrePinRemovesTieMove: a 2-operand instruction whose tied source
// dies there can have the source's definition pinned to the destination,
// removing the tie move entirely.
func TestPrePinRemovesTieMove(t *testing.T) {
	bld := ir.NewBuilder("tie")
	bld.Block("entry")
	a, q := bld.Val("a"), bld.Val("q")
	bld.Input(a)
	ad := bld.AutoAdd(q, a, 4) // a dies here
	ir.PinUse(ad, 0, q)        // the 2-operand tie (what CollectABI emits)
	bld.Output(q)

	st, err := coalesce.PrePinDefs(bld.Fn, interference.Exact)
	if err != nil {
		t.Fatal(err)
	}
	if st.DefsPinned != 1 {
		t.Fatalf("pre-pinned %d defs, want 1", st.DefsPinned)
	}
	if _, err := leung.Translate(bld.Fn); err != nil {
		t.Fatal(err)
	}
	if n := bld.Fn.CountMoves(); n != 0 {
		t.Fatalf("tie move survived: %d moves\n%s", n, bld.Fn)
	}
}

// TestPrePinSkipsInterfering: when the tied source is still live after
// the instruction, pre-pinning it to the destination would clobber it —
// the pre-pass must refuse.
func TestPrePinSkipsInterfering(t *testing.T) {
	bld := ir.NewBuilder("tie2")
	bld.Block("entry")
	a, q, s := bld.Val("a"), bld.Val("q"), bld.Val("s")
	bld.Input(a)
	ad := bld.AutoAdd(q, a, 4)
	ir.PinUse(ad, 0, q)
	bld.Binary(ir.Add, s, q, a) // a live past the autoadd
	bld.Output(s)

	st, err := coalesce.PrePinDefs(bld.Fn, interference.Exact)
	if err != nil {
		t.Fatal(err)
	}
	if st.DefsPinned != 0 || st.Skipped == 0 {
		t.Fatalf("stats: %+v (must skip the interfering candidate)", st)
	}
	// The translation now needs the tie move, and the program still works.
	if _, err := leung.Translate(bld.Fn); err != nil {
		t.Fatal(err)
	}
	res, err := ir.Exec(bld.Fn, []int64{10}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] != 24 {
		t.Fatalf("got %v, want 24", res.Outputs)
	}
}

// TestPrePinPreservesSemantics: the full pre-pin + pinningφ + translate
// pipeline keeps behaviour and produces valid pinning on random programs.
func TestPrePinPreservesSemantics(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		ref := testprog.Rand(seed, testprog.DefaultRandOptions())
		args := []int64{seed, 4, 11}
		want, err := ir.Exec(ref, args, 500000)
		if err != nil {
			t.Fatal(err)
		}
		f := testprog.Rand(seed, testprog.DefaultRandOptions())
		info := ssa.MustBuild(f)
		pin.CollectSP(f, info)
		pin.CollectABI(f)
		if _, err := coalesce.PrePinDefs(f, interference.Exact); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := pin.NewResources(f)
		if err != nil {
			t.Fatal(err)
		}
		if err := pin.Validate(f, res); err != nil {
			t.Fatalf("seed %d: pre-pinning produced invalid pinning: %v", seed, err)
		}
		if _, err := coalesce.ProgramPinning(f, coalesce.Options{}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := leung.Translate(f); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got, err := ir.Exec(f, args, 1000000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !want.Equal(got) {
			t.Fatalf("seed %d: pre-pinning changed behaviour", seed)
		}
	}
}

// TestPrePinNeverIncreasesRepairs: Condition 2 for the pre-pass.
func TestPrePinNeverIncreasesRepairs(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		mk := func() *ir.Func {
			f := testprog.Rand(seed, testprog.DefaultRandOptions())
			info := ssa.MustBuild(f)
			pin.CollectSP(f, info)
			pin.CollectABI(f)
			return f
		}
		base := mk()
		bst, err := leung.Translate(base)
		if err != nil {
			t.Fatal(err)
		}
		f := mk()
		if _, err := coalesce.PrePinDefs(f, interference.Exact); err != nil {
			t.Fatal(err)
		}
		pst, err := leung.Translate(f)
		if err != nil {
			t.Fatal(err)
		}
		if pst.Repairs > bst.Repairs {
			t.Fatalf("seed %d: pre-pinning created repairs: %d -> %d",
				seed, bst.Repairs, pst.Repairs)
		}
		if pst.PinMoves > bst.PinMoves {
			t.Fatalf("seed %d: pre-pinning increased pin moves: %d -> %d",
				seed, bst.PinMoves, pst.PinMoves)
		}
	}
}
