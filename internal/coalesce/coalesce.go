// Package coalesce implements the paper's contribution: pinning-based
// register coalescing during the out-of-SSA translation (§3, Algorithms
// 1-3). For every confluence point, an affinity graph over resources is
// built from the φ instructions, pruned so that no two resources of a
// connected component interfere, and each surviving component is merged
// into a single resource by variable pinning. The subsequent
// out-of-pinned-SSA phase (package leung) then emits no move for any φ
// operand pinned to its φ's resource.
//
// The exact problem is NP-complete (the paper's companion report), so
// pruning is the greedy weight heuristic of BipartiteGraph_pruning:
// edges whose endpoints have many interfering neighbours are deleted
// first. Merging re-checks interference incrementally, guaranteeing that
// no new interference is ever created (the paper's Condition 2) even
// when the weight heuristic under-approximates long-range conflicts.
package coalesce

import (
	"sort"

	"outofssa/internal/analysis"
	"outofssa/internal/cfg"
	"outofssa/internal/interference"
	"outofssa/internal/ir"
	"outofssa/internal/pin"
)

// Options selects the algorithm variant (paper Table 5).
type Options struct {
	// Mode is the interference precision: Exact for the base algorithm,
	// Optimistic/Pessimistic for the Algorithm 4 variants.
	Mode interference.Mode
	// DepthConstraint enables the Algorithm 3 variant: affinity edges are
	// grouped by the loop depth of the argument's definition and merged
	// in decreasing depth order, prioritizing the moves that would land
	// in the deepest loops.
	DepthConstraint bool
}

// Stats describes a coalescing run.
type Stats struct {
	// Gain is the total paper gain: φ argument slots pinned to the same
	// resource as their φ result.
	Gain int
	// PhiSlots is the total number of φ argument slots (gain upper bound).
	PhiSlots int
	// EdgesBuilt counts affinity edges created across all confluence
	// graphs; EdgesInterfering those removed by the initial pruning,
	// EdgesPruned those removed by the weighted greedy pruning, and
	// EdgesDeferred those skipped at merge time by the incremental
	// interference recheck.
	EdgesBuilt       int
	EdgesInterfering int
	EdgesPruned      int
	EdgesDeferred    int
	// Merges is the number of resource unions performed.
	Merges int
	// Interference snapshots the analysis query counters accumulated by
	// the pass (the tracer's view into the hot path).
	Interference interference.Counters
}

// ProgramPinning runs the paper's Algorithm 1 on f (pinned SSA form): an
// inner-to-outer traversal of the confluence points, coalescing the φ
// resources of each block. Definition pins are rewritten to the merged
// representatives (pin.RepinDefs), ready for the out-of-pinned-SSA phase.
func ProgramPinning(f *ir.Func, opt Options) (*Stats, error) {
	// The translator splits critical edges anyway; doing it first makes
	// the liveness this phase reasons about identical to the liveness the
	// translator will see.
	cfg.SplitCriticalEdges(f)
	cfg.ComputeLoopDepth(f)

	res, err := pin.NewResources(f)
	if err != nil {
		return nil, err
	}
	live := analysis.Liveness(f)
	dom := analysis.Dominators(f)
	an := interference.New(f, live, dom, opt.Mode)
	rg := interference.NewResourceGraph(an, res)

	st := &Stats{}

	// Inner-to-outer traversal: blocks ordered by decreasing loop depth
	// (ties broken by block ID for determinism).
	blocks := append([]*ir.Block(nil), f.Blocks()...)
	sort.SliceStable(blocks, func(i, j int) bool {
		if blocks[i].LoopDepth != blocks[j].LoopDepth {
			return blocks[i].LoopDepth > blocks[j].LoopDepth
		}
		return blocks[i].ID < blocks[j].ID
	})

	if opt.DepthConstraint {
		maxDepth := 0
		for _, b := range f.Blocks() {
			if b.LoopDepth > maxDepth {
				maxDepth = b.LoopDepth
			}
		}
		for d := maxDepth; d >= 0; d-- {
			for _, b := range blocks {
				if b.NumPhis() == 0 {
					continue
				}
				g := createAffinityGraph(b, res, rg, an, d)
				st.EdgesBuilt += len(g.edges)
				pinBlock(g, res, rg, st)
			}
		}
	} else {
		for _, b := range blocks {
			if b.NumPhis() == 0 {
				continue
			}
			g := createAffinityGraph(b, res, rg, an, -1)
			st.EdgesBuilt += len(g.edges)
			pinBlock(g, res, rg, st)
		}
	}

	// Residual sweep: the weight heuristic deletes affinity edges that can
	// turn out to be safely mergeable once the rest of the graph has been
	// decided (pruning is per-block and pessimistic about neighbours).
	// Re-attempt every uncoalesced φ slot, deepest blocks first, until no
	// merge succeeds; each union removes at least one move and the
	// incremental interference check keeps Condition 2 intact.
	for {
		merged := false
		for _, b := range blocks {
			for _, phi := range b.Phis() {
				x := res.Find(phi.Def(0))
				for _, u := range phi.Uses() {
					if rg.KilledSet(u.Val).Has(int(u.Val)) {
						continue // repaired argument: nothing to gain
					}
					a := res.Find(u.Val)
					if a == x || rg.Interfere(a, x) {
						continue
					}
					if _, err := res.Union(a, x); err != nil {
						continue
					}
					x = res.Find(phi.Def(0))
					st.Merges++
					merged = true
				}
			}
		}
		if !merged {
			break
		}
	}

	// Materialize the final classes as definition pins, once (§3.5).
	pin.RepinDefs(f, res)

	// Final gain accounting: a slot only saves its move when the argument
	// shares the φ's resource AND still reaches the φ point in it (not
	// through a repair variable).
	for _, b := range f.Blocks() {
		for _, phi := range b.Phis() {
			x := res.Find(phi.Def(0))
			for _, u := range phi.Uses() {
				st.PhiSlots++
				if res.Find(u.Val) == x && !rg.KilledSet(x).Has(int(u.Val)) {
					st.Gain++
				}
			}
		}
	}
	st.Interference = an.Counters()
	return st, nil
}

// graph is the affinity multigraph of one confluence point: vertices are
// resources (represented by their current root), edges carry the copy
// multiplicity between a φ-def resource and a φ-arg resource.
type graph struct {
	verts []ir.ValueID
	edges []*edge
}

type edge struct {
	def, arg ir.ValueID // resource roots at graph construction time
	mult     int
	weight   int
	deleted  bool
}

// createAffinityGraph implements Create_affinity_graph (Algorithms 2-3).
// depth < 0 means no depth constraint; otherwise only arguments whose
// definition lives at the given loop depth contribute edges.
//
// A φ argument already killed within its own resource contributes no
// edge: its value reaches the φ point through a repair variable, so the
// replacement move is emitted regardless of pinning — coalescing such a
// slot has zero gain and would only import the argument's conflicts into
// the φ's class (this refinement keeps e.g. a φ over two call results
// from being dragged into R0's class for nothing).
func createAffinityGraph(b *ir.Block, res *pin.Resources, rg *interference.ResourceGraph, an *interference.Analysis, depth int) *graph {
	g := &graph{}
	seen := make(map[ir.ValueID]bool)
	addVert := func(v ir.ValueID) ir.ValueID {
		r := res.Find(v)
		if !seen[r] {
			seen[r] = true
			g.verts = append(g.verts, r)
		}
		return r
	}
	findEdge := func(d, a ir.ValueID) *edge {
		for _, e := range g.edges {
			if e.def == d && e.arg == a {
				return e
			}
		}
		return nil
	}
	// Resource_killed sets are memoized inside the graph (generation-
	// keyed), so repeated probes per root cost a map hit.
	isKilled := func(v ir.ValueID) bool {
		return rg.KilledSet(v).Has(int(v))
	}
	for _, phi := range b.Phis() {
		rX := addVert(phi.Def(0))
		for _, u := range phi.Uses() {
			if depth >= 0 {
				def := an.Def(u.Val)
				if def == nil || def.Block().LoopDepth != depth {
					continue
				}
			}
			if isKilled(u.Val) {
				continue // repair move is unavoidable: no gain possible
			}
			rx := addVert(u.Val)
			if rx == rX {
				continue // already coalesced
			}
			e := findEdge(rX, rx)
			if e == nil {
				e = &edge{def: rX, arg: rx}
				g.edges = append(g.edges, e)
			}
			e.mult++
		}
	}
	return g
}

// pinBlock prunes the graph (Graph_InitialPruning + BipartiteGraph_
// pruning) and merges the surviving connected components
// (PrunedGraph_pinning), re-checking interference before each union.
func pinBlock(g *graph, res *pin.Resources, rg *interference.ResourceGraph, st *Stats) {
	// Initial pruning: drop edges whose endpoints interfere.
	for _, e := range g.edges {
		if rg.Interfere(e.def, e.arg) {
			e.deleted = true
			st.EdgesInterfering++
		}
	}

	// Weight evaluation: for every pair of live edges sharing a vertex,
	// an endpoint interfering with the pair's other endpoint adds the
	// sibling's multiplicity.
	liveEdges := func() []*edge {
		var out []*edge
		for _, e := range g.edges {
			if !e.deleted {
				out = append(out, e)
			}
		}
		return out
	}
	edges := liveEdges()
	for _, e := range edges {
		e.weight = 0
	}
	for i := 0; i < len(edges); i++ {
		for j := i + 1; j < len(edges); j++ {
			e1, e2 := edges[i], edges[j]
			var common, o1, o2 ir.ValueID
			switch {
			case e1.def == e2.def:
				common, o1, o2 = e1.def, e1.arg, e2.arg
			case e1.arg == e2.arg:
				common, o1, o2 = e1.arg, e1.def, e2.def
			case e1.def == e2.arg:
				common, o1, o2 = e1.def, e1.arg, e2.def
			case e1.arg == e2.def:
				common, o1, o2 = e1.arg, e1.def, e2.arg
			default:
				continue
			}
			_ = common
			if o1 != o2 && rg.Interfere(o1, o2) {
				e1.weight += e2.mult
				e2.weight += e1.mult
			}
		}
	}

	// Greedy pruning in decreasing weight order, updating neighbours.
	for {
		var ep *edge
		for _, e := range edges {
			if e.deleted || e.weight <= 0 {
				continue
			}
			if ep == nil || e.weight > ep.weight {
				ep = e
			}
		}
		if ep == nil {
			break
		}
		ep.deleted = true
		st.EdgesPruned++
		for _, e := range edges {
			if e.deleted {
				continue
			}
			if e.def == ep.def || e.arg == ep.def || e.def == ep.arg || e.arg == ep.arg {
				e.weight -= ep.mult
			}
		}
	}

	// Merge the surviving edges, largest multiplicity first; the
	// incremental recheck guarantees Condition 2 against long-range
	// interferences the weights cannot see.
	remaining := liveEdges()
	f := res.Func()
	isPhysEdge := func(e *edge) bool {
		return f.IsPhys(res.Find(e.def)) || f.IsPhys(res.Find(e.arg))
	}
	sort.SliceStable(remaining, func(i, j int) bool {
		// Virtual-virtual merges first: joining a dedicated register's
		// class is maximally constraining (every later candidate must
		// tolerate all of the register's occupancies), so those edges go
		// last at equal multiplicity.
		pi, pj := isPhysEdge(remaining[i]), isPhysEdge(remaining[j])
		if pi != pj {
			return !pi
		}
		if remaining[i].mult != remaining[j].mult {
			return remaining[i].mult > remaining[j].mult
		}
		if remaining[i].def != remaining[j].def {
			return remaining[i].def < remaining[j].def
		}
		return remaining[i].arg < remaining[j].arg
	})
	for _, e := range remaining {
		a, b := res.Find(e.def), res.Find(e.arg)
		if a == b {
			continue
		}
		if rg.Interfere(a, b) {
			st.EdgesDeferred++
			continue
		}
		if _, err := res.Union(a, b); err != nil {
			// Two physical resources — interference should have caught
			// this; treat as a deferred edge.
			st.EdgesDeferred++
			continue
		}
		st.Merges++
	}
}
