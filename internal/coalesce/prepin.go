package coalesce

import (
	"outofssa/internal/analysis"
	"outofssa/internal/cfg"
	"outofssa/internal/interference"
	"outofssa/internal/ir"
	"outofssa/internal/pin"
)

// PrePinStats reports what PrePinDefs did.
type PrePinStats struct {
	// DefsPinned is the number of definitions merged into the resource of
	// one of their pinned uses.
	DefsPinned int
	// Skipped counts candidate (def, use-pin) pairs rejected because the
	// merge would have created an interference.
	Skipped int
	// Interference snapshots the analysis query counters accumulated by
	// the pass (the tracer's view into the hot path).
	Interference interference.Counters
}

// PrePinDefs implements the pre-pass the paper suggests for limitation
// [LIM2]: "when the use of a variable is pinned to a resource, [Leung and
// George's algorithm] does not try to coalesce its definition with this
// resource. This can be avoided by using a pre-pass to pin the variable
// definitions."
//
// For every use operand pinned to a resource R (2-operand ties, ABI
// argument slots), the used variable's definition is pinned to R when the
// merge creates no new interference — exactly the Condition-2 discipline
// of Program_pinning. The move the reconstruction would insert before the
// constrained instruction then disappears.
//
// Candidates are visited innermost-loop first, like the main algorithm,
// so contended resources go to the most frequently executed sites.
func PrePinDefs(f *ir.Func, mode interference.Mode) (*PrePinStats, error) {
	cfg.SplitCriticalEdges(f)
	cfg.ComputeLoopDepth(f)

	res, err := pin.NewResources(f)
	if err != nil {
		return nil, err
	}
	live := analysis.Liveness(f)
	dom := analysis.Dominators(f)
	an := interference.New(f, live, dom, mode)
	rg := interference.NewResourceGraph(an, res)

	blocks := append([]*ir.Block(nil), f.Blocks()...)
	for i := 1; i < len(blocks); i++ {
		for j := i; j > 0 && deeperFirst(blocks[j], blocks[j-1]); j-- {
			blocks[j], blocks[j-1] = blocks[j-1], blocks[j]
		}
	}

	st := &PrePinStats{}
	for _, b := range blocks {
		for _, in := range b.Instrs() {
			if in.Op() == ir.Phi {
				continue // φ argument affinities belong to ProgramPinning
			}
			for _, u := range in.Uses() {
				if !u.Pinned() {
					continue
				}
				v := u.Val
				want := res.Find(u.Pin())
				if f.IsPhys(want) {
					// Joining a dedicated register's class wholesale is a
					// bad trade: it blocks later φ merges against the whole
					// class. Physical slots keep their local move (or are
					// picked up by the φ coalescer when genuinely free).
					continue
				}
				if res.Find(v) == want {
					continue
				}
				// The value must not be killed in its own resource at this
				// point (then the repair move is unavoidable anyway), and
				// merging must not create a new interference.
				if rg.KilledSet(v).Has(int(v)) || rg.Interfere(v, want) {
					st.Skipped++
					continue
				}
				if _, err := res.Union(v, want); err != nil {
					st.Skipped++
					continue
				}
				st.DefsPinned++
			}
		}
	}
	pin.RepinDefs(f, res)
	st.Interference = an.Counters()
	return st, nil
}

func deeperFirst(a, b *ir.Block) bool {
	if a.LoopDepth != b.LoopDepth {
		return a.LoopDepth > b.LoopDepth
	}
	return a.ID < b.ID
}
