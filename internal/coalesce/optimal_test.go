package coalesce_test

import (
	"testing"

	"outofssa/internal/cfg"
	"outofssa/internal/coalesce"
	"outofssa/internal/interference"
	"outofssa/internal/ir"
	"outofssa/internal/liveness"
	"outofssa/internal/pin"
	"outofssa/internal/ssa"
	"outofssa/internal/testprog"
	"outofssa/internal/workload"
)

// slot is one φ argument position that could be coalesced.
type slot struct{ def, arg ir.ValueID }

// collectSlots gathers the coalescable φ slots of f (arguments not
// already killed within their resource).
func collectSlots(f *ir.Func, rg *interference.ResourceGraph, res *pin.Resources) []slot {
	var out []slot
	for _, b := range f.Blocks() {
		for _, phi := range b.Phis() {
			for _, u := range phi.Uses() {
				if u.Val == phi.Def(0) {
					continue
				}
				if rg.Killed(res.Find(u.Val))[u.Val] {
					continue
				}
				out = append(out, slot{phi.Def(0), u.Val})
			}
		}
	}
	return out
}

// gainOf evaluates the total gain of attempting exactly the slots in
// subset (bitmask), merging in slot order with the incremental
// interference check; infeasible merges simply fail (mirroring the
// deferred-edge behaviour of the real algorithm).
func gainOf(f *ir.Func, an *interference.Analysis, slots []slot, subset uint) int {
	res, err := pin.NewResources(f)
	if err != nil {
		return -1
	}
	rg := interference.NewResourceGraph(an, res)
	for i, s := range slots {
		if subset&(1<<uint(i)) == 0 {
			continue
		}
		a, d := res.Find(s.arg), res.Find(s.def)
		if a == d || rg.Interfere(a, d) {
			continue
		}
		_, _ = res.Union(a, d)
	}
	gain := 0
	for _, s := range slots {
		if res.Find(s.arg) == res.Find(s.def) && !rg.Killed(res.Find(s.def))[s.arg] {
			gain++
		}
	}
	return gain
}

// TestGreedyVsOptimal: the paper proves the pruning problem NP-complete
// and uses a greedy heuristic; this ablation enumerates every subset of
// coalescable slots on small functions and checks the greedy result is
// optimal or within one slot of it.
func TestGreedyVsOptimal(t *testing.T) {
	var funcs []*ir.Func
	for _, f := range workload.VALcc1().Funcs {
		funcs = append(funcs, f)
	}
	for seed := int64(0); seed < 10; seed++ {
		funcs = append(funcs, testprog.Rand(seed, testprog.DefaultRandOptions()))
	}

	checked := 0
	var totalGreedy, totalOptimal int
	for _, f := range funcs {
		info := ssa.MustBuild(f)
		pin.CollectSP(f, info)
		pin.CollectABI(f)
		// Normalize the CFG exactly as ProgramPinning will see it.
		cfg.SplitCriticalEdges(f)
		cfg.ComputeLoopDepth(f)

		res, err := pin.NewResources(f)
		if err != nil {
			t.Fatal(err)
		}
		live := liveness.Compute(f)
		an := interference.New(f, live, cfg.Dominators(f), interference.Exact)
		rg := interference.NewResourceGraph(an, res)
		slots := collectSlots(f, rg, res)
		if len(slots) == 0 || len(slots) > 14 {
			continue // trivial, or 2^n too large for exhaustion
		}
		checked++

		optimal := 0
		for subset := uint(0); subset < 1<<uint(len(slots)); subset++ {
			if g := gainOf(f, an, slots, subset); g > optimal {
				optimal = g
			}
		}

		g := f.Clone()
		st, err := coalesce.ProgramPinning(g, coalesce.Options{})
		if err != nil {
			t.Fatal(err)
		}
		totalGreedy += st.Gain
		totalOptimal += optimal
		if st.Gain > optimal {
			t.Errorf("%s: greedy gain %d exceeds exhaustive optimum %d — metric broken",
				f.Name, st.Gain, optimal)
		}
		if st.Gain < optimal-1 {
			t.Errorf("%s: greedy gain %d far below optimum %d (slots %d)",
				f.Name, st.Gain, optimal, len(slots))
		}
	}
	if checked < 10 {
		t.Fatalf("only %d functions small enough for exhaustion — widen the corpus", checked)
	}
	if totalGreedy < totalOptimal*9/10 {
		t.Errorf("aggregate greedy %d below 90%% of optimal %d", totalGreedy, totalOptimal)
	}
	t.Logf("exhaustively checked %d functions: greedy %d vs optimal %d slots",
		checked, totalGreedy, totalOptimal)
}
