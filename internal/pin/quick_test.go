package pin_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"outofssa/internal/ir"
	"outofssa/internal/pin"
)

// TestResourcesQuick checks the union-find against a naive map-based
// model under random operation sequences, including the physical-root
// invariants.
func TestResourcesQuick(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := ir.NewFunc("q")
		var vals []ir.ValueID
		for i := 0; i < 12; i++ {
			vals = append(vals, f.NewValue(""))
		}
		vals = append(vals, f.Target.R[0], f.Target.R[1], f.Target.SP)

		res, err := pin.NewResources(f)
		if err != nil {
			return false
		}
		// Model: class id per value.
		model := make(map[ir.ValueID]int)
		for i, v := range vals {
			model[v] = i
		}
		classPhys := func(c int) ir.ValueID {
			for v, cv := range model {
				if cv == c && f.IsPhys(v) {
					return v
				}
			}
			return ir.NoValue
		}
		for op := 0; op < 60; op++ {
			a := vals[rng.Intn(len(vals))]
			b := vals[rng.Intn(len(vals))]
			pa, pb := classPhys(model[a]), classPhys(model[b])
			_, err := res.Union(a, b)
			wantErr := pa != ir.NoValue && pb != ir.NoValue && pa != pb
			if wantErr != (err != nil) {
				return false
			}
			if err == nil {
				// Merge in the model.
				ca, cb := model[a], model[b]
				for v, c := range model {
					if c == cb {
						model[v] = ca
					}
				}
			}
			// Invariants after every op.
			for _, x := range vals {
				for _, y := range vals {
					if (model[x] == model[y]) != res.Same(x, y) {
						return false
					}
				}
				root := res.Find(x)
				if p := classPhys(model[x]); p != ir.NoValue {
					if root != p {
						return false // physical register must be the representative
					}
				} else if f.IsPhys(root) {
					return false
				}
				// Members must be exactly the model class.
				m := res.Members(x)
				count := 0
				for _, v := range vals {
					if model[v] == model[x] {
						count++
					}
				}
				if len(m) != count {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
