package pin

import (
	"outofssa/internal/ir"
	"outofssa/internal/ssa"
)

// CollectSP pins every SSA value renamed from a dedicated register back
// to that register (the paper's pinningSP phase, run unconditionally:
// "it was not possible to ignore those renaming constraints during the
// out-of-SSA phase and to treat them afterwards").
//
// Only the definitions are pinned; φ webs over SP-derived values then
// join SP's resource transitively.
func CollectSP(f *ir.Func, info *ssa.Info) {
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			for i := 0; i < in.NumDefs(); i++ {
				d := in.DefOp(i)
				if d.Pinned() {
					continue
				}
				if phys := info.OrigPhys(d.Val); phys != ir.NoValue {
					in.SetDefPin(i, phys)
				}
			}
		}
	}
}

// CollectABI pins operands according to the ST120-like ABI and ISA
// renaming constraints (the paper's pinningABI phase, Fig. 1):
//
//   - .input parameter i is defined in ArgRegs[i];
//   - .output result i is read from RetRegs[i];
//   - call argument i is read from ArgRegs[i], call result i is defined
//     in RetRegs[i];
//   - 2-operand instructions (more, autoadd, mac) read their first source
//     from the resource of their destination.
//
// Parameters beyond the register-passed ones are left unpinned (they
// would live on the stack).
func CollectABI(f *ir.Func) {
	t := f.Target
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			switch {
			case in.Op() == ir.Input:
				// Imm records the declared parameter count; implicit defs
				// added by SSA construction (including SP) are not
				// parameters.
				n := int(in.Imm)
				for i := 0; i < n && i < len(t.ArgRegs) && i < in.NumDefs(); i++ {
					if !in.DefOp(i).Pinned() {
						in.SetDefPin(i, t.ArgRegs[i])
					}
				}
			case in.Op() == ir.Output:
				for i := 0; i < in.NumUses(); i++ {
					if i < len(t.RetRegs) && !in.UseOp(i).Pinned() {
						in.SetUsePin(i, t.RetRegs[i])
					}
				}
			case in.Op() == ir.Call:
				for i := 0; i < in.NumUses(); i++ {
					if i < len(t.ArgRegs) && !in.UseOp(i).Pinned() {
						in.SetUsePin(i, t.ArgRegs[i])
					}
				}
				for i := 0; i < in.NumDefs(); i++ {
					if i < len(t.RetRegs) && !in.DefOp(i).Pinned() {
						in.SetDefPin(i, t.RetRegs[i])
					}
				}
			case in.Op().IsTwoOperand():
				// Pin the tied source to the destination's resource: the
				// def's existing pin if any, else the defined value itself
				// (paper Fig. 1 S1: autoadd Q^Q, P^Q).
				dst := in.DefOp(0).Pin()
				if dst == ir.NoValue {
					dst = in.Def(0)
				}
				if !in.UseOp(0).Pinned() {
					in.SetUsePin(0, dst)
				}
			}
		}
	}
}

// StrongChecker reports whether two values must never share a resource
// (strong interference); interference.Analysis.StronglyInterfere
// satisfies it.
type StrongChecker interface {
	StronglyInterfere(a, b ir.ValueID) bool
}

// CollectPhiCSSA pins, for every φ, the definitions of the φ result and
// of every φ argument to a common resource (the paper's pinningCSSA
// phase). The input should be in conventional SSA form — φ operands not
// interfering — otherwise the resulting pinned code is over-constrained
// in exactly the way Fig. 2 warns about; it is used to turn the
// out-of-pinned-SSA phase into an out-of-CSSA phase after Sreedhar's
// algorithm has inserted its copies.
//
// Renaming constraints collected earlier (SP, ABI) may make a web union
// illegal: merging two dedicated registers, or merging classes holding
// strongly interfering variables (e.g. two φ results of one block both
// holding call results pinned to R0). Such slots are left unpinned — the
// out-of-pinned-SSA phase then emits a move for them, which is the cost
// of treating the ABI separately from φ congruence ([CS3]). Pass a nil
// checker to skip the strong-interference test.
//
// Def pins are rewritten through the union-find so every member of a φ
// web ends up pinned to the web's representative. Returns the resources
// and the number of slots left unpinned.
func CollectPhiCSSA(f *ir.Func, strong StrongChecker) (*Resources, int, error) {
	res, err := NewResources(f)
	if err != nil {
		return nil, 0, err
	}
	unpinned := 0
	canMerge := func(a, b ir.ValueID) bool {
		ra, rb := res.Find(a), res.Find(b)
		if ra == rb {
			return true
		}
		if f.IsPhys(ra) && f.IsPhys(rb) {
			return false
		}
		if strong == nil {
			return true
		}
		for _, ma := range res.Members(ra) {
			if f.IsPhys(ma) {
				continue
			}
			for _, mb := range res.Members(rb) {
				if f.IsPhys(mb) {
					continue
				}
				if strong.StronglyInterfere(ma, mb) {
					return false
				}
			}
		}
		return true
	}
	for _, b := range f.Blocks() {
		for _, phi := range b.Phis() {
			x := phi.Def(0)
			for _, u := range phi.Uses() {
				if !canMerge(x, u.Val) {
					unpinned++
					continue
				}
				if _, err := res.Union(x, u.Val); err != nil {
					return nil, 0, err
				}
			}
		}
	}
	// Materialize the classes as definition pins.
	RepinDefs(f, res)
	return res, unpinned, nil
}

// RepinDefs rewrites every definition pin (and every use pin that names a
// merged resource) to the current class representative, and pins every
// value belonging to a multi-member class. This is the "update of pinning
// performed only once, just before the mark phase" of §3.5.
func RepinDefs(f *ir.Func, res *Resources) {
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			for i := 0; i < in.NumDefs(); i++ {
				d := in.DefOp(i)
				root := res.Find(d.Val)
				if root != d.Val {
					in.SetDefPin(i, root)
				} else if d.Pinned() {
					in.SetDefPin(i, root) // self-rooted: drop stale pin names
				}
			}
			for i := 0; i < in.NumUses(); i++ {
				if u := in.UseOp(i); u.Pinned() {
					in.SetUsePin(i, res.Find(u.Pin()))
				}
			}
		}
	}
}
