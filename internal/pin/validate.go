package pin

import (
	"fmt"

	"outofssa/internal/ir"
)

// Validate checks the pin-correctness rules of the paper's Figure 4 on a
// pinned SSA function:
//
//	Case 1: two definitions of one instruction pinned to the same
//	        resource (unless they are the same variable);
//	Case 2: two uses of one instruction pinned to the same resource but
//	        carrying different values;
//	Case 3: two φ definitions in the same block pinned to the same
//	        resource (φs execute in parallel);
//	Case 4: a def and a use of the same instruction sharing a resource is
//	        ALLOWED (2-operand constraint);
//	Case 5: a φ argument explicitly pinned to a resource different from
//	        the φ result's resource (all φ arguments are implicitly
//	        pinned to the result's resource);
//	Case 6 (Fig. 2): handled by the strong-interference analysis, not
//	        here — over-constrained parallel φ webs are detected when
//	        resources are interference-checked.
func Validate(f *ir.Func, res *Resources) error {
	resOf := func(o ir.Operand) ir.ValueID {
		if o.Pinned() {
			return res.Find(o.Pin())
		}
		return res.Find(o.Val)
	}
	for _, b := range f.Blocks() {
		// Case 3: φ defs of one block.
		seen := make(map[ir.ValueID]*ir.Instr)
		for _, phi := range b.Phis() {
			r := resOf(phi.DefOp(0))
			if prev, ok := seen[r]; ok {
				return fmt.Errorf("%s: φ defs %q and %q in %v pinned to common resource %v (Fig.4 case 3)",
					f.Name, prev, phi, b, f.VStr(r))
			}
			seen[r] = phi
		}
		for _, in := range b.Instrs() {
			// Case 1: defs of one instruction.
			for i := 0; i < in.NumDefs(); i++ {
				for j := i + 1; j < in.NumDefs(); j++ {
					if in.Def(i) != in.Def(j) &&
						resOf(in.DefOp(i)) == resOf(in.DefOp(j)) {
						return fmt.Errorf("%s: defs %v and %v of %q pinned to common resource (Fig.4 case 1)",
							f.Name, f.VStr(in.Def(i)), f.VStr(in.Def(j)), in)
					}
				}
			}
			// Case 2: uses of one instruction. Only explicitly pinned uses
			// are constrained to be *in* the resource at the same time.
			for i := 0; i < in.NumUses(); i++ {
				if !in.UseOp(i).Pinned() {
					continue
				}
				for j := i + 1; j < in.NumUses(); j++ {
					if !in.UseOp(j).Pinned() {
						continue
					}
					if in.Use(i) != in.Use(j) &&
						res.Find(in.UseOp(i).Pin()) == res.Find(in.UseOp(j).Pin()) {
						return fmt.Errorf("%s: uses %v and %v of %q pinned to common resource (Fig.4 case 2)",
							f.Name, f.VStr(in.Use(i)), f.VStr(in.Use(j)), in)
					}
				}
			}
			// Case 5: explicitly pinned φ argument disagreeing with the
			// φ result's resource.
			if in.Op() == ir.Phi {
				rdef := resOf(in.DefOp(0))
				for _, u := range in.Uses() {
					if u.Pinned() && res.Find(u.Pin()) != rdef {
						return fmt.Errorf("%s: φ arg %v pinned to %v but φ result resource is %v (Fig.4 case 5)",
							f.Name, f.VStr(u.Val), f.VStr(u.Pin()), f.VStr(rdef))
					}
				}
			}
		}
	}
	return nil
}
