package pin

import (
	"fmt"

	"outofssa/internal/ir"
)

// Validate checks the pin-correctness rules of the paper's Figure 4 on a
// pinned SSA function:
//
//	Case 1: two definitions of one instruction pinned to the same
//	        resource (unless they are the same variable);
//	Case 2: two uses of one instruction pinned to the same resource but
//	        carrying different values;
//	Case 3: two φ definitions in the same block pinned to the same
//	        resource (φs execute in parallel);
//	Case 4: a def and a use of the same instruction sharing a resource is
//	        ALLOWED (2-operand constraint);
//	Case 5: a φ argument explicitly pinned to a resource different from
//	        the φ result's resource (all φ arguments are implicitly
//	        pinned to the result's resource);
//	Case 6 (Fig. 2): handled by the strong-interference analysis, not
//	        here — over-constrained parallel φ webs are detected when
//	        resources are interference-checked.
func Validate(f *ir.Func, res *Resources) error {
	resOf := func(o ir.Operand) *ir.Value {
		if o.Pin != nil {
			return res.Find(o.Pin)
		}
		return res.Find(o.Val)
	}
	for _, b := range f.Blocks {
		// Case 3: φ defs of one block.
		seen := make(map[*ir.Value]*ir.Instr)
		for _, phi := range b.Phis() {
			r := resOf(phi.Defs[0])
			if prev, ok := seen[r]; ok {
				return fmt.Errorf("%s: φ defs %q and %q in %v pinned to common resource %v (Fig.4 case 3)",
					f.Name, prev, phi, b, r)
			}
			seen[r] = phi
		}
		for _, in := range b.Instrs {
			// Case 1: defs of one instruction.
			for i := 0; i < len(in.Defs); i++ {
				for j := i + 1; j < len(in.Defs); j++ {
					if in.Defs[i].Val != in.Defs[j].Val &&
						resOf(in.Defs[i]) == resOf(in.Defs[j]) {
						return fmt.Errorf("%s: defs %v and %v of %q pinned to common resource (Fig.4 case 1)",
							f.Name, in.Defs[i].Val, in.Defs[j].Val, in)
					}
				}
			}
			// Case 2: uses of one instruction. Only explicitly pinned uses
			// are constrained to be *in* the resource at the same time.
			for i := 0; i < len(in.Uses); i++ {
				if in.Uses[i].Pin == nil {
					continue
				}
				for j := i + 1; j < len(in.Uses); j++ {
					if in.Uses[j].Pin == nil {
						continue
					}
					if in.Uses[i].Val != in.Uses[j].Val &&
						res.Find(in.Uses[i].Pin) == res.Find(in.Uses[j].Pin) {
						return fmt.Errorf("%s: uses %v and %v of %q pinned to common resource (Fig.4 case 2)",
							f.Name, in.Uses[i].Val, in.Uses[j].Val, in)
					}
				}
			}
			// Case 5: explicitly pinned φ argument disagreeing with the
			// φ result's resource.
			if in.Op == ir.Phi {
				rdef := resOf(in.Defs[0])
				for _, u := range in.Uses {
					if u.Pin != nil && res.Find(u.Pin) != rdef {
						return fmt.Errorf("%s: φ arg %v pinned to %v but φ result resource is %v (Fig.4 case 5)",
							f.Name, u.Val, u.Pin, rdef)
					}
				}
			}
		}
	}
	return nil
}
