// Package pin implements the paper's pinning mechanism (§2.1): operands
// are pre-colored to resources, where a resource is either a dedicated
// physical register or a virtual register standing for an equivalence
// class of variables pinned together.
//
// Variable pinning (pinning a definition) merges the variable into the
// resource's class; the Resources union-find tracks these classes. Use
// pinning (ABI argument slots, 2-operand reads) constrains only the
// textual occurrence and is read directly from ir.Operand pins by the
// reconstruction phase.
package pin

import (
	"fmt"
	"sort"

	"outofssa/internal/ir"
)

// Resources is a union-find over the values of a function, where each
// class is a resource: the set of variables pinned together, possibly
// anchored by one dedicated physical register.
type Resources struct {
	fn      *ir.Func
	parent  []ir.ValueID
	rank    []int
	members map[ir.ValueID][]ir.ValueID // root -> member values

	// gen counts class-changing operations (successful Unions). Resource-
	// level interference verdicts are memoized against it: a verdict
	// recorded at generation g stays valid exactly until the next merge,
	// since Union is the only operation that changes any class's member
	// set (new values admitted by grow start as singletons and cannot
	// retroactively change an existing class).
	gen uint64
}

// Gen returns the class-mutation generation counter. Two calls returning
// the same value guarantee no class was merged in between.
func (r *Resources) Gen() uint64 { return r.gen }

// Func returns the function whose values the classes partition.
func (r *Resources) Func() *ir.Func { return r.fn }

// NewResources builds the classes implied by the current definition pins
// of f: for every definition operand with a pin, the defined value joins
// the pin's class.
func NewResources(f *ir.Func) (*Resources, error) {
	r := &Resources{
		fn:      f,
		parent:  make([]ir.ValueID, f.NumValues()),
		rank:    make([]int, f.NumValues()),
		members: make(map[ir.ValueID][]ir.ValueID),
	}
	for i := range r.parent {
		r.parent[i] = ir.ValueID(i)
	}
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			for _, d := range in.Defs() {
				if !d.Pinned() {
					continue
				}
				if _, err := r.Union(d.Val, d.Pin()); err != nil {
					return nil, fmt.Errorf("%s: %q: %v", f.Name, in, err)
				}
			}
		}
	}
	return r, nil
}

// grow admits values created after the Resources was built (repair
// variables, parallel-copy temporaries); they start as singletons.
func (r *Resources) grow(id ir.ValueID) {
	for len(r.parent) <= int(id) {
		r.parent = append(r.parent, ir.ValueID(len(r.parent)))
		r.rank = append(r.rank, 0)
	}
}

// Find returns the representative value of v's resource. Physical
// registers are always their class's representative.
func (r *Resources) Find(v ir.ValueID) ir.ValueID {
	r.grow(v)
	for r.parent[v] != v {
		r.parent[v] = r.parent[r.parent[v]]
		v = r.parent[v]
	}
	return v
}

// Same reports whether a and b are pinned to the same resource.
func (r *Resources) Same(a, b ir.ValueID) bool {
	return r.Find(a) == r.Find(b)
}

// Union merges the resources of a and b and returns the representative.
// Merging two classes that both contain a physical register is an error
// (two distinct dedicated registers always strongly interfere).
func (r *Resources) Union(a, b ir.ValueID) (ir.ValueID, error) {
	ra, rb := r.Find(a), r.Find(b)
	if ra == rb {
		return ra, nil
	}
	f := r.fn
	if f.IsPhys(ra) && f.IsPhys(rb) {
		return ir.NoValue, fmt.Errorf("pin: cannot merge physical registers %s and %s", f.VStr(ra), f.VStr(rb))
	}
	// The physical register, if any, must be the root so Find reports it.
	switch {
	case f.IsPhys(rb):
		ra, rb = rb, ra
	case f.IsPhys(ra):
		// keep
	case r.rank[ra] < r.rank[rb]:
		ra, rb = rb, ra
	}
	r.parent[rb] = ra
	if r.rank[ra] == r.rank[rb] {
		r.rank[ra]++
	}
	ma := r.members[ra]
	if ma == nil {
		ma = []ir.ValueID{ra}
	}
	mb := r.members[rb]
	if mb == nil {
		mb = []ir.ValueID{rb}
	}
	r.members[ra] = append(ma, mb...)
	delete(r.members, rb)
	r.gen++
	return ra, nil
}

// Members returns every value in v's resource class, in ID order.
// Singleton classes return just the value itself.
func (r *Resources) Members(v ir.ValueID) []ir.ValueID {
	root := r.Find(v)
	m := r.members[root]
	if m == nil {
		return []ir.ValueID{root}
	}
	out := append([]ir.ValueID(nil), m...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsPhysResource reports whether v's resource contains a dedicated
// register.
func (r *Resources) IsPhysResource(v ir.ValueID) bool {
	return r.fn.IsPhys(r.Find(v))
}

// Roots returns the representative of every multi-member or pinned class,
// plus singletons on demand; used by tests.
func (r *Resources) Roots() []ir.ValueID {
	var out []ir.ValueID
	for id := range r.members {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
