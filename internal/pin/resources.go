// Package pin implements the paper's pinning mechanism (§2.1): operands
// are pre-colored to resources, where a resource is either a dedicated
// physical register or a virtual register standing for an equivalence
// class of variables pinned together.
//
// Variable pinning (pinning a definition) merges the variable into the
// resource's class; the Resources union-find tracks these classes. Use
// pinning (ABI argument slots, 2-operand reads) constrains only the
// textual occurrence and is read directly from ir.Operand.Pin by the
// reconstruction phase.
package pin

import (
	"fmt"
	"sort"

	"outofssa/internal/ir"
)

// Resources is a union-find over the values of a function, where each
// class is a resource: the set of variables pinned together, possibly
// anchored by one dedicated physical register.
type Resources struct {
	fn      *ir.Func
	parent  []int
	rank    []int
	members map[int][]*ir.Value // root ID -> member values

	// gen counts class-changing operations (successful Unions). Resource-
	// level interference verdicts are memoized against it: a verdict
	// recorded at generation g stays valid exactly until the next merge,
	// since Union is the only operation that changes any class's member
	// set (new values admitted by grow start as singletons and cannot
	// retroactively change an existing class).
	gen uint64
}

// Gen returns the class-mutation generation counter. Two calls returning
// the same value guarantee no class was merged in between.
func (r *Resources) Gen() uint64 { return r.gen }

// NewResources builds the classes implied by the current definition pins
// of f: for every definition operand with Pin != nil, the defined value
// joins the pin's class.
func NewResources(f *ir.Func) (*Resources, error) {
	r := &Resources{
		fn:      f,
		parent:  make([]int, f.NumValues()),
		rank:    make([]int, f.NumValues()),
		members: make(map[int][]*ir.Value),
	}
	for i := range r.parent {
		r.parent[i] = i
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, d := range in.Defs {
				if d.Pin == nil {
					continue
				}
				if _, err := r.Union(d.Val, d.Pin); err != nil {
					return nil, fmt.Errorf("%s: %q: %v", f.Name, in, err)
				}
			}
		}
	}
	return r, nil
}

// grow admits values created after the Resources was built (repair
// variables, parallel-copy temporaries); they start as singletons.
func (r *Resources) grow(id int) {
	for len(r.parent) <= id {
		r.parent = append(r.parent, len(r.parent))
		r.rank = append(r.rank, 0)
	}
}

func (r *Resources) find(id int) int {
	r.grow(id)
	for r.parent[id] != id {
		r.parent[id] = r.parent[r.parent[id]]
		id = r.parent[id]
	}
	return id
}

// Find returns the representative value of v's resource. Physical
// registers are always their class's representative.
func (r *Resources) Find(v *ir.Value) *ir.Value {
	return r.fn.Values()[r.find(v.ID)]
}

// Same reports whether a and b are pinned to the same resource.
func (r *Resources) Same(a, b *ir.Value) bool {
	return r.find(a.ID) == r.find(b.ID)
}

// Union merges the resources of a and b and returns the representative.
// Merging two classes that both contain a physical register is an error
// (two distinct dedicated registers always strongly interfere).
func (r *Resources) Union(a, b *ir.Value) (*ir.Value, error) {
	ra, rb := r.find(a.ID), r.find(b.ID)
	if ra == rb {
		return r.fn.Values()[ra], nil
	}
	va, vb := r.fn.Values()[ra], r.fn.Values()[rb]
	if va.IsPhys() && vb.IsPhys() {
		return nil, fmt.Errorf("pin: cannot merge physical registers %v and %v", va, vb)
	}
	// The physical register, if any, must be the root so Find reports it.
	switch {
	case vb.IsPhys():
		ra, rb = rb, ra
	case va.IsPhys():
		// keep
	case r.rank[ra] < r.rank[rb]:
		ra, rb = rb, ra
	}
	r.parent[rb] = ra
	if r.rank[ra] == r.rank[rb] {
		r.rank[ra]++
	}
	ma := r.members[ra]
	if ma == nil {
		ma = []*ir.Value{r.fn.Values()[ra]}
	}
	mb := r.members[rb]
	if mb == nil {
		mb = []*ir.Value{r.fn.Values()[rb]}
	}
	r.members[ra] = append(ma, mb...)
	delete(r.members, rb)
	r.gen++
	return r.fn.Values()[ra], nil
}

// Members returns every value in v's resource class, in ID order.
// Singleton classes return just the value itself.
func (r *Resources) Members(v *ir.Value) []*ir.Value {
	root := r.find(v.ID)
	m := r.members[root]
	if m == nil {
		return []*ir.Value{r.fn.Values()[root]}
	}
	out := append([]*ir.Value(nil), m...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// IsPhysResource reports whether v's resource contains a dedicated
// register.
func (r *Resources) IsPhysResource(v *ir.Value) bool {
	return r.Find(v).IsPhys()
}

// Roots returns the representative of every multi-member or pinned class,
// plus singletons on demand; used by tests.
func (r *Resources) Roots() []*ir.Value {
	var out []*ir.Value
	for id := range r.members {
		out = append(out, r.fn.Values()[id])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
