package pin_test

import (
	"testing"

	"outofssa/internal/ir"
	"outofssa/internal/pin"
	"outofssa/internal/ssa"
	"outofssa/internal/testprog"
)

func TestResourcesFromDefPins(t *testing.T) {
	bld := ir.NewBuilder("res")
	f := bld.Fn
	bld.Block("entry")
	a, b, c := bld.Val("a"), bld.Val("b"), bld.Val("c")
	in := bld.Input(a, b)
	ir.PinDef(in, 0, f.Target.R[0])
	bld.Binary(ir.Add, c, a, b)
	bld.Output(c)

	res, err := pin.NewResources(f)
	if err != nil {
		t.Fatal(err)
	}
	if res.Find(a) != f.Target.R[0] {
		t.Fatalf("a's resource = %v, want R0", res.Find(a))
	}
	if res.Find(b) != b || res.Find(c) != c {
		t.Fatal("unpinned values must be their own resource")
	}
	if !res.IsPhysResource(a) || res.IsPhysResource(b) {
		t.Fatal("IsPhysResource wrong")
	}
}

func TestUnionPhysicalConflict(t *testing.T) {
	f := ir.NewFunc("u")
	res, err := pin.NewResources(f)
	if err != nil {
		t.Fatal(err)
	}
	v := f.NewValue("v")
	if _, err := res.Union(v, f.Target.R[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := res.Union(v, f.Target.R[1]); err == nil {
		t.Fatal("merging R0 and R1 through v must fail")
	}
	// Physical register must be the representative.
	if res.Find(v) != f.Target.R[0] {
		t.Fatal("physical register must root its class")
	}
}

func TestMembersSorted(t *testing.T) {
	f := ir.NewFunc("m")
	res, _ := pin.NewResources(f)
	vs := []ir.ValueID{f.NewValue("x"), f.NewValue("y"), f.NewValue("z")}
	res.Union(vs[2], vs[0])
	res.Union(vs[1], vs[0])
	m := res.Members(vs[0])
	if len(m) != 3 {
		t.Fatalf("members = %v", m)
	}
	for i := 1; i < len(m); i++ {
		if m[i] <= m[i-1] {
			t.Fatal("members not in ID order")
		}
	}
	for _, v := range vs {
		if !res.Same(v, vs[0]) {
			t.Fatal("union incomplete")
		}
	}
}

func TestCollectSP(t *testing.T) {
	f := testprog.WithCallsAndStack()
	info := ssa.MustBuild(f)
	pin.CollectSP(f, info)
	res, err := pin.NewResources(f)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for id := 0; id < f.NumValues(); id++ {
		v := ir.ValueID(id)
		if info.OrigPhys(v) == f.Target.SP {
			found = true
			if res.Find(v) != f.Target.SP {
				t.Fatalf("SP-derived %v not pinned to SP", f.VStr(v))
			}
		}
	}
	if !found {
		t.Fatal("no SP-derived values")
	}
}

func TestCollectABI(t *testing.T) {
	f := testprog.WithCallsAndStack()
	info := ssa.MustBuild(f)
	pin.CollectSP(f, info)
	pin.CollectABI(f)
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			switch {
			case in.Op() == ir.Input:
				for i := 0; i < int(in.Imm) && i < len(f.Target.ArgRegs); i++ {
					want := f.Target.ArgRegs[i]
					if got := in.DefOp(i).Pin(); got != want && got != f.Target.SP {
						t.Fatalf("input def %d pinned to %v, want %v", i, f.VStr(got), f.VStr(want))
					}
				}
			case in.Op() == ir.Call:
				for i := 0; i < in.NumUses(); i++ {
					if i < len(f.Target.ArgRegs) && in.UseOp(i).Pin() != f.Target.ArgRegs[i] {
						t.Fatalf("call arg %d not pinned", i)
					}
				}
				for i := 0; i < in.NumDefs(); i++ {
					if i < len(f.Target.RetRegs) && in.DefOp(i).Pin() != f.Target.RetRegs[i] {
						t.Fatalf("call result %d not pinned", i)
					}
				}
			case in.Op() == ir.Output:
				if in.NumUses() > 0 && in.UseOp(0).Pin() != f.Target.RetRegs[0] {
					t.Fatal("output not pinned to R0")
				}
			case in.Op().IsTwoOperand():
				dst := in.DefOp(0).Pin()
				if dst == ir.NoValue {
					dst = in.Def(0)
				}
				if in.UseOp(0).Pin() != dst {
					t.Fatalf("2-operand tie not pinned: %v", in)
				}
			}
		}
	}
}

// TestCollectABIRespectsSP: the implicit SP definition on .input must not
// receive an argument-register pin.
func TestCollectABIRespectsSP(t *testing.T) {
	f := testprog.WithCallsAndStack()
	info := ssa.MustBuild(f)
	pin.CollectSP(f, info)
	pin.CollectABI(f)
	for _, in := range f.Entry().Instrs() {
		if in.Op() != ir.Input {
			continue
		}
		for _, d := range in.Defs() {
			if info.OrigPhys(d.Val) == f.Target.SP && d.Pin() != f.Target.SP {
				t.Fatalf("SP def pinned to %v", f.VStr(d.Pin()))
			}
		}
	}
}

// ---- Figure 4 pin-correctness cases ----

func TestPinCorrectnessCases(t *testing.T) {
	r0 := func(f *ir.Func) ir.ValueID { return f.Target.R[0] }

	t.Run("case1_two_defs_same_resource", func(t *testing.T) {
		bld := ir.NewBuilder("c1")
		bld.Block("entry")
		x, y := bld.Val("x"), bld.Val("y")
		call := bld.Call("f", []ir.ValueID{x, y})
		ir.PinDef(call, 0, r0(bld.Fn))
		ir.PinDef(call, 1, r0(bld.Fn))
		bld.Output(x)
		res, err := pin.NewResources(bld.Fn)
		if err != nil {
			t.Fatal(err)
		}
		if err := pin.Validate(bld.Fn, res); err == nil {
			t.Fatal("two defs pinned to one resource must be rejected")
		}
	})

	t.Run("case2_two_uses_same_resource", func(t *testing.T) {
		bld := ir.NewBuilder("c2")
		bld.Block("entry")
		x, y, d := bld.Val("x"), bld.Val("y"), bld.Val("d")
		bld.Input(x, y)
		call := bld.Call("f", []ir.ValueID{d}, x, y)
		ir.PinUse(call, 0, r0(bld.Fn))
		ir.PinUse(call, 1, r0(bld.Fn))
		bld.Output(d)
		res, err := pin.NewResources(bld.Fn)
		if err != nil {
			t.Fatal(err)
		}
		if err := pin.Validate(bld.Fn, res); err == nil {
			t.Fatal("two different values pinned to one resource at one instruction must be rejected")
		}
	})

	t.Run("case3_two_phi_defs_same_block", func(t *testing.T) {
		bld := ir.NewBuilder("c3")
		entry := bld.Block("entry")
		l := bld.Fn.NewBlock("l")
		r := bld.Fn.NewBlock("r")
		join := bld.Fn.NewBlock("join")
		c, a1, a2, b1, b2, x, y := bld.Val("c"), bld.Val("a1"), bld.Val("a2"), bld.Val("b1"), bld.Val("b2"), bld.Val("x"), bld.Val("y")
		bld.SetBlock(entry)
		bld.Input(c)
		bld.Br(c, l, r)
		bld.SetBlock(l)
		bld.Const(a1, 1)
		bld.Const(b1, 2)
		bld.Jump(join)
		bld.SetBlock(r)
		bld.Const(a2, 3)
		bld.Const(b2, 4)
		bld.Jump(join)
		bld.SetBlock(join)
		p1 := bld.Phi(x, a1, a2)
		p2 := bld.Phi(y, b1, b2)
		ir.PinDef(p1, 0, r0(bld.Fn))
		ir.PinDef(p2, 0, r0(bld.Fn))
		z := bld.Val("z")
		bld.Binary(ir.Add, z, x, y)
		bld.Output(z)
		res, err := pin.NewResources(bld.Fn)
		if err != nil {
			t.Fatal(err)
		}
		if err := pin.Validate(bld.Fn, res); err == nil {
			t.Fatal("two φ defs of one block pinned to one resource must be rejected")
		}
	})

	t.Run("case4_def_use_same_resource_ok", func(t *testing.T) {
		bld := ir.NewBuilder("c4")
		bld.Block("entry")
		x, y := bld.Val("x"), bld.Val("y")
		bld.Input(x)
		ad := bld.AutoAdd(y, x, 1)
		ir.PinDef(ad, 0, r0(bld.Fn))
		ir.PinUse(ad, 0, r0(bld.Fn))
		bld.Output(y)
		res, err := pin.NewResources(bld.Fn)
		if err != nil {
			t.Fatal(err)
		}
		if err := pin.Validate(bld.Fn, res); err != nil {
			t.Fatalf("def+use sharing a resource is the legal 2-operand pinning: %v", err)
		}
	})

	t.Run("case5_phi_arg_pinned_elsewhere", func(t *testing.T) {
		bld := ir.NewBuilder("c5")
		entry := bld.Block("entry")
		l := bld.Fn.NewBlock("l")
		r := bld.Fn.NewBlock("r")
		join := bld.Fn.NewBlock("join")
		c, a1, a2, x := bld.Val("c"), bld.Val("a1"), bld.Val("a2"), bld.Val("x")
		bld.SetBlock(entry)
		bld.Input(c)
		bld.Br(c, l, r)
		bld.SetBlock(l)
		bld.Const(a1, 1)
		bld.Jump(join)
		bld.SetBlock(r)
		bld.Const(a2, 2)
		bld.Jump(join)
		bld.SetBlock(join)
		p := bld.Phi(x, a1, a2)
		ir.PinDef(p, 0, r0(bld.Fn))
		ir.PinUse(p, 0, bld.Fn.Target.R[1]) // s != r: forbidden
		bld.Output(x)
		res, err := pin.NewResources(bld.Fn)
		if err != nil {
			t.Fatal(err)
		}
		if err := pin.Validate(bld.Fn, res); err == nil {
			t.Fatal("φ argument pinned to a different resource than the result must be rejected")
		}
	})
}

func TestRepinDefs(t *testing.T) {
	f := testprog.Diamond()
	ssa.Build(f)
	res, err := pin.NewResources(f)
	if err != nil {
		t.Fatal(err)
	}
	// Merge the φ web by hand, then repin.
	var phi *ir.Instr
	for _, b := range f.Blocks() {
		for _, p := range b.Phis() {
			phi = p
			break
		}
	}
	if phi == nil {
		t.Fatal("no φ")
	}
	for _, u := range phi.Uses() {
		if _, err := res.Union(phi.Def(0), u.Val); err != nil {
			t.Fatal(err)
		}
	}
	pin.RepinDefs(f, res)
	root := res.Find(phi.Def(0))
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			for _, d := range in.Defs() {
				if res.Same(d.Val, root) && d.Val != root && d.Pin() != root {
					t.Fatalf("def of %v not repinned to %v", f.VStr(d.Val), f.VStr(root))
				}
			}
		}
	}
}

func TestCollectPhiCSSA(t *testing.T) {
	f := testprog.Diamond()
	ssa.Build(f)
	res, unpinned, err := pin.CollectPhiCSSA(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if unpinned != 0 {
		t.Fatalf("unpinned = %d, want 0", unpinned)
	}
	for _, b := range f.Blocks() {
		for _, phi := range b.Phis() {
			for _, u := range phi.Uses() {
				if !res.Same(phi.Def(0), u.Val) {
					t.Fatalf("φ web not unified: %v vs %v", f.VStr(phi.Def(0)), f.VStr(u.Val))
				}
			}
		}
	}
}
