package naiveabi_test

import (
	"testing"

	"outofssa/internal/ir"
	"outofssa/internal/naiveabi"
	"outofssa/internal/outofssa/naive"
	"outofssa/internal/ssa"
	"outofssa/internal/testprog"
)

func TestApplyRewritesConstraints(t *testing.T) {
	f := testprog.WithCallsAndStack()
	ssa.Build(f)
	if _, err := naive.Translate(f); err != nil {
		t.Fatal(err)
	}
	st := naiveabi.Apply(f)
	if st.Moves == 0 {
		t.Fatal("expected ABI moves")
	}
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			switch {
			case in.Op() == ir.Call:
				for i, u := range in.Uses() {
					if i < len(f.Target.ArgRegs) && u.Val != f.Target.ArgRegs[i] {
						t.Fatalf("call arg %d not in %v: %v", i, f.VStr(f.Target.ArgRegs[i]), in)
					}
				}
				for i, d := range in.Defs() {
					if i < len(f.Target.RetRegs) && d.Val != f.Target.RetRegs[i] {
						t.Fatalf("call result %d not in %v: %v", i, f.VStr(f.Target.RetRegs[i]), in)
					}
				}
			case in.Op() == ir.Output:
				if in.NumUses() > 0 && in.Use(0) != f.Target.RetRegs[0] {
					t.Fatalf("output not through R0: %v", in)
				}
			case in.Op().IsTwoOperand():
				if in.Def(0) != in.Use(0) {
					t.Fatalf("2-operand tie unsatisfied: %v", in)
				}
			}
		}
	}
}

func TestApplyPreservesSemantics(t *testing.T) {
	mks := []func() *ir.Func{testprog.WithCallsAndStack, testprog.Diamond}
	for seed := int64(0); seed < 30; seed++ {
		s := seed
		mks = append(mks, func() *ir.Func { return testprog.Rand(s, testprog.DefaultRandOptions()) })
	}
	for _, mk := range mks {
		ref := mk()
		args := []int64{3, 14, 1}
		want, err := ir.Exec(ref, args, 500000)
		if err != nil {
			t.Fatal(err)
		}
		f := mk()
		ssa.Build(f)
		if _, err := naive.Translate(f); err != nil {
			t.Fatal(err)
		}
		naiveabi.Apply(f)
		if err := f.Verify(); err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		got, err := ir.Exec(f, args, 1000000)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if !want.Equal(got) {
			t.Fatalf("%s: NaiveABI changed behaviour\n%s", f.Name, f)
		}
	}
}

// TestTwoOperandRescue: an instruction whose second source is the
// destination's previous value must be rescued into a temp.
func TestTwoOperandRescue(t *testing.T) {
	bld := ir.NewBuilder("rescue")
	bld.Block("entry")
	acc, a, d := bld.Val("acc"), bld.Val("a"), bld.Val("d")
	bld.Input(acc, a)
	// d = mac(acc, d_old?, ...) — craft: d = acc + d*a where d starts as input.
	bld.Mac(d, acc, d, a) // uses: acc (tied), d, a — d is also the def
	bld.Output(d)
	ref := bld.Fn.Clone()

	naiveabi.Apply(bld.Fn)
	if err := bld.Fn.Verify(); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]int64{{3, 4}, {0, 0}, {7, 2}} {
		want, err := ir.Exec(ref, args, 100)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ir.Exec(bld.Fn, args, 100)
		if err != nil {
			t.Fatal(err)
		}
		if !want.Equal(got) {
			t.Fatalf("rescue failed for %v:\n%s", args, bld.Fn)
		}
	}
}

func TestIdempotentWhenSatisfied(t *testing.T) {
	f := testprog.WithCallsAndStack()
	ssa.Build(f)
	if _, err := naive.Translate(f); err != nil {
		t.Fatal(err)
	}
	naiveabi.Apply(f)
	st := naiveabi.Apply(f)
	if st.Moves != 0 {
		t.Fatalf("second application inserted %d moves; should be idempotent", st.Moves)
	}
}
