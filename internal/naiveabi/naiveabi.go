// Package naiveabi satisfies ABI and ISA renaming constraints on non-SSA
// machine code by inserting move instructions locally around each
// constrained instruction (the paper's NaiveABI pass). It is the
// baseline used when the pinningABI collect phase is disabled: every
// constraint costs its full move price up front, and a later aggressive
// coalescing pass recovers only what Chaitin-style coalescing can.
package naiveabi

import "outofssa/internal/ir"

// Stats describes the insertion.
type Stats struct {
	// Moves is the number of move instructions inserted.
	Moves int
}

// Apply rewrites f in place:
//
//   - .input: parameters are received in the argument registers and
//     immediately moved into their variables;
//   - .output: results are moved into the return registers;
//   - call: arguments are moved into the argument registers before the
//     call, results out of the return registers after it;
//   - 2-operand instructions: the tied source is moved into the
//     destination first.
//
// Operands already equal to the required register cost nothing.
func Apply(f *ir.Func) *Stats {
	st := &Stats{}
	t := f.Target

	mov := func(d, s *ir.Value) *ir.Instr {
		st.Moves++
		return &ir.Instr{Op: ir.Copy,
			Defs: []ir.Operand{{Val: d}}, Uses: []ir.Operand{{Val: s}}}
	}

	for _, b := range f.Blocks {
		for idx := 0; idx < len(b.Instrs); idx++ {
			in := b.Instrs[idx]
			switch {
			case in.Op == ir.Input:
				n := int(in.Imm)
				post := 0
				for i := 0; i < n && i < len(t.ArgRegs) && i < len(in.Defs); i++ {
					v := in.Defs[i].Val
					r := t.ArgRegs[i]
					if v == r {
						continue
					}
					in.Defs[i].Val = r
					b.InsertAt(idx+1+post, mov(v, r))
					post++
				}
				idx += post

			case in.Op == ir.Output:
				pre := 0
				for i := range in.Uses {
					if i >= len(t.RetRegs) {
						break
					}
					v := in.Uses[i].Val
					r := t.RetRegs[i]
					if v == r {
						continue
					}
					in.Uses[i].Val = r
					b.InsertAt(idx, mov(r, v))
					pre++
					idx++
				}

			case in.Op == ir.Call:
				pre := 0
				for i := range in.Uses {
					if i >= len(t.ArgRegs) {
						break
					}
					v := in.Uses[i].Val
					r := t.ArgRegs[i]
					if v == r {
						continue
					}
					in.Uses[i].Val = r
					b.InsertAt(idx, mov(r, v))
					pre++
					idx++
				}
				post := 0
				for i := range in.Defs {
					if i >= len(t.RetRegs) {
						break
					}
					v := in.Defs[i].Val
					r := t.RetRegs[i]
					if v == r {
						continue
					}
					in.Defs[i].Val = r
					b.InsertAt(idx+1+post, mov(v, r))
					post++
				}
				idx += post

			case in.Op.IsTwoOperand():
				d := in.Defs[0].Val
				s := in.Uses[0].Val
				if d != s {
					// Other operands still reading d's previous value must
					// be rescued before d is overwritten by the tie move.
					var t *ir.Value
					for i := 1; i < len(in.Uses); i++ {
						if in.Uses[i].Val != d {
							continue
						}
						if t == nil {
							t = f.NewValue("")
							b.InsertAt(idx, mov(t, d))
							idx++
						}
						in.Uses[i].Val = t
					}
					b.InsertAt(idx, mov(d, s))
					in.Uses[0].Val = d
					idx++
				}
			}
		}
	}
	if st.Moves > 0 {
		f.NoteMutation() // constrained operands rewritten in place
	}
	return st
}
