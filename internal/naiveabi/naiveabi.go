// Package naiveabi satisfies ABI and ISA renaming constraints on non-SSA
// machine code by inserting move instructions locally around each
// constrained instruction (the paper's NaiveABI pass). It is the
// baseline used when the pinningABI collect phase is disabled: every
// constraint costs its full move price up front, and a later aggressive
// coalescing pass recovers only what Chaitin-style coalescing can.
package naiveabi

import "outofssa/internal/ir"

// Stats describes the insertion.
type Stats struct {
	// Moves is the number of move instructions inserted.
	Moves int
}

// Apply rewrites f in place:
//
//   - .input: parameters are received in the argument registers and
//     immediately moved into their variables;
//   - .output: results are moved into the return registers;
//   - call: arguments are moved into the argument registers before the
//     call, results out of the return registers after it;
//   - 2-operand instructions: the tied source is moved into the
//     destination first.
//
// Operands already equal to the required register cost nothing.
func Apply(f *ir.Func) *Stats {
	st := &Stats{}
	t := f.Target

	mov := func(d, s ir.ValueID) *ir.Instr {
		st.Moves++
		return f.NewInstr(ir.Copy,
			[]ir.Operand{{Val: d}}, []ir.Operand{{Val: s}})
	}

	for _, b := range f.Blocks() {
		for idx := 0; idx < b.NumInstrs(); idx++ {
			in := b.Instr(idx)
			switch {
			case in.Op() == ir.Input:
				n := int(in.Imm)
				post := 0
				for i := 0; i < n && i < len(t.ArgRegs) && i < in.NumDefs(); i++ {
					v := in.Def(i)
					r := t.ArgRegs[i]
					if v == r {
						continue
					}
					in.SetDefVal(i, r)
					b.InsertAt(idx+1+post, mov(v, r))
					post++
				}
				idx += post

			case in.Op() == ir.Output:
				for i := 0; i < in.NumUses(); i++ {
					if i >= len(t.RetRegs) {
						break
					}
					v := in.Use(i)
					r := t.RetRegs[i]
					if v == r {
						continue
					}
					in.SetUseVal(i, r)
					b.InsertAt(idx, mov(r, v))
					idx++
				}

			case in.Op() == ir.Call:
				for i := 0; i < in.NumUses(); i++ {
					if i >= len(t.ArgRegs) {
						break
					}
					v := in.Use(i)
					r := t.ArgRegs[i]
					if v == r {
						continue
					}
					in.SetUseVal(i, r)
					b.InsertAt(idx, mov(r, v))
					idx++
				}
				post := 0
				for i := 0; i < in.NumDefs(); i++ {
					if i >= len(t.RetRegs) {
						break
					}
					v := in.Def(i)
					r := t.RetRegs[i]
					if v == r {
						continue
					}
					in.SetDefVal(i, r)
					b.InsertAt(idx+1+post, mov(v, r))
					post++
				}
				idx += post

			case in.Op().IsTwoOperand():
				d := in.Def(0)
				s := in.Use(0)
				if d != s {
					// Other operands still reading d's previous value must
					// be rescued before d is overwritten by the tie move.
					tmp := ir.NoValue
					for i := 1; i < in.NumUses(); i++ {
						if in.Use(i) != d {
							continue
						}
						if tmp == ir.NoValue {
							tmp = f.NewValue("")
							b.InsertAt(idx, mov(tmp, d))
							idx++
						}
						in.SetUseVal(i, tmp)
					}
					b.InsertAt(idx, mov(d, s))
					in.SetUseVal(0, d)
					idx++
				}
			}
		}
	}
	return st
}
