package bitset_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"outofssa/internal/bitset"
)

func TestBasicOps(t *testing.T) {
	s := bitset.New(10)
	if !s.Empty() || s.Len() != 0 {
		t.Fatal("new set not empty")
	}
	s.Add(3)
	s.Add(200) // beyond initial capacity: must grow
	s.Add(3)   // idempotent
	if !s.Has(3) || !s.Has(200) || s.Has(4) || s.Has(1000) {
		t.Fatal("membership wrong")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	s.Remove(3)
	s.Remove(999) // no-op
	if s.Has(3) || s.Len() != 1 {
		t.Fatal("remove wrong")
	}
	if got := s.Elems(); len(got) != 1 || got[0] != 200 {
		t.Fatalf("Elems = %v", got)
	}
}

func TestSetAlgebra(t *testing.T) {
	a := bitset.New(64)
	b := bitset.New(64)
	for _, x := range []int{1, 5, 64, 100} {
		a.Add(x)
	}
	for _, x := range []int{5, 100, 200} {
		b.Add(x)
	}
	u := a.Copy()
	if changed := u.UnionWith(b); !changed {
		t.Fatal("union should have changed a")
	}
	for _, x := range []int{1, 5, 64, 100, 200} {
		if !u.Has(x) {
			t.Fatalf("union missing %d", x)
		}
	}
	if u.UnionWith(b) {
		t.Fatal("second union must be a no-op")
	}
	d := a.Copy()
	d.DiffWith(b)
	if d.Has(5) || d.Has(100) || !d.Has(1) || !d.Has(64) {
		t.Fatal("diff wrong")
	}
	i := a.Copy()
	i.IntersectWith(b)
	if !i.Has(5) || !i.Has(100) || i.Has(1) || i.Has(200) {
		t.Fatal("intersect wrong")
	}
}

func TestEqualAcrossCapacities(t *testing.T) {
	a := bitset.New(1)
	b := bitset.New(1000)
	a.Add(7)
	b.Add(7)
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("equal sets with different capacities must compare equal")
	}
	b.Add(999)
	if a.Equal(b) {
		t.Fatal("different sets compare equal")
	}
}

// Property: a bitset behaves like a map[int]bool under a random operation
// sequence.
func TestAgainstMapModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := bitset.New(16)
		m := make(map[int]bool)
		for op := 0; op < 300; op++ {
			x := rng.Intn(300)
			switch rng.Intn(3) {
			case 0:
				s.Add(x)
				m[x] = true
			case 1:
				s.Remove(x)
				delete(m, x)
			default:
				if s.Has(x) != m[x] {
					return false
				}
			}
		}
		if s.Len() != len(m) {
			return false
		}
		for _, e := range s.Elems() {
			if !m[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachOrder(t *testing.T) {
	s := bitset.New(300)
	want := []int{0, 63, 64, 65, 128, 255}
	for _, x := range want {
		s.Add(x)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order: got %v want %v", got, want)
		}
	}
}

func TestClear(t *testing.T) {
	s := bitset.New(10)
	s.Add(5)
	s.Clear()
	if !s.Empty() {
		t.Fatal("clear failed")
	}
}

func TestNextSet(t *testing.T) {
	s := bitset.New(300)
	for _, x := range []int{0, 63, 64, 130, 255} {
		s.Add(x)
	}
	var got []int
	for i := s.NextSet(0); i >= 0; i = s.NextSet(i + 1) {
		got = append(got, i)
	}
	want := []int{0, 63, 64, 130, 255}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	if s.NextSet(256) != -1 || s.NextSet(-5) != 0 || s.NextSet(64) != 64 {
		t.Fatal("NextSet edge cases wrong")
	}
	if bitset.New(0).NextSet(0) != -1 {
		t.Fatal("NextSet on empty set")
	}
}

func TestIntersectsWithAndForEachAnd(t *testing.T) {
	a := bitset.New(200)
	b := bitset.New(200)
	for _, x := range []int{1, 70, 150} {
		a.Add(x)
	}
	for _, x := range []int{2, 71, 151} {
		b.Add(x)
	}
	if a.IntersectsWith(b) {
		t.Fatal("disjoint sets reported intersecting")
	}
	b.Add(70)
	if !a.IntersectsWith(b) || !b.IntersectsWith(a) {
		t.Fatal("intersecting sets reported disjoint")
	}
	var got []int
	a.ForEachAnd(b, func(i int) { got = append(got, i) })
	if len(got) != 1 || got[0] != 70 {
		t.Fatalf("ForEachAnd = %v, want [70]", got)
	}
	// Mismatched capacities must not panic or over-read.
	small := bitset.New(8)
	small.Add(1)
	if !small.IntersectsWith(a) == a.Has(1) {
		t.Fatal("capacity mismatch handling wrong")
	}
}

func TestCopyFrom(t *testing.T) {
	src := bitset.New(300)
	src.Add(7)
	src.Add(299)
	dst := bitset.New(10)
	dst.Add(3)
	dst.CopyFrom(src)
	if !dst.Equal(src) {
		t.Fatal("CopyFrom not equal to source")
	}
	dst.Add(50)
	if src.Has(50) {
		t.Fatal("CopyFrom aliases source storage")
	}
	// Shrinking copy reuses storage.
	big := bitset.New(1000)
	big.Add(900)
	big.CopyFrom(src)
	if !big.Equal(src) || big.Has(900) {
		t.Fatal("shrinking CopyFrom wrong")
	}
}

func TestPool(t *testing.T) {
	var p bitset.Pool
	s := p.Get(100)
	s.Add(42)
	p.Put(s)
	r := p.Get(50)
	if r != s {
		t.Fatal("pool did not reuse the freed set")
	}
	if !r.Empty() {
		t.Fatal("pooled set not cleared on Get")
	}
	// Requesting a bigger domain than the pooled set held must still work.
	p.Put(r)
	big := p.Get(10000)
	big.Add(9999)
	if !big.Has(9999) {
		t.Fatal("pooled set did not grow for larger domain")
	}
	p.Put(nil) // no-op
}

func TestNewSlab(t *testing.T) {
	sets := bitset.NewSlab(100, 5)
	if len(sets) != 5 {
		t.Fatalf("slab count = %d", len(sets))
	}
	for i, s := range sets {
		s.Add(i)
		s.Add(99)
	}
	for i, s := range sets {
		if !s.Has(i) || !s.Has(99) || s.Len() != 2 {
			t.Fatalf("slab set %d polluted by neighbours: %v", i, s.Elems())
		}
	}
	// Growing past the slab capacity must not corrupt neighbours.
	sets[0].Add(500)
	if sets[1].Has(500-64*((100+63)/64)) || !sets[0].Has(500) || !sets[0].Has(99) {
		t.Fatal("slab grow corrupted neighbour or lost elements")
	}
}
