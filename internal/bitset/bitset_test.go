package bitset_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"outofssa/internal/bitset"
)

func TestBasicOps(t *testing.T) {
	s := bitset.New(10)
	if !s.Empty() || s.Len() != 0 {
		t.Fatal("new set not empty")
	}
	s.Add(3)
	s.Add(200) // beyond initial capacity: must grow
	s.Add(3)   // idempotent
	if !s.Has(3) || !s.Has(200) || s.Has(4) || s.Has(1000) {
		t.Fatal("membership wrong")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	s.Remove(3)
	s.Remove(999) // no-op
	if s.Has(3) || s.Len() != 1 {
		t.Fatal("remove wrong")
	}
	if got := s.Elems(); len(got) != 1 || got[0] != 200 {
		t.Fatalf("Elems = %v", got)
	}
}

func TestSetAlgebra(t *testing.T) {
	a := bitset.New(64)
	b := bitset.New(64)
	for _, x := range []int{1, 5, 64, 100} {
		a.Add(x)
	}
	for _, x := range []int{5, 100, 200} {
		b.Add(x)
	}
	u := a.Copy()
	if changed := u.UnionWith(b); !changed {
		t.Fatal("union should have changed a")
	}
	for _, x := range []int{1, 5, 64, 100, 200} {
		if !u.Has(x) {
			t.Fatalf("union missing %d", x)
		}
	}
	if u.UnionWith(b) {
		t.Fatal("second union must be a no-op")
	}
	d := a.Copy()
	d.DiffWith(b)
	if d.Has(5) || d.Has(100) || !d.Has(1) || !d.Has(64) {
		t.Fatal("diff wrong")
	}
	i := a.Copy()
	i.IntersectWith(b)
	if !i.Has(5) || !i.Has(100) || i.Has(1) || i.Has(200) {
		t.Fatal("intersect wrong")
	}
}

func TestEqualAcrossCapacities(t *testing.T) {
	a := bitset.New(1)
	b := bitset.New(1000)
	a.Add(7)
	b.Add(7)
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("equal sets with different capacities must compare equal")
	}
	b.Add(999)
	if a.Equal(b) {
		t.Fatal("different sets compare equal")
	}
}

// Property: a bitset behaves like a map[int]bool under a random operation
// sequence.
func TestAgainstMapModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := bitset.New(16)
		m := make(map[int]bool)
		for op := 0; op < 300; op++ {
			x := rng.Intn(300)
			switch rng.Intn(3) {
			case 0:
				s.Add(x)
				m[x] = true
			case 1:
				s.Remove(x)
				delete(m, x)
			default:
				if s.Has(x) != m[x] {
					return false
				}
			}
		}
		if s.Len() != len(m) {
			return false
		}
		for _, e := range s.Elems() {
			if !m[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachOrder(t *testing.T) {
	s := bitset.New(300)
	want := []int{0, 63, 64, 65, 128, 255}
	for _, x := range want {
		s.Add(x)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order: got %v want %v", got, want)
		}
	}
}

func TestClear(t *testing.T) {
	s := bitset.New(10)
	s.Add(5)
	s.Clear()
	if !s.Empty() {
		t.Fatal("clear failed")
	}
}
