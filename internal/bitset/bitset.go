// Package bitset implements dense bit sets indexed by small non-negative
// integers (value IDs, block IDs). The liveness and interference analyses
// are set-heavy; dense words keep them fast and allocation-light.
package bitset

import "math/bits"

// Set is a dense bit set. The zero value is an empty set of capacity 0;
// use New to pre-size.
type Set struct {
	words []uint64
}

// New returns a set able to hold values in [0, n) without growing.
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+63)/64)}
}

func (s *Set) grow(i int) {
	need := i/64 + 1
	if need > len(s.words) {
		w := make([]uint64, need)
		copy(w, s.words)
		s.words = w
	}
}

// Add inserts i.
func (s *Set) Add(i int) {
	s.grow(i)
	s.words[i/64] |= 1 << uint(i%64)
}

// Remove deletes i.
func (s *Set) Remove(i int) {
	if i/64 < len(s.words) {
		s.words[i/64] &^= 1 << uint(i%64)
	}
}

// Has reports membership of i.
func (s *Set) Has(i int) bool {
	if i < 0 || i/64 >= len(s.words) {
		return false
	}
	return s.words[i/64]&(1<<uint(i%64)) != 0
}

// UnionWith adds every element of o; reports whether s changed.
func (s *Set) UnionWith(o *Set) bool {
	if len(o.words) > len(s.words) {
		s.grow(len(o.words)*64 - 1)
	}
	changed := false
	for i, w := range o.words {
		nw := s.words[i] | w
		if nw != s.words[i] {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// DiffWith removes every element of o.
func (s *Set) DiffWith(o *Set) {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		s.words[i] &^= o.words[i]
	}
}

// IntersectWith keeps only elements also in o.
func (s *Set) IntersectWith(o *Set) {
	for i := range s.words {
		if i < len(o.words) {
			s.words[i] &= o.words[i]
		} else {
			s.words[i] = 0
		}
	}
}

// Copy returns an independent copy of s.
func (s *Set) Copy() *Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return &Set{words: w}
}

// Clear empties the set, retaining capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Len returns the number of elements.
func (s *Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and o contain the same elements.
func (s *Set) Equal(o *Set) bool {
	n := len(s.words)
	if len(o.words) > n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		var a, b uint64
		if i < len(s.words) {
			a = s.words[i]
		}
		if i < len(o.words) {
			b = o.words[i]
		}
		if a != b {
			return false
		}
	}
	return true
}

// ForEach calls fn for each element in increasing order.
func (s *Set) ForEach(fn func(int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*64 + b)
			w &^= 1 << uint(b)
		}
	}
}

// Elems returns the elements in increasing order.
func (s *Set) Elems() []int {
	out := make([]int, 0, s.Len())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}
