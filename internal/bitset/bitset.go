// Package bitset implements dense bit sets indexed by small non-negative
// integers (value IDs, block IDs). The liveness and interference analyses
// are set-heavy; dense words keep them fast and allocation-light.
package bitset

import "math/bits"

// Set is a dense bit set. The zero value is an empty set of capacity 0;
// use New to pre-size.
type Set struct {
	words []uint64
}

// New returns a set able to hold values in [0, n) without growing.
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+63)/64)}
}

func (s *Set) grow(i int) {
	need := i/64 + 1
	if need > len(s.words) {
		w := make([]uint64, need)
		copy(w, s.words)
		s.words = w
	}
}

// Add inserts i.
func (s *Set) Add(i int) {
	s.grow(i)
	s.words[i/64] |= 1 << uint(i%64)
}

// Remove deletes i.
func (s *Set) Remove(i int) {
	if i/64 < len(s.words) {
		s.words[i/64] &^= 1 << uint(i%64)
	}
}

// Has reports membership of i.
func (s *Set) Has(i int) bool {
	if i < 0 || i/64 >= len(s.words) {
		return false
	}
	return s.words[i/64]&(1<<uint(i%64)) != 0
}

// UnionWith adds every element of o; reports whether s changed.
func (s *Set) UnionWith(o *Set) bool {
	if len(o.words) > len(s.words) {
		s.grow(len(o.words)*64 - 1)
	}
	changed := false
	for i, w := range o.words {
		nw := s.words[i] | w
		if nw != s.words[i] {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// DiffWith removes every element of o.
func (s *Set) DiffWith(o *Set) {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		s.words[i] &^= o.words[i]
	}
}

// IntersectWith keeps only elements also in o.
func (s *Set) IntersectWith(o *Set) {
	for i := range s.words {
		if i < len(o.words) {
			s.words[i] &= o.words[i]
		} else {
			s.words[i] = 0
		}
	}
}

// Copy returns an independent copy of s.
func (s *Set) Copy() *Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return &Set{words: w}
}

// Clear empties the set, retaining capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Len returns the number of elements.
func (s *Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and o contain the same elements.
func (s *Set) Equal(o *Set) bool {
	n := len(s.words)
	if len(o.words) > n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		var a, b uint64
		if i < len(s.words) {
			a = s.words[i]
		}
		if i < len(o.words) {
			b = o.words[i]
		}
		if a != b {
			return false
		}
	}
	return true
}

// IntersectsWith reports whether s and o share at least one element,
// without allocating.
func (s *Set) IntersectsWith(o *Set) bool {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// NextSet returns the smallest element >= i, or -1 if there is none.
// Word-level scanning makes iterating a sparse set over a large domain
// cheap: for i := s.NextSet(0); i >= 0; i = s.NextSet(i + 1) { ... }.
func (s *Set) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	wi := i / 64
	if wi >= len(s.words) {
		return -1
	}
	if w := s.words[wi] >> uint(i%64); w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if w := s.words[wi]; w != 0 {
			return wi*64 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// NextAnd returns the smallest element of s ∩ o that is >= i, or -1 if
// there is none — NextSet over an intersection, without materializing
// it.
func (s *Set) NextAnd(o *Set, i int) int {
	if i < 0 {
		i = 0
	}
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	wi := i / 64
	if wi >= n {
		return -1
	}
	if w := (s.words[wi] & o.words[wi]) >> uint(i%64); w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < n; wi++ {
		if w := s.words[wi] & o.words[wi]; w != 0 {
			return wi*64 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// CopyFrom makes s an exact copy of o, reusing s's storage when large
// enough.
func (s *Set) CopyFrom(o *Set) {
	if cap(s.words) < len(o.words) {
		s.words = make([]uint64, len(o.words))
	}
	s.words = s.words[:len(o.words)]
	copy(s.words, o.words)
}

// ForEach calls fn for each element in increasing order.
func (s *Set) ForEach(fn func(int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*64 + b)
			w &^= 1 << uint(b)
		}
	}
}

// ForEachAnd calls fn for each element of s ∩ o in increasing order,
// without materializing the intersection.
func (s *Set) ForEachAnd(o *Set, fn func(int)) {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for wi := 0; wi < n; wi++ {
		w := s.words[wi] & o.words[wi]
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*64 + b)
			w &^= 1 << uint(b)
		}
	}
}

// Elems returns the elements in increasing order.
func (s *Set) Elems() []int {
	out := make([]int, 0, s.Len())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// Pool recycles scratch sets so query-heavy code (interference sweeps,
// liveness walks) doesn't allocate a fresh Set per query. Not safe for
// concurrent use; each analysis owns its own Pool.
type Pool struct {
	free []*Set
}

// Get returns an empty set able to hold values in [0, n) without
// growing, reusing a pooled set when possible.
func (p *Pool) Get(n int) *Set {
	if len(p.free) == 0 {
		return New(n)
	}
	s := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	need := (n + 63) / 64
	if cap(s.words) < need {
		s.words = make([]uint64, need)
		return s
	}
	s.words = s.words[:need]
	s.Clear()
	return s
}

// Put returns s to the pool for reuse. s must not be used afterwards.
func (p *Pool) Put(s *Set) {
	if s != nil {
		p.free = append(p.free, s)
	}
}

// NewSlab returns count sets, each able to hold values in [0, n),
// carved out of a single backing allocation. The sets must not grow
// past n (Add beyond n-1 would reallocate the grown set's words away
// from the slab, which is safe but defeats the point).
func NewSlab(n, count int) []*Set {
	perSet := (n + 63) / 64
	words := make([]uint64, perSet*count)
	sets := make([]*Set, count)
	hdrs := make([]Set, count)
	for i := range sets {
		hdrs[i].words = words[i*perSet : (i+1)*perSet : (i+1)*perSet]
		sets[i] = &hdrs[i]
	}
	return sets
}
