package faultinject

// CachePoison is the corruption class for the daemon's result cache:
// unlike the IR classes above, it attacks a *finished* translation
// after it was inserted into the content-addressed cache — the shape
// of a torn write, a bit flip, or a deliberate poisoning. No verifier
// ever sees the damage (the pipeline is done); the only line of
// defense is the cache's per-entry checksum, which must detect the
// mutation on read so the entry is evicted and recompiled, never
// served. internal/server's cache tests drive this class through the
// cache's tamper seam.
const CachePoison Class = "cache-poison"

// InjectCachePoison flips one instruction byte of a cached rendered
// translation in place and reports whether a site was found. The site
// is deterministic: the first alphabetic byte following a tab, which
// in the LAI-like rendering is the opcode (or result name) of the
// first instruction — the smallest corruption that changes the code's
// meaning while leaving the text plausible. The flip is a case swap,
// so the mutated byte is still printable and the entry still "looks
// like" code; only the checksum can tell.
func InjectCachePoison(code []byte) bool {
	for i := 0; i+1 < len(code); i++ {
		if code[i] != '\t' {
			continue
		}
		c := code[i+1]
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
			code[i+1] = c ^ 0x20
			return true
		}
	}
	return false
}
