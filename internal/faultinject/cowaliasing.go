// COW-aliasing probe: the snapshot counterpart of the corruption
// classes. Where Inject breaks an SSA invariant and expects the
// verifier to notice, InjectCOWAliasing attacks the copy-on-write
// isolation invariant directly — it mutates a materialized copy and
// checks the parent snapshot's arena bytes byte-for-byte (and the
// reverse direction), using ir.Func.ArenaChecksum as the witness. The
// checked pipeline runs it on every entry function, so a COW fault
// that silently shares a slab fails loudly as a pass error instead of
// corrupting a sibling job.
package faultinject

import (
	"fmt"

	"outofssa/internal/ir"
)

// InjectCOWAliasing probes the snapshot isolation invariant on f. It
// freezes f, takes a parent snapshot and a child of that parent, then:
//
//  1. mutates the child across every slab class (operands, code,
//     edges, values) — materializing it — and asserts the parent's
//     arena checksum never moved;
//  2. mutates the parent the same way and asserts the now-private
//     child held still (the "vice versa" direction);
//  3. asserts f itself — the family master both sides were carved
//     from — kept its original bytes throughout.
//
// It returns nil when isolation held and a descriptive error naming
// the leaking direction otherwise. On success f's content is
// untouched (the probe only writes to throwaway snapshots, which it
// releases), but f is left frozen: its next mutation re-privatizes
// the slabs through the normal COW fault path, which after the
// releases is a copy-free adoption.
func InjectCOWAliasing(f *ir.Func) error {
	f.Freeze()
	before := f.ArenaChecksum()
	parent := f.Snapshot()
	child := parent.Snapshot()
	defer parent.Release()
	defer child.Release()

	witness := parent.ArenaChecksum()
	cowProbeMutate(child)
	if got := parent.ArenaChecksum(); got != witness {
		return fmt.Errorf("cow aliasing: mutating the materialized copy moved the parent snapshot's arena bytes (%#x -> %#x)", witness, got)
	}

	witness = child.ArenaChecksum()
	cowProbeMutate(parent)
	if got := child.ArenaChecksum(); got != witness {
		return fmt.Errorf("cow aliasing: mutating the parent snapshot moved the materialized copy's arena bytes (%#x -> %#x)", witness, got)
	}

	if got := f.ArenaChecksum(); got != before {
		return fmt.Errorf("cow aliasing: snapshot traffic moved the frozen master's arena bytes (%#x -> %#x)", before, got)
	}
	return nil
}

// cowProbeMutate drives one write through each slab class so every
// share flag is exercised. The writes are semantic no-ops (identity
// rewrites, a fresh unused value) — the probe cares that the write
// faults the slab, not what it stores — so a leak is detectable as a
// checksum change on the other side without ever producing invalid IR
// on this side.
func cowProbeMutate(g *ir.Func) {
	// Operand slab: identity-rewrite the first definition.
ops:
	for _, b := range g.Blocks() {
		for i := 0; i < b.NumInstrs(); i++ {
			if in := b.Instr(i); in.NumDefs() > 0 {
				in.SetDefVal(0, in.Def(0))
				break ops
			}
		}
	}
	// Code slab: lift the entry terminator out and put it straight back.
	if eb := g.Entry(); eb != nil && eb.NumInstrs() > 0 {
		i := eb.NumInstrs() - 1
		eb.InsertAt(i, eb.RemoveAt(i))
	}
	// Edge slab: rewrite the first predecessor link to itself.
	for _, b := range g.Blocks() {
		if b.NumPreds() > 0 {
			b.ReplacePred(b.Preds()[0], b.Preds()[0])
			break
		}
	}
	// Value slab: append one orphan value.
	g.NewValue("fault.cowprobe")
}
