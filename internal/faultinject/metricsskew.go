package faultinject

import "outofssa/internal/obs/metrics"

// MetricsSkew names the telemetry corruption class: a registry counter
// bumped without the underlying event having happened. It lives outside
// Classes because Inject mutates IR and is checked by the verifier,
// while this class corrupts observability state and is checked by
// metrics.SelfCheckPassCounters in checked mode.
const MetricsSkew Class = "metrics-skew"

// InjectMetricsSkew bumps one cell of the pass-counter mirror
// (metricName{pass=..., counter=...}) in r without emitting the trace
// event that would normally feed it — the shape of an instrumentation
// bug where a recording site double-counts or fires on the wrong path.
// The skew is invisible to the verifier (no IR changes) and to the
// perfgate wall checks; only the self-check cross-referencing registry
// cells against trace totals can catch it. Reports false when r is nil
// (a disabled registry cannot skew).
func InjectMetricsSkew(r *metrics.Registry, metricName, pass, counter string) bool {
	if r == nil {
		return false
	}
	r.Counter(metricName, metrics.L("pass", pass), metrics.L("counter", counter)).Inc()
	return true
}
