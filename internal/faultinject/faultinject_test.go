package faultinject_test

import (
	"strings"
	"testing"

	"outofssa/internal/faultinject"
	"outofssa/internal/ir"
	"outofssa/internal/ssa"
	"outofssa/internal/verify"
)

// buildDiamond returns a pruned-SSA diamond with two φs in the merge
// block and non-φ instructions after them — a site for every
// corruption class.
//
//	entry: a = input; t = 1; c = a < t; br c -> left, right
//	left:  x = a + t; y = a + a; jump merge
//	right: x = 7; y = 9; jump merge
//	merge: xφ, yφ; z = x + y; w = z * z; output w
func buildDiamond(t *testing.T) *ir.Func {
	t.Helper()
	bld := ir.NewBuilder("diamond")
	entry := bld.Block("entry")
	left := bld.Fn.NewBlock("left")
	right := bld.Fn.NewBlock("right")
	merge := bld.Fn.NewBlock("merge")

	a, c, x, y, z, w, one := bld.Val("a"), bld.Val("c"), bld.Val("x"),
		bld.Val("y"), bld.Val("z"), bld.Val("w"), bld.Val("one")

	bld.SetBlock(entry)
	bld.Input(a)
	bld.Const(one, 1)
	bld.Binary(ir.CmpLT, c, a, one)
	bld.Br(c, left, right)

	bld.SetBlock(left)
	bld.Binary(ir.Add, x, a, one)
	bld.Binary(ir.Add, y, a, a)
	bld.Jump(merge)

	bld.SetBlock(right)
	bld.Const(x, 7)
	bld.Const(y, 9)
	bld.Jump(merge)

	bld.SetBlock(merge)
	bld.Binary(ir.Add, z, x, y)
	bld.Binary(ir.Mul, w, z, z)
	bld.Output(w)

	f := bld.Fn
	ssa.MustBuild(f)
	if err := verify.Func(f, verify.StageSSA); err != nil {
		t.Fatalf("clean diamond rejected: %v", err)
	}
	return f
}

// detectedBy maps each class to a substring of the verifier message it
// must trigger — pinning the corruption to the intended check, not just
// to any rejection.
var detectedBy = map[faultinject.Class]string{
	faultinject.ClobberPhiArg:    "undefined",
	faultinject.DuplicatePin:     "case 3",
	faultinject.UseBeforeDef:     "not dominated",
	faultinject.BrokenCopyCycle:  "parcopy",
	faultinject.DoubleDef:        "two definitions",
	faultinject.PhiArityMismatch: "args for",
	faultinject.DanglingEdge:     "not its pred",
	faultinject.MisplacedPhi:     "after non-φ",
	faultinject.StaleVarLiveness: "not dominated by its def in",
}

// TestEveryClassDetected: each corruption class must find a site in the
// diamond and be rejected by the verifier with the intended message.
func TestEveryClassDetected(t *testing.T) {
	if len(detectedBy) != len(faultinject.Classes) {
		t.Fatalf("expectation table covers %d of %d classes", len(detectedBy), len(faultinject.Classes))
	}
	for _, class := range faultinject.Classes {
		t.Run(string(class), func(t *testing.T) {
			f := buildDiamond(t)
			if !faultinject.Inject(f, class) {
				t.Fatalf("no injection site for %s in the diamond", class)
			}
			err := verify.Func(f, verify.StageSSA)
			if err == nil {
				t.Fatalf("%s not detected by the verifier:\n%s", class, f)
			}
			if want := detectedBy[class]; !strings.Contains(err.Error(), want) {
				t.Fatalf("%s detected by the wrong check:\n  got  %v\n  want substring %q", class, err, want)
			}
		})
	}
}

// TestInjectIsTheOnlyDifference: a clean clone still verifies after its
// sibling was corrupted — injection must not share state.
func TestInjectIsTheOnlyDifference(t *testing.T) {
	f := buildDiamond(t)
	g := f.Clone()
	if !faultinject.Inject(f, faultinject.DoubleDef) {
		t.Fatal("no injection site")
	}
	if err := verify.Func(g, verify.StageSSA); err != nil {
		t.Fatalf("uncorrupted clone rejected: %v", err)
	}
	if err := verify.Func(f, verify.StageSSA); err == nil {
		t.Fatal("corrupted original accepted")
	}
}

// TestUnknownClassRejected: Inject must not silently "apply" a class it
// does not know.
func TestUnknownClassRejected(t *testing.T) {
	f := buildDiamond(t)
	if faultinject.Inject(f, faultinject.Class("no-such-class")) {
		t.Fatal("unknown class reported as injected")
	}
}
