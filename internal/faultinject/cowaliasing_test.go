package faultinject_test

import (
	"testing"

	"outofssa/internal/faultinject"
	"outofssa/internal/ir"
	"outofssa/internal/pipeline"
	"outofssa/internal/testprog"
)

// TestInjectCOWAliasingHoldsOnHealthyIR: the probe passes on every
// fixture shape (pre-SSA, SSA, post-pipeline would-be inputs) and
// leaves the probed function byte-identical, frozen, and still
// mutable afterwards.
func TestInjectCOWAliasingHoldsOnHealthyIR(t *testing.T) {
	f := buildDiamond(t) // already in pruned SSA form
	want := f.String()
	if err := faultinject.InjectCOWAliasing(f); err != nil {
		t.Fatalf("probe failed on healthy IR: %v", err)
	}
	if got := f.String(); got != want {
		t.Fatalf("probe changed the probed function:\n%s", got)
	}
	if !f.Frozen() {
		t.Fatal("probe must leave f frozen (its snapshots shared the slabs)")
	}
	// The throwaway snapshots were released, so f's next mutation must
	// re-privatize by adoption — no slab copy.
	before := ir.Stats()
	in := f.Entry().Instr(0)
	if in.NumDefs() > 0 {
		in.SetDefVal(0, in.Def(0))
	}
	d := ir.Stats()
	if n := d.COWSlabCopies - before.COWSlabCopies; n != 0 {
		t.Fatalf("post-probe mutation copied %d slabs, want adoption (0)", n)
	}
}

// TestCheckedModeRunsCOWProbe: checked pipeline runs execute the probe
// on the entry function — visible as snapshot-counter movement that a
// plain run of the same function does not produce.
func TestCheckedModeRunsCOWProbe(t *testing.T) {
	conf := pipeline.Configs[pipeline.ExpLphiABIC]

	plain := testprog.Diamond()
	before := ir.Stats()
	if _, err := pipeline.Run(plain, conf); err != nil {
		t.Fatalf("plain run: %v", err)
	}
	plainSnaps := ir.Stats().Snapshots - before.Snapshots

	checked := testprog.Diamond()
	conf.Verify = true
	before = ir.Stats()
	if _, err := pipeline.Run(checked, conf); err != nil {
		t.Fatalf("checked run: %v", err)
	}
	checkedSnaps := ir.Stats().Snapshots - before.Snapshots

	// The probe takes exactly two snapshots (parent + child).
	if checkedSnaps-plainSnaps != 2 {
		t.Fatalf("checked run took %d snapshots vs %d plain, want a delta of exactly 2 (the probe pair)", checkedSnaps, plainSnaps)
	}
}
