// Package faultinject deliberately corrupts IR in ways that mimic pass
// bugs, to prove the checked pipeline's verifier (internal/verify)
// actually catches them. Each Class breaks exactly one invariant the
// out-of-SSA correctness argument depends on; the robustness tests
// assert that verify.Func rejects every class and that the pipeline
// surfaces the rejection as a *pipeline.PassError naming the pass the
// corruption was injected after.
//
// Injection is deterministic: each class corrupts the first applicable
// site in block/instruction order, so a failing test reproduces
// exactly.
package faultinject

import (
	"outofssa/internal/cfg"
	"outofssa/internal/ir"
)

// Class names one corruption. The value is stable and human-readable;
// it appears in test names and failure messages.
type Class string

const (
	// ClobberPhiArg redirects a φ argument to a fresh value that has no
	// definition anywhere — the shape of a renaming bug. Caught by the
	// SSA check (undefined φ use).
	ClobberPhiArg Class = "clobber-phi-arg"
	// DuplicatePin pins the two first φ definitions of one block to a
	// common fresh resource, violating the paper's Figure 4 case 3 (φs
	// execute in parallel and cannot share a register). Caught by the
	// pin-legality check.
	DuplicatePin Class = "duplicate-pin"
	// UseBeforeDef rewires an operand to a value defined later in the
	// same block — a scheduling/ordering bug. Caught by the SSA
	// dominance check.
	UseBeforeDef Class = "use-before-def"
	// BrokenCopyCycle inserts a parallel copy that writes one
	// destination twice — the shape of a sequentialization bug. Caught
	// by the parallel-copy consistency check.
	BrokenCopyCycle Class = "broken-copy-cycle"
	// DoubleDef adds a second definition of an existing SSA value.
	// Caught by the SSA single-definition check.
	DoubleDef Class = "double-def"
	// PhiArityMismatch drops the last argument of a φ, desynchronizing
	// it from its block's predecessor list. Caught by the structural
	// check.
	PhiArityMismatch Class = "phi-arity-mismatch"
	// DanglingEdge appends a successor edge without the matching
	// predecessor backlink. Caught by the structural CFG symmetry
	// check.
	DanglingEdge Class = "dangling-edge"
	// MisplacedPhi swaps a φ below a non-φ instruction, breaking the
	// φ-prefix rule the parallel φ semantics rely on. Caught by the
	// structural check.
	MisplacedPhi Class = "misplaced-phi"
	// StaleVarLiveness swaps two φ arguments across predecessor slots,
	// choosing a pair where one argument's definition does not dominate
	// the other's slot — the shape of a bug whose per-variable liveness
	// summaries go stale: the moved use extends one variable's live
	// range into a region its memoized walk never covered, while every
	// block, pin and instruction count stays plausible. Injected
	// silently, cached query-engine Infos keep answering from the old
	// walks; caught by the SSA φ-argument dominance check.
	StaleVarLiveness Class = "stale-var-liveness"
)

// Classes lists every corruption class, in a fixed order.
var Classes = []Class{
	ClobberPhiArg,
	DuplicatePin,
	UseBeforeDef,
	BrokenCopyCycle,
	DoubleDef,
	PhiArityMismatch,
	DanglingEdge,
	MisplacedPhi,
	StaleVarLiveness,
}

// Inject applies the corruption class c to f, mutating it, and reports
// whether an applicable site was found (e.g. ClobberPhiArg needs a φ).
// When it returns false, f is unchanged.
//
// Inject honors the ir.Func mutation contract: a successful injection
// calls NoteCFGMutation (some classes, like DanglingEdge, splice the
// block graph in place, and over-invalidating is always safe),
// modelling a buggy-but-well-behaved pass. Analyses requested
// afterwards therefore see the corrupted function — which is what lets
// the checked-mode verifier catch the damage. InjectSilent is the
// contract-violating variant.
func Inject(f *ir.Func, c Class) bool {
	if !InjectSilent(f, c) {
		return false
	}
	f.NoteCFGMutation()
	return true
}

// InjectSilent is Inject without the generation bump: it models a pass
// that mutates the IR but violates the generation-counter contract, so
// cached analyses remain (wrongly) valid. The SoA mutators bump the
// counters automatically, so a contract-violating pass can no longer
// exist by accident; the injector recreates one deliberately by
// restoring the counters with SetGenerations after the operand-only
// classes — UseBeforeDef, PhiArityMismatch, DanglingEdge, MisplacedPhi,
// StaleVarLiveness — have mutated through the API. Classes that create
// values or instructions keep their bumps (a fresh value would make the
// restored counters lie about slab sizes, not just about staleness).
// The analysis cache tests use this to demonstrate what staleness looks
// like; everything else should call Inject.
func InjectSilent(f *ir.Func, c Class) bool {
	gen, cfgGen := f.Generation(), f.CFGGeneration()
	ok := false
	silent := false
	switch c {
	case ClobberPhiArg:
		ok = clobberPhiArg(f)
	case DuplicatePin:
		ok = duplicatePin(f)
	case UseBeforeDef:
		ok, silent = useBeforeDef(f), true
	case BrokenCopyCycle:
		ok = brokenCopyCycle(f)
	case DoubleDef:
		ok = doubleDef(f)
	case PhiArityMismatch:
		ok, silent = phiArityMismatch(f), true
	case DanglingEdge:
		ok, silent = danglingEdge(f), true
	case MisplacedPhi:
		ok, silent = misplacedPhi(f), true
	case StaleVarLiveness:
		ok, silent = staleVarLiveness(f), true
	}
	if ok && silent {
		f.SetGenerations(gen, cfgGen)
	}
	return ok
}

func firstPhi(f *ir.Func) *ir.Instr {
	for _, b := range f.Blocks() {
		for _, phi := range b.Phis() {
			return phi
		}
	}
	return nil
}

func clobberPhiArg(f *ir.Func) bool {
	phi := firstPhi(f)
	if phi == nil || phi.NumUses() == 0 {
		return false
	}
	phi.SetUseVal(0, f.NewValue("fault.undef"))
	return true
}

func duplicatePin(f *ir.Func) bool {
	for _, b := range f.Blocks() {
		if b.NumPhis() < 2 {
			continue
		}
		res := f.NewValue("fault.res")
		ir.PinDef(b.Instr(0), 0, res)
		ir.PinDef(b.Instr(1), 0, res)
		return true
	}
	return false
}

func useBeforeDef(f *ir.Func) bool {
	for _, b := range f.Blocks() {
		for i, in := range b.Instrs() {
			if in.Op() == ir.Phi || in.NumUses() == 0 {
				continue
			}
			// A value defined strictly later in the same block.
			for j := i + 1; j < b.NumInstrs(); j++ {
				for _, d := range b.Instr(j).Defs() {
					if f.IsPhys(d.Val) || d.Val == in.Use(0) {
						continue
					}
					in.SetUseVal(0, d.Val)
					return true
				}
			}
		}
	}
	return false
}

func brokenCopyCycle(f *ir.Func) bool {
	v := ir.NoValue
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			for _, d := range in.Defs() {
				if !f.IsPhys(d.Val) {
					v = d.Val
					break
				}
			}
		}
	}
	if v == ir.NoValue {
		return false
	}
	pc := f.NewInstr(ir.ParCopy, ir.Ops(v, v), ir.Ops(v, v))
	f.Entry().InsertBeforeTerminator(pc)
	return true
}

func doubleDef(f *ir.Func) bool {
	for _, b := range f.Blocks() {
		for i, in := range b.Instrs() {
			if in.Op() == ir.Phi || in.Op().IsTerminator() {
				continue
			}
			for _, d := range in.Defs() {
				if f.IsPhys(d.Val) {
					continue
				}
				b.InsertAt(i+1, f.NewInstr(ir.Copy, ir.Ops(d.Val), ir.Ops(d.Val)))
				return true
			}
		}
	}
	return false
}

func phiArityMismatch(f *ir.Func) bool {
	phi := firstPhi(f)
	if phi == nil || phi.NumUses() == 0 {
		return false
	}
	phi.RemoveUseAt(phi.NumUses() - 1)
	return true
}

func danglingEdge(f *ir.Func) bool {
	blocks := f.Blocks()
	if len(blocks) == 0 {
		return false
	}
	b := blocks[0]
	b.SetSuccs(append(append([]ir.BlockID(nil), b.Succs()...), blocks[len(blocks)-1].ID))
	return true
}

// staleVarLiveness swaps two arguments of one φ across predecessor
// slots. The pair is chosen so the swap is provably wrong: the first
// argument's definition must not dominate the slot it is moved into,
// which guarantees the φ-argument dominance check rejects the result
// (a swap between symmetric arguments could produce valid SSA and go
// undetected). The corruption is operand-only — block structure,
// instruction counts and pins all stay intact — so the only evidence
// is liveness flowing along the wrong φ edges.
func staleVarLiveness(f *ir.Func) bool {
	defBlk := make(map[ir.ValueID]*ir.Block)
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			for _, d := range in.Defs() {
				if !f.IsPhys(d.Val) {
					defBlk[d.Val] = b
				}
			}
		}
	}
	dom := cfg.Dominators(f)
	for _, b := range f.Blocks() {
		for _, phi := range b.Phis() {
			n := phi.NumUses()
			if n > b.NumPreds() {
				n = b.NumPreds()
			}
			for i := 0; i < n; i++ {
				vi := phi.Use(i)
				if f.IsPhys(vi) || defBlk[vi] == nil {
					continue
				}
				for j := 0; j < n; j++ {
					vj := phi.Use(j)
					if i == j || vi == vj || f.IsPhys(vj) {
						continue
					}
					if !dom.Dominates(defBlk[vi], b.Pred(j)) {
						phi.SetUseVal(i, vj)
						phi.SetUseVal(j, vi)
						return true
					}
				}
			}
		}
	}
	return false
}

func misplacedPhi(f *ir.Func) bool {
	for _, b := range f.Blocks() {
		n := b.FirstNonPhi()
		if n == 0 || n >= b.NumInstrs() {
			continue
		}
		phi := b.RemoveAt(n - 1)
		b.InsertAt(n, phi)
		return true
	}
	return false
}
